// Updates (paper Section 8): after a batch of inserts changes the dataset,
// the estimator's labels drift. Incremental learning resumes training from
// the current weights on relabeled data — minutes instead of the hours a
// from-scratch retrain costs at paper scale — and recovers the accuracy.
package main

import (
	"fmt"
	"log"
	"time"

	"cardnet/internal/core"
	"cardnet/internal/dataset"
	"cardnet/internal/dist"
	"cardnet/internal/feature"
	"cardnet/internal/simselect"
)

func main() {
	log.SetFlags(0)
	const thetaMax = 16

	// One generation, split into the live dataset and a pool of future
	// inserts drawn from the same clusters (inserts from an unrelated
	// distribution would not change any cardinality within θmax).
	all := dataset.BinaryCodes(1800, 64, 6, 0.08, 3)
	base, extra := all[:1200], all[1200:]
	ext := feature.NewHammingExtractor(64, thetaMax, thetaMax)
	grid := dataset.ThresholdGrid(thetaMax, thetaMax)

	queries := dataset.SampleUniform(len(base), 0.10, 1)
	split := dataset.SplitWorkload(queries, 2)
	pick := func(ids []int) []dist.BitVector {
		out := make([]dist.BitVector, len(ids))
		for i, id := range ids {
			out[i] = base[id]
		}
		return out
	}
	trainQ, validQ := pick(split.Train), pick(split.Valid)

	label := func(recs []dist.BitVector, qs []dist.BitVector) *core.TrainSet {
		ix := simselect.NewHammingIndex(recs)
		ts, err := core.BuildTrainSet[dist.BitVector](ext, qs, grid, func(q dist.BitVector, g []float64) []int {
			cum := ix.CountAtEach(q, thetaMax)
			out := make([]int, len(g))
			for i, theta := range g {
				out[i] = cum[int(theta)]
			}
			return out
		})
		if err != nil {
			log.Fatal(err)
		}
		return ts
	}

	cfg := core.DefaultConfig(thetaMax)
	cfg.Accel = true
	model := core.New(cfg, ext.Dim())
	t0 := time.Now()
	res := model.Train(label(base, trainQ), label(base, validQ))
	fmt.Printf("initial training: %v, validation MSLE %.4f\n", time.Since(t0).Round(time.Millisecond), res.BestValidMSLE)

	// Insert 600 records; relabel; incrementally learn (Section 8: monitor
	// the validation error, resume from the current weights, keep the
	// original queries with fresh labels).
	updated := append(append([]dist.BitVector(nil), base...), extra...)
	newTrain := label(updated, trainQ)
	newValid := label(updated, validQ)
	t1 := time.Now()
	inc := model.IncrementalTrain(newTrain, newValid, res.BestValidMSLE)
	fmt.Printf("incremental learning after +600 inserts: %v, %d epochs, validation MSLE %.4f (skipped=%v)\n",
		time.Since(t1).Round(time.Millisecond), inc.Epochs, inc.ValidMSLE, inc.Skipped)

	// Sanity: the refreshed model tracks the larger cardinalities.
	ix := simselect.NewHammingIndex(updated)
	q := trainQ[0]
	est := core.NewEstimator[dist.BitVector](ext, model)
	fmt.Println("theta  actual(updated)  estimate")
	for theta := 4.0; theta <= thetaMax; theta += 4 {
		fmt.Printf("%5.0f  %15d  %8.1f\n", theta, ix.Count(q, theta), est.Estimate(q, theta))
	}
}
