// Entity-matching blocking rules (paper Introduction example 2 and Section
// 9.11.1): a blocking rule is a conjunction of similarity predicates over
// multiple attributes. The optimizer estimates each predicate's cardinality,
// drives the index lookup with the most selective one, and verifies the rest
// on the fly — exactly the conjunctive case study, shown here on an
// author-matching schema (name, affiliation, research-interest embeddings).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cardnet/internal/bench"
	"cardnet/internal/core"
	"cardnet/internal/dataset"
	"cardnet/internal/optimizer"
)

func main() {
	log.SetFlags(0)

	attrNames := []string{"name", "affiliations", "research interests"}
	n, dim := 1200, 16
	attrs := make([][][]float64, len(attrNames))
	for a := range attrs {
		attrs[a] = dataset.Vectors(n, dim, 4+a, 0.05+0.06*float64(a), true, int64(100+a))
	}
	db := optimizer.NewConjunctiveDB(attrs)

	// One CardNet-A estimator per attribute.
	opts := bench.DefaultOptions()
	type attrEst struct {
		model  *core.Model
		bundle *bench.Bundle
	}
	ests := make([]attrEst, len(attrs))
	for a := range attrs {
		s := bench.BuildEuclideanSuite(attrNames[a], attrs[a], 0.5, opts)
		m := core.New(quickCfg(s.Bundle.TauMax), s.Bundle.Train.X.Cols)
		m.Train(s.Bundle.Train, s.Bundle.Valid)
		ests[a] = attrEst{model: m, bundle: s.Bundle}
	}
	planner := &optimizer.FuncAttrEstimator{Label: "CardNet-A",
		Fn: func(a int, q []float64, theta float64) float64 {
			b := ests[a].bundle
			return ests[a].model.EstimateEncoded(b.EncodeRecord(q), b.ThresholdOf(theta))
		}}

	// Blocking rule: "EU(name) <= 0.25 AND EU(affiliations) <= 0.4 AND
	// EU(research interests) <= 0.45" around candidate records.
	thetas := []float64{0.25, 0.4, 0.45}
	rng := rand.New(rand.NewSource(9))
	agree, total := 0, 0
	var totalCands, oracleCands int
	for i := 0; i < 30; i++ {
		id := rng.Intn(n)
		preds := make([]optimizer.Predicate, len(attrs))
		for a := range preds {
			preds[a] = optimizer.Predicate{Attr: a, Query: attrs[a][id], Theta: thetas[a]}
		}
		pick := optimizer.Plan(planner, preds)
		best := db.BestPick(preds)
		result, cands := db.Process(preds, pick)
		_, bestCands := db.Process(preds, best)
		totalCands += cands
		oracleCands += bestCands
		if pick == best {
			agree++
		}
		total++
		if i < 5 {
			fmt.Printf("rule %2d: drive with %-18s candidates=%4d matches=%d\n",
				i, attrNames[preds[pick].Attr], cands, len(result))
		}
	}
	fmt.Printf("\nplanning precision: %d/%d (%.0f%%)\n", agree, total, 100*float64(agree)/float64(total))
	fmt.Printf("candidates: planned=%d oracle=%d (overhead %.1f%%)\n",
		totalCands, oracleCands, 100*float64(totalCands-oracleCands)/float64(oracleCands))
}

func quickCfg(tauMax int) core.Config {
	cfg := core.DefaultConfig(tauMax)
	cfg.Accel = true
	cfg.VAEHidden = []int{32}
	cfg.VAELatent = 8
	cfg.VAEEpochs = 6
	cfg.PhiHidden = []int{48, 32}
	cfg.ZDim = 16
	cfg.Epochs = 18
	return cfg
}
