// Quickstart: train a CardNet-A estimator on binary codes under Hamming
// distance and estimate selection cardinalities, demonstrating the
// monotonicity guarantee.
package main

import (
	"fmt"
	"log"

	"cardnet/internal/core"
	"cardnet/internal/dataset"
	"cardnet/internal/dist"
	"cardnet/internal/feature"
	"cardnet/internal/simselect"
)

func main() {
	log.SetFlags(0)

	// 1. A dataset of 64-bit codes (stand-in for learned image hashes).
	records := dataset.BinaryCodes(2000, 64, 8, 0.08, 42)
	index := simselect.NewHammingIndex(records)

	// 2. Feature extraction: Hamming codes pass through unchanged; the
	//    threshold budget is 20 with one decoder per distance value.
	const thetaMax = 20
	ext := feature.NewHammingExtractor(64, thetaMax, thetaMax)

	// 3. Label a 10% query workload with the exact algorithm (Section 6.1).
	queries := dataset.SampleUniform(len(records), 0.10, 1)
	split := dataset.SplitWorkload(queries, 2)
	grid := dataset.ThresholdGrid(thetaMax, thetaMax)
	counts := func(q dist.BitVector, g []float64) []int {
		cum := index.CountAtEach(q, thetaMax)
		out := make([]int, len(g))
		for i, theta := range g {
			out[i] = cum[int(theta)]
		}
		return out
	}
	pick := func(ids []int) []dist.BitVector {
		out := make([]dist.BitVector, len(ids))
		for i, id := range ids {
			out[i] = records[id]
		}
		return out
	}
	train, err := core.BuildTrainSet[dist.BitVector](ext, pick(split.Train), grid, counts)
	if err != nil {
		log.Fatal(err)
	}
	valid, err := core.BuildTrainSet[dist.BitVector](ext, pick(split.Valid), grid, counts)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Train CardNet-A (the accelerated encoder of Section 7).
	cfg := core.DefaultConfig(thetaMax)
	cfg.Accel = true
	model := core.New(cfg, ext.Dim())
	res := model.Train(train, valid)
	log.Printf("trained in %d epochs, validation MSLE %.4f, model size %d KB\n",
		res.Epochs, res.BestValidMSLE, model.SizeBytes()/1024)

	// 5. Estimate: the composed estimator is monotone in θ (Lemma 1).
	est := core.NewEstimator[dist.BitVector](ext, model)
	q := records[split.Test[0]]
	fmt.Println("theta  actual  estimate")
	for theta := 0.0; theta <= thetaMax; theta += 4 {
		fmt.Printf("%5.0f  %6d  %8.1f\n", theta, index.Count(q, theta), est.Estimate(q, theta))
	}
}
