// Image search candidate budgeting (paper Introduction, example 1): images
// are hashed to binary codes; a Hamming selection with threshold 16 yields
// candidates that an expensive image-level verifier must re-check. The
// cardinality estimate predicts the verification workload — and hence the
// end-to-end latency — before running the selection, which is what a service
// needs to quote an SLA.
package main

import (
	"fmt"
	"log"
	"time"

	"cardnet/internal/bench"
	"cardnet/internal/core"
	"cardnet/internal/dataset"
)

// verifyCostPerCandidate models the image-level CNN re-check latency.
const verifyCostPerCandidate = 2 * time.Millisecond

func main() {
	log.SetFlags(0)

	// HashNet-style codes for an image corpus (synthetic; see DESIGN.md).
	spec := dataset.DefaultsByName()["HM-ImageNet"]
	opts := bench.DefaultOptions()
	opts.NOverride = 1500
	suite := bench.BuildSuite(spec, opts)
	b := suite.Bundle

	cfg := core.DefaultConfig(b.TauMax)
	cfg.Accel = true
	model := core.New(cfg, b.Train.X.Cols)
	model.Train(b.Train, b.Valid)

	fmt.Println("query  theta  est.candidates  actual  predicted-verify-time")
	var worst float64
	for _, p := range b.Points {
		if p.Theta != 16 {
			continue
		}
		est := model.EstimateEncoded(b.TestX.Row(p.Query), p.Tau)
		budget := time.Duration(est) * verifyCostPerCandidate
		fmt.Printf("%5d  %5.0f  %14.1f  %6.0f  %v\n", p.Query, p.Theta, est, p.Actual, budget)
		ratio := (est + 1) / (p.Actual + 1)
		if ratio < 1 {
			ratio = 1 / ratio
		}
		if ratio > worst {
			worst = ratio
		}
	}
	fmt.Printf("\nworst per-query budget misestimate: %.2fx\n", worst)
}
