#!/bin/bash
# Regenerates every experiment output in this directory at the committed
# reduced scale. From the repository root: bash results/runall.sh
set -ex
cd "$(dirname "$0")/.."
go build -o /tmp/cardbench ./cmd/cardbench
CB=/tmp/cardbench
cd results
$CB -exp datasets,table13 -n 2000 > stats.txt 2>&1
$CB -exp fig1 -n 2000 > fig1.txt 2>&1
$CB -exp table3 -n 1000 > table3.txt 2>&1
$CB -exp table7 -n 1000 > table7.txt 2>&1
$CB -exp fig5 -n 800 > fig5.txt 2>&1
$CB -exp fig6 -n 500 > fig6.txt 2>&1
$CB -exp fig7 -n 800 -models "CardNet-A,TL-XGB,DL-RMI" > fig7.txt 2>&1
$CB -exp fig8 -n 800 > fig8.txt 2>&1
$CB -exp fig9 -n 800 -models "CardNet-A,DL-RMI,TL-XGB,DB-US" > fig9.txt 2>&1
$CB -exp fig10 -n 800 -models "CardNet-A,DL-RMI,TL-XGB,DB-US" > fig10.txt 2>&1
$CB -exp fig11 -n 500 > fig11.txt 2>&1
$CB -exp fig13,fig14 -n 600 > fig13.txt 2>&1
$CB -exp table14 -n 800 -models "CardNet-A,DB-US,TL-XGB" > table14.txt 2>&1
$CB -exp mono -n 600 -models "CardNet,CardNet-A,TL-XGB,DL-DLN,DB-SE,DL-DNN" > mono.txt 2>&1
echo ALL-DONE
