package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cardnet/internal/cluster"
	"cardnet/internal/core"
	"cardnet/internal/serving"
)

// routerFleet is a real router fronting real replicas: full newServeMux
// handler trees over independent serving engines, the production wiring
// minus the TCP listeners between processes.
type routerFleet struct {
	rt       *cluster.Router
	front    *httptest.Server
	replicas []*httptest.Server
}

// newRouterFleet stands up n replicas serving m plus a router with a fast
// rollout loop (short bake so E2E tests finish quickly).
func newRouterFleet(t *testing.T, m *core.Model, n int) *routerFleet {
	t.Helper()
	f := &routerFleet{}
	bases := make([]string, n)
	for i := 0; i < n; i++ {
		ts, _ := newTestServer(t, m, serving.Config{MaxBatch: 4, MaxWait: time.Millisecond})
		f.replicas = append(f.replicas, ts)
		bases[i] = ts.URL
	}
	rt, err := cluster.New(cluster.Config{
		Replicas: bases,
		Rollout: cluster.RolloutConfig{
			Bake:       600 * time.Millisecond,
			Poll:       60 * time.Millisecond,
			MinSamples: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.rt = rt
	f.front = httptest.NewServer(rt.Handler())
	t.Cleanup(func() { f.front.Close(); rt.Close() })
	return f
}

// replicaHealthz fetches one replica's /healthz document directly.
func replicaHealthz(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// modelVersionOf reads a replica's serving-registry version.
func modelVersionOf(t *testing.T, base string) int {
	v, _ := replicaHealthz(t, base)["model_version"].(float64)
	return int(v)
}

// feedTruth posts one /feedback sample with the given actual directly to a
// replica, returning the q-error the replica computed.
func feedTruth(t *testing.T, base, xCSV string, tau int, actual float64) float64 {
	t.Helper()
	body := fmt.Sprintf(`{"x":[%s],"tau":%d,"actual":%g}`, xCSV, tau, actual)
	resp, err := http.Post(base+"/feedback", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feedback to %s: status %d", base, resp.StatusCode)
	}
	var doc struct {
		QError float64 `json:"qerror"`
	}
	json.NewDecoder(resp.Body).Decode(&doc)
	return doc.QError
}

// estimateDirect asks a replica itself for its estimate of (x, tau).
func estimateDirect(t *testing.T, base, xCSV string, tau int) float64 {
	t.Helper()
	resp, err := http.Post(base+"/estimate", "application/json",
		bytes.NewBufferString(fmt.Sprintf(`{"x":[%s],"tau":%d}`, xCSV, tau)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var er estimateResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Estimate == nil {
		t.Fatalf("direct estimate from %s failed: %v", base, err)
	}
	return *er.Estimate
}

// TestRouterE2EEstimate drives real estimates through router -> replica:
// valid responses, trace IDs, and stable routing (the same query keeps
// hitting the same replica, observable because the replicas serve models
// with different weights).
func TestRouterE2EEstimate(t *testing.T) {
	// Two replicas with *different* models: a query's estimate identifies
	// which replica served it.
	mA, mB := tinyModel(3), tinyModel(17)
	tsA, _ := newTestServer(t, mA, serving.Config{MaxBatch: 4, MaxWait: time.Millisecond})
	tsB, _ := newTestServer(t, mB, serving.Config{MaxBatch: 4, MaxWait: time.Millisecond})
	rt, err := cluster.New(cluster.Config{Replicas: []string{tsA.URL, tsB.URL}})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer func() { front.Close(); rt.Close() }()

	xCSV := strings.Join(binXStrings(mA), ",")
	seen := map[int]float64{}
	for round := 0; round < 3; round++ {
		for tau := 0; tau <= 8; tau++ {
			resp, err := http.Post(front.URL+"/estimate", "application/json",
				bytes.NewBufferString(fmt.Sprintf(`{"x":[%s],"tau":%d}`, xCSV, tau)))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("tau=%d status=%d", tau, resp.StatusCode)
			}
			if resp.Header.Get("X-Trace-Id") == "" {
				t.Fatal("estimate response missing X-Trace-Id")
			}
			var er estimateResponse
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if er.Estimate == nil || *er.Estimate < 0 {
				t.Fatalf("tau=%d bad estimate %+v", tau, er)
			}
			if prev, ok := seen[tau]; ok && prev != *er.Estimate {
				t.Fatalf("tau=%d estimate changed %v -> %v: query not pinned to one replica", tau, prev, *er.Estimate)
			}
			seen[tau] = *er.Estimate
		}
	}
}

// TestRouterE2ERolloutPromote is the canary-to-fleet happy path over real
// replicas and real model files: POST /admin/rollout canaries v2 onto one
// replica, accurate live feedback keeps its q-error at the fleet's level,
// and after the bake every replica serves v2.
func TestRouterE2ERolloutPromote(t *testing.T) {
	m := tinyModel(3)
	dir := t.TempDir()
	v2 := filepath.Join(dir, "v2.gob")
	if err := saveModel(tinyModel(17), v2); err != nil {
		t.Fatal(err)
	}
	f := newRouterFleet(t, m, 3)

	resp, err := http.Post(f.front.URL+"/admin/rollout", "application/json",
		bytes.NewBufferString(fmt.Sprintf(`{"path":%q}`, v2)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("rollout start status=%d, want 202", resp.StatusCode)
	}

	// Live traffic during the bake: every replica gets feedback whose actual
	// matches its own estimate, so q-errors sit at 1 fleet-wide.
	xCSV := strings.Join(binXStrings(m), ",")
	for i := 0; i < 5; i++ {
		for _, rep := range f.replicas {
			est := estimateDirect(t, rep.URL, xCSV, 3)
			if q := feedTruth(t, rep.URL, xCSV, 3, est); q > 1.001 {
				t.Fatalf("self-consistent feedback gave qerror %v", q)
			}
		}
		time.Sleep(30 * time.Millisecond)
	}
	f.rt.Rollout().Wait()

	st := f.rt.Rollout().Status()
	if st.State != cluster.RolloutOK {
		t.Fatalf("rollout state = %s (err %q), want ok", st.State, st.Error)
	}
	for _, rep := range f.replicas {
		if v := modelVersionOf(t, rep.URL); v != 2 {
			t.Fatalf("replica %s at model version %d after promote, want 2", rep.URL, v)
		}
	}
}

// TestRouterE2ERolloutRollback forces a regression: the canary's live
// q-errors blow up relative to the fleet, so the bake verdict restores the
// rollback model onto the canary and never touches the others.
func TestRouterE2ERolloutRollback(t *testing.T) {
	m := tinyModel(3)
	dir := t.TempDir()
	v1 := filepath.Join(dir, "v1.gob")
	v2 := filepath.Join(dir, "v2.gob")
	if err := saveModel(m, v1); err != nil {
		t.Fatal(err)
	}
	if err := saveModel(tinyModel(17), v2); err != nil {
		t.Fatal(err)
	}
	f := newRouterFleet(t, m, 3)

	resp, err := http.Post(f.front.URL+"/admin/rollout", "application/json",
		bytes.NewBufferString(fmt.Sprintf(`{"path":%q,"rollback_path":%q}`, v2, v1)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("rollout start status=%d, want 202", resp.StatusCode)
	}
	canary := f.rt.Rollout().Status().Canary

	// The canary's production feedback disagrees wildly with its estimates;
	// the rest of the fleet stays accurate.
	xCSV := strings.Join(binXStrings(m), ",")
	for i := 0; i < 5; i++ {
		for _, rep := range f.replicas {
			if rep.URL == canary {
				feedTruth(t, rep.URL, xCSV, 3, 1e9)
				continue
			}
			est := estimateDirect(t, rep.URL, xCSV, 3)
			feedTruth(t, rep.URL, xCSV, 3, est)
		}
		time.Sleep(30 * time.Millisecond)
	}
	f.rt.Rollout().Wait()

	st := f.rt.Rollout().Status()
	if st.State != cluster.RolloutRolledBack {
		t.Fatalf("rollout state = %s (err %q), want rolled-back", st.State, st.Error)
	}
	if len(st.Promoted) != 0 {
		t.Fatalf("replicas promoted during a rollback: %v", st.Promoted)
	}
	for _, rep := range f.replicas {
		v := modelVersionOf(t, rep.URL)
		if rep.URL == canary {
			if v != 3 { // v2 canary swap + v1 rollback swap
				t.Fatalf("canary at model version %d, want 3 (canaried then rolled back)", v)
			}
			continue
		}
		if v != 1 {
			t.Fatalf("non-canary %s at model version %d during rollback, want 1", rep.URL, v)
		}
	}
}

// TestRunRouterRejectsEmptyFleet checks the mode's flag validation.
func TestRunRouterRejectsEmptyFleet(t *testing.T) {
	if err := runRouter(":0", routerSettings{journalPath: "off"}); err == nil ||
		!strings.Contains(err.Error(), "-replicas") {
		t.Fatalf("err = %v, want a -replicas usage error", err)
	}
}
