package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"cardnet/internal/cluster"
	"cardnet/internal/core"
	"cardnet/internal/obs"
	"cardnet/internal/serving"
	"cardnet/internal/tensor"
)

// admissionBench records the admission-control surface of the serving stack
// under deliberate overload: a tiny queue, one worker, concurrent clients.
// The 503s here are the contract — load the cluster router fails over on.
type admissionBench struct {
	Calls            int     `json:"calls"`
	Rejected503      int     `json:"rejected_503"`
	RetryAfterSeen   int     `json:"retry_after_seen"`
	RejectedFraction float64 `json:"rejected_fraction"`
}

// clusterRun is one fleet size's throughput measurement through the router.
type clusterRun struct {
	Replicas   int     `json:"replicas"`
	QPS        float64 `json:"qps"`
	Speedup    float64 `json:"speedup"`    // vs the 1-replica run
	Efficiency float64 `json:"efficiency"` // speedup / replicas
	HitRatio   float64 `json:"hit_ratio"`  // estimate-cache hits across the fleet
}

// clusterBenchSection is the router scaling experiment: the same working set
// of distinct queries driven through 1, 2, and 4 replicas. The working set
// is sized past one replica's estimate cache, so the single replica
// thrashes while sharded fleets keep every partition cache-hot — on one
// machine the scaling comes from aggregate cache, which is exactly the
// cache-affinity claim the router makes.
type clusterBenchSection struct {
	VNodes         int          `json:"vnodes"`
	CacheEntries   int          `json:"cache_entries_per_replica"`
	WorkingSetKeys int          `json:"working_set_keys"`
	Calls          int          `json:"calls"`
	Runs           []clusterRun `json:"runs"`
}

// failoverBenchSection records the mid-bench replica-kill experiment: a
// 2-replica fleet loses one replica partway through and the client-visible
// 5xx count must stay zero (failover + ejection absorb the loss).
type failoverBenchSection struct {
	Replicas  int    `json:"replicas"`
	Calls     int    `json:"calls"`
	Client5xx int    `json:"client_5xx"`
	Failovers uint64 `json:"failovers"`
	Ejected   bool   `json:"replica_ejected"`
}

// benchClient is tuned for many short same-host requests.
func benchClient() *http.Client {
	return &http.Client{
		Timeout:   10 * time.Second,
		Transport: &http.Transport{MaxIdleConnsPerHost: 64},
	}
}

// runAdmissionBench floods a deliberately tiny engine (queue depth 2, one
// worker, no cache) through the real HTTP handler and counts what clients
// see: 503s, Retry-After hints, and the rejected fraction.
func runAdmissionBench(m *core.Model, testX *tensor.Matrix) (*admissionBench, error) {
	eng := serving.NewEngine(serving.NewRegistry(m), serving.Config{
		MaxBatch:     1,
		MaxWait:      0,
		QueueDepth:   2,
		Workers:      1,
		CacheEntries: -1,
	})
	defer eng.Close()
	ts := httptest.NewServer(newServeMux(eng, serveOptions{}))
	defer ts.Close()
	client := benchClient()

	const clients, per = 16, 50
	bodies := make([][]byte, clients)
	for c := range bodies {
		bodies[c] = estimateBodyJSON(testX.Row(c%testX.Rows), c%(m.Cfg.TauMax+1))
	}
	var rejected, retryAfter, errs atomic.Int64
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				resp, err := client.Post(ts.URL+"/estimate", "application/json", bytes.NewReader(bodies[c]))
				if err != nil {
					errs.Add(1)
					continue
				}
				if resp.StatusCode == http.StatusServiceUnavailable {
					rejected.Add(1)
					if resp.Header.Get("Retry-After") != "" {
						retryAfter.Add(1)
					}
				}
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()
	if n := errs.Load(); n > 0 {
		return nil, fmt.Errorf("admission bench: %d transport errors", n)
	}
	total := clients * per
	return &admissionBench{
		Calls:            total,
		Rejected503:      int(rejected.Load()),
		RetryAfterSeen:   int(retryAfter.Load()),
		RejectedFraction: float64(rejected.Load()) / float64(total),
	}, nil
}

// estimateBodyJSON builds the POST /estimate body for one encoded query.
func estimateBodyJSON(x []float64, tau int) []byte {
	var b bytes.Buffer
	b.WriteString(`{"x":[`)
	for i, v := range x {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%g", v)
	}
	fmt.Fprintf(&b, `],"tau":%d}`, tau)
	return b.Bytes()
}

// benchFleet is the in-process stand-in for N `cardnet serve` replicas plus
// a router: real handler trees, real engines, real proxying.
type benchFleet struct {
	rt       *cluster.Router
	front    *httptest.Server
	replicas []*httptest.Server
	engines  []*serving.Engine
	reg      *obs.Registry
}

func newBenchFleet(m *core.Model, n, cacheEntries int, probe time.Duration, ejectAfter int) (*benchFleet, error) {
	f := &benchFleet{reg: obs.NewRegistry()}
	bases := make([]string, n)
	for i := 0; i < n; i++ {
		eng := serving.NewEngine(serving.NewRegistry(m), serving.Config{
			MaxBatch:     32,
			MaxWait:      200 * time.Microsecond,
			QueueDepth:   4096,
			CacheEntries: cacheEntries,
		})
		f.engines = append(f.engines, eng)
		ts := httptest.NewServer(newServeMux(eng, serveOptions{}))
		f.replicas = append(f.replicas, ts)
		bases[i] = ts.URL
	}
	rt, err := cluster.New(cluster.Config{
		Replicas:      bases,
		Registry:      f.reg,
		ProbeInterval: probe,
		EjectAfter:    ejectAfter,
	})
	if err != nil {
		f.close()
		return nil, err
	}
	f.rt = rt
	f.front = httptest.NewServer(rt.Handler())
	return f, nil
}

func (f *benchFleet) close() {
	if f.front != nil {
		f.front.Close()
	}
	if f.rt != nil {
		f.rt.Close()
	}
	for _, ts := range f.replicas {
		ts.Close()
	}
	for _, eng := range f.engines {
		eng.Close()
	}
}

// runClusterBench measures aggregate throughput through the router at 1, 2,
// and 4 replicas over a fixed working set of distinct queries, then runs the
// kill-a-replica failover experiment at 2 replicas.
func runClusterBench(m *core.Model, testX *tensor.Matrix) (*clusterBenchSection, *failoverBenchSection, error) {
	const cacheEntries = 320
	tauMax := m.Cfg.TauMax
	// Distinct (x, τ) pairs: 1.6× one replica's cache, so a lone replica's
	// LRU thrashes under the cyclic scan while each shard of a 2+-replica
	// split fits its cache.
	workingSet := cacheEntries * 8 / 5
	if max := testX.Rows * (tauMax + 1); workingSet > max {
		workingSet = max
	}
	bodies := make([][]byte, workingSet)
	for i := range bodies {
		bodies[i] = estimateBodyJSON(testX.Row(i%testX.Rows), (i/testX.Rows)%(tauMax+1))
	}
	calls := 6 * workingSet

	sec := &clusterBenchSection{
		VNodes:         cluster.DefaultVNodes,
		CacheEntries:   cacheEntries,
		WorkingSetKeys: workingSet,
		Calls:          calls,
	}
	client := benchClient()
	for _, n := range []int{1, 2, 4} {
		f, err := newBenchFleet(m, n, cacheEntries, 0, 0)
		if err != nil {
			return nil, nil, err
		}
		qps, hit, err := driveFleet(client, f, bodies, calls, -1, nil)
		f.close()
		if err != nil {
			return nil, nil, err
		}
		run := clusterRun{Replicas: n, QPS: qps, HitRatio: hit}
		if len(sec.Runs) > 0 && sec.Runs[0].QPS > 0 {
			run.Speedup = qps / sec.Runs[0].QPS
			run.Efficiency = run.Speedup / float64(n)
		} else {
			run.Speedup = 1
			run.Efficiency = 1
		}
		sec.Runs = append(sec.Runs, run)
	}

	// Failover: 2 replicas, aggressive probing, one replica hard-killed a
	// third of the way in.
	f, err := newBenchFleet(m, 2, cacheEntries, 20*time.Millisecond, 2)
	if err != nil {
		return nil, nil, err
	}
	defer f.close()
	f.rt.Start()
	foCalls := 4 * workingSet
	var bad atomic.Int64
	_, _, err = driveFleet(client, f, bodies, foCalls, foCalls/3, &bad)
	if err != nil {
		return nil, nil, err
	}
	fo := &failoverBenchSection{
		Replicas:  2,
		Calls:     foCalls,
		Client5xx: int(bad.Load()),
		Failovers: f.reg.Counter("cluster.failovers").Value(),
		Ejected:   f.rt.Ring().Len() == 1,
	}
	return sec, fo, nil
}

// driveFleet pushes calls requests through the fleet's router from 4
// concurrent clients cycling the working set in order (the cyclic scan is
// what defeats a too-small LRU). killAt >= 0 hard-kills the last replica
// after that many of client 0's requests; bad counts 5xx responses. Returns
// aggregate QPS and the fleet-wide estimate-cache hit ratio, measured after
// one warm pass.
func driveFleet(client *http.Client, f *benchFleet, bodies [][]byte, calls, killAt int, bad *atomic.Int64) (qps, hitRatio float64, err error) {
	post := func(i int) (int, error) {
		resp, err := client.Post(f.front.URL+"/estimate", "application/json", bytes.NewReader(bodies[i%len(bodies)]))
		if err != nil {
			return 0, err
		}
		resp.Body.Close()
		return resp.StatusCode, nil
	}
	// Warm pass: populate every replica's cache partition.
	for i := range bodies {
		if _, err := post(i); err != nil {
			return 0, 0, err
		}
	}

	hits0 := obs.Default.Counter("serving.cache.hits").Value()
	miss0 := obs.Default.Counter("serving.cache.misses").Value()
	const clients = 4
	per := calls / clients
	var wg sync.WaitGroup
	var errs atomic.Int64
	wg.Add(clients)
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if c == 0 && killAt >= 0 && i == killAt/clients {
					victim := f.replicas[len(f.replicas)-1]
					victim.CloseClientConnections()
					victim.Close()
				}
				code, err := post(c*per + i)
				if err != nil {
					errs.Add(1)
					continue
				}
				if bad != nil && code >= 500 {
					bad.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(t0).Seconds()
	if n := errs.Load(); n > 0 {
		return 0, 0, fmt.Errorf("cluster bench: %d transport errors", n)
	}
	hits := float64(obs.Default.Counter("serving.cache.hits").Value() - hits0)
	misses := float64(obs.Default.Counter("serving.cache.misses").Value() - miss0)
	if hits+misses > 0 {
		hitRatio = hits / (hits + misses)
	}
	return float64(per*clients) / elapsed, hitRatio, nil
}
