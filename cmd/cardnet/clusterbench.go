package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"cardnet/internal/cluster"
	"cardnet/internal/core"
	"cardnet/internal/obs"
	"cardnet/internal/obs/tracescan"
	"cardnet/internal/serving"
	"cardnet/internal/tensor"
)

// admissionBench records the admission-control surface of the serving stack
// under deliberate overload: a tiny queue, one worker, concurrent clients.
// The 503s here are the contract — load the cluster router fails over on.
type admissionBench struct {
	Calls            int     `json:"calls"`
	Rejected503      int     `json:"rejected_503"`
	RetryAfterSeen   int     `json:"retry_after_seen"`
	RejectedFraction float64 `json:"rejected_fraction"`
}

// clusterRun is one fleet size's throughput measurement through the router.
type clusterRun struct {
	Replicas   int     `json:"replicas"`
	QPS        float64 `json:"qps"`
	Speedup    float64 `json:"speedup"`    // vs the 1-replica run
	Efficiency float64 `json:"efficiency"` // speedup / replicas
	HitRatio   float64 `json:"hit_ratio"`  // estimate-cache hits across the fleet
}

// clusterBenchSection is the router scaling experiment: the same working set
// of distinct queries driven through 1, 2, and 4 replicas. The working set
// is sized past one replica's estimate cache, so the single replica
// thrashes while sharded fleets keep every partition cache-hot — on one
// machine the scaling comes from aggregate cache, which is exactly the
// cache-affinity claim the router makes.
type clusterBenchSection struct {
	VNodes         int          `json:"vnodes"`
	CacheEntries   int          `json:"cache_entries_per_replica"`
	WorkingSetKeys int          `json:"working_set_keys"`
	Calls          int          `json:"calls"`
	Runs           []clusterRun `json:"runs"`
}

// tracingRateRun is one traced configuration of the tracing-overhead
// experiment: client latency at a sample rate, plus the tracescan verdict
// over the logs that run produced (head-based decision propagation means
// every router-sampled trace must join its replica half at any rate).
type tracingRateRun struct {
	Rate             float64      `json:"rate"`
	On               latencyStats `json:"on"`
	OverheadP50Pct   float64      `json:"overhead_p50_pct"`
	OverheadP99Pct   float64      `json:"overhead_p99_pct"`
	TracesAssembled  int          `json:"traces_assembled"`
	TracesJoined     int          `json:"traces_joined"`
	TilingViolations int          `json:"tiling_violations"`
	SamplerDropped   uint64       `json:"sampler_dropped"`
}

// clusterTracingSection prices the distributed-tracing pipeline through the
// router: identical 2-replica fleets driven with tracing off, at the
// operational default sample rate, and at the full incident rate (1.0),
// in rotating rounds so machine drift averages out. Stage marks and
// exemplar capture are paid either way; the delta is the sampling decision
// plus trace emission on three processes (emission is asynchronous, so on a
// multi-core host the visible delta is smaller still). Each traced run's
// logs are then assembled with tracescan inside the bench, so the section
// also vouches that every router-sampled request joined and tiled.
type clusterTracingSection struct {
	Replicas int              `json:"replicas"`
	Off      latencyStats     `json:"tracing_off"`
	Runs     []tracingRateRun `json:"runs"`
}

// failoverBenchSection records the mid-bench replica-kill experiment: a
// 2-replica fleet loses one replica partway through and the client-visible
// 5xx count must stay zero (failover + ejection absorb the loss).
type failoverBenchSection struct {
	Replicas  int    `json:"replicas"`
	Calls     int    `json:"calls"`
	Client5xx int    `json:"client_5xx"`
	Failovers uint64 `json:"failovers"`
	Ejected   bool   `json:"replica_ejected"`
}

// benchClient is tuned for many short same-host requests.
func benchClient() *http.Client {
	return &http.Client{
		Timeout:   10 * time.Second,
		Transport: &http.Transport{MaxIdleConnsPerHost: 64},
	}
}

// runAdmissionBench floods a deliberately tiny engine (queue depth 2, one
// worker, no cache) through the real HTTP handler and counts what clients
// see: 503s, Retry-After hints, and the rejected fraction.
func runAdmissionBench(m *core.Model, testX *tensor.Matrix) (*admissionBench, error) {
	eng := serving.NewEngine(serving.NewRegistry(m), serving.Config{
		MaxBatch:     1,
		MaxWait:      0,
		QueueDepth:   2,
		Workers:      1,
		CacheEntries: -1,
	})
	defer eng.Close()
	ts := httptest.NewServer(newServeMux(eng, serveOptions{}))
	defer ts.Close()
	client := benchClient()

	const clients, per = 16, 50
	bodies := make([][]byte, clients)
	for c := range bodies {
		bodies[c] = estimateBodyJSON(testX.Row(c%testX.Rows), c%(m.Cfg.TauMax+1))
	}
	var rejected, retryAfter, errs atomic.Int64
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				resp, err := client.Post(ts.URL+"/estimate", "application/json", bytes.NewReader(bodies[c]))
				if err != nil {
					errs.Add(1)
					continue
				}
				if resp.StatusCode == http.StatusServiceUnavailable {
					rejected.Add(1)
					if resp.Header.Get("Retry-After") != "" {
						retryAfter.Add(1)
					}
				}
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()
	if n := errs.Load(); n > 0 {
		return nil, fmt.Errorf("admission bench: %d transport errors", n)
	}
	total := clients * per
	return &admissionBench{
		Calls:            total,
		Rejected503:      int(rejected.Load()),
		RetryAfterSeen:   int(retryAfter.Load()),
		RejectedFraction: float64(rejected.Load()) / float64(total),
	}, nil
}

// estimateBodyJSON builds the POST /estimate body for one encoded query.
func estimateBodyJSON(x []float64, tau int) []byte {
	var b bytes.Buffer
	b.WriteString(`{"x":[`)
	for i, v := range x {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%g", v)
	}
	fmt.Fprintf(&b, `],"tau":%d}`, tau)
	return b.Bytes()
}

// benchFleet is the in-process stand-in for N `cardnet serve` replicas plus
// a router: real handler trees, real engines, real proxying.
type benchFleet struct {
	rt         *cluster.Router
	front      *httptest.Server
	replicas   []*httptest.Server
	engines    []*serving.Engine
	reg        *obs.Registry
	samplers   []*obs.TraceSampler
	sinks      []*obs.Sink
	tracePaths []string
	closed     bool
}

// newBenchFleet builds an n-replica fleet behind a router. A non-empty
// traceDir turns on the tracing pipeline at the given sample rate: one
// JSONL sink per replica plus one for the router.
func newBenchFleet(m *core.Model, n, cacheEntries int, probe time.Duration, ejectAfter int, traceDir string, traceRate float64) (*benchFleet, error) {
	f := &benchFleet{reg: obs.NewRegistry()}
	sampler := func(name string) (*obs.TraceSampler, error) {
		if traceDir == "" {
			return nil, nil
		}
		path := filepath.Join(traceDir, name)
		sink, err := obs.NewFileSink(path)
		if err != nil {
			return nil, err
		}
		f.sinks = append(f.sinks, sink)
		f.tracePaths = append(f.tracePaths, path)
		sp := obs.NewTraceSampler(traceRate, sink)
		f.samplers = append(f.samplers, sp)
		return sp, nil
	}
	bases := make([]string, n)
	for i := 0; i < n; i++ {
		eng := serving.NewEngine(serving.NewRegistry(m), serving.Config{
			MaxBatch:     32,
			MaxWait:      200 * time.Microsecond,
			QueueDepth:   4096,
			CacheEntries: cacheEntries,
		})
		f.engines = append(f.engines, eng)
		sp, err := sampler(fmt.Sprintf("replica-%d.trace.jsonl", i))
		if err != nil {
			f.close()
			return nil, err
		}
		ts := httptest.NewServer(newServeMux(eng, serveOptions{sampler: sp}))
		f.replicas = append(f.replicas, ts)
		bases[i] = ts.URL
	}
	routerSampler, err := sampler("router.trace.jsonl")
	if err != nil {
		f.close()
		return nil, err
	}
	rt, err := cluster.New(cluster.Config{
		Replicas:      bases,
		Registry:      f.reg,
		ProbeInterval: probe,
		EjectAfter:    ejectAfter,
		Sampler:       routerSampler,
	})
	if err != nil {
		f.close()
		return nil, err
	}
	f.rt = rt
	f.front = httptest.NewServer(rt.Handler())
	return f, nil
}

func (f *benchFleet) close() {
	if f.closed {
		return
	}
	f.closed = true
	if f.front != nil {
		f.front.Close()
	}
	if f.rt != nil {
		f.rt.Close()
	}
	for _, ts := range f.replicas {
		ts.Close()
	}
	for _, eng := range f.engines {
		eng.Close()
	}
	for _, sp := range f.samplers {
		sp.Close() // drain queued traces before the sinks close
	}
	for _, s := range f.sinks {
		s.Close()
	}
	f.samplers, f.sinks = nil, nil
}

// runClusterBench measures aggregate throughput through the router at 1, 2,
// and 4 replicas over a fixed working set of distinct queries, then runs the
// kill-a-replica failover experiment at 2 replicas.
func runClusterBench(m *core.Model, testX *tensor.Matrix) (*clusterBenchSection, *failoverBenchSection, error) {
	const cacheEntries = 320
	tauMax := m.Cfg.TauMax
	// Distinct (x, τ) pairs: 1.6× one replica's cache, so a lone replica's
	// LRU thrashes under the cyclic scan while each shard of a 2+-replica
	// split fits its cache.
	workingSet := cacheEntries * 8 / 5
	if max := testX.Rows * (tauMax + 1); workingSet > max {
		workingSet = max
	}
	bodies := make([][]byte, workingSet)
	for i := range bodies {
		bodies[i] = estimateBodyJSON(testX.Row(i%testX.Rows), (i/testX.Rows)%(tauMax+1))
	}
	calls := 6 * workingSet

	sec := &clusterBenchSection{
		VNodes:         cluster.DefaultVNodes,
		CacheEntries:   cacheEntries,
		WorkingSetKeys: workingSet,
		Calls:          calls,
	}
	client := benchClient()
	for _, n := range []int{1, 2, 4} {
		f, err := newBenchFleet(m, n, cacheEntries, 0, 0, "", 0)
		if err != nil {
			return nil, nil, err
		}
		qps, hit, err := driveFleet(client, f, bodies, calls, -1, nil)
		f.close()
		if err != nil {
			return nil, nil, err
		}
		run := clusterRun{Replicas: n, QPS: qps, HitRatio: hit}
		if len(sec.Runs) > 0 && sec.Runs[0].QPS > 0 {
			run.Speedup = qps / sec.Runs[0].QPS
			run.Efficiency = run.Speedup / float64(n)
		} else {
			run.Speedup = 1
			run.Efficiency = 1
		}
		sec.Runs = append(sec.Runs, run)
	}

	// Failover: 2 replicas, aggressive probing, one replica hard-killed a
	// third of the way in.
	f, err := newBenchFleet(m, 2, cacheEntries, 20*time.Millisecond, 2, "", 0)
	if err != nil {
		return nil, nil, err
	}
	defer f.close()
	f.rt.Start()
	foCalls := 4 * workingSet
	var bad atomic.Int64
	_, _, err = driveFleet(client, f, bodies, foCalls, foCalls/3, &bad)
	if err != nil {
		return nil, nil, err
	}
	fo := &failoverBenchSection{
		Replicas:  2,
		Calls:     foCalls,
		Client5xx: int(bad.Load()),
		Failovers: f.reg.Counter("cluster.failovers").Value(),
		Ejected:   f.rt.Ring().Len() == 1,
	}
	return sec, fo, nil
}

// runTracingOverheadBench measures what cluster-wide tracing costs the
// client: sequential request latency through three otherwise-identical
// 2-replica fleets — tracing off, the operational default sample rate
// (0.01), and the full incident rate (1.0) — interleaved in rotating
// rounds so machine drift is charged to every configuration equally.
// Each traced run's logs are then assembled with tracescan, so the section
// also vouches that router-sampled requests joined and tiled at both rates.
func runTracingOverheadBench(m *core.Model, testX *tensor.Matrix, calls int) (*clusterTracingSection, error) {
	const cacheEntries = 1024
	tauMax := m.Cfg.TauMax
	keys := cacheEntries / 2 // working set fits every cache: steady-state latency
	if max := testX.Rows * (tauMax + 1); keys > max {
		keys = max
	}
	bodies := make([][]byte, keys)
	for i := range bodies {
		bodies[i] = estimateBodyJSON(testX.Row(i%testX.Rows), (i/testX.Rows)%(tauMax+1))
	}

	off, err := newBenchFleet(m, 2, cacheEntries, 0, 0, "", 0)
	if err != nil {
		return nil, err
	}
	defer off.close()

	type tracedRun struct {
		rate  float64
		fleet *benchFleet
		lats  []float64
	}
	traced := make([]*tracedRun, 0, 2)
	for _, rate := range []float64{0.01, 1.0} {
		dir, err := os.MkdirTemp("", "cardnet-tracebench-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		f, err := newBenchFleet(m, 2, cacheEntries, 0, 0, dir, rate)
		if err != nil {
			return nil, err
		}
		defer f.close()
		traced = append(traced, &tracedRun{rate: rate, fleet: f})
	}

	client := benchClient()
	drive := func(f *benchFleet, start, n int) ([]float64, error) {
		lats := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			t0 := time.Now()
			resp, err := client.Post(f.front.URL+"/estimate", "application/json", bytes.NewReader(bodies[(start+i)%len(bodies)]))
			if err != nil {
				return nil, err
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("tracing bench: status %d", resp.StatusCode)
			}
			lats = append(lats, float64(time.Since(t0).Nanoseconds())/1e3)
		}
		return lats, nil
	}

	fleets := []*benchFleet{off, traced[0].fleet, traced[1].fleet}
	var offLats []float64
	sinks := []*[]float64{&offLats, &traced[0].lats, &traced[1].lats}

	// Warm pass on each fleet populates caches and HTTP connection pools.
	for _, f := range fleets {
		if _, err := drive(f, 0, keys); err != nil {
			return nil, err
		}
	}

	// Interleave per request, rotating which fleet goes first: a GC pause or
	// scheduler blip lands on whichever request happens to be in flight, so
	// machine noise spreads uniformly across the three configurations instead
	// of being charged to whichever fleet owned that time slice — which is
	// what dominates tail percentiles on a small host.
	for i := 0; i < calls; i++ {
		for k := range fleets {
			j := (i + k) % len(fleets)
			l, err := drive(fleets[j], i, 1)
			if err != nil {
				return nil, err
			}
			*sinks[j] = append(*sinks[j], l...)
		}
	}

	sec := &clusterTracingSection{Replicas: 2, Off: summarize(offLats)}
	for _, tc := range traced {
		// Drops only happen on the request path (Emit), so the counter is
		// final once driving stops; read it before close nils the samplers.
		var dropped uint64
		for _, sp := range tc.fleet.samplers {
			dropped += sp.Dropped()
		}
		// Flush this fleet's sinks, then hold the bench to the tentpole's
		// own standard: every router-sampled request assembles and tiles.
		paths := append([]string(nil), tc.fleet.tracePaths...)
		tc.fleet.close()
		events, err := tracescan.LoadFiles(paths)
		if err != nil {
			return nil, err
		}
		rep := tracescan.BuildReport(events, 5000, 5)
		run := tracingRateRun{
			Rate:             tc.rate,
			On:               summarize(tc.lats),
			TracesAssembled:  rep.Traces,
			TracesJoined:     rep.Joined,
			TilingViolations: rep.TilingViolations,
			SamplerDropped:   dropped,
		}
		run.OverheadP50Pct = overheadPct(run.On.P50Micros, sec.Off.P50Micros)
		run.OverheadP99Pct = overheadPct(run.On.P99Micros, sec.Off.P99Micros)
		sec.Runs = append(sec.Runs, run)
	}
	return sec, nil
}

// driveFleet pushes calls requests through the fleet's router from 4
// concurrent clients cycling the working set in order (the cyclic scan is
// what defeats a too-small LRU). killAt >= 0 hard-kills the last replica
// after that many of client 0's requests; bad counts 5xx responses. Returns
// aggregate QPS and the fleet-wide estimate-cache hit ratio, measured after
// one warm pass.
func driveFleet(client *http.Client, f *benchFleet, bodies [][]byte, calls, killAt int, bad *atomic.Int64) (qps, hitRatio float64, err error) {
	post := func(i int) (int, error) {
		resp, err := client.Post(f.front.URL+"/estimate", "application/json", bytes.NewReader(bodies[i%len(bodies)]))
		if err != nil {
			return 0, err
		}
		resp.Body.Close()
		return resp.StatusCode, nil
	}
	// Warm pass: populate every replica's cache partition.
	for i := range bodies {
		if _, err := post(i); err != nil {
			return 0, 0, err
		}
	}

	hits0 := obs.Default.Counter("serving.cache.hits").Value()
	miss0 := obs.Default.Counter("serving.cache.misses").Value()
	const clients = 4
	per := calls / clients
	var wg sync.WaitGroup
	var errs atomic.Int64
	wg.Add(clients)
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if c == 0 && killAt >= 0 && i == killAt/clients {
					victim := f.replicas[len(f.replicas)-1]
					victim.CloseClientConnections()
					victim.Close()
				}
				code, err := post(c*per + i)
				if err != nil {
					errs.Add(1)
					continue
				}
				if bad != nil && code >= 500 {
					bad.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(t0).Seconds()
	if n := errs.Load(); n > 0 {
		return 0, 0, fmt.Errorf("cluster bench: %d transport errors", n)
	}
	hits := float64(obs.Default.Counter("serving.cache.hits").Value() - hits0)
	misses := float64(obs.Default.Counter("serving.cache.misses").Value() - miss0)
	if hits+misses > 0 {
		hitRatio = hits / (hits + misses)
	}
	return float64(per*clients) / elapsed, hitRatio, nil
}
