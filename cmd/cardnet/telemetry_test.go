package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cardnet/internal/obs"
	"cardnet/internal/obs/slo"
	"cardnet/internal/serving"
)

// Satellite: every /estimate error response still carries X-Trace-Id, so a
// failing call is as correlatable with the trace log as a successful one.
func TestEstimateErrorResponsesCarryTraceID(t *testing.T) {
	m := tinyModel(3)
	ts, eng := newTestServer(t, m, serving.Config{})
	x := strings.Join(binXStrings(m), ",")

	check := func(name string, resp *http.Response, wantCode int) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("%s: status=%d, want %d", name, resp.StatusCode, wantCode)
		}
		if resp.Header.Get("X-Trace-Id") == "" {
			t.Fatalf("%s: %d response lost X-Trace-Id", name, resp.StatusCode)
		}
	}

	resp, err := http.Post(ts.URL+"/estimate", "application/json", bytes.NewBufferString(`{not json`))
	if err != nil {
		t.Fatal(err)
	}
	check("bad JSON", resp, http.StatusBadRequest)

	resp, err = http.Get(ts.URL + "/estimate?x=" + x + "&tau=99")
	if err != nil {
		t.Fatal(err)
	}
	check("bad tau", resp, http.StatusBadRequest)

	// Closed engine -> 503 path.
	eng.Close()
	before5xx := obs.Default.Counter("http.estimate.5xx").Value()
	resp, err = http.Get(ts.URL + "/estimate?x=" + x + "&tau=1")
	if err != nil {
		t.Fatal(err)
	}
	check("engine closed", resp, http.StatusServiceUnavailable)
	if got := obs.Default.Counter("http.estimate.5xx").Value(); got != before5xx+1 {
		t.Fatalf("http.estimate.5xx = %d, want %d", got, before5xx+1)
	}
}

func TestEstimateAvailabilityCounters(t *testing.T) {
	m := tinyModel(3)
	ts, _ := newTestServer(t, m, serving.Config{})
	x := strings.Join(binXStrings(m), ",")

	beforeTotal := obs.Default.Counter("http.estimate.requests").Value()
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/estimate?x=" + x + "&tau=1")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if got := obs.Default.Counter("http.estimate.requests").Value(); got != beforeTotal+3 {
		t.Fatalf("http.estimate.requests advanced by %d, want 3", got-beforeTotal)
	}
}

func TestServeSLOEndpoint(t *testing.T) {
	m := tinyModel(3)
	ts, _ := newTestServer(t, m, serving.Config{})

	resp, err := http.Get(ts.URL + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/slo status=%d", resp.StatusCode)
	}
	var st slo.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.State != "ok" {
		t.Fatalf("/slo state=%q on idle server", st.State)
	}
	if len(st.Objectives) != 2 {
		t.Fatalf("/slo objectives: %+v", st.Objectives)
	}
	kinds := map[string]bool{}
	for _, o := range st.Objectives {
		kinds[o.Kind] = true
	}
	if !kinds["latency"] || !kinds["availability"] {
		t.Fatalf("/slo objective kinds: %+v", st.Objectives)
	}

	post, err := http.Post(ts.URL+"/slo", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /slo status=%d, want 405", post.StatusCode)
	}
}

func TestHealthzCarriesBuildAndSLO(t *testing.T) {
	m := tinyModel(3)
	ts, _ := newTestServer(t, m, serving.Config{})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz["version"] != buildVersion || hz["git_sha"] != buildSHA {
		t.Fatalf("healthz build identity: %+v", hz)
	}
	if hz["slo"] != "ok" {
		t.Fatalf("healthz slo state: %+v", hz)
	}
	if v, ok := hz["start_time_seconds"].(float64); !ok || v <= 0 {
		t.Fatalf("healthz start time: %+v", hz)
	}
}

func TestMetricsFederateEndpoint(t *testing.T) {
	obs.SetEnabled(true)
	m := tinyModel(3)
	peer, _ := newTestServer(t, m, serving.Config{})
	// Drive one estimate through the peer so its exposition has serving
	// histograms, not just zero counters.
	x := strings.Join(binXStrings(m), ",")
	if resp, err := http.Get(peer.URL + "/estimate?x=" + x + "&tau=1"); err == nil {
		resp.Body.Close()
	}

	eng := serving.NewEngine(serving.NewRegistry(tinyModel(5)), serving.Config{})
	fed := httptest.NewServer(newServeMux(eng, serveOptions{peers: []string{peer.URL + "/metrics"}}))
	t.Cleanup(func() { fed.Close(); eng.Close() })

	resp, err := http.Get(fed.URL + "/metrics/federate")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics/federate status=%d", resp.StatusCode)
	}
	series, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("federated output does not re-parse: %v", err)
	}
	inst := strings.TrimPrefix(peer.URL, "http://")
	up := obs.FormatSeries("federate_up", []obs.Label{{Name: "instance", Value: inst}})
	if series[up] != 1 {
		t.Fatalf("federate_up for %s = %v (series count %d)", inst, series[up], len(series))
	}
	reqs := obs.FormatSeries("serving_requests_total", []obs.Label{{Name: "instance", Value: inst}})
	if series[reqs] < 1 {
		t.Fatalf("federated peer counter %q = %v", reqs, series[reqs])
	}

	// Without -peers, federation is explicitly absent rather than empty.
	bare, _ := newTestServer(t, tinyModel(7), serving.Config{})
	resp2, err := http.Get(bare.URL + "/metrics/federate")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unconfigured federate status=%d, want 404", resp2.StatusCode)
	}
}

func TestRunFleetstat(t *testing.T) {
	obs.SetEnabled(true)
	m := tinyModel(3)
	a, _ := newTestServer(t, m, serving.Config{})
	b, _ := newTestServer(t, tinyModel(5), serving.Config{})

	x := strings.Join(binXStrings(m), ",")
	for i := 0; i < 4; i++ {
		if resp, err := http.Get(a.URL + "/estimate?x=" + x + "&tau=1"); err == nil {
			resp.Body.Close()
		}
	}

	var out bytes.Buffer
	peers := []string{a.URL, b.URL, "http://127.0.0.1:1"} // third is dead
	if err := runFleetstat(&out, peers, 50*time.Millisecond, nil); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "INSTANCE") || !strings.Contains(got, "QPS") {
		t.Fatalf("fleetstat table missing header:\n%s", got)
	}
	for _, p := range peers[:2] {
		inst := strings.TrimPrefix(p, "http://")
		if !strings.Contains(got, inst) {
			t.Fatalf("fleetstat table missing %s:\n%s", inst, got)
		}
	}
	if !strings.Contains(got, "down") {
		t.Fatalf("fleetstat table missing down row:\n%s", got)
	}
	// Live replicas resolve their healthz columns.
	if !strings.Contains(got, "ok") {
		t.Fatalf("fleetstat table missing healthy state:\n%s", got)
	}

	if err := runFleetstat(&out, nil, time.Millisecond, nil); err == nil {
		t.Fatal("runFleetstat accepted an empty peer list")
	}
}

func TestSplitPeers(t *testing.T) {
	got := splitPeers(" host1:8089, http://host2:9/ ,, https://host3 ")
	want := []string{"http://host1:8089", "http://host2:9", "https://host3"}
	if len(got) != len(want) {
		t.Fatalf("splitPeers = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitPeers[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if urls := peerMetricsURLs("host1:1"); len(urls) != 1 || urls[0] != "http://host1:1/metrics" {
		t.Fatalf("peerMetricsURLs = %v", urls)
	}
}
