package main

import (
	"log"
	"strings"
	"time"

	"cardnet/internal/obs"
	"cardnet/internal/obs/profcap"
	"cardnet/internal/obs/slo"
)

// telemetrySettings is the flag-shaped configuration of the serve-mode SLO
// tracker and triggered profiler, collected so buildTelemetry has one
// argument instead of thirteen.
type telemetrySettings struct {
	latencyBound  float64 // seconds
	latencyTarget float64
	availTarget   float64
	fastWindow    time.Duration
	slowWindow    time.Duration
	interval      time.Duration
	logPath       string // "off" disables the transition log

	profileDir      string // "off" disables triggered capture
	profileRetain   int
	profileCooldown time.Duration
	profileCPU      time.Duration
	profileP99      float64 // seconds; 0 = no p99 trigger
}

// buildTelemetry wires the SLO tracker to the triggered profiler: entering
// page state captures a CPU+heap pair attributed "page", and (when a p99
// threshold is set) a fast-window p99 breach captures one attributed "p99".
// Every transition is logged; with -slolog it is also appended to a JSONL
// sink whose close func is returned. The sink itself is returned too, so the
// autopilot can mirror its swap/reject decisions into the same transition
// stream (nil when -slolog is off).
func buildTelemetry(ts telemetrySettings) (*slo.Tracker, *profcap.Capturer, *obs.Sink, func()) {
	var profiler *profcap.Capturer
	if ts.profileDir != "" && ts.profileDir != "off" {
		var err error
		profiler, err = profcap.New(profcap.Config{
			Dir:         ts.profileDir,
			Retain:      ts.profileRetain,
			Cooldown:    ts.profileCooldown,
			CPUDuration: ts.profileCPU,
		})
		if err != nil {
			log.Fatalf("profile capture: %v", err)
		}
		log.Printf("triggered profiling to %s (retain %d pairs, cooldown %s)",
			ts.profileDir, ts.profileRetain, ts.profileCooldown)
	}

	closeLog := func() {}
	var sink *obs.Sink
	if ts.logPath != "" && ts.logPath != "off" {
		s, err := obs.NewFileSink(ts.logPath)
		if err != nil {
			log.Fatalf("open slo log: %v", err)
		}
		sink = s
		closeLog = func() {
			if err := s.Close(); err != nil {
				log.Printf("close slo log: %v", err)
			}
		}
		log.Printf("writing SLO transitions to %s", ts.logPath)
	}

	cfg := slo.Config{
		Interval:     ts.interval,
		FastWindow:   ts.fastWindow,
		SlowWindow:   ts.slowWindow,
		P99Threshold: ts.profileP99,
		Sink:         sink,
		Objectives:   defaultSLOObjectives(ts.latencyBound, ts.latencyTarget, ts.availTarget),
		OnTransition: func(tr slo.Transition) {
			log.Printf("slo: %s %s -> %s (burn fast %.2f, slow %.2f)",
				tr.Objective, tr.From, tr.To, tr.FastBurn, tr.SlowBurn)
			if profiler != nil && tr.To == slo.StatePage.String() {
				profiler.Trigger("page")
			}
		},
	}
	if profiler != nil && ts.profileP99 > 0 {
		cfg.OnP99 = func(objective string, p99 float64) {
			profiler.Trigger("p99")
		}
	}
	return slo.New(cfg), profiler, sink, closeLog
}

// splitPeers parses the -peers flag into base URLs: comma-separated
// host:port entries or full URLs, scheme defaulting to http.
func splitPeers(csv string) []string {
	var peers []string
	for _, p := range strings.Split(csv, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if !strings.Contains(p, "://") {
			p = "http://" + p
		}
		peers = append(peers, strings.TrimSuffix(p, "/"))
	}
	return peers
}

// peerMetricsURLs maps the -peers flag to the peers' /metrics scrape URLs.
func peerMetricsURLs(csv string) []string {
	bases := splitPeers(csv)
	urls := make([]string, len(bases))
	for i, b := range bases {
		urls[i] = b + "/metrics"
	}
	return urls
}
