package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cardnet/internal/cluster"
	"cardnet/internal/obs"
	"cardnet/internal/obs/tracescan"
	"cardnet/internal/serving"
)

// traceSink opens a JSONL trace sink in dir and returns a rate-1.0 sampler
// over it (every request sampled) plus the path.
func traceSink(t *testing.T, dir, name string) (*obs.TraceSampler, *obs.Sink, string) {
	t.Helper()
	path := filepath.Join(dir, name)
	sink, err := obs.NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	return obs.NewTraceSampler(1.0, sink), sink, path
}

// TestRouterE2ETraceAssembly is the distributed-tracing acceptance test: a
// router fronting two traced replicas (sampling 1.0), with one replica
// rejecting its first requests to force failovers. Every sampled request
// must assemble into a cross-process trace that tiles within tolerance, the
// report must show the retry amplification, and a histogram exemplar scraped
// from the router's OpenMetrics /metrics must resolve to an assembled trace.
func TestRouterE2ETraceAssembly(t *testing.T) {
	dir := t.TempDir()
	m := tinyModel(3)

	samplerA, sinkA, pathA := traceSink(t, dir, "replica-a.trace.jsonl")
	samplerB, sinkB, pathB := traceSink(t, dir, "replica-b.trace.jsonl")
	samplerR, sinkR, pathR := traceSink(t, dir, "router.trace.jsonl")

	engA := serving.NewEngine(serving.NewRegistry(m), serving.Config{MaxBatch: 4, MaxWait: time.Millisecond})
	engB := serving.NewEngine(serving.NewRegistry(m), serving.Config{MaxBatch: 4, MaxWait: time.Millisecond})
	tsA := httptest.NewServer(newServeMux(engA, serveOptions{sampler: samplerA}))
	t.Cleanup(func() { tsA.Close(); engA.Close() })

	// Replica B rejects its first 3 estimates with a bare 503 (no
	// Retry-After, so the router keeps it in rotation): forced failovers.
	var rejected atomic.Int64
	muxB := newServeMux(engB, serveOptions{sampler: samplerB})
	tsB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/estimate" && rejected.Add(1) <= 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"warming up"}`)
			return
		}
		muxB.ServeHTTP(w, r)
	}))
	t.Cleanup(func() { tsB.Close(); engB.Close() })

	reg := obs.NewRegistry()
	rt, err := cluster.New(cluster.Config{
		Replicas: []string{tsA.URL, tsB.URL},
		Registry: reg,
		Retries:  1,
		Sampler:  samplerR,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { front.Close(); rt.Close() })

	// Drive traffic across distinct keys (three x variants × nine taus) so
	// both replicas own ring segments; collect the response trace IDs.
	xs := binXStrings(m)
	responded := map[string]bool{}
	calls := 0
	for variant := 0; variant < 3; variant++ {
		x := append([]string(nil), xs...)
		x[variant] = "1"
		for tau := 0; tau <= 8; tau++ {
			body := fmt.Sprintf(`{"x":[%s],"tau":%d}`, strings.Join(x, ","), tau)
			resp, err := http.Post(front.URL+"/estimate", "application/json", bytes.NewBufferString(body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("variant=%d tau=%d status=%d", variant, tau, resp.StatusCode)
			}
			tid := resp.Header.Get(obs.TraceHeader)
			if tid == "" {
				t.Fatal("response missing X-Trace-Id")
			}
			responded[tid] = true
			calls++
		}
	}
	if rejected.Load() < 3 {
		t.Fatalf("replica B rejected only %d requests; failover not exercised", rejected.Load())
	}

	// Scrape the router's OpenMetrics exposition before tearing down: the
	// e2e histogram must carry trace-ID exemplars.
	req, _ := http.NewRequest(http.MethodGet, front.URL+"/metrics", nil)
	req.Header.Set("Accept", obs.OpenMetricsContentType)
	mresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	exemplars, err := obs.ParseExemplars(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Drain the async emission queues, then close the sinks.
	for _, sp := range []*obs.TraceSampler{samplerA, samplerB, samplerR} {
		if err := sp.Close(); err != nil {
			t.Fatal(err)
		}
		if sp.Dropped() != 0 {
			t.Fatalf("sampler dropped %d traces", sp.Dropped())
		}
	}
	for _, s := range []*obs.Sink{sinkA, sinkB, sinkR} {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Assemble all three logs. 5ms skew tolerance: same host, same clock —
	// anything beyond float noise would be a tiling bug.
	files := []string{pathR, pathA, pathB}
	events, err := tracescan.LoadFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	const skewUs = 5000.0
	traces, orphans := tracescan.Assemble(events, skewUs)
	if len(traces) != calls {
		t.Fatalf("assembled %d traces from %d requests (sampling 1.0 must catch all)", len(traces), calls)
	}
	if orphans != 0 {
		t.Fatalf("%d orphan replica spans: trace propagation lost the join key", orphans)
	}
	assembled := map[string]*tracescan.Trace{}
	joined := 0
	for _, tr := range traces {
		assembled[tr.ID] = tr
		if !responded[tr.ID] {
			t.Fatalf("assembled trace %s never appeared on a response header", tr.ID)
		}
		if !tr.TilingOK {
			t.Fatalf("trace %s violates tiling: stage-sum err %.3fus, skew %.3fus", tr.ID, tr.TilingErrUs, tr.SkewUs)
		}
		if len(tr.Replicas) > 0 {
			joined++
			if tr.NetworkUs < 0 && -tr.NetworkUs > skewUs {
				t.Fatalf("trace %s: replica total exceeds router proxy window by %.1fus", tr.ID, -tr.NetworkUs)
			}
		}
	}
	if joined != calls {
		t.Fatalf("only %d/%d traces joined a replica span", joined, calls)
	}

	rep := tracescan.BuildReport(events, skewUs, 5)
	if rep.TilingViolations != 0 {
		t.Fatalf("report counts %d tiling violations", rep.TilingViolations)
	}
	if rep.Amplification.MaxAttempts < 2 {
		t.Fatalf("forced failovers missing from amplification: %+v", rep.Amplification)
	}
	if rep.Amplification.ByOutcome["rejected_503"] < 3 {
		t.Fatalf("rejected_503 attempts %d, want >=3", rep.Amplification.ByOutcome["rejected_503"])
	}
	if rep.Amplification.ByOutcome["ok"] != calls {
		t.Fatalf("ok attempts %d, want %d", rep.Amplification.ByOutcome["ok"], calls)
	}

	// Exemplar workflow: a cluster.proxy.seconds exemplar from /metrics names
	// a trace that tracescan assembled end to end.
	found := 0
	for series, ex := range exemplars {
		if !strings.HasPrefix(series, "cluster_proxy_seconds_bucket") {
			continue
		}
		found++
		if assembled[ex.TraceID] == nil {
			t.Fatalf("exemplar on %s names trace %s, which did not assemble", series, ex.TraceID)
		}
	}
	if found == 0 {
		t.Fatalf("no cluster_proxy_seconds exemplars in the router exposition (got %d exemplars total)", len(exemplars))
	}

	// And the CLI mode over the same files: text+JSON report, no tiling
	// error, amplification preserved in the machine-readable output.
	jsonPath := filepath.Join(dir, "report.json")
	var text bytes.Buffer
	err = runTracescan(&text, tracescanSettings{
		files:    files,
		topN:     5,
		skew:     5 * time.Millisecond,
		jsonPath: jsonPath,
	})
	if err != nil {
		t.Fatalf("runTracescan: %v", err)
	}
	if !strings.Contains(text.String(), "amplification") || !strings.Contains(text.String(), "slowest") {
		t.Fatalf("text report incomplete:\n%s", text.String())
	}
	doc, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var fromJSON tracescan.Report
	if err := json.Unmarshal(doc, &fromJSON); err != nil {
		t.Fatal(err)
	}
	if fromJSON.Traces != calls || fromJSON.Amplification.MaxAttempts < 2 {
		t.Fatalf("JSON report diverges: traces=%d amp=%+v", fromJSON.Traces, fromJSON.Amplification)
	}
}

// traceIDSet parses a JSONL trace log and returns the set of trace IDs in it.
func traceIDSet(t *testing.T, path string) map[string]bool {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec struct {
			TraceID string `json:"trace_id"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("%s: bad trace line %q: %v", path, line, err)
		}
		if rec.TraceID == "" {
			t.Fatalf("%s: trace line without trace_id: %q", path, line)
		}
		ids[rec.TraceID] = true
	}
	return ids
}

// TestTraceSamplingDecisionPropagates verifies head-based sampling: at
// operational rates the router's sampling decision rides X-Trace-Sampled to
// the replica, which emits its half of exactly the traces the router sampled.
// Without decision propagation the two sides would sample independently and
// the replica log would be a disjoint 1-in-N subset that almost never joins.
func TestTraceSamplingDecisionPropagates(t *testing.T) {
	dir := t.TempDir()
	m := tinyModel(3)

	// The replica's own sampler fires once in a million requests: any trace
	// in its log during this test must come from a propagated decision.
	repPath := filepath.Join(dir, "replica.trace.jsonl")
	repSink, err := obs.NewFileSink(repPath)
	if err != nil {
		t.Fatal(err)
	}
	samplerRep := obs.NewTraceSampler(0.000001, repSink)

	rtPath := filepath.Join(dir, "router.trace.jsonl")
	rtSink, err := obs.NewFileSink(rtPath)
	if err != nil {
		t.Fatal(err)
	}
	samplerRt := obs.NewTraceSampler(0.5, rtSink) // every 2nd request

	eng := serving.NewEngine(serving.NewRegistry(m), serving.Config{MaxBatch: 4, MaxWait: time.Millisecond})
	ts := httptest.NewServer(newServeMux(eng, serveOptions{sampler: samplerRep}))
	t.Cleanup(func() { ts.Close(); eng.Close() })

	rt, err := cluster.New(cluster.Config{
		Replicas: []string{ts.URL},
		Registry: obs.NewRegistry(),
		Sampler:  samplerRt,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { front.Close(); rt.Close() })

	const calls = 12
	body := fmt.Sprintf(`{"x":[%s],"tau":1}`, strings.Join(binXStrings(m), ","))
	for i := 0; i < calls; i++ {
		resp, err := http.Post(front.URL+"/estimate", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("call %d: status %d", i, resp.StatusCode)
		}
	}

	for _, sp := range []*obs.TraceSampler{samplerRep, samplerRt} {
		if err := sp.Close(); err != nil {
			t.Fatal(err)
		}
		if sp.Dropped() != 0 {
			t.Fatalf("sampler dropped %d traces", sp.Dropped())
		}
	}
	for _, s := range []*obs.Sink{repSink, rtSink} {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}

	routerIDs := traceIDSet(t, rtPath)
	replicaIDs := traceIDSet(t, repPath)
	if len(routerIDs) != calls/2 {
		t.Fatalf("router sampled %d of %d requests, want %d", len(routerIDs), calls, calls/2)
	}
	if len(replicaIDs) != len(routerIDs) {
		t.Fatalf("replica emitted %d traces, router sampled %d: decision did not propagate 1:1", len(replicaIDs), len(routerIDs))
	}
	for id := range routerIDs {
		if !replicaIDs[id] {
			t.Fatalf("router sampled trace %s but the replica never emitted its half", id)
		}
	}

	// The point of coherent sampling: both halves of every sampled request
	// are present, so tracescan joins them all with zero orphans.
	events, err := tracescan.LoadFiles([]string{rtPath, repPath})
	if err != nil {
		t.Fatal(err)
	}
	traces, orphans := tracescan.Assemble(events, 5000)
	if orphans != 0 {
		t.Fatalf("%d orphan replica spans despite propagated decisions", orphans)
	}
	if len(traces) != calls/2 {
		t.Fatalf("assembled %d traces, want %d", len(traces), calls/2)
	}
	for _, tr := range traces {
		if len(tr.Replicas) == 0 {
			t.Fatalf("trace %s has no replica span: halves did not join", tr.ID)
		}
	}
}
