package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"cardnet/internal/obs"
	"cardnet/internal/obs/monitor"
	"cardnet/internal/serving"
	"cardnet/internal/simselect"
)

// Every /estimate response — success or failure — carries a unique
// X-Trace-Id so clients can correlate slow calls with the trace log.
func TestEstimateResponsesCarryTraceID(t *testing.T) {
	m := tinyModel(3)
	ts, _ := newTestServer(t, m, serving.Config{MaxBatch: 4, MaxWait: time.Millisecond})

	xCSV := strings.Join(binXStrings(m), ",")
	seen := map[string]bool{}
	for _, url := range []string{
		ts.URL + "/estimate?x=" + xCSV + "&tau=2", // 200
		ts.URL + "/estimate?x=1,0&tau=2",          // 400: short x
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get("X-Trace-Id")
		if len(id) != 16 {
			t.Fatalf("GET %s: X-Trace-Id = %q, want 16 hex chars", url, id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

func stageSums(t *testing.T) (map[string]float64, float64, uint64) {
	t.Helper()
	stages := []string{
		serving.StageAdmission, serving.StageCache, serving.StageQueueWait,
		serving.StageBatchForm, serving.StageForward, serving.StageWrite,
	}
	sums := make(map[string]float64, len(stages))
	for _, s := range stages {
		sums[s] = obs.Default.Histogram(serving.StageHistName(s), obs.TimeBuckets()).Sum()
	}
	e2e := obs.Default.Histogram("serving.e2e.seconds", obs.TimeBuckets())
	return sums, e2e.Sum(), e2e.Count()
}

// The acceptance bound of the tracing design: per-stage histogram time sums
// to the end-to-end latency within 10%. Marks tile the traced interval, so
// this holds by construction; the test guards the invariant against future
// stages being added without a histogram (or observed twice).
func TestStageHistogramsSumToEndToEnd(t *testing.T) {
	m := tinyModel(3)
	ts, _ := newTestServer(t, m, serving.Config{MaxBatch: 4, MaxWait: 200 * time.Microsecond})

	before, e2eBefore, nBefore := stageSums(t)
	const reqs = 40
	xs := binXStrings(m)
	for i := 0; i < reqs; i++ {
		xs[i%len(xs)] = fmt.Sprint((i + 1) % 2) // vary x: mix cache hits and misses
		url := ts.URL + "/estimate?x=" + strings.Join(xs, ",") + "&tau=" + fmt.Sprint(i%(m.Cfg.TauMax+1))
		if i%5 == 0 {
			url = ts.URL + "/estimate?x=" + strings.Join(xs, ",") + "&all=1"
		}
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	after, e2eAfter, nAfter := stageSums(t)

	if got := nAfter - nBefore; got != reqs {
		t.Fatalf("e2e histogram grew by %d, want %d", got, reqs)
	}
	var stageTotal float64
	for s, b := range before {
		stageTotal += after[s] - b
	}
	e2e := e2eAfter - e2eBefore
	if e2e <= 0 {
		t.Fatalf("e2e sum delta %v", e2e)
	}
	if diff := math.Abs(stageTotal - e2e); diff > 0.10*e2e {
		t.Fatalf("stage sums %.6fs vs e2e %.6fs: off by %.1f%%, want ≤10%%",
			stageTotal, e2e, 100*diff/e2e)
	}
}

// /metrics speaks both formats: expvar-style JSON by default (with an
// explicit Content-Type) and Prometheus 0.0.4 under content negotiation,
// and non-GET methods are rejected.
func TestMetricsContentNegotiation(t *testing.T) {
	m := tinyModel(3)
	ts, _ := newTestServer(t, m, serving.Config{MaxBatch: 2, MaxWait: time.Millisecond})

	// Serve one request so the serving metrics are non-trivial.
	resp, err := http.Get(ts.URL + "/estimate?x=" + strings.Join(binXStrings(m), ",") + "&tau=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Default: JSON with explicit Content-Type.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("JSON Content-Type = %q", ct)
	}
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Prometheus under Accept: text/plain, round-trippable by a parser.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("Prometheus Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	series, err := obs.ParsePrometheus(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("exposition does not round-trip: %v", err)
	}
	for _, want := range []string{
		"serving_requests_total",
		"serving_e2e_seconds_count",
		`serving_e2e_seconds_bucket{le="+Inf"}`,
		"serving_stage_forward_seconds_sum",
		"monitor_drift_level",
	} {
		if _, ok := series[want]; !ok {
			t.Errorf("Prometheus exposition missing %s", want)
		}
	}
	if series[`serving_e2e_seconds_bucket{le="+Inf"}`] != series["serving_e2e_seconds_count"] {
		t.Fatal("+Inf bucket != count")
	}

	// Non-GET is rejected.
	post, err := http.Post(ts.URL+"/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics: status %d, want 405", post.StatusCode)
	}
}

// Labelled feedback drives the drift verdict: consistent accuracy freezes a
// baseline and stays "ok"; the same stale model against drifted actuals
// walks the status to "retrain-recommended" (the Section 8 trigger).
func TestFeedbackDriftTransition(t *testing.T) {
	m := tinyModel(3)
	mon := monitor.New(monitor.Config{BaselineN: 8, EWMAAlpha: 0.5}, obs.Default)
	eng := serving.NewEngine(serving.NewRegistry(m), serving.Config{MaxBatch: 2, MaxWait: time.Millisecond})
	ts := httptest.NewServer(newServeMux(eng, serveOptions{mon: mon}))
	t.Cleanup(func() { ts.Close(); eng.Close() })

	xCSV := strings.Join(binXStrings(m), ",")
	var er estimateResponse
	resp, err := http.Get(ts.URL + "/estimate?x=" + xCSV + "&tau=2")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	postFeedback := func(actual float64) map[string]any {
		t.Helper()
		body := fmt.Sprintf(`{"x":[%s],"tau":2,"actual":%g}`, xCSV, actual)
		resp, err := http.Post(ts.URL+"/feedback", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("feedback status %d", resp.StatusCode)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	getDrift := func() map[string]any {
		t.Helper()
		resp, err := http.Get(ts.URL + "/drift")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	// Accurate feedback establishes the baseline (q-error = 1).
	truth := *er.Estimate
	if truth < 1 {
		truth = 1
	}
	for i := 0; i < 8; i++ {
		postFeedback(truth)
	}
	d := getDrift()
	if d["status"] != monitor.StatusOK || d["baseline_ready"] != true {
		t.Fatalf("after accurate feedback: %+v", d)
	}
	if d["feedback_samples"].(float64) != 8 {
		t.Fatalf("feedback_samples: %+v", d)
	}
	if d["model_version"].(float64) != 1 {
		t.Fatalf("model_version: %+v", d)
	}

	// The data drifted: actual cardinalities are 100× the stale model's
	// estimates. The monitor must escalate to retrain-recommended.
	var last map[string]any
	for i := 0; i < 16; i++ {
		last = postFeedback(truth * 100)
	}
	if last["drift"] != monitor.StatusRetrain {
		t.Fatalf("feedback response after drift: %+v", last)
	}
	d = getDrift()
	if d["status"] != monitor.StatusRetrain {
		t.Fatalf("drift after 100x actuals: %+v", d)
	}
	if d["qerror_ewma"].(float64) < 10 {
		t.Fatalf("EWMA too low after drift: %+v", d)
	}

	// /healthz surfaces the same verdict inside the nested drift block.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	dr, ok := hz["drift"].(map[string]any)
	if !ok {
		t.Fatalf("healthz drift is not a nested block: %+v", hz)
	}
	if dr["status"] != monitor.StatusRetrain {
		t.Fatalf("healthz drift: %+v", dr)
	}
	if lvl, _ := dr["level"].(float64); lvl != 2 {
		t.Fatalf("healthz drift level = %v, want 2", dr["level"])
	}
}

// /feedback rejects malformed bodies.
func TestFeedbackValidation(t *testing.T) {
	m := tinyModel(3)
	ts, _ := newTestServer(t, m, serving.Config{})
	xCSV := strings.Join(binXStrings(m), ",")

	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"bad JSON", `{nope`, http.StatusBadRequest},
		{"missing actual", `{"x":[` + xCSV + `],"tau":1}`, http.StatusBadRequest},
		{"negative actual", `{"x":[` + xCSV + `],"tau":1,"actual":-3}`, http.StatusBadRequest},
		{"missing tau", `{"x":[` + xCSV + `],"actual":5}`, http.StatusBadRequest},
		{"short x", `{"x":[1,0],"tau":1,"actual":5}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/feedback", "application/json", bytes.NewBufferString(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	resp, err := http.Get(ts.URL + "/feedback")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /feedback: status %d, want 405", resp.StatusCode)
	}
}

// A numerically corrupted model breaks the prefix-sum guarantee of Lemma 2
// and trips the monitor's violation counter on the very first served batch.
// NaN pre-activations are absorbed by the decoder ReLU, so the corruption
// that actually escapes is an overflowed (+Inf) decoder bias.
func TestMonotonicityViolationCounted(t *testing.T) {
	m := tinyModel(5)
	corrupted := false
	for _, p := range m.Params() {
		if p.Name == "decB" {
			for i := range p.Value {
				p.Value[i] = math.Inf(1)
			}
			corrupted = true
		}
	}
	if !corrupted {
		t.Fatal("decoder bias param not found")
	}
	mon := monitor.New(monitor.Config{}, obs.NewRegistry())
	eng := serving.NewEngine(serving.NewRegistry(m), serving.Config{
		MaxBatch: 1, CacheEntries: -1,
		CurveCheck: func(c []float64) { mon.CheckCurve(c) },
	})
	defer eng.Close()

	x := make([]float64, m.InDim)
	if _, err := eng.Estimate(context.Background(), x, 2); err != nil {
		t.Fatal(err)
	}
	st := mon.Status()
	if st.MonoChecks == 0 || st.MonoViolations == 0 {
		t.Fatalf("corrupted model not flagged: %+v", st)
	}

	// A healthy model through the same wiring stays clean.
	mon2 := monitor.New(monitor.Config{}, obs.NewRegistry())
	eng2 := serving.NewEngine(serving.NewRegistry(tinyModel(5)), serving.Config{
		MaxBatch: 1, CacheEntries: -1,
		CurveCheck: func(c []float64) { mon2.CheckCurve(c) },
	})
	defer eng2.Close()
	if _, err := eng2.Estimate(context.Background(), x, 2); err != nil {
		t.Fatal(err)
	}
	if st := mon2.Status(); st.MonoViolations != 0 || st.MonoChecks == 0 {
		t.Fatalf("healthy model flagged: %+v", st)
	}
}

// With -tracelog on and rate 1, every request's trace lands in the JSONL
// log with its stages and the response's X-Trace-Id.
func TestTraceSamplingWritesJSONL(t *testing.T) {
	m := tinyModel(3)
	path := t.TempDir() + "/traces.jsonl"
	sink, err := obs.NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	eng := serving.NewEngine(serving.NewRegistry(m), serving.Config{MaxBatch: 2, MaxWait: time.Millisecond})
	sampler := obs.NewTraceSampler(1, sink)
	ts := httptest.NewServer(newServeMux(eng, serveOptions{sampler: sampler}))
	t.Cleanup(func() { ts.Close(); eng.Close() })

	xCSV := strings.Join(binXStrings(m), ",")
	ids := map[string]bool{}
	const reqs = 3
	for i := 0; i < reqs; i++ {
		resp, err := http.Get(ts.URL + "/estimate?x=" + xCSV + "&tau=" + fmt.Sprint(i))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		ids[resp.Header.Get("X-Trace-Id")] = true
	}
	if err := sampler.Close(); err != nil { // drain the async queue first
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != reqs {
		t.Fatalf("trace log has %d lines, want %d", len(lines), reqs)
	}
	for _, line := range lines {
		var ev struct {
			Event   string           `json:"event"`
			TraceID string           `json:"trace_id"`
			TotalUs float64          `json:"total_us"`
			Stages  []obs.TraceStage `json:"stages"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if ev.Event != "trace" || !ids[ev.TraceID] {
			t.Fatalf("trace line does not match a served request: %q", line)
		}
		if len(ev.Stages) == 0 || ev.Stages[len(ev.Stages)-1].Name != serving.StageWrite {
			t.Fatalf("trace stages incomplete: %q", line)
		}
	}
}

// Audit sampling replays served estimates against the exact oracle and
// feeds Audit-source q-errors to the monitor without labelled feedback.
func TestAuditSamplingFeedsMonitor(t *testing.T) {
	m := tinyModel(3)
	// Oracle over a tiny synthetic encoded dataset of the model's dimension.
	rows := make([][]float64, 8)
	for i := range rows {
		rows[i] = make([]float64, m.InDim)
		for j := range rows[i] {
			rows[i][j] = float64((i + j) % 2)
		}
	}
	oracle, err := simselect.NewEncodedOracle(rows)
	if err != nil {
		t.Fatal(err)
	}
	mon := monitor.New(monitor.Config{}, obs.Default)
	eng := serving.NewEngine(serving.NewRegistry(m), serving.Config{MaxBatch: 2, MaxWait: time.Millisecond})
	ts := httptest.NewServer(newServeMux(eng, serveOptions{mon: mon, oracle: oracle, auditRate: 1}))
	t.Cleanup(func() { ts.Close(); eng.Close() })

	xCSV := strings.Join(binXStrings(m), ",")
	for i := 0; i < 8; i++ {
		resp, err := http.Get(ts.URL + "/estimate?x=" + xCSV + "&tau=" + fmt.Sprint(i%(m.Cfg.TauMax+1)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for mon.Status().Audits == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no audit samples recorded")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
