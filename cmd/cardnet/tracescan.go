package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"cardnet/internal/obs/tracescan"
)

// tracescanSettings carries the -mode tracescan flag values into
// runTracescan.
type tracescanSettings struct {
	files    []string      // trace JSONL paths (router + replicas)
	topN     int           // slow-trace table size
	skew     time.Duration // clock-skew tolerance for the tiling check
	jsonPath string        // "" = text only, "-" = JSON to stdout
}

// runTracescan loads sampled trace logs from a fleet, assembles them into
// cross-process traces, and writes the human report to w (plus the
// machine-readable JSON when requested). It fails when any assembled trace
// violates the tiling invariant, so a cron'd scan doubles as a fleet
// consistency check.
func runTracescan(w io.Writer, ts tracescanSettings) error {
	if len(ts.files) == 0 {
		return fmt.Errorf("tracescan needs trace JSONL files as arguments (router and replica -tracelog outputs)")
	}
	events, err := tracescan.LoadFiles(ts.files)
	if err != nil {
		return err
	}
	rep := tracescan.BuildReport(events, float64(ts.skew.Nanoseconds())/1e3, ts.topN)

	switch ts.jsonPath {
	case "":
	case "-":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	default:
		doc, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(ts.jsonPath, append(doc, '\n'), 0o644); err != nil {
			return fmt.Errorf("write report: %w", err)
		}
	}
	if ts.jsonPath != "-" {
		rep.WriteText(w)
	}
	if rep.TilingViolations > 0 {
		return fmt.Errorf("tracescan: %d trace(s) violate the tiling invariant (max stage-sum error %.3fus, max skew %.3fus beyond the %s tolerance)",
			rep.TilingViolations, rep.MaxTilingErrUs, rep.MaxSkewUs, ts.skew)
	}
	return nil
}
