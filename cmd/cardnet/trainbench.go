package main

import (
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"cardnet/internal/bench"
	"cardnet/internal/core"
	"cardnet/internal/tensor"
)

// trainBenchReport records how training throughput scales with the
// data-parallel worker count (results/BENCH_train.json). Every run trains the
// same workload from the same seed; only cfg.Workers (and the matching tensor
// kernel width) changes. GOMAXPROCS and NumCPU are part of the report because
// the speedups are only meaningful relative to the cores the process could
// actually use.
type trainBenchReport struct {
	Dataset      string          `json:"dataset"`
	Records      int             `json:"records"`
	TrainQueries int             `json:"train_queries"`
	Accel        bool            `json:"accel"`
	Epochs       int             `json:"epochs"`
	BatchSize    int             `json:"batch_size"`
	GOMAXPROCS   int             `json:"gomaxprocs"`
	NumCPU       int             `json:"num_cpu"`
	Note         string          `json:"note,omitempty"`
	Runs         []trainBenchRun `json:"runs"`
	Kernels      []kernelBench   `json:"kernels"`
}

// trainBenchRun is one full Train (VAE pretrain + joint epochs) at a fixed
// worker count.
type trainBenchRun struct {
	Workers          int     `json:"workers"`
	TotalSeconds     float64 `json:"total_seconds"`
	EpochSecondsMean float64 `json:"epoch_seconds_mean"`
	EpochSecondsMin  float64 `json:"epoch_seconds_min"`
	SpeedupTotal     float64 `json:"speedup_total_vs_1"`
	SpeedupEpoch     float64 `json:"speedup_epoch_vs_1"`
	BestValidMSLE    float64 `json:"best_valid_msle"`
	FinalTrainLoss   float64 `json:"final_train_loss"`
}

// kernelBench is the throughput of one parallel tensor kernel at one worker
// count, measured at a production-scale shape (paper Section 9.1.3: Φ hidden
// layers are 512×512, driven by a 256-row stacked batch).
type kernelBench struct {
	Kernel  string  `json:"kernel"`
	M       int     `json:"m"`
	K       int     `json:"k"`
	N       int     `json:"n"`
	Workers int     `json:"workers"`
	GFLOPS  float64 `json:"gflops"`
}

// benchWorkerCounts is the ladder the harness sweeps: {1, 2, 4, NumCPU},
// deduplicated and sorted.
func benchWorkerCounts() []int {
	set := map[int]bool{1: true, 2: true, 4: true, runtime.NumCPU(): true}
	var out []int
	for w := range set {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// resolveTrainWorkers maps the -workers flag to a training shard count:
// values below one mean "use every core".
func resolveTrainWorkers(flagVal int) int {
	if flagVal < 1 {
		return runtime.NumCPU()
	}
	return flagVal
}

// runTrainBench trains the bundle once per worker count and measures the
// kernels, producing the full report (Dataset/Records are filled by the
// caller).
func runTrainBench(b *bench.Bundle, accel bool, seed int64, epochs int) *trainBenchReport {
	rep := &trainBenchReport{
		TrainQueries: b.Train.NumQueries(),
		Accel:        accel,
		Epochs:       epochs,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
	}
	if runtime.NumCPU() == 1 {
		rep.Note = "single-CPU host: multi-worker runs measure shard-engine overhead only; wall-clock speedup requires >1 core"
	}

	counts := benchWorkerCounts()
	for _, w := range counts {
		cfg := core.DefaultConfig(b.TauMax)
		cfg.Accel = accel
		cfg.Seed = seed
		cfg.Epochs = epochs
		cfg.Patience = 0 // every run must do identical work: no early stop
		cfg.Workers = w
		rep.BatchSize = cfg.Batch

		var epochSecs []float64
		cfg.Hook = func(ev core.TrainEvent) {
			epochSecs = append(epochSecs, ev.EpochTime.Seconds())
		}
		prev := tensor.SetWorkers(w)
		m := core.New(cfg, b.Train.X.Cols)
		start := time.Now()
		res := m.Train(b.Train, b.Valid)
		total := time.Since(start).Seconds()
		tensor.SetWorkers(prev)

		run := trainBenchRun{
			Workers:        w,
			TotalSeconds:   total,
			BestValidMSLE:  res.BestValidMSLE,
			FinalTrainLoss: res.FinalTrainLoss,
		}
		if len(epochSecs) > 0 {
			minS := epochSecs[0]
			var sum float64
			for _, s := range epochSecs {
				sum += s
				if s < minS {
					minS = s
				}
			}
			run.EpochSecondsMean = sum / float64(len(epochSecs))
			run.EpochSecondsMin = minS
		}
		rep.Runs = append(rep.Runs, run)
	}
	// Speedups relative to the workers=1 run (always first: counts is sorted
	// and contains 1).
	base := rep.Runs[0]
	for i := range rep.Runs {
		if rep.Runs[i].TotalSeconds > 0 {
			rep.Runs[i].SpeedupTotal = base.TotalSeconds / rep.Runs[i].TotalSeconds
		}
		if rep.Runs[i].EpochSecondsMean > 0 {
			rep.Runs[i].SpeedupEpoch = base.EpochSecondsMean / rep.Runs[i].EpochSecondsMean
		}
	}

	rep.Kernels = measureKernels(counts)
	return rep
}

// measureKernels times the three parallel matmul kernels the training engine
// leans on, at each worker count, and reports GFLOP/s.
func measureKernels(counts []int) []kernelBench {
	const m, k, n = 256, 512, 512
	rng := rand.New(rand.NewSource(1))
	fill := func(rows, cols int) *tensor.Matrix {
		mt := tensor.NewMatrix(rows, cols)
		for i := range mt.Data {
			mt.Data[i] = rng.NormFloat64()
		}
		return mt
	}
	// Forward y = x·Wᵀ, backward dX = dY·W, weight grad dW += dYᵀ·X — the
	// Dense-layer hot paths.
	x, wt := fill(m, k), fill(n, k)
	dy, w2 := fill(m, k), fill(k, n)
	g, act, gw := fill(m, k), fill(m, n), tensor.NewMatrix(k, n)
	kernels := []struct {
		name string
		run  func()
	}{
		{"pmatmul_abt", func() { tensor.PMatMulABT(x, wt, nil) }},
		{"pmatmul", func() { tensor.PMatMul(dy, w2, nil) }},
		{"pmatmul_atb_add", func() { tensor.PMatMulATBAdd(g, act, gw) }},
	}
	flops := 2.0 * float64(m) * float64(k) * float64(n)

	var out []kernelBench
	for _, workers := range counts {
		prev := tensor.SetWorkers(workers)
		for _, kd := range kernels {
			kd.run() // warm the pool and caches
			var iters int
			start := time.Now()
			for time.Since(start) < 150*time.Millisecond {
				kd.run()
				iters++
			}
			elapsed := time.Since(start).Seconds()
			out = append(out, kernelBench{
				Kernel: kd.name, M: m, K: k, N: n, Workers: workers,
				GFLOPS: flops * float64(iters) / elapsed / 1e9,
			})
		}
		tensor.SetWorkers(prev)
	}
	return out
}

func (r *trainBenchReport) write(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
