package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"cardnet/internal/autopilot"
	"cardnet/internal/core"
	"cardnet/internal/obs"
	"cardnet/internal/obs/monitor"
	"cardnet/internal/serving"
	"cardnet/internal/tensor"
)

// autopilotBenchReport is the results/BENCH_autopilot.json schema: the three
// numbers the closed loop is judged on. Trigger latency is how long the pilot
// takes to leave idle once drift is sustained (the dwell window is the floor,
// so the interesting number is the excess over it). Shadow overhead is the
// all-τ estimate path with the shadow tap scoring every batch vs. the same
// path with no shadow running. Swap downtime is measured by clients hammering
// the engine across the entire cycle — retrain, shadow, and the hot swap
// itself — and must be zero errors; the worst single-call stall bounds any
// swap-induced hiccup.
type autopilotBenchReport struct {
	Dataset string `json:"dataset"`
	Records int    `json:"records"`
	Queries int    `json:"queries"`
	TauMax  int    `json:"tau_max"`
	Accel   bool   `json:"accel"`

	DwellMillis          float64 `json:"dwell_ms"`
	TriggerLatencyMillis float64 `json:"trigger_latency_ms"`
	TriggerExcessMillis  float64 `json:"trigger_excess_ms"`

	TrainSeconds  float64 `json:"train_seconds"`
	ShadowSeconds float64 `json:"shadow_seconds"`
	CycleSeconds  float64 `json:"cycle_seconds"`

	ShadowOn       latencyStats `json:"shadow_on"`
	ShadowOff      latencyStats `json:"shadow_off"`
	OverheadP50Pct float64      `json:"shadow_overhead_p50_pct"`
	OverheadP99Pct float64      `json:"shadow_overhead_p99_pct"`

	Swap autopilotSwapBench `json:"swap"`
}

// autopilotSwapBench is the downtime section: background clients run from
// trigger to cooldown, so the hot swap happens under live load.
type autopilotSwapBench struct {
	ClientCalls   uint64  `json:"client_calls"`
	ClientErrors  uint64  `json:"client_errors"`
	MaxStallMicro float64 `json:"max_stall_us"`
	VersionBefore uint64  `json:"version_before"`
	VersionAfter  uint64  `json:"version_after"`
	Swaps         uint64  `json:"swaps"`
	Rejects       uint64  `json:"rejects"`
}

// benchLabeler is the synthetic exact oracle for the bench: a monotone curve
// from the query's popcount. The loop's latencies do not depend on what the
// labels are, only that retraining on them produces a winning candidate.
func benchLabeler(x []float64, tauTop int) ([]float64, error) {
	pop := 0.0
	for _, v := range x {
		pop += v
	}
	curve := make([]float64, tauTop+1)
	for tau := range curve {
		curve[tau] = 20 + 5*float64(tau) + 3*pop
	}
	return curve, nil
}

// runAutopilotBench drives one full closed-loop cycle — sustained drift,
// trigger, incremental retrain, shadow evaluation, hot swap — against a live
// engine, measuring the loop's control latencies and the client-visible cost.
// The model is deliberately small (retrain throughput is trainbench's job);
// what this bench sizes is the machinery around the retrain.
func runAutopilotBench(testX *tensor.Matrix, tauMax, calls int, accel bool, seed int64) (*autopilotBenchReport, error) {
	if testX == nil || testX.Rows == 0 {
		return nil, fmt.Errorf("no test queries in bundle")
	}
	if calls < 200 {
		calls = 200
	}
	cfg := core.DefaultConfig(tauMax)
	cfg.VAEHidden = []int{16}
	cfg.VAELatent = 4
	cfg.PhiHidden = []int{32}
	cfg.ZDim = 8
	cfg.Accel = accel
	cfg.Seed = seed
	m := core.New(cfg, testX.Cols)

	eng := serving.NewEngine(serving.NewRegistry(m), serving.Config{
		MaxBatch: 8, MaxWait: 100 * time.Microsecond, CacheEntries: -1,
	})
	defer eng.Close()
	mon := monitor.New(monitor.Config{Window: 64, BaselineN: 4, EWMAAlpha: 0.5}, obs.NewRegistry())
	eng.Registry().OnSwap(mon.ResetBaseline)

	dir, err := os.MkdirTemp("", "autopilotbench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	const dwell = 100 * time.Millisecond
	pcfg := autopilot.Config{
		Dir:           dir,
		Dwell:         dwell,
		Poll:          time.Millisecond,
		Cooldown:      time.Hour,
		MinSamples:    32,
		ShadowRate:    1.0,
		ShadowMin:     calls,
		ShadowTimeout: 10 * time.Minute,
		GateSweep:     64,
		GateSeed:      seed,
	}
	pilot, err := autopilot.New(pcfg, eng, mon, benchLabeler)
	if err != nil {
		return nil, err
	}
	pilot.Start()
	defer pilot.Close()

	// The bundle's test split is small (a dozen queries); the sample store
	// dedups by query, so synthesize a larger pool by flipping one bit per
	// variant — the synthetic popcount labeler stays exact on every variant.
	pool := make([][]float64, 256)
	for i := range pool {
		x := append([]float64(nil), testX.Row(i%testX.Rows)...)
		b := (i / testX.Rows) % len(x)
		x[b] = 1 - x[b]
		pool[i] = x
	}
	for i, x := range pool {
		pilot.Observe(x, i%(tauMax+1))
	}
	_, v0 := eng.Registry().Current()

	// Background clients: single-τ estimates through the whole cycle. Any
	// error — including during the hot swap — counts against downtime; the
	// widest gap between consecutive successes bounds the stall. Throttled so
	// their batches (which also feed the shadow tap) don't close the shadow
	// window before the measured all-τ loop has its samples.
	ctx := context.Background()
	var clientCalls, clientErrs atomic.Uint64
	var maxStall atomic.Int64
	stopClients := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopClients:
					return
				default:
				}
				t0 := time.Now()
				_, err := eng.Estimate(ctx, pool[(c*37+i)%len(pool)], i%(tauMax+1))
				clientCalls.Add(1)
				if err != nil {
					clientErrs.Add(1)
					continue
				}
				if d := time.Since(t0).Microseconds(); d > maxStall.Load() {
					maxStall.Store(d)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(c)
	}

	// Freeze a healthy baseline, then sustain drift: actuals far from the
	// untrained model's estimates keep the monitor at retrain-recommended.
	for i := 0; i < 4; i++ {
		x := pool[i]
		est, err := eng.Estimate(ctx, x, i%(tauMax+1))
		if err != nil {
			return nil, err
		}
		mon.Record(est, est, monitor.Feedback)
	}
	driftStart := time.Now()
	for i := 0; i < 32; i++ {
		x := pool[i%len(pool)]
		tau := i % (tauMax + 1)
		truth, _ := benchLabeler(x, tauMax)
		est, err := eng.Estimate(ctx, x, tau)
		if err != nil {
			return nil, err
		}
		mon.Record(truth[tau], est, monitor.Feedback)
	}

	waitLeave := func(state string, timeout time.Duration) (time.Duration, error) {
		t0 := time.Now()
		for pilot.State() == state {
			if time.Since(t0) > timeout {
				return 0, fmt.Errorf("pilot stuck in %q for %s", state, timeout)
			}
			time.Sleep(500 * time.Microsecond)
		}
		return time.Since(t0), nil
	}
	if _, err := waitLeave(autopilot.StateIdle, time.Minute); err != nil {
		return nil, err
	}
	triggerLatency := time.Since(driftStart)

	trainStart := time.Now()
	for pilot.State() == autopilot.StateTriggered || pilot.State() == autopilot.StateTraining {
		if time.Since(trainStart) > 10*time.Minute {
			return nil, fmt.Errorf("retrain did not finish within 10m")
		}
		time.Sleep(time.Millisecond)
	}
	trainSeconds := time.Since(trainStart).Seconds()

	// Shadow: every all-τ batch is tapped (rate 1.0) and scored. Measured
	// calls are also what feeds the shadow its ShadowMin rows, so the window
	// closes right as the measurement completes.
	shadowStart := time.Now()
	var onDurs []float64
	var seq int
	for pilot.State() == autopilot.StateShadow && len(onDurs) < 4*calls {
		t0 := time.Now()
		if _, err := eng.EstimateAll(ctx, pool[seq%len(pool)]); err != nil {
			return nil, err
		}
		onDurs = append(onDurs, float64(time.Since(t0).Nanoseconds())/1e3)
		seq++
	}
	if _, err := waitLeave(autopilot.StateShadow, time.Minute); err != nil {
		return nil, err
	}
	if _, err := waitLeave(autopilot.StateSwap, time.Minute); err != nil {
		return nil, err
	}
	shadowSeconds := time.Since(shadowStart).Seconds()
	cycleSeconds := time.Since(driftStart).Seconds()
	if len(onDurs) == 0 {
		return nil, fmt.Errorf("shadow window closed before any measured call")
	}

	close(stopClients)
	wg.Wait()

	// Baseline: the identical all-τ path with no shadow running. Measured
	// after the swap — the candidate shares the live architecture, so the
	// forward pass costs the same.
	var offDurs []float64
	for i := 0; i < len(onDurs); i++ {
		t0 := time.Now()
		if _, err := eng.EstimateAll(ctx, pool[seq%len(pool)]); err != nil {
			return nil, err
		}
		offDurs = append(offDurs, float64(time.Since(t0).Nanoseconds())/1e3)
		seq++
	}

	st := pilot.Status()
	_, v1 := eng.Registry().Current()
	rep := &autopilotBenchReport{
		Queries:              testX.Rows,
		TauMax:               tauMax,
		Accel:                accel,
		DwellMillis:          float64(dwell.Milliseconds()),
		TriggerLatencyMillis: float64(triggerLatency.Nanoseconds()) / 1e6,
		TriggerExcessMillis:  float64((triggerLatency - dwell).Nanoseconds()) / 1e6,
		TrainSeconds:         trainSeconds,
		ShadowSeconds:        shadowSeconds,
		CycleSeconds:         cycleSeconds,
		ShadowOn:             summarize(onDurs),
		ShadowOff:            summarize(offDurs),
		Swap: autopilotSwapBench{
			ClientCalls:   clientCalls.Load(),
			ClientErrors:  clientErrs.Load(),
			MaxStallMicro: float64(maxStall.Load()),
			VersionBefore: v0,
			VersionAfter:  v1,
			Swaps:         st.Swaps,
			Rejects:       st.Rejects,
		},
	}
	rep.OverheadP50Pct = overheadPct(rep.ShadowOn.P50Micros, rep.ShadowOff.P50Micros)
	rep.OverheadP99Pct = overheadPct(rep.ShadowOn.P99Micros, rep.ShadowOff.P99Micros)
	if st.Swaps != 1 {
		return nil, fmt.Errorf("bench cycle did not end in a swap: %+v (last %+v)", st, st.LastDecision)
	}
	return rep, nil
}

func (r *autopilotBenchReport) write(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
