package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cardnet/internal/cluster"
	"cardnet/internal/obs"
)

// routerDrainGrace is how long a draining router keeps serving after
// SIGTERM before closing the listener: long enough for load balancers
// polling /healthz to see "draining" and stop sending new traffic.
const routerDrainGrace = 2 * time.Second

// routerSettings carries the -mode router flag values into runRouter.
type routerSettings struct {
	replicas        string // comma-separated replica base URLs
	vnodes          int
	probeInterval   time.Duration
	ejectAfter      int
	retries         int
	bake            time.Duration
	maxRegression   float64
	journalPath     string // "off" disables the rollout journal
	rolloutMinSamps int
	traceRate       float64
	traceLog        string // "off" disables sampled request traces
}

// runRouter blocks fronting the replica fleet on addr until SIGINT/SIGTERM,
// then drains gracefully: /healthz flips to "draining", in-flight proxied
// requests finish, and the prober and rollout controller stop.
func runRouter(addr string, rs routerSettings) error {
	replicas := splitPeers(rs.replicas)
	if len(replicas) == 0 {
		return fmt.Errorf("router needs -replicas (comma-separated replica base URLs)")
	}

	var journal *obs.Sink
	if rs.journalPath != "" && rs.journalPath != "off" {
		sink, err := obs.NewFileSink(rs.journalPath)
		if err != nil {
			return fmt.Errorf("open rollout journal: %w", err)
		}
		journal = sink
		defer func() {
			if err := sink.Close(); err != nil {
				log.Printf("close rollout journal: %v", err)
			}
		}()
		log.Printf("journaling rollout decisions to %s", rs.journalPath)
	}

	var sampler *obs.TraceSampler
	if rs.traceLog != "" && rs.traceLog != "off" {
		sink, err := obs.NewFileSink(rs.traceLog)
		if err != nil {
			return fmt.Errorf("open trace log: %w", err)
		}
		defer func() {
			if err := sink.Close(); err != nil {
				log.Printf("close trace log: %v", err)
			}
		}()
		sampler = obs.NewTraceSampler(rs.traceRate, sink)
		defer sampler.Close() // LIFO: drains the queue before the sink close above
		log.Printf("writing sampled request traces to %s (rate %g); join replica trace logs with `cardnet -mode tracescan`", rs.traceLog, rs.traceRate)
	}

	rt, err := cluster.New(cluster.Config{
		Replicas:      replicas,
		VNodes:        rs.vnodes,
		Retries:       rs.retries,
		ProbeInterval: rs.probeInterval,
		EjectAfter:    rs.ejectAfter,
		Sampler:       sampler,
		Rollout: cluster.RolloutConfig{
			Bake:          rs.bake,
			MaxRegression: rs.maxRegression,
			MinSamples:    rs.rolloutMinSamps,
			Journal:       journal,
		},
	})
	if err != nil {
		return err
	}
	rt.Start()
	defer rt.Close()

	log.Printf("routing %d replicas on %s (vnodes=%d retries=%d probe=%s eject-after=%d)",
		len(replicas), addr, rt.Ring().VNodes(), rs.retries, rs.probeInterval, rs.ejectAfter)
	log.Printf("replicas: %s", strings.Join(replicas, ", "))
	log.Printf("endpoints: POST/GET /estimate, POST /feedback, GET/POST /admin/rollout, /metrics, /healthz")

	srv := &http.Server{
		Addr:              addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down: draining for %s, then closing", routerDrainGrace)
	rt.Drain()
	time.Sleep(routerDrainGrace)
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}
