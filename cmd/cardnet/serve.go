package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"cardnet/internal/core"
	"cardnet/internal/obs"
)

// httpErrors counts non-2xx responses across all endpoints.
var httpErrors = obs.Default.Counter("http.errors")

// runServe blocks serving the estimation API on addr.
func runServe(m *core.Model, addr string) error {
	log.Printf("serving CardNet (in_dim=%d tau_max=%d, %d KB) on %s", m.InDim, m.Cfg.TauMax, m.SizeBytes()/1024, addr)
	log.Printf("endpoints: POST/GET /estimate, /metrics, /healthz, /debug/pprof/")
	return http.ListenAndServe(addr, newServeMux(m))
}

// newServeMux builds the serving handler tree (separated from runServe for
// httptest coverage).
func newServeMux(m *core.Model) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/estimate", instrument("http.estimate", handleEstimate(m)))
	mux.HandleFunc("/healthz", instrument("http.healthz", handleHealthz(m)))
	mux.HandleFunc("/metrics", handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// instrument wraps a handler in an obs span: "<name>.seconds" latency
// histogram plus "<name>.calls" counter on the default registry.
func instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sp := obs.Default.StartSpan(name)
		h(w, r)
		sp.End()
	}
}

// estimateRequest is the POST /estimate body. GET requests pass the same
// values as ?x=1,0,1,…&tau=3 (or &all=true).
type estimateRequest struct {
	X   []float64 `json:"x"`             // encoded binary feature vector, length = model InDim
	Tau *int      `json:"tau,omitempty"` // transformed threshold; required unless All
	All bool      `json:"all,omitempty"` // return estimates for every τ in [0, TauMax]
}

type estimateResponse struct {
	Estimate  *float64  `json:"estimate,omitempty"`
	Estimates []float64 `json:"estimates,omitempty"`
	Tau       int       `json:"tau"`
	TauMax    int       `json:"tau_max"`
}

func handleEstimate(m *core.Model) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		req, err := parseEstimateRequest(r)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		if len(req.X) != m.InDim {
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("x has %d features, model expects %d", len(req.X), m.InDim))
			return
		}
		resp := estimateResponse{TauMax: m.Cfg.TauMax}
		switch {
		case req.All:
			resp.Estimates = m.EstimateAllTaus(req.X)
			resp.Tau = m.Cfg.TauMax
		case req.Tau == nil:
			httpError(w, http.StatusBadRequest, `"tau" is required unless "all" is set`)
			return
		default:
			v := m.EstimateEncoded(req.X, *req.Tau)
			resp.Estimate = &v
			resp.Tau = *req.Tau
		}
		writeJSON(w, resp)
	}
}

func parseEstimateRequest(r *http.Request) (*estimateRequest, error) {
	var req estimateRequest
	switch r.Method {
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return nil, fmt.Errorf("bad JSON body: %v", err)
		}
	case http.MethodGet:
		q := r.URL.Query()
		for _, s := range strings.Split(q.Get("x"), ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("bad x component %q", s)
			}
			req.X = append(req.X, v)
		}
		if ts := q.Get("tau"); ts != "" {
			tau, err := strconv.Atoi(ts)
			if err != nil {
				return nil, fmt.Errorf("bad tau %q", ts)
			}
			req.Tau = &tau
		}
		req.All = q.Get("all") == "true" || q.Get("all") == "1"
	default:
		return nil, fmt.Errorf("method %s not allowed", r.Method)
	}
	return &req, nil
}

func handleHealthz(m *core.Model) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{
			"status":      "ok",
			"in_dim":      m.InDim,
			"tau_max":     m.Cfg.TauMax,
			"tau_top":     m.TauTop,
			"accel":       m.Cfg.Accel,
			"model_bytes": m.SizeBytes(),
		})
	}
}

// handleMetrics dumps the obs default registry as expvar-style JSON.
func handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := obs.Default.WriteJSON(w); err != nil {
		httpErrors.Inc()
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		httpErrors.Inc()
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	httpErrors.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
