package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"cardnet/internal/autopilot"
	"cardnet/internal/core"
	"cardnet/internal/infer"
	"cardnet/internal/obs"
	"cardnet/internal/obs/monitor"
	"cardnet/internal/obs/profcap"
	"cardnet/internal/obs/runtimeobs"
	"cardnet/internal/obs/slo"
	"cardnet/internal/serving"
	"cardnet/internal/simselect"
)

// httpErrors counts non-2xx responses across all endpoints.
var httpErrors = obs.Default.Counter("http.errors")

// HTTP-side stages of the request trace plus the end-to-end histogram. The
// engine owns cache/queue.wait/batch.form/forward; admission (parse +
// validate) and write (response encoding) happen here. Because trace marks
// tile the interval, the per-stage histograms sum to serving.e2e.seconds.
var (
	mStageAdmission = obs.Default.Histogram(serving.StageHistName(serving.StageAdmission), obs.TimeBuckets())
	mStageWrite     = obs.Default.Histogram(serving.StageHistName(serving.StageWrite), obs.TimeBuckets())
	mE2E            = obs.Default.Histogram(serving.E2EHistogram, obs.TimeBuckets())
	mTraceSampled   = obs.Default.Counter("trace.sampled")
	mAuditDropped   = obs.Default.Counter("audit.dropped")
)

// Availability counters the SLO tracker's error-budget math reads: every
// /estimate request, and the subset answered with a 5xx (503 overload/
// shutdown, 504 deadline).
var (
	mEstimateRequests = obs.Default.Counter("http.estimate.requests")
	mEstimate5xx      = obs.Default.Counter("http.estimate.5xx")
)

// requestTimeout bounds how long one estimate may sit in the engine queue
// plus forward pass before the server gives up on it.
const requestTimeout = 2 * time.Second

// serveOptions carries the observability add-ons of the serving mux; the
// zero value (no trace log, no audit oracle) builds a monitor on demand so
// /drift and /feedback always work.
type serveOptions struct {
	mon       *monitor.Monitor  // accuracy/drift monitor (nil → created)
	sampler   *obs.TraceSampler // JSONL trace sampling (nil → off)
	oracle    *simselect.EncodedOracle
	auditRate float64 // fraction of estimates replayed against oracle

	slo         *slo.Tracker      // burn-rate SLO tracker (nil → default objectives, unstarted)
	capturer    *profcap.Capturer // triggered pprof capture (nil → off)
	peers       []string          // peer /metrics URLs for /metrics/federate
	obsInterval time.Duration     // runtime sampler cadence (0 → default 10s)

	pilot *autopilot.Pilot // closed-loop retrain pilot (nil → off)

	// autopilotCfg, when non-nil, makes runServe build and start a pilot over
	// the engine it creates (newServeMux callers that already have an engine
	// construct their own pilot and set the pilot field directly). The labeler
	// comes from the audit oracle: the pilot needs ground truth to retrain on.
	autopilotCfg *autopilot.Config
}

// defaultSLOTracker builds an unstarted tracker over the default serving
// objectives, used when runServe or newServeMux gets no tracker: /slo and
// /healthz stay functional (everything reads "ok" until Eval runs).
func defaultSLOTracker() *slo.Tracker {
	return slo.New(slo.Config{Objectives: defaultSLOObjectives(0.1, 0.99, 0.999)})
}

// defaultSLOObjectives is the serving SLO pair: latency (fraction of
// /estimate requests completing within bound seconds) and availability
// (fraction not answered 5xx).
func defaultSLOObjectives(latencyBound, latencyTarget, availTarget float64) []slo.Objective {
	return []slo.Objective{
		{
			Name:      "latency",
			Target:    latencyTarget,
			Histogram: serving.E2EHistogram,
			Bound:     latencyBound,
		},
		{
			Name:          "availability",
			Target:        availTarget,
			TotalCounter:  "http.estimate.requests",
			ErrorCounters: []string{"http.estimate.5xx"},
		},
	}
}

// runServe blocks serving the estimation API on addr until SIGINT/SIGTERM,
// then shuts down gracefully: stop accepting connections, let in-flight
// HTTP requests finish, and drain the engine's queued batches before exit.
func runServe(m *core.Model, addr string, scfg serving.Config, opts serveOptions) error {
	if opts.mon == nil {
		opts.mon = monitor.New(monitor.Config{}, obs.Default)
	}
	if opts.slo == nil {
		opts.slo = defaultSLOTracker()
	}
	// Every τ-sweep the batch workers compute is checked against the Lemma 2
	// monotonicity contract, and a model swap re-baselines the drift monitor.
	scfg.CurveCheck = func(curve []float64) { opts.mon.CheckCurve(curve) }
	reg := serving.NewRegistry(m)
	reg.OnSwap(opts.mon.ResetBaseline)
	eng := serving.NewEngine(reg, scfg)

	// The autopilot closes the drift loop over this engine: it needs the
	// audit oracle for ground-truth labels, so -autopilot without an oracle
	// was already rejected in main.
	if opts.autopilotCfg != nil {
		pilot, err := autopilot.New(*opts.autopilotCfg, eng, opts.mon, oracleLabeler(opts.oracle))
		if err != nil {
			eng.Close()
			return err
		}
		opts.pilot = pilot
		pilot.Start()
		defer pilot.Close()
		log.Printf("autopilot: staging in %s, dwell %s, cooldown %s, shadow rate %g (min %d rows)",
			opts.autopilotCfg.Dir, opts.autopilotCfg.Dwell, opts.autopilotCfg.Cooldown,
			opts.autopilotCfg.ShadowRate, opts.autopilotCfg.ShadowMin)
	}

	// Telemetry rides the engine's lifecycle: runtime sampling and SLO
	// evaluation start before the listener and stop after drain, so shutdown
	// itself is observed.
	rsampler := runtimeobs.Start(runtimeobs.Config{Interval: opts.obsInterval})
	defer rsampler.Stop()
	opts.slo.Start()
	defer opts.slo.Stop()
	if opts.capturer != nil {
		defer opts.capturer.Wait() // let an in-flight profile pair finish writing
	}

	log.Printf("serving CardNet (in_dim=%d tau_max=%d, %d KB) on %s", m.InDim, m.Cfg.TauMax, m.SizeBytes()/1024, addr)
	if g := eng.Precision(); g.Requested != infer.PrecisionF64 {
		log.Printf("precision: requested %s, serving %s — %s", g.Requested, g.Tier, g.Reason)
	}
	log.Printf("endpoints: POST/GET /estimate, POST /feedback, POST /admin/reload, /metrics, /metrics/federate, /healthz, /drift, /slo, /debug/pprof/")
	if len(opts.peers) > 0 {
		log.Printf("federating %d peers: %s", len(opts.peers), strings.Join(opts.peers, ", "))
	}
	if opts.sampler != nil {
		log.Printf("trace sampling: 1 in %d requests", opts.sampler.Every())
	}
	if opts.oracle != nil && opts.auditRate > 0 {
		log.Printf("audit sampling: rate %g against exact oracle over %d records", opts.auditRate, opts.oracle.Len())
	}

	srv := &http.Server{
		Addr:              addr,
		Handler:           newServeMux(eng, opts),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		eng.Close()
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down: draining connections and queued batches")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	err := srv.Shutdown(shutCtx)
	eng.Close() // after Shutdown: no new requests, drain what is queued
	if err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}

// newServeMux builds the serving handler tree (separated from runServe for
// httptest coverage).
func newServeMux(eng *serving.Engine, opts serveOptions) *http.ServeMux {
	if opts.mon == nil {
		opts.mon = monitor.New(monitor.Config{}, obs.Default)
	}
	if opts.slo == nil {
		opts.slo = defaultSLOTracker()
	}
	aud := newAuditor(opts.oracle, opts.mon, opts.auditRate, opts.pilot)
	mux := http.NewServeMux()
	mux.HandleFunc("/estimate", instrument("http.estimate", handleEstimate(eng, opts.sampler, aud)))
	mux.HandleFunc("/feedback", instrument("http.feedback", handleFeedback(eng, opts.mon, opts.pilot)))
	mux.HandleFunc("/admin/reload", instrument("http.reload", handleReload(eng)))
	mux.HandleFunc("/admin/autopilot", instrument("http.autopilot", handleAutopilot(opts.pilot)))
	mux.HandleFunc("/healthz", instrument("http.healthz", handleHealthz(eng, opts.mon, opts.slo, opts.pilot)))
	mux.HandleFunc("/drift", instrument("http.drift", handleDrift(eng, opts.mon)))
	mux.HandleFunc("/slo", instrument("http.slo", handleSLO(opts.slo)))
	mux.HandleFunc("/metrics", handleMetrics)
	mux.HandleFunc("/metrics/federate", instrument("http.federate", handleFederate(opts.peers)))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// instrument wraps a handler in an obs span: "<name>.seconds" latency
// histogram plus "<name>.calls" counter on the default registry.
func instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sp := obs.Default.StartSpan(name)
		h(w, r)
		sp.End()
	}
}

// estimateRequest is the POST /estimate body. GET requests pass the same
// values as ?x=1,0,1,…&tau=3 (or &all=true).
type estimateRequest struct {
	X   []float64 `json:"x"`             // encoded binary feature vector, length = model InDim
	Tau *int      `json:"tau,omitempty"` // transformed threshold; required unless All
	All bool      `json:"all,omitempty"` // return estimates for every τ in [0, TauMax]
}

type estimateResponse struct {
	Estimate  *float64  `json:"estimate,omitempty"`
	Estimates []float64 `json:"estimates,omitempty"`
	Tau       int       `json:"tau"`
	TauMax    int       `json:"tau_max"`
}

func handleEstimate(eng *serving.Engine, sampler *obs.TraceSampler, aud *auditor) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// Every response carries the trace ID, sampled or not, so an operator
		// can correlate a slow client-side call with the JSONL trace log. When
		// a router fronts this replica, its fleet trace ID is adopted and its
		// attempt span recorded as this trace's parent — the join keys
		// `cardnet tracescan` assembles cross-process traces on.
		mEstimateRequests.Inc()
		tr := obs.NewTraceWith(r.Header.Get(obs.TraceHeader))
		tr.Annotate("role", "replica")
		if parent := r.Header.Get(obs.TraceParentHeader); parent != "" {
			tr.Annotate("parent", parent)
		}
		// A router that sampled this request says so; honor its decision
		// (head-based sampling) so both halves of the trace are emitted and
		// joinable. Direct traffic falls back to this replica's own counter.
		forced := sampler != nil && r.Header.Get(obs.TraceSampledHeader) == "1"
		w.Header().Set(obs.TraceHeader, tr.ID)
		finish := func() {
			mStageWrite.ObserveDuration(tr.Mark(serving.StageWrite))
			// The e2e exemplar ties each latency bucket to its latest trace,
			// so a /metrics scrape (or SLO page) resolves to a concrete trace.
			mE2E.ObserveExemplarDuration(tr.Total(), tr.ID)
			if forced || sampler.Sample() {
				mTraceSampled.Inc()
				sampler.Emit(tr)
			}
		}

		req, err := parseEstimateRequest(r)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			finish()
			return
		}
		m, version := eng.Registry().Current()
		if err := validateEstimateRequest(req, m); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			finish()
			return
		}
		mStageAdmission.ObserveDuration(tr.Mark(serving.StageAdmission))
		tr.Annotate("model_version", version)
		ctx, cancel := context.WithTimeout(r.Context(), requestTimeout)
		defer cancel()

		resp := estimateResponse{TauMax: m.Cfg.TauMax}
		if req.All {
			ests, err := eng.EstimateAllTraced(ctx, req.X, tr)
			if err != nil {
				estimateEngineError(w, err)
				finish()
				return
			}
			resp.Estimates = ests
			resp.Tau = m.Cfg.TauMax
		} else {
			v, err := eng.EstimateTraced(ctx, req.X, *req.Tau, tr)
			if err != nil {
				estimateEngineError(w, err)
				finish()
				return
			}
			resp.Estimate = &v
			resp.Tau = *req.Tau
			aud.observe(req.X, *req.Tau, v)
		}
		writeJSON(w, resp)
		finish()
	}
}

// auditor replays a sampled fraction of live estimates against an exact
// simselect oracle off the request path, feeding the resulting q-errors to
// the drift monitor as Audit samples — ground truth without waiting for
// labelled feedback. In-flight replays are bounded; excess samples are
// dropped (and counted) rather than queued behind the oracle scan.
type auditor struct {
	oracle *simselect.EncodedOracle
	mon    *monitor.Monitor
	pilot  *autopilot.Pilot // audited queries double as retrain samples
	every  uint64
	seq    atomic.Uint64
	sem    chan struct{}
}

// newAuditor returns nil (auditing off) unless an oracle, a monitor, and a
// rate in (0, 1] are all present. Like the trace sampler, sampling is
// counter-based: 1 in round(1/rate) estimates.
func newAuditor(oracle *simselect.EncodedOracle, mon *monitor.Monitor, rate float64, pilot *autopilot.Pilot) *auditor {
	if oracle == nil || mon == nil || rate <= 0 || rate > 1 {
		return nil
	}
	every := uint64(1/rate + 0.5)
	if every < 1 {
		every = 1
	}
	return &auditor{oracle: oracle, mon: mon, pilot: pilot, every: every, sem: make(chan struct{}, 4)}
}

// observe maybe replays one served estimate. Nil-safe; never blocks the
// request path. The x slice is safe to share: the handler stops touching it
// once the response is built.
func (a *auditor) observe(x []float64, tau int, estimate float64) {
	if a == nil || a.seq.Add(1)%a.every != 0 {
		return
	}
	select {
	case a.sem <- struct{}{}:
	default:
		mAuditDropped.Inc()
		return
	}
	go func() {
		defer func() { <-a.sem }()
		actual, err := a.oracle.CountEncoded(x, tau)
		if err != nil {
			mAuditDropped.Inc()
			return
		}
		a.mon.Record(float64(actual), estimate, monitor.Audit)
		if a.pilot != nil {
			a.pilot.Observe(x, tau)
		}
	}()
}

// parseEstimateRequest decodes the wire formats; semantic checks live in
// validateEstimateRequest so GET and POST share them.
func parseEstimateRequest(r *http.Request) (*estimateRequest, error) {
	var req estimateRequest
	switch r.Method {
	case http.MethodPost:
		body := http.MaxBytesReader(nil, r.Body, 1<<20)
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			return nil, fmt.Errorf("bad JSON body: %v", err)
		}
	case http.MethodGet:
		q := r.URL.Query()
		for _, s := range strings.Split(q.Get("x"), ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("bad x component %q", s)
			}
			req.X = append(req.X, v)
		}
		if ts := q.Get("tau"); ts != "" {
			tau, err := strconv.Atoi(ts)
			if err != nil {
				return nil, fmt.Errorf("bad tau %q", ts)
			}
			req.Tau = &tau
		}
		req.All = q.Get("all") == "true" || q.Get("all") == "1"
	default:
		return nil, fmt.Errorf("method %s not allowed", r.Method)
	}
	return &req, nil
}

// validateEstimateRequest enforces the model's input contract up front so
// malformed queries fail with a deterministic 400 instead of reaching the
// engine: x present and exactly InDim wide, strictly binary components, and
// τ within [0, TauMax] unless the full curve is requested.
func validateEstimateRequest(req *estimateRequest, m *core.Model) error {
	if len(req.X) == 0 {
		return errors.New(`"x" is required`)
	}
	if len(req.X) != m.InDim {
		return fmt.Errorf("x has %d features, model expects %d", len(req.X), m.InDim)
	}
	for i, v := range req.X {
		if v != 0 && v != 1 { // also rejects NaN/Inf
			return fmt.Errorf("x[%d] = %v, encoded features must be binary 0/1", i, v)
		}
	}
	if req.All {
		return nil
	}
	if req.Tau == nil {
		return errors.New(`"tau" is required unless "all" is set`)
	}
	if *req.Tau < 0 || *req.Tau > m.Cfg.TauMax {
		return fmt.Errorf("tau %d outside [0, %d]", *req.Tau, m.Cfg.TauMax)
	}
	return nil
}

// feedbackRequest is the POST /feedback body: a query the caller executed
// for real, with the actual cardinality observed. The server re-estimates it
// and folds the q-error into the drift monitor.
type feedbackRequest struct {
	X      []float64 `json:"x"`
	Tau    *int      `json:"tau"`
	Actual *float64  `json:"actual"`
}

func handleFeedback(eng *serving.Engine, mon *monitor.Monitor, pilot *autopilot.Pilot) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req feedbackRequest
		body := http.MaxBytesReader(nil, r.Body, 1<<20)
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad JSON body: %v", err))
			return
		}
		m, _ := eng.Registry().Current()
		if err := validateEstimateRequest(&estimateRequest{X: req.X, Tau: req.Tau}, m); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		if req.Actual == nil {
			httpError(w, http.StatusBadRequest, `"actual" is required`)
			return
		}
		if *req.Actual < 0 || math.IsNaN(*req.Actual) || math.IsInf(*req.Actual, 0) {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("actual %v, want a finite non-negative count", *req.Actual))
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), requestTimeout)
		defer cancel()
		est, err := eng.Estimate(ctx, req.X, *req.Tau)
		if err != nil {
			httpEngineError(w, err)
			return
		}
		q := mon.Record(*req.Actual, est, monitor.Feedback)
		if pilot != nil {
			// Labelled feedback is exactly the traffic a retrain should fit:
			// the caller ran the query for real.
			pilot.Observe(req.X, *req.Tau)
		}
		writeJSON(w, map[string]any{
			"estimate": est,
			"actual":   *req.Actual,
			"tau":      *req.Tau,
			"qerror":   q,
			"drift":    mon.Status().Status,
		})
	}
}

// handleDrift reports the monitor's view of model quality: rolling q-error
// quantiles, EWMA vs the post-load baseline, monotonicity-violation counts,
// and the ok/warn/retrain-recommended verdict.
func handleDrift(eng *serving.Engine, mon *monitor.Monitor) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		_, version := eng.Registry().Current()
		writeJSON(w, struct {
			monitor.Status
			ModelVersion uint64 `json:"model_version"`
		}{mon.Status(), version})
	}
}

// reloadRequest is the POST /admin/reload body: the path of a model file
// saved by `cardnet -mode train` / `-mode update`.
type reloadRequest struct {
	Path string `json:"path"`
}

// handleReload hot-swaps the serving model: load the file, validate shape
// compatibility against the live model, and install it atomically. In-flight
// batches finish on the model they started with; the estimate cache is
// invalidated so no stale estimate survives the swap.
func handleReload(eng *serving.Engine) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req reloadRequest
		body := http.MaxBytesReader(nil, r.Body, 1<<20)
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad JSON body: %v", err))
			return
		}
		if req.Path == "" {
			httpError(w, http.StatusBadRequest, `"path" is required`)
			return
		}
		m, err := loadModel(req.Path)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("load model: %v", err))
			return
		}
		version, err := eng.Registry().Swap(m)
		if err != nil {
			httpError(w, http.StatusConflict, err.Error())
			return
		}
		log.Printf("reloaded model from %s (version %d, %d KB)", req.Path, version, m.SizeBytes()/1024)
		writeJSON(w, map[string]any{
			"version":     version,
			"in_dim":      m.InDim,
			"tau_max":     m.Cfg.TauMax,
			"tau_top":     m.TauTop,
			"model_bytes": m.SizeBytes(),
		})
	}
}

func handleHealthz(eng *serving.Engine, mon *monitor.Monitor, tracker *slo.Tracker, pilot *autopilot.Pilot) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		m, version := eng.Registry().Current()
		// Subsystem verdicts are nested objects of uniform shape — a "status"
		// (or "state") verdict plus that subsystem's key numbers — matching
		// the precision block, so fleet tooling indexes "<block>.status"
		// instead of special-casing flat and nested keys per subsystem.
		level, since := mon.LevelSince()
		drift := map[string]any{
			"status":              mon.Status().Status,
			"level":               level,
			"level_since_seconds": time.Since(since).Seconds(),
		}
		if since.IsZero() {
			drift["level_since_seconds"] = 0.0
		}
		body := map[string]any{
			"status":             "ok",
			"drift":              drift,
			"slo":                tracker.State().String(),
			"version":            buildVersion,
			"git_sha":            buildSHA,
			"start_time_seconds": float64(runtimeobs.StartTime().UnixNano()) / 1e9,
			"in_dim":             m.InDim,
			"tau_max":            m.Cfg.TauMax,
			"tau_top":            m.TauTop,
			"accel":              m.Cfg.Accel,
			"model_bytes":        m.SizeBytes(),
			"model_version":      version,
			"cache_entries":      eng.CacheLen(),
			"precision":          eng.Precision(),
		}
		if pilot != nil {
			body["autopilot"] = pilot.Status()
		}
		writeJSON(w, body)
	}
}

// autopilotRequest is the POST /admin/autopilot body. Actions: "force" (arm
// an immediate trigger, bypassing drift dwell), "inhibit" (pause autonomous
// retrains and swaps), "resume" (lift an inhibit). GET returns the status.
type autopilotRequest struct {
	Action string `json:"action"`
}

func handleAutopilot(pilot *autopilot.Pilot) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if pilot == nil {
			httpError(w, http.StatusNotFound, "autopilot not enabled (start with -autopilot)")
			return
		}
		switch r.Method {
		case http.MethodGet:
		case http.MethodPost:
			var req autopilotRequest
			body := http.MaxBytesReader(nil, r.Body, 1<<20)
			if err := json.NewDecoder(body).Decode(&req); err != nil {
				httpError(w, http.StatusBadRequest, fmt.Sprintf("bad JSON body: %v", err))
				return
			}
			switch req.Action {
			case "force":
				pilot.Force()
			case "inhibit":
				pilot.SetInhibited(true)
			case "resume":
				pilot.SetInhibited(false)
			default:
				httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown action %q (want force, inhibit, or resume)", req.Action))
				return
			}
		default:
			httpError(w, http.StatusMethodNotAllowed, "GET or POST only")
			return
		}
		writeJSON(w, pilot.Status())
	}
}

// oracleLabeler adapts the audit oracle's exact curve scan to the autopilot's
// Labeler contract.
func oracleLabeler(o *simselect.EncodedOracle) autopilot.Labeler {
	return func(x []float64, tauTop int) ([]float64, error) {
		return o.CurveEncoded(x, tauTop)
	}
}

// handleSLO reports the burn-rate tracker's current view: overall state,
// window configuration, and per-objective burn rates — the machine-readable
// face of the ok|warn|page alerting in RUNBOOK.md.
func handleSLO(tracker *slo.Tracker) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, tracker.Status())
	}
}

// handleFederate scrapes the configured peers' /metrics concurrently and
// returns the merged exposition with per-peer instance labels plus a
// federate_up series per peer — one scrape target for a whole fleet. Without
// -peers the endpoint reports 404 rather than an empty exposition.
func handleFederate(peers []string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		if len(peers) == 0 {
			httpError(w, http.StatusNotFound, "federation not configured (start with -peers)")
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), 10*time.Second)
		defer cancel()
		snaps := obs.GatherRemote(ctx, nil, peers)
		w.Header().Set("Content-Type", obs.PromContentType)
		if err := obs.WriteFederated(w, snaps); err != nil {
			httpErrors.Inc()
		}
	}
}

// handleMetrics dumps the obs default registry: expvar-style JSON by
// default, Prometheus text exposition format 0.0.4 when the Accept header
// asks for text/plain (so a stock Prometheus scraper works against the same
// endpoint with no config beyond the target), and OpenMetrics — with
// trace-ID exemplars on the latency histograms — when it asks for
// application/openmetrics-text.
func handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	accept := r.Header.Get("Accept")
	if strings.Contains(accept, "openmetrics") {
		w.Header().Set("Content-Type", obs.OpenMetricsContentType)
		if err := obs.Default.WriteOpenMetrics(w); err != nil {
			httpErrors.Inc()
		}
		return
	}
	if strings.Contains(accept, "text/plain") {
		w.Header().Set("Content-Type", obs.PromContentType)
		if err := obs.Default.WritePrometheus(w); err != nil {
			httpErrors.Inc()
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := obs.Default.WriteJSON(w); err != nil {
		httpErrors.Inc()
	}
}

// httpEngineError maps engine failures onto status codes: overload and
// shutdown become 503 (degrade gracefully, clients retry), deadline
// expiry becomes 504, and anything else validation missed is a 400. It
// returns the status written so callers can classify the failure.
func httpEngineError(w http.ResponseWriter, err error) int {
	switch {
	case errors.Is(err, serving.ErrOverloaded), errors.Is(err, serving.ErrClosed):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, err.Error())
		return http.StatusGatewayTimeout
	default:
		httpError(w, http.StatusBadRequest, err.Error())
		return http.StatusBadRequest
	}
}

// estimateEngineError is httpEngineError for the /estimate path: 5xx
// responses additionally burn the availability SLO's error budget.
func estimateEngineError(w http.ResponseWriter, err error) {
	if code := httpEngineError(w, err); code >= 500 {
		mEstimate5xx.Inc()
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		httpErrors.Inc()
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	httpErrors.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
