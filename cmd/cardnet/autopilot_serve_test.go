package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cardnet/internal/autopilot"
	"cardnet/internal/core"
	"cardnet/internal/obs"
	"cardnet/internal/obs/monitor"
	"cardnet/internal/serving"
)

// apTruth is the synthetic exact oracle of the autopilot tests: a monotone
// cumulative curve derived from the query's popcount, deterministic so the
// retrain labels and the shadow scoring agree.
func apTruth(x []float64, tauTop int) ([]float64, error) {
	pop := 0.0
	for _, v := range x {
		pop += v
	}
	curve := make([]float64, tauTop+1)
	for tau := range curve {
		curve[tau] = 20 + 5*float64(tau) + 3*pop
	}
	return curve, nil
}

// apX returns a distinct binary query per index.
func apX(m *core.Model, i int) []float64 {
	x := make([]float64, m.InDim)
	for b := 0; b < m.InDim; b++ {
		if (i>>(b%10))&1 == 1 || b == i%m.InDim {
			x[b] = 1
		}
	}
	return x
}

// fastPilotConfig is tuned for test time: trigger within tens of
// milliseconds of sustained drift, small sample and shadow floors.
func fastPilotConfig(dir string) autopilot.Config {
	return autopilot.Config{
		Dir:           dir,
		Dwell:         30 * time.Millisecond,
		Poll:          5 * time.Millisecond,
		Cooldown:      time.Hour,
		MinSamples:    8,
		ShadowRate:    1.0,
		ShadowMin:     8,
		ShadowTimeout: 30 * time.Second,
		GateSweep:     32,
	}
}

// newAutopilotServer stands up the full serving mux with a running pilot over
// a drift monitor configured to react within a handful of samples.
func newAutopilotServer(t *testing.T, cfg autopilot.Config, label autopilot.Labeler) (*httptest.Server, *serving.Engine, *autopilot.Pilot) {
	t.Helper()
	m := tinyModel(3)
	eng := serving.NewEngine(serving.NewRegistry(m), serving.Config{
		MaxBatch: 8, MaxWait: time.Millisecond, CacheEntries: -1,
	})
	mon := monitor.New(monitor.Config{Window: 64, BaselineN: 4, EWMAAlpha: 0.5}, obs.NewRegistry())
	eng.Registry().OnSwap(mon.ResetBaseline)
	pilot, err := autopilot.New(cfg, eng, mon, label)
	if err != nil {
		t.Fatal(err)
	}
	pilot.Start()
	ts := httptest.NewServer(newServeMux(eng, serveOptions{mon: mon, pilot: pilot}))
	t.Cleanup(func() { ts.Close(); pilot.Close(); eng.Close() })
	return ts, eng, pilot
}

func postJSON(t *testing.T, url string, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return resp, doc
}

func floatsJSON(x []float64) string {
	parts := make([]string, len(x))
	for i, v := range x {
		parts[i] = fmt.Sprint(v)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

func waitPilotState(t *testing.T, p *autopilot.Pilot, want string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if p.State() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("pilot never reached %q (stuck at %q)", want, p.State())
}

// TestAutopilotE2EDriftToSwap is the closed loop end to end over live HTTP:
// labelled feedback induces sustained drift, the pilot retrains on the
// accumulated samples, shadow-evaluates the candidate on live /estimate
// traffic, and hot-swaps — with zero client-visible errors throughout, the
// decision journaled, and the verdict observable in /healthz and /metrics.
func TestAutopilotE2EDriftToSwap(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal.jsonl")
	sink, err := obs.NewFileSink(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	cfg := fastPilotConfig(filepath.Join(dir, "staging"))
	cfg.Journal = sink
	cfg.PublishPath = filepath.Join(dir, "published.gob")
	ts, eng, pilot := newAutopilotServer(t, cfg, apTruth)
	m, v0 := eng.Registry().Current()

	// Concurrent estimate clients run through the whole cycle — drift,
	// retrain, shadow, swap — and must never see a non-200.
	var clientErrs atomic.Int64
	stopClients := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopClients:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/estimate?all=true&x=" +
					strings.Trim(floatsJSON(apX(m, 100*c+i%50)), "[]"))
				if err != nil {
					clientErrs.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					clientErrs.Add(1)
				}
				resp.Body.Close()
			}
		}(c)
	}

	// Freeze a healthy baseline: q≈1 feedback (actual equals the estimate the
	// server itself computes, read back from the response).
	for i := 0; i < 4; i++ {
		x := apX(m, i)
		resp, doc := postJSON(t, ts.URL+"/feedback",
			fmt.Sprintf(`{"x":%s,"tau":%d,"actual":1}`, floatsJSON(x), i%(m.Cfg.TauMax+1)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("baseline feedback %d: status %d (%v)", i, resp.StatusCode, doc)
		}
	}
	// Drift: feedback now carries the oracle's actuals, far from the
	// untrained model's estimates. These same queries become the retrain set.
	for i := 4; i < 40; i++ {
		x := apX(m, i)
		tau := i % (m.Cfg.TauMax + 1)
		truth, _ := apTruth(x, m.Cfg.TauMax)
		resp, _ := postJSON(t, ts.URL+"/feedback",
			fmt.Sprintf(`{"x":%s,"tau":%d,"actual":%g}`, floatsJSON(x), tau, truth[tau]))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("drift feedback %d: status %d", i, resp.StatusCode)
		}
	}

	// The loop must now run to a swap on its own: trigger after the dwell,
	// retrain, shadow over the clients' live traffic, swap, cooldown.
	waitPilotState(t, pilot, autopilot.StateCooldown, 120*time.Second)
	close(stopClients)
	wg.Wait()

	if n := clientErrs.Load(); n != 0 {
		t.Fatalf("%d client-visible errors during the autopilot cycle", n)
	}
	st := pilot.Status()
	if st.Swaps != 1 || st.Rejects != 0 || st.LastDecision == nil || st.LastDecision.Event != "swap" {
		t.Fatalf("cycle did not end in a swap: %+v (last %+v)", st, st.LastDecision)
	}
	if _, v := eng.Registry().Current(); v != v0+1 {
		t.Fatalf("registry version %d, want %d", v, v0+1)
	}
	// The swapped model was published for restart.
	if _, err := os.Stat(cfg.PublishPath); err != nil {
		t.Fatalf("swapped model not published: %v", err)
	}

	// /healthz carries the autopilot block with the decision.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ap, ok := hz["autopilot"].(map[string]any)
	if !ok {
		t.Fatalf("healthz has no autopilot block: %v", hz)
	}
	if ap["state"] != autopilot.StateCooldown || ap["swaps"].(float64) != 1 {
		t.Fatalf("healthz autopilot block: %v", ap)
	}

	// /metrics exposes the autopilot family.
	mResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]uint64  `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.NewDecoder(mResp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	mResp.Body.Close()
	if snap.Counters["autopilot.swaps"] < 1 {
		t.Fatalf("autopilot.swaps not counted: %v", snap.Counters["autopilot.swaps"])
	}
	if _, ok := snap.Gauges["autopilot.state"]; !ok {
		t.Fatalf("autopilot.state gauge missing")
	}

	// The decision journal holds the full transition history ending in the
	// swap decision.
	data, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	var sawTrigger, sawSwap bool
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad journal line %q: %v", line, err)
		}
		switch ev["to"] {
		case autopilot.StateTriggered:
			sawTrigger = true
		case autopilot.StateSwap:
			sawSwap = true
		}
	}
	if !sawTrigger || !sawSwap {
		t.Fatalf("journal missing transitions (trigger=%v swap=%v):\n%s", sawTrigger, sawSwap, data)
	}
}

// TestAutopilotRejectsRegressionCandidate forces a regression: the labeler
// feeds the retrain garbage (constant huge counts), then reverts to scoring
// shadow traffic against the live model's own curves — so the live model
// scores a perfect q≈1 and the garbage-trained candidate must lose, reject,
// and enter cooldown without touching the registry.
func TestAutopilotRejectsRegressionCandidate(t *testing.T) {
	var shadowMode atomic.Bool // false: garbage labels; true: live-curve labels
	live := tinyModel(3)
	label := func(x []float64, tauTop int) ([]float64, error) {
		curve := make([]float64, tauTop+1)
		if !shadowMode.Load() {
			for tau := range curve {
				curve[tau] = 1000
			}
			return curve, nil
		}
		for tau := range curve {
			curve[tau] = live.EstimateEncoded(x, tau)
		}
		return curve, nil
	}

	cfg := fastPilotConfig(t.TempDir())
	ts, eng, pilot := newAutopilotServer(t, cfg, label)
	// The server's registry serves the same weights as `live` (same seed), so
	// the shadow-phase labels equal what the engine serves.
	m, v0 := eng.Registry().Current()

	for i := 0; i < 16; i++ {
		pilot.Observe(apX(m, i), i%(m.Cfg.TauMax+1))
	}
	pilot.Force()
	// The train set is labeled during the triggered phase; once the pilot is
	// training, flipping to shadow-mode labels only affects the verdict.
	waitPilotState(t, pilot, autopilot.StateTraining, 60*time.Second)
	shadowMode.Store(true)
	waitPilotState(t, pilot, autopilot.StateShadow, 120*time.Second)

	deadline := time.Now().Add(60 * time.Second)
	for pilot.State() == autopilot.StateShadow && time.Now().Before(deadline) {
		for i := 0; i < 8; i++ {
			resp, err := http.Get(ts.URL + "/estimate?all=true&x=" + strings.Trim(floatsJSON(apX(m, i)), "[]"))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
	}
	waitPilotState(t, pilot, autopilot.StateCooldown, 60*time.Second)

	st := pilot.Status()
	if st.Rejects != 1 || st.Swaps != 0 {
		t.Fatalf("regression candidate not rejected: %+v (last %+v)", st, st.LastDecision)
	}
	if st.LastDecision == nil || st.LastDecision.CandQGeoMean <= st.LastDecision.LiveQGeoMean {
		t.Fatalf("reject decision does not show the regression: %+v", st.LastDecision)
	}
	if _, v := eng.Registry().Current(); v != v0 {
		t.Fatalf("registry swapped to a regressed candidate (version %d)", v)
	}
}

// TestAdminAutopilotEndpoint covers the operator surface: status via GET,
// force/inhibit/resume actions, bad action, and 404 without a pilot.
func TestAdminAutopilotEndpoint(t *testing.T) {
	cfg := fastPilotConfig(t.TempDir())
	cfg.Dwell = time.Hour // never self-trigger in this test
	ts, _, pilot := newAutopilotServer(t, cfg, apTruth)

	resp, doc := postJSON(t, ts.URL+"/admin/autopilot", `{"action":"inhibit"}`)
	if resp.StatusCode != http.StatusOK || doc["inhibited"] != true {
		t.Fatalf("inhibit: %d %v", resp.StatusCode, doc)
	}
	if !pilot.Inhibited() {
		t.Fatalf("pilot not inhibited after admin action")
	}
	resp, doc = postJSON(t, ts.URL+"/admin/autopilot", `{"action":"resume"}`)
	if resp.StatusCode != http.StatusOK || doc["inhibited"] != false {
		t.Fatalf("resume: %d %v", resp.StatusCode, doc)
	}
	resp, _ = postJSON(t, ts.URL+"/admin/autopilot", `{"action":"defenestrate"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad action: %d", resp.StatusCode)
	}

	getResp, err := http.Get(ts.URL + "/admin/autopilot")
	if err != nil {
		t.Fatal(err)
	}
	var st map[string]any
	if err := json.NewDecoder(getResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if st["state"] != autopilot.StateIdle {
		t.Fatalf("status: %v", st)
	}

	// Without a pilot the endpoint 404s with a usage hint.
	plain, _ := newTestServer(t, tinyModel(5), serving.Config{})
	noResp, err := http.Get(plain.URL + "/admin/autopilot")
	if err != nil {
		t.Fatal(err)
	}
	noResp.Body.Close()
	if noResp.StatusCode != http.StatusNotFound {
		t.Fatalf("no-pilot status: %d", noResp.StatusCode)
	}
}

// TestHealthzShapeGolden locks the /healthz document's key structure: every
// subsystem verdict (drift, precision, autopilot) is a nested block, and the
// full sorted key-path list matches the golden file — so a shape change (the
// kind that silently breaks fleet tooling reading "<block>.status") fails
// loudly here.
func TestHealthzShapeGolden(t *testing.T) {
	cfg := fastPilotConfig(t.TempDir())
	cfg.Dwell = time.Hour
	ts, _, _ := newAutopilotServer(t, cfg, apTruth)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var paths []string
	var walk func(prefix string, v any)
	walk = func(prefix string, v any) {
		m, ok := v.(map[string]any)
		if !ok {
			paths = append(paths, prefix)
			return
		}
		for k, sub := range m {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			walk(p, sub)
		}
	}
	walk("", hz)
	sort.Strings(paths)
	got := strings.Join(paths, "\n") + "\n"

	goldenPath := filepath.Join("testdata", "healthz_keys.golden")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate by writing the FAIL output below to %s): %v\ngot:\n%s", goldenPath, err, got)
	}
	if got != string(want) {
		t.Fatalf("/healthz key paths changed.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
