package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"cardnet/internal/core"
	"cardnet/internal/obs"
	"cardnet/internal/serving"
	"cardnet/internal/tensor"
)

// batchPoint is one batched-throughput measurement: batched estimates per
// second at the given batch size, its speedup over the per-request path, and
// whether every batched estimate was byte-identical to the per-sample one.
type batchPoint struct {
	Size      int     `json:"size"`
	QPS       float64 `json:"qps"`
	Speedup   float64 `json:"speedup"`
	Identical bool    `json:"identical"`
}

// engineBench measures the full serving engine under concurrent load with
// the estimate cache disabled (cold) vs enabled over repeating traffic
// (warm), plus the observed cache hit ratio of the warm run.
type engineBench struct {
	ColdQPS  float64 `json:"cold_qps"`
	WarmQPS  float64 `json:"warm_qps"`
	Speedup  float64 `json:"speedup"`
	HitRatio float64 `json:"hit_ratio"`
}

// serveBenchReport is the results/BENCH_serving.json schema.
type serveBenchReport struct {
	Dataset    string `json:"dataset"`
	Records    int    `json:"records"`
	InDim      int    `json:"in_dim"`
	TauMax     int    `json:"tau_max"`
	Accel      bool   `json:"accel"`
	Calls      int    `json:"calls"`
	PerRequest struct {
		QPS float64 `json:"qps"`
	} `json:"per_request"`
	Batched []batchPoint `json:"batched"`
	Engine  engineBench  `json:"engine"`
}

// runServeBench measures the three levers of the serving subsystem: the
// batched forward pass vs per-request calls, and the estimate cache under
// repeating concurrent traffic. Instrumentation stays enabled throughout —
// the numbers are what production would see.
func runServeBench(m *core.Model, testX *tensor.Matrix, calls int) (*serveBenchReport, error) {
	if testX == nil || testX.Rows == 0 {
		return nil, fmt.Errorf("no test queries in bundle")
	}
	if calls < 512 {
		calls = 512
	}
	tauMax := m.Cfg.TauMax
	rows := testX.Rows
	tauOf := func(i int) int { return i % (tauMax + 1) }

	rep := &serveBenchReport{InDim: m.InDim, TauMax: tauMax, Accel: m.Cfg.Accel, Calls: calls}

	// Warmup both paths.
	for i := 0; i < 64; i++ {
		m.EstimateEncoded(testX.Row(i%rows), tauOf(i))
	}

	// Per-request baseline: one forward pass per estimate.
	t0 := time.Now()
	for i := 0; i < calls; i++ {
		m.EstimateEncoded(testX.Row(i%rows), tauOf(i))
	}
	rep.PerRequest.QPS = float64(calls) / time.Since(t0).Seconds()

	// Batched path, including the row-copy cost the engine pays.
	for _, size := range []int{8, 16, 32} {
		xs := tensor.NewMatrix(size, m.InDim)
		taus := make([]int, size)
		iters := calls / size
		b0 := time.Now()
		for it := 0; it < iters; it++ {
			for r := 0; r < size; r++ {
				i := it*size + r
				copy(xs.Row(r), testX.Row(i%rows))
				taus[r] = tauOf(i)
			}
			m.EstimateEncodedBatch(xs, taus)
		}
		qps := float64(iters*size) / time.Since(b0).Seconds()
		rep.Batched = append(rep.Batched, batchPoint{
			Size:      size,
			QPS:       qps,
			Speedup:   qps / rep.PerRequest.QPS,
			Identical: verifyBatchIdentical(m, testX, size),
		})
	}

	eng, err := benchEngine(m, testX, calls, tauOf)
	if err != nil {
		return nil, err
	}
	rep.Engine = *eng
	return rep, nil
}

// verifyBatchIdentical checks byte-for-byte equality of the batched and
// per-sample paths over every (query, τ) pair the bench exercises.
func verifyBatchIdentical(m *core.Model, testX *tensor.Matrix, size int) bool {
	tauMax := m.Cfg.TauMax
	xs := tensor.NewMatrix(size, m.InDim)
	taus := make([]int, size)
	for start := 0; start < testX.Rows; start += size {
		n := size
		if start+n > testX.Rows {
			n = testX.Rows - start
		}
		sub := &tensor.Matrix{Rows: n, Cols: m.InDim, Data: xs.Data[:n*m.InDim]}
		for r := 0; r < n; r++ {
			copy(sub.Row(r), testX.Row(start+r))
			taus[r] = (start + r) % (tauMax + 1)
		}
		got := m.EstimateEncodedBatch(sub, taus[:n])
		for r := 0; r < n; r++ {
			if got[r] != m.EstimateEncoded(sub.Row(r), taus[r]) {
				return false
			}
		}
		all := m.EstimateAllTausBatch(sub)
		for r := 0; r < n; r++ {
			want := m.EstimateAllTaus(sub.Row(r))
			for i := range want {
				if all.At(r, i) != want[i] {
					return false
				}
			}
		}
	}
	return true
}

// benchEngine drives the full engine (queue, batcher, cache) with concurrent
// clients over a repeating query set, cache off vs on.
func benchEngine(m *core.Model, testX *tensor.Matrix, calls int, tauOf func(int) int) (*engineBench, error) {
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	run := func(cacheEntries int) (float64, error) {
		reg := serving.NewRegistry(m)
		eng := serving.NewEngine(reg, serving.Config{
			MaxBatch:     32,
			MaxWait:      200 * time.Microsecond,
			QueueDepth:   4096,
			CacheEntries: cacheEntries,
		})
		defer eng.Close()
		var wg sync.WaitGroup
		errc := make(chan error, workers)
		per := calls / workers
		t0 := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					q := (w*per + i) % testX.Rows
					if _, err := eng.Estimate(context.Background(), testX.Row(q), tauOf(q)); err != nil {
						errc <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(t0).Seconds()
		select {
		case err := <-errc:
			return 0, err
		default:
		}
		return float64(per*workers) / elapsed, nil
	}

	out := &engineBench{}
	var err error
	if out.ColdQPS, err = run(-1); err != nil {
		return nil, err
	}
	hits0 := obs.Default.Counter("serving.cache.hits").Value()
	miss0 := obs.Default.Counter("serving.cache.misses").Value()
	if out.WarmQPS, err = run(4096); err != nil {
		return nil, err
	}
	hits := float64(obs.Default.Counter("serving.cache.hits").Value() - hits0)
	misses := float64(obs.Default.Counter("serving.cache.misses").Value() - miss0)
	if hits+misses > 0 {
		out.HitRatio = hits / (hits + misses)
	}
	if out.ColdQPS > 0 {
		out.Speedup = out.WarmQPS / out.ColdQPS
	}
	return out, nil
}

func (r *serveBenchReport) write(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
