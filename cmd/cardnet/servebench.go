package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"cardnet/internal/core"
	"cardnet/internal/infer"
	"cardnet/internal/obs"
	"cardnet/internal/obs/monitor"
	"cardnet/internal/serving"
	"cardnet/internal/tensor"
)

// batchPoint is one batched-throughput measurement: batched estimates per
// second at the given batch size, its speedup over the per-request path, and
// whether every batched estimate was byte-identical to the per-sample one.
type batchPoint struct {
	Size      int     `json:"size"`
	QPS       float64 `json:"qps"`
	Speedup   float64 `json:"speedup"`
	Identical bool    `json:"identical"`
}

// engineBench measures the full serving engine under concurrent load with
// the estimate cache disabled (cold) vs enabled over repeating traffic
// (warm), plus the observed cache hit ratio of the warm run.
type engineBench struct {
	ColdQPS  float64 `json:"cold_qps"`
	WarmQPS  float64 `json:"warm_qps"`
	Speedup  float64 `json:"speedup"`
	HitRatio float64 `json:"hit_ratio"`
}

// traceBench quantifies the request-tracing layer. Every request pays the
// trace marks (sampling only gates JSONL emission), so the honest cost is
// traced-vs-untraced per-request latency through the engine; the traces in
// turn yield the per-stage breakdown an operator reads off /metrics:
// queue-wait quantiles, mean formed-batch size, and the flush-reason mix.
type traceBench struct {
	Untraced       latencyStats      `json:"untraced"`
	Traced         latencyStats      `json:"traced"`
	OverheadP50Pct float64           `json:"overhead_p50_pct"`
	QueueWaitP50Us float64           `json:"queue_wait_p50_us"`
	QueueWaitP95Us float64           `json:"queue_wait_p95_us"`
	MeanBatchSize  float64           `json:"mean_batch_size"`
	FlushMix       map[string]uint64 `json:"flush_mix"`
}

// precisionPoint is one (tier, batch size) forward-path measurement of the
// precision trajectory: per-call latency quantiles, estimate throughput, and
// the p50 speedup over the f64 tier at the same batch size.
type precisionPoint struct {
	Batch      int     `json:"batch"`
	P50Us      float64 `json:"p50_us"`
	P99Us      float64 `json:"p99_us"`
	QPS        float64 `json:"qps"`
	SpeedupP50 float64 `json:"speedup_p50"`
}

// precisionTier is one tier of the trajectory: the gate verdict (which tier
// actually serves, the measured q-error delta, Lemma-2 violation count) and
// the latency points across batch sizes. A failed gate records the fallback
// and measures the f64 path it would actually serve.
type precisionTier struct {
	Tier           string           `json:"tier"`
	Served         string           `json:"served"`
	GatePass       bool             `json:"gate_pass"`
	QErrP99Delta   float64          `json:"q_err_p99_delta"`
	MonoViolations int              `json:"mono_violations"`
	Reason         string           `json:"reason"`
	Points         []precisionPoint `json:"points"`
}

// precisionSection is the f64→f32→int8 trajectory of the compiled inference
// fast path, measured on the direct forward (no queue/cache) at each batch
// size — the per-batch cost a serving worker pays.
type precisionSection struct {
	GateMaxDelta float64         `json:"gate_max_delta"`
	Sweep        int             `json:"sweep"`
	Batches      []int           `json:"batches"`
	Tiers        []precisionTier `json:"tiers"`
}

// serveBenchReport is the results/BENCH_serving.json schema.
type serveBenchReport struct {
	Dataset    string `json:"dataset"`
	Records    int    `json:"records"`
	InDim      int    `json:"in_dim"`
	TauMax     int    `json:"tau_max"`
	Accel      bool   `json:"accel"`
	Calls      int    `json:"calls"`
	PerRequest struct {
		QPS float64 `json:"qps"`
	} `json:"per_request"`
	Batched []batchPoint `json:"batched"`
	Engine  engineBench  `json:"engine"`
	Tracing traceBench   `json:"tracing"`
	// Admission records what overloaded clients see (503 + Retry-After).
	Admission *admissionBench `json:"admission,omitempty"`
	// Precision is the compiled-inference trajectory: f64 vs f32 vs int8
	// forward latency/throughput with the accuracy-delta gate verdicts.
	Precision *precisionSection `json:"precision,omitempty"`
	// Cluster, Failover, and ClusterTracing are the -cluster router
	// experiments: scaling efficiency over 1/2/4 replicas, the mid-bench
	// replica kill, and the distributed-tracing overhead comparison.
	Cluster        *clusterBenchSection   `json:"cluster,omitempty"`
	Failover       *failoverBenchSection  `json:"failover,omitempty"`
	ClusterTracing *clusterTracingSection `json:"cluster_tracing,omitempty"`
}

// runServeBench measures the three levers of the serving subsystem: the
// batched forward pass vs per-request calls, and the estimate cache under
// repeating concurrent traffic. Instrumentation stays enabled throughout —
// the numbers are what production would see.
func runServeBench(m *core.Model, testX *tensor.Matrix, calls int) (*serveBenchReport, error) {
	if testX == nil || testX.Rows == 0 {
		return nil, fmt.Errorf("no test queries in bundle")
	}
	if calls < 512 {
		calls = 512
	}
	tauMax := m.Cfg.TauMax
	rows := testX.Rows
	tauOf := func(i int) int { return i % (tauMax + 1) }

	rep := &serveBenchReport{InDim: m.InDim, TauMax: tauMax, Accel: m.Cfg.Accel, Calls: calls}

	// Warmup both paths.
	for i := 0; i < 64; i++ {
		m.EstimateEncoded(testX.Row(i%rows), tauOf(i))
	}

	// Per-request baseline: one forward pass per estimate.
	t0 := time.Now()
	for i := 0; i < calls; i++ {
		m.EstimateEncoded(testX.Row(i%rows), tauOf(i))
	}
	rep.PerRequest.QPS = float64(calls) / time.Since(t0).Seconds()

	// Batched path, including the row-copy cost the engine pays.
	for _, size := range []int{8, 16, 32} {
		xs := tensor.NewMatrix(size, m.InDim)
		taus := make([]int, size)
		iters := calls / size
		b0 := time.Now()
		for it := 0; it < iters; it++ {
			for r := 0; r < size; r++ {
				i := it*size + r
				copy(xs.Row(r), testX.Row(i%rows))
				taus[r] = tauOf(i)
			}
			m.EstimateEncodedBatch(xs, taus)
		}
		qps := float64(iters*size) / time.Since(b0).Seconds()
		rep.Batched = append(rep.Batched, batchPoint{
			Size:      size,
			QPS:       qps,
			Speedup:   qps / rep.PerRequest.QPS,
			Identical: verifyBatchIdentical(m, testX, size),
		})
	}

	eng, err := benchEngine(m, testX, calls, tauOf)
	if err != nil {
		return nil, err
	}
	rep.Engine = *eng

	tb, err := benchTracing(m, testX, calls, tauOf)
	if err != nil {
		return nil, err
	}
	rep.Tracing = *tb

	adm, err := runAdmissionBench(m, testX)
	if err != nil {
		return nil, err
	}
	rep.Admission = adm

	prec, err := benchPrecision(m, testX, calls)
	if err != nil {
		return nil, err
	}
	rep.Precision = prec
	return rep, nil
}

// benchPrecision measures the precision trajectory: each tier's direct
// batched forward (the path a serving worker runs per flush) at batch sizes
// 1/8/64, with the accuracy-delta gate evaluated exactly as serving would.
// The f64 tier is the legacy exact forward; f32/int8 run the compiled fused
// plan when their gate passes and fall back to the f64 forward — recorded as
// such — when it does not.
func benchPrecision(m *core.Model, testX *tensor.Matrix, calls int) (*precisionSection, error) {
	gc := infer.GateConfig{Seed: 1}.WithDefaults()
	sec := &precisionSection{
		GateMaxDelta: gc.MaxQErrP99Delta,
		Sweep:        gc.Sweep,
		Batches:      []int{1, 8, 64},
	}
	baseP50 := map[int]float64{}
	for _, tier := range []infer.Precision{infer.PrecisionF64, infer.PrecisionF32, infer.PrecisionInt8} {
		plan, gate, err := infer.Compile(m, tier, gc)
		if err != nil {
			return nil, err
		}
		forward := m.EstimateAllTausBatch
		if plan != nil {
			forward = plan.EstimateAllTausBatch
		}
		pt := precisionTier{
			Tier:           string(tier),
			Served:         string(gate.Tier),
			GatePass:       gate.Pass,
			QErrP99Delta:   gate.QErrP99Delta,
			MonoViolations: gate.MonoViolations,
			Reason:         gate.Reason,
		}
		for _, batch := range sec.Batches {
			xs := tensor.NewMatrix(batch, m.InDim)
			for r := 0; r < batch; r++ {
				copy(xs.Row(r), testX.Row(r%testX.Rows))
			}
			iters := calls / batch
			if iters < 50 {
				iters = 50
			}
			for i := 0; i < iters/10+1; i++ { // warmup
				forward(xs)
			}
			lats := make([]float64, 0, iters)
			t0 := time.Now()
			for i := 0; i < iters; i++ {
				c0 := time.Now()
				forward(xs)
				lats = append(lats, float64(time.Since(c0).Nanoseconds())/1e3)
			}
			total := time.Since(t0).Seconds()
			st := summarize(lats)
			p := precisionPoint{
				Batch: batch,
				P50Us: st.P50Micros,
				P99Us: st.P99Micros,
				QPS:   float64(iters*batch) / total,
			}
			if tier == infer.PrecisionF64 {
				baseP50[batch] = p.P50Us
				p.SpeedupP50 = 1
			} else if base := baseP50[batch]; base > 0 && p.P50Us > 0 {
				p.SpeedupP50 = base / p.P50Us
			}
			pt.Points = append(pt.Points, p)
		}
		sec.Tiers = append(sec.Tiers, pt)
	}
	return sec, nil
}

// benchTracing drives two otherwise-identical engines — one with per-request
// traces plus the drift monitor's curve check attached, one bare — in
// alternating rounds (so frequency/thermal drift averages out) and compares
// per-request latency. The cache is disabled so every request walks the full
// queue → batch → forward path the traces decompose.
func benchTracing(m *core.Model, testX *tensor.Matrix, calls int, tauOf func(int) int) (*traceBench, error) {
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	cfg := serving.Config{
		MaxBatch:     32,
		MaxWait:      200 * time.Microsecond,
		QueueDepth:   4096,
		CacheEntries: -1,
	}
	mon := monitor.New(monitor.Config{}, obs.NewRegistry())
	tcfg := cfg
	tcfg.CurveCheck = func(curve []float64) { mon.CheckCurve(curve) }
	engU := serving.NewEngine(serving.NewRegistry(m), cfg)
	defer engU.Close()
	engT := serving.NewEngine(serving.NewRegistry(m), tcfg)
	defer engT.Close()

	// run fires one round of concurrent traffic; for the traced engine it
	// also harvests queue-wait durations and formed-batch sizes per request.
	run := func(eng *serving.Engine, traced bool, n int) (lats, waits, sizes []float64, err error) {
		var mu sync.Mutex
		var wg sync.WaitGroup
		errc := make(chan error, workers)
		per := n / workers
		if per < 1 {
			per = 1
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				l := make([]float64, 0, per)
				qw := make([]float64, 0, per)
				bs := make([]float64, 0, per)
				for i := 0; i < per; i++ {
					q := (w*per + i) % testX.Rows
					x, tau := testX.Row(q), tauOf(q)
					t0 := time.Now()
					if traced {
						tr := obs.NewTrace()
						if _, err := eng.EstimateTraced(context.Background(), x, tau, tr); err != nil {
							errc <- err
							return
						}
						l = append(l, float64(time.Since(t0).Nanoseconds())/1e3)
						for _, s := range tr.Stages() {
							if s.Name == serving.StageQueueWait {
								qw = append(qw, s.Us)
							}
						}
						if b, ok := tr.Fields()["batch_size"].(int); ok {
							bs = append(bs, float64(b))
						}
					} else {
						if _, err := eng.Estimate(context.Background(), x, tau); err != nil {
							errc <- err
							return
						}
						l = append(l, float64(time.Since(t0).Nanoseconds())/1e3)
					}
				}
				mu.Lock()
				lats = append(lats, l...)
				waits = append(waits, qw...)
				sizes = append(sizes, bs...)
				mu.Unlock()
			}(w)
		}
		wg.Wait()
		select {
		case err := <-errc:
			return nil, nil, nil, err
		default:
		}
		return lats, waits, sizes, nil
	}

	if _, _, _, err := run(engU, false, calls/4); err != nil { // warmup
		return nil, err
	}
	flush0 := flushCounts()

	const rounds = 8
	chunk := calls / rounds
	var un, tr, waits, sizes []float64
	for r := 0; r < rounds; r++ {
		u, _, _, err := run(engU, false, chunk)
		if err != nil {
			return nil, err
		}
		un = append(un, u...)
		tl, w, b, err := run(engT, true, chunk)
		if err != nil {
			return nil, err
		}
		tr = append(tr, tl...)
		waits = append(waits, w...)
		sizes = append(sizes, b...)
	}
	flush1 := flushCounts()

	out := &traceBench{
		Untraced: summarize(un),
		Traced:   summarize(tr),
		FlushMix: map[string]uint64{},
	}
	out.OverheadP50Pct = overheadPct(out.Traced.P50Micros, out.Untraced.P50Micros)
	for k, v := range flush1 {
		out.FlushMix[k] = v - flush0[k]
	}
	if len(waits) > 0 {
		sort.Float64s(waits)
		out.QueueWaitP50Us = pickQuantile(waits, 0.50)
		out.QueueWaitP95Us = pickQuantile(waits, 0.95)
	}
	if len(sizes) > 0 {
		var s float64
		for _, v := range sizes {
			s += v
		}
		out.MeanBatchSize = s / float64(len(sizes))
	}
	return out, nil
}

// flushCounts snapshots the engine's flush-reason counters.
func flushCounts() map[string]uint64 {
	return map[string]uint64{
		serving.FlushSize:     obs.Default.Counter("serving.batch.flush_size").Value(),
		serving.FlushDeadline: obs.Default.Counter("serving.batch.flush_deadline").Value(),
		serving.FlushShutdown: obs.Default.Counter("serving.batch.flush_shutdown").Value(),
	}
}

// pickQuantile picks the nearest-rank quantile from a sorted slice.
func pickQuantile(sorted []float64, q float64) float64 {
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// verifyBatchIdentical checks byte-for-byte equality of the batched and
// per-sample paths over every (query, τ) pair the bench exercises.
func verifyBatchIdentical(m *core.Model, testX *tensor.Matrix, size int) bool {
	tauMax := m.Cfg.TauMax
	xs := tensor.NewMatrix(size, m.InDim)
	taus := make([]int, size)
	for start := 0; start < testX.Rows; start += size {
		n := size
		if start+n > testX.Rows {
			n = testX.Rows - start
		}
		sub := &tensor.Matrix{Rows: n, Cols: m.InDim, Data: xs.Data[:n*m.InDim]}
		for r := 0; r < n; r++ {
			copy(sub.Row(r), testX.Row(start+r))
			taus[r] = (start + r) % (tauMax + 1)
		}
		got := m.EstimateEncodedBatch(sub, taus[:n])
		for r := 0; r < n; r++ {
			if got[r] != m.EstimateEncoded(sub.Row(r), taus[r]) {
				return false
			}
		}
		all := m.EstimateAllTausBatch(sub)
		for r := 0; r < n; r++ {
			want := m.EstimateAllTaus(sub.Row(r))
			for i := range want {
				if all.At(r, i) != want[i] {
					return false
				}
			}
		}
	}
	return true
}

// benchEngine drives the full engine (queue, batcher, cache) with concurrent
// clients over a repeating query set, cache off vs on.
func benchEngine(m *core.Model, testX *tensor.Matrix, calls int, tauOf func(int) int) (*engineBench, error) {
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	run := func(cacheEntries int) (float64, error) {
		reg := serving.NewRegistry(m)
		eng := serving.NewEngine(reg, serving.Config{
			MaxBatch:     32,
			MaxWait:      200 * time.Microsecond,
			QueueDepth:   4096,
			CacheEntries: cacheEntries,
		})
		defer eng.Close()
		var wg sync.WaitGroup
		errc := make(chan error, workers)
		per := calls / workers
		t0 := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					q := (w*per + i) % testX.Rows
					if _, err := eng.Estimate(context.Background(), testX.Row(q), tauOf(q)); err != nil {
						errc <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(t0).Seconds()
		select {
		case err := <-errc:
			return 0, err
		default:
		}
		return float64(per*workers) / elapsed, nil
	}

	out := &engineBench{}
	var err error
	if out.ColdQPS, err = run(-1); err != nil {
		return nil, err
	}
	hits0 := obs.Default.Counter("serving.cache.hits").Value()
	miss0 := obs.Default.Counter("serving.cache.misses").Value()
	if out.WarmQPS, err = run(4096); err != nil {
		return nil, err
	}
	hits := float64(obs.Default.Counter("serving.cache.hits").Value() - hits0)
	misses := float64(obs.Default.Counter("serving.cache.misses").Value() - miss0)
	if hits+misses > 0 {
		out.HitRatio = hits / (hits + misses)
	}
	if out.ColdQPS > 0 {
		out.Speedup = out.WarmQPS / out.ColdQPS
	}
	return out, nil
}

func (r *serveBenchReport) write(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
