package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"cardnet/internal/core"
	"cardnet/internal/obs"
	"cardnet/internal/obs/runtimeobs"
	"cardnet/internal/obs/slo"
	"cardnet/internal/tensor"
)

// latencyStats summarizes one measured configuration in microseconds.
type latencyStats struct {
	Calls     int     `json:"calls"`
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
	MeanMicro float64 `json:"mean_us"`
}

// obsBenchReport is the results/BENCH_obs.json schema: estimate-path latency
// with obs instrumentation enabled vs. disabled, proving the overhead budget
// (< 5% on the hot path) is held, plus the background-telemetry section
// (runtime sampler + SLO tracker running vs. idle).
type obsBenchReport struct {
	Dataset         string            `json:"dataset"`
	Records         int               `json:"records"`
	Queries         int               `json:"queries"`
	TauMax          int               `json:"tau_max"`
	Accel           bool              `json:"accel"`
	On              latencyStats      `json:"obs_on"`
	Off             latencyStats      `json:"obs_off"`
	OverheadP50Pct  float64           `json:"overhead_p50_pct"`
	OverheadP99Pct  float64           `json:"overhead_p99_pct"`
	OverheadMeanPct float64           `json:"overhead_mean_pct"`
	Telemetry       telemetryOverhead `json:"telemetry"`
}

// telemetryOverhead compares estimate-path latency with the serve-mode
// background telemetry (runtimeobs sampler + slo tracker) running at an
// aggressive cadence against the same path with no background goroutines.
// The production cadences (10s sampling, 5s SLO evaluation) are hundreds of
// times slower than the benchmarked ones, so the real overhead is bounded
// far below what this section reports.
type telemetryOverhead struct {
	// IntervalMicros is the sampler/tracker cadence used for the bench.
	IntervalMicros  float64      `json:"interval_us"`
	On              latencyStats `json:"telemetry_on"`
	Off             latencyStats `json:"telemetry_off"`
	OverheadP50Pct  float64      `json:"overhead_p50_pct"`
	OverheadP99Pct  float64      `json:"overhead_p99_pct"`
	OverheadMeanPct float64      `json:"overhead_mean_pct"`
}

// runObsBench measures EstimateEncoded latency with instrumentation on and
// off. Rounds alternate between the two configurations so frequency/thermal
// drift averages out instead of biasing one side.
func runObsBench(m *core.Model, testX *tensor.Matrix, tauMax, calls int) (*obsBenchReport, error) {
	if testX == nil || testX.Rows == 0 {
		return nil, fmt.Errorf("no test queries in bundle")
	}
	if calls < 100 {
		calls = 100
	}
	run := estimateRunner(m, testX, tauMax)

	defer obs.SetEnabled(true)
	var seq int
	run(calls/4, &seq) // warmup, discarded

	const rounds = 8
	chunk := calls / rounds
	var on, off []float64
	for r := 0; r < rounds; r++ {
		obs.SetEnabled(true)
		on = append(on, run(chunk, &seq)...)
		obs.SetEnabled(false)
		off = append(off, run(chunk, &seq)...)
	}
	obs.SetEnabled(true)

	rep := &obsBenchReport{
		Queries: testX.Rows,
		TauMax:  tauMax,
		Accel:   m.Cfg.Accel,
		On:      summarize(on),
		Off:     summarize(off),
	}
	rep.OverheadP50Pct = overheadPct(rep.On.P50Micros, rep.Off.P50Micros)
	rep.OverheadP99Pct = overheadPct(rep.On.P99Micros, rep.Off.P99Micros)
	rep.OverheadMeanPct = overheadPct(rep.On.MeanMicro, rep.Off.MeanMicro)
	rep.Telemetry = measureTelemetryOverhead(run, calls)
	return rep, nil
}

// estimateRunner returns a closure measuring per-call EstimateEncoded
// latency in microseconds, advancing a shared query/τ sequence so
// consecutive measurement rounds never replay the same cache-warm inputs.
func estimateRunner(m *core.Model, testX *tensor.Matrix, tauMax int) func(count int, seq *int) []float64 {
	return func(count int, seq *int) []float64 {
		durs := make([]float64, 0, count)
		for i := 0; i < count; i++ {
			q := testX.Row(*seq % testX.Rows)
			tau := *seq % (tauMax + 1)
			*seq++
			t0 := time.Now()
			m.EstimateEncoded(q, tau)
			durs = append(durs, float64(time.Since(t0).Nanoseconds())/1e3)
		}
		return durs
	}
}

// measureTelemetryOverhead times the estimate path with the serve-mode
// background telemetry running against the same path with it stopped,
// interleaving rounds like the instrumentation comparison above. The
// sampler and SLO tracker run at a deliberately punishing cadence (1ms vs.
// the production 10s/5s) so the measured delta is a hard upper bound.
func measureTelemetryOverhead(run func(count int, seq *int) []float64, calls int) telemetryOverhead {
	const interval = time.Millisecond
	obs.SetEnabled(true)
	startTelemetry := func() (*runtimeobs.Sampler, *slo.Tracker) {
		s := runtimeobs.Start(runtimeobs.Config{Interval: interval})
		tr := slo.New(slo.Config{
			Interval:   interval,
			Objectives: defaultSLOObjectives(0.1, 0.99, 0.999),
		})
		tr.Start()
		return s, tr
	}

	var seq int
	run(calls/4, &seq) // warmup, discarded

	const rounds = 8
	chunk := calls / rounds
	var on, off []float64
	for r := 0; r < rounds; r++ {
		s, tr := startTelemetry()
		on = append(on, run(chunk, &seq)...)
		tr.Stop()
		s.Stop()
		off = append(off, run(chunk, &seq)...)
	}

	to := telemetryOverhead{
		IntervalMicros: float64(interval.Microseconds()),
		On:             summarize(on),
		Off:            summarize(off),
	}
	to.OverheadP50Pct = overheadPct(to.On.P50Micros, to.Off.P50Micros)
	to.OverheadP99Pct = overheadPct(to.On.P99Micros, to.Off.P99Micros)
	to.OverheadMeanPct = overheadPct(to.On.MeanMicro, to.Off.MeanMicro)
	return to
}

func summarize(durs []float64) latencyStats {
	sorted := append([]float64(nil), durs...)
	sort.Float64s(sorted)
	var sum float64
	for _, d := range sorted {
		sum += d
	}
	pick := func(q float64) float64 {
		i := int(q * float64(len(sorted)))
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return latencyStats{
		Calls:     len(sorted),
		P50Micros: pick(0.50),
		P99Micros: pick(0.99),
		MeanMicro: sum / float64(len(sorted)),
	}
}

func overheadPct(on, off float64) float64 {
	if off == 0 {
		return 0
	}
	return (on - off) / off * 100
}

func (r *obsBenchReport) write(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
