package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"cardnet/internal/core"
	"cardnet/internal/obs"
	"cardnet/internal/tensor"
)

// latencyStats summarizes one measured configuration in microseconds.
type latencyStats struct {
	Calls     int     `json:"calls"`
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
	MeanMicro float64 `json:"mean_us"`
}

// obsBenchReport is the results/BENCH_obs.json schema: estimate-path latency
// with obs instrumentation enabled vs. disabled, proving the overhead budget
// (< 5% on the hot path) is held.
type obsBenchReport struct {
	Dataset         string       `json:"dataset"`
	Records         int          `json:"records"`
	Queries         int          `json:"queries"`
	TauMax          int          `json:"tau_max"`
	Accel           bool         `json:"accel"`
	On              latencyStats `json:"obs_on"`
	Off             latencyStats `json:"obs_off"`
	OverheadP50Pct  float64      `json:"overhead_p50_pct"`
	OverheadP99Pct  float64      `json:"overhead_p99_pct"`
	OverheadMeanPct float64      `json:"overhead_mean_pct"`
}

// runObsBench measures EstimateEncoded latency with instrumentation on and
// off. Rounds alternate between the two configurations so frequency/thermal
// drift averages out instead of biasing one side.
func runObsBench(m *core.Model, testX *tensor.Matrix, tauMax, calls int) (*obsBenchReport, error) {
	if testX == nil || testX.Rows == 0 {
		return nil, fmt.Errorf("no test queries in bundle")
	}
	if calls < 100 {
		calls = 100
	}
	run := func(count int, seq *int) []float64 {
		durs := make([]float64, 0, count)
		for i := 0; i < count; i++ {
			q := testX.Row(*seq % testX.Rows)
			tau := *seq % (tauMax + 1)
			*seq++
			t0 := time.Now()
			m.EstimateEncoded(q, tau)
			durs = append(durs, float64(time.Since(t0).Nanoseconds())/1e3)
		}
		return durs
	}

	defer obs.SetEnabled(true)
	var seq int
	run(calls/4, &seq) // warmup, discarded

	const rounds = 8
	chunk := calls / rounds
	var on, off []float64
	for r := 0; r < rounds; r++ {
		obs.SetEnabled(true)
		on = append(on, run(chunk, &seq)...)
		obs.SetEnabled(false)
		off = append(off, run(chunk, &seq)...)
	}
	obs.SetEnabled(true)

	rep := &obsBenchReport{
		Queries: testX.Rows,
		TauMax:  tauMax,
		Accel:   m.Cfg.Accel,
		On:      summarize(on),
		Off:     summarize(off),
	}
	rep.OverheadP50Pct = overheadPct(rep.On.P50Micros, rep.Off.P50Micros)
	rep.OverheadP99Pct = overheadPct(rep.On.P99Micros, rep.Off.P99Micros)
	rep.OverheadMeanPct = overheadPct(rep.On.MeanMicro, rep.Off.MeanMicro)
	return rep, nil
}

func summarize(durs []float64) latencyStats {
	sorted := append([]float64(nil), durs...)
	sort.Float64s(sorted)
	var sum float64
	for _, d := range sorted {
		sum += d
	}
	pick := func(q float64) float64 {
		i := int(q * float64(len(sorted)))
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return latencyStats{
		Calls:     len(sorted),
		P50Micros: pick(0.50),
		P99Micros: pick(0.99),
		MeanMicro: sum / float64(len(sorted)),
	}
}

func overheadPct(on, off float64) float64 {
	if off == 0 {
		return 0
	}
	return (on - off) / off * 100
}

func (r *obsBenchReport) write(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
