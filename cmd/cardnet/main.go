// Command cardnet trains a CardNet/CardNet-A estimator on a generated
// workload, saves it to disk, answers estimation queries, and serves
// estimates over HTTP with full observability — a minimal operational loop
// around the library.
//
// Usage:
//
//	cardnet -mode train -dataset HM-ImageNet -model model.gob
//	cardnet -mode train -dataset HM-ImageNet -model model.gob -resume
//	cardnet -mode estimate -dataset HM-ImageNet -model model.gob -queries 20
//	cardnet -mode update -dataset HM-ImageNet -model model.gob
//	cardnet -mode serve -model model.gob -addr :8089
//	cardnet -mode router -addr :8088 -replicas http://127.0.0.1:8089,http://127.0.0.1:8090
//	cardnet -mode tracescan -scan-top 10 router.trace.jsonl replica1.trace.jsonl replica2.trace.jsonl
//	cardnet -mode obsbench -dataset HM-ImageNet -benchout results/BENCH_obs.json
//	cardnet -mode servebench -dataset HM-ImageNet -benchout results/BENCH_serving.json
//	cardnet -mode trainbench -dataset HM-ImageNet -benchout results/BENCH_train.json
//	cardnet -mode autopilotbench -dataset HM-ImageNet -benchout results/BENCH_autopilot.json
//
// Train and update write a per-epoch JSONL training log (default
// <model>.train.jsonl; -trainlog off disables) and durable checkpoints
// (default <model>.ckpt directory; tune with -ckpt-dir/-ckpt-every/
// -ckpt-retain). SIGINT/SIGTERM stop the run at the next epoch boundary with
// that epoch checkpointed; -resume continues bit-identically from the newest
// usable checkpoint, given the same dataset flags. Finished models are
// published atomically (temp file + fsync + rename with a CRC-checked
// header), so the serve loader never sees a torn file. Serve runs the
// internal/serving batched engine (micro-batching, admission control,
// estimate cache, hot model swap — tune with -maxbatch/-maxwait/-queue/
// -workers/-cache) and exposes POST/GET /estimate, POST /admin/reload,
// /metrics (obs registry snapshot), /healthz, and /debug/pprof/*; it shuts
// down gracefully on SIGINT/SIGTERM. Router fronts N serve replicas with
// cache-affine consistent-hash routing on (hash(x), τ), health probing with
// ejection, bounded failover on 503/connect errors, graceful drain, and
// canary model rollout via POST /admin/rollout (tune with -replicas/-vnodes/
// -probe-interval/-eject-after/-failover-retries/-rollout-*). The router
// propagates a fleet-wide trace ID to its replicas (X-Trace-Id, with the
// attempt span in X-Trace-Parent) and samples its own tiled stage traces
// (-trace-sample-rate/-tracelog, same flags as serve); tracescan joins the
// router's and replicas' trace JSONL files into end-to-end cross-process
// traces and reports critical-path attribution, retry amplification, and the
// slowest traces (tune with -scan-top/-scan-skew/-scan-json). Obsbench
// records estimate-path latency
// with instrumentation on vs. off; servebench records batched vs per-request
// throughput and the estimate cache's effect (and with -cluster, router
// scaling efficiency vs. replica count plus a mid-bench replica-kill failover
// run); trainbench sweeps the
// data-parallel training engine over worker counts and records epoch/total
// speedups plus tensor-kernel GFLOP/s. Autopilotbench drives one full
// closed-loop cycle (drift → retrain → shadow → swap) against a live engine
// and records trigger latency, shadow-tap overhead, and client-visible swap
// downtime.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"cardnet/internal/autopilot"
	"cardnet/internal/bench"
	"cardnet/internal/checkpoint"
	"cardnet/internal/cluster"
	"cardnet/internal/core"
	"cardnet/internal/dataset"
	"cardnet/internal/infer"
	"cardnet/internal/metrics"
	"cardnet/internal/obs"
	"cardnet/internal/obs/runtimeobs"
	"cardnet/internal/serving"
	"cardnet/internal/simselect"
	"cardnet/internal/tensor"
)

// Build identity, stamped by the Makefile via
// -ldflags "-X main.buildVersion=… -X main.buildSHA=…"; plain `go build`
// runs as dev/unknown. Exposed as the cardnet_build_info info metric and in
// /healthz so an operator can tell which build each replica runs.
var (
	buildVersion = "dev"
	buildSHA     = "unknown"
)

func main() {
	log.SetFlags(0)
	mode := flag.String("mode", "train", "train | estimate | update | serve | router | tracescan | fleetstat | obsbench | servebench | trainbench | autopilotbench")
	dsName := flag.String("dataset", "HM-ImageNet", "dataset name from the Table 2 registry")
	modelPath := flag.String("model", "cardnet-model.gob", "model file (input for estimate/update/serve, output for train)")
	n := flag.Int("n", 1200, "dataset size")
	accel := flag.Bool("accel", true, "use the accelerated CardNet-A encoder")
	queries := flag.Int("queries", 10, "estimate: number of test queries to answer")
	seed := flag.Int64("seed", 7, "random seed")
	addr := flag.String("addr", ":8089", "serve: HTTP listen address")
	trainLog := flag.String("trainlog", "", `train/update: JSONL epoch-event log path ("" = <model>.train.jsonl, "off" = disabled)`)
	benchOut := flag.String("benchout", "results/BENCH_obs.json", "obsbench/servebench: output JSON path")
	benchCalls := flag.Int("calls", 2000, "obsbench/servebench: measured estimate calls per configuration")
	maxBatch := flag.Int("maxbatch", 32, "serve: max requests coalesced into one forward pass")
	maxWait := flag.Duration("maxwait", time.Millisecond, "serve: batch flush deadline")
	queueDepth := flag.Int("queue", 256, "serve: admission queue depth (full queue -> 503)")
	workers := flag.Int("workers", 0, "train/update: data-parallel training shards (0 = all CPUs); serve: batch workers (0 = half the CPUs)")
	benchEpochs := flag.Int("benchepochs", 8, "trainbench: training epochs per worker configuration")
	cacheEntries := flag.Int("cache", 4096, "serve: estimate cache entries (negative disables)")
	precision := flag.String("precision", "f64", "serve: inference precision tier (f64 | f32 | int8); compiled tiers serve only if the accuracy gate passes, else f64")
	precisionGateDelta := flag.Float64("precision-gate-delta", infer.DefaultGateMaxDelta, "serve: max q-error p99 delta vs f64 a compiled precision tier may add before falling back")
	precisionGateSweep := flag.Int("precision-gate-sweep", infer.DefaultGateSweep, "serve: validation queries the precision gate evaluates per (re)lowering")
	traceRate := flag.Float64("trace-sample-rate", 0.01, "serve/router: fraction of requests whose traces are written to -tracelog")
	traceLog := flag.String("tracelog", "off", `serve/router: JSONL request-trace log path ("off" = disabled)`)
	auditRate := flag.Float64("audit-sample-rate", 0, "serve: fraction of estimates replayed against the exact oracle (Hamming datasets only; 0 = off)")
	autopilotOn := flag.Bool("autopilot", false, "serve: close the drift loop autonomously (drift -> incremental retrain -> shadow-eval -> hot swap); needs the exact oracle, so Hamming datasets only")
	autopilotDwell := flag.Duration("autopilot-dwell", 30*time.Second, "serve: how long drift must stay retrain-recommended before the autopilot triggers")
	autopilotCooldown := flag.Duration("autopilot-cooldown", 5*time.Minute, "serve: rest period after an autopilot swap or reject before it re-arms")
	autopilotMinSamples := flag.Int("autopilot-min-samples", 64, "serve: distinct feedback/audit queries the autopilot needs before retraining")
	autopilotShadowRate := flag.Float64("autopilot-shadow-rate", 0.25, "serve: fraction of live batches dual-run through the candidate during shadow evaluation")
	autopilotShadowMin := flag.Int("autopilot-shadow-min", 256, "serve: live rows the shadow comparison scores before a swap/reject verdict")
	autopilotShadowTimeout := flag.Duration("autopilot-shadow-timeout", 2*time.Minute, "serve: shadow-phase bound; too little traffic by then rejects the candidate")
	autopilotWorkers := flag.Int("autopilot-workers", 1, "serve: data-parallel shards for autopilot retrains (1 = sequential, least disruptive to serving)")
	autopilotDir := flag.String("autopilot-dir", "", `serve: autopilot staging directory for candidate checkpoints ("" = <model>.autopilot)`)
	autopilotJournal := flag.String("autopilot-journal", "", `serve: JSONL autopilot decision-journal path ("" = <model>.autopilot.jsonl, "off" = disabled)`)
	resume := flag.Bool("resume", false, "train/update: continue from the newest checkpoint in -ckpt-dir (same dataset flags required)")
	ckptDir := flag.String("ckpt-dir", "", `train/update: checkpoint directory ("" = <model>.ckpt, "off" = disable checkpointing)`)
	ckptEvery := flag.Int("ckpt-every", 1, "train/update: write a checkpoint every N epochs")
	ckptRetain := flag.Int("ckpt-retain", 3, "train/update: checkpoints kept on disk (older ones are pruned)")
	obsInterval := flag.Duration("obs-interval", 10*time.Second, "serve: runtime-health sampling period")
	sloLatency := flag.Duration("slo-latency", 100*time.Millisecond, "serve: latency SLO bound (requests within it count as good)")
	sloLatencyTarget := flag.Float64("slo-latency-target", 0.99, "serve: fraction of requests promised within -slo-latency")
	sloAvailTarget := flag.Float64("slo-availability-target", 0.999, "serve: fraction of requests promised a non-5xx answer")
	sloFast := flag.Duration("slo-fast", 5*time.Minute, "serve: fast burn-rate window")
	sloSlow := flag.Duration("slo-slow", time.Hour, "serve: slow burn-rate window")
	sloInterval := flag.Duration("slo-interval", 5*time.Second, "serve: SLO evaluation period")
	sloLog := flag.String("slolog", "off", `serve: JSONL SLO state-transition log path ("off" = disabled)`)
	profileDir := flag.String("profile-dir", "off", `serve: directory for triggered pprof capture ("off" = disabled)`)
	profileRetain := flag.Int("profile-retain", 4, "serve: captured profile pairs kept on disk (older ones are pruned)")
	profileCooldown := flag.Duration("profile-cooldown", time.Minute, "serve: minimum gap between triggered profile captures")
	profileCPU := flag.Duration("profile-cpu", 2*time.Second, "serve: CPU-profile sampling duration per capture")
	profileP99 := flag.Duration("profile-p99", 0, "serve: capture a profile when the fast-window p99 exceeds this (0 = only on SLO page)")
	peersFlag := flag.String("peers", "", "serve/fleetstat: comma-separated peer addresses (host:port or URL) to federate/inspect")
	fleetInterval := flag.Duration("fleet-interval", time.Second, "fleetstat: gap between the two metric polls that yield QPS")
	replicasFlag := flag.String("replicas", "", "router: comma-separated replica base URLs to front (host:port or URL)")
	vnodes := flag.Int("vnodes", cluster.DefaultVNodes, "router: virtual nodes per replica on the consistent-hash ring")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "router: gap between replica health-probe sweeps")
	ejectAfter := flag.Int("eject-after", 3, "router: consecutive failed probes before a replica leaves the ring")
	failoverRetries := flag.Int("failover-retries", 2, "router: extra ring nodes tried after the primary rejects or is unreachable")
	rolloutBake := flag.Duration("rollout-bake", 30*time.Second, "router: canary bake period before the promote/rollback verdict")
	rolloutMaxRegression := flag.Float64("rollout-max-regression", 0.25, "router: tolerated canary q-error overshoot vs the fleet median before rollback")
	rolloutMinSamples := flag.Int("rollout-min-samples", 20, "router: q-error samples the canary window needs before its EWMA is trusted")
	rolloutJournal := flag.String("rollout-journal", "off", `router: JSONL rollout-decision journal path ("off" = disabled)`)
	clusterBench := flag.Bool("cluster", false, "servebench: also measure router scaling (1/2/4 replicas) and mid-bench failover")
	scanTop := flag.Int("scan-top", 10, "tracescan: slow-trace table size")
	scanSkew := flag.Duration("scan-skew", 5*time.Millisecond, "tracescan: clock-skew tolerance for the cross-process tiling check")
	scanJSON := flag.String("scan-json", "", `tracescan: machine-readable report path ("" = text only, "-" = JSON to stdout)`)
	flag.Parse()

	// Identity metrics: which build is this, and when did it start. The info
	// series carries the identity as labels (constant value 1, the Prometheus
	// info-metric idiom); the gauge feeds process-uptime alerting.
	obs.Default.SetInfo("cardnet.build.info",
		obs.Label{Name: "version", Value: buildVersion},
		obs.Label{Name: "sha", Value: buildSHA},
		obs.Label{Name: "go", Value: runtime.Version()})
	obs.Default.Gauge("process.start_time.seconds").
		Set(float64(runtimeobs.StartTime().UnixNano()) / 1e9)

	precTier, err := infer.ParsePrecision(*precision)
	if err != nil {
		log.Fatalf("-precision: %v", err)
	}
	serveCfg := serving.Config{
		MaxBatch:     *maxBatch,
		MaxWait:      *maxWait,
		QueueDepth:   *queueDepth,
		Workers:      *workers,
		CacheEntries: *cacheEntries,
		Precision:    precTier,
		GateMaxDelta: *precisionGateDelta,
		GateSweep:    *precisionGateSweep,
		GateSeed:     *seed,
	}

	spec, ok := dataset.DefaultsByName()[*dsName]
	if !ok {
		log.Fatalf("unknown dataset %q; known: HM-ImageNet, HM-PubChem, ED-AMiner, ED-DBLP, JC-BMS, JC-DBLPq3, EU-Glove300, EU-Glove50", *dsName)
	}
	opts := bench.DefaultOptions()
	opts.Seed = *seed
	opts.NOverride = *n
	// The serve path needs only the trained model, not a rebuilt workload.
	buildBundle := func() *bench.Bundle { return bench.BuildSuite(spec, opts).Bundle }

	switch *mode {
	case "train":
		b := buildBundle()
		sink, closeSink := openTrainLog(*trainLog, *modelPath)
		var hook core.TrainHook
		if sink != nil {
			hook = trainLogHook(sink, *dsName)
		}
		ckDir := resolveCkptDir(*ckptDir, *modelPath)

		var m *core.Model
		var res core.TrainResult
		var ck *checkpoint.Checkpointer
		if *resume {
			st := loadLatestState(requireStore(ckDir, *ckptRetain, "train"), core.PhaseTrain)
			var err error
			m, err = core.RestoreTrainer(st)
			if err != nil {
				log.Fatalf("resume: %v", err)
			}
			ck = attachCheckpointer(&m.Cfg, ckDir, *ckptEvery, *ckptRetain, hook)
			tensor.SetWorkers(m.Cfg.Workers)
			res, err = m.ResumeTrain(b.Train, b.Valid, st)
			if err != nil {
				log.Fatalf("resume: %v", err)
			}
		} else {
			cfg := core.DefaultConfig(b.TauMax)
			cfg.Accel = *accel
			cfg.Seed = *seed
			cfg.Workers = resolveTrainWorkers(*workers)
			tensor.SetWorkers(cfg.Workers)
			cfg.Hook = hook
			ck = attachCheckpointer(&cfg, ckDir, *ckptEvery, *ckptRetain, hook)
			m = core.New(cfg, b.Train.X.Cols)
			res = m.Train(b.Train, b.Valid)
		}
		reportCkptErr(ck)
		log.Printf("trained %d epochs, best validation MSLE %.4f, model %d KB",
			res.Epochs, res.BestValidMSLE, m.SizeBytes()/1024)
		if sink != nil {
			if err := sink.EmitSnapshot("train.metrics", obs.Default); err != nil {
				log.Fatalf("write training log: %v", err)
			}
		}
		closeSink()
		if res.Interrupted {
			log.Printf("interrupted at epoch %d; model not published — rerun with -resume to continue from %s", res.Epochs, ckDir)
			os.Exit(3)
		}
		if err := saveModel(m, *modelPath); err != nil {
			log.Fatalf("save model: %v", err)
		}
		log.Printf("saved to %s", *modelPath)
	case "estimate":
		b := buildBundle()
		m := load(*modelPath)
		var actual, est []float64
		shown := 0
		for _, p := range b.Points {
			v := m.EstimateEncoded(b.TestX.Row(p.Query), p.Tau)
			actual = append(actual, p.Actual)
			est = append(est, v)
			if shown < *queries {
				fmt.Printf("query %3d  theta=%6.3f  actual=%6.0f  estimate=%8.1f\n",
					p.Query, p.Theta, p.Actual, v)
				shown++
			}
		}
		fmt.Println(metrics.Evaluate(actual, est))
	case "update":
		sink, closeSink := openTrainLog(*trainLog, *modelPath)
		var hook core.TrainHook
		if sink != nil {
			hook = trainLogHook(sink, *dsName)
		}
		ckDir := resolveCkptDir(*ckptDir, *modelPath)
		// Relabel against a perturbed dataset (fresh seed) and incrementally
		// retrain, then report the validation error trajectory.
		spec2 := spec
		spec2.Seed += 31
		opts2 := opts
		opts2.Seed += 31
		suite2 := bench.BuildSuite(spec2, opts2)

		var m *core.Model
		var res core.IncrementalResult
		var ck *checkpoint.Checkpointer
		if *resume {
			st := loadLatestState(requireStore(ckDir, *ckptRetain, "update"), core.PhaseIncremental)
			var err error
			m, err = core.RestoreTrainer(st)
			if err != nil {
				log.Fatalf("resume: %v", err)
			}
			ck = attachCheckpointer(&m.Cfg, ckDir, *ckptEvery, *ckptRetain, hook)
			tensor.SetWorkers(m.Cfg.Workers)
			res, err = m.ResumeIncrementalTrain(suite2.Bundle.Train, suite2.Bundle.Valid, st)
			if err != nil {
				log.Fatalf("resume: %v", err)
			}
		} else {
			m = load(*modelPath)
			m.Cfg.Workers = resolveTrainWorkers(*workers)
			tensor.SetWorkers(m.Cfg.Workers)
			m.Cfg.Hook = hook
			ck = attachCheckpointer(&m.Cfg, ckDir, *ckptEvery, *ckptRetain, hook)
			res = m.IncrementalTrain(suite2.Bundle.Train, suite2.Bundle.Valid, 0)
		}
		reportCkptErr(ck)
		log.Printf("incremental learning: %d epochs, validation MSLE %.4f (skipped=%v)",
			res.Epochs, res.ValidMSLE, res.Skipped)
		closeSink()
		if res.Interrupted {
			log.Printf("interrupted at epoch %d; model not published — rerun with -resume to continue from %s", res.Epochs, ckDir)
			os.Exit(3)
		}
		if err := saveModel(m, *modelPath); err != nil {
			log.Fatalf("save model: %v", err)
		}
	case "serve":
		m := load(*modelPath)
		var opts serveOptions
		opts.obsInterval = *obsInterval
		opts.peers = peerMetricsURLs(*peersFlag)
		closeTraces := func() {}
		if *traceLog != "" && *traceLog != "off" {
			sink, err := obs.NewFileSink(*traceLog)
			if err != nil {
				log.Fatalf("open trace log: %v", err)
			}
			opts.sampler = obs.NewTraceSampler(*traceRate, sink)
			sampler := opts.sampler
			closeTraces = func() {
				sampler.Close() // drain queued traces before the sink goes away
				if err := sink.Close(); err != nil {
					log.Printf("close trace log: %v", err)
				}
			}
			log.Printf("writing sampled request traces to %s", *traceLog)
		}
		if *auditRate > 0 || *autopilotOn {
			if oracle := buildAuditOracle(spec, *n, m.InDim); oracle != nil {
				opts.oracle = oracle
				opts.auditRate = *auditRate
			}
		}
		closeSLOLog := func() {}
		var sloSink *obs.Sink
		opts.slo, opts.capturer, sloSink, closeSLOLog = buildTelemetry(telemetrySettings{
			latencyBound:    sloLatency.Seconds(),
			latencyTarget:   *sloLatencyTarget,
			availTarget:     *sloAvailTarget,
			fastWindow:      *sloFast,
			slowWindow:      *sloSlow,
			interval:        *sloInterval,
			logPath:         *sloLog,
			profileDir:      *profileDir,
			profileRetain:   *profileRetain,
			profileCooldown: *profileCooldown,
			profileCPU:      *profileCPU,
			profileP99:      profileP99.Seconds(),
		})
		closeAutopilotJournal := func() {}
		if *autopilotOn {
			if opts.oracle == nil {
				log.Fatalf("-autopilot needs the exact audit oracle for ground-truth labels (Hamming datasets with matching dimensions only)")
			}
			cfg := autopilot.Config{
				Dir:           resolveAutopilotDir(*autopilotDir, *modelPath),
				Dwell:         *autopilotDwell,
				Cooldown:      *autopilotCooldown,
				MinSamples:    *autopilotMinSamples,
				TrainWorkers:  *autopilotWorkers,
				CkptEvery:     *ckptEvery,
				CkptRetain:    *ckptRetain,
				ShadowRate:    *autopilotShadowRate,
				ShadowMin:     *autopilotShadowMin,
				ShadowTimeout: *autopilotShadowTimeout,
				GateSweep:     *precisionGateSweep,
				GateSeed:      *seed,
				PublishPath:   *modelPath,
				SLOSink:       sloSink,
			}
			if path := resolveAutopilotJournal(*autopilotJournal, *modelPath); path != "" {
				sink, err := obs.NewFileSink(path)
				if err != nil {
					log.Fatalf("open autopilot journal: %v", err)
				}
				cfg.Journal = sink
				closeAutopilotJournal = func() {
					if err := sink.Close(); err != nil {
						log.Printf("close autopilot journal: %v", err)
					}
				}
				log.Printf("writing autopilot decisions to %s", path)
			}
			opts.autopilotCfg = &cfg
		}
		err := runServe(m, *addr, serveCfg, opts)
		closeTraces()
		closeSLOLog()
		closeAutopilotJournal()
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
	case "router":
		err := runRouter(*addr, routerSettings{
			replicas:        *replicasFlag,
			vnodes:          *vnodes,
			probeInterval:   *probeInterval,
			ejectAfter:      *ejectAfter,
			retries:         *failoverRetries,
			bake:            *rolloutBake,
			maxRegression:   *rolloutMaxRegression,
			rolloutMinSamps: *rolloutMinSamples,
			journalPath:     *rolloutJournal,
			traceRate:       *traceRate,
			traceLog:        *traceLog,
		})
		if err != nil {
			log.Fatalf("router: %v", err)
		}
	case "tracescan":
		err := runTracescan(os.Stdout, tracescanSettings{
			files:    flag.Args(),
			topN:     *scanTop,
			skew:     *scanSkew,
			jsonPath: *scanJSON,
		})
		if err != nil {
			log.Fatalf("tracescan: %v", err)
		}
	case "fleetstat":
		if err := runFleetstat(os.Stdout, splitPeers(*peersFlag), *fleetInterval, nil); err != nil {
			log.Fatalf("fleetstat: %v", err)
		}
	case "obsbench":
		b := buildBundle()
		cfg := core.DefaultConfig(b.TauMax)
		cfg.Accel = *accel
		cfg.Seed = *seed
		// Latency does not depend on trained weights, so an untrained model
		// of the production architecture measures the same hot path.
		m := core.New(cfg, b.Train.X.Cols)
		rep, err := runObsBench(m, b.TestX, b.TauMax, *benchCalls)
		if err != nil {
			log.Fatalf("obsbench: %v", err)
		}
		rep.Dataset = *dsName
		rep.Records = *n
		if err := rep.write(*benchOut); err != nil {
			log.Fatalf("obsbench: %v", err)
		}
		log.Printf("obs on  : p50=%.1fµs p99=%.1fµs", rep.On.P50Micros, rep.On.P99Micros)
		log.Printf("obs off : p50=%.1fµs p99=%.1fµs", rep.Off.P50Micros, rep.Off.P99Micros)
		log.Printf("overhead: p50=%+.2f%% p99=%+.2f%% mean=%+.2f%% -> %s",
			rep.OverheadP50Pct, rep.OverheadP99Pct, rep.OverheadMeanPct, *benchOut)
		log.Printf("telemetry (sampler+slo at %.0fµs cadence): p50=%+.2f%% p99=%+.2f%% mean=%+.2f%%",
			rep.Telemetry.IntervalMicros, rep.Telemetry.OverheadP50Pct,
			rep.Telemetry.OverheadP99Pct, rep.Telemetry.OverheadMeanPct)
	case "servebench":
		b := buildBundle()
		// Serving throughput is measured at the paper's production
		// architecture (Section 9.1.3): at that size the Φ weights exceed
		// per-core cache, which is exactly the regime batching exists for.
		// Throughput does not depend on trained weights, so an untrained
		// model of that architecture measures the same hot path.
		cfg := core.PaperConfig(b.TauMax, 16)
		cfg.Accel = *accel
		cfg.Seed = *seed
		m := core.New(cfg, b.Train.X.Cols)
		out := *benchOut
		if out == "results/BENCH_obs.json" { // flag default belongs to obsbench
			out = "results/BENCH_serving.json"
		}
		rep, err := runServeBench(m, b.TestX, *benchCalls)
		if err != nil {
			log.Fatalf("servebench: %v", err)
		}
		rep.Dataset = *dsName
		rep.Records = *n
		if *clusterBench {
			cl, fo, err := runClusterBench(m, b.TestX)
			if err != nil {
				log.Fatalf("servebench -cluster: %v", err)
			}
			rep.Cluster, rep.Failover = cl, fo
			ct, err := runTracingOverheadBench(m, b.TestX, *benchCalls)
			if err != nil {
				log.Fatalf("servebench -cluster tracing: %v", err)
			}
			rep.ClusterTracing = ct
		}
		if err := rep.write(out); err != nil {
			log.Fatalf("servebench: %v", err)
		}
		log.Printf("per-request: %.0f est/s", rep.PerRequest.QPS)
		for _, b := range rep.Batched {
			log.Printf("batch %2d   : %.0f est/s (%.2fx), identical=%v", b.Size, b.QPS, b.Speedup, b.Identical)
		}
		log.Printf("engine cache off/on: %.0f / %.0f req/s (hit ratio %.2f)",
			rep.Engine.ColdQPS, rep.Engine.WarmQPS, rep.Engine.HitRatio)
		log.Printf("tracing overhead: p50 %+.2f%% (untraced %.0fus, traced %.0fus)",
			rep.Tracing.OverheadP50Pct, rep.Tracing.Untraced.P50Micros, rep.Tracing.Traced.P50Micros)
		log.Printf("queue wait p50/p95: %.0f/%.0fus, mean batch %.1f, flush mix %v -> %s",
			rep.Tracing.QueueWaitP50Us, rep.Tracing.QueueWaitP95Us, rep.Tracing.MeanBatchSize, rep.Tracing.FlushMix, out)
		if rep.Precision != nil {
			for _, tier := range rep.Precision.Tiers {
				for _, p := range tier.Points {
					log.Printf("precision %-4s (serves %-4s, gate pass=%v Δq=%.4f) batch %2d: p50 %7.1fus p99 %7.1fus %8.0f est/s (%.2fx)",
						tier.Tier, tier.Served, tier.GatePass, tier.QErrP99Delta,
						p.Batch, p.P50Us, p.P99Us, p.QPS, p.SpeedupP50)
				}
			}
		}
		if rep.Admission != nil {
			log.Printf("admission: %d/%d rejected 503 (%.1f%%), Retry-After on %d",
				rep.Admission.Rejected503, rep.Admission.Calls,
				100*rep.Admission.RejectedFraction, rep.Admission.RetryAfterSeen)
		}
		if rep.Cluster != nil {
			for _, r := range rep.Cluster.Runs {
				log.Printf("cluster %d replica(s): %.0f req/s (%.2fx, efficiency %.2f, hit ratio %.2f)",
					r.Replicas, r.QPS, r.Speedup, r.Efficiency, r.HitRatio)
			}
		}
		if rep.Failover != nil {
			log.Printf("failover: killed 1 of %d replicas mid-bench: %d client 5xx over %d calls, %d failovers, ejected=%v",
				rep.Failover.Replicas, rep.Failover.Client5xx, rep.Failover.Calls,
				rep.Failover.Failovers, rep.Failover.Ejected)
		}
		if ct := rep.ClusterTracing; ct != nil {
			for _, run := range ct.Runs {
				log.Printf("cluster tracing rate %.2f: p50 %+.2f%% p99 %+.2f%% (off %.0fus, on %.0fus); %d traces assembled, %d joined, %d tiling violations, %d dropped",
					run.Rate, run.OverheadP50Pct, run.OverheadP99Pct,
					ct.Off.P50Micros, run.On.P50Micros,
					run.TracesAssembled, run.TracesJoined, run.TilingViolations, run.SamplerDropped)
			}
		}
	case "autopilotbench":
		b := buildBundle()
		rep, err := runAutopilotBench(b.TestX, b.TauMax, *benchCalls, *accel, *seed)
		if err != nil {
			log.Fatalf("autopilotbench: %v", err)
		}
		rep.Dataset = *dsName
		rep.Records = *n
		out := *benchOut
		if out == "results/BENCH_obs.json" { // flag default belongs to obsbench
			out = "results/BENCH_autopilot.json"
		}
		if err := rep.write(out); err != nil {
			log.Fatalf("autopilotbench: %v", err)
		}
		log.Printf("trigger  : %.1fms observed (dwell %.0fms, excess %.1fms)",
			rep.TriggerLatencyMillis, rep.DwellMillis, rep.TriggerExcessMillis)
		log.Printf("retrain  : %.2fs   shadow: %.2fs   full cycle: %.2fs",
			rep.TrainSeconds, rep.ShadowSeconds, rep.CycleSeconds)
		log.Printf("shadow tap: p50 %+.2f%% p99 %+.2f%% (on %.0fus/%.0fus, off %.0fus/%.0fus)",
			rep.OverheadP50Pct, rep.OverheadP99Pct,
			rep.ShadowOn.P50Micros, rep.ShadowOn.P99Micros,
			rep.ShadowOff.P50Micros, rep.ShadowOff.P99Micros)
		log.Printf("swap     : %d client calls, %d errors, max stall %.0fus, version %d -> %d -> %s",
			rep.Swap.ClientCalls, rep.Swap.ClientErrors, rep.Swap.MaxStallMicro,
			rep.Swap.VersionBefore, rep.Swap.VersionAfter, out)
	case "trainbench":
		b := buildBundle()
		rep := runTrainBench(b, *accel, *seed, *benchEpochs)
		rep.Dataset = *dsName
		rep.Records = *n
		out := *benchOut
		if out == "results/BENCH_obs.json" { // flag default belongs to obsbench
			out = "results/BENCH_train.json"
		}
		if err := rep.write(out); err != nil {
			log.Fatalf("trainbench: %v", err)
		}
		if rep.Note != "" {
			log.Printf("note: %s", rep.Note)
		}
		for _, r := range rep.Runs {
			log.Printf("workers %2d: total %6.2fs  epoch mean %6.3fs  speedup %.2fx/%.2fx  best MSLE %.4f",
				r.Workers, r.TotalSeconds, r.EpochSecondsMean, r.SpeedupTotal, r.SpeedupEpoch, r.BestValidMSLE)
		}
		for _, kb := range rep.Kernels {
			log.Printf("kernel %-16s %dx%dx%d workers %2d: %6.2f GFLOP/s",
				kb.Kernel, kb.M, kb.K, kb.N, kb.Workers, kb.GFLOPS)
		}
		log.Printf("wrote %s", out)
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}

// saveModel publishes the model through the checkpoint package's framed
// atomic writer: temp file + fsync + rename, with a CRC-checked header. The
// serving loader (startup and /admin/reload) can therefore never observe a
// torn model file, even if this process dies mid-save.
func saveModel(m *core.Model, path string) error {
	return checkpoint.SaveModel(path, m)
}

// resolveCkptDir maps the -ckpt-dir flag to a checkpoint directory: "" puts
// checkpoints next to the model file (<model>.ckpt), "off" disables
// checkpointing entirely (returned as "").
func resolveCkptDir(flagVal, modelPath string) string {
	switch flagVal {
	case "off":
		return ""
	case "":
		return modelPath + ".ckpt"
	default:
		return flagVal
	}
}

// resolveAutopilotDir maps -autopilot-dir to the staging directory the pilot
// checkpoints candidates into ("" puts it next to the model file).
func resolveAutopilotDir(flagVal, modelPath string) string {
	if flagVal == "" {
		return modelPath + ".autopilot"
	}
	return flagVal
}

// resolveAutopilotJournal maps -autopilot-journal to a JSONL path ("" puts it
// next to the model file, "off" disables and returns "").
func resolveAutopilotJournal(flagVal, modelPath string) string {
	switch flagVal {
	case "off":
		return ""
	case "":
		return modelPath + ".autopilot.jsonl"
	default:
		return flagVal
	}
}

// requireStore opens the checkpoint store for a -resume run, failing with a
// usage hint when checkpointing is disabled.
func requireStore(dir string, retain int, mode string) *checkpoint.Store {
	if dir == "" {
		log.Fatalf("%s: -resume needs checkpointing (-ckpt-dir must not be off)", mode)
	}
	store, err := checkpoint.OpenStore(dir, retain)
	if err != nil {
		log.Fatalf("open checkpoint store: %v", err)
	}
	return store
}

// loadLatestState loads the newest usable checkpoint from a store, logging
// any newer files skipped as corrupt, and verifies it belongs to the phase
// being resumed ("train" checkpoints resume with -mode train, "incremental"
// ones with -mode update).
func loadLatestState(store *checkpoint.Store, phase string) *core.TrainerState {
	st, seq, skipped, err := checkpoint.LoadLatest(store)
	if err != nil {
		log.Fatalf("resume: %v", err)
	}
	for _, s := range skipped {
		log.Printf("resume: checkpoint %d is corrupt or unreadable, falling back", s)
	}
	if st.Phase != phase {
		mode := "train"
		if st.Phase == core.PhaseIncremental {
			mode = "update"
		}
		log.Fatalf("resume: checkpoint %d in %s is from a %q run — resume it with -mode %s", seq, store.Dir(), st.Phase, mode)
	}
	log.Printf("resume: continuing from checkpoint %d (epoch %d) in %s", seq, st.Epoch, store.Dir())
	return st
}

// attachCheckpointer wires durable checkpointing and graceful-shutdown
// handling into a training config: the returned Checkpointer persists state
// through cfg.Hook (chained after the training-log hook) every `every`
// epochs, and SIGINT/SIGTERM request a cooperative stop through cfg.Stop so
// the run halts at an epoch boundary with that epoch checkpointed. Returns
// nil (and leaves cfg untouched) when dir is empty, i.e. -ckpt-dir off.
func attachCheckpointer(cfg *core.Config, dir string, every, retain int, hook core.TrainHook) *checkpoint.Checkpointer {
	if dir == "" {
		return nil
	}
	store, err := checkpoint.OpenStore(dir, retain)
	if err != nil {
		log.Fatalf("open checkpoint store: %v", err)
	}
	ck := checkpoint.NewCheckpointer(store, every)
	cfg.Hook = ck.Hook(hook)
	cfg.Stop = ck.StopRequested
	stopOnSignal(ck)
	log.Printf("checkpointing to %s every %d epoch(s), retaining %d", dir, every, retain)
	return ck
}

// stopOnSignal turns the first SIGINT/SIGTERM into a cooperative stop
// request: the trainer finishes the current epoch, the checkpoint hook
// flushes that epoch's state, and the process exits cleanly with resume
// instructions. A second signal falls through to the default handler and
// kills the process immediately (resume then loses at most the in-flight
// epoch).
func stopOnSignal(ck *checkpoint.Checkpointer) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-ch
		log.Printf("%v: stopping at the next epoch boundary (send again to kill)", s)
		ck.RequestStop()
		signal.Stop(ch)
	}()
}

// reportCkptErr surfaces checkpoint-write failures after a run; they cannot
// abort training from inside a hook, so they are reported here instead.
func reportCkptErr(ck *checkpoint.Checkpointer) {
	if ck == nil {
		return
	}
	if err := ck.Err(); err != nil {
		log.Printf("warning: checkpoint write failed: %v", err)
	}
}

// openTrainLog resolves the -trainlog flag into a JSONL sink. The returned
// close func checks the file Close error (same short-write concern as the
// model file).
func openTrainLog(flagVal, modelPath string) (*obs.Sink, func()) {
	path := flagVal
	if path == "" {
		path = modelPath + ".train.jsonl"
	}
	if path == "off" {
		return nil, func() {}
	}
	sink, err := obs.NewFileSink(path)
	if err != nil {
		log.Fatalf("open training log: %v", err)
	}
	log.Printf("writing training log to %s", path)
	return sink, func() {
		if err := sink.Close(); err != nil {
			log.Fatalf("close training log: %v", err)
		}
	}
}

// trainLogHook adapts a JSONL sink to the core.TrainHook contract: one
// "epoch" event per line with the losses, ω weights, and timing.
func trainLogHook(sink *obs.Sink, ds string) core.TrainHook {
	return func(ev core.TrainEvent) {
		fields := map[string]any{
			"dataset":    ds,
			"phase":      ev.Phase,
			"epoch":      ev.Epoch,
			"train_loss": ev.TrainLoss,
			"lr":         ev.LR,
			"epoch_ms":   float64(ev.EpochTime.Microseconds()) / 1e3,
		}
		if ev.HasValid {
			fields["valid_msle"] = ev.ValidMSLE
			fields["best_msle"] = ev.BestMSLE
			fields["improved"] = ev.Improved
			fields["early_stop"] = ev.EarlyStop
			fields["omega"] = ev.Omega
		}
		if err := sink.Emit("epoch", fields); err != nil {
			log.Fatalf("write training log: %v", err)
		}
	}
}

// buildAuditOracle regenerates the dataset behind spec and wraps it in an
// exact-count oracle for serve-time audit sampling. Only Hamming workloads
// qualify: there the encoding is the identity, so the transformed-space
// count the model is trained toward equals the true cardinality. A nil
// return (with a logged reason) disables auditing rather than failing serve.
func buildAuditOracle(spec dataset.Spec, n, inDim int) *simselect.EncodedOracle {
	if spec.Kind != dataset.HM {
		log.Printf("audit disabled: exact oracle needs a Hamming dataset (identity encoding), %s is %s", spec.Name, spec.Kind)
		return nil
	}
	if n > 0 {
		spec.N = n
	}
	oracle, err := simselect.NewEncodedOracleBits(dataset.Generate(spec).Bits)
	if err != nil {
		log.Printf("audit disabled: %v", err)
		return nil
	}
	if oracle.Dim() != inDim {
		log.Printf("audit disabled: dataset dim %d != model in_dim %d (model trained on a different dataset?)", oracle.Dim(), inDim)
		return nil
	}
	return oracle
}

// loadModel reads a model file saved by saveModel (also the /admin/reload
// path, hence the error return). Frame verification means a truncated or
// torn file is rejected here instead of decoding into a broken model; bare
// gob files from before the framed format still load.
func loadModel(path string) (*core.Model, error) {
	return checkpoint.LoadModel(path)
}

func load(path string) *core.Model {
	m, err := loadModel(path)
	if err != nil {
		log.Fatalf("load model %s: %v (train first)", path, err)
	}
	return m
}
