// Command cardnet trains a CardNet/CardNet-A estimator on a generated
// workload, saves it to disk, and answers estimation queries — a minimal
// operational loop around the library.
//
// Usage:
//
//	cardnet -mode train -dataset HM-ImageNet -out model.gob
//	cardnet -mode estimate -dataset HM-ImageNet -model model.gob -queries 20
//	cardnet -mode update -dataset HM-ImageNet -model model.gob
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cardnet/internal/bench"
	"cardnet/internal/core"
	"cardnet/internal/dataset"
	"cardnet/internal/metrics"
)

func main() {
	log.SetFlags(0)
	mode := flag.String("mode", "train", "train | estimate | update")
	dsName := flag.String("dataset", "HM-ImageNet", "dataset name from the Table 2 registry")
	modelPath := flag.String("model", "cardnet-model.gob", "model file (input for estimate/update, output for train)")
	n := flag.Int("n", 1200, "dataset size")
	accel := flag.Bool("accel", true, "use the accelerated CardNet-A encoder")
	queries := flag.Int("queries", 10, "estimate: number of test queries to answer")
	seed := flag.Int64("seed", 7, "random seed")
	flag.Parse()

	spec, ok := dataset.DefaultsByName()[*dsName]
	if !ok {
		log.Fatalf("unknown dataset %q; known: HM-ImageNet, HM-PubChem, ED-AMiner, ED-DBLP, JC-BMS, JC-DBLPq3, EU-Glove300, EU-Glove50", *dsName)
	}
	opts := bench.DefaultOptions()
	opts.Seed = *seed
	opts.NOverride = *n
	suite := bench.BuildSuite(spec, opts)
	b := suite.Bundle

	switch *mode {
	case "train":
		cfg := core.DefaultConfig(b.TauMax)
		cfg.Accel = *accel
		cfg.Seed = *seed
		m := core.New(cfg, b.Train.X.Cols)
		res := m.Train(b.Train, b.Valid)
		log.Printf("trained %d epochs, best validation MSLE %.4f, model %d KB",
			res.Epochs, res.BestValidMSLE, m.SizeBytes()/1024)
		f, err := os.Create(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := m.Save(f); err != nil {
			log.Fatal(err)
		}
		log.Printf("saved to %s", *modelPath)
	case "estimate":
		m := load(*modelPath)
		var actual, est []float64
		shown := 0
		for _, p := range b.Points {
			v := m.EstimateEncoded(b.TestX.Row(p.Query), p.Tau)
			actual = append(actual, p.Actual)
			est = append(est, v)
			if shown < *queries {
				fmt.Printf("query %3d  theta=%6.3f  actual=%6.0f  estimate=%8.1f\n",
					p.Query, p.Theta, p.Actual, v)
				shown++
			}
		}
		fmt.Println(metrics.Evaluate(actual, est))
	case "update":
		m := load(*modelPath)
		// Relabel against a perturbed dataset (fresh seed) and incrementally
		// retrain, then report the validation error trajectory.
		spec2 := spec
		spec2.Seed += 31
		opts2 := opts
		opts2.Seed += 31
		suite2 := bench.BuildSuite(spec2, opts2)
		res := m.IncrementalTrain(suite2.Bundle.Train, suite2.Bundle.Valid, 0)
		log.Printf("incremental learning: %d epochs, validation MSLE %.4f (skipped=%v)",
			res.Epochs, res.ValidMSLE, res.Skipped)
		f, err := os.Create(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := m.Save(f); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}

func load(path string) *core.Model {
	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("open model: %v (train first)", err)
	}
	defer f.Close()
	m, err := core.Load(f)
	if err != nil {
		log.Fatalf("load model: %v", err)
	}
	return m
}
