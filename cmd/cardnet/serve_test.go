package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cardnet/internal/core"
	"cardnet/internal/obs"
	"cardnet/internal/serving"
	"cardnet/internal/tensor"
)

// tinyModel returns a small untrained model (serving latency and plumbing do
// not depend on trained weights). Distinct seeds give distinct estimates.
func tinyModel(seed int64) *core.Model {
	cfg := core.DefaultConfig(8)
	cfg.VAEHidden = []int{16}
	cfg.VAELatent = 4
	cfg.PhiHidden = []int{16}
	cfg.ZDim = 8
	cfg.Accel = true
	cfg.Seed = seed
	return core.New(cfg, 16)
}

// newTestServer stands up the full handler tree over a fresh engine.
func newTestServer(t *testing.T, m *core.Model, cfg serving.Config) (*httptest.Server, *serving.Engine) {
	t.Helper()
	eng := serving.NewEngine(serving.NewRegistry(m), cfg)
	ts := httptest.NewServer(newServeMux(eng, serveOptions{}))
	t.Cleanup(func() { ts.Close(); eng.Close() })
	return ts, eng
}

func postEstimate(t *testing.T, ts *httptest.Server, body string) (*http.Response, estimateResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/estimate", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var er estimateResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatal(err)
		}
	}
	return resp, er
}

func binXStrings(m *core.Model) []string {
	x := make([]string, m.InDim)
	for i := range x {
		x[i] = fmt.Sprint(i % 2)
	}
	return x
}

func TestServeEstimateAndMetrics(t *testing.T) {
	m := tinyModel(3)
	ts, _ := newTestServer(t, m, serving.Config{MaxBatch: 4, MaxWait: time.Millisecond})

	x := binXStrings(m)
	xJSON := "[" + strings.Join(x, ",") + "]"

	// POST with a single tau.
	resp, er := postEstimate(t, ts, `{"x":`+xJSON+`,"tau":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	if er.Estimate == nil || *er.Estimate < 0 || er.Tau != 3 {
		t.Fatalf("estimate response: %+v", er)
	}
	want := m.EstimateEncoded(parseFloats(t, x), 3)
	if *er.Estimate != want {
		t.Fatalf("HTTP estimate %v != direct %v", *er.Estimate, want)
	}

	// POST all-taus: monotone non-decreasing by Lemma 2.
	resp, er = postEstimate(t, ts, `{"x":`+xJSON+`,"all":true}`)
	if resp.StatusCode != http.StatusOK || len(er.Estimates) != m.Cfg.TauMax+1 {
		t.Fatalf("all-taus: status=%d resp=%+v", resp.StatusCode, er)
	}
	for i := 1; i < len(er.Estimates); i++ {
		if er.Estimates[i] < er.Estimates[i-1]-1e-9 {
			t.Fatalf("served estimates not monotone: %v", er.Estimates)
		}
	}

	// GET with query params matches POST.
	getResp, err := http.Get(ts.URL + "/estimate?x=" + strings.Join(x, ",") + "&tau=3")
	if err != nil {
		t.Fatal(err)
	}
	var getER estimateResponse
	if err := json.NewDecoder(getResp.Body).Decode(&getER); err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getER.Estimate == nil || *getER.Estimate != want {
		t.Fatalf("GET estimate: %+v", getER)
	}

	// /metrics reports the traffic just served, now through the batch path.
	mResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mResp.Body.Close()
	var snap struct {
		Counters   map[string]uint64           `json:"counters"`
		Histograms map[string]obs.HistSnapshot `json:"histograms"`
	}
	if err := json.NewDecoder(mResp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["serving.requests"] == 0 {
		t.Fatal("metrics: no serving requests recorded")
	}
	if snap.Counters["core.estimate_batch.rows"] == 0 {
		t.Fatal("metrics: no batched rows recorded")
	}
	if snap.Histograms["serving.batch.size"].Count == 0 {
		t.Fatal("metrics: empty batch-size histogram")
	}
	if snap.Histograms["http.estimate.seconds"].Count == 0 || snap.Counters["http.estimate.calls"] == 0 {
		t.Fatal("metrics: HTTP span not recorded")
	}
}

// Satellite: every malformed input fails with a deterministic 400.
func TestServeEstimateValidation(t *testing.T) {
	m := tinyModel(3)
	ts, _ := newTestServer(t, m, serving.Config{})

	x := binXStrings(m)
	xJSON := "[" + strings.Join(x, ",") + "]"
	xCSV := strings.Join(x, ",")

	post := []struct {
		name, body string
	}{
		{"malformed JSON", `{not json`},
		{"empty body", ``},
		{"empty x", `{"x":[],"tau":1}`},
		{"missing x", `{"tau":1}`},
		{"short x", `{"x":[1,0],"tau":1}`},
		{"long x", `{"x":[` + xCSV + `,1],"tau":1}`},
		{"non-binary x", `{"x":[` + strings.Replace(xCSV, "1", "0.5", 1) + `],"tau":1}`},
		{"negative component", `{"x":[` + strings.Replace(xCSV, "1", "-1", 1) + `],"tau":1}`},
		{"missing tau", `{"x":` + xJSON + `}`},
		{"negative tau", `{"x":` + xJSON + `,"tau":-1}`},
		{"tau beyond TauMax", `{"x":` + xJSON + `,"tau":` + fmt.Sprint(m.Cfg.TauMax+1) + `}`},
		{"string x", `{"x":"101","tau":1}`},
	}
	for _, tc := range post {
		resp, _ := postEstimate(t, ts, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s: status=%d, want 400", tc.name, resp.StatusCode)
		}
	}

	get := []struct {
		name, query string
	}{
		{"empty x", "?tau=1"},
		{"junk x", "?x=1,zebra,0&tau=1"},
		{"short x", "?x=1,0&tau=1"},
		{"non-binary x", "?x=" + strings.Replace(xCSV, "1", "7", 1) + "&tau=1"},
		{"junk tau", "?x=" + xCSV + "&tau=many"},
		{"tau beyond TauMax", "?x=" + xCSV + "&tau=99"},
		{"missing tau", "?x=" + xCSV},
	}
	for _, tc := range get {
		resp, err := http.Get(ts.URL + "/estimate" + tc.query)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status=%d, want 400", tc.name, resp.StatusCode)
		}
	}

	// Unsupported method.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/estimate", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("DELETE: status=%d, want 400", resp.StatusCode)
	}
}

// A drained engine maps to 503 end to end (the graceful-shutdown and
// overload degradation path, deterministic flavor).
func TestServeUnavailableAfterEngineClose(t *testing.T) {
	m := tinyModel(3)
	eng := serving.NewEngine(serving.NewRegistry(m), serving.Config{})
	ts := httptest.NewServer(newServeMux(eng, serveOptions{}))
	defer ts.Close()
	eng.Close()

	x := strings.Join(binXStrings(m), ",")
	resp, err := http.Get(ts.URL + "/estimate?x=" + x + "&tau=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("closed engine: status=%d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

// /admin/reload: invalid requests are rejected, a shape-compatible model
// swaps with zero failed in-flight requests, and answers flip to the new
// model (cache invalidated).
func TestServeAdminReload(t *testing.T) {
	m1, m2 := tinyModel(3), tinyModel(17)
	ts, eng := newTestServer(t, m1, serving.Config{MaxBatch: 8, MaxWait: 200 * time.Microsecond, QueueDepth: 4096})

	dir := t.TempDir()
	goodPath := dir + "/m2.gob"
	if err := saveModel(m2, goodPath); err != nil {
		t.Fatal(err)
	}
	wrongShape := core.New(func() core.Config {
		cfg := m1.Cfg
		cfg.TauMax = m1.Cfg.TauMax + 2
		return cfg
	}(), m1.InDim)
	wrongPath := dir + "/wrong.gob"
	if err := saveModel(wrongShape, wrongPath); err != nil {
		t.Fatal(err)
	}

	postReload := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/admin/reload", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Rejections: bad JSON, missing path, missing file, incompatible shape.
	for _, tc := range []struct {
		body string
		want int
	}{
		{`{nope`, http.StatusBadRequest},
		{`{}`, http.StatusBadRequest},
		{`{"path":"` + dir + `/missing.gob"}`, http.StatusBadRequest},
		{`{"path":"` + wrongPath + `"}`, http.StatusConflict},
	} {
		resp := postReload(tc.body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("reload %q: status=%d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}
	if _, v := eng.Registry().Current(); v != 1 {
		t.Fatalf("rejected reloads advanced version to %d", v)
	}

	// Hammer /estimate while swapping: zero non-200 responses allowed.
	xs := binXStrings(m1)
	xCSV := strings.Join(xs, ",")
	xv := parseFloats(t, xs)
	want1 := m1.EstimateEncoded(xv, 2)
	want2 := m2.EstimateEncoded(xv, 2)
	if want1 == want2 {
		t.Fatal("fixture models agree; swap would be unobservable")
	}

	stop := make(chan struct{})
	var failed, served atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/estimate?x=" + xCSV + "&tau=2")
				if err != nil {
					failed.Add(1)
					return
				}
				var er estimateResponse
				jsonErr := json.NewDecoder(resp.Body).Decode(&er)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || jsonErr != nil ||
					er.Estimate == nil || (*er.Estimate != want1 && *er.Estimate != want2) {
					failed.Add(1)
					return
				}
				served.Add(1)
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	resp := postReload(`{"path":"` + goodPath + `"}`)
	var rr map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rr["version"].(float64) != 2 {
		t.Fatalf("reload: status=%d body=%v", resp.StatusCode, rr)
	}
	time.Sleep(5 * time.Millisecond)
	close(stop)
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d estimate requests failed during reload", failed.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no traffic served during reload")
	}

	// Cache was invalidated: the same query now answers from the new model.
	resp2, er := postEstimate(t, ts, `{"x":[`+xCSV+`],"tau":2}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-reload estimate status=%d", resp2.StatusCode)
	}
	if *er.Estimate != want2 {
		t.Fatalf("post-reload estimate %v, want new model's %v", *er.Estimate, want2)
	}
	if _, v := eng.Registry().Current(); v != 2 {
		t.Fatalf("registry version %d after reload, want 2", v)
	}

	// GET on the admin endpoint is rejected.
	getResp, err := http.Get(ts.URL + "/admin/reload")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET reload: status=%d, want 405", getResp.StatusCode)
	}
}

func TestServeHealthzAndPprof(t *testing.T) {
	m := tinyModel(3)
	ts, _ := newTestServer(t, m, serving.Config{})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz["status"] != "ok" || int(hz["in_dim"].(float64)) != m.InDim {
		t.Fatalf("healthz: %+v", hz)
	}
	if int(hz["model_version"].(float64)) != 1 {
		t.Fatalf("healthz version: %+v", hz)
	}

	pp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status=%d", pp.StatusCode)
	}
}

func TestObsBenchReport(t *testing.T) {
	m := tinyModel(3)
	x := make([]float64, m.InDim*4)
	for i := range x {
		x[i] = float64(i % 2)
	}
	testX := matrixFromData(m.InDim, x)
	rep, err := runObsBench(m, testX, m.Cfg.TauMax, 400)
	if err != nil {
		t.Fatal(err)
	}
	if rep.On.Calls == 0 || rep.Off.Calls == 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	if rep.On.P50Micros <= 0 || rep.Off.P50Micros <= 0 {
		t.Fatalf("non-positive latencies: %+v", rep)
	}
	if !obs.Enabled() {
		t.Fatal("obsbench left instrumentation disabled")
	}
	if rep.Telemetry.On.Calls == 0 || rep.Telemetry.Off.Calls == 0 {
		t.Fatalf("telemetry overhead section empty: %+v", rep.Telemetry)
	}
	if rep.Telemetry.On.P50Micros <= 0 || rep.Telemetry.Off.P50Micros <= 0 {
		t.Fatalf("telemetry overhead non-positive latencies: %+v", rep.Telemetry)
	}
	path := t.TempDir() + "/BENCH_obs.json"
	if err := rep.write(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back obsBenchReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.On.Calls != rep.On.Calls {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestServeBenchReport(t *testing.T) {
	m := tinyModel(3)
	x := make([]float64, m.InDim*40)
	for i := range x {
		x[i] = float64((i / 3) % 2)
	}
	testX := matrixFromData(m.InDim, x)
	rep, err := runServeBench(m, testX, 512)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerRequest.QPS <= 0 || len(rep.Batched) == 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	for _, b := range rep.Batched {
		if !b.Identical {
			t.Fatalf("batch size %d: batched estimates diverged from per-sample", b.Size)
		}
		if b.QPS <= 0 {
			t.Fatalf("batch size %d: non-positive throughput", b.Size)
		}
	}
	if rep.Engine.ColdQPS <= 0 || rep.Engine.WarmQPS <= 0 {
		t.Fatalf("engine bench empty: %+v", rep.Engine)
	}
	if rep.Engine.HitRatio <= 0 {
		t.Fatalf("warm run recorded no cache hits: %+v", rep.Engine)
	}
	if rep.Tracing.Traced.Calls == 0 || rep.Tracing.Untraced.Calls == 0 {
		t.Fatalf("tracing bench empty: %+v", rep.Tracing)
	}
	if rep.Tracing.MeanBatchSize <= 0 {
		t.Fatalf("tracing bench recorded no batch sizes: %+v", rep.Tracing)
	}
	path := t.TempDir() + "/BENCH_serving.json"
	if err := rep.write(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back serveBenchReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Batched) != len(rep.Batched) {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	if back.Tracing.Traced.Calls != rep.Tracing.Traced.Calls {
		t.Fatalf("tracing round trip mismatch: %+v", back.Tracing)
	}
}

func parseFloats(t *testing.T, ss []string) []float64 {
	t.Helper()
	out := make([]float64, len(ss))
	for i, s := range ss {
		fmt.Sscan(s, &out[i])
	}
	return out
}

func matrixFromData(cols int, data []float64) *tensor.Matrix {
	return &tensor.Matrix{Rows: len(data) / cols, Cols: cols, Data: data}
}
