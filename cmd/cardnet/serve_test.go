package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"cardnet/internal/core"
	"cardnet/internal/obs"
	"cardnet/internal/tensor"
)

// tinyModel returns a small untrained model (serving latency and plumbing do
// not depend on trained weights).
func tinyModel() *core.Model {
	cfg := core.DefaultConfig(8)
	cfg.VAEHidden = []int{16}
	cfg.VAELatent = 4
	cfg.PhiHidden = []int{16}
	cfg.ZDim = 8
	cfg.Accel = true
	cfg.Seed = 3
	return core.New(cfg, 16)
}

func postEstimate(t *testing.T, ts *httptest.Server, body string) (*http.Response, estimateResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/estimate", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var er estimateResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatal(err)
		}
	}
	return resp, er
}

func TestServeEstimateAndMetrics(t *testing.T) {
	m := tinyModel()
	ts := httptest.NewServer(newServeMux(m))
	defer ts.Close()

	x := make([]string, m.InDim)
	for i := range x {
		x[i] = fmt.Sprint(i % 2)
	}
	xJSON := "[" + strings.Join(x, ",") + "]"

	// POST with a single tau.
	resp, er := postEstimate(t, ts, `{"x":`+xJSON+`,"tau":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	if er.Estimate == nil || *er.Estimate < 0 || er.Tau != 3 {
		t.Fatalf("estimate response: %+v", er)
	}
	want := m.EstimateEncoded(parseFloats(t, x), 3)
	if *er.Estimate != want {
		t.Fatalf("HTTP estimate %v != direct %v", *er.Estimate, want)
	}

	// POST all-taus: monotone non-decreasing by Lemma 2.
	resp, er = postEstimate(t, ts, `{"x":`+xJSON+`,"all":true}`)
	if resp.StatusCode != http.StatusOK || len(er.Estimates) != m.Cfg.TauMax+1 {
		t.Fatalf("all-taus: status=%d resp=%+v", resp.StatusCode, er)
	}
	for i := 1; i < len(er.Estimates); i++ {
		if er.Estimates[i] < er.Estimates[i-1]-1e-9 {
			t.Fatalf("served estimates not monotone: %v", er.Estimates)
		}
	}

	// GET with query params matches POST.
	getResp, err := http.Get(ts.URL + "/estimate?x=" + strings.Join(x, ",") + "&tau=3")
	if err != nil {
		t.Fatal(err)
	}
	var getER estimateResponse
	if err := json.NewDecoder(getResp.Body).Decode(&getER); err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getER.Estimate == nil || *getER.Estimate != want {
		t.Fatalf("GET estimate: %+v", getER)
	}

	// Validation errors: wrong dimension, missing tau, bad JSON.
	for _, bad := range []string{`{"x":[1,0],"tau":1}`, `{"x":` + xJSON + `}`, `{not json`} {
		if resp, _ := postEstimate(t, ts, bad); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status=%d, want 400", bad, resp.StatusCode)
		}
	}

	// /metrics reports the traffic just served: non-zero estimate-latency
	// histogram counts, τ-distribution observations, and span metrics.
	mResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mResp.Body.Close()
	var snap struct {
		Counters   map[string]uint64           `json:"counters"`
		Histograms map[string]obs.HistSnapshot `json:"histograms"`
	}
	if err := json.NewDecoder(mResp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["core.estimate.calls"] == 0 {
		t.Fatal("metrics: no estimate calls recorded")
	}
	if snap.Histograms["core.estimate.seconds"].Count == 0 {
		t.Fatal("metrics: empty estimate latency histogram")
	}
	if snap.Histograms["core.estimate.tau"].Count == 0 {
		t.Fatal("metrics: empty tau distribution")
	}
	if snap.Histograms["http.estimate.seconds"].Count == 0 || snap.Counters["http.estimate.calls"] == 0 {
		t.Fatal("metrics: HTTP span not recorded")
	}
	if snap.Counters["http.errors"] < 3 {
		t.Fatalf("metrics: error counter=%d, want ≥3", snap.Counters["http.errors"])
	}
}

func TestServeHealthzAndPprof(t *testing.T) {
	m := tinyModel()
	ts := httptest.NewServer(newServeMux(m))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz["status"] != "ok" || int(hz["in_dim"].(float64)) != m.InDim {
		t.Fatalf("healthz: %+v", hz)
	}

	pp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status=%d", pp.StatusCode)
	}
}

func TestObsBenchReport(t *testing.T) {
	m := tinyModel()
	x := make([]float64, m.InDim*4)
	for i := range x {
		x[i] = float64(i % 2)
	}
	testX := matrixFromData(m.InDim, x)
	rep, err := runObsBench(m, testX, m.Cfg.TauMax, 400)
	if err != nil {
		t.Fatal(err)
	}
	if rep.On.Calls == 0 || rep.Off.Calls == 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	if rep.On.P50Micros <= 0 || rep.Off.P50Micros <= 0 {
		t.Fatalf("non-positive latencies: %+v", rep)
	}
	if !obs.Enabled() {
		t.Fatal("obsbench left instrumentation disabled")
	}
	path := t.TempDir() + "/BENCH_obs.json"
	if err := rep.write(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back obsBenchReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.On.Calls != rep.On.Calls {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func parseFloats(t *testing.T, ss []string) []float64 {
	t.Helper()
	out := make([]float64, len(ss))
	for i, s := range ss {
		fmt.Sscan(s, &out[i])
	}
	return out
}

func matrixFromData(cols int, data []float64) *tensor.Matrix {
	return &tensor.Matrix{Rows: len(data) / cols, Cols: cols, Data: data}
}
