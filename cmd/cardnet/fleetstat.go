package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"text/tabwriter"
	"time"

	"cardnet/internal/obs"
	"cardnet/internal/obs/slo"
	"cardnet/internal/serving"
)

// fleetRow is one replica's line in the fleetstat table.
type fleetRow struct {
	instance string
	up       bool
	err      error
	health   string // /healthz status
	sloState string
	drift    string
	version  string // build version (sha)
	model    string // model version
	qps      float64
	p99ms    float64
}

// runFleetstat polls every peer's /healthz once and /metrics twice (spaced
// by interval, so counter deltas yield rates) and prints one row per
// replica: reachability, health, SLO state, drift verdict, build and model
// versions, QPS, and the p99 latency over the polling interval. A nil
// client uses the shared obs scrape client (5s timeout), the same one the
// cluster router's health prober uses. Unreachable peers still get a row.
func runFleetstat(w io.Writer, peers []string, interval time.Duration, client *http.Client) error {
	if len(peers) == 0 {
		return errors.New("no peers (use -peers host:port,host:port)")
	}
	if interval <= 0 {
		interval = time.Second
	}
	metricsURLs := make([]string, len(peers))
	healthURLs := make([]string, len(peers))
	for i, p := range peers {
		metricsURLs[i] = p + "/metrics"
		healthURLs[i] = p + "/healthz"
	}

	ctx := context.Background()
	first := obs.GatherRemote(ctx, client, metricsURLs)
	hz := obs.GatherJSON(ctx, client, healthURLs)
	health := make([]map[string]any, len(peers))
	for i := range hz {
		health[i] = hz[i].Doc // nil on fetch error: metrics decide up/down
	}
	time.Sleep(interval)
	second := obs.GatherRemote(ctx, client, metricsURLs)

	rows := make([]fleetRow, len(peers))
	for i := range peers {
		rows[i] = buildFleetRow(first[i], second[i], health[i], interval)
	}

	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "INSTANCE\tUP\tHEALTH\tSLO\tDRIFT\tBUILD\tMODEL\tQPS\tP99(ms)")
	for _, row := range rows {
		if !row.up {
			fmt.Fprintf(tw, "%s\tdown\t-\t-\t-\t-\t-\t-\t-\t(%v)\n", row.instance, row.err)
			continue
		}
		fmt.Fprintf(tw, "%s\tup\t%s\t%s\t%s\t%s\t%s\t%.1f\t%.2f\n",
			row.instance, row.health, row.sloState, row.drift, row.version, row.model, row.qps, row.p99ms)
	}
	return tw.Flush()
}

// buildFleetRow condenses two metric snapshots plus a healthz document into
// one table row.
func buildFleetRow(first, second obs.RemoteSnapshot, hz map[string]any, interval time.Duration) fleetRow {
	row := fleetRow{instance: second.Instance}
	if second.Err != nil {
		row.err = second.Err
		return row
	}
	row.up = true
	row.health = healthzString(hz, "status")
	row.sloState = healthzString(hz, "slo")
	row.drift = healthzNestedString(hz, "drift", "status")
	row.version = healthzString(hz, "version")
	if sha := healthzString(hz, "git_sha"); sha != "-" && len(sha) > 8 {
		sha = sha[:8]
		row.version += " (" + sha + ")"
	}
	if mv, ok := hz["model_version"].(float64); ok {
		row.model = strconv.Itoa(int(mv))
	} else {
		row.model = "-"
	}

	countName := obs.PromName(serving.E2EHistogram) + "_count"
	if first.Err == nil {
		row.qps = (second.Series[countName] - first.Series[countName]) / interval.Seconds()
		if row.qps < 0 {
			row.qps = 0 // replica restarted between polls
		}
	}
	bounds, counts := histDelta(first, second, obs.PromName(serving.E2EHistogram))
	if counts != nil {
		row.p99ms = slo.BucketQuantile(bounds, counts, 0.99) * 1e3
	}
	return row
}

// healthzString reads a string field from a healthz document, "-" when
// absent.
func healthzString(hz map[string]any, key string) string {
	if s, ok := hz[key].(string); ok && s != "" {
		return s
	}
	return "-"
}

// healthzNestedString reads the sub-field of a nested healthz block
// (`"<subsystem>": {"status": ...}`), falling back to a flat string at key
// for replicas from before the blocks were unified.
func healthzNestedString(hz map[string]any, key, sub string) string {
	if m, ok := hz[key].(map[string]any); ok {
		if s, ok := m[sub].(string); ok && s != "" {
			return s
		}
		return "-"
	}
	return healthzString(hz, key)
}

// histDelta extracts a histogram's per-bucket counts over the interval
// between two snapshots: finite bucket bounds in ascending order and the
// non-cumulative count deltas with the overflow bucket last — the shape
// slo.BucketQuantile consumes. Returns nil counts when the histogram is
// absent from either snapshot.
func histDelta(first, second obs.RemoteSnapshot, promName string) ([]float64, []float64) {
	cum1 := bucketCumulatives(first, promName)
	cum2 := bucketCumulatives(second, promName)
	if cum1 == nil || cum2 == nil {
		return nil, nil
	}
	bounds := make([]float64, 0, len(cum2))
	for b := range cum2 {
		if _, ok := cum1[b]; !ok {
			return nil, nil // bucket layout changed between polls
		}
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)
	counts := make([]float64, 0, len(bounds)+1)
	prev1, prev2 := 0.0, 0.0
	for _, b := range bounds {
		counts = append(counts, (cum2[b]-prev2)-(cum1[b]-prev1))
		prev1, prev2 = cum1[b], cum2[b]
	}
	countName := promName + "_count"
	counts = append(counts, (second.Series[countName]-prev2)-(first.Series[countName]-prev1))
	for i, c := range counts {
		if c < 0 {
			counts[i] = 0 // replica restarted between polls
		}
	}
	return bounds, counts
}

// bucketCumulatives collects a histogram's finite-bound cumulative bucket
// counts from a scraped snapshot, keyed by upper bound.
func bucketCumulatives(snap obs.RemoteSnapshot, promName string) map[float64]float64 {
	if snap.Err != nil {
		return nil
	}
	prefix := promName + "_bucket"
	var out map[float64]float64
	for id, v := range snap.Series {
		name, labels, err := obs.SplitSeries(id)
		if err != nil || name != prefix {
			continue
		}
		for _, l := range labels {
			if l.Name != "le" || l.Value == "+Inf" { // overflow derives from _count
				continue
			}
			bound, err := strconv.ParseFloat(l.Value, 64)
			if err != nil || math.IsInf(bound, 0) || math.IsNaN(bound) {
				continue
			}
			if out == nil {
				out = map[float64]float64{}
			}
			out[bound] = v
		}
	}
	return out
}
