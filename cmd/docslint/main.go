// Command docslint enforces the repo's documentation contracts. It is run by
// `make docs-lint` (part of `make ci`) and checks two things:
//
//  1. Every exported top-level identifier (types, funcs, methods, consts,
//     vars) in the operations-facing packages — internal/checkpoint,
//     internal/serving, internal/obs, and the obs subpackages (monitor,
//     runtimeobs, slo, profcap) — carries a doc comment, and every package
//     has package documentation.
//
//  2. The flag reference in docs/RUNBOOK.md matches cmd/cardnet: every flag
//     defined in the command appears (as `-name`) in the RUNBOOK's
//     "## Flag reference" section, and every flag the section mentions is
//     actually defined — stale runbooks fail the build in both directions.
//
// Exit status is non-zero with one line per violation. No dependencies
// beyond the standard library (go/ast, go/parser).
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// docPackages are the directories whose exported identifiers must be
// documented.
var docPackages = []string{
	"internal/checkpoint",
	"internal/cluster",
	"internal/serving",
	"internal/obs",
	"internal/obs/monitor",
	"internal/obs/runtimeobs",
	"internal/obs/slo",
	"internal/obs/profcap",
}

const (
	cmdDir      = "cmd/cardnet"
	runbookPath = "docs/RUNBOOK.md"
	flagSection = "## Flag reference"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string
	for _, dir := range docPackages {
		p, err := checkPackageDocs(filepath.Join(root, dir))
		if err != nil {
			fmt.Fprintf(os.Stderr, "docslint: %v\n", err)
			os.Exit(2)
		}
		problems = append(problems, p...)
	}
	p, err := checkRunbookFlags(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docslint: %v\n", err)
		os.Exit(2)
	}
	problems = append(problems, p...)

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "docslint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docslint: ok")
}

// checkPackageDocs parses one package directory (tests excluded) and reports
// every exported top-level declaration without a doc comment, plus a missing
// package comment.
func checkPackageDocs(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", dir, err)
	}
	var problems []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
				hasPkgDoc = true
			}
			problems = append(problems, checkFileDocs(fset, f)...)
		}
		if !hasPkgDoc {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package doc comment", dir, pkg.Name))
		}
	}
	sort.Strings(problems)
	return problems, nil
}

// checkFileDocs reports undocumented exported declarations in one file.
func checkFileDocs(fset *token.FileSet, f *ast.File) []string {
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || methodOfUnexported(d) {
				continue
			}
			if d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			groupDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					// A doc comment on the const/var block covers its members;
					// otherwise each exported name needs its own (line comments
					// count, matching gofmt'd small-const style).
					if groupDoc || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, name := range s.Names {
						if name.IsExported() {
							report(s.Pos(), "const/var", name.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

// methodOfUnexported reports whether d is a method whose receiver type is
// unexported (its API surface is invisible, so godoc does not list it).
func methodOfUnexported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return false
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && !id.IsExported()
}

// flagDefRe matches flag definitions like flag.String("name", ...).
var flagDefRe = regexp.MustCompile(`flag\.(?:String|Bool|Int64|Int|Float64|Duration)\(\s*"([^"]+)"`)

// runbookFlagRe matches backticked flag mentions like `-ckpt-dir` in the
// RUNBOOK's flag-reference section.
var runbookFlagRe = regexp.MustCompile("`-([a-z][a-z0-9-]*)`")

// checkRunbookFlags cross-checks cmd/cardnet's flag definitions against the
// RUNBOOK's flag-reference section, in both directions.
func checkRunbookFlags(root string) ([]string, error) {
	defined, err := definedFlags(filepath.Join(root, cmdDir))
	if err != nil {
		return nil, err
	}
	documented, err := runbookFlags(filepath.Join(root, runbookPath))
	if err != nil {
		return nil, err
	}
	var problems []string
	for name := range defined {
		if !documented[name] {
			problems = append(problems, fmt.Sprintf("%s: flag -%s (defined in %s) is missing from the %q section", runbookPath, name, cmdDir, flagSection))
		}
	}
	for name := range documented {
		if !defined[name] {
			problems = append(problems, fmt.Sprintf("%s: flag -%s is documented but not defined in %s", runbookPath, name, cmdDir))
		}
	}
	sort.Strings(problems)
	return problems, nil
}

// definedFlags scans the command's source for flag definitions.
func definedFlags(dir string) (map[string]bool, error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	for _, f := range files {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		src, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		for _, m := range flagDefRe.FindAllStringSubmatch(string(src), -1) {
			out[m[1]] = true
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no flag definitions found in %s", dir)
	}
	return out, nil
}

// runbookFlags extracts the backticked flag names from the RUNBOOK's
// "## Flag reference" section (only that section: elsewhere the runbook
// mentions flags of other tools, e.g. go test's -race).
func runbookFlags(path string) (map[string]bool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read %s (the ops runbook must exist): %w", path, err)
	}
	_, rest, found := strings.Cut(string(raw), flagSection)
	if !found {
		return nil, fmt.Errorf("%s has no %q section", path, flagSection)
	}
	// The section runs to the next same-level heading.
	if i := strings.Index(rest, "\n## "); i >= 0 {
		rest = rest[:i]
	}
	out := map[string]bool{}
	for _, m := range runbookFlagRe.FindAllStringSubmatch(rest, -1) {
		out[m[1]] = true
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: %q section documents no flags", path, flagSection)
	}
	return out, nil
}
