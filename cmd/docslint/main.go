// Command docslint enforces the repo's documentation contracts. It is run by
// `make docs-lint` (part of `make ci`) and checks three things:
//
//  1. Every exported top-level identifier (types, funcs, methods, consts,
//     vars) in the operations-facing packages — internal/checkpoint,
//     internal/serving, internal/obs, and the obs subpackages (monitor,
//     runtimeobs, slo, profcap, tracescan) — carries a doc comment, and
//     every package has package documentation.
//
//  2. The flag reference in docs/RUNBOOK.md matches cmd/cardnet: every flag
//     defined in the command appears (as `-name`) in the RUNBOOK's
//     "## Flag reference" section, and every flag the section mentions is
//     actually defined — stale runbooks fail the build in both directions.
//
//  3. The metrics reference in docs/RUNBOOK.md matches the code: every
//     metric registered with a literal name (reg.Counter("x.y") and the
//     Gauge/Histogram equivalents, anywhere under internal/ or cmd/cardnet)
//     appears in the RUNBOOK's "## Metrics reference" section, and every
//     dotted name that section mentions is registered somewhere. Families
//     with computed names (per-replica, per-stage, per-objective series)
//     are documented with <placeholder> segments, which the lint skips.
//
// Exit status is non-zero with one line per violation. No dependencies
// beyond the standard library (go/ast, go/parser).
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// docPackages are the directories whose exported identifiers must be
// documented.
var docPackages = []string{
	"internal/autopilot",
	"internal/checkpoint",
	"internal/cluster",
	"internal/infer",
	"internal/serving",
	"internal/obs",
	"internal/obs/monitor",
	"internal/obs/runtimeobs",
	"internal/obs/slo",
	"internal/obs/profcap",
	"internal/obs/tracescan",
}

const (
	cmdDir         = "cmd/cardnet"
	runbookPath    = "docs/RUNBOOK.md"
	flagSection    = "## Flag reference"
	metricsSection = "## Metrics reference"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string
	for _, dir := range docPackages {
		p, err := checkPackageDocs(filepath.Join(root, dir))
		if err != nil {
			fmt.Fprintf(os.Stderr, "docslint: %v\n", err)
			os.Exit(2)
		}
		problems = append(problems, p...)
	}
	p, err := checkRunbookFlags(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docslint: %v\n", err)
		os.Exit(2)
	}
	problems = append(problems, p...)
	p, err = checkRunbookMetrics(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docslint: %v\n", err)
		os.Exit(2)
	}
	problems = append(problems, p...)

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "docslint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docslint: ok")
}

// checkPackageDocs parses one package directory (tests excluded) and reports
// every exported top-level declaration without a doc comment, plus a missing
// package comment.
func checkPackageDocs(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", dir, err)
	}
	var problems []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
				hasPkgDoc = true
			}
			problems = append(problems, checkFileDocs(fset, f)...)
		}
		if !hasPkgDoc {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package doc comment", dir, pkg.Name))
		}
	}
	sort.Strings(problems)
	return problems, nil
}

// checkFileDocs reports undocumented exported declarations in one file.
func checkFileDocs(fset *token.FileSet, f *ast.File) []string {
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || methodOfUnexported(d) {
				continue
			}
			if d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			groupDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					// A doc comment on the const/var block covers its members;
					// otherwise each exported name needs its own (line comments
					// count, matching gofmt'd small-const style).
					if groupDoc || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, name := range s.Names {
						if name.IsExported() {
							report(s.Pos(), "const/var", name.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

// methodOfUnexported reports whether d is a method whose receiver type is
// unexported (its API surface is invisible, so godoc does not list it).
func methodOfUnexported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return false
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && !id.IsExported()
}

// flagDefRe matches flag definitions like flag.String("name", ...).
var flagDefRe = regexp.MustCompile(`flag\.(?:String|Bool|Int64|Int|Float64|Duration)\(\s*"([^"]+)"`)

// runbookFlagRe matches backticked flag mentions like `-ckpt-dir` in the
// RUNBOOK's flag-reference section.
var runbookFlagRe = regexp.MustCompile("`-([a-z][a-z0-9-]*)`")

// checkRunbookFlags cross-checks cmd/cardnet's flag definitions against the
// RUNBOOK's flag-reference section, in both directions.
func checkRunbookFlags(root string) ([]string, error) {
	defined, err := definedFlags(filepath.Join(root, cmdDir))
	if err != nil {
		return nil, err
	}
	documented, err := runbookFlags(filepath.Join(root, runbookPath))
	if err != nil {
		return nil, err
	}
	var problems []string
	for name := range defined {
		if !documented[name] {
			problems = append(problems, fmt.Sprintf("%s: flag -%s (defined in %s) is missing from the %q section", runbookPath, name, cmdDir, flagSection))
		}
	}
	for name := range documented {
		if !defined[name] {
			problems = append(problems, fmt.Sprintf("%s: flag -%s is documented but not defined in %s", runbookPath, name, cmdDir))
		}
	}
	sort.Strings(problems)
	return problems, nil
}

// definedFlags scans the command's source for flag definitions.
func definedFlags(dir string) (map[string]bool, error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	for _, f := range files {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		src, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		for _, m := range flagDefRe.FindAllStringSubmatch(string(src), -1) {
			out[m[1]] = true
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no flag definitions found in %s", dir)
	}
	return out, nil
}

// metricDefRe matches metric registrations with literal names:
// reg.Counter("a.b"), reg.Gauge("a.b"), reg.Histogram("a.b", bounds).
// Computed names (string concatenation, helper calls) deliberately do not
// match — those families are documented with <placeholder> segments, which
// runbookMetricRe in turn does not match.
var metricDefRe = regexp.MustCompile(`\.(?:Counter|Gauge|Histogram)\(\s*"([a-z0-9._]+)"\s*[,)]`)

// runbookMetricRe matches backticked dotted metric names like
// `cluster.proxy.seconds` in the RUNBOOK's metrics-reference section.
var runbookMetricRe = regexp.MustCompile("`([a-z0-9]+(?:\\.[a-z0-9_]+)+)`")

// metricConstRe matches exported dotted string constants, e.g.
// const E2EHistogram = "serving.e2e.seconds". Registrations may name a
// metric through such a constant instead of an inline literal.
var metricConstRe = regexp.MustCompile(`\b([A-Z][A-Za-z0-9]*)\s*=\s*"([a-z0-9]+(?:\.[a-z0-9_]+)+)"`)

// metricIdentRe matches registrations through an exported identifier:
// reg.Histogram(serving.E2EHistogram, ...).
var metricIdentRe = regexp.MustCompile(`\.(?:Counter|Gauge|Histogram)\(\s*(?:[a-z][A-Za-z0-9]*\.)?([A-Z][A-Za-z0-9]*)\s*[,)]`)

// metricScanDirs are the source trees scanned for metric registrations.
var metricScanDirs = []string{"internal", cmdDir}

// checkRunbookMetrics cross-checks literal metric registrations against the
// RUNBOOK's metrics-reference section, in both directions.
func checkRunbookMetrics(root string) ([]string, error) {
	defined, err := definedMetrics(root)
	if err != nil {
		return nil, err
	}
	documented, err := runbookMetrics(filepath.Join(root, runbookPath))
	if err != nil {
		return nil, err
	}
	var problems []string
	for name, file := range defined {
		if !documented[name] {
			problems = append(problems, fmt.Sprintf("%s: metric %s (registered in %s) is missing from the %q section", runbookPath, name, file, metricsSection))
		}
	}
	for name := range documented {
		if _, ok := defined[name]; !ok {
			problems = append(problems, fmt.Sprintf("%s: metric %s is documented but not registered anywhere under %s", runbookPath, name, strings.Join(metricScanDirs, " or ")))
		}
	}
	sort.Strings(problems)
	return problems, nil
}

// definedMetrics walks the scan dirs for metric registrations, mapping each
// name to one file that registers it. It resolves both inline literals
// (reg.Counter("a.b")) and registrations through exported dotted string
// constants (reg.Histogram(serving.E2EHistogram, ...)).
func definedMetrics(root string) (map[string]string, error) {
	out := map[string]string{}
	consts := map[string]string{}   // exported const ident -> dotted value
	idents := map[string][]string{} // registration ident -> files using it
	for _, dir := range metricScanDirs {
		err := filepath.WalkDir(filepath.Join(root, dir), func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			rel, _ := filepath.Rel(root, path)
			for _, line := range strings.Split(string(src), "\n") {
				// Skip comment lines: doc comments quote example
				// registrations that are not real metrics.
				if strings.HasPrefix(strings.TrimSpace(line), "//") {
					continue
				}
				for _, m := range metricDefRe.FindAllStringSubmatch(line, -1) {
					if _, seen := out[m[1]]; !seen {
						out[m[1]] = rel
					}
				}
				for _, m := range metricConstRe.FindAllStringSubmatch(line, -1) {
					consts[m[1]] = m[2]
				}
				for _, m := range metricIdentRe.FindAllStringSubmatch(line, -1) {
					idents[m[1]] = append(idents[m[1]], rel)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	for ident, files := range idents {
		name, ok := consts[ident]
		if !ok {
			continue // not a string constant we can resolve (e.g. a variable)
		}
		if _, seen := out[name]; !seen {
			out[name] = files[0]
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no literal metric registrations found under %s", strings.Join(metricScanDirs, ", "))
	}
	return out, nil
}

// runbookMetrics extracts the backticked dotted metric names from the
// RUNBOOK's "## Metrics reference" section.
func runbookMetrics(path string) (map[string]bool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read %s (the ops runbook must exist): %w", path, err)
	}
	_, rest, found := strings.Cut(string(raw), metricsSection)
	if !found {
		return nil, fmt.Errorf("%s has no %q section", path, metricsSection)
	}
	if i := strings.Index(rest, "\n## "); i >= 0 {
		rest = rest[:i]
	}
	out := map[string]bool{}
	for _, m := range runbookMetricRe.FindAllStringSubmatch(rest, -1) {
		out[m[1]] = true
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: %q section documents no metrics", path, metricsSection)
	}
	return out, nil
}

// runbookFlags extracts the backticked flag names from the RUNBOOK's
// "## Flag reference" section (only that section: elsewhere the runbook
// mentions flags of other tools, e.g. go test's -race).
func runbookFlags(path string) (map[string]bool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read %s (the ops runbook must exist): %w", path, err)
	}
	_, rest, found := strings.Cut(string(raw), flagSection)
	if !found {
		return nil, fmt.Errorf("%s has no %q section", path, flagSection)
	}
	// The section runs to the next same-level heading.
	if i := strings.Index(rest, "\n## "); i >= 0 {
		rest = rest[:i]
	}
	out := map[string]bool{}
	for _, m := range runbookFlagRe.FindAllStringSubmatch(rest, -1) {
		out[m[1]] = true
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: %q section documents no flags", path, flagSection)
	}
	return out, nil
}
