package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckPackageDocs(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "a.go"), `// Package p is documented.
package p

// Documented is fine.
func Documented() {}

func Undocumented() {}

type Bad struct{}

// ok covers the block.
const (
	A = 1
	B = 2
)

func internal() {}

type hidden struct{}

// String is exported but hangs off an unexported type: not API surface.
func (hidden) String() string { return "" }
`)
	problems, err := checkPackageDocs(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, p := range problems {
		names = append(names, p)
	}
	joined := strings.Join(names, "\n")
	if len(problems) != 2 {
		t.Fatalf("got %d problems, want 2:\n%s", len(problems), joined)
	}
	if !strings.Contains(joined, "Undocumented") || !strings.Contains(joined, "Bad") {
		t.Fatalf("wrong problems:\n%s", joined)
	}
}

func TestCheckPackageDocsMissingPackageComment(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "a.go"), "package p\n")
	problems, err := checkPackageDocs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "no package doc comment") {
		t.Fatalf("problems = %v", problems)
	}
}

func TestCheckRunbookFlags(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, cmdDir, "main.go"), `package main

import "flag"

var (
	a = flag.String("alpha", "", "")
	b = flag.Int("beta", 0, "")
	c = flag.Bool("gamma", false, "")
)
`)
	write(t, filepath.Join(root, runbookPath), "# Runbook\n\nProse mentions `-race` freely.\n\n"+
		flagSection+"\n\n| `-alpha` | x |\n| `-beta` | y |\n| `-stale` | gone |\n\n## Next section\n\n`-not-counted`\n")
	problems, err := checkRunbookFlags(root)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(problems, "\n")
	if len(problems) != 2 {
		t.Fatalf("got %d problems, want 2:\n%s", len(problems), joined)
	}
	if !strings.Contains(joined, "-gamma") || !strings.Contains(joined, "-stale") {
		t.Fatalf("wrong problems:\n%s", joined)
	}
}

func TestCheckRunbookMetrics(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, "internal", "pkg", "m.go"), `package pkg

// E2EName is registered elsewhere through the constant.
const E2EName = "pkg.e2e.seconds"

// Comments quoting reg.Counter("not.a.metric") are ignored.
var (
	a = reg.Counter("pkg.requests")
	b = reg.Histogram("pkg.lat.seconds", bounds)
	c = reg.Gauge("pkg." + node + ".depth") // computed: exempt
	d = reg.Histogram(E2EName, bounds)
)
`)
	write(t, filepath.Join(root, cmdDir, "main.go"), "package main\n")
	write(t, filepath.Join(root, runbookPath), "# Runbook\n\nProse mentions `other.metric` freely.\n\n"+
		metricsSection+"\n\n| `pkg.requests` | counter |\n| `pkg.e2e.seconds` | histogram |\n| `pkg.ghost` | gone |\n\nFamilies like `pkg.<node>.depth` are exempt.\n\n## Next section\n\n`not.counted`\n")
	problems, err := checkRunbookMetrics(root)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(problems, "\n")
	if len(problems) != 2 {
		t.Fatalf("got %d problems, want 2:\n%s", len(problems), joined)
	}
	if !strings.Contains(joined, "pkg.lat.seconds") || !strings.Contains(joined, "pkg.ghost") {
		t.Fatalf("wrong problems:\n%s", joined)
	}
}

// TestRepoIsClean runs the real checks against this repository — the same
// gate as `make docs-lint`.
func TestRepoIsClean(t *testing.T) {
	root := "../.."
	for _, dir := range docPackages {
		problems, err := checkPackageDocs(filepath.Join(root, dir))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range problems {
			t.Error(p)
		}
	}
	problems, err := checkRunbookFlags(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
	problems, err = checkRunbookMetrics(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}
