// Command cardbench regenerates the paper's tables and figures on the
// synthetic workloads. Each experiment id maps to one table/figure of the
// evaluation section; see DESIGN.md for the full index.
//
// Usage:
//
//	cardbench -exp table3            # Tables 3-6, 9, 10 on all 8 datasets
//	cardbench -exp fig5 -full        # larger datasets / longer training
//	cardbench -exp all               # everything (slow)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"cardnet/internal/bench"
	"cardnet/internal/dataset"
)

func main() {
	exp := flag.String("exp", "", "experiment id: datasets, fig1, table3, table7, fig5, fig6, fig7, fig8, fig9, fig10, fig11, fig13, fig14, table13, table14, mono, all")
	full := flag.Bool("full", false, "run at larger scale (slower, closer to paper shape)")
	n := flag.Int("n", 0, "override dataset size")
	seed := flag.Int64("seed", 7, "random seed")
	models := flag.String("models", "", "comma-separated model subset for fig7/fig9/fig10/table14/mono")
	obsDump := flag.Bool("obs", false, "append the obs metrics snapshot (train/estimate telemetry) after the experiments")
	flag.Parse()

	var modelList []string
	if *models != "" {
		modelList = strings.Split(*models, ",")
	}

	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}

	opts := bench.DefaultOptions()
	opts.Seed = *seed
	if *full {
		opts.Quick = false
	} else {
		// Quick profile: shrink datasets so a laptop run finishes fast.
		opts.NOverride = 1200
	}
	if *n > 0 {
		opts.NOverride = *n
	}

	w := os.Stdout
	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = []string{"datasets", "fig1", "table3", "table7", "fig5", "fig6", "fig7",
			"fig8", "fig9", "fig10", "fig11", "fig13", "fig14", "table13", "table14", "mono"}
	}
	for _, id := range ids {
		run(w, strings.TrimSpace(id), opts, modelList)
	}
	if *obsDump {
		fmt.Fprintln(w, "== obs metrics snapshot ==")
		if err := bench.WriteObsSnapshot(w); err != nil {
			fmt.Fprintf(os.Stderr, "obs snapshot: %v\n", err)
			os.Exit(1)
		}
	}
}

func run(w *os.File, id string, opts bench.Options, models []string) {
	defaults := dataset.Defaults()
	four := dataset.FourDefaults()
	switch id {
	case "datasets":
		bench.RenderDatasetStats(w, append(defaults, dataset.HighDim()...))
	case "fig1":
		spec := dataset.DefaultsByName()["HM-ImageNet"]
		if opts.NOverride > 0 {
			spec.N = opts.NOverride
		}
		bench.RunFig1(w, spec, 5, spec.N/4)
	case "table3", "table4", "table5", "table6", "table9", "table10":
		res := bench.RunAccuracy(defaults, nil, opts)
		bench.RenderAccuracyTables(w, res)
	case "table7":
		bench.RenderTable7(w, bench.RunTable7(four, opts))
	case "fig5":
		bench.RenderThresholdSeries(w, "Figure 5: accuracy vs threshold", bench.RunFig5(four, opts))
	case "fig6":
		specs := dataset.HighDim()
		if opts.NOverride > 0 {
			for i := range specs {
				specs[i].N = opts.NOverride
			}
		}
		taus := []int{8, 16, 32, 64}
		bench.RenderFig6(w, bench.RunFig6(specs[:1], taus, opts))
	case "fig7":
		bench.RenderFig7(w, bench.RunFig7(four, nil, models, opts))
	case "fig8":
		spec := dataset.DefaultsByName()["HM-ImageNet"]
		if opts.NOverride > 0 {
			spec.N = opts.NOverride
		}
		o := opts
		o.NOverride = 0
		bench.RenderFig8(w, spec.Name, bench.RunFig8(spec, 40, 5, 10, o))
	case "fig9":
		bench.RenderFig9(w, "Figure 9: long-tail queries", bench.RunFig9(four, models, opts))
	case "fig10":
		bench.RenderFig9(w, "Figure 10: out-of-dataset queries", bench.RunFig10(four, models, opts))
	case "fig11", "fig12":
		specs := bench.DefaultConjSpecs()
		if opts.NOverride > 0 {
			for i := range specs {
				specs[i].N = opts.NOverride
			}
		}
		bench.RenderFig11(w, bench.RunFig11(specs, 60, opts))
	case "fig13":
		specs := dataset.GPHSpecs()
		if opts.NOverride > 0 {
			for i := range specs {
				specs[i].N = opts.NOverride
			}
		}
		var thetas []int
		for _, s := range specs[:1] {
			thetas = []int{int(s.ThetaMax) / 4, int(s.ThetaMax) / 2, 3 * int(s.ThetaMax) / 4, int(s.ThetaMax)}
		}
		bench.RenderFig13(w, bench.RunFig13(specs, 40, thetas, opts))
	case "fig14":
		spec := dataset.GPHSpecs()[0]
		if opts.NOverride > 0 {
			spec.N = opts.NOverride
		}
		bench.RenderFig14(w, bench.RunFig14(spec, 30, nil, opts))
	case "table13":
		bench.RenderTable13(w, defaults, 400)
	case "table14", "table15", "table16":
		bench.RenderPolicies(w, bench.RunPolicies(four, models, nil, opts))
	case "mono":
		bench.RenderMonotonicity(w, four, models, opts)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
		known := []string{"datasets", "fig1", "table3", "table7", "fig5", "fig6", "fig7",
			"fig8", "fig9", "fig10", "fig11", "fig13", "fig14", "table13", "table14", "mono", "all"}
		sort.Strings(known)
		fmt.Fprintf(os.Stderr, "known: %s\n", strings.Join(known, ", "))
		os.Exit(2)
	}
}
