// Package cardnet is a from-scratch Go reproduction of "Monotonic
// Cardinality Estimation of Similarity Selection: A Deep Learning Approach"
// (Wang et al., SIGMOD 2020).
//
// The implementation lives under internal/:
//
//   - internal/core — the CardNet / CardNet-A estimator (the paper's
//     contribution): incremental per-distance decoders over a VAE-augmented
//     encoder, monotone in the threshold by construction.
//   - internal/feature — feature extraction for Hamming, edit, Jaccard and
//     Euclidean distances (Section 4 case studies).
//   - internal/simselect — exact similarity-selection algorithms used for
//     label generation and as the SimSelect baseline.
//   - internal/nn, internal/tensor, internal/gbdt — the from-scratch deep
//     learning and boosted-tree substrates.
//   - internal/baselines — every competitor model of Section 9.1.2.
//   - internal/optimizer — the query-optimizer case studies (Section 9.11).
//   - internal/dataset, internal/metrics, internal/bench — synthetic
//     workloads, evaluation metrics, and the experiment harness.
//
// Entry points: cmd/cardbench regenerates every table and figure;
// cmd/cardnet is a train/estimate/update loop; examples/ shows library use.
// The benchmarks in bench_test.go map one-to-one onto the paper's tables and
// figures.
package cardnet
