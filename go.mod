module cardnet

go 1.22
