package cardnet_test

// One benchmark per table/figure of the paper's evaluation section. Each
// runs the corresponding internal/bench experiment at a reduced scale per
// iteration and reports domain metrics (MSE, q-error, candidate counts) via
// b.ReportMetric, so `go test -bench=.` regenerates the shape of every
// result. Micro-benchmarks at the bottom measure per-estimate latency
// (Table 6's unit) directly.

import (
	"io"
	"testing"

	"cardnet/internal/bench"
	"cardnet/internal/core"
	"cardnet/internal/dataset"
	"cardnet/internal/dist"
	"cardnet/internal/simselect"
)

func benchOpts() bench.Options {
	return bench.Options{NOverride: 500, QueryFrac: 0.12, GridPoints: 10,
		TestPerQuery: 5, Quick: true, EpochOverride: 10, Seed: 11, SampleRatio: 0.1}
}

func smallSpec(name string) dataset.Spec {
	s := dataset.DefaultsByName()[name]
	s.N = 500
	return s
}

func BenchmarkFig1CardinalityDistribution(b *testing.B) {
	spec := smallSpec("HM-ImageNet")
	for i := 0; i < b.N; i++ {
		bench.RunFig1(io.Discard, spec, 5, 100)
	}
}

// BenchmarkTable3to6 evaluates the full model roster on one dataset per
// distance function, reporting CardNet-A's error metrics.
func BenchmarkTable3to6Accuracy(b *testing.B) {
	specs := []dataset.Spec{smallSpec("HM-ImageNet"), smallSpec("ED-AMiner"),
		smallSpec("JC-BMS"), smallSpec("EU-Glove300")}
	names := []string{"DB-SE", "DB-US", "TL-XGB", "TL-KDE", "DL-RMI", "DL-DNN",
		bench.NameCardNet, bench.NameCardNetA}
	var last []bench.AccuracyResult
	for i := 0; i < b.N; i++ {
		last = bench.RunAccuracy(specs, names, benchOpts())
	}
	reportModel(b, last, bench.NameCardNetA)
}

func reportModel(b *testing.B, res []bench.AccuracyResult, name string) {
	b.Helper()
	var mse, q float64
	n := 0
	for _, r := range res {
		if r.Model == name {
			mse += r.Report.MSE
			q += r.Report.MeanQError
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(mse/float64(n), "MSE")
		b.ReportMetric(q/float64(n), "q-error")
	}
}

func BenchmarkTable7Ablations(b *testing.B) {
	specs := []dataset.Spec{smallSpec("HM-ImageNet")}
	for i := 0; i < b.N; i++ {
		res := bench.RunTable7(specs, benchOpts())
		for _, r := range res {
			if r.Component == "IncrementalPrediction" {
				b.ReportMetric(r.GammaMSE*100, "γMSE%")
			}
		}
	}
}

func BenchmarkFig5ThresholdSweep(b *testing.B) {
	specs := []dataset.Spec{smallSpec("HM-ImageNet")}
	for i := 0; i < b.N; i++ {
		bench.RunFig5(specs, benchOpts())
	}
}

func BenchmarkFig6DecoderSweep(b *testing.B) {
	spec := dataset.Spec{Name: "HM-hd", Kind: dataset.HM, N: 400, Dim: 128,
		ThetaMax: 32, Seed: 21, Clusters: 6, Flip: 0.05}
	for i := 0; i < b.N; i++ {
		bench.RunFig6([]dataset.Spec{spec}, []int{8, 32}, benchOpts())
	}
}

func BenchmarkFig7TrainingSize(b *testing.B) {
	specs := []dataset.Spec{smallSpec("HM-ImageNet")}
	for i := 0; i < b.N; i++ {
		bench.RunFig7(specs, []float64{0.5, 1.0}, []string{bench.NameCardNetA, "TL-XGB"}, benchOpts())
	}
}

func BenchmarkFig8Updates(b *testing.B) {
	spec := smallSpec("HM-ImageNet")
	spec.N = 300
	o := benchOpts()
	o.NOverride = 0
	for i := 0; i < b.N; i++ {
		res := bench.RunFig8(spec, 10, 5, 5, o)
		if len(res) > 0 {
			b.ReportMetric(res[len(res)-1].IncLearn, "IncLearnMSE")
		}
	}
}

func BenchmarkFig9LongTail(b *testing.B) {
	specs := []dataset.Spec{smallSpec("HM-ImageNet")}
	names := []string{bench.NameCardNetA, "DB-US"}
	for i := 0; i < b.N; i++ {
		bench.RunFig9(specs, names, benchOpts())
	}
}

func BenchmarkFig10OutOfDataset(b *testing.B) {
	specs := []dataset.Spec{smallSpec("HM-ImageNet")}
	names := []string{bench.NameCardNetA, "DB-US"}
	for i := 0; i < b.N; i++ {
		bench.RunFig10(specs, names, benchOpts())
	}
}

func BenchmarkFig11ConjunctiveOptimizer(b *testing.B) {
	specs := []bench.ConjSpec{{Name: "conj", Attrs: 2, N: 300, Dim: 8, Seed: 31}}
	for i := 0; i < b.N; i++ {
		res := bench.RunFig11(specs, 15, benchOpts())
		for _, r := range res {
			if r.Model == bench.NameCardNetA {
				b.ReportMetric(r.Precision*100, "precision%")
			}
		}
	}
}

func BenchmarkFig13GPHOptimizer(b *testing.B) {
	spec := dataset.Spec{Name: "gph", Kind: dataset.HM, N: 300, Dim: 96,
		ThetaMax: 24, Seed: 41, Clusters: 5, Flip: 0.05}
	for i := 0; i < b.N; i++ {
		res := bench.RunFig13([]dataset.Spec{spec}, 8, []int{12}, benchOpts())
		for _, r := range res {
			if r.Model == bench.NameCardNetA {
				b.ReportMetric(float64(r.Candidates), "candidates")
			}
		}
	}
}

func BenchmarkFig14HistogramSweep(b *testing.B) {
	spec := dataset.Spec{Name: "gph", Kind: dataset.HM, N: 300, Dim: 96,
		ThetaMax: 24, Seed: 41, Clusters: 5, Flip: 0.05}
	for i := 0; i < b.N; i++ {
		bench.RunFig14(spec, 6, []int{4, 8}, benchOpts())
	}
}

func BenchmarkTable14to16Policies(b *testing.B) {
	specs := []dataset.Spec{smallSpec("HM-ImageNet")}
	names := []string{bench.NameCardNetA, "DB-US"}
	for i := 0; i < b.N; i++ {
		bench.RunPolicies(specs, names, []bench.Policy{bench.SingleUniform, bench.SingleSkewed}, benchOpts())
	}
}

// --- Micro-benchmarks: per-estimate latency (Table 6's unit) and the exact
// selection algorithms the estimators must beat. ---

func trainedModel(b *testing.B, accel bool) (*core.Model, []float64) {
	b.Helper()
	s := bench.BuildSuite(smallSpec("HM-ImageNet"), benchOpts())
	bd := s.Bundle
	cfg := core.DefaultConfig(bd.TauMax)
	cfg.Accel = accel
	cfg.VAEHidden = []int{32}
	cfg.VAELatent = 8
	cfg.VAEEpochs = 4
	cfg.PhiHidden = []int{48, 32}
	cfg.ZDim = 16
	cfg.Epochs = 6
	m := core.New(cfg, bd.Train.X.Cols)
	m.Train(bd.Train, bd.Valid)
	return m, bd.TestX.Row(0)
}

func BenchmarkEstimateCardNet(b *testing.B) {
	m, x := trainedModel(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EstimateEncoded(x, 16)
	}
}

func BenchmarkEstimateCardNetA(b *testing.B) {
	m, x := trainedModel(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EstimateEncoded(x, 16)
	}
}

func BenchmarkSimSelectHamming(b *testing.B) {
	recs := dataset.BinaryCodes(2000, 64, 8, 0.08, 5)
	ix := simselect.NewHammingIndex(recs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Count(recs[i%len(recs)], 16)
	}
}

func BenchmarkSimSelectEdit(b *testing.B) {
	recs := dataset.Strings(2000, 40, 3, 0.15, 6)
	ix := simselect.NewEditIndex(recs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Count(recs[i%len(recs)], 4)
	}
}

func BenchmarkSimSelectJaccard(b *testing.B) {
	recs := dataset.Sets(2000, 500, 20, 8, 0.8, 3, 7)
	ix := simselect.NewJaccardIndex(recs, 0.4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Count(recs[i%len(recs)], 0.4)
	}
}

func BenchmarkSimSelectEuclidean(b *testing.B) {
	recs := dataset.Vectors(2000, 32, 8, 0.1, true, 8)
	ix := simselect.NewEuclideanIndex(recs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Count(recs[i%len(recs)], 0.5)
	}
}

func BenchmarkHammingDistance(b *testing.B) {
	recs := dataset.BinaryCodes(2, 256, 1, 0.2, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist.Hamming(recs[0], recs[1])
	}
}

func BenchmarkTrainEpochCardNetA(b *testing.B) {
	s := bench.BuildSuite(smallSpec("HM-ImageNet"), benchOpts())
	bd := s.Bundle
	cfg := core.DefaultConfig(bd.TauMax)
	cfg.Accel = true
	cfg.VAEEpochs = 0
	cfg.Epochs = 1
	cfg.Patience = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.New(cfg, bd.Train.X.Cols)
		m.Train(bd.Train, nil)
	}
}
