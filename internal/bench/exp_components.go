package bench

import (
	"fmt"
	"io"
	"sort"

	"cardnet/internal/dataset"
	"cardnet/internal/metrics"
)

// AblationResult holds the γ improvement ratios of Table 7 for one
// component on one dataset.
type AblationResult struct {
	Dataset   string
	Component string
	GammaMSE  float64
	GammaMAPE float64
	GammaQ    float64
}

// RunTable7 evaluates CardNet-A against each component-replaced variant and
// reports γ = (ξ(replaced) − ξ(full)) / ξ(replaced) for MSE, MAPE, and mean
// q-error.
func RunTable7(specs []dataset.Spec, opts Options) []AblationResult {
	var out []AblationResult
	for _, spec := range specs {
		s := BuildSuite(spec, opts)
		b := s.Bundle
		actual := b.Actuals()
		full := s.Handle(NameCardNetA)
		fullRep := metrics.Evaluate(actual, b.Estimates(full))
		for comp, name := range AblationNames {
			h := s.Handle(name)
			if h == nil {
				continue // e.g. feature ablation on Hamming
			}
			rep := metrics.Evaluate(actual, b.Estimates(h))
			out = append(out, AblationResult{
				Dataset:   spec.Name,
				Component: comp,
				GammaMSE:  metrics.ImprovementRatio(rep.MSE, fullRep.MSE),
				GammaMAPE: metrics.ImprovementRatio(rep.MAPE, fullRep.MAPE),
				GammaQ:    metrics.ImprovementRatio(rep.MeanQError, fullRep.MeanQError),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dataset != out[j].Dataset {
			return out[i].Dataset < out[j].Dataset
		}
		return out[i].Component < out[j].Component
	})
	return out
}

// RenderTable7 prints the ablation ratios.
func RenderTable7(w io.Writer, res []AblationResult) {
	t := newTable("Table 7: component ablations (γ improvement of full CardNet-A over variant)",
		"Dataset", "Component", "γMSE", "γMAPE", "γq-error")
	for _, r := range res {
		t.addf("%s\t%s\t%.0f%%\t%.0f%%\t%.0f%%",
			r.Dataset, r.Component, r.GammaMSE*100, r.GammaMAPE*100, r.GammaQ*100)
	}
	t.render(w)
}

// DecoderSweepPoint is one (decoder count, accuracy) pair of Figure 6.
type DecoderSweepPoint struct {
	Dataset  string
	Decoders int
	MSE      float64
	MAPE     float64
}

// RunFig6 sweeps the number of decoders (τmax+1) for CardNet-A on the
// high-dimensional specs.
func RunFig6(specs []dataset.Spec, tauMaxes []int, opts Options) []DecoderSweepPoint {
	var out []DecoderSweepPoint
	for _, spec := range specs {
		for _, tm := range tauMaxes {
			o := opts
			o.TauMax = tm
			s := BuildSuite(spec, o)
			b := s.Bundle
			h := s.Handle(NameCardNetA)
			rep := metrics.Evaluate(b.Actuals(), b.Estimates(h))
			out = append(out, DecoderSweepPoint{
				Dataset:  spec.Name,
				Decoders: tm + 1,
				MSE:      rep.MSE,
				MAPE:     rep.MAPE,
			})
		}
	}
	return out
}

// RenderFig6 prints the decoder sweep.
func RenderFig6(w io.Writer, res []DecoderSweepPoint) {
	t := newTable("Figure 6: accuracy vs number of decoders (CardNet-A)",
		"Dataset", "Decoders", "MSE", "MAPE(%)")
	for _, r := range res {
		t.addf("%s\t%d\t%s\t%s", r.Dataset, r.Decoders, f2(r.MSE), f2(r.MAPE))
	}
	t.render(w)
}

// RenderFig7 prints the training-size sweep using the accuracy-result rows
// produced by RunFig7.
func RenderFig7(w io.Writer, res []AccuracyResult) {
	t := newTable("Figure 7: MSE vs training-set fraction", "Workload", "Model", "MSE")
	for _, r := range res {
		t.addf("%s\t%s\t%s", r.Dataset, r.Model, f2(r.Report.MSE))
	}
	t.render(w)
}

// RenderMonotonicity prints an auxiliary check: the share of test queries
// whose estimate sequence over increasing τ is monotone, per model. The
// paper guarantees 100% for CardNet/CardNet-A and the monotone baselines.
func RenderMonotonicity(w io.Writer, specs []dataset.Spec, names []string, opts Options) {
	if names == nil {
		names = AllModelNames
	}
	t := newTable("Monotonicity check (share of monotone test queries)",
		append([]string{"Model"}, specNames(specs)...)...)
	cells := map[string][]string{}
	for _, spec := range specs {
		s := BuildSuite(spec, opts)
		b := s.Bundle
		for _, name := range names {
			h := s.Handle(name)
			if h == nil {
				cells[name] = append(cells[name], "-")
				continue
			}
			mono := 0
			for qi := 0; qi < b.TestX.Rows; qi++ {
				var seq []float64
				for tau := 0; tau <= b.TauMax; tau++ {
					seq = append(seq, h.Estimate(TestPoint{Query: qi, Tau: tau, Theta: thetaFor(b, tau)}))
				}
				if metrics.IsMonotonic(seq) {
					mono++
				}
			}
			cells[name] = append(cells[name], fmt.Sprintf("%.0f%%", 100*float64(mono)/float64(maxI(b.TestX.Rows, 1))))
		}
	}
	for _, name := range names {
		t.add(append([]string{name}, cells[name]...)...)
	}
	t.render(w)
}

// thetaFor inverts the threshold transform approximately: the smallest grid
// θ mapping to at least τ (used only by the monotonicity check, where
// record-space models need a θ consistent with τ).
func thetaFor(b *Bundle, tau int) float64 {
	frac := float64(tau) / float64(maxI(b.TauMax, 1))
	return frac * b.Spec.ThetaMax
}

func specNames(specs []dataset.Spec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}
