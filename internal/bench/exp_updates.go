package bench

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"cardnet/internal/core"
	"cardnet/internal/dataset"
	"cardnet/internal/dist"
	"cardnet/internal/feature"
	"cardnet/internal/metrics"
	"cardnet/internal/simselect"
)

// UpdatePoint is one evaluation along the update stream (Figure 8).
type UpdatePoint struct {
	Op         int // operations applied so far
	IncLearn   float64
	Retrain    float64
	PlusSample float64
	IncSeconds float64 // incremental-learning time at this checkpoint
	RetSeconds float64
}

// RunFig8 streams batched inserts/deletes over a Hamming dataset and
// compares three strategies at checkpoints: IncLearn (incremental learning
// on CardNet-A from the current weights, Section 8), Retrain (from scratch),
// and +Sample (the stale model plus an exact count over the delta records,
// the best case of the paper's sampling correction). Reported values are
// test-set MSE against the updated dataset.
func RunFig8(spec dataset.Spec, nOps, batch, evalEvery int, opts Options) []UpdatePoint {
	if spec.Kind != dataset.HM {
		panic("bench: RunFig8 expects a Hamming spec (paper uses HM-ImageNet and EU-Glove300; the Hamming pipeline is the one exercised here)")
	}
	if opts.QueryFrac == 0 {
		opts = DefaultOptions()
	}
	// Generate the live dataset and the insert pool together so inserts
	// share the live clusters and actually shift cardinalities.
	bigSpec := spec
	bigSpec.N = spec.N + spec.N/2
	all := dataset.Generate(bigSpec)
	base := &dataset.Materialized{Spec: spec, Bits: all.Bits[:spec.N]}
	pool := &dataset.Materialized{Spec: spec, Bits: all.Bits[spec.N:]}

	maxTheta := int(spec.ThetaMax)
	tauMax := defaultTauMax(spec, opts)
	ext := feature.NewHammingExtractor(spec.Dim, maxTheta, tauMax)
	grid := dataset.ThresholdGrid(spec.ThetaMax, opts.GridPoints)

	// live holds the current dataset contents.
	live := append([]dist.BitVector(nil), base.Bits...)
	deleted := map[int]bool{}
	var inserted []dist.BitVector

	currentRecords := func() []dist.BitVector {
		out := make([]dist.BitVector, 0, len(live)+len(inserted))
		for i, r := range live {
			if !deleted[i] {
				out = append(out, r)
			}
		}
		return append(out, inserted...)
	}

	queryIdx := dataset.SampleUniform(len(live), opts.QueryFrac, opts.Seed)
	split := dataset.SplitWorkload(queryIdx, opts.Seed+1)
	pick := func(ids []int) []dist.BitVector {
		out := make([]dist.BitVector, len(ids))
		for i, id := range ids {
			out[i] = live[id]
		}
		return out
	}
	trainQ, validQ, testQ := pick(split.Train), pick(split.Valid), pick(split.Test)

	label := func(qs []dist.BitVector, recs []dist.BitVector) *core.TrainSet {
		ix := simselect.NewHammingIndex(recs)
		ts, err := core.BuildTrainSet[dist.BitVector](ext, qs, grid, func(q dist.BitVector, g []float64) []int {
			cum := ix.CountAtEach(q, maxTheta)
			out := make([]int, len(g))
			for i, theta := range g {
				out[i] = cum[int(theta)]
			}
			return out
		})
		if err != nil {
			panic(err)
		}
		return ts
	}

	cfg := cardNetConfig(opts, tauMax, true)
	inc := core.New(cfg, ext.Dim())
	train0 := label(trainQ, live)
	valid0 := label(validQ, live)
	res0 := inc.Train(train0, valid0)
	prevValid := res0.BestValidMSLE

	// The +Sample strategy keeps the original model frozen (deep copy via
	// the gob round trip).
	frozen := inc
	{
		var buf bytes.Buffer
		if err := inc.Save(&buf); err == nil {
			if m, err := core.Load(&buf); err == nil {
				frozen = m
			}
		}
	}

	stream := dataset.UpdateStream(len(live), len(pool.Bits), nOps, batch, opts.Seed+5)
	var out []UpdatePoint
	for opIdx, op := range stream {
		if op.Insert {
			for _, id := range op.IDs {
				inserted = append(inserted, pool.Bits[id])
			}
		} else {
			for _, id := range op.IDs {
				deleted[id] = true
			}
		}
		if (opIdx+1)%evalEvery != 0 && opIdx != len(stream)-1 {
			continue
		}

		recs := currentRecords()
		newTrain := label(trainQ, recs)
		newValid := label(validQ, recs)
		newTest := label(testQ, recs)

		// IncLearn.
		incStart := time.Now()
		incRes := inc.IncrementalTrain(newTrain, newValid, prevValid)
		incSecs := time.Since(incStart).Seconds()
		prevValid = incRes.ValidMSLE

		// Retrain from scratch.
		retStart := time.Now()
		retrained := core.New(cfg, ext.Dim())
		retrained.Train(newTrain, newValid)
		retSecs := time.Since(retStart).Seconds()

		// Evaluate all three on the updated labels (MSE over every (q, τ)).
		evalModel := func(estimate func(x []float64, tau int) float64) float64 {
			var actual, est []float64
			for q := 0; q < newTest.NumQueries(); q++ {
				x := newTest.X.Row(q)
				for tau := 0; tau <= newTest.TauTop; tau += 2 {
					actual = append(actual, newTest.Labels.At(q, tau))
					est = append(est, estimate(x, tau))
				}
			}
			return metrics.MSE(actual, est)
		}
		insIx := simselect.NewHammingIndex(inserted)
		delRecs := make([]dist.BitVector, 0, len(deleted))
		for id := range deleted {
			delRecs = append(delRecs, live[id])
		}
		delIx := simselect.NewHammingIndex(delRecs)

		out = append(out, UpdatePoint{
			Op:       opIdx + 1,
			IncLearn: evalModel(inc.EstimateEncoded),
			Retrain:  evalModel(retrained.EstimateEncoded),
			PlusSample: evalModel(func(x []float64, tau int) float64 {
				// Stale estimate plus delta corrections counted exactly over
				// the (small) insert/delete sets.
				q := bitsFromFloats(x)
				v := frozen.EstimateEncoded(x, tau) +
					float64(insIx.Count(q, float64(tau))) -
					float64(delIx.Count(q, float64(tau)))
				if v < 0 {
					return 0
				}
				return v
			}),
			IncSeconds: incSecs,
			RetSeconds: retSecs,
		})
	}
	return out
}

// RenderFig8 prints the update-stream checkpoints.
func RenderFig8(w io.Writer, spec string, res []UpdatePoint) {
	t := newTable(fmt.Sprintf("Figure 8: updates on %s (test MSE)", spec),
		"Ops", "IncLearn", "Retrain", "+Sample", "IncTime(s)", "RetrainTime(s)")
	for _, p := range res {
		t.addf("%d\t%s\t%s\t%s\t%.2f\t%.2f",
			p.Op, f2(p.IncLearn), f2(p.Retrain), f2(p.PlusSample), p.IncSeconds, p.RetSeconds)
	}
	t.render(w)
}

// bitsFromFloats rebuilds a BitVector from its 0/1 float encoding (the
// Hamming feature map is the identity).
func bitsFromFloats(x []float64) dist.BitVector {
	v := dist.NewBitVector(len(x))
	for i, f := range x {
		if f >= 0.5 {
			v.SetBit(i, true)
		}
	}
	return v
}
