package bench

import (
	"fmt"
	"math/rand"
	"time"

	"cardnet/internal/baselines"
	"cardnet/internal/core"
	"cardnet/internal/dataset"
	"cardnet/internal/dist"
	"cardnet/internal/feature"
	"cardnet/internal/simselect"
	"cardnet/internal/tensor"
)

// kindParts bundles everything a kind-specific builder supplies to the
// generic pipeline.
type kindParts[R any] struct {
	records []R
	ext     feature.Extractor[R]
	altEnc  func(r R) []float64 // replaced-feature-extraction encoding, nil to skip
	altDim  int
	counts  func(q R, grid []float64) []int
	count1  func(q R, theta float64) int
	distFn  func(a, b R) float64
	integer bool // integer-valued distance (test thresholds snap to ints)
}

// BuildEuclideanSuite prepares a suite over externally supplied vectors
// (used by the conjunctive-optimizer case study, whose attribute columns are
// built outside the spec registry).
func BuildEuclideanSuite(name string, vecs [][]float64, thetaMax float64, opts Options) *Suite {
	if opts.QueryFrac == 0 {
		opts = DefaultOptions()
	}
	spec := dataset.Spec{Name: name, Kind: dataset.EU, N: len(vecs), ThetaMax: thetaMax, Seed: opts.Seed}
	if len(vecs) > 0 {
		spec.Dim = len(vecs[0])
	}
	return buildFromParts(spec, opts, euclideanParts(spec, opts, vecs))
}

// BuildSuite prepares the workload and every model handle for one dataset.
func BuildSuite(spec dataset.Spec, opts Options) *Suite {
	if opts.QueryFrac == 0 {
		opts = DefaultOptions()
	}
	if opts.NOverride > 0 {
		spec.N = opts.NOverride
	}
	m := dataset.Generate(spec)
	switch spec.Kind {
	case dataset.HM:
		return buildFromParts(spec, opts, hammingParts(spec, opts, m.Bits))
	case dataset.ED:
		return buildFromParts(spec, opts, editParts(spec, opts, m.Strings))
	case dataset.JC:
		return buildFromParts(spec, opts, jaccardParts(spec, opts, m.Sets))
	default:
		return buildFromParts(spec, opts, euclideanParts(spec, opts, m.Vecs))
	}
}

func defaultTauMax(spec dataset.Spec, opts Options) int {
	if opts.TauMax > 0 {
		return opts.TauMax
	}
	switch spec.Kind {
	case dataset.HM, dataset.ED:
		return int(spec.ThetaMax)
	default:
		return 16
	}
}

func hammingParts(spec dataset.Spec, opts Options, recs []dist.BitVector) kindParts[dist.BitVector] {
	tauMax := defaultTauMax(spec, opts)
	ix := simselect.NewHammingIndex(recs)
	maxTheta := int(spec.ThetaMax)
	return kindParts[dist.BitVector]{
		records: recs,
		ext:     feature.NewHammingExtractor(spec.Dim, maxTheta, tauMax),
		counts: func(q dist.BitVector, grid []float64) []int {
			cum := ix.CountAtEach(q, maxTheta)
			out := make([]int, len(grid))
			for i, theta := range grid {
				out[i] = cum[int(theta)]
			}
			return out
		},
		count1:  func(q dist.BitVector, theta float64) int { return ix.Count(q, theta) },
		distFn:  func(a, b dist.BitVector) float64 { return float64(dist.Hamming(a, b)) },
		integer: true,
	}
}

func editParts(spec dataset.Spec, opts Options, recs []string) kindParts[string] {
	tauMax := defaultTauMax(spec, opts)
	ix := simselect.NewEditIndex(recs)
	maxTheta := int(spec.ThetaMax)
	lmax := dataset.MaxStringLen(recs)
	alphabet := "abcdefghijklmnopqrstuvwxyz"
	// Alt encoding: padded normalized char codes (the paper replaces the
	// bounding embedding with a learned string representation; a dense
	// positional code is the closest non-recurrent stand-in).
	altDim := lmax
	return kindParts[string]{
		records: recs,
		ext:     feature.NewEditExtractor(alphabet, lmax, maxTheta, tauMax),
		altDim:  altDim,
		altEnc: func(s string) []float64 {
			out := make([]float64, altDim)
			for i := 0; i < len(s) && i < altDim; i++ {
				out[i] = float64(s[i]-'a'+1) / 26
			}
			return out
		},
		counts: func(q string, grid []float64) []int {
			cum := ix.CountAtEach(q, maxTheta)
			out := make([]int, len(grid))
			for i, theta := range grid {
				out[i] = cum[int(theta)]
			}
			return out
		},
		count1:  func(q string, theta float64) int { return ix.Count(q, theta) },
		distFn:  func(a, b string) float64 { return float64(dist.Edit(a, b)) },
		integer: true,
	}
}

func jaccardParts(spec dataset.Spec, opts Options, recs []dist.IntSet) kindParts[dist.IntSet] {
	tauMax := defaultTauMax(spec, opts)
	ix := simselect.NewJaccardIndex(recs, spec.ThetaMax)
	// Alt encoding: capped multi-hot over the token universe.
	const altCap = 512
	return kindParts[dist.IntSet]{
		records: recs,
		ext:     feature.NewJaccardExtractor(64, 2, spec.ThetaMax, tauMax, opts.Seed),
		altDim:  altCap,
		altEnc: func(s dist.IntSet) []float64 {
			out := make([]float64, altCap)
			for _, t := range s {
				out[t%altCap] = 1
			}
			return out
		},
		counts:  func(q dist.IntSet, grid []float64) []int { return ix.CountAtEach(q, grid) },
		count1:  func(q dist.IntSet, theta float64) int { return ix.Count(q, theta) },
		distFn:  dist.Jaccard,
		integer: false,
	}
}

func euclideanParts(spec dataset.Spec, opts Options, recs [][]float64) kindParts[[]float64] {
	tauMax := defaultTauMax(spec, opts)
	ix := simselect.NewEuclideanIndex(recs)
	return kindParts[[]float64]{
		records: recs,
		ext:     feature.NewEuclideanExtractor(48, spec.Dim, 7, spec.ThetaMax/2, spec.ThetaMax, tauMax, opts.Seed),
		altDim:  spec.Dim,
		altEnc: func(v []float64) []float64 {
			// Unit-sphere coordinates mapped into [0,1] so the VAE's BCE
			// reconstruction stays well defined.
			out := make([]float64, len(v))
			for i, x := range v {
				out[i] = (x + 1) / 2
			}
			return out
		},
		counts:  func(q []float64, grid []float64) []int { return ix.CountAtEach(q, grid) },
		count1:  func(q []float64, theta float64) int { return ix.Count(q, theta) },
		distFn:  dist.Euclidean,
		integer: false,
	}
}

// buildFromParts runs the generic pipeline: sample the query workload,
// split 80:10:10, label against the grid, encode, and construct handles.
func buildFromParts[R any](spec dataset.Spec, opts Options, kp kindParts[R]) *Suite {
	rng := rand.New(rand.NewSource(opts.Seed))
	n := len(kp.records)

	var queryIdx []int
	switch opts.Policy {
	case MultipleUniform:
		queryIdx = dataset.SampleMultipleUniform(n, opts.QueryFrac, 5, opts.Seed)
	case SingleSkewed:
		_, assign := dataset.KMedoids(n, 8, func(i, j int) float64 {
			return kp.distFn(kp.records[i], kp.records[j])
		}, 4, opts.Seed)
		queryIdx = dataset.SampleSkewed(assign, 8, int(opts.QueryFrac*float64(n)), opts.Seed)
	default:
		queryIdx = dataset.SampleUniform(n, opts.QueryFrac, opts.Seed)
	}
	split := dataset.SplitWorkload(queryIdx, opts.Seed+1)

	grid := dataset.ThresholdGrid(spec.ThetaMax, opts.GridPoints)
	pick := func(ids []int) []R {
		out := make([]R, len(ids))
		for i, id := range ids {
			out[i] = kp.records[id]
		}
		return out
	}
	trainQ, validQ, testQ := pick(split.Train), pick(split.Valid), pick(split.Test)
	if opts.TestMultiUniform {
		// Section 9.12: test on a fresh workload of multiple uniform samples
		// of the same size as the split's test share.
		idx := dataset.SampleMultipleUniform(n, opts.QueryFrac/10, 5, opts.Seed+9)
		testQ = pick(idx)
	}

	labelStart := time.Now()
	train, err := core.BuildTrainSet(kp.ext, trainQ, grid, kp.counts)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	valid, err := core.BuildTrainSet(kp.ext, validQ, grid, kp.counts)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}

	b := &Bundle{
		Spec:         spec,
		TauMax:       kp.ext.TauMax(),
		Grid:         grid,
		Train:        train,
		Valid:        valid,
		NumRecs:      n,
		EncodeRecord: func(rec any) []float64 { return kp.ext.Encode(rec.(R)) },
		ThresholdOf:  kp.ext.Threshold,
	}

	// Test points are rebound through holder so Fig 10 can swap in
	// out-of-dataset queries without rebuilding the trained models.
	holder := &testQ
	b.TrainRecords = trainQ
	b.ValidRecords = validQ
	bindTest := func(qs []R) {
		*holder = qs
		b.TestRecords = qs
		b.TestX = tensor.NewMatrix(len(qs), kp.ext.Dim())
		b.Points = b.Points[:0]
		for qi, q := range qs {
			copy(b.TestX.Row(qi), kp.ext.Encode(q))
			for _, theta := range testThetas(rng, spec.ThetaMax, opts.TestPerQuery, kp.integer) {
				b.Points = append(b.Points, TestPoint{
					Query:  qi,
					Theta:  theta,
					Tau:    kp.ext.Threshold(theta),
					Actual: float64(kp.count1(q, theta)),
				})
			}
		}
		if kp.altEnc != nil {
			b.AltTestX = tensor.NewMatrix(len(qs), kp.altDim)
			for qi, q := range qs {
				copy(b.AltTestX.Row(qi), kp.altEnc(q))
			}
		}
	}
	bindTest(testQ)
	b.labelTime = time.Since(labelStart)

	// Replaced-feature-extraction variant (Table 7).
	if kp.altEnc != nil {
		altExt := &altExtractor[R]{inner: kp.ext, enc: kp.altEnc, dim: kp.altDim}
		b.AltTrain, _ = core.BuildTrainSet[R](altExt, trainQ, grid, kp.counts)
		b.AltValid, _ = core.BuildTrainSet[R](altExt, validQ, grid, kp.counts)
	}

	// Record-space models over the (rebindable) test queries.
	b.simSelect = func(qi int, theta float64) float64 {
		return float64(kp.count1((*holder)[qi], theta))
	}
	ratio := opts.SampleRatio
	if ratio == 0 {
		ratio = 0.05
	}
	us := baselines.NewUniformSample(kp.records, ratio, kp.distFn, opts.Seed+2)
	kdeSample := 100
	if kdeSample > n {
		kdeSample = n
	}
	kde := baselines.NewKDE(kp.records, kdeSample, kp.distFn, opts.Seed+3)
	b.recordModels = []recordModel{
		buildDBSE(spec, kp, holder, opts),
		{name: "DB-US", size: us.SizeBytes(),
			estimate: func(qi int, theta float64) float64 { return us.Estimate((*holder)[qi], theta) }},
		{name: "TL-KDE", size: kde.SizeBytes(),
			estimate: func(qi int, theta float64) float64 { return kde.Estimate((*holder)[qi], theta) }},
	}

	// Out-of-dataset query swap (Section 9.10): k-medoids on a subsample,
	// then far random queries of the dataset's type.
	b.swapOOD = func(candidates, keep int, seed int64) {
		m := materializedFrom(spec, kp.records)
		sub := n
		if sub > 300 {
			sub = 300
		}
		medoids, _ := dataset.KMedoids(sub, 8, func(i, j int) float64 {
			return kp.distFn(kp.records[i], kp.records[j])
		}, 3, seed)
		ood := dataset.OutOfDataset(m, medoids, candidates, keep, seed)
		bindTest(recordsOf[R](ood))
	}

	return &Suite{Bundle: b, Handles: buildHandles(b, opts)}
}

// materializedFrom wraps typed records back into a dataset.Materialized for
// the out-of-dataset generator.
func materializedFrom[R any](spec dataset.Spec, records []R) *dataset.Materialized {
	m := &dataset.Materialized{Spec: spec}
	switch r := any(records).(type) {
	case []dist.BitVector:
		m.Bits = r
	case []string:
		m.Strings = r
	case []dist.IntSet:
		m.Sets = r
	case [][]float64:
		m.Vecs = r
	}
	return m
}

// recordsOf extracts the typed record slice from a Materialized.
func recordsOf[R any](m *dataset.Materialized) []R {
	switch any([]R(nil)).(type) {
	case []dist.BitVector:
		return any(m.Bits).([]R)
	case []string:
		return any(m.Strings).([]R)
	case []dist.IntSet:
		return any(m.Sets).([]R)
	default:
		return any(m.Vecs).([]R)
	}
}

// buildDBSE instantiates the per-kind specialized estimator and binds it to
// the (rebindable) test queries.
func buildDBSE[R any](spec dataset.Spec, kp kindParts[R], holder *[]R, opts Options) recordModel {
	q := func(qi int) R { return (*holder)[qi] }
	switch recs := any(kp.records).(type) {
	case []dist.BitVector:
		h := baselines.NewHammingHistogram(recs, 8)
		return recordModel{name: "DB-SE", size: h.SizeBytes(),
			estimate: func(qi int, theta float64) float64 { return h.Estimate(any(q(qi)).(dist.BitVector), theta) }}
	case []string:
		ix := baselines.NewEditGramIndex(recs)
		return recordModel{name: "DB-SE", size: ix.SizeBytes(),
			estimate: func(qi int, theta float64) float64 { return ix.Estimate(any(q(qi)).(string), theta) }}
	case []dist.IntSet:
		l := baselines.NewJaccardLattice(recs)
		return recordModel{name: "DB-SE", size: l.SizeBytes(),
			estimate: func(qi int, theta float64) float64 { return l.Estimate(any(q(qi)).(dist.IntSet), theta) }}
	case [][]float64:
		s := baselines.NewEuclideanLSHSampler(recs, spec.ThetaMax, opts.Seed+4)
		return recordModel{name: "DB-SE", size: s.SizeBytes(),
			estimate: func(qi int, theta float64) float64 { return s.Estimate(any(q(qi)).([]float64), theta) }}
	}
	return recordModel{name: "DB-SE"}
}

// altExtractor swaps the Encode/Dim of an extractor while keeping its
// threshold transformation, for the feature-extraction ablation.
type altExtractor[R any] struct {
	inner feature.Extractor[R]
	enc   func(R) []float64
	dim   int
}

func (a *altExtractor[R]) Dim() int                    { return a.dim }
func (a *altExtractor[R]) TauMax() int                 { return a.inner.TauMax() }
func (a *altExtractor[R]) ThetaMax() float64           { return a.inner.ThetaMax() }
func (a *altExtractor[R]) Encode(r R) []float64        { return a.enc(r) }
func (a *altExtractor[R]) Threshold(theta float64) int { return a.inner.Threshold(theta) }
