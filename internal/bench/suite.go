package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"cardnet/internal/core"
	"cardnet/internal/dataset"
	"cardnet/internal/obs"
	"cardnet/internal/tensor"
)

// Harness-level metrics on the shared obs registry: per-model fit wall time
// (histogram + per-model gauge) and evaluated test points. Together with
// internal/core's estimate-path metrics they make every experiment run
// reportable through one snapshot.
var (
	fitTime    = obs.Default.Histogram("bench.fit_seconds", obs.TimeBuckets())
	fitCount   = obs.Default.Counter("bench.fits")
	evalPoints = obs.Default.Counter("bench.eval_points")
)

// Options scales a workload build. The zero value plus Quick=true gives the
// test-sized profile.
type Options struct {
	NOverride    int     // records (0 = spec default)
	QueryFrac    float64 // workload fraction of the dataset (paper: 0.10)
	GridPoints   int     // threshold-grid resolution for labels
	TestPerQuery int     // random test thresholds per test query
	TauMax       int     // decoder budget (0 = per-kind default)
	Policy       Policy  // training workload sampling policy (Section 9.12)
	// TestMultiUniform tests on a fresh multiple-uniform-sample workload
	// regardless of Policy (Tables 14–16).
	TestMultiUniform bool
	Quick            bool // small model configs for fast runs
	// EpochOverride caps every model's training epochs (0 = profile
	// default); unit tests and testing.B benchmarks use it to stay fast.
	EpochOverride int
	Seed          int64
	SampleRatio   float64 // DB-US sample ratio (default 0.05)
}

// Policy selects the workload-construction policy of Section 9.12.
type Policy int

// Workload sampling policies.
const (
	SingleUniform Policy = iota
	MultipleUniform
	SingleSkewed
)

// DefaultOptions mirrors Section 6.1 at reduced scale.
func DefaultOptions() Options {
	return Options{QueryFrac: 0.10, GridPoints: 20, TestPerQuery: 8, Quick: true, Seed: 7, SampleRatio: 0.05}
}

// TestPoint is one evaluated (query, threshold) pair.
type TestPoint struct {
	Query  int // row into the bundle's test matrices
	Theta  float64
	Tau    int
	Actual float64
}

// recordModel is a type-erased record-space estimator (DB-SE, DB-US,
// TL-KDE, and the SimSelect oracle).
type recordModel struct {
	name     string
	estimate func(qi int, theta float64) float64
	size     int
}

// Bundle is one fully prepared workload: encoded train/valid sets, encoded
// test queries, labelled test points, and the record-space models that need
// access to original records.
type Bundle struct {
	Spec    dataset.Spec
	TauMax  int
	Grid    []float64
	Train   *core.TrainSet
	Valid   *core.TrainSet
	TestX   *tensor.Matrix
	Points  []TestPoint
	NumRecs int

	// AltTrain/AltValid/AltTestX hold the replaced-feature-extraction
	// variant for the Table 7 ablation (nil for Hamming, whose features are
	// already the identity).
	AltTrain, AltValid *core.TrainSet
	AltTestX           *tensor.Matrix

	// Raw record slices (typed per kind, e.g. []string for ED), for models
	// that bypass feature extraction entirely (DL-BiLSTM). TrainRecords and
	// ValidRecords parallel the Train/Valid rows; TestRecords parallels
	// TestX rows and is refreshed by UseOutOfDatasetQueries.
	TrainRecords, ValidRecords, TestRecords any

	// EncodeRecord encodes a record of the bundle's concrete kind (e.g. a
	// []float64 for Euclidean bundles) into the model feature space;
	// ThresholdOf is the bundle's h_thr. They let the optimizer case studies
	// estimate on fresh queries outside the prepared test set.
	EncodeRecord func(rec any) []float64
	ThresholdOf  func(theta float64) int

	recordModels []recordModel
	simSelect    func(qi int, theta float64) float64
	labelTime    time.Duration
	swapOOD      func(candidates, keep int, seed int64)
}

// UseOutOfDatasetQueries replaces the test workload with Section 9.10's far
// out-of-dataset queries: `keep` queries selected from `candidates` random
// ones by largest sum of squared distances to k-medoid centroids. Trained
// models are untouched; only the evaluation points change.
func (b *Bundle) UseOutOfDatasetQueries(candidates, keep int, seed int64) {
	b.swapOOD(candidates, keep, seed)
}

// Handle wraps one model behind a uniform fit/estimate interface.
type Handle struct {
	Name      string
	Monotone  bool
	TrainTime time.Duration

	fit      func()
	estimate func(tp TestPoint) float64
	size     func() int
	fitted   bool
}

// Fit trains the model once; later calls are no-ops.
func (h *Handle) Fit() {
	if h.fitted {
		return
	}
	start := time.Now()
	if h.fit != nil {
		h.fit()
	}
	h.TrainTime = time.Since(start)
	h.fitted = true
	fitCount.Inc()
	fitTime.ObserveDuration(h.TrainTime)
	obs.Default.Gauge("bench.fit_seconds." + h.Name).Set(h.TrainTime.Seconds())
}

// Estimate evaluates the model at a test point (Fit first if needed).
func (h *Handle) Estimate(tp TestPoint) float64 {
	h.Fit()
	evalPoints.Inc()
	v := h.estimate(tp)
	if v < 0 {
		return 0
	}
	return v
}

// WriteObsSnapshot dumps the shared obs registry (training, estimation, and
// harness metrics accumulated so far) as indented JSON — experiment results
// carry their telemetry alongside the rendered tables.
func WriteObsSnapshot(w io.Writer) error {
	return obs.Default.WriteJSON(w)
}

// SizeBytes reports the model size after fitting.
func (h *Handle) SizeBytes() int {
	h.Fit()
	if h.size == nil {
		return 0
	}
	return h.size()
}

// Suite couples a bundle with all model handles.
type Suite struct {
	Bundle  *Bundle
	Handles []*Handle
}

// Handle returns the named handle or nil.
func (s *Suite) Handle(name string) *Handle {
	for _, h := range s.Handles {
		if h.Name == name {
			return h
		}
	}
	return nil
}

// Actuals extracts the ground-truth cardinalities of the bundle's points.
func (b *Bundle) Actuals() []float64 {
	out := make([]float64, len(b.Points))
	for i, p := range b.Points {
		out[i] = p.Actual
	}
	return out
}

// Estimates evaluates a handle over all points.
func (b *Bundle) Estimates(h *Handle) []float64 {
	out := make([]float64, len(b.Points))
	for i, p := range b.Points {
		out[i] = h.Estimate(p)
	}
	return out
}

// cardNetConfig returns the CardNet hyperparameters for this options
// profile.
func cardNetConfig(opts Options, tauMax int, accel bool) core.Config {
	cfg := core.DefaultConfig(tauMax)
	cfg.Accel = accel
	cfg.Seed = opts.Seed
	if opts.Quick {
		cfg.VAEHidden = []int{32}
		cfg.VAELatent = 8
		cfg.VAEEpochs = 10
		cfg.PhiHidden = []int{96, 64}
		cfg.ZDim = 24
		cfg.Epochs = 60
		cfg.LR = 2e-3
		cfg.Patience = 20
	}
	if opts.EpochOverride > 0 {
		cfg.Epochs = opts.EpochOverride
		if cfg.VAEEpochs > opts.EpochOverride {
			cfg.VAEEpochs = opts.EpochOverride
		}
	}
	return cfg
}

// testThetas draws k uniform thresholds in [0, θmax] (Section 6.1 tests on
// thresholds not restricted to the training grid) and always includes θmax.
func testThetas(rng *rand.Rand, thetaMax float64, k int, integerValued bool) []float64 {
	out := make([]float64, 0, k)
	for len(out) < k-1 {
		t := rng.Float64() * thetaMax
		if integerValued {
			t = float64(int(t))
		}
		out = append(out, t)
	}
	out = append(out, thetaMax)
	return out
}

// String renders options compactly for logs.
func (o Options) String() string {
	return fmt.Sprintf("n=%d frac=%.2f grid=%d quick=%v policy=%d", o.NOverride, o.QueryFrac, o.GridPoints, o.Quick, o.Policy)
}
