// Package bench is the experiment harness: it prepares workloads (datasets,
// feature extraction, exact labels, splits), trains every model of Section
// 9.1.2 behind uniform handles, and regenerates each table and figure of the
// paper's evaluation as text output. cmd/cardbench and the repository-root
// benchmarks drive it.
//
// The harness composes the rest of the repository: internal/dataset
// generates the workload, internal/feature encodes (x, θ) pairs,
// internal/simselect computes exact labels, internal/core and
// internal/baselines supply the estimators, and internal/metrics scores
// them (MSE, MAPE, mean q-error — the paper's Section 9.1.4 measures).
// Workload construction is wrapped in a Bundle so the cardnet command's
// train/estimate/update/bench modes and the table reproductions all see the
// same splits.
package bench
