package bench

import (
	"math"
	"math/rand"

	"cardnet/internal/baselines"
	"cardnet/internal/core"
	"cardnet/internal/nn"
	"cardnet/internal/tensor"
)

// Model-handle names used across experiments.
const (
	NameSimSelect = "SimSelect"
	NameCardNet   = "CardNet"
	NameCardNetA  = "CardNet-A"
)

// AblationNames lists the Table 7 variant handles (component replaced →
// handle name).
var AblationNames = map[string]string{
	"FeatureExtraction":     "CardNet-A-feat",
	"IncrementalPrediction": "CardNet-A-inc",
	"VAE":                   "CardNet-A-vae",
	"DynamicTraining":       "CardNet-A-dyn",
}

// AllModelNames is the Table 3–6 roster in paper order.
var AllModelNames = []string{
	"DB-SE", "DB-US", "TL-XGB", "TL-LGBM", "TL-KDE",
	"DL-DLN", "DL-MoE", "DL-RMI", "DL-DNN", "DL-DNNst",
	NameCardNet, NameCardNetA,
}

// buildHandles wires every model to the bundle.
func buildHandles(b *Bundle, opts Options) []*Handle {
	var hs []*Handle

	// SimSelect: the exact algorithm as a (slow) "estimator" for Table 6.
	hs = append(hs, &Handle{Name: NameSimSelect, Monotone: true,
		estimate: func(tp TestPoint) float64 { return b.simSelect(tp.Query, tp.Theta) },
		size:     func() int { return 0 },
	})

	// Record-space models (already fitted during the bundle build).
	for _, rm := range b.recordModels {
		rm := rm
		hs = append(hs, &Handle{Name: rm.name, Monotone: true,
			estimate: func(tp TestPoint) float64 { return rm.estimate(tp.Query, tp.Theta) },
			size:     func() int { return rm.size },
		})
	}

	// Vector models on the encoded features.
	fast := fitProfile(opts)
	vms := []baselines.VectorModel{
		baselines.NewXGB(b.TauMax),
		baselines.NewLGBM(b.TauMax),
		withFit(baselines.NewDLN(b.TauMax), fast),
		withFit(baselines.NewMoE(b.TauMax), fast),
		withFit(baselines.NewRMI(b.TauMax), fast),
		withFit(baselines.NewDNN(b.TauMax), fast),
		withFit(baselines.NewDNNPerTau(b.TauMax), fast),
	}
	monotone := map[string]bool{"TL-XGB": true, "TL-LGBM": true, "DL-DLN": true}
	for _, vm := range vms {
		vm := vm
		hs = append(hs, &Handle{Name: vm.Name(), Monotone: monotone[vm.Name()],
			fit:      func() { vm.Fit(b.Train, b.Valid) },
			estimate: func(tp TestPoint) float64 { return vm.Estimate(b.TestX.Row(tp.Query), tp.Tau) },
			size:     func() int { return vm.SizeBytes() },
		})
	}

	// CardNet and CardNet-A.
	for _, accel := range []bool{false, true} {
		name := NameCardNet
		if accel {
			name = NameCardNetA
		}
		cfg := cardNetConfig(opts, b.TauMax, accel)
		m := core.New(cfg, b.Train.X.Cols)
		hs = append(hs, &Handle{Name: name, Monotone: true,
			fit:      func() { m.Train(b.Train, b.Valid) },
			estimate: func(tp TestPoint) float64 { return m.EstimateEncoded(b.TestX.Row(tp.Query), tp.Tau) },
			size:     func() int { return m.SizeBytes() },
		})
	}

	// DL-BiLSTM: edit-distance datasets only (the paper's recurrent
	// feature-extraction variant).
	if trainStrs, ok := b.TrainRecords.([]string); ok {
		bl := baselines.NewBiLSTM(b.TauMax)
		bl.Fit_.Epochs = fitProfile(opts)
		hs = append(hs, &Handle{Name: "DL-BiLSTM", Monotone: true,
			fit: func() { bl.FitStrings(trainStrs, b.Train.Labels, b.Train.TauTop) },
			estimate: func(tp TestPoint) float64 {
				return bl.EstimateString(b.TestRecords.([]string)[tp.Query], tp.Tau)
			},
			size: func() int { return bl.SizeBytes() },
		})
	}

	hs = append(hs, ablationHandles(b, opts)...)
	return hs
}

// ablationHandles builds the Table 7 variants of CardNet-A: each replaces
// one component with the paper's alternative.
func ablationHandles(b *Bundle, opts Options) []*Handle {
	var hs []*Handle

	// Feature extraction replaced by the dense per-kind encoding (nil for
	// Hamming, where features are already the raw vectors).
	if b.AltTrain != nil {
		cfg := cardNetConfig(opts, b.TauMax, true)
		m := core.New(cfg, b.AltTrain.X.Cols)
		hs = append(hs, &Handle{Name: AblationNames["FeatureExtraction"], Monotone: true,
			fit:      func() { m.Train(b.AltTrain, b.AltValid) },
			estimate: func(tp TestPoint) float64 { return m.EstimateEncoded(b.AltTestX.Row(tp.Query), tp.Tau) },
			size:     func() int { return m.SizeBytes() },
		})
	}

	// Incremental prediction replaced: one decoder on [x′; e_τ] predicting
	// the total cardinality directly (a VAE-augmented DNN).
	dm := newDirectModel(b, opts)
	hs = append(hs, &Handle{Name: AblationNames["IncrementalPrediction"], Monotone: false,
		fit:      func() { dm.fit(b) },
		estimate: func(tp TestPoint) float64 { return dm.estimate(b.TestX.Row(tp.Query), tp.Tau) },
		size:     func() int { return dm.size() },
	})

	// VAE replaced by direct concatenation of the binary vector.
	{
		cfg := cardNetConfig(opts, b.TauMax, true)
		cfg.VAELatent = 0
		cfg.Lambda = 0
		m := core.New(cfg, b.Train.X.Cols)
		hs = append(hs, &Handle{Name: AblationNames["VAE"], Monotone: true,
			fit:      func() { m.Train(b.Train, b.Valid) },
			estimate: func(tp TestPoint) float64 { return m.EstimateEncoded(b.TestX.Row(tp.Query), tp.Tau) },
			size:     func() int { return m.SizeBytes() },
		})
	}

	// Dynamic training replaced by plain MSLE.
	{
		cfg := cardNetConfig(opts, b.TauMax, true)
		cfg.LambdaDelta = 0
		m := core.New(cfg, b.Train.X.Cols)
		hs = append(hs, &Handle{Name: AblationNames["DynamicTraining"], Monotone: true,
			fit:      func() { m.Train(b.Train, b.Valid) },
			estimate: func(tp TestPoint) float64 { return m.EstimateEncoded(b.TestX.Row(tp.Query), tp.Tau) },
			size:     func() int { return m.SizeBytes() },
		})
	}
	return hs
}

// directModel is the incremental-prediction ablation: VAE pretraining plus a
// single FNN from [x; E[z]; τ/τmax] to the total cardinality.
type directModel struct {
	tauMax int
	cfg    core.Config
	vae    *nn.VAE
	mlp    *nn.Sequential
}

func newDirectModel(b *Bundle, opts Options) *directModel {
	return &directModel{tauMax: b.TauMax, cfg: cardNetConfig(opts, b.TauMax, false)}
}

func (d *directModel) fit(b *Bundle) {
	rng := rand.New(rand.NewSource(d.cfg.Seed))
	d.vae = nn.NewVAE(rng, b.Train.X.Cols, d.cfg.VAEHidden, d.cfg.VAELatent)
	d.vae.Pretrain(b.Train.X, d.cfg.VAEEpochs, d.cfg.Batch, d.cfg.LR, rng)

	inDim := b.Train.X.Cols + d.cfg.VAELatent + 1
	dims := append([]int{inDim}, d.cfg.PhiHidden...)
	dims = append(dims, 1)
	d.mlp = nn.NewMLP(rng, dims, nn.ReLU, nn.Identity)

	latent := d.vae.Mean(b.Train.X)
	var x [][]float64
	var y []float64
	for q := 0; q < b.Train.NumQueries(); q++ {
		for tau := 0; tau <= b.Train.TauTop; tau++ {
			row := make([]float64, inDim)
			copy(row, b.Train.X.Row(q))
			copy(row[b.Train.X.Cols:], latent.Row(q))
			row[inDim-1] = float64(tau) / float64(maxI(b.TauMax, 1))
			x = append(x, row)
			y = append(y, logCount(b.Train.Labels.At(q, tau)))
		}
	}
	fitMLP(d.mlp, x, y, d.cfg.Epochs, d.cfg.Batch, d.cfg.LR, rng)
}

func (d *directModel) estimate(x []float64, tau int) float64 {
	if d.mlp == nil {
		return 0
	}
	xm := &tensor.Matrix{Rows: 1, Cols: len(x), Data: x}
	latent := d.vae.Mean(xm)
	row := make([]float64, len(x)+d.cfg.VAELatent+1)
	copy(row, x)
	copy(row[len(x):], latent.Row(0))
	row[len(row)-1] = float64(tau) / float64(maxI(d.tauMax, 1))
	rm := &tensor.Matrix{Rows: 1, Cols: len(row), Data: row}
	return expCount(d.mlp.Forward(rm, false).Data[0])
}

func (d *directModel) size() int {
	if d.mlp == nil {
		return 0
	}
	return nn.ParamBytes(d.mlp.Params()) + nn.ParamBytes(d.vae.Params())
}

// fitMLP trains an MLP on log targets with MSE (shared by ablations).
func fitMLP(mlp *nn.Sequential, x [][]float64, ylog []float64, epochs, batch int, lr float64, rng *rand.Rand) {
	opt := nn.NewAdam(mlp.Params(), lr)
	perm := make([]int, len(x))
	for i := range perm {
		perm[i] = i
	}
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for start := 0; start < len(perm); start += batch {
			end := start + batch
			if end > len(perm) {
				end = len(perm)
			}
			rows := perm[start:end]
			xb := tensor.NewMatrix(len(rows), len(x[0]))
			yb := make([]float64, len(rows))
			for i, r := range rows {
				copy(xb.Row(i), x[r])
				yb[i] = ylog[r]
			}
			out := mlp.Forward(xb, true)
			grad := tensor.NewMatrix(out.Rows, 1)
			for i := range yb {
				grad.Data[i] = nn.MSEGrad(out.Data[i], yb[i], len(yb))
			}
			mlp.Backward(grad)
			nn.ClipGradNorm(mlp.Params(), 5)
			opt.Step()
		}
	}
}

// fitProfile returns the baseline fit profile for the options.
func fitProfile(opts Options) int {
	if opts.EpochOverride > 0 {
		return opts.EpochOverride
	}
	if opts.Quick {
		return 24
	}
	return 40
}

// withFit overrides a baseline's epoch budget where the concrete type
// supports it.
func withFit(vm baselines.VectorModel, epochs int) baselines.VectorModel {
	switch m := vm.(type) {
	case *baselines.DNN:
		m.Fit_.Epochs = epochs
	case *baselines.DNNPerTau:
		m.Fit_.Epochs = epochs
	case *baselines.MoE:
		m.Fit_.Epochs = epochs
	case *baselines.RMI:
		m.Fit_.Epochs = epochs
	case *baselines.DLN:
		m.Fit_.Epochs = epochs * 2
	}
	return vm
}

func logCount(v float64) float64 {
	if v < 0 {
		v = 0
	}
	return math.Log1p(v)
}

func expCount(v float64) float64 {
	c := math.Expm1(v)
	if c < 0 || math.IsNaN(c) {
		return 0
	}
	return c
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
