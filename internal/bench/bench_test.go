package bench

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"cardnet/internal/dataset"
)

// tinyOpts keeps harness tests fast.
func tinyOpts() Options {
	return Options{NOverride: 300, QueryFrac: 0.15, GridPoints: 8, TestPerQuery: 4,
		Quick: true, EpochOverride: 8, Seed: 3, SampleRatio: 0.1}
}

// tinySpec scales a default spec down.
func tinySpec(name string) dataset.Spec {
	s := dataset.DefaultsByName()[name]
	s.N = 300
	return s
}

func TestBuildSuiteAllKinds(t *testing.T) {
	for _, name := range []string{"HM-ImageNet", "ED-AMiner", "JC-BMS", "EU-Glove300"} {
		spec := tinySpec(name)
		s := BuildSuite(spec, tinyOpts())
		b := s.Bundle
		if b.Train.NumQueries() == 0 || b.Valid.NumQueries() == 0 || len(b.Points) == 0 {
			t.Fatalf("%s: empty workload", name)
		}
		if len(s.Handles) < 12 {
			t.Fatalf("%s: only %d handles", name, len(s.Handles))
		}
		// Ground truth sanity: actuals are non-negative and the θmax points
		// have the largest counts per query.
		for _, p := range b.Points {
			if p.Actual < 0 {
				t.Fatalf("%s: negative actual", name)
			}
			if p.Tau < 0 || p.Tau > b.TauMax {
				t.Fatalf("%s: τ out of range: %d", name, p.Tau)
			}
		}
		// SimSelect handle must be exact.
		h := s.Handle(NameSimSelect)
		for _, p := range b.Points[:5] {
			if got := h.Estimate(p); got != p.Actual {
				t.Fatalf("%s: SimSelect %v want %v", name, got, p.Actual)
			}
		}
	}
}

func TestRunAccuracySubset(t *testing.T) {
	specs := []dataset.Spec{tinySpec("HM-ImageNet")}
	names := []string{NameSimSelect, "DB-US", "TL-XGB", NameCardNetA}
	res := RunAccuracy(specs, names, tinyOpts())
	if len(res) != len(names) {
		t.Fatalf("got %d results", len(res))
	}
	byName := map[string]AccuracyResult{}
	for _, r := range res {
		byName[r.Model] = r
		if math.IsNaN(r.Report.MSE) || r.Report.MeanQError < 1 {
			t.Fatalf("%s: bad report %+v", r.Model, r.Report)
		}
	}
	// The exact algorithm has zero error.
	if byName[NameSimSelect].Report.MSE != 0 {
		t.Fatal("SimSelect must be exact")
	}
	// CardNet-A should beat uniform sampling on clustered data.
	if byName[NameCardNetA].Report.MeanQError > byName["DB-US"].Report.MeanQError*2 {
		t.Fatalf("CardNet-A q-error %.2f far worse than DB-US %.2f",
			byName[NameCardNetA].Report.MeanQError, byName["DB-US"].Report.MeanQError)
	}
	var buf bytes.Buffer
	RenderAccuracyTables(&buf, res)
	for _, want := range []string{"Table 3", "Table 4", "Table 5", "Table 6", "Table 9", "Table 10"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("missing %q in output", want)
		}
	}
}

func TestRunTable7(t *testing.T) {
	res := RunTable7([]dataset.Spec{tinySpec("HM-ImageNet")}, tinyOpts())
	if len(res) != 3 { // feature ablation skipped on Hamming
		t.Fatalf("expected 3 ablations on HM, got %d", len(res))
	}
	var buf bytes.Buffer
	RenderTable7(&buf, res)
	if !strings.Contains(buf.String(), "IncrementalPrediction") {
		t.Fatal("missing ablation rows")
	}
	// On a non-HM dataset the feature ablation appears too.
	res2 := RunTable7([]dataset.Spec{tinySpec("JC-BMS")}, tinyOpts())
	if len(res2) != 4 {
		t.Fatalf("expected 4 ablations on JC, got %d", len(res2))
	}
}

func TestRunFig5AndRender(t *testing.T) {
	series := RunFig5([]dataset.Spec{tinySpec("HM-ImageNet")}, tinyOpts())
	if len(series) == 0 {
		t.Fatal("no series")
	}
	for _, s := range series {
		if len(s.Thetas) == 0 || len(s.MSE) != len(s.Thetas) {
			t.Fatalf("bad series %+v", s)
		}
	}
	var buf bytes.Buffer
	RenderThresholdSeries(&buf, "Figure 5", series)
	if !strings.Contains(buf.String(), "Figure 5") {
		t.Fatal("render failed")
	}
}

func TestRunFig6(t *testing.T) {
	spec := tinySpec("HM-ImageNet")
	res := RunFig6([]dataset.Spec{spec}, []int{5, 20}, tinyOpts())
	if len(res) != 2 {
		t.Fatalf("got %d sweep points", len(res))
	}
	if res[0].Decoders != 6 || res[1].Decoders != 21 {
		t.Fatalf("decoder counts wrong: %+v", res)
	}
	var buf bytes.Buffer
	RenderFig6(&buf, res)
	if !strings.Contains(buf.String(), "Figure 6") {
		t.Fatal("render failed")
	}
}

func TestRunFig7(t *testing.T) {
	res := RunFig7([]dataset.Spec{tinySpec("HM-ImageNet")}, []float64{0.5, 1.0},
		[]string{NameCardNetA, "TL-XGB"}, tinyOpts())
	if len(res) != 4 {
		t.Fatalf("got %d rows", len(res))
	}
	var buf bytes.Buffer
	RenderFig7(&buf, res)
	if !strings.Contains(buf.String(), "@50%") {
		t.Fatal("fraction labels missing")
	}
}

func TestRunFig8Updates(t *testing.T) {
	spec := tinySpec("HM-ImageNet")
	spec.N = 250
	o := tinyOpts()
	o.NOverride = 0
	res := RunFig8(spec, 8, 5, 4, o)
	if len(res) != 2 {
		t.Fatalf("expected 2 checkpoints, got %d", len(res))
	}
	for _, p := range res {
		if math.IsNaN(p.IncLearn) || math.IsNaN(p.Retrain) || math.IsNaN(p.PlusSample) {
			t.Fatalf("NaN in %+v", p)
		}
	}
	var buf bytes.Buffer
	RenderFig8(&buf, spec.Name, res)
	if !strings.Contains(buf.String(), "IncLearn") {
		t.Fatal("render failed")
	}
}

func TestRunFig9AndFig10(t *testing.T) {
	specs := []dataset.Spec{tinySpec("HM-ImageNet")}
	names := []string{NameCardNetA, "DB-US"}
	res9 := RunFig9(specs, names, tinyOpts())
	if len(res9["HM-ImageNet"]) != 2 {
		t.Fatalf("fig9 models missing: %v", res9)
	}
	var buf bytes.Buffer
	RenderFig9(&buf, "Figure 9", res9)
	if !strings.Contains(buf.String(), "Q4(tail)") {
		t.Fatal("fig9 render failed")
	}

	res10 := RunFig10(specs, names, tinyOpts())
	if len(res10["HM-ImageNet"]) != 2 {
		t.Fatalf("fig10 models missing: %v", res10)
	}
}

func TestOODSwapChangesWorkload(t *testing.T) {
	s := BuildSuite(tinySpec("HM-ImageNet"), tinyOpts())
	b := s.Bundle
	before := b.Actuals()
	b.UseOutOfDatasetQueries(100, b.TestX.Rows, 17)
	after := b.Actuals()
	if len(after) == 0 {
		t.Fatal("no OOD points")
	}
	var sumB, sumA float64
	for _, v := range before {
		sumB += v
	}
	for _, v := range after {
		sumA += v
	}
	// Far queries have smaller cardinalities than in-dataset queries.
	if sumA >= sumB {
		t.Fatalf("OOD queries should be sparser: %v vs %v", sumA, sumB)
	}
	// SimSelect still exact after the swap.
	h := s.Handle(NameSimSelect)
	for _, p := range b.Points[:5] {
		if h.Estimate(p) != p.Actual {
			t.Fatal("SimSelect stale after OOD swap")
		}
	}
}

func TestRunPolicies(t *testing.T) {
	res := RunPolicies([]dataset.Spec{tinySpec("HM-ImageNet")},
		[]string{NameCardNetA, "DB-US"}, []Policy{SingleUniform, SingleSkewed}, tinyOpts())
	if len(res) != 4 {
		t.Fatalf("got %d policy rows", len(res))
	}
	var buf bytes.Buffer
	RenderPolicies(&buf, res)
	if !strings.Contains(buf.String(), "Table 14") || !strings.Contains(buf.String(), "Table 16") {
		t.Fatal("policy tables missing")
	}
}

func TestFig1AndStatsAndTable13(t *testing.T) {
	var buf bytes.Buffer
	spec := tinySpec("HM-ImageNet")
	RunFig1(&buf, spec, 3, 100)
	if !strings.Contains(buf.String(), "Figure 1(a)") || !strings.Contains(buf.String(), "Figure 1(b)") {
		t.Fatal("fig1 output missing")
	}
	buf.Reset()
	RenderDatasetStats(&buf, []dataset.Spec{spec, tinySpec("ED-AMiner")})
	if !strings.Contains(buf.String(), "HM-ImageNet") {
		t.Fatal("stats missing")
	}
	buf.Reset()
	RenderTable13(&buf, []dataset.Spec{spec}, 120)
	if !strings.Contains(buf.String(), "Table 13") {
		t.Fatal("table 13 missing")
	}
}

func TestRunFig11Conjunctive(t *testing.T) {
	specs := []ConjSpec{{Name: "tiny-conj", Attrs: 2, N: 250, Dim: 8, Seed: 42}}
	res := RunFig11(specs, 12, tinyOpts())
	if len(res) != 6 { // Exact, CardNet-A, DL-RMI, TL-XGB, DB-US, Mean
		t.Fatalf("got %d results", len(res))
	}
	byName := map[string]ConjResult{}
	for _, r := range res {
		byName[r.Model] = r
		if r.Precision < 0 || r.Precision > 1 {
			t.Fatalf("bad precision %+v", r)
		}
	}
	if byName["Exact"].Precision < 0.99 {
		t.Fatalf("exact oracle precision %.2f", byName["Exact"].Precision)
	}
	var buf bytes.Buffer
	RenderFig11(&buf, res)
	if !strings.Contains(buf.String(), "Precision") {
		t.Fatal("render failed")
	}
}

func TestRunFig13And14GPH(t *testing.T) {
	spec := dataset.Spec{Name: "tiny-gph", Kind: dataset.HM, N: 250, Dim: 96,
		ThetaMax: 24, Seed: 71, Clusters: 5, Flip: 0.05}
	res := RunFig13([]dataset.Spec{spec}, 8, []int{8, 16}, tinyOpts())
	if len(res) != 10 { // 5 estimators × 2 thresholds
		t.Fatalf("got %d results", len(res))
	}
	// Exact allocation never produces more candidates than Mean at the same
	// threshold.
	byKey := map[string]int{}
	for _, r := range res {
		byKey[r.Model+"@"+itoa(r.Theta)] = r.Candidates
	}
	for _, th := range []int{8, 16} {
		if byKey["Exact@"+itoa(th)] > byKey["Mean@"+itoa(th)] {
			t.Fatalf("exact allocation worse than mean at θ=%d", th)
		}
	}
	var buf bytes.Buffer
	RenderFig13(&buf, res)
	if !strings.Contains(buf.String(), "Figure 13") {
		t.Fatal("fig13 render failed")
	}

	res14 := RunFig14(spec, 6, []int{4, 8}, tinyOpts())
	if len(res14) != 4 { // 2 histogram sizes + CardNet-A + Mean
		t.Fatalf("got %d fig14 rows", len(res14))
	}
	buf.Reset()
	RenderFig14(&buf, res14)
	if !strings.Contains(buf.String(), "Figure 14") {
		t.Fatal("fig14 render failed")
	}
}

func TestRenderMonotonicity(t *testing.T) {
	var buf bytes.Buffer
	RenderMonotonicity(&buf, []dataset.Spec{tinySpec("HM-ImageNet")},
		[]string{NameCardNetA, "TL-XGB"}, tinyOpts())
	out := buf.String()
	if !strings.Contains(out, "100%") {
		t.Fatalf("monotone models must be 100%% monotone:\n%s", out)
	}
}

func itoa(v int) string {
	var buf [8]byte
	i := len(buf)
	if v == 0 {
		return "0"
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestBiLSTMHandlePresentOnlyForEditDistance(t *testing.T) {
	ed := BuildSuite(tinySpec("ED-AMiner"), tinyOpts())
	h := ed.Handle("DL-BiLSTM")
	if h == nil {
		t.Fatal("ED suite must include DL-BiLSTM")
	}
	p := ed.Bundle.Points[0]
	if v := h.Estimate(p); v < 0 || math.IsNaN(v) {
		t.Fatalf("bad BiLSTM estimate %v", v)
	}
	hm := BuildSuite(tinySpec("HM-ImageNet"), tinyOpts())
	if hm.Handle("DL-BiLSTM") != nil {
		t.Fatal("non-string suites must not include DL-BiLSTM")
	}
}

func TestObsSnapshotAfterFit(t *testing.T) {
	s := BuildSuite(tinySpec("HM-ImageNet"), tinyOpts())
	fits0 := fitCount.Value()
	evals0 := evalPoints.Value()
	h := s.Handle(NameCardNetA)
	for _, p := range s.Bundle.Points[:3] {
		h.Estimate(p)
	}
	if fitCount.Value() != fits0+1 {
		t.Fatalf("fit counter moved by %d, want 1", fitCount.Value()-fits0)
	}
	if evalPoints.Value() != evals0+3 {
		t.Fatalf("eval counter moved by %d, want 3", evalPoints.Value()-evals0)
	}

	var buf bytes.Buffer
	if err := WriteObsSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]uint64  `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot not JSON: %v", err)
	}
	if snap.Counters["core.train.epochs"] == 0 {
		t.Fatal("snapshot missing training epochs")
	}
	if snap.Gauges["bench.fit_seconds."+NameCardNetA] <= 0 {
		t.Fatal("snapshot missing per-model fit gauge")
	}
}
