package bench

import (
	"fmt"
	"io"
	"sort"

	"cardnet/internal/dataset"
	"cardnet/internal/dist"
	"cardnet/internal/metrics"
	"cardnet/internal/simselect"
)

// RunFig1 reproduces Figure 1 on an ImageNet-style binary-code dataset:
// (a) the cardinality of `nCurves` random queries at every threshold, and
// (b) the fraction of queries per cardinality magnitude at several
// thresholds.
func RunFig1(w io.Writer, spec dataset.Spec, nCurves, nQueries int) {
	m := dataset.Generate(spec)
	ix := simselect.NewHammingIndex(m.Bits)
	maxTheta := int(spec.ThetaMax)

	t := newTable("Figure 1(a): cardinality vs threshold",
		append([]string{"Threshold"}, queryNames(nCurves)...)...)
	curves := make([][]int, nCurves)
	for qi := 0; qi < nCurves; qi++ {
		curves[qi] = ix.CountAtEach(m.Bits[qi*37%len(m.Bits)], maxTheta)
	}
	for theta := 0; theta <= maxTheta; theta += maxI(maxTheta/10, 1) {
		cells := []string{fmt.Sprintf("%d", theta)}
		for qi := 0; qi < nCurves; qi++ {
			cells = append(cells, fmt.Sprintf("%d", curves[qi][theta]))
		}
		t.add(cells...)
	}
	t.render(w)

	// (b) Percentage of queries per cardinality decade at several thresholds.
	thetas := []int{maxTheta / 5, 2 * maxTheta / 5, 3 * maxTheta / 5, 4 * maxTheta / 5}
	t2 := newTable("Figure 1(b): share of queries per cardinality decade",
		"Threshold", "[1,10)", "[10,100)", "[100,1k)", ">=1k")
	if nQueries > len(m.Bits) {
		nQueries = len(m.Bits)
	}
	for _, theta := range thetas {
		var buckets [4]int
		for qi := 0; qi < nQueries; qi++ {
			c := ix.Count(m.Bits[qi], float64(theta))
			switch {
			case c < 10:
				buckets[0]++
			case c < 100:
				buckets[1]++
			case c < 1000:
				buckets[2]++
			default:
				buckets[3]++
			}
		}
		t2.addf("%d\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%", theta,
			100*float64(buckets[0])/float64(nQueries),
			100*float64(buckets[1])/float64(nQueries),
			100*float64(buckets[2])/float64(nQueries),
			100*float64(buckets[3])/float64(nQueries))
	}
	t2.render(w)
}

func queryNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("Query %d", i+1)
	}
	return out
}

// RenderDatasetStats prints the Table 2-style statistics of the generated
// datasets.
func RenderDatasetStats(w io.Writer, specs []dataset.Spec) {
	t := newTable("Table 2: dataset statistics (synthetic analogues)",
		"Dataset", "Type", "#Records", "lmax", "lavg", "thetaMax")
	for _, spec := range specs {
		m := dataset.Generate(spec)
		lmax, lavg := lengthStats(m)
		t.addf("%s\t%s\t%d\t%d\t%.2f\t%v", spec.Name, spec.Kind, m.Len(), lmax, lavg, spec.ThetaMax)
	}
	t.render(w)
}

func lengthStats(m *dataset.Materialized) (lmax int, lavg float64) {
	add := func(l int) {
		if l > lmax {
			lmax = l
		}
		lavg += float64(l)
	}
	switch m.Spec.Kind {
	case dataset.HM:
		for _, r := range m.Bits {
			add(r.Len)
		}
	case dataset.ED:
		for _, r := range m.Strings {
			add(len(r))
		}
	case dataset.JC:
		for _, r := range m.Sets {
			add(len(r))
		}
	default:
		for _, r := range m.Vecs {
			add(len(r))
		}
	}
	if n := m.Len(); n > 0 {
		lavg /= float64(n)
	}
	return lmax, lavg
}

// RunFig10 evaluates models on out-of-dataset queries (Section 9.10),
// reporting MSE per cardinality bucket as in Figure 10.
func RunFig10(specs []dataset.Spec, names []string, opts Options) map[string]map[string]map[string]float64 {
	if names == nil {
		names = []string{NameCardNet, NameCardNetA, "DL-DLN", "TL-XGB", "DB-US", "DL-RMI", "DL-MoE"}
	}
	out := map[string]map[string]map[string]float64{}
	for _, spec := range specs {
		s := BuildSuite(spec, opts)
		b := s.Bundle
		// Fit models on the in-dataset workload first, then swap the test
		// queries for far out-of-dataset ones.
		for _, name := range names {
			if h := s.Handle(name); h != nil {
				h.Fit()
			}
		}
		keep := b.TestX.Rows
		b.UseOutOfDatasetQueries(10*keep, keep, opts.Seed+21)

		actual := b.Actuals()
		sorted := append([]float64(nil), actual...)
		sort.Float64s(sorted)
		q := func(p float64) float64 { return sorted[int(p*float64(len(sorted)-1))] }
		cuts := []float64{q(0.25), q(0.5), q(0.75)}
		lbls := []string{"Q1", "Q2", "Q3", "Q4(tail)"}
		bucket := func(v float64) int {
			for i, c := range cuts {
				if v < c {
					return i
				}
			}
			return 3
		}

		out[spec.Name] = map[string]map[string]float64{}
		for _, name := range names {
			h := s.Handle(name)
			if h == nil {
				continue
			}
			est := b.Estimates(h)
			keys := make([]int, len(b.Points))
			for i := range b.Points {
				keys[i] = bucket(actual[i])
			}
			groups := metrics.GroupByKey(keys, actual, est)
			out[spec.Name][name] = map[string]float64{}
			for k, rep := range groups {
				out[spec.Name][name][lbls[k]] = rep.MSE
			}
		}
	}
	return out
}

// PolicyResult holds Tables 14–16: MSE for one (train policy, model,
// dataset) cell, always tested on multiple uniform samples.
type PolicyResult struct {
	Policy  Policy
	Dataset string
	Model   string
	MSE     float64
}

// RunPolicies evaluates the Section 9.12 sampling-policy grid: training
// workloads built with each policy, all tested on multiple uniform samples.
func RunPolicies(specs []dataset.Spec, names []string, policies []Policy, opts Options) []PolicyResult {
	if names == nil {
		names = []string{NameCardNet, NameCardNetA, "DL-RMI", "TL-XGB", "DB-US"}
	}
	if policies == nil {
		policies = []Policy{SingleUniform, MultipleUniform, SingleSkewed}
	}
	var out []PolicyResult
	for _, spec := range specs {
		for _, pol := range policies {
			o := opts
			o.Policy = pol
			o.TestMultiUniform = true
			s := BuildSuite(spec, o)
			b := s.Bundle
			actual := b.Actuals()
			for _, name := range names {
				h := s.Handle(name)
				if h == nil {
					continue
				}
				out = append(out, PolicyResult{
					Policy:  pol,
					Dataset: spec.Name,
					Model:   name,
					MSE:     metrics.MSE(actual, b.Estimates(h)),
				})
			}
		}
	}
	return out
}

// RenderPolicies prints the Tables 14–16 analogue.
func RenderPolicies(w io.Writer, res []PolicyResult) {
	polName := map[Policy]string{
		SingleUniform:   "Table 14: trained single uniform",
		MultipleUniform: "Table 15: trained multiple uniform",
		SingleSkewed:    "Table 16: trained single skewed",
	}
	for _, pol := range []Policy{SingleUniform, MultipleUniform, SingleSkewed} {
		t := newTable(polName[pol]+" / tested multiple uniform (MSE)", "Dataset", "Model", "MSE")
		for _, r := range res {
			if r.Policy != pol {
				continue
			}
			t.addf("%s\t%s\t%s", r.Dataset, r.Model, f2(r.MSE))
		}
		if len(t.rows) > 0 {
			t.render(w)
		}
	}
}

// RenderTable13 prints the k-medoids cluster sizes of each dataset.
func RenderTable13(w io.Writer, specs []dataset.Spec, sample int) {
	t := newTable("Table 13: k-medoids cluster sizes (descending, on a sample)",
		"Dataset", "1st", "2nd", "3rd", "4th", "5th", "6th", "7th", "8th")
	for _, spec := range specs {
		m := dataset.Generate(spec)
		n := m.Len()
		if sample < n {
			n = sample
		}
		d := distFuncFor(m)
		_, assign := dataset.KMedoids(n, 8, d, 4, spec.Seed)
		sizes := dataset.ClusterSizes(assign, 8)
		cells := []string{spec.Name}
		for _, sz := range sizes {
			cells = append(cells, fmt.Sprintf("%d", sz))
		}
		t.add(cells...)
	}
	t.render(w)
}

// distFuncFor returns an index-based distance over a materialized dataset.
func distFuncFor(m *dataset.Materialized) func(i, j int) float64 {
	switch m.Spec.Kind {
	case dataset.HM:
		return func(i, j int) float64 { return float64(dist.Hamming(m.Bits[i], m.Bits[j])) }
	case dataset.ED:
		return func(i, j int) float64 { return float64(dist.Edit(m.Strings[i], m.Strings[j])) }
	case dataset.JC:
		return func(i, j int) float64 { return dist.Jaccard(m.Sets[i], m.Sets[j]) }
	default:
		return func(i, j int) float64 { return dist.Euclidean(m.Vecs[i], m.Vecs[j]) }
	}
}
