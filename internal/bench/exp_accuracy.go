package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"cardnet/internal/dataset"
	"cardnet/internal/metrics"
)

// AccuracyResult holds one model's evaluation on one dataset.
type AccuracyResult struct {
	Dataset  string
	Model    string
	Report   metrics.Report
	EstTime  time.Duration // mean per-estimate latency
	Size     int
	FitTime  time.Duration
	Monotone bool
}

// RunAccuracy evaluates the given model names (nil = AllModelNames) on each
// spec, producing the data behind Tables 3, 4, 5, 6, 9 and 10.
func RunAccuracy(specs []dataset.Spec, names []string, opts Options) []AccuracyResult {
	if names == nil {
		names = AllModelNames
	}
	var out []AccuracyResult
	for _, spec := range specs {
		s := BuildSuite(spec, opts)
		b := s.Bundle
		actual := b.Actuals()
		for _, name := range names {
			h := s.Handle(name)
			if h == nil {
				continue
			}
			h.Fit()
			start := time.Now()
			est := b.Estimates(h)
			perEst := time.Since(start) / time.Duration(maxI(len(b.Points), 1))
			out = append(out, AccuracyResult{
				Dataset:  spec.Name,
				Model:    name,
				Report:   metrics.Evaluate(actual, est),
				EstTime:  perEst,
				Size:     h.SizeBytes(),
				FitTime:  h.TrainTime,
				Monotone: h.Monotone,
			})
		}
	}
	return out
}

// metricsByModel reshapes results into model → dataset → result.
func metricsByModel(res []AccuracyResult) (models []string, datasets []string, grid map[string]map[string]AccuracyResult) {
	grid = map[string]map[string]AccuracyResult{}
	seenM := map[string]bool{}
	seenD := map[string]bool{}
	for _, r := range res {
		if grid[r.Model] == nil {
			grid[r.Model] = map[string]AccuracyResult{}
		}
		grid[r.Model][r.Dataset] = r
		if !seenM[r.Model] {
			seenM[r.Model] = true
			models = append(models, r.Model)
		}
		if !seenD[r.Dataset] {
			seenD[r.Dataset] = true
			datasets = append(datasets, r.Dataset)
		}
	}
	return models, datasets, grid
}

// RenderAccuracyTables prints the Tables 3–6/9/10 analogues from results.
func RenderAccuracyTables(w io.Writer, res []AccuracyResult) {
	models, datasets, grid := metricsByModel(res)
	mk := func(title string, cell func(r AccuracyResult) string) {
		t := newTable(title, append([]string{"Model"}, datasets...)...)
		for _, m := range models {
			cells := []string{m}
			for _, d := range datasets {
				if r, ok := grid[m][d]; ok {
					cells = append(cells, cell(r))
				} else {
					cells = append(cells, "-")
				}
			}
			t.add(cells...)
		}
		t.render(w)
	}
	mk("Table 3: MSE", func(r AccuracyResult) string { return f2(r.Report.MSE) })
	mk("Table 4: MAPE (%)", func(r AccuracyResult) string { return f2(r.Report.MAPE) })
	mk("Table 5: mean q-error", func(r AccuracyResult) string { return f2(r.Report.MeanQError) })
	mk("Table 6: avg estimation time (ms)", func(r AccuracyResult) string {
		return fmt.Sprintf("%.4f", float64(r.EstTime.Nanoseconds())/1e6)
	})
	mk("Table 9: model size (KB)", func(r AccuracyResult) string {
		return fmt.Sprintf("%.1f", float64(r.Size)/1024)
	})
	mk("Table 10: training time (s)", func(r AccuracyResult) string {
		return fmt.Sprintf("%.2f", r.FitTime.Seconds())
	})
}

// ThresholdSeries is one model's per-threshold error curve (Figure 5).
type ThresholdSeries struct {
	Dataset string
	Model   string
	Thetas  []float64
	MSE     []float64
	MAPE    []float64
}

// Fig5Models is the model subset plotted in Figure 5.
var Fig5Models = []string{NameCardNet, NameCardNetA, "TL-XGB", "DL-RMI", "DL-MoE", "DB-US", "DL-DLN"}

// RunFig5 computes accuracy-vs-threshold curves on each spec.
func RunFig5(specs []dataset.Spec, opts Options) []ThresholdSeries {
	var out []ThresholdSeries
	for _, spec := range specs {
		s := BuildSuite(spec, opts)
		b := s.Bundle
		// Group test points by τ (the discrete threshold axis).
		for _, name := range Fig5Models {
			h := s.Handle(name)
			if h == nil {
				continue
			}
			keys := make([]int, len(b.Points))
			for i, p := range b.Points {
				keys[i] = p.Tau
			}
			groups := metrics.GroupByKey(keys, b.Actuals(), b.Estimates(h))
			var taus []int
			for k := range groups {
				taus = append(taus, k)
			}
			sort.Ints(taus)
			ts := ThresholdSeries{Dataset: spec.Name, Model: name}
			for _, tau := range taus {
				ts.Thetas = append(ts.Thetas, float64(tau))
				ts.MSE = append(ts.MSE, groups[tau].MSE)
				ts.MAPE = append(ts.MAPE, groups[tau].MAPE)
			}
			out = append(out, ts)
		}
	}
	return out
}

// RenderThresholdSeries prints Figure 5-style series.
func RenderThresholdSeries(w io.Writer, title string, series []ThresholdSeries) {
	byDataset := map[string][]ThresholdSeries{}
	var order []string
	for _, s := range series {
		if len(byDataset[s.Dataset]) == 0 {
			order = append(order, s.Dataset)
		}
		byDataset[s.Dataset] = append(byDataset[s.Dataset], s)
	}
	for _, ds := range order {
		t := newTable(fmt.Sprintf("%s — %s", title, ds), "Model", "tau", "MSE", "MAPE(%)")
		for _, s := range byDataset[ds] {
			for i := range s.Thetas {
				t.addf("%s\t%.0f\t%s\t%s", s.Model, s.Thetas[i], f2(s.MSE[i]), f2(s.MAPE[i]))
			}
		}
		t.render(w)
	}
}

// RunFig7 sweeps the training-set fraction (20%..100%) and reports MSE, the
// Figure 7 experiment.
func RunFig7(specs []dataset.Spec, fractions []float64, names []string, opts Options) []AccuracyResult {
	if fractions == nil {
		fractions = []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	}
	if names == nil {
		names = []string{NameCardNet, NameCardNetA, "TL-XGB", "DL-RMI", "DL-MoE", "DL-DLN"}
	}
	var out []AccuracyResult
	for _, spec := range specs {
		for _, frac := range fractions {
			o := opts
			o.QueryFrac = opts.QueryFrac // workload unchanged; subset below
			s := BuildSuite(spec, o)
			b := s.Bundle
			// Subset the training rows.
			n := int(frac * float64(b.Train.NumQueries()))
			if n < 1 {
				n = 1
			}
			rows := make([]int, n)
			for i := range rows {
				rows[i] = i
			}
			b.Train = b.Train.Subset(rows)
			if b.AltTrain != nil {
				b.AltTrain = b.AltTrain.Subset(rows)
			}
			label := fmt.Sprintf("%s@%.0f%%", spec.Name, frac*100)
			for _, name := range names {
				h := s.Handle(name)
				if h == nil {
					continue
				}
				out = append(out, AccuracyResult{
					Dataset: label,
					Model:   name,
					Report:  metrics.Evaluate(b.Actuals(), b.Estimates(h)),
				})
			}
		}
	}
	return out
}

// RunFig9 groups test points by actual-cardinality buckets and reports MSE
// per group — the long-tail experiment. Bucket boundaries follow the
// paper's "every thousand" convention scaled to the workload (quartiles of
// the nonzero actuals).
func RunFig9(specs []dataset.Spec, names []string, opts Options) map[string]map[string]map[string]float64 {
	if names == nil {
		names = []string{NameCardNet, NameCardNetA, "DL-DLN", "TL-XGB", "DB-US", "DL-RMI", "DL-MoE"}
	}
	// dataset → model → bucket label → MSE
	out := map[string]map[string]map[string]float64{}
	for _, spec := range specs {
		s := BuildSuite(spec, opts)
		b := s.Bundle
		actual := b.Actuals()
		// Quartile buckets over actual cardinalities.
		sorted := append([]float64(nil), actual...)
		sort.Float64s(sorted)
		q := func(p float64) float64 { return sorted[int(p*float64(len(sorted)-1))] }
		cuts := []float64{q(0.25), q(0.5), q(0.75)}
		bucket := func(v float64) string {
			switch {
			case v < cuts[0]:
				return "Q1"
			case v < cuts[1]:
				return "Q2"
			case v < cuts[2]:
				return "Q3"
			default:
				return "Q4(tail)"
			}
		}
		out[spec.Name] = map[string]map[string]float64{}
		for _, name := range names {
			h := s.Handle(name)
			if h == nil {
				continue
			}
			est := b.Estimates(h)
			keys := make([]int, len(b.Points))
			lbls := []string{"Q1", "Q2", "Q3", "Q4(tail)"}
			lblIdx := map[string]int{}
			for i, l := range lbls {
				lblIdx[l] = i
			}
			for i := range b.Points {
				keys[i] = lblIdx[bucket(actual[i])]
			}
			groups := metrics.GroupByKey(keys, actual, est)
			out[spec.Name][name] = map[string]float64{}
			for k, rep := range groups {
				out[spec.Name][name][lbls[k]] = rep.MSE
			}
		}
	}
	return out
}

// RenderFig9 prints the long-tail buckets.
func RenderFig9(w io.Writer, title string, res map[string]map[string]map[string]float64) {
	var dss []string
	for ds := range res {
		dss = append(dss, ds)
	}
	sort.Strings(dss)
	for _, ds := range dss {
		t := newTable(fmt.Sprintf("%s — %s (MSE per cardinality bucket)", title, ds),
			"Model", "Q1", "Q2", "Q3", "Q4(tail)")
		var ms []string
		for m := range res[ds] {
			ms = append(ms, m)
		}
		sort.Strings(ms)
		for _, m := range ms {
			g := res[ds][m]
			t.addf("%s\t%s\t%s\t%s\t%s", m, f2(g["Q1"]), f2(g["Q2"]), f2(g["Q3"]), f2(g["Q4(tail)"]))
		}
		t.render(w)
	}
}
