package bench

import (
	"fmt"
	"io"
	"strings"
)

// table accumulates rows and renders a fixed-width text table in the style
// of the paper's tables.
type table struct {
	title  string
	header []string
	rows   [][]string
}

func newTable(title string, header ...string) *table {
	return &table{title: title, header: header}
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addf(format string, args ...any) {
	t.add(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

func (t *table) render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "== %s ==\n", t.title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.header)
	total := len(widths)*2 - 2
	for _, wd := range widths {
		total += wd
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, r := range t.rows {
		line(r)
	}
	fmt.Fprintln(w)
}

// f2 formats a float with two decimals, switching to scientific form for
// huge values.
func f2(v float64) string {
	if v >= 1e7 {
		return fmt.Sprintf("%.2e", v)
	}
	return fmt.Sprintf("%.2f", v)
}
