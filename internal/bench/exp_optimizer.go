package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"cardnet/internal/baselines"
	"cardnet/internal/core"
	"cardnet/internal/dataset"
	"cardnet/internal/dist"
	"cardnet/internal/feature"
	"cardnet/internal/optimizer"
	"cardnet/internal/tensor"
)

// ConjSpec describes one multi-attribute dataset of the conjunctive query
// case study (paper Table 11 analogue).
type ConjSpec struct {
	Name  string
	Attrs int
	N     int
	Dim   int
	Seed  int64
}

// DefaultConjSpecs mirrors Table 11's four datasets at reduced scale.
func DefaultConjSpecs() []ConjSpec {
	return []ConjSpec{
		{Name: "AMiner-Publication", Attrs: 5, N: 1500, Dim: 16, Seed: 501},
		{Name: "AMiner-Author", Attrs: 3, N: 1500, Dim: 16, Seed: 502},
		{Name: "IMDB-Movie", Attrs: 4, N: 1500, Dim: 16, Seed: 503},
		{Name: "IMDB-Actor", Attrs: 2, N: 1500, Dim: 16, Seed: 504},
	}
}

// ConjResult holds one estimator's outcome on one conjunctive dataset
// (Figures 11 and 12).
type ConjResult struct {
	Dataset    string
	Model      string
	EstSeconds float64 // cardinality-estimation (planning) time
	PostSecs   float64 // index lookup + verification time
	Candidates int
	// Precision is the share of queries whose chosen plan is as good as the
	// oracle's: its candidate count within 20% (+2) of the best predicate's.
	// At reduced scale many predicates tie exactly, so identity-of-argmin
	// would undercount good plans.
	Precision float64
}

// RunFig11 runs the conjunctive Euclidean case study: per-attribute
// estimators plan which predicate drives the index lookup; we measure
// planning time, postprocessing time, and planning precision.
func RunFig11(specs []ConjSpec, nQueries int, opts Options) []ConjResult {
	if opts.QueryFrac == 0 {
		opts = DefaultOptions()
	}
	const thetaMin, thetaMax = 0.2, 0.5
	var out []ConjResult
	for _, cs := range specs {
		// Attribute columns with varying cluster tightness so selectivities
		// differ across attributes (the planner's reason to exist).
		attrs := make([][][]float64, cs.Attrs)
		for a := 0; a < cs.Attrs; a++ {
			std := 0.05 + 0.06*float64(a)
			attrs[a] = dataset.Vectors(cs.N, cs.Dim, 4+a, std, true, cs.Seed+int64(a))
		}
		db := optimizer.NewConjunctiveDB(attrs)

		// Train learned estimators per attribute.
		type attrModels struct {
			cardnet *core.Model
			xgb     *baselines.Boosted
			rmi     *baselines.RMI
			bundle  *Bundle
		}
		models := make([]attrModels, cs.Attrs)
		for a := 0; a < cs.Attrs; a++ {
			s := BuildEuclideanSuite(fmt.Sprintf("%s-attr%d", cs.Name, a), attrs[a], thetaMax, opts)
			b := s.Bundle
			am := attrModels{bundle: b}
			am.cardnet = core.New(cardNetConfig(opts, b.TauMax, true), b.Train.X.Cols)
			am.cardnet.Train(b.Train, b.Valid)
			am.xgb = baselines.NewXGB(b.TauMax)
			am.xgb.Fit(b.Train, b.Valid)
			am.rmi = baselines.NewRMI(b.TauMax)
			am.rmi.Fit_.Epochs = fitProfile(opts)
			am.rmi.Fit(b.Train, b.Valid)
			models[a] = am
		}
		usByAttr := make([]*baselines.UniformSample[[]float64], cs.Attrs)
		for a := range usByAttr {
			usByAttr[a] = baselines.NewUniformSample(attrs[a], 0.05, dist.Euclidean, cs.Seed+int64(a))
		}

		wrap := func(name string, fn func(attr int, q []float64, theta float64) float64) optimizer.AttrEstimator {
			return &optimizer.FuncAttrEstimator{Label: name, Fn: fn}
		}
		estimators := []optimizer.AttrEstimator{
			&optimizer.ExactAttrEstimator{DB: db},
			wrap(NameCardNetA, func(a int, q []float64, theta float64) float64 {
				b := models[a].bundle
				return models[a].cardnet.EstimateEncoded(b.EncodeRecord(q), b.ThresholdOf(theta))
			}),
			wrap("DL-RMI", func(a int, q []float64, theta float64) float64 {
				b := models[a].bundle
				return models[a].rmi.Estimate(b.EncodeRecord(q), b.ThresholdOf(theta))
			}),
			wrap("TL-XGB", func(a int, q []float64, theta float64) float64 {
				b := models[a].bundle
				return models[a].xgb.Estimate(b.EncodeRecord(q), b.ThresholdOf(theta))
			}),
			wrap("DB-US", func(a int, q []float64, theta float64) float64 {
				return usByAttr[a].Estimate(q, theta)
			}),
		}
		mean := NewMeanConjEstimator(db, 16, thetaMax, 40)
		estimators = append(estimators, mean)

		// Query workload: conjunctions centred on dataset records.
		rng := rand.New(rand.NewSource(cs.Seed + 99))
		queries := make([][]optimizer.Predicate, nQueries)
		for i := range queries {
			id := rng.Intn(cs.N)
			preds := make([]optimizer.Predicate, cs.Attrs)
			for a := 0; a < cs.Attrs; a++ {
				preds[a] = optimizer.Predicate{
					Attr:  a,
					Query: attrs[a][id],
					Theta: thetaMin + rng.Float64()*(thetaMax-thetaMin),
				}
			}
			queries[i] = preds
		}
		bestCands := make([]int, nQueries)
		for i, preds := range queries {
			bestCands[i] = db.CandidateCount(preds[db.BestPick(preds)])
		}

		for _, est := range estimators {
			var estTime, postTime time.Duration
			cands := 0
			agree := 0
			for i, preds := range queries {
				t0 := time.Now()
				pick := optimizer.Plan(est, preds)
				estTime += time.Since(t0)
				t1 := time.Now()
				_, c := db.Process(preds, pick)
				postTime += time.Since(t1)
				cands += c
				if float64(c) <= 1.2*float64(bestCands[i])+2 {
					agree++
				}
			}
			out = append(out, ConjResult{
				Dataset:    cs.Name,
				Model:      est.Name(),
				EstSeconds: estTime.Seconds(),
				PostSecs:   postTime.Seconds(),
				Candidates: cands,
				Precision:  float64(agree) / float64(nQueries),
			})
		}
	}
	return out
}

// NewMeanConjEstimator builds the Mean baseline for the conjunctive study.
func NewMeanConjEstimator(db *optimizer.ConjunctiveDB, buckets int, maxTheta float64, samples int) optimizer.AttrEstimator {
	return optimizer.NewMeanAttrEstimator(db, buckets, maxTheta, samples)
}

// RenderFig11 prints the processing-time breakdown and planning precision
// (Figures 11 and 12).
func RenderFig11(w io.Writer, res []ConjResult) {
	t := newTable("Figures 11-12: conjunctive Euclidean query optimizer",
		"Dataset", "Model", "EstTime(s)", "PostTime(s)", "Total(s)", "Candidates", "Precision")
	for _, r := range res {
		t.addf("%s\t%s\t%.4f\t%.4f\t%.4f\t%d\t%.0f%%",
			r.Dataset, r.Model, r.EstSeconds, r.PostSecs, r.EstSeconds+r.PostSecs,
			r.Candidates, r.Precision*100)
	}
	t.render(w)
}

// GPHResult holds one estimator's outcome at one threshold of the Hamming
// case study (Figure 13), or one histogram-size sweep point (Figure 14).
type GPHResult struct {
	Dataset    string
	Model      string
	Theta      int
	AllocSecs  float64
	PostSecs   float64
	Candidates int
	SizeBytes  int
}

// gphTrainSet builds the per-part regression workload: queries are the part
// views of sampled records; labels are the exact per-part cumulative counts.
func gphTrainSet(g *optimizer.GPH, ext *feature.HammingExtractor, sample []int) *core.TrainSet {
	rows := len(sample) * g.Parts
	ts := &core.TrainSet{
		X:      tensor.NewMatrix(rows, ext.Dim()),
		Labels: tensor.NewMatrix(rows, g.PartBits+1),
		TauTop: g.PartBits,
		P:      make([]float64, g.PartBits+1),
	}
	for i := range ts.P {
		ts.P[i] = 1 / float64(len(ts.P))
	}
	r := 0
	for _, id := range sample {
		q := g.Records[id]
		for p := 0; p < g.Parts; p++ {
			copy(ts.X.Row(r), ext.Encode(g.PartView(q, p)))
			lrow := ts.Labels.Row(r)
			for t := 0; t <= g.PartBits; t++ {
				lrow[t] = float64(g.PartCount(q, p, t))
			}
			r++
		}
	}
	return ts
}

// RunFig13 runs the GPH Hamming case study across thresholds for every
// estimator: Exact, CardNet-A, Histogram, Mean, DL-RMI.
func RunFig13(specs []dataset.Spec, nQueries int, thetas []int, opts Options) []GPHResult {
	if opts.QueryFrac == 0 {
		opts = DefaultOptions()
	}
	var out []GPHResult
	for _, spec := range specs {
		m := dataset.Generate(spec)
		g := optimizer.NewGPH(m.Bits, 32)
		ext := feature.NewHammingExtractor(32, 32, 32)

		// Train CardNet-A and DL-RMI on the pooled per-part workload.
		rng := rand.New(rand.NewSource(spec.Seed + 7))
		nTrain := 120
		if nTrain > len(m.Bits) {
			nTrain = len(m.Bits)
		}
		sample := rng.Perm(len(m.Bits))[:nTrain]
		split := len(sample) * 9 / 10
		train := gphTrainSet(g, ext, sample[:split])
		valid := gphTrainSet(g, ext, sample[split:])

		cn := core.New(cardNetConfig(opts, 32, true), ext.Dim())
		cn.Train(train, valid)
		rmi := baselines.NewRMI(32)
		rmi.Fit_.Epochs = fitProfile(opts)
		rmi.Fit(train, valid)

		// Per-part histograms (the GPH paper's estimator).
		hists := make([]*baselines.HammingHistogram, g.Parts)
		for p := range hists {
			views := make([]dist.BitVector, len(m.Bits))
			for i, r := range m.Bits {
				views[i] = g.PartView(r, p)
			}
			hists[p] = baselines.NewHammingHistogram(views, 8)
		}
		histSize := 0
		for _, h := range hists {
			histSize += h.SizeBytes()
		}

		ests := []struct {
			est  optimizer.PartEstimator
			size int
		}{
			{&optimizer.ExactPartEstimator{G: g}, 0},
			{&optimizer.FuncPartEstimator{Label: NameCardNetA, Fn: cachedPartFn(g, func(p int, q dist.BitVector) []float64 {
				return cn.EstimateAllTaus(ext.Encode(g.PartView(q, p)))
			})}, cn.SizeBytes()},
			{&optimizer.FuncPartEstimator{Label: "Histogram", Fn: func(p int, q dist.BitVector, t int) float64 {
				if t < 0 {
					return 0
				}
				return hists[p].Estimate(g.PartView(q, p), float64(t))
			}}, histSize},
			{optimizer.NewMeanPartEstimator(g, 24), 0},
			{&optimizer.FuncPartEstimator{Label: "DL-RMI", Fn: func(p int, q dist.BitVector, t int) float64 {
				if t < 0 {
					return 0
				}
				return rmi.Estimate(ext.Encode(g.PartView(q, p)), t)
			}}, rmi.SizeBytes()},
		}

		queryIdx := rng.Perm(len(m.Bits))[:nQueries]
		for _, theta := range thetas {
			if theta > int(spec.ThetaMax) {
				continue
			}
			for _, e := range ests {
				var alloc, post time.Duration
				cands := 0
				for _, qi := range queryIdx {
					q := m.Bits[qi]
					t0 := time.Now()
					al := g.Allocate(e.est, q, theta)
					alloc += time.Since(t0)
					t1 := time.Now()
					_, c := g.Process(q, theta, al)
					post += time.Since(t1)
					cands += c
				}
				out = append(out, GPHResult{
					Dataset:    spec.Name,
					Model:      e.est.Name(),
					Theta:      theta,
					AllocSecs:  alloc.Seconds(),
					PostSecs:   post.Seconds(),
					Candidates: cands,
					SizeBytes:  e.size,
				})
			}
		}
	}
	return out
}

// RenderFig13 prints the Hamming-optimizer results.
func RenderFig13(w io.Writer, res []GPHResult) {
	t := newTable("Figure 13: GPH Hamming query optimizer",
		"Dataset", "Model", "theta", "Alloc(s)", "Post(s)", "Total(s)", "Candidates")
	for _, r := range res {
		t.addf("%s\t%s\t%d\t%.4f\t%.4f\t%.4f\t%d",
			r.Dataset, r.Model, r.Theta, r.AllocSecs, r.PostSecs, r.AllocSecs+r.PostSecs, r.Candidates)
	}
	t.render(w)
}

// RunFig14 fixes θ at half the maximum and sweeps the histogram group size,
// reporting size vs candidates/time alongside the CardNet-A point.
func RunFig14(spec dataset.Spec, nQueries int, groupBits []int, opts Options) []GPHResult {
	if groupBits == nil {
		groupBits = []int{2, 4, 8, 16}
	}
	theta := int(spec.ThetaMax) / 2
	var out []GPHResult

	m := dataset.Generate(spec)
	g := optimizer.NewGPH(m.Bits, 32)
	rng := rand.New(rand.NewSource(spec.Seed + 8))
	queryIdx := rng.Perm(len(m.Bits))[:nQueries]

	run := func(name string, est optimizer.PartEstimator, size int) {
		var alloc, post time.Duration
		cands := 0
		for _, qi := range queryIdx {
			q := m.Bits[qi]
			t0 := time.Now()
			al := g.Allocate(est, q, theta)
			alloc += time.Since(t0)
			t1 := time.Now()
			_, c := g.Process(q, theta, al)
			post += time.Since(t1)
			cands += c
		}
		out = append(out, GPHResult{Dataset: spec.Name, Model: name, Theta: theta,
			AllocSecs: alloc.Seconds(), PostSecs: post.Seconds(), Candidates: cands, SizeBytes: size})
	}

	for _, gb := range groupBits {
		hists := make([]*baselines.HammingHistogram, g.Parts)
		size := 0
		for p := range hists {
			views := make([]dist.BitVector, len(m.Bits))
			for i, r := range m.Bits {
				views[i] = g.PartView(r, p)
			}
			hists[p] = baselines.NewHammingHistogram(views, gb)
			size += hists[p].SizeBytes()
		}
		run(fmt.Sprintf("Histogram(g=%d)", gb),
			&optimizer.FuncPartEstimator{Label: "Histogram", Fn: func(p int, q dist.BitVector, t int) float64 {
				if t < 0 {
					return 0
				}
				return hists[p].Estimate(g.PartView(q, p), float64(t))
			}}, size)
	}

	// Reference points.
	ext := feature.NewHammingExtractor(32, 32, 32)
	nTrain := 80
	if nTrain > len(m.Bits) {
		nTrain = len(m.Bits)
	}
	sample := rng.Perm(len(m.Bits))[:nTrain]
	split := len(sample) * 9 / 10
	cn := core.New(cardNetConfig(opts, 32, true), ext.Dim())
	cn.Train(gphTrainSet(g, ext, sample[:split]), gphTrainSet(g, ext, sample[split:]))
	run(NameCardNetA, &optimizer.FuncPartEstimator{Label: NameCardNetA,
		Fn: cachedPartFn(g, func(p int, q dist.BitVector) []float64 {
			return cn.EstimateAllTaus(ext.Encode(g.PartView(q, p)))
		})}, cn.SizeBytes())
	run("Mean", optimizer.NewMeanPartEstimator(g, 24), 0)
	return out
}

// RenderFig14 prints the histogram-size sweep.
func RenderFig14(w io.Writer, res []GPHResult) {
	t := newTable("Figure 14: GPH — histogram size sweep (theta = 50% max)",
		"Dataset", "Model", "Size(KB)", "Alloc(s)", "Post(s)", "Total(s)", "Candidates")
	for _, r := range res {
		t.addf("%s\t%s\t%.1f\t%.4f\t%.4f\t%.4f\t%d",
			r.Dataset, r.Model, float64(r.SizeBytes)/1024, r.AllocSecs, r.PostSecs,
			r.AllocSecs+r.PostSecs, r.Candidates)
	}
	t.render(w)
}

// cachedPartFn memoizes a per-(query, part) all-thresholds estimate vector:
// the DP allocator probes every threshold of a part in sequence, and
// CardNet-A emits all of them in a single fused forward pass (footnote 3 of
// the paper: all τmax+1 embeddings are produced together precisely to favour
// this implementation).
func cachedPartFn(g *optimizer.GPH, all func(p int, q dist.BitVector) []float64) func(int, dist.BitVector, int) float64 {
	lastPart := -1
	var lastQ *uint64
	var vec []float64
	return func(p int, q dist.BitVector, t int) float64 {
		if t < 0 {
			return 0
		}
		if p != lastPart || lastQ != &q.Bits[0] {
			vec = all(p, q)
			lastPart = p
			lastQ = &q.Bits[0]
		}
		if t >= len(vec) {
			t = len(vec) - 1
		}
		return vec[t]
	}
}
