package baselines

import (
	"math"
	"math/rand"

	"cardnet/internal/nn"
	"cardnet/internal/tensor"
)

// BiLSTMCard is DL-BiLSTM: for edit-distance data, the binary feature
// extraction is replaced by a character-level bidirectional LSTM encoder
// whose representation feeds τmax+1 non-negative per-distance heads; the
// estimate is the prefix sum, mirroring CardNet's incremental structure
// (paper Section 9.1.2 evaluates this variant on the ED datasets).
type BiLSTMCard struct {
	TauMax  int
	EmbDim  int
	Hidden  int
	MaxLen  int // strings are truncated for bounded BPTT
	Fit_    fitCfg
	TauTop  int
	alpha   map[byte]int
	emb     *nn.Param // (|Σ|+1)×EmbDim, last row = out-of-alphabet
	rnn     *nn.BiLSTM
	head    *nn.Sequential // 2·Hidden → ... → TauMax+1 (linear)
	trained bool
}

// NewBiLSTM builds the model over the lowercase alphabet.
func NewBiLSTM(tauMax int) *BiLSTMCard {
	m := &BiLSTMCard{TauMax: tauMax, EmbDim: 8, Hidden: 24, MaxLen: 24,
		Fit_: defaultFit(), alpha: map[byte]int{}}
	// Sequences are processed one at a time; accumulate small batches so the
	// optimizer takes enough steps even on modest workloads.
	m.Fit_.Batch = 8
	for c := byte('a'); c <= 'z'; c++ {
		m.alpha[c] = int(c - 'a')
	}
	return m
}

// Name identifies the model.
func (m *BiLSTMCard) Name() string { return "DL-BiLSTM" }

func (m *BiLSTMCard) vocab() int { return len(m.alpha) + 1 }

// embed maps a string to its embedding sequence and the row indices used
// (for the embedding gradient).
func (m *BiLSTMCard) embed(s string) ([][]float64, []int) {
	n := len(s)
	if n > m.MaxLen {
		n = m.MaxLen
	}
	seq := make([][]float64, n)
	rows := make([]int, n)
	for i := 0; i < n; i++ {
		r, ok := m.alpha[s[i]]
		if !ok {
			r = m.vocab() - 1
		}
		rows[i] = r
		seq[i] = m.emb.Value[r*m.EmbDim : (r+1)*m.EmbDim]
	}
	return seq, rows
}

// forward returns the per-distance increments (post-ReLU), caching
// everything needed for backward.
type bilstmFwd struct {
	seqRows []int
	tape    *nn.BiTape
	h       []float64
	pre     []float64
	inc     []float64
}

func (m *BiLSTMCard) forward(s string, train bool) *bilstmFwd {
	f := &bilstmFwd{}
	var seq [][]float64
	seq, f.seqRows = m.embed(s)
	f.h, f.tape = m.rnn.Forward(seq)
	hm := &tensor.Matrix{Rows: 1, Cols: len(f.h), Data: f.h}
	out := m.head.Forward(hm, train)
	f.pre = out.Row(0)
	f.inc = make([]float64, len(f.pre))
	for i, v := range f.pre {
		if v > 0 {
			f.inc[i] = v
		}
	}
	return f
}

// FitStrings trains on raw query strings with cumulative labels (one row per
// query, columns τ = 0..tauTop).
func (m *BiLSTMCard) FitStrings(queries []string, labels *tensor.Matrix, tauTop int) {
	if len(queries) == 0 {
		return
	}
	if tauTop > m.TauMax {
		tauTop = m.TauMax
	}
	m.TauTop = tauTop
	rng := rand.New(rand.NewSource(m.Fit_.Seed))
	m.emb = &nn.Param{Name: "charEmb",
		Value: make([]float64, m.vocab()*m.EmbDim),
		Grad:  make([]float64, m.vocab()*m.EmbDim)}
	tensor.RandNormal(rng, m.emb.Value, 0, 0.3)
	m.rnn = nn.NewBiLSTM(rng, m.EmbDim, m.Hidden)
	m.head = nn.NewMLP(rng, []int{2 * m.Hidden, 48, m.TauMax + 1}, nn.ReLU, nn.Identity)

	params := []*nn.Param{m.emb}
	params = append(params, m.rnn.Params()...)
	params = append(params, m.head.Params()...)
	opt := nn.NewAdam(params, m.Fit_.LR)

	perm := rng.Perm(len(queries))
	for epoch := 0; epoch < m.Fit_.Epochs; epoch++ {
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for bi, qi := range perm {
			f := m.forward(queries[qi], true)
			lrow := labels.Row(qi)
			// MSLE on the cumulative estimate at every τ, tail-summed into
			// per-increment gradients (as in CardNet's trainBatch).
			dinc := make([]float64, m.TauMax+1)
			var cum float64
			cums := make([]float64, tauTop+1)
			for i := 0; i <= tauTop; i++ {
				cum += f.inc[i]
				cums[i] = cum
			}
			for tau := 0; tau <= tauTop; tau++ {
				p := cums[tau]
				g := 2 * (math.Log1p(p) - math.Log1p(lrow[tau])) / (1 + p) / float64(tauTop+1)
				for i := 0; i <= tau; i++ {
					dinc[i] += g
				}
			}
			// ReLU gate, then head → BiLSTM → embeddings.
			dpre := tensor.NewMatrix(1, m.TauMax+1)
			for i := range dinc {
				if f.pre[i] > 0 {
					dpre.Data[i] = dinc[i]
				}
			}
			dh := m.head.Backward(dpre)
			dxs := m.rnn.Backward(f.tape, dh.Row(0))
			for t, r := range f.seqRows {
				tensor.Axpy(1, dxs[t], m.emb.Grad[r*m.EmbDim:(r+1)*m.EmbDim])
			}
			if (bi+1)%m.Fit_.Batch == 0 || bi == len(perm)-1 {
				nn.ClipGradNorm(params, 5)
				opt.Step()
			}
		}
	}
	m.trained = true
}

// EstimateString returns the prefix-sum estimate at τ. Monotone in τ by the
// same argument as CardNet (non-negative deterministic increments).
func (m *BiLSTMCard) EstimateString(s string, tau int) float64 {
	if !m.trained {
		return 0
	}
	if tau < 0 {
		return 0
	}
	if tau > m.TauMax {
		tau = m.TauMax
	}
	f := m.forward(s, false)
	var sum float64
	for i := 0; i <= tau; i++ {
		sum += f.inc[i]
	}
	return sum
}

// SizeBytes reports the serialized parameter size.
func (m *BiLSTMCard) SizeBytes() int {
	if !m.trained {
		return 0
	}
	params := []*nn.Param{m.emb}
	params = append(params, m.rnn.Params()...)
	params = append(params, m.head.Params()...)
	return nn.ParamBytes(params)
}
