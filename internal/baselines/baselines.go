// Package baselines implements every competitor model of the paper's
// evaluation (Section 9.1.2):
//
//   - database methods: DB-SE (one specialized estimator per distance:
//     dimension-partition histogram for HM, q-gram inverted index for ED, a
//     frequency/power-law semi-lattice for JC, LSH-bucket sampling for EU)
//     and DB-US (uniform record sampling);
//   - traditional learning: TL-XGB and TL-LGBM (gradient-boosted trees via
//     internal/gbdt, with a monotone constraint on the threshold feature)
//     and TL-KDE (a Gaussian-kernel estimator over sampled distances);
//   - deep learning: DL-DNN (one vanilla FNN on [x;τ]), DL-DNNsτ (τmax+1
//     independent FNNs, one per τ), DL-MoE (sparse mixture of experts),
//     DL-RMI (two-stage recursive-model index), and DL-DLN (a calibrated
//     monotonic lattice ensemble).
//
// Vector models consume the same prepared core.TrainSet as CardNet; record
// models (DB-*, TL-KDE) see original records and a distance function, like
// their counterparts in the paper.
package baselines

import (
	"math"

	"cardnet/internal/core"
)

// VectorModel is an estimator over encoded feature vectors and transformed
// thresholds. CardNet's TrainSet is the shared training format.
type VectorModel interface {
	Name() string
	Fit(train, valid *core.TrainSet)
	Estimate(x []float64, tau int) float64
	SizeBytes() int
}

// RecordEstimator estimates cardinality directly from a record and an
// original-space threshold.
type RecordEstimator[R any] interface {
	Name() string
	Estimate(q R, theta float64) float64
}

// flatten expands a TrainSet into per-(query, τ) rows with an extra
// normalized-τ feature appended, the input format of the deep and boosted
// baselines. Labels are the cumulative cardinalities.
func flatten(ts *core.TrainSet, tauMax int) (x [][]float64, tau []int, y []float64) {
	for q := 0; q < ts.NumQueries(); q++ {
		feats := ts.X.Row(q)
		labels := ts.Labels.Row(q)
		for t := 0; t <= ts.TauTop; t++ {
			row := make([]float64, len(feats)+1)
			copy(row, feats)
			row[len(feats)] = float64(t) / float64(max(tauMax, 1))
			x = append(x, row)
			tau = append(tau, t)
			y = append(y, labels[t])
		}
	}
	return x, tau, y
}

// log1pTargets maps counts to log space; models predict there and invert
// with expm1, matching the MSLE objective the paper trains on.
func log1pTargets(y []float64) []float64 {
	out := make([]float64, len(y))
	for i, v := range y {
		if v < 0 {
			v = 0
		}
		out[i] = math.Log1p(v)
	}
	return out
}

// fromLog inverts log1p and clamps at zero.
func fromLog(v float64) float64 {
	c := math.Expm1(v)
	if c < 0 || math.IsNaN(c) {
		return 0
	}
	return c
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
