package baselines

import (
	"math"
	"math/rand"
	"testing"

	"cardnet/internal/core"
	"cardnet/internal/dataset"
	"cardnet/internal/dist"
	"cardnet/internal/feature"
	"cardnet/internal/simselect"
)

// fixture builds a small Hamming workload shared by the vector-model tests.
type fixture struct {
	train, valid, test *core.TrainSet
	recs               []dist.BitVector
	ext                *feature.HammingExtractor
	ix                 *simselect.HammingIndex
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	recs := dataset.BinaryCodes(500, 32, 4, 0.08, 5)
	ext := feature.NewHammingExtractor(32, 12, 12)
	ix := simselect.NewHammingIndex(recs)
	grid := dataset.ThresholdGrid(12, 12)
	counts := func(q dist.BitVector, g []float64) []int {
		cum := ix.CountAtEach(q, 12)
		out := make([]int, len(g))
		for i, theta := range g {
			out[i] = cum[int(theta)]
		}
		return out
	}
	mk := func(qs []dist.BitVector) *core.TrainSet {
		ts, err := core.BuildTrainSet[dist.BitVector](ext, qs, grid, counts)
		if err != nil {
			t.Fatal(err)
		}
		return ts
	}
	return &fixture{
		train: mk(recs[:200]),
		valid: mk(recs[200:240]),
		test:  mk(recs[240:280]),
		recs:  recs, ext: ext, ix: ix,
	}
}

// qerr computes the mean q-error of a vector model on the test split.
func (f *fixture) qerr(m VectorModel) float64 {
	var s float64
	var n int
	for q := 0; q < f.test.NumQueries(); q++ {
		x := f.test.X.Row(q)
		for tau := 0; tau <= f.test.TauTop; tau += 3 {
			actual := math.Max(f.test.Labels.At(q, tau), 1)
			est := math.Max(m.Estimate(x, tau), 1)
			s += math.Max(actual/est, est/actual)
			n++
		}
	}
	return s / float64(n)
}

func vectorModels(tauMax int) []VectorModel {
	fast := fitCfg{Epochs: 12, Batch: 64, LR: 1e-3, Seed: 1}
	dnn := NewDNN(tauMax)
	dnn.Fit_ = fast
	dnnst := NewDNNPerTau(tauMax)
	dnnst.Fit_ = fast
	moe := NewMoE(tauMax)
	moe.Fit_ = fast
	rmi := NewRMI(tauMax)
	rmi.Fit_ = fast
	dln := NewDLN(tauMax)
	dln.Fit_ = fitCfg{Epochs: 20, Batch: 64, LR: 1e-3, Seed: 1}
	return []VectorModel{NewXGB(tauMax), NewLGBM(tauMax), dnn, dnnst, moe, rmi, dln}
}

func TestVectorModelsFitBeatsConstant(t *testing.T) {
	f := newFixture(t)
	// Baseline: always predict the global mean count.
	var mean float64
	var n int
	for q := 0; q < f.train.NumQueries(); q++ {
		for tau := 0; tau <= f.train.TauTop; tau++ {
			mean += f.train.Labels.At(q, tau)
			n++
		}
	}
	mean /= float64(n)
	var s float64
	n = 0
	for q := 0; q < f.test.NumQueries(); q++ {
		for tau := 0; tau <= f.test.TauTop; tau += 3 {
			actual := math.Max(f.test.Labels.At(q, tau), 1)
			est := math.Max(mean, 1)
			s += math.Max(actual/est, est/actual)
			n++
		}
	}
	constQ := s / float64(n)

	for _, m := range vectorModels(12) {
		m.Fit(f.train, f.valid)
		q := f.qerr(m)
		t.Logf("%s q-error %.3f (constant %.3f)", m.Name(), q, constQ)
		if q > constQ {
			t.Errorf("%s (q=%.3f) does not beat the constant predictor (q=%.3f)", m.Name(), q, constQ)
		}
		if m.SizeBytes() <= 0 {
			t.Errorf("%s reports non-positive size", m.Name())
		}
	}
}

func TestMonotoneVectorModels(t *testing.T) {
	f := newFixture(t)
	// The paper lists TL-XGB, TL-LGBM and DL-DLN as monotonic.
	dln := NewDLN(12)
	dln.Fit_ = fitCfg{Epochs: 10, Batch: 64, LR: 1e-3, Seed: 1}
	for _, m := range []VectorModel{NewXGB(12), NewLGBM(12), dln} {
		m.Fit(f.train, f.valid)
		for q := 0; q < 15; q++ {
			x := f.test.X.Row(q)
			prev := math.Inf(-1)
			for tau := 0; tau <= 12; tau++ {
				v := m.Estimate(x, tau)
				if v < prev-1e-9 {
					t.Fatalf("%s not monotone at query %d τ=%d: %v < %v", m.Name(), q, tau, v, prev)
				}
				prev = v
			}
		}
	}
}

func TestEstimatesNonNegativeAndFinite(t *testing.T) {
	f := newFixture(t)
	for _, m := range vectorModels(12) {
		m.Fit(f.train, f.valid)
		for q := 0; q < 10; q++ {
			x := f.test.X.Row(q)
			for tau := 0; tau <= 12; tau += 4 {
				v := m.Estimate(x, tau)
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s produced bad estimate %v", m.Name(), v)
				}
			}
		}
	}
}

func TestUnfittedModelsReturnZero(t *testing.T) {
	for _, m := range vectorModels(8) {
		if v := m.Estimate(make([]float64, 32), 3); v != 0 {
			t.Fatalf("%s unfitted estimate %v", m.Name(), v)
		}
	}
}

func TestUniformSampleExactOnFullSample(t *testing.T) {
	recs := dataset.BinaryCodes(200, 32, 4, 0.08, 7)
	d := func(a, b dist.BitVector) float64 { return float64(dist.Hamming(a, b)) }
	us := NewUniformSample(recs, 1.0, d, 1) // 100% sample = exact
	ix := simselect.NewHammingIndex(recs)
	for _, theta := range []float64{0, 4, 8, 12} {
		want := float64(ix.Count(recs[3], theta))
		if got := us.Estimate(recs[3], theta); got != want {
			t.Fatalf("full-sample estimate %v want %v", got, want)
		}
	}
}

func TestUniformSampleMonotoneAndScaled(t *testing.T) {
	recs := dataset.BinaryCodes(400, 32, 4, 0.08, 8)
	d := func(a, b dist.BitVector) float64 { return float64(dist.Hamming(a, b)) }
	us := NewUniformSample(recs, 0.1, d, 2)
	if len(us.Sample) != 40 {
		t.Fatalf("sample size %d", len(us.Sample))
	}
	prev := -1.0
	for theta := 0.0; theta <= 16; theta++ {
		v := us.Estimate(recs[0], theta)
		if v < prev {
			t.Fatal("DB-US must be monotone for a fixed sample")
		}
		prev = v
	}
	if us.Name() != "DB-US" || us.SizeBytes() != 0 {
		t.Fatal("metadata wrong")
	}
}

func TestKDEMonotoneAndCalibrated(t *testing.T) {
	recs := dataset.BinaryCodes(400, 32, 4, 0.08, 9)
	d := func(a, b dist.BitVector) float64 { return float64(dist.Hamming(a, b)) }
	kde := NewKDE(recs, 80, d, 3)
	if kde.Name() != "TL-KDE" || kde.SizeBytes() <= 0 {
		t.Fatal("metadata wrong")
	}
	prev := -1.0
	for theta := 0.0; theta <= 16; theta++ {
		v := kde.Estimate(recs[0], theta)
		if v < prev-1e-9 {
			t.Fatal("KDE must be monotone in θ")
		}
		prev = v
	}
	// At a huge threshold everything matches.
	if v := kde.Estimate(recs[0], 1000); math.Abs(v-400) > 1 {
		t.Fatalf("KDE at θ→∞ should approach N: %v", v)
	}
}

func TestHammingHistogram(t *testing.T) {
	recs := dataset.BinaryCodes(500, 32, 4, 0.08, 10)
	h := NewHammingHistogram(recs, 8)
	ix := simselect.NewHammingIndex(recs)
	if h.Name() != "DB-SE" || h.SizeBytes() <= 0 {
		t.Fatal("metadata wrong")
	}
	prev := -1.0
	var worst float64
	for theta := 0.0; theta <= 16; theta++ {
		v := h.Estimate(recs[0], theta)
		if v < prev-1e-9 {
			t.Fatal("histogram must be monotone")
		}
		prev = v
		actual := math.Max(float64(ix.Count(recs[0], theta)), 1)
		est := math.Max(v, 1)
		worst = math.Max(worst, math.Max(actual/est, est/actual))
	}
	// Independence assumption costs accuracy but should stay in the right
	// order of magnitude on clustered data.
	if worst > 50 {
		t.Fatalf("histogram wildly off: worst q-error %.1f", worst)
	}
	// Exact at θ = dim (everything matches).
	if v := h.Estimate(recs[0], 32); math.Abs(v-500) > 1e-6 {
		t.Fatalf("estimate at θ=dim must be N: %v", v)
	}
}

func TestHammingHistogramEmpty(t *testing.T) {
	h := NewHammingHistogram(nil, 8)
	if h.Estimate(dist.NewBitVector(8), 3) != 0 {
		t.Fatal("empty dataset must estimate 0")
	}
}

func TestEditGramIndexMonotoneUpperBoundish(t *testing.T) {
	recs := dataset.Strings(400, 30, 3, 0.15, 11)
	ix := NewEditGramIndex(recs)
	exact := simselect.NewEditIndex(recs)
	if ix.Name() != "DB-SE" || ix.SizeBytes() <= 0 {
		t.Fatal("metadata wrong")
	}
	q := recs[5]
	prev := -1.0
	for k := 0.0; k <= 6; k++ {
		v := ix.Estimate(q, k)
		if v < prev-1e-9 {
			t.Fatal("gram-index estimate must be monotone")
		}
		prev = v
		// Count-filter candidates are a superset of the true matches.
		if actual := float64(exact.Count(q, k)); v < actual {
			t.Fatalf("filter count %v below actual %v at k=%v", v, actual, k)
		}
	}
}

func TestJaccardLatticeMonotoneAndBounded(t *testing.T) {
	recs := dataset.Sets(400, 500, 10, 8, 0.8, 3, 12)
	l := NewJaccardLattice(recs)
	if l.Name() != "DB-SE" || l.SizeBytes() <= 0 {
		t.Fatal("metadata wrong")
	}
	q := recs[7]
	prev := -1.0
	for theta := 0.0; theta <= 1.0; theta += 0.05 {
		v := l.Estimate(q, theta)
		if v < prev-1e-9 {
			t.Fatal("lattice estimate must be monotone")
		}
		if v < 0 || v > float64(len(recs))+1e-9 {
			t.Fatalf("estimate out of range: %v", v)
		}
		prev = v
	}
	// θ=1 matches everything.
	if v := l.Estimate(q, 1); math.Abs(v-400) > 1e-6 {
		t.Fatalf("θ=1 must estimate N: %v", v)
	}
}

func TestPoissonTail(t *testing.T) {
	if poissonTail(0, 0) != 1 || poissonTail(0, 1) != 0 {
		t.Fatal("degenerate Poisson tails wrong")
	}
	// P(X≥1) = 1 − e^{−λ}.
	if got, want := poissonTail(2, 1), 1-math.Exp(-2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("tail=%v want %v", got, want)
	}
	// Tails decrease in k.
	if !(poissonTail(3, 2) > poissonTail(3, 5)) {
		t.Fatal("tail must decrease in k")
	}
}

func TestEuclideanLSHSampler(t *testing.T) {
	recs := dataset.Vectors(500, 16, 4, 0.1, true, 13)
	s := NewEuclideanLSHSampler(recs, 0.8, 14)
	exact := simselect.NewEuclideanIndex(recs)
	if s.Name() != "DB-SE" || s.SizeBytes() <= 0 {
		t.Fatal("metadata wrong")
	}
	q := recs[3]
	prev := -1.0
	var ratioSum float64
	var n int
	for theta := 0.1; theta <= 0.8; theta += 0.1 {
		v := s.Estimate(q, theta)
		if v < prev-1e-9 {
			t.Fatal("LSH sampler must be monotone")
		}
		prev = v
		actual := math.Max(float64(exact.Count(q, theta)), 1)
		ratioSum += math.Max(math.Max(v, 1)/actual, actual/math.Max(v, 1))
		n++
	}
	if avg := ratioSum / float64(n); avg > 30 {
		t.Fatalf("LSH sampler wildly off: mean q-error %.1f", avg)
	}
}

func TestEuclideanLSHSamplerEmpty(t *testing.T) {
	s := NewEuclideanLSHSampler(nil, 0.8, 1)
	if s.Estimate([]float64{1}, 0.5) != 0 {
		t.Fatal("empty dataset must estimate 0")
	}
}

// Numeric gradient check of one lattice unit: parameters must match
// central differences of the interpolated output.
func TestLatticeUnitGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	u := newLatticeUnit(rng, 6, 3, 4)
	x := []float64{0.3, -0.2, 0.9, 0.1, -0.5, 0.7}
	tauNorm := 0.4

	out, fwd := u.forward(x, tauNorm)
	_ = out
	for _, p := range u.params() {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
	u.backward(fwd, 1.0) // dL/dout = 1

	const h = 1e-6
	for _, p := range u.params() {
		for i := range p.Value {
			orig := p.Value[i]
			p.Value[i] = orig + h
			up, _ := u.forward(x, tauNorm)
			p.Value[i] = orig - h
			down, _ := u.forward(x, tauNorm)
			p.Value[i] = orig
			num := (up - down) / (2 * h)
			if math.Abs(num-p.Grad[i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("param %s[%d]: analytic %v numeric %v", p.Name, i, p.Grad[i], num)
			}
		}
	}
}

func TestFlattenShapes(t *testing.T) {
	f := newFixture(t)
	x, tau, y := flatten(f.train, 12)
	wantRows := f.train.NumQueries() * (f.train.TauTop + 1)
	if len(x) != wantRows || len(tau) != wantRows || len(y) != wantRows {
		t.Fatalf("flatten rows %d want %d", len(x), wantRows)
	}
	if len(x[0]) != f.train.X.Cols+1 {
		t.Fatalf("flatten cols %d", len(x[0]))
	}
	if x[0][len(x[0])-1] != 0 || x[12][len(x[0])-1] != 1 {
		t.Fatal("τ feature not normalized to [0,1]")
	}
}

func TestLog1pRoundTrip(t *testing.T) {
	ys := []float64{0, 1, 10, 1234}
	logs := log1pTargets(ys)
	for i, v := range logs {
		if got := fromLog(v); math.Abs(got-ys[i]) > 1e-9 {
			t.Fatalf("round trip %v -> %v", ys[i], got)
		}
	}
	if fromLog(math.Inf(-1)) != 0 || fromLog(-5) != 0 {
		t.Fatal("fromLog must clamp at zero")
	}
	if log1pTargets([]float64{-3})[0] != 0 {
		t.Fatal("negative counts clamp to 0")
	}
}
