package baselines

import (
	"math"
	"math/rand"
)

// KDE is TL-KDE: a Gaussian-kernel estimator over the distances from the
// query to a fixed sample (Mattig et al., EDBT 2018 style, on metric data):
//
//	ĉ(q, θ) = N/|S| · Σ_{s∈S} Φ((θ − f(q,s)) / h),
//
// where Φ is the standard normal CDF. The smoothed indicator is monotone in
// θ, so the estimate is monotone. The bandwidth defaults to a Silverman-style
// rule over the sample's pairwise distances.
type KDE[R any] struct {
	Sample    []R
	N         int
	Bandwidth float64
	Distance  func(a, b R) float64
}

// NewKDE draws a sample of k records and fits the bandwidth.
func NewKDE[R any](records []R, k int, d func(a, b R) float64, seed int64) *KDE[R] {
	rng := rand.New(rand.NewSource(seed))
	if k > len(records) {
		k = len(records)
	}
	perm := rng.Perm(len(records))
	m := &KDE[R]{N: len(records), Distance: d}
	for _, i := range perm[:k] {
		m.Sample = append(m.Sample, records[i])
	}
	// Bandwidth: Silverman's rule on a subsample of pairwise distances.
	var dists []float64
	for i := 0; i < len(m.Sample) && i < 64; i++ {
		for j := i + 1; j < len(m.Sample) && j < 64; j++ {
			dists = append(dists, d(m.Sample[i], m.Sample[j]))
		}
	}
	m.Bandwidth = silverman(dists)
	return m
}

func silverman(dists []float64) float64 {
	if len(dists) == 0 {
		return 1
	}
	var mean float64
	for _, v := range dists {
		mean += v
	}
	mean /= float64(len(dists))
	var varsum float64
	for _, v := range dists {
		varsum += (v - mean) * (v - mean)
	}
	std := math.Sqrt(varsum / float64(len(dists)))
	h := 1.06 * std * math.Pow(float64(len(dists)), -0.2)
	if h <= 0 {
		return 1
	}
	return h
}

// Name identifies the model.
func (m *KDE[R]) Name() string { return "TL-KDE" }

// Estimate sums the smoothed indicators.
func (m *KDE[R]) Estimate(q R, theta float64) float64 {
	if len(m.Sample) == 0 {
		return 0
	}
	var s float64
	for _, rec := range m.Sample {
		s += stdNormCDF((theta - m.Distance(q, rec)) / m.Bandwidth)
	}
	return s * float64(m.N) / float64(len(m.Sample))
}

// SizeBytes counts the kernel instances (8 bytes per stored distance score
// is not meaningful; the sample itself dominates, approximated at 8 bytes
// per scalar is left to callers — here we report the sample count).
func (m *KDE[R]) SizeBytes() int { return len(m.Sample) * 16 }

func stdNormCDF(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }
