package baselines

import (
	"math"
	"testing"

	"cardnet/internal/dataset"
	"cardnet/internal/simselect"
	"cardnet/internal/tensor"
)

// bilstmFixture builds a small edit-distance workload with per-τ labels.
func bilstmFixture(t *testing.T) (queries []string, labels *tensor.Matrix, tauTop int, ix *simselect.EditIndex) {
	t.Helper()
	recs := dataset.Strings(300, 25, 3, 0.15, 21)
	ix = simselect.NewEditIndex(recs)
	tauTop = 6
	queries = recs[:60]
	labels = tensor.NewMatrix(len(queries), tauTop+1)
	for qi, q := range queries {
		cum := ix.CountAtEach(q, tauTop)
		for tau := 0; tau <= tauTop; tau++ {
			labels.Set(qi, tau, float64(cum[tau]))
		}
	}
	return queries, labels, tauTop, ix
}

func TestBiLSTMUnfittedReturnsZero(t *testing.T) {
	m := NewBiLSTM(6)
	if m.EstimateString("abc", 3) != 0 || m.SizeBytes() != 0 {
		t.Fatal("unfitted model must be inert")
	}
	if m.Name() != "DL-BiLSTM" {
		t.Fatal("name")
	}
}

func TestBiLSTMFitsAndBeatsConstant(t *testing.T) {
	queries, labels, tauTop, ix := bilstmFixture(t)
	m := NewBiLSTM(tauTop)
	m.Fit_.Epochs = 25
	m.FitStrings(queries, labels, tauTop)
	if m.SizeBytes() <= 0 {
		t.Fatal("size must be positive after fit")
	}

	// Mean label as the trivial baseline.
	var mean float64
	for _, v := range labels.Data {
		mean += v
	}
	mean /= float64(len(labels.Data))

	recs := dataset.Strings(300, 25, 3, 0.15, 21)
	var mQ, cQ float64
	n := 0
	for i := 60; i < 90; i++ {
		q := recs[i]
		cum := ix.CountAtEach(q, tauTop)
		for tau := 0; tau <= tauTop; tau += 2 {
			actual := math.Max(float64(cum[tau]), 1)
			est := math.Max(m.EstimateString(q, tau), 1)
			mQ += math.Max(actual/est, est/actual)
			cm := math.Max(mean, 1)
			cQ += math.Max(actual/cm, cm/actual)
			n++
		}
	}
	mQ /= float64(n)
	cQ /= float64(n)
	t.Logf("BiLSTM q-error %.3f vs constant %.3f", mQ, cQ)
	if mQ > cQ {
		t.Fatalf("BiLSTM (%.3f) does not beat constant predictor (%.3f)", mQ, cQ)
	}
}

func TestBiLSTMMonotoneAndDeterministic(t *testing.T) {
	queries, labels, tauTop, _ := bilstmFixture(t)
	m := NewBiLSTM(tauTop)
	m.Fit_.Epochs = 5
	m.FitStrings(queries, labels, tauTop)
	for _, q := range queries[:10] {
		prev := -1.0
		for tau := 0; tau <= tauTop; tau++ {
			v := m.EstimateString(q, tau)
			if v < prev-1e-9 {
				t.Fatalf("not monotone at %q τ=%d", q, tau)
			}
			if v != m.EstimateString(q, tau) {
				t.Fatal("must be deterministic")
			}
			prev = v
		}
	}
	// τ clamping.
	if m.EstimateString(queries[0], -1) != 0 {
		t.Fatal("negative τ must estimate 0")
	}
	if m.EstimateString(queries[0], 99) != m.EstimateString(queries[0], tauTop) {
		t.Fatal("overflow τ must clamp")
	}
}

func TestBiLSTMHandlesUnknownCharsAndLongStrings(t *testing.T) {
	queries, labels, tauTop, _ := bilstmFixture(t)
	m := NewBiLSTM(tauTop)
	m.Fit_.Epochs = 2
	m.FitStrings(queries, labels, tauTop)
	long := make([]byte, 200)
	for i := range long {
		long[i] = byte('A' + i%60) // mostly out-of-alphabet
	}
	v := m.EstimateString(string(long), 3)
	if v < 0 || math.IsNaN(v) {
		t.Fatalf("bad estimate on odd input: %v", v)
	}
	if m.EstimateString("", 3) < 0 {
		t.Fatal("empty string must not break")
	}
}
