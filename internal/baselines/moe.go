package baselines

import (
	"math/rand"

	"cardnet/internal/core"
	"cardnet/internal/nn"
	"cardnet/internal/tensor"
)

// MoE is DL-MoE (Shazeer et al.'s sparsely-gated mixture-of-experts adapted
// to regression): a gating network produces a softmax over K expert FNNs and
// the prediction is the gate-weighted sum of expert outputs. Trained
// end-to-end on log-space MSE; the softmax gate is fully differentiable
// (dense gating — the sparse top-k variant reduces compute, not accuracy, at
// this scale).
type MoE struct {
	TauMax  int
	Experts int
	Hidden  []int
	Fit_    fitCfg

	gate    *nn.Sequential
	experts []*nn.Sequential
	inDim   int
}

// NewMoE builds a 4-expert mixture.
func NewMoE(tauMax int) *MoE {
	return &MoE{TauMax: tauMax, Experts: 4, Hidden: []int{48, 32}, Fit_: defaultFit()}
}

// Name identifies the model.
func (m *MoE) Name() string { return "DL-MoE" }

// Fit trains the gate and experts jointly.
func (m *MoE) Fit(train, _ *core.TrainSet) {
	x, _, y := flatten(train, m.TauMax)
	if len(x) == 0 {
		return
	}
	m.inDim = len(x[0])
	ylog := log1pTargets(y)
	rng := rand.New(rand.NewSource(m.Fit_.Seed))

	m.gate = nn.NewMLP(rng, []int{m.inDim, 32, m.Experts}, nn.ReLU, nn.Identity)
	m.experts = make([]*nn.Sequential, m.Experts)
	var params []*nn.Param
	params = append(params, m.gate.Params()...)
	for k := range m.experts {
		dims := append([]int{m.inDim}, m.Hidden...)
		dims = append(dims, 1)
		m.experts[k] = nn.NewMLP(rng, dims, nn.ReLU, nn.Identity)
		params = append(params, m.experts[k].Params()...)
	}
	opt := nn.NewAdam(params, m.Fit_.LR)

	perm := make([]int, len(x))
	for i := range perm {
		perm[i] = i
	}
	for e := 0; e < m.Fit_.Epochs; e++ {
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for start := 0; start < len(perm); start += m.Fit_.Batch {
			end := start + m.Fit_.Batch
			if end > len(perm) {
				end = len(perm)
			}
			rows := perm[start:end]
			b := len(rows)
			xb := tensor.NewMatrix(b, m.inDim)
			yb := make([]float64, b)
			for i, r := range rows {
				copy(xb.Row(i), x[r])
				yb[i] = ylog[r]
			}

			logits := m.gate.Forward(xb, true)
			gates := nn.Softmax(logits)
			outs := make([]*tensor.Matrix, m.Experts)
			for k := range m.experts {
				outs[k] = m.experts[k].Forward(xb, true)
			}
			pred := make([]float64, b)
			for i := 0; i < b; i++ {
				for k := 0; k < m.Experts; k++ {
					pred[i] += gates.At(i, k) * outs[k].Data[i]
				}
			}

			// Backward: dL/dpred, split into expert and gate paths.
			dLogits := tensor.NewMatrix(b, m.Experts)
			dOuts := make([]*tensor.Matrix, m.Experts)
			for k := range dOuts {
				dOuts[k] = tensor.NewMatrix(b, 1)
			}
			for i := 0; i < b; i++ {
				g := nn.MSEGrad(pred[i], yb[i], b)
				// Expert path: d pred/d out_k = gate_k.
				var dot float64
				for k := 0; k < m.Experts; k++ {
					dOuts[k].Data[i] = g * gates.At(i, k)
					dot += gates.At(i, k) * outs[k].Data[i]
				}
				// Gate path through softmax: dL/dlogit_k =
				// g·gate_k·(out_k − Σ_j gate_j·out_j).
				for k := 0; k < m.Experts; k++ {
					dLogits.Set(i, k, g*gates.At(i, k)*(outs[k].Data[i]-dot))
				}
			}
			for k := range m.experts {
				m.experts[k].Backward(dOuts[k])
			}
			m.gate.Backward(dLogits)
			nn.ClipGradNorm(params, 5)
			opt.Step()
		}
	}
}

// Estimate computes the gated mixture output.
func (m *MoE) Estimate(x []float64, tau int) float64 {
	if m.gate == nil {
		return 0
	}
	row := make([]float64, len(x)+1)
	copy(row, x)
	if m.TauMax > 0 {
		row[len(x)] = float64(tau) / float64(m.TauMax)
	}
	xm := &tensor.Matrix{Rows: 1, Cols: len(row), Data: row}
	gates := nn.Softmax(m.gate.Forward(xm, false))
	var pred float64
	for k, ex := range m.experts {
		pred += gates.At(0, k) * ex.Forward(xm, false).Data[0]
	}
	return fromLog(pred)
}

// SizeBytes sums gate and expert parameters.
func (m *MoE) SizeBytes() int {
	if m.gate == nil {
		return 0
	}
	n := nn.ParamBytes(m.gate.Params())
	for _, ex := range m.experts {
		n += nn.ParamBytes(ex.Params())
	}
	return n
}
