package baselines

import (
	"math/rand"

	"cardnet/internal/core"
	"cardnet/internal/nn"
	"cardnet/internal/tensor"
)

// fitCfg bundles the shared FNN training hyperparameters of the deep
// baselines.
type fitCfg struct {
	Epochs int
	Batch  int
	LR     float64
	Seed   int64
}

func defaultFit() fitCfg { return fitCfg{Epochs: 40, Batch: 64, LR: 1e-3, Seed: 1} }

// fitRegressor trains an MLP on rows → scalar log1p-count targets with MSE
// in log space (equivalent to MSLE on counts) and returns the final loss.
func fitRegressor(mlp *nn.Sequential, x [][]float64, ylog []float64, cfg fitCfg) float64 {
	if len(x) == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := nn.NewAdam(mlp.Params(), cfg.LR)
	perm := make([]int, len(x))
	for i := range perm {
		perm[i] = i
	}
	var last float64
	for e := 0; e < cfg.Epochs; e++ {
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		var total float64
		var batches int
		for start := 0; start < len(perm); start += cfg.Batch {
			end := start + cfg.Batch
			if end > len(perm) {
				end = len(perm)
			}
			rows := perm[start:end]
			xb := tensor.NewMatrix(len(rows), len(x[0]))
			yb := make([]float64, len(rows))
			for i, r := range rows {
				copy(xb.Row(i), x[r])
				yb[i] = ylog[r]
			}
			out := mlp.Forward(xb, true)
			grad := tensor.NewMatrix(out.Rows, 1)
			for i := range yb {
				grad.Data[i] = nn.MSEGrad(out.Data[i], yb[i], len(yb))
			}
			total += nn.MSE(out.Data, yb)
			batches++
			mlp.Backward(grad)
			nn.ClipGradNorm(mlp.Params(), 5)
			opt.Step()
		}
		if batches > 0 {
			last = total / float64(batches)
		}
	}
	return last
}

// DNN is DL-DNN: one vanilla FNN with four hidden layers on the
// concatenation [x; τ/τmax], the "simply feed a deep network the training
// data" baseline. Not monotone.
type DNN struct {
	TauMax int
	Hidden []int
	Fit_   fitCfg
	mlp    *nn.Sequential
	inDim  int
}

// NewDNN builds the baseline with the paper's four hidden layers (scaled).
func NewDNN(tauMax int) *DNN {
	return &DNN{TauMax: tauMax, Hidden: []int{64, 64, 32, 32}, Fit_: defaultFit()}
}

// Name identifies the model.
func (d *DNN) Name() string { return "DL-DNN" }

// Fit trains on the flattened rows.
func (d *DNN) Fit(train, _ *core.TrainSet) {
	x, _, y := flatten(train, d.TauMax)
	if len(x) == 0 {
		return
	}
	d.inDim = len(x[0])
	rng := rand.New(rand.NewSource(d.Fit_.Seed))
	dims := append([]int{d.inDim}, d.Hidden...)
	dims = append(dims, 1)
	d.mlp = nn.NewMLP(rng, dims, nn.ReLU, nn.Identity)
	fitRegressor(d.mlp, x, log1pTargets(y), d.Fit_)
}

// Estimate runs the FNN.
func (d *DNN) Estimate(x []float64, tau int) float64 {
	if d.mlp == nil {
		return 0
	}
	row := make([]float64, len(x)+1)
	copy(row, x)
	if d.TauMax > 0 {
		row[len(x)] = float64(tau) / float64(d.TauMax)
	}
	xm := &tensor.Matrix{Rows: 1, Cols: len(row), Data: row}
	return fromLog(d.mlp.Forward(xm, false).Data[0])
}

// SizeBytes reports the serialized parameter size.
func (d *DNN) SizeBytes() int {
	if d.mlp == nil {
		return 0
	}
	return nn.ParamBytes(d.mlp.Params())
}

// DNNPerTau is DL-DNNsτ: τmax+1 independently trained networks, the i-th
// predicting the cardinality at τ=i. More parameters than DL-DNN and prone
// to overfitting, as the paper observes.
type DNNPerTau struct {
	TauMax int
	Hidden []int
	Fit_   fitCfg
	nets   []*nn.Sequential
}

// NewDNNPerTau builds the per-τ ensemble with small member networks.
func NewDNNPerTau(tauMax int) *DNNPerTau {
	return &DNNPerTau{TauMax: tauMax, Hidden: []int{48, 32}, Fit_: defaultFit()}
}

// Name identifies the model.
func (d *DNNPerTau) Name() string { return "DL-DNNst" }

// Fit trains one network per τ on that τ's labels.
func (d *DNNPerTau) Fit(train, _ *core.TrainSet) {
	d.nets = make([]*nn.Sequential, d.TauMax+1)
	inDim := train.X.Cols
	for t := 0; t <= train.TauTop && t <= d.TauMax; t++ {
		rng := rand.New(rand.NewSource(d.Fit_.Seed + int64(t)))
		dims := append([]int{inDim}, d.Hidden...)
		dims = append(dims, 1)
		net := nn.NewMLP(rng, dims, nn.ReLU, nn.Identity)
		x := make([][]float64, train.NumQueries())
		y := make([]float64, train.NumQueries())
		for q := 0; q < train.NumQueries(); q++ {
			x[q] = train.X.Row(q)
			y[q] = train.Labels.At(q, t)
		}
		cfg := d.Fit_
		cfg.Epochs = cfg.Epochs / 2 // per-τ nets see 1/(τ+1) of the data each
		if cfg.Epochs < 5 {
			cfg.Epochs = 5
		}
		fitRegressor(net, x, log1pTargets(y), cfg)
		d.nets[t] = net
	}
}

// Estimate evaluates the τ-th network.
func (d *DNNPerTau) Estimate(x []float64, tau int) float64 {
	if tau < 0 {
		return 0
	}
	if tau >= len(d.nets) {
		tau = len(d.nets) - 1
	}
	for tau >= 0 && d.nets[tau] == nil {
		tau--
	}
	if tau < 0 {
		return 0
	}
	xm := &tensor.Matrix{Rows: 1, Cols: len(x), Data: x}
	return fromLog(d.nets[tau].Forward(xm, false).Data[0])
}

// SizeBytes sums all member networks.
func (d *DNNPerTau) SizeBytes() int {
	n := 0
	for _, net := range d.nets {
		if net != nil {
			n += nn.ParamBytes(net.Params())
		}
	}
	return n
}
