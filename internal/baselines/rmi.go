package baselines

import (
	"math"
	"math/rand"

	"cardnet/internal/core"
	"cardnet/internal/nn"
	"cardnet/internal/tensor"
)

// RMI is DL-RMI (Kraska et al.'s recursive-model index adapted to
// regression, as the paper does): a root FNN predicts a coarse log
// cardinality, which routes each example to one of M leaf FNNs trained only
// on the examples routed there. The staged specialization gives good
// accuracy but the paper notes mispredictions near region boundaries — the
// behaviour this implementation reproduces.
type RMI struct {
	TauMax int
	Leaves int
	Hidden []int
	Fit_   fitCfg

	root     *nn.Sequential
	leaf     []*nn.Sequential
	minL     float64 // routing range in log space
	maxL     float64
	inDim    int
	fallback float64
}

// NewRMI builds a two-stage RMI with 4 leaves.
func NewRMI(tauMax int) *RMI {
	return &RMI{TauMax: tauMax, Leaves: 4, Hidden: []int{48, 32}, Fit_: defaultFit()}
}

// Name identifies the model.
func (m *RMI) Name() string { return "DL-RMI" }

// route maps a root prediction to a leaf index.
func (m *RMI) route(rootPred float64) int {
	if m.maxL <= m.minL {
		return 0
	}
	f := (rootPred - m.minL) / (m.maxL - m.minL)
	k := int(f * float64(m.Leaves))
	if k < 0 {
		k = 0
	}
	if k >= m.Leaves {
		k = m.Leaves - 1
	}
	return k
}

// Fit trains the root on all data, then each leaf on its routed share.
func (m *RMI) Fit(train, _ *core.TrainSet) {
	x, _, y := flatten(train, m.TauMax)
	if len(x) == 0 {
		return
	}
	m.inDim = len(x[0])
	ylog := log1pTargets(y)
	m.minL, m.maxL = math.Inf(1), math.Inf(-1)
	for _, v := range ylog {
		m.minL = math.Min(m.minL, v)
		m.maxL = math.Max(m.maxL, v)
		m.fallback += v
	}
	m.fallback /= float64(len(ylog))

	rng := rand.New(rand.NewSource(m.Fit_.Seed))
	dims := append([]int{m.inDim}, m.Hidden...)
	dims = append(dims, 1)
	m.root = nn.NewMLP(rng, dims, nn.ReLU, nn.Identity)
	fitRegressor(m.root, x, ylog, m.Fit_)

	// Route and train leaves.
	routedX := make([][][]float64, m.Leaves)
	routedY := make([][]float64, m.Leaves)
	for i := range x {
		xm := &tensor.Matrix{Rows: 1, Cols: m.inDim, Data: x[i]}
		k := m.route(m.root.Forward(xm, false).Data[0])
		routedX[k] = append(routedX[k], x[i])
		routedY[k] = append(routedY[k], ylog[i])
	}
	m.leaf = make([]*nn.Sequential, m.Leaves)
	for k := 0; k < m.Leaves; k++ {
		if len(routedX[k]) < 8 {
			continue // too few examples: fall back to the root
		}
		ldims := append([]int{m.inDim}, m.Hidden...)
		ldims = append(ldims, 1)
		m.leaf[k] = nn.NewMLP(rng, ldims, nn.ReLU, nn.Identity)
		cfg := m.Fit_
		fitRegressor(m.leaf[k], routedX[k], routedY[k], cfg)
	}
}

// Estimate routes through the root then evaluates the leaf.
func (m *RMI) Estimate(x []float64, tau int) float64 {
	if m.root == nil {
		return 0
	}
	row := make([]float64, len(x)+1)
	copy(row, x)
	if m.TauMax > 0 {
		row[len(x)] = float64(tau) / float64(m.TauMax)
	}
	xm := &tensor.Matrix{Rows: 1, Cols: len(row), Data: row}
	rootPred := m.root.Forward(xm, false).Data[0]
	k := m.route(rootPred)
	if m.leaf[k] == nil {
		return fromLog(rootPred)
	}
	return fromLog(m.leaf[k].Forward(xm, false).Data[0])
}

// SizeBytes sums root and leaf parameters.
func (m *RMI) SizeBytes() int {
	if m.root == nil {
		return 0
	}
	n := nn.ParamBytes(m.root.Params())
	for _, l := range m.leaf {
		if l != nil {
			n += nn.ParamBytes(l.Params())
		}
	}
	return n
}
