package baselines

import "math/rand"

// UniformSample is DB-US: it keeps a fixed uniform sample of the dataset and
// scales the sample's selection count to the full size. The sample is
// deterministic w.r.t. the query, so the estimate is monotone in θ.
type UniformSample[R any] struct {
	Sample   []R
	N        int // full dataset size
	Distance func(a, b R) float64
}

// NewUniformSample draws ⌈ratio·n⌉ records.
func NewUniformSample[R any](records []R, ratio float64, d func(a, b R) float64, seed int64) *UniformSample[R] {
	rng := rand.New(rand.NewSource(seed))
	k := int(ratio*float64(len(records)) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > len(records) {
		k = len(records)
	}
	perm := rng.Perm(len(records))
	s := &UniformSample[R]{N: len(records), Distance: d}
	for _, i := range perm[:k] {
		s.Sample = append(s.Sample, records[i])
	}
	return s
}

// Name identifies the model in experiment output.
func (s *UniformSample[R]) Name() string { return "DB-US" }

// Estimate scans the sample and scales up.
func (s *UniformSample[R]) Estimate(q R, theta float64) float64 {
	if len(s.Sample) == 0 {
		return 0
	}
	cnt := 0
	for _, rec := range s.Sample {
		if s.Distance(q, rec) <= theta {
			cnt++
		}
	}
	return float64(cnt) * float64(s.N) / float64(len(s.Sample))
}

// SizeBytes reports zero: the sample is the dataset's own records (the paper
// reports DB-US with ~zero model size).
func (s *UniformSample[R]) SizeBytes() int { return 0 }
