package baselines

import (
	"math"
	"sort"

	"cardnet/internal/dist"
	"cardnet/internal/feature"
)

// HammingHistogram is DB-SE for Hamming distance, in the style of the GPH
// histogram estimator: dimensions are partitioned into groups of at most
// groupBits bits; each group keeps a pattern→count table; at query time the
// per-group distance distributions are computed exactly from the tables and
// convolved under an independence assumption. The estimate N·P(dist ≤ θ) is
// monotone in θ.
type HammingHistogram struct {
	N         int
	Dim       int
	GroupBits int
	groups    []map[uint64]int // pattern counts per group
}

// NewHammingHistogram builds the per-group pattern tables.
func NewHammingHistogram(records []dist.BitVector, groupBits int) *HammingHistogram {
	if groupBits < 1 {
		groupBits = 8
	}
	h := &HammingHistogram{N: len(records), GroupBits: groupBits}
	if len(records) == 0 {
		return h
	}
	h.Dim = records[0].Len
	nGroups := (h.Dim + groupBits - 1) / groupBits
	h.groups = make([]map[uint64]int, nGroups)
	for g := range h.groups {
		h.groups[g] = map[uint64]int{}
	}
	for _, r := range records {
		for g := range h.groups {
			h.groups[g][h.pattern(r, g)]++
		}
	}
	return h
}

// pattern extracts group g's bits as an integer.
func (h *HammingHistogram) pattern(r dist.BitVector, g int) uint64 {
	var p uint64
	lo := g * h.GroupBits
	hi := lo + h.GroupBits
	if hi > h.Dim {
		hi = h.Dim
	}
	for i := lo; i < hi; i++ {
		if r.Bit(i) {
			p |= 1 << (i - lo)
		}
	}
	return p
}

// Name identifies the model.
func (h *HammingHistogram) Name() string { return "DB-SE" }

// Estimate convolves per-group distance distributions.
func (h *HammingHistogram) Estimate(q dist.BitVector, theta float64) float64 {
	k := int(theta)
	if h.N == 0 {
		return 0
	}
	// dist[d] = probability of total distance d over processed groups.
	cur := []float64{1}
	for g := range h.groups {
		qp := h.pattern(q, g)
		groupDist := make([]float64, h.GroupBits+1)
		for pat, cnt := range h.groups[g] {
			d := popcount64(pat ^ qp)
			groupDist[d] += float64(cnt) / float64(h.N)
		}
		next := make([]float64, minInt(len(cur)+h.GroupBits, k+1)+1)
		for a, pa := range cur {
			if pa == 0 {
				continue
			}
			for b, pb := range groupDist {
				if pb == 0 || a+b >= len(next) {
					continue
				}
				next[a+b] += pa * pb
			}
		}
		cur = next
	}
	var p float64
	for d := 0; d <= k && d < len(cur); d++ {
		p += cur[d]
	}
	return p * float64(h.N)
}

// SizeBytes approximates the pattern-table storage.
func (h *HammingHistogram) SizeBytes() int {
	n := 0
	for _, g := range h.groups {
		n += len(g) * 12
	}
	return n
}

// EditGramIndex is DB-SE for edit distance in the style of q-gram
// inverted-index estimators (SEPIA-like): it counts the records that pass
// the length filter and the q-gram count filter at threshold θ. The count
// filter's requirement weakens as θ grows, so the estimate is monotone; as a
// necessary-condition count it systematically overestimates, the behaviour
// the paper reports for DB-SE on edit distance.
type EditGramIndex struct {
	Q        int
	lens     []int
	grams    []map[uint64]int // gram multiset per record
	inverted map[uint64][]int
}

// NewEditGramIndex builds a 2-gram inverted index.
func NewEditGramIndex(records []string) *EditGramIndex {
	ix := &EditGramIndex{Q: 2, inverted: map[uint64][]int{}}
	for id, s := range records {
		ix.lens = append(ix.lens, len(s))
		gm := map[uint64]int{}
		for i := 0; i+ix.Q <= len(s); i++ {
			gm[hashGramStr(s[i:i+ix.Q])]++
		}
		if len(s) > 0 && len(s) < ix.Q {
			gm[hashGramStr(s)]++
		}
		ix.grams = append(ix.grams, gm)
		for g := range gm {
			ix.inverted[g] = append(ix.inverted[g], id)
		}
	}
	return ix
}

// Name identifies the model.
func (ix *EditGramIndex) Name() string { return "DB-SE" }

// Estimate counts filter-passing records via the inverted lists.
func (ix *EditGramIndex) Estimate(q string, theta float64) float64 {
	k := int(theta)
	qg := map[uint64]int{}
	for i := 0; i+ix.Q <= len(q); i++ {
		qg[hashGramStr(q[i:i+ix.Q])]++
	}
	if len(q) > 0 && len(q) < ix.Q {
		qg[hashGramStr(q)]++
	}
	shared := map[int]int{}
	for g, qc := range qg {
		for _, id := range ix.inverted[g] {
			rc := ix.grams[id][g]
			if rc < qc {
				shared[id] += rc
			} else {
				shared[id] += qc
			}
		}
	}
	cnt := 0
	for id, l := range ix.lens {
		if absInt(l-len(q)) > k {
			continue
		}
		maxLen := l
		if len(q) > maxLen {
			maxLen = len(q)
		}
		need := maxLen - ix.Q + 1 - k*ix.Q
		if need <= 0 || shared[id] >= need {
			cnt++
		}
	}
	return float64(cnt)
}

// SizeBytes approximates the inverted-index storage.
func (ix *EditGramIndex) SizeBytes() int {
	n := len(ix.lens) * 8
	for _, l := range ix.inverted {
		n += len(l) * 8
	}
	return n
}

// JaccardLattice is DB-SE for Jaccard distance in the spirit of the
// semi-lattice / power-law estimators: records are bucketed by set size and
// each bucket keeps per-token document frequencies; at query time the
// overlap with a random bucket member is modelled as Poisson with mean
// Σ_{t∈q} df(t)/|bucket| and the estimate sums each bucket's tail
// probability above the overlap the threshold requires. Monotone in θ
// because the required overlap shrinks as θ grows.
type JaccardLattice struct {
	buckets []jcBucket
}

type jcBucket struct {
	size  int // representative set size
	count int
	df    map[uint32]int
}

// NewJaccardLattice buckets records by exact size.
func NewJaccardLattice(records []dist.IntSet) *JaccardLattice {
	bySize := map[int]*jcBucket{}
	for _, r := range records {
		b := bySize[len(r)]
		if b == nil {
			b = &jcBucket{size: len(r), df: map[uint32]int{}}
			bySize[len(r)] = b
		}
		b.count++
		for _, t := range r {
			b.df[t]++
		}
	}
	l := &JaccardLattice{}
	for _, b := range bySize {
		l.buckets = append(l.buckets, *b)
	}
	return l
}

// Name identifies the model.
func (l *JaccardLattice) Name() string { return "DB-SE" }

// Estimate sums Poisson tails per size bucket.
func (l *JaccardLattice) Estimate(q dist.IntSet, theta float64) float64 {
	sim := 1 - theta
	var total float64
	for _, b := range l.buckets {
		if b.count == 0 || b.size == 0 {
			continue
		}
		// Required overlap: J = ov/(|q|+|y|−ov) ≥ sim ⇒
		// ov ≥ sim·(|q|+|y|)/(1+sim).
		need := int(math.Ceil(sim * float64(len(q)+b.size) / (1 + sim)))
		if need <= 0 {
			total += float64(b.count)
			continue
		}
		if need > len(q) || need > b.size {
			continue
		}
		var lambda float64
		for _, t := range q {
			lambda += float64(b.df[t]) / float64(b.count)
		}
		total += float64(b.count) * poissonTail(lambda, need)
	}
	return total
}

// SizeBytes approximates the frequency-table storage.
func (l *JaccardLattice) SizeBytes() int {
	n := 0
	for _, b := range l.buckets {
		n += len(b.df)*12 + 16
	}
	return n
}

// poissonTail returns P(X ≥ k) for X ~ Poisson(λ).
func poissonTail(lambda float64, k int) float64 {
	if lambda <= 0 {
		if k <= 0 {
			return 1
		}
		return 0
	}
	term := math.Exp(-lambda)
	var cdf float64
	for i := 0; i < k; i++ {
		cdf += term
		term *= lambda / float64(i+1)
	}
	if cdf > 1 {
		cdf = 1
	}
	return 1 - cdf
}

// EuclideanLSHSampler is DB-SE for Euclidean distance in the style of
// LSH-based local-density estimation (Wu et al., ICML 2018): L tables of t
// concatenated p-stable hashes retrieve colliding records; each collider at
// exact distance d is importance-weighted by the inverse probability
// 1−(1−ϵ(d)^t)^L that a record at that distance collides in at least one
// table. Summing weights of colliders within θ estimates the cardinality.
type EuclideanLSHSampler struct {
	Records [][]float64
	L, T    int
	ext     *feature.EuclideanExtractor
	tables  []map[string][]int
}

// NewEuclideanLSHSampler builds L=8 tables of t=2 hashes each.
func NewEuclideanLSHSampler(records [][]float64, thetaMax float64, seed int64) *EuclideanLSHSampler {
	s := &EuclideanLSHSampler{Records: records, L: 8, T: 2}
	if len(records) == 0 {
		return s
	}
	dim := len(records[0])
	// r tuned to ~θmax so nearby points collide with useful probability.
	s.ext = feature.NewEuclideanExtractor(s.L*s.T, dim, 64, thetaMax, thetaMax, 1, seed)
	s.tables = make([]map[string][]int, s.L)
	for l := range s.tables {
		s.tables[l] = map[string][]int{}
	}
	for id, rec := range records {
		for l := 0; l < s.L; l++ {
			key := s.key(l, rec)
			s.tables[l][key] = append(s.tables[l][key], id)
		}
	}
	return s
}

func (s *EuclideanLSHSampler) key(l int, v []float64) string {
	buf := make([]byte, 0, s.T*2)
	for t := 0; t < s.T; t++ {
		h := s.ext.HashValue(l*s.T+t, v)
		buf = append(buf, byte(h), byte(h>>8))
	}
	return string(buf)
}

// Name identifies the model.
func (s *EuclideanLSHSampler) Name() string { return "DB-SE" }

// maxExamined bounds how many colliders are verified with an exact distance
// per estimate; the rest are extrapolated. A sampling estimator that
// verified every collider would be nearly exact (and nearly as slow as the
// selection itself), which is not what the paper's DB-SE behaves like.
const maxExamined = 48

// Estimate importance-weights a deterministic sample of the colliding
// records (a strided subset of the id-sorted colliders, so estimates stay
// deterministic and monotone in θ).
func (s *EuclideanLSHSampler) Estimate(q []float64, theta float64) float64 {
	if s.ext == nil {
		return 0
	}
	collSet := map[int]bool{}
	for l := 0; l < s.L; l++ {
		for _, id := range s.tables[l][s.key(l, q)] {
			collSet[id] = true
		}
	}
	colliders := make([]int, 0, len(collSet))
	for id := range collSet {
		colliders = append(colliders, id)
	}
	sort.Ints(colliders)
	stride := 1
	if len(colliders) > maxExamined {
		stride = (len(colliders) + maxExamined - 1) / maxExamined
	}
	var total float64
	examined := 0
	for i := 0; i < len(colliders); i += stride {
		examined++
		d := dist.Euclidean(q, s.Records[colliders[i]])
		if d > theta {
			continue
		}
		p1 := s.ext.CollisionProb(d)
		pTable := math.Pow(p1, float64(s.T))
		pAny := 1 - math.Pow(1-pTable, float64(s.L))
		if pAny < 1e-3 {
			pAny = 1e-3
		}
		total += 1 / pAny
	}
	if examined == 0 {
		return 0
	}
	return total * float64(len(colliders)) / float64(examined)
}

// SizeBytes approximates the table storage.
func (s *EuclideanLSHSampler) SizeBytes() int {
	n := 0
	for _, t := range s.tables {
		for _, ids := range t {
			n += len(ids)*8 + 16
		}
	}
	return n
}

func hashGramStr(g string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(g); i++ {
		h ^= uint64(g[i])
		h *= 1099511628211
	}
	return h
}

func popcount64(w uint64) int {
	w -= (w >> 1) & 0x5555555555555555
	w = (w & 0x3333333333333333) + ((w >> 2) & 0x3333333333333333)
	w = (w + (w >> 4)) & 0x0f0f0f0f0f0f0f0f
	return int((w * 0x0101010101010101) >> 56)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
