package baselines

import (
	"math"
	"math/rand"

	"cardnet/internal/core"
	"cardnet/internal/nn"
)

// DLN is DL-DLN, a compact deep-lattice-network-style monotonic regressor
// (You et al., NIPS 2017, simplified): the input features are reduced with a
// fixed random projection to a handful of dimensions, each dimension passes
// through a learned piecewise-linear calibrator, and a multilinear
// interpolation lattice over the calibrated cube produces the output. The
// threshold dimension is constrained monotone at both the calibrator (its
// knot increments are squares) and the lattice (vertex deltas along the τ
// axis are squares), so the estimate is monotone in τ. An ensemble of
// lattices with independent projections is averaged (ensembles of lattices
// scale lattices to high-dimensional inputs).
type DLN struct {
	TauMax  int
	Dims    int // lattice dimensions, including the τ axis
	Knots   int
	Members int
	Fit_    fitCfg

	units []*latticeUnit
	inDim int
}

// NewDLN builds a 4-member ensemble of 4-D lattices.
func NewDLN(tauMax int) *DLN {
	return &DLN{TauMax: tauMax, Dims: 4, Knots: 6, Members: 4, Fit_: defaultFit()}
}

// Name identifies the model.
func (m *DLN) Name() string { return "DL-DLN" }

// latticeUnit is one calibrated lattice. Dimension 0 is the monotone τ axis.
type latticeUnit struct {
	dims, knots int
	proj        [][]float64 // (dims−1) random projection rows over features
	projBias    []float64
	projScale   []float64

	// Calibrators: dimension 0 uses base+squared increments; others are free
	// knot values.
	calBase *nn.Param // dims values (knot 0)
	calInc  *nn.Param // dims×(knots−1); squared for dim 0
	// Lattice: vertices of the τ=0 face plus squared deltas to the τ=1 face.
	vertBase  *nn.Param // 2^(dims−1) values
	vertDelta *nn.Param // 2^(dims−1) values, squared
}

func newLatticeUnit(rng *rand.Rand, inDim, dims, knots int) *latticeUnit {
	u := &latticeUnit{dims: dims, knots: knots}
	for d := 0; d < dims-1; d++ {
		row := make([]float64, inDim)
		for j := range row {
			row[j] = rng.NormFloat64() / math.Sqrt(float64(inDim))
		}
		u.proj = append(u.proj, row)
		u.projBias = append(u.projBias, rng.NormFloat64()*0.1)
		u.projScale = append(u.projScale, 2)
	}
	half := 1 << (dims - 1)
	u.calBase = &nn.Param{Name: "calBase", Value: make([]float64, dims), Grad: make([]float64, dims)}
	u.calInc = &nn.Param{Name: "calInc", Value: make([]float64, dims*(knots-1)), Grad: make([]float64, dims*(knots-1))}
	u.vertBase = &nn.Param{Name: "vertBase", Value: make([]float64, half), Grad: make([]float64, half)}
	u.vertDelta = &nn.Param{Name: "vertDelta", Value: make([]float64, half), Grad: make([]float64, half)}
	for i := range u.calInc.Value {
		u.calInc.Value[i] = 0.3 + 0.1*rng.Float64()
	}
	for i := range u.vertBase.Value {
		u.vertBase.Value[i] = rng.NormFloat64() * 0.1
		u.vertDelta.Value[i] = 0.3 + 0.1*rng.Float64()
	}
	return u
}

func (u *latticeUnit) params() []*nn.Param {
	return []*nn.Param{u.calBase, u.calInc, u.vertBase, u.vertDelta}
}

// rawCoords maps a feature row + normalized τ to [0,1]^dims pre-calibration
// coordinates (dim 0 = τ).
func (u *latticeUnit) rawCoords(x []float64, tauNorm float64) []float64 {
	c := make([]float64, u.dims)
	c[0] = clamp01(tauNorm)
	for d := 1; d < u.dims; d++ {
		var dot float64
		row := u.proj[d-1]
		for j, v := range x {
			dot += row[j] * v
		}
		c[d] = sigmoid(u.projScale[d-1] * (dot + u.projBias[d-1]))
	}
	return c
}

// calValue returns knot value k of dimension d. Dim 0 accumulates squared
// increments so it is non-decreasing in k.
func (u *latticeUnit) calValue(d, k int) float64 {
	v := u.calBase.Value[d]
	for j := 0; j < k; j++ {
		inc := u.calInc.Value[d*(u.knots-1)+j]
		if d == 0 {
			v += inc * inc
		} else {
			v += inc
		}
	}
	return v
}

// calibrate evaluates the piecewise-linear calibrator of dimension d at
// t∈[0,1], returning the output and the (segment index, weight) needed for
// the backward pass.
func (u *latticeUnit) calibrate(d int, t float64) (out float64, seg int, w float64) {
	pos := t * float64(u.knots-1)
	seg = int(pos)
	if seg >= u.knots-1 {
		seg = u.knots - 2
	}
	w = pos - float64(seg)
	a := u.calValue(d, seg)
	b := u.calValue(d, seg+1)
	return clamp01(a + w*(b-a)), seg, w
}

// forward computes the lattice output and caches everything backward needs.
type latticeFwd struct {
	raw     []float64 // pre-calibration coords
	cal     []float64 // calibrated coords in [0,1]
	seg     []int
	segW    []float64
	clamped []bool
}

func (u *latticeUnit) forward(x []float64, tauNorm float64) (float64, *latticeFwd) {
	f := &latticeFwd{raw: u.rawCoords(x, tauNorm)}
	f.cal = make([]float64, u.dims)
	f.seg = make([]int, u.dims)
	f.segW = make([]float64, u.dims)
	f.clamped = make([]bool, u.dims)
	for d := 0; d < u.dims; d++ {
		v, seg, w := u.calibrate(d, f.raw[d])
		// Track clamping to zero calibrator gradients outside [0,1].
		a := u.calValue(d, seg)
		b := u.calValue(d, seg+1)
		rawOut := a + w*(b-a)
		f.clamped[d] = rawOut != v
		f.cal[d], f.seg[d], f.segW[d] = v, seg, w
	}
	return u.interpolate(f.cal), f
}

// vertexValue returns the lattice parameter at the corner with the given
// bits (bit 0 = τ axis).
func (u *latticeUnit) vertexValue(bits int) float64 {
	rest := bits >> 1
	v := u.vertBase.Value[rest]
	if bits&1 == 1 {
		d := u.vertDelta.Value[rest]
		v += d * d
	}
	return v
}

// interpolate computes the multilinear interpolation over 2^dims corners.
func (u *latticeUnit) interpolate(c []float64) float64 {
	var out float64
	for bits := 0; bits < 1<<u.dims; bits++ {
		w := 1.0
		for d := 0; d < u.dims; d++ {
			if bits>>d&1 == 1 {
				w *= c[d]
			} else {
				w *= 1 - c[d]
			}
		}
		if w != 0 {
			out += w * u.vertexValue(bits)
		}
	}
	return out
}

// backward accumulates parameter gradients for dL/dout = g.
func (u *latticeUnit) backward(f *latticeFwd, g float64) {
	c := f.cal
	dc := make([]float64, u.dims)
	for bits := 0; bits < 1<<u.dims; bits++ {
		w := 1.0
		for d := 0; d < u.dims; d++ {
			if bits>>d&1 == 1 {
				w *= c[d]
			} else {
				w *= 1 - c[d]
			}
		}
		v := u.vertexValue(bits)
		rest := bits >> 1
		// Vertex gradients.
		if bits&1 == 1 {
			u.vertBase.Grad[rest] += g * w
			u.vertDelta.Grad[rest] += g * w * 2 * u.vertDelta.Value[rest]
		} else {
			u.vertBase.Grad[rest] += g * w
		}
		// Coordinate gradients: ∂w/∂c_d = ±(w / factor_d).
		for d := 0; d < u.dims; d++ {
			var wd float64 = 1
			for e := 0; e < u.dims; e++ {
				if e == d {
					continue
				}
				if bits>>e&1 == 1 {
					wd *= c[e]
				} else {
					wd *= 1 - c[e]
				}
			}
			if bits>>d&1 == 1 {
				dc[d] += g * v * wd
			} else {
				dc[d] -= g * v * wd
			}
		}
	}
	// Calibrator gradients (zero when the output was clamped).
	for d := 0; d < u.dims; d++ {
		if f.clamped[d] {
			continue
		}
		seg, w := f.seg[d], f.segW[d]
		// out = val(seg)·(1−w) + val(seg+1)·w; val(k) = base + Σ_{j<k} inc.
		gA := dc[d] * (1 - w)
		gB := dc[d] * w
		u.calBase.Grad[d] += gA + gB
		for j := 0; j < u.knots-1; j++ {
			var reach float64
			if j < seg {
				reach = gA + gB
			} else if j == seg {
				reach = gB
			} else {
				continue
			}
			idx := d*(u.knots-1) + j
			if d == 0 {
				u.calInc.Grad[idx] += reach * 2 * u.calInc.Value[idx]
			} else {
				u.calInc.Grad[idx] += reach
			}
		}
	}
}

// Fit trains the ensemble with Adam on log-space MSE.
func (m *DLN) Fit(train, _ *core.TrainSet) {
	x, taus, y := flatten(train, m.TauMax)
	if len(x) == 0 {
		return
	}
	feat := make([][]float64, len(x))
	for i := range x {
		feat[i] = x[i][:len(x[i])-1] // drop appended τ; units take it separately
	}
	m.inDim = len(feat[0])
	ylog := log1pTargets(y)

	rng := rand.New(rand.NewSource(m.Fit_.Seed))
	m.units = nil
	var params []*nn.Param
	for e := 0; e < m.Members; e++ {
		u := newLatticeUnit(rng, m.inDim, m.Dims, m.Knots)
		m.units = append(m.units, u)
		params = append(params, u.params()...)
	}
	opt := nn.NewAdam(params, m.Fit_.LR*3)

	perm := make([]int, len(x))
	for i := range perm {
		perm[i] = i
	}
	for epoch := 0; epoch < m.Fit_.Epochs; epoch++ {
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for start := 0; start < len(perm); start += m.Fit_.Batch {
			end := start + m.Fit_.Batch
			if end > len(perm) {
				end = len(perm)
			}
			for _, r := range perm[start:end] {
				tn := float64(taus[r]) / float64(max(m.TauMax, 1))
				var pred float64
				fwds := make([]*latticeFwd, len(m.units))
				for ui, u := range m.units {
					o, f := u.forward(feat[r], tn)
					pred += o
					fwds[ui] = f
				}
				pred /= float64(len(m.units))
				g := nn.MSEGrad(pred, ylog[r], end-start) / float64(len(m.units))
				for ui, u := range m.units {
					u.backward(fwds[ui], g)
				}
			}
			nn.ClipGradNorm(params, 5)
			opt.Step()
		}
	}
}

// Estimate averages the ensemble in log space and inverts.
func (m *DLN) Estimate(x []float64, tau int) float64 {
	if len(m.units) == 0 {
		return 0
	}
	tn := float64(tau) / float64(max(m.TauMax, 1))
	var pred float64
	for _, u := range m.units {
		o, _ := u.forward(x, tn)
		pred += o
	}
	return fromLog(pred / float64(len(m.units)))
}

// SizeBytes sums the lattice parameters plus projections.
func (m *DLN) SizeBytes() int {
	n := 0
	for _, u := range m.units {
		n += nn.ParamBytes(u.params())
		n += len(u.proj) * m.inDim * 8
	}
	return n
}

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
