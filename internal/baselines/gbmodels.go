package baselines

import (
	"cardnet/internal/core"
	"cardnet/internal/gbdt"
)

// Boosted wraps internal/gbdt as TL-XGB (level-wise growth) or TL-LGBM
// (leaf-wise growth). The input is [x; τ/τmax] and a monotone-increasing
// constraint is placed on the threshold feature, matching the paper's
// classification of both models as monotonic. Targets are log1p counts.
type Boosted struct {
	Label  string
	Growth gbdt.Growth
	Cfg    gbdt.Config
	TauMax int

	model  *gbdt.Model
	inDim  int
	hasCfg bool
}

// NewXGB returns a level-wise boosted model (TL-XGB).
func NewXGB(tauMax int) *Boosted {
	return &Boosted{Label: "TL-XGB", Growth: gbdt.LevelWise, TauMax: tauMax}
}

// NewLGBM returns a leaf-wise boosted model (TL-LGBM).
func NewLGBM(tauMax int) *Boosted {
	return &Boosted{Label: "TL-LGBM", Growth: gbdt.LeafWise, TauMax: tauMax}
}

// Name identifies the model.
func (b *Boosted) Name() string { return b.Label }

// Fit trains the ensemble on the flattened (x, τ) rows.
func (b *Boosted) Fit(train, _ *core.TrainSet) {
	x, _, y := flatten(train, b.TauMax)
	if len(x) == 0 {
		return
	}
	b.inDim = len(x[0])
	cfg := b.Cfg
	if !b.hasCfg {
		cfg = gbdt.DefaultConfig(b.Growth)
	}
	cfg.Growth = b.Growth
	cfg.MonotoneInc = []int{b.inDim - 1} // τ is the last feature
	b.model = gbdt.Fit(cfg, x, log1pTargets(y))
}

// SetConfig overrides the boosting hyperparameters before Fit.
func (b *Boosted) SetConfig(cfg gbdt.Config) {
	b.Cfg = cfg
	b.hasCfg = true
}

// Estimate predicts expm1 of the boosted output.
func (b *Boosted) Estimate(x []float64, tau int) float64 {
	if b.model == nil {
		return 0
	}
	row := make([]float64, len(x)+1)
	copy(row, x)
	if b.TauMax > 0 {
		row[len(x)] = float64(tau) / float64(b.TauMax)
	}
	return fromLog(b.model.Predict(row))
}

// SizeBytes approximates the tree storage (feature, threshold, children,
// value ≈ 40 bytes per node).
func (b *Boosted) SizeBytes() int {
	if b.model == nil {
		return 0
	}
	return b.model.NumNodes() * 40
}
