package infer

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"cardnet/internal/core"
	"cardnet/internal/tensor"
)

// testConfigs sweeps both encoder families, VAE on/off, and uneven embedding
// region splits — the same shape space the lowering tests fuzz.
func testConfigs() []core.Config {
	accel := core.DefaultConfig(6)
	accel.Accel = true
	accel.PhiHidden = []int{24, 16, 8}
	accel.ZDim = 10 // 3 regions of 4/3/3: exercises the remainder path
	accel.VAEHidden = []int{20, 12}
	accel.VAELatent = 6

	accelNoVAE := accel
	accelNoVAE.VAELatent = 0
	accelNoVAE.Seed = 2

	std := core.DefaultConfig(5)
	std.PhiHidden = []int{18, 12}
	std.ZDim = 7
	std.VAEHidden = []int{16}
	std.VAELatent = 4
	std.Seed = 3

	stdNoVAE := std
	stdNoVAE.VAELatent = 0
	stdNoVAE.Seed = 4

	return []core.Config{accel, accelNoVAE, std, stdNoVAE}
}

// randomBinary returns a rows×cols matrix of random 0/1 features.
func randomBinary(rng *rand.Rand, rows, cols int) *tensor.Matrix {
	xs := tensor.NewMatrix(rows, cols)
	for i := range xs.Data {
		if rng.Intn(2) == 1 {
			xs.Data[i] = 1
		}
	}
	return xs
}

func TestParsePrecision(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Precision
		ok   bool
	}{
		{"", PrecisionF64, true},
		{"f64", PrecisionF64, true},
		{"f32", PrecisionF32, true},
		{"int8", PrecisionInt8, true},
		{"fp16", "", false},
		{"F32", "", false},
	} {
		got, err := ParsePrecision(tc.in)
		if tc.ok != (err == nil) || got != tc.want {
			t.Errorf("ParsePrecision(%q) = (%q, %v), want (%q, ok=%v)", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

// TestF32PlanMatchesF64 is the f32 accuracy property: over fuzzed batch sizes
// and both encoder families, the compiled f32 plan must track the exact f64
// model within float32 accumulation tolerance.
func TestF32PlanMatchesF64(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for ci, cfg := range testConfigs() {
		m := core.New(cfg, 12)
		p, err := Lower(m, PrecisionF32)
		if err != nil {
			t.Fatalf("cfg %d: Lower: %v", ci, err)
		}
		for _, b := range []int{1, 3, 9, 17} {
			xs := randomBinary(rng, b, 12)
			want := m.EstimateAllTausBatch(xs)
			got := p.EstimateAllTausBatch(xs)
			if got.Rows != want.Rows || got.Cols != want.Cols {
				t.Fatalf("cfg %d: shape %d×%d, want %d×%d", ci, got.Rows, got.Cols, want.Rows, want.Cols)
			}
			for i := range got.Data {
				w, g := want.Data[i], got.Data[i]
				if math.Abs(g-w) > 1e-3*(1+math.Abs(w)) {
					t.Fatalf("cfg %d batch %d (accel=%v): elem %d = %.9g, want %.9g", ci, b, cfg.Accel, i, g, w)
				}
			}
		}
	}
}

// TestPlanCurvesMonotone is the Lemma 2 property: every curve out of every
// compiled tier must pass core.CurveMonotone, across fuzzed inputs.
func TestPlanCurvesMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for ci, cfg := range testConfigs() {
		m := core.New(cfg, 12)
		for _, tier := range []Precision{PrecisionF32, PrecisionInt8} {
			p, err := Lower(m, tier)
			if err != nil {
				t.Fatalf("cfg %d %s: Lower: %v", ci, tier, err)
			}
			xs := randomBinary(rng, 16, 12)
			got := p.EstimateAllTausBatch(xs)
			for e := 0; e < got.Rows; e++ {
				if !core.CurveMonotone(got.Row(e)) {
					t.Fatalf("cfg %d tier %s: curve %d not monotone: %v", ci, tier, e, got.Row(e))
				}
			}
		}
	}
}

// TestEstimateAllTausMatchesBatch checks the single-query entry point is the
// one-row batch.
func TestEstimateAllTausMatchesBatch(t *testing.T) {
	cfg := testConfigs()[0]
	m := core.New(cfg, 12)
	p, err := Lower(m, PrecisionF32)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	xs := randomBinary(rng, 1, 12)
	want := p.EstimateAllTausBatch(xs).Row(0)
	got := p.EstimateAllTaus(xs.Row(0))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("elem %d = %g, want %g", i, got[i], want[i])
		}
	}
}

// TestPlanImmutable checks compiled plans hold deep copies: mutating the
// source model must not change an already-compiled plan's outputs.
func TestPlanImmutable(t *testing.T) {
	cfg := testConfigs()[0]
	m := core.New(cfg, 12)
	p, err := Lower(m, PrecisionF32)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(19))
	xs := randomBinary(rng, 4, 12)
	before := p.EstimateAllTausBatch(xs)
	for _, prm := range m.Params() {
		for i := range prm.Value {
			prm.Value[i] += 0.5
		}
	}
	after := p.EstimateAllTausBatch(xs)
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatalf("plan output changed after model mutation: elem %d %g -> %g", i, before.Data[i], after.Data[i])
		}
	}
}

// TestPlanConcurrent runs one plan from many goroutines (the serving usage)
// and checks results stay deterministic; under -race this also exercises the
// scratch pool for data races.
func TestPlanConcurrent(t *testing.T) {
	cfg := testConfigs()[0]
	m := core.New(cfg, 12)
	p, err := Lower(m, PrecisionInt8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	xs := randomBinary(rng, 8, 12)
	want := p.EstimateAllTausBatch(xs)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				got := p.EstimateAllTausBatch(xs)
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						errs <- "concurrent result diverged"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// TestCompileGatePasses checks the happy path: on a healthy model both
// compiled tiers clear the accuracy gate and report their own tier as
// serving.
func TestCompileGatePasses(t *testing.T) {
	for ci, cfg := range testConfigs() {
		m := core.New(cfg, 12)
		for _, tier := range []Precision{PrecisionF32, PrecisionInt8} {
			p, res, err := Compile(m, tier, GateConfig{Seed: 29})
			if err != nil {
				t.Fatalf("cfg %d %s: %v", ci, tier, err)
			}
			if !res.Pass || res.Tier != tier || p == nil {
				t.Fatalf("cfg %d %s: gate failed on healthy model: %+v", ci, tier, res)
			}
			if res.MonoViolations != 0 {
				t.Fatalf("cfg %d %s: %d monotonicity violations", ci, tier, res.MonoViolations)
			}
		}
	}
}

// TestCompileF64NoPlan checks that requesting f64 yields no plan and a
// trivially passing gate — f64 names the legacy exact path.
func TestCompileF64NoPlan(t *testing.T) {
	m := core.New(testConfigs()[0], 12)
	p, res, err := Compile(m, PrecisionF64, GateConfig{})
	if err != nil || p != nil || !res.Pass || res.Tier != PrecisionF64 {
		t.Fatalf("Compile f64 = (%v, %+v, %v), want nil plan, pass, f64", p, res, err)
	}
}

// TestCompileGateFallback is the acceptance-required fallback property: a
// deliberately clipped model must fail the int8 gate and fall back to f64,
// while f32 (which represents the clipped weights exactly and loses nothing)
// still passes. The clipping blows the first trunk layer's input-0 column up
// to -1e6: every per-output-channel int8 scale becomes ≈1e6/127, collapsing
// all the real weights in each row to zero, so the int8 plan loses the entire
// signal for queries with feature 0 unset while the f64/f32 paths keep it.
func TestCompileGateFallback(t *testing.T) {
	cfg := testConfigs()[1] // accel, no VAE: first trunk layer feeds everything
	m := core.New(cfg, 12)
	clipped := false
	for _, prm := range m.Params() {
		if prm.Name == "W" && len(prm.Value) == 24*12 { // first trunk layer, Out×In
			for o := 0; o < 24; o++ {
				prm.Value[o*12] = -1e6
			}
			clipped = true
			break
		}
	}
	if !clipped {
		t.Fatal("first trunk layer weight not found")
	}
	gc := GateConfig{Seed: 31}

	p, res, err := Compile(m, PrecisionInt8, gc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass || p != nil {
		t.Fatalf("int8 gate passed on clipped model: %+v", res)
	}
	if res.Tier != PrecisionF64 || res.Requested != PrecisionInt8 {
		t.Fatalf("gate failure must fall back to f64: %+v", res)
	}
	if res.QErrP99Delta <= res.MaxQErrP99Delta {
		t.Fatalf("expected q-error delta above bound, got %+v", res)
	}
	if res.Reason == "" {
		t.Fatal("gate failure must carry a reason")
	}

	p32, res32, err := Compile(m, PrecisionF32, gc)
	if err != nil {
		t.Fatal(err)
	}
	if !res32.Pass || p32 == nil {
		t.Fatalf("f32 should survive the clipped weight: %+v", res32)
	}
}
