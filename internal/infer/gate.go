package infer

import (
	"fmt"
	"math/rand"
	"sort"

	"cardnet/internal/core"
	"cardnet/internal/tensor"
)

// Default gate parameters, used when GateConfig fields are zero.
const (
	// DefaultGateMaxDelta bounds the allowed q-error p99 inflation of a
	// compiled tier relative to the exact f64 path: the tier is eligible only
	// if p99(q-error vs f64) − 1 stays within this bound over the sweep.
	DefaultGateMaxDelta = 0.1
	// DefaultGateSweep is the number of pseudo-random validation queries the
	// gate evaluates.
	DefaultGateSweep = 256
)

// GateConfig parameterizes the accuracy-delta gate Compile runs before a
// compiled tier may serve.
type GateConfig struct {
	// MaxQErrP99Delta is the bound on p99 q-error minus one versus the f64
	// path (0 selects DefaultGateMaxDelta).
	MaxQErrP99Delta float64
	// Sweep is the number of validation queries (0 selects DefaultGateSweep).
	Sweep int
	// Seed seeds the pseudo-random sweep so gate decisions are reproducible
	// across restarts and between replicas.
	Seed int64
}

// WithDefaults returns the config with zero fields replaced by the package
// defaults, so callers recording gate parameters see the effective values.
func (gc GateConfig) WithDefaults() GateConfig {
	if gc.MaxQErrP99Delta == 0 {
		gc.MaxQErrP99Delta = DefaultGateMaxDelta
	}
	if gc.Sweep == 0 {
		gc.Sweep = DefaultGateSweep
	}
	return gc
}

// GateResult records the gate's verdict for one compiled tier. It is
// serialized into bench reports and the serving /healthz payload, so every
// field is exported.
type GateResult struct {
	// Requested is the tier compilation was asked for.
	Requested Precision `json:"requested"`
	// Tier is the tier that will actually serve: Requested when the gate
	// passed, PrecisionF64 when it failed (or when f64 was requested).
	Tier Precision `json:"tier"`
	// Pass reports whether the requested tier is eligible to serve.
	Pass bool `json:"pass"`
	// QErrP99Delta is the measured p99 q-error minus one versus the f64 path
	// over the sweep (zero for the f64 tier itself).
	QErrP99Delta float64 `json:"q_err_p99_delta"`
	// MaxQErrP99Delta echoes the bound the measurement was judged against.
	MaxQErrP99Delta float64 `json:"max_q_err_p99_delta"`
	// MonoViolations counts sweep curves violating Lemma 2 monotonicity
	// (core.CurveMonotone); any nonzero count fails the gate.
	MonoViolations int `json:"mono_violations"`
	// Sweep is the number of validation queries evaluated.
	Sweep int `json:"sweep"`
	// Reason explains the verdict in one line.
	Reason string `json:"reason"`
}

// qErrP99 returns the 99th-percentile q-error between two equal-shape
// estimate matrices, with +1 smoothing so zero estimates stay comparable:
// q = max((a+1)/(b+1), (b+1)/(a+1)) ≥ 1.
func qErrP99(got, want *tensor.Matrix) float64 {
	qs := make([]float64, len(got.Data))
	for i, g := range got.Data {
		w := want.Data[i]
		q := (g + 1) / (w + 1)
		if q < 1 {
			q = 1 / q
		}
		qs[i] = q
	}
	sort.Float64s(qs)
	idx := int(0.99*float64(len(qs))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(qs) {
		idx = len(qs) - 1
	}
	return qs[idx]
}

// MonoSweep evaluates sweep seeded pseudo-random binary queries through m and
// returns how many of the resulting τ-sweep curves violate Lemma 2
// monotonicity (core.CurveMonotone). It is the model-level half of the gate
// Compile runs on compiled plans: the autopilot runs it over every retrained
// candidate before a swap, because incremental training preserves the
// architecture's monotone construction but a verification sweep is what turns
// that argument into a checked invariant (zero violations required to swap).
// The sweep generation matches Compile's, so sweep/seed pairs are comparable
// across both gates.
func MonoSweep(m *core.Model, sweep int, seed int64) int {
	if sweep <= 0 {
		sweep = DefaultGateSweep
	}
	rng := rand.New(rand.NewSource(seed))
	xs := tensor.NewMatrix(sweep, m.InDim)
	for i := range xs.Data {
		if rng.Intn(2) == 1 {
			xs.Data[i] = 1
		}
	}
	all := m.EstimateAllTausBatch(xs)
	violations := 0
	for r := 0; r < all.Rows; r++ {
		if !core.CurveMonotone(all.Row(r)) {
			violations++
		}
	}
	return violations
}

// Compile lowers m to the requested tier and runs the accuracy-delta gate: a
// seeded pseudo-random binary query sweep is evaluated through both the exact
// f64 model path and the compiled plan, and the plan is eligible only if the
// q-error p99 delta stays within the bound AND every plan curve passes
// core.CurveMonotone (zero Lemma-2 violations). On a gate failure Compile
// returns a nil plan and a GateResult directing the caller back to the f64
// path — the compiled tier never serves estimates the gate has not vouched
// for. Requesting PrecisionF64 trivially passes with a nil plan (f64 is the
// legacy exact path, not a compiled plan).
func Compile(m *core.Model, tier Precision, gc GateConfig) (*Plan, GateResult, error) {
	gc = gc.WithDefaults()
	res := GateResult{
		Requested:       tier,
		Tier:            PrecisionF64,
		MaxQErrP99Delta: gc.MaxQErrP99Delta,
		Sweep:           gc.Sweep,
	}
	if tier == PrecisionF64 {
		res.Pass = true
		res.Reason = "f64 is the exact path; no gate required"
		return nil, res, nil
	}
	p, err := Lower(m, tier)
	if err != nil {
		return nil, res, err
	}

	rng := rand.New(rand.NewSource(gc.Seed))
	xs := tensor.NewMatrix(gc.Sweep, m.InDim)
	for i := range xs.Data {
		if rng.Intn(2) == 1 {
			xs.Data[i] = 1
		}
	}
	want := m.EstimateAllTausBatch(xs)
	got := p.EstimateAllTausBatch(xs)

	res.QErrP99Delta = qErrP99(got, want) - 1
	for e := 0; e < got.Rows; e++ {
		if !core.CurveMonotone(got.Row(e)) {
			res.MonoViolations++
		}
	}

	switch {
	case res.MonoViolations > 0:
		res.Reason = fmt.Sprintf("%d of %d curves violate Lemma 2 monotonicity; falling back to f64", res.MonoViolations, gc.Sweep)
	case res.QErrP99Delta > gc.MaxQErrP99Delta:
		res.Reason = fmt.Sprintf("q-error p99 delta %.4f exceeds bound %.4f; falling back to f64", res.QErrP99Delta, gc.MaxQErrP99Delta)
	default:
		res.Pass = true
		res.Tier = tier
		res.Reason = fmt.Sprintf("q-error p99 delta %.4f within bound %.4f, 0 monotonicity violations", res.QErrP99Delta, gc.MaxQErrP99Delta)
	}
	if !res.Pass {
		return nil, res, nil
	}
	return p, res, nil
}
