// Package infer compiles trained CardNet / CardNet-A models into immutable
// inference plans: the quantized fast path of the serving stack.
//
// A Plan is built once per model load or hot swap from the fused
// core.LoweredModel spec (biases folded, Φ′ head projections fused with the
// embedding-region scatter and the per-distance decoders — see
// internal/core/lowering.go for the algebra) and lowered to one of two
// precision tiers:
//
//   - PrecisionF32: weights cast to float32, evaluated with the cache-blocked
//     4-wide-unrolled float32 kernels in internal/tensor.
//   - PrecisionInt8: dense-layer weights additionally quantized to int8 with
//     per-output-channel symmetric scales; activations are dynamically
//     quantized per row at each layer, inner products accumulate in int32,
//     and results dequantize through float32. The per-distance decoder of the
//     standard encoder and all bias/activation arithmetic stay float32 (those
//     are O(rows) — quantizing them saves nothing and costs accuracy).
//
// PrecisionF64 deliberately has no Plan: it names the legacy exact
// Model.EstimateAllTausBatch path, which keeps its bit-identical guarantees.
// Tiers below f64 perturb the learned function, so — following the paper's
// Lemma 2 contract and the monotonicity-under-perturbation argument that
// motivated this design — a plan may only serve after Compile's accuracy gate
// passes: q-error p99 vs the f64 path within a configured bound AND zero
// CurveMonotone violations on the validation sweep. Gate failures fall back
// to f64.
//
// Plans are immutable after compilation and safe for concurrent use; per-call
// transients come from an internal sync.Pool, so steady-state forwards do not
// allocate beyond the returned result matrix.
package infer

import (
	"fmt"
	"math"
	"sync"

	"cardnet/internal/core"
	"cardnet/internal/nn"
	"cardnet/internal/tensor"
)

// Precision names an inference precision tier.
type Precision string

// The supported precision tiers, ordered fastest-changing last: f64 is the
// legacy exact path (no plan), f32 and int8 are compiled plans.
const (
	PrecisionF64  Precision = "f64"
	PrecisionF32  Precision = "f32"
	PrecisionInt8 Precision = "int8"
)

// ParsePrecision validates a tier name (as given to the -precision flag).
// The empty string parses as PrecisionF64.
func ParsePrecision(s string) (Precision, error) {
	switch Precision(s) {
	case "", PrecisionF64:
		return PrecisionF64, nil
	case PrecisionF32:
		return PrecisionF32, nil
	case PrecisionInt8:
		return PrecisionInt8, nil
	}
	return "", fmt.Errorf("infer: unknown precision %q (want f64, f32, or int8)", s)
}

// dense32 is one compiled dense layer: float32 weights in ABT (Out×In) form,
// plus the int8 per-output-channel quantization when the plan tier is int8.
type dense32 struct {
	in, out int
	w       *tensor.Matrix32    // Out×In
	q       *tensor.QuantMatrix // nil unless tier int8
	b       []float32           // nil = no bias
	act     nn.ActKind
}

// Plan is an immutable compiled inference model at one precision tier.
// Build plans with Lower (ungated) or Compile (gated); the zero value is not
// usable.
type Plan struct {
	tier     Precision
	inDim    int
	xpDim    int
	tauCount int
	zDim     int

	vae   []dense32
	accel bool

	// CardNet-A: ReLU trunk; heads are the fused F_j products (out=τcount,
	// in=h_j, no bias — β lands in headBias after all layers accumulate).
	trunk    []dense32
	heads    []dense32
	headBias []float32

	// Standard CardNet: first-layer x′ product, folded per-distance bias,
	// remaining layers, per-distance decoders.
	wx      dense32
	perDist *tensor.Matrix32
	rest    []dense32
	decW    *tensor.Matrix32
	decB    []float32

	pool sync.Pool // *scratch
}

// Tier reports the plan's precision tier.
func (p *Plan) Tier() Precision { return p.tier }

// InDim reports the expected feature dimensionality.
func (p *Plan) InDim() int { return p.inDim }

// TauCount reports the number of per-distance decoders (τmax+1).
func (p *Plan) TauCount() int { return p.tauCount }

// demoteT transposes a pre-transposed (In×Out) lowered weight back into ABT
// (Out×In) float32 form.
func demoteT(wt *tensor.Matrix) *tensor.Matrix32 {
	w := tensor.NewMatrix32(wt.Cols, wt.Rows)
	for k := 0; k < wt.Rows; k++ {
		row := wt.Row(k)
		for o, v := range row {
			w.Data[o*wt.Rows+k] = float32(v)
		}
	}
	return w
}

// compileDense lowers one LoweredDense to the plan tier.
func compileDense(d *core.LoweredDense, tier Precision) dense32 {
	c := dense32{in: d.In, out: d.Out, w: demoteT(d.WT), b: tensor.Demote32Vec(d.B), act: d.Act}
	if tier == PrecisionInt8 {
		c.q = tensor.QuantizeRows(c.w, nil)
	}
	return c
}

// Lower compiles a model into an ungated plan at the given tier (f32 or
// int8). Serving paths should use Compile, which runs the accuracy gate;
// Lower exists for benchmarks and tests that need the plan regardless of
// gate outcome.
func Lower(m *core.Model, tier Precision) (*Plan, error) {
	if tier != PrecisionF32 && tier != PrecisionInt8 {
		return nil, fmt.Errorf("infer: no plan for tier %q (f64 is the legacy model path)", tier)
	}
	lm := m.Lower()
	p := &Plan{
		tier:     tier,
		inDim:    lm.InDim,
		xpDim:    lm.XpDim,
		tauCount: lm.TauCount,
		zDim:     lm.ZDim,
		accel:    lm.Accel,
	}
	for i := range lm.VAE {
		p.vae = append(p.vae, compileDense(&lm.VAE[i], tier))
	}
	if lm.Accel {
		p.headBias = tensor.Demote32Vec(lm.HeadBias)
		for j := range lm.Trunk {
			p.trunk = append(p.trunk, compileDense(&lm.Trunk[j], tier))
			h := dense32{in: lm.HeadsT[j].Rows, out: lm.TauCount, w: demoteT(lm.HeadsT[j]), act: nn.Identity}
			if tier == PrecisionInt8 {
				h.q = tensor.QuantizeRows(h.w, nil)
			}
			p.heads = append(p.heads, h)
		}
	} else {
		p.wx = dense32{in: lm.XpDim, out: lm.WXT.Cols, w: demoteT(lm.WXT), act: nn.Identity}
		if tier == PrecisionInt8 {
			p.wx.q = tensor.QuantizeRows(p.wx.w, nil)
		}
		p.perDist = tensor.Demote32(lm.PerDist)
		for i := range lm.Rest {
			p.rest = append(p.rest, compileDense(&lm.Rest[i], tier))
		}
		p.decW = tensor.Demote32(lm.DecW)
		p.decB = tensor.Demote32Vec(lm.DecB)
	}
	p.pool.New = func() any { return &scratch{} }
	return p, nil
}

// scratch holds the per-call transient buffers of one plan forward. Buffers
// grow to the high-water mark of the batch sizes seen and are reused via the
// plan's pool, so steady-state forwards allocate only the returned result.
type scratch struct {
	x32  *tensor.Matrix32 // converted input batch
	a, b *tensor.Matrix32 // ping-pong chain buffers (B rows)
	xp   *tensor.Matrix32 // concatenated x′
	acc  *tensor.Matrix32 // accel pre-activation accumulator
	za   *tensor.Matrix32 // standard-path big buffers (B·τcount rows)
	zb   *tensor.Matrix32
	q    *tensor.QuantMatrix // int8 activation quantization
}

// ensure32 returns *slot resized to rows×cols, reallocating only on growth.
// Contents are undefined; callers overwrite fully.
func ensure32(slot **tensor.Matrix32, rows, cols int) *tensor.Matrix32 {
	m := *slot
	if m == nil || cap(m.Data) < rows*cols {
		m = &tensor.Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
		*slot = m
		return m
	}
	m.Rows, m.Cols = rows, cols
	m.Data = m.Data[:rows*cols]
	return m
}

// ensureQ is ensure32 for the int8 activation buffer.
func ensureQ(slot **tensor.QuantMatrix, rows, cols int) *tensor.QuantMatrix {
	m := *slot
	if m == nil || cap(m.Data) < rows*cols || cap(m.Scale) < rows {
		m = &tensor.QuantMatrix{Rows: rows, Cols: cols, Data: make([]int8, rows*cols), Scale: make([]float32, rows)}
		*slot = m
		return m
	}
	m.Rows, m.Cols = rows, cols
	m.Data = m.Data[:rows*cols]
	m.Scale = m.Scale[:rows]
	return m
}

// act32 applies an activation kind in place, the float32 counterpart of
// nn.Activation.Apply.
func act32(kind nn.ActKind, data []float32) {
	switch kind {
	case nn.Identity:
		return
	case nn.ReLU:
		for i, v := range data {
			if v < 0 {
				data[i] = 0
			}
		}
	case nn.ELU:
		for i, v := range data {
			if v < 0 {
				data[i] = float32(math.Exp(float64(v))) - 1
			}
		}
	case nn.Sigmoid:
		for i, v := range data {
			data[i] = float32(1 / (1 + math.Exp(-float64(v))))
		}
	case nn.Tanh:
		for i, v := range data {
			data[i] = float32(math.Tanh(float64(v)))
		}
	}
}

// dense runs one compiled layer: out = act(x·wᵀ + b), overwriting out (which
// must be distinct from x) unless accumulate is set, in which case the
// product is added into out and bias/activation are skipped (the fused-head
// accumulation). On the int8 tier the activation batch is dynamically
// quantized per row into s.q first.
func (p *Plan) dense(d *dense32, x, out *tensor.Matrix32, s *scratch, accumulate bool) {
	if d.q != nil {
		q := ensureQ(&s.q, x.Rows, x.Cols)
		tensor.QuantizeRows(x, q)
		if accumulate {
			tensor.MatMulABTQ8Add(q, d.q, out)
		} else {
			tensor.MatMulABTQ8(q, d.q, out)
		}
	} else {
		if accumulate {
			tensor.MatMulABTAdd32(x, d.w, out)
		} else {
			tensor.MatMulABT32(x, d.w, out)
		}
	}
	if accumulate {
		return
	}
	if d.b != nil {
		tensor.AddBias32(out, d.b)
	}
	act32(d.act, out.Data)
}

// EstimateAllTaus returns the estimate curve for one encoded query — a
// single-row EstimateAllTausBatch.
func (p *Plan) EstimateAllTaus(x []float64) []float64 {
	xm := &tensor.Matrix{Rows: 1, Cols: len(x), Data: x}
	return p.EstimateAllTausBatch(xm).Row(0)
}

// EstimateAllTausBatch runs the compiled forward over a batch: xs is B×InDim
// and the result is B×(TauMax+1) prefix-sum estimates — the same contract as
// Model.EstimateAllTausBatch, evaluated through the fused weights at the
// plan's precision tier. Per-distance outputs are clamped at zero before a
// float64 prefix sum, so every returned row satisfies core.CurveMonotone by
// construction (adding non-negative terms never decreases the sum). Safe for
// concurrent callers.
func (p *Plan) EstimateAllTausBatch(xs *tensor.Matrix) *tensor.Matrix {
	if xs.Cols != p.inDim {
		panic(fmt.Sprintf("infer: feature dim %d, plan expects %d", xs.Cols, p.inDim))
	}
	b := xs.Rows
	t := p.tauCount
	s := p.pool.Get().(*scratch)

	x32 := ensure32(&s.x32, b, p.inDim)
	for i, v := range xs.Data {
		x32.Data[i] = float32(v)
	}

	// VAE mean latent + x′ concatenation.
	xp := x32
	if len(p.vae) > 0 {
		h := x32
		for i := range p.vae {
			d := &p.vae[i]
			out := ensure32(&s.a, b, d.out)
			if out == h {
				out = ensure32(&s.b, b, d.out)
			}
			p.dense(d, h, out, s, false)
			h = out
			// Alternate a/b so the next layer never reads and writes the
			// same buffer.
			s.a, s.b = s.b, s.a
		}
		xp = ensure32(&s.xp, b, p.xpDim)
		for e := 0; e < b; e++ {
			copy(xp.Row(e)[:p.inDim], x32.Row(e))
			copy(xp.Row(e)[p.inDim:], h.Row(e))
		}
	}

	out := tensor.NewMatrix(b, t)
	if p.accel {
		acc := ensure32(&s.acc, b, t)
		h := xp
		for j := range p.trunk {
			d := &p.trunk[j]
			hn := ensure32(&s.a, b, d.out)
			if hn == h {
				hn = ensure32(&s.b, b, d.out)
			}
			p.dense(d, h, hn, s, false)
			h = hn
			s.a, s.b = s.b, s.a
			p.dense(&p.heads[j], h, acc, s, j > 0)
		}
		tensor.AddBias32(acc, p.headBias)
		p.prefixSums(acc, out)
	} else {
		u := ensure32(&s.a, b, p.wx.out)
		p.dense(&p.wx, xp, u, s, false)
		h1 := p.wx.out
		z := ensure32(&s.za, b*t, h1)
		for e := 0; e < b; e++ {
			ue := u.Row(e)
			for i := 0; i < t; i++ {
				row := z.Row(e*t + i)
				pd := p.perDist.Row(i)
				for o := range row {
					v := ue[o] + pd[o]
					if v < 0 {
						v = 0 // first Φ layer ReLU
					}
					row[o] = v
				}
			}
		}
		for i := range p.rest {
			d := &p.rest[i]
			zn := ensure32(&s.zb, b*t, d.out)
			p.dense(d, z, zn, s, false)
			z = zn
			s.za, s.zb = s.zb, s.za
		}
		pre := ensure32(&s.acc, b, t)
		for e := 0; e < b; e++ {
			prow := pre.Row(e)
			for i := 0; i < t; i++ {
				prow[i] = tensor.Dot32(p.decW.Row(i), z.Row(e*t+i)) + p.decB[i]
			}
		}
		p.prefixSums(pre, out)
	}
	p.pool.Put(s)
	return out
}

// prefixSums converts per-distance pre-activations into the monotone
// estimate curves: ReLU clamp, then float64 prefix sums per row.
func (p *Plan) prefixSums(pre *tensor.Matrix32, out *tensor.Matrix) {
	t := p.tauCount
	for e := 0; e < pre.Rows; e++ {
		prow := pre.Row(e)
		orow := out.Row(e)
		var sum float64
		for i := 0; i < t; i++ {
			v := prow[i]
			if v > 0 {
				sum += float64(v)
			}
			orow[i] = sum
		}
	}
}
