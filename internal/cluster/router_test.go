package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cardnet/internal/obs"
)

// newTestRouter fronts the given fake replicas with a router whose metrics
// live in a private registry.
func newTestRouter(t *testing.T, cfg Config, reps ...*fakeReplica) (*Router, *httptest.Server) {
	t.Helper()
	for _, r := range reps {
		cfg.Replicas = append(cfg.Replicas, r.base())
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { ts.Close(); rt.Close() })
	return rt, ts
}

// estimateBody builds a distinct /estimate POST body per index.
func estimateBody(i int) string {
	x := make([]string, 8)
	for b := 0; b < 8; b++ {
		x[b] = fmt.Sprint((i >> b) & 1)
	}
	return fmt.Sprintf(`{"x":[%s],"tau":%d}`, strings.Join(x, ","), i%5)
}

// postRouter POSTs one estimate and returns status, replica id from the
// body, and the response X-Trace-Id.
func postRouter(t *testing.T, url, body string, hdr map[string]string) (int, string, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/estimate", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var doc struct {
		Replica string `json:"replica"`
	}
	json.Unmarshal(raw, &doc)
	return resp.StatusCode, doc.Replica, resp.Header.Get("X-Trace-Id")
}

// TestRouterAffinity checks cache-affine routing: the same (x, τ) always
// lands on the same replica, and a spread of keys reaches every replica.
func TestRouterAffinity(t *testing.T) {
	reps := []*fakeReplica{newFakeReplica(t, "a"), newFakeReplica(t, "b"), newFakeReplica(t, "c")}
	_, ts := newTestRouter(t, Config{}, reps...)

	owner := map[int]string{}
	for round := 0; round < 3; round++ {
		for i := 0; i < 60; i++ {
			code, rep, _ := postRouter(t, ts.URL, estimateBody(i), nil)
			if code != http.StatusOK {
				t.Fatalf("status=%d", code)
			}
			if prev, ok := owner[i]; ok && prev != rep {
				t.Fatalf("key %d moved %s -> %s with a stable fleet", i, prev, rep)
			}
			owner[i] = rep
		}
	}
	for _, r := range reps {
		if r.estimateCount() == 0 {
			t.Errorf("replica %s received no traffic across 60 keys", r.id)
		}
	}
}

// TestRouterGetRoutesLikePost checks both wire forms of the same query
// produce the same routing decision.
func TestRouterGetRoutesLikePost(t *testing.T) {
	reps := []*fakeReplica{newFakeReplica(t, "a"), newFakeReplica(t, "b"), newFakeReplica(t, "c")}
	_, ts := newTestRouter(t, Config{}, reps...)
	for i := 0; i < 20; i++ {
		_, postRep, _ := postRouter(t, ts.URL, estimateBody(i), nil)
		x := make([]string, 8)
		for b := 0; b < 8; b++ {
			x[b] = fmt.Sprint((i >> b) & 1)
		}
		resp, err := http.Get(fmt.Sprintf("%s/estimate?x=%s&tau=%d", ts.URL, strings.Join(x, ","), i%5))
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			Replica string `json:"replica"`
		}
		json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if doc.Replica != postRep {
			t.Fatalf("key %d: GET routed to %s, POST to %s", i, doc.Replica, postRep)
		}
	}
}

// TestRouterFailoverOn503 checks the bounded failover path: an overloaded
// primary answers 503 + Retry-After, the router moves to the next ring node
// and the client sees 200; the Retry-After hint then keeps the overloaded
// replica out of the preferred set.
func TestRouterFailoverOn503(t *testing.T) {
	a, b := newFakeReplica(t, "a"), newFakeReplica(t, "b")
	reg := obs.NewRegistry()
	_, ts := newTestRouter(t, Config{Registry: reg}, a, b)

	// Find a key owned by a specific replica, then overload that replica.
	var body, primary string
	for i := 0; i < 50; i++ {
		code, rep, _ := postRouter(t, ts.URL, estimateBody(i), nil)
		if code != http.StatusOK {
			t.Fatalf("status=%d", code)
		}
		body, primary = estimateBody(i), rep
		break
	}
	over, other := a, b
	if primary == "b" {
		over, other = b, a
	}
	over.overloaded.Store(true)
	beforeOther := other.estimateCount()

	code, rep, _ := postRouter(t, ts.URL, body, nil)
	if code != http.StatusOK || rep != other.id {
		t.Fatalf("failover: status=%d replica=%s, want 200 via %s", code, rep, other.id)
	}
	if reg.Counter("cluster.failovers").Value() == 0 {
		t.Fatal("failover not counted")
	}
	if other.estimateCount() != beforeOther+1 {
		t.Fatalf("other replica served %d, want %d", other.estimateCount(), beforeOther+1)
	}

	// Cooloff honored: the next request for the same key skips the
	// overloaded primary without paying the 503 round trip.
	overBefore := reg.Counter("cluster.retry_after.cooloffs").Value()
	if overBefore == 0 {
		t.Fatal("Retry-After cooloff not recorded")
	}
	code, rep, _ = postRouter(t, ts.URL, body, nil)
	if code != http.StatusOK || rep != other.id {
		t.Fatalf("cooloff routing: status=%d replica=%s", code, rep)
	}
	if got := reg.Counter("cluster.retry_after.cooloffs").Value(); got != overBefore {
		t.Fatalf("cooloff re-recorded (%d -> %d): primary was retried during cooloff", overBefore, got)
	}
}

// TestRouterAllOverloadedPropagates503 checks exhaustion: when every
// candidate rejects, the client gets the fleet's 503 with its Retry-After
// rather than a synthetic error.
func TestRouterAllOverloadedPropagates503(t *testing.T) {
	a, b := newFakeReplica(t, "a"), newFakeReplica(t, "b")
	_, ts := newTestRouter(t, Config{}, a, b)
	a.overloaded.Store(true)
	b.overloaded.Store(true)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/estimate", strings.NewReader(estimateBody(1)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status=%d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("Retry-After not propagated on fleet-wide overload")
	}
}

// TestRouterTraceIDForwarding checks the propagation contract: the client's
// X-Trace-Id is adopted as the fleet trace ID, forwarded to the replica with
// an attempt-span parent, and stamped on the response — even though the
// (rogue) fake replica answers with its own trace header, which must not
// leak through the relay.
func TestRouterTraceIDForwarding(t *testing.T) {
	a := newFakeReplica(t, "a")
	_, ts := newTestRouter(t, Config{}, a)
	code, _, tid := postRouter(t, ts.URL, estimateBody(3), map[string]string{"X-Trace-Id": "client-trace-7"})
	if code != http.StatusOK {
		t.Fatalf("status=%d", code)
	}
	if tid != "client-trace-7" {
		t.Fatalf("response trace id %q, want the adopted fleet id", tid)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.traceIDs) != 1 || a.traceIDs[0] != "client-trace-7" {
		t.Fatalf("replica saw trace ids %v, want [client-trace-7]", a.traceIDs)
	}
	if len(a.parents) != 1 || a.parents[0] != "client-trace-7/attempt.1" {
		t.Fatalf("replica saw parents %v, want [client-trace-7/attempt.1]", a.parents)
	}
}

// TestRouterMintsTraceIDOnErrorPaths is the regression for error responses
// leaving without a trace ID: every router response path — including
// no-replicas 503, bad-request 400, and retry-exhausted relays — must carry
// a minted X-Trace-Id when the client sent none.
func TestRouterMintsTraceIDOnErrorPaths(t *testing.T) {
	a := newFakeReplica(t, "a")
	rt, ts := newTestRouter(t, Config{}, a)

	post := func(body string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/estimate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp, resp.Header.Get("X-Trace-Id")
	}

	// Happy path with no client trace: minted.
	resp, tid := post(estimateBody(1))
	if resp.StatusCode != http.StatusOK || tid == "" {
		t.Fatalf("ok path: status=%d trace=%q", resp.StatusCode, tid)
	}
	// Bad request (malformed body).
	resp, tid = post("{not json")
	if resp.StatusCode != http.StatusBadRequest || tid == "" {
		t.Fatalf("bad-request path: status=%d trace=%q", resp.StatusCode, tid)
	}
	// Retry-exhausted relay of the fleet's 503.
	a.overloaded.Store(true)
	resp, tid = post(estimateBody(2))
	if resp.StatusCode != http.StatusServiceUnavailable || tid == "" {
		t.Fatalf("exhausted path: status=%d trace=%q", resp.StatusCode, tid)
	}
	a.overloaded.Store(false)
	// No healthy replicas.
	rt.ring.Remove(a.base())
	resp, tid = post(estimateBody(3))
	if resp.StatusCode != http.StatusServiceUnavailable || tid == "" {
		t.Fatalf("no-replicas path: status=%d trace=%q", resp.StatusCode, tid)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("no-replicas 503 lost Retry-After")
	}
}

// TestRouterKillReplicaZeroVisible5xx is the failover acceptance test:
// killing one of two replicas mid-traffic yields zero client-visible 5xx —
// connect errors fail over within the retry budget while the prober ejects
// the corpse.
func TestRouterKillReplicaZeroVisible5xx(t *testing.T) {
	a, b := newFakeReplica(t, "a"), newFakeReplica(t, "b")
	rt, ts := newTestRouter(t, Config{ProbeInterval: 10 * time.Millisecond, EjectAfter: 2}, a, b)
	rt.Start()

	const calls = 300
	var wg sync.WaitGroup
	var mu sync.Mutex
	bad := map[int]int{}
	clients := 4
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			for i := 0; i < calls/clients; i++ {
				n := c*(calls/clients) + i
				if c == 0 && i == (calls/clients)/3 {
					b.ts.CloseClientConnections()
					b.ts.Close() // hard kill mid-traffic
				}
				code, _, _ := postRouter(t, ts.URL, estimateBody(n%64), nil)
				if code >= 500 {
					mu.Lock()
					bad[code]++
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()
	if len(bad) != 0 {
		t.Fatalf("client-visible 5xx during replica kill: %v", bad)
	}
	// The prober should have ejected the dead replica from the ring.
	deadline := time.Now().Add(2 * time.Second)
	for rt.Ring().Len() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("dead replica never ejected (ring size %d)", rt.Ring().Len())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRouterHealthzAndMetrics checks the router's own observability
// endpoints: healthz shape, drain flip, and /metrics content negotiation.
func TestRouterHealthzAndMetrics(t *testing.T) {
	a := newFakeReplica(t, "a")
	rt, ts := newTestRouter(t, Config{}, a)
	rt.Prober().ProbeOnce(context.Background())

	get := func(path, accept string) (*http.Response, string) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp, string(raw)
	}

	resp, body := get("/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status=%d", resp.StatusCode)
	}
	var hz struct {
		Status   string          `json:"status"`
		RingSize int             `json:"ring_size"`
		Replicas []ReplicaHealth `json:"replicas"`
		Rollout  RolloutStatus   `json:"rollout"`
	}
	if err := json.Unmarshal([]byte(body), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.RingSize != 1 || len(hz.Replicas) != 1 || hz.Rollout.State != RolloutIdle {
		t.Fatalf("healthz=%s", body)
	}

	rt.Drain()
	_, body = get("/healthz", "")
	if !strings.Contains(body, `"status":"draining"`) {
		t.Fatalf("draining healthz=%s", body)
	}

	postRouter(t, ts.URL, estimateBody(1), nil)
	_, body = get("/metrics", "text/plain")
	if !strings.Contains(body, "cluster_requests") || !strings.Contains(body, "cluster_ring_size") {
		t.Fatalf("prometheus metrics missing cluster series:\n%s", body)
	}
	resp, body = get("/metrics", "")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("default metrics content type %q", ct)
	}
	if !strings.Contains(body, "cluster.requests") {
		t.Fatalf("json metrics missing cluster.requests:\n%s", body)
	}
}

// TestRouterRejectsUnroutable checks the router's own 4xx surface.
func TestRouterRejectsUnroutable(t *testing.T) {
	a := newFakeReplica(t, "a")
	_, ts := newTestRouter(t, Config{}, a)
	resp, err := http.Post(ts.URL+"/estimate", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status=%d, want 400", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/estimate", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad method status=%d, want 400", resp.StatusCode)
	}
}

// TestRouterNoReplicasConfigured checks New's validation.
func TestRouterNoReplicasConfigured(t *testing.T) {
	if _, err := New(Config{Registry: obs.NewRegistry()}); err != ErrNoReplicas {
		t.Fatalf("err=%v, want ErrNoReplicas", err)
	}
}
