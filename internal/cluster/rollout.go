package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"cardnet/internal/obs"
)

// Rollout states, in lifecycle order. A rollout is terminal in ok,
// rolled-back, or failed; idle means none has run yet.
const (
	RolloutIdle       = "idle"
	RolloutCanary     = "canary"
	RolloutPromoting  = "promoting"
	RolloutOK         = "ok"
	RolloutRolledBack = "rolled-back"
	RolloutFailed     = "failed"
)

// ErrRolloutActive is returned by Start while a rollout is in flight.
var ErrRolloutActive = errors.New("cluster: rollout already in progress")

// RolloutConfig tunes the rolling-model-rollout controller. Zero values
// take the documented defaults.
type RolloutConfig struct {
	// Bake is how long the canary runs before the drift verdict
	// (default 30s).
	Bake time.Duration
	// Poll is the /drift polling spacing during the bake (default 2s,
	// capped at Bake).
	Poll time.Duration
	// MaxRegression is the tolerated canary q-error overshoot: the canary
	// EWMA may exceed the fleet EWMA by this fraction before the verdict is
	// a regression (default 0.25).
	MaxRegression float64
	// MinSamples is how many q-error samples the canary window must hold
	// before its EWMA is trusted for the comparison; below it the verdict
	// defaults to promote (default 1).
	MinSamples int
	// Journal receives one JSONL line per rollout decision (nil disables).
	Journal *obs.Sink
	// Client issues reload and drift requests; nil uses the shared obs
	// scrape client.
	Client *http.Client
	// Registry receives rollout metrics (nil uses obs.Default).
	Registry *obs.Registry
}

// RolloutStatus is the machine-readable view of the current (or last)
// rollout, served by GET /admin/rollout and embedded in the router's
// /healthz.
type RolloutStatus struct {
	State         string   `json:"state"`
	Path          string   `json:"path,omitempty"`
	RollbackPath  string   `json:"rollback_path,omitempty"`
	Canary        string   `json:"canary,omitempty"`
	Promoted      []string `json:"promoted,omitempty"`
	CanaryQError  float64  `json:"canary_qerror"`
	FleetQError   float64  `json:"fleet_qerror"`
	CanarySamples int      `json:"canary_samples"`
	Error         string   `json:"error,omitempty"`
	TraceID       string   `json:"trace_id,omitempty"`
}

// Rollout coordinates rolling model swaps across the fleet: canary one
// replica via its /admin/reload hot swap, bake while comparing its /drift
// q-error window against the rest of the fleet, then promote
// replica-by-replica or roll the canary back. One rollout runs at a time;
// every decision is journaled.
type Rollout struct {
	cfg    RolloutConfig
	client *http.Client

	mu      sync.Mutex
	status  RolloutStatus
	running bool
	stop    chan struct{}
	wg      sync.WaitGroup

	mStarted    *obs.Counter
	mPromoted   *obs.Counter
	mRolledBack *obs.Counter
	mFailed     *obs.Counter
	mJournalErr *obs.Counter
}

// NewRollout builds an idle controller.
func NewRollout(cfg RolloutConfig) *Rollout {
	if cfg.Bake <= 0 {
		cfg.Bake = 30 * time.Second
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 2 * time.Second
	}
	if cfg.Poll > cfg.Bake {
		cfg.Poll = cfg.Bake
	}
	if cfg.MaxRegression <= 0 {
		cfg.MaxRegression = 0.25
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 1
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default
	}
	return &Rollout{
		cfg:         cfg,
		client:      cfg.Client,
		status:      RolloutStatus{State: RolloutIdle},
		stop:        make(chan struct{}),
		mStarted:    reg.Counter("cluster.rollout.started"),
		mPromoted:   reg.Counter("cluster.rollout.promoted"),
		mRolledBack: reg.Counter("cluster.rollout.rolledback"),
		mFailed:     reg.Counter("cluster.rollout.failed"),
		mJournalErr: reg.Counter("cluster.rollout.journal_errors"),
	}
}

// Status returns a copy of the current rollout view.
func (ro *Rollout) Status() RolloutStatus {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	st := ro.status
	st.Promoted = append([]string(nil), ro.status.Promoted...)
	return st
}

// Start launches a rollout of the model file at path in the background.
// healthy supplies the replica set (the prober's current view, re-read at
// promote time so a replica ejected mid-bake is skipped). rollbackPath is
// the model restored onto the canary on a regression verdict ("" = leave
// the canary on the new model but report rolled-back with an error note).
// Returns ErrRolloutActive while a rollout is in flight and ErrNoReplicas
// when healthy() is empty.
func (ro *Rollout) Start(path, rollbackPath string, healthy func() []string) error {
	replicas := healthy()
	if len(replicas) == 0 {
		return ErrNoReplicas
	}
	ro.mu.Lock()
	if ro.running {
		ro.mu.Unlock()
		return ErrRolloutActive
	}
	ro.running = true
	sort.Strings(replicas)
	ro.status = RolloutStatus{
		State:        RolloutCanary,
		Path:         path,
		RollbackPath: rollbackPath,
		Canary:       replicas[0],
		TraceID:      obs.NewTraceID(),
	}
	ro.mu.Unlock()
	ro.mStarted.Inc()
	ro.wg.Add(1)
	go func() {
		defer ro.wg.Done()
		ro.run(path, rollbackPath, replicas[0], healthy)
		ro.mu.Lock()
		ro.running = false
		ro.mu.Unlock()
	}()
	return nil
}

// Stop aborts an in-flight bake wait and blocks until the rollout
// goroutine exits. A stopped controller cannot start further rollouts.
func (ro *Rollout) Stop() {
	ro.mu.Lock()
	select {
	case <-ro.stop:
	default:
		close(ro.stop)
	}
	ro.mu.Unlock()
	ro.wg.Wait()
}

// Wait blocks until the in-flight rollout (if any) reaches a terminal
// state. Tests and benchmarks use it instead of polling Status.
func (ro *Rollout) Wait() { ro.wg.Wait() }

// run is the rollout state machine: canary -> bake -> verdict ->
// promote | rollback.
func (ro *Rollout) run(path, rollbackPath, canary string, healthy func() []string) {
	ctx := context.Background()
	ro.journal("rollout.start", map[string]any{"path": path, "canary": canary, "bake_ms": ro.cfg.Bake.Milliseconds()})

	if err := ro.reload(ctx, canary, path); err != nil {
		ro.fail(fmt.Sprintf("canary reload: %v", err))
		return
	}
	ro.journal("rollout.canary", map[string]any{"replica": canary, "path": path})

	canaryQ, fleetQ, samples, driftStatus, aborted := ro.bake(canary, healthy)
	ro.mu.Lock()
	ro.status.CanaryQError = canaryQ
	ro.status.FleetQError = fleetQ
	ro.status.CanarySamples = samples
	ro.mu.Unlock()
	if aborted {
		ro.fail("aborted during bake")
		return
	}

	if ro.regressed(canaryQ, fleetQ, samples, driftStatus) {
		ro.journal("rollout.rollback", map[string]any{
			"replica": canary, "canary_qerror": canaryQ, "fleet_qerror": fleetQ,
			"canary_samples": samples, "canary_drift": driftStatus, "rollback_path": rollbackPath,
		})
		if rollbackPath != "" {
			if err := ro.reload(ctx, canary, rollbackPath); err != nil {
				ro.fail(fmt.Sprintf("rollback reload: %v", err))
				return
			}
		}
		ro.setState(RolloutRolledBack, "")
		if rollbackPath == "" {
			ro.setState(RolloutRolledBack, "no rollback_path: canary left on regressed model")
		}
		ro.mRolledBack.Inc()
		ro.journal("rollout.done", map[string]any{"state": RolloutRolledBack})
		return
	}

	ro.setState(RolloutPromoting, "")
	for _, r := range healthy() {
		if r == canary {
			continue
		}
		if err := ro.reload(ctx, r, path); err != nil {
			ro.journal("rollout.promote_failed", map[string]any{"replica": r, "error": err.Error()})
			ro.fail(fmt.Sprintf("promote %s: %v", r, err))
			return
		}
		ro.mu.Lock()
		ro.status.Promoted = append(ro.status.Promoted, r)
		ro.mu.Unlock()
		ro.journal("rollout.promote", map[string]any{"replica": r, "path": path})
	}
	ro.setState(RolloutOK, "")
	ro.mPromoted.Inc()
	ro.journal("rollout.done", map[string]any{
		"state": RolloutOK, "canary_qerror": canaryQ, "fleet_qerror": fleetQ, "canary_samples": samples,
	})
}

// bake polls every healthy replica's /drift until the bake period elapses
// (or Stop aborts it) and returns the final canary EWMA, the fleet median
// EWMA over the other replicas, the canary's sample count and drift status.
func (ro *Rollout) bake(canary string, healthy func() []string) (canaryQ, fleetQ float64, samples int, driftStatus string, aborted bool) {
	deadline := time.After(ro.cfg.Bake)
	tick := time.NewTicker(ro.cfg.Poll)
	defer tick.Stop()
	poll := func() {
		canaryQ, fleetQ, samples, driftStatus = ro.pollDrift(canary, healthy())
		ro.mu.Lock()
		ro.status.CanaryQError = canaryQ
		ro.status.FleetQError = fleetQ
		ro.status.CanarySamples = samples
		ro.mu.Unlock()
	}
	for {
		select {
		case <-ro.stop:
			return canaryQ, fleetQ, samples, driftStatus, true
		case <-tick.C:
			poll()
		case <-deadline:
			poll()
			return canaryQ, fleetQ, samples, driftStatus, false
		}
	}
}

// pollDrift fetches /drift from the canary and the rest of the fleet and
// condenses the comparison inputs.
func (ro *Rollout) pollDrift(canary string, replicas []string) (canaryQ, fleetQ float64, samples int, driftStatus string) {
	urls := make([]string, 0, len(replicas)+1)
	urls = append(urls, canary+"/drift")
	for _, r := range replicas {
		if r != canary {
			urls = append(urls, r+"/drift")
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), ro.cfg.Poll)
	snaps := obs.GatherJSON(ctx, ro.client, urls)
	cancel()
	if snaps[0].Err == nil {
		canaryQ, _ = snaps[0].Doc["qerror_ewma"].(float64)
		if s, ok := snaps[0].Doc["samples"].(float64); ok {
			samples = int(s)
		}
		driftStatus = jsonString(snaps[0].Doc, "status")
	}
	var fleet []float64
	for _, s := range snaps[1:] {
		if s.Err != nil {
			continue
		}
		if q, ok := s.Doc["qerror_ewma"].(float64); ok {
			fleet = append(fleet, q)
		}
	}
	fleetQ = median(fleet)
	return canaryQ, fleetQ, samples, driftStatus
}

// regressed is the bake verdict: the canary regresses when its q-error
// window is trustworthy (>= MinSamples) and either its EWMA overshoots the
// fleet median by more than MaxRegression, or its own drift monitor already
// recommends retraining. An idle fleet (no q-error evidence anywhere)
// promotes — there is nothing to compare against.
func (ro *Rollout) regressed(canaryQ, fleetQ float64, samples int, driftStatus string) bool {
	if samples < ro.cfg.MinSamples {
		return false
	}
	if driftStatus == "retrain-recommended" {
		return true
	}
	if fleetQ <= 0 {
		return false
	}
	return canaryQ > fleetQ*(1+ro.cfg.MaxRegression)
}

// median returns the middle value of vs (mean of the middle two for even
// lengths), 0 for an empty slice.
func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sort.Float64s(vs)
	mid := len(vs) / 2
	if len(vs)%2 == 1 {
		return vs[mid]
	}
	return (vs[mid-1] + vs[mid]) / 2
}

// reload hot-swaps one replica's model via its /admin/reload endpoint.
func (ro *Rollout) reload(ctx context.Context, base, path string) error {
	body, _ := json.Marshal(map[string]string{"path": path})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/admin/reload", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	client := ro.client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("reload %s: status %d: %s", base, resp.StatusCode, bytes.TrimSpace(msg))
	}
	return nil
}

// fail moves the rollout to the failed state.
func (ro *Rollout) fail(msg string) {
	ro.setState(RolloutFailed, msg)
	ro.mFailed.Inc()
	ro.journal("rollout.failed", map[string]any{"error": msg})
}

// setState updates the state and error note under the lock.
func (ro *Rollout) setState(state, errMsg string) {
	ro.mu.Lock()
	ro.status.State = state
	ro.status.Error = errMsg
	ro.mu.Unlock()
}

// journal appends one decision line to the JSONL journal, counting (not
// propagating) write failures: a full disk must not wedge a rollout. Every
// line carries the rollout's trace ID so the decision sequence of one
// rollout greps/joins as a unit alongside request traces.
func (ro *Rollout) journal(event string, fields map[string]any) {
	if ro.cfg.Journal == nil {
		return
	}
	ro.mu.Lock()
	tid := ro.status.TraceID
	ro.mu.Unlock()
	if tid != "" {
		withTrace := make(map[string]any, len(fields)+1)
		for k, v := range fields {
			withTrace[k] = v
		}
		withTrace["trace_id"] = tid
		fields = withTrace
	}
	if err := ro.cfg.Journal.Emit(event, fields); err != nil {
		ro.mJournalErr.Inc()
	}
}
