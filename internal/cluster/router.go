package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cardnet/internal/obs"
)

// Config tunes the router. Zero values take the documented defaults.
type Config struct {
	// Replicas are the fronted replica base URLs (http://host:port).
	// Required, at least one.
	Replicas []string
	// VNodes is the virtual-node count per replica (default DefaultVNodes).
	VNodes int
	// Retries is the failover budget: how many additional ring nodes a
	// request may try after the primary rejects with 503 or is unreachable
	// (default 2).
	Retries int
	// ProxyTimeout bounds one client request end to end, all failover
	// attempts included (default 5s).
	ProxyTimeout time.Duration
	// MaxCooloff caps how long a Retry-After hint keeps a replica out of
	// the routing candidate set (default 5s).
	MaxCooloff time.Duration
	// ProbeInterval and EjectAfter configure the health prober (see
	// ProberConfig).
	ProbeInterval time.Duration
	EjectAfter    int
	// Client issues proxied requests and probes; nil uses a dedicated
	// client with sane timeouts.
	Client *http.Client
	// Registry receives router metrics (nil uses obs.Default).
	Registry *obs.Registry
	// Sampler, when set, emits the router's tiled request traces to a JSONL
	// sink (stage marks and histograms are always on; sampling only gates
	// emission, mirroring the replicas' -trace-sample-rate contract).
	Sampler *obs.TraceSampler
	// Rollout tunes the model-rollout controller.
	Rollout RolloutConfig
}

// Router trace stages, in pipeline order. route (read body, compute the
// affinity key) and pick (ring lookup + cooloff ordering) are the router's
// own overhead; each failed forward closes an attempt.N stage; the forward
// that produced the relayed response closes proxy; relay is the response
// write. Marks tile the request interval, so the per-stage histograms sum to
// cluster.proxy.seconds by construction — the serve-pipeline invariant from
// the replica side, extended across the hop.
const (
	StageRoute   = "route"
	StagePick    = "pick"
	StageAttempt = "attempt" // traced as attempt.N, observed into one histogram
	StageProxy   = "proxy"
	StageRelay   = "relay"
)

// StageHistName maps a router trace stage to its latency histogram
// ("cluster.stage.<stage>.seconds"); attempt.N stages all observe into the
// attempt histogram.
func StageHistName(stage string) string { return "cluster.stage." + stage + ".seconds" }

// replicaMetrics are the per-replica counters the router maintains: proxied
// requests and failed attempts (connect errors or 503 rejections).
type replicaMetrics struct {
	requests *obs.Counter
	failures *obs.Counter
}

// Router fronts a replica fleet: cache-affine consistent-hash routing of
// /estimate and /feedback, health-driven ring membership, bounded failover,
// and rolling model rollout. Create with New, route with Handler, start
// probing with Start, stop with Close.
type Router struct {
	cfg     Config
	ring    *Ring
	prober  *Prober
	rollout *Rollout
	client  *http.Client
	reg     *obs.Registry

	draining atomic.Bool

	coolMu  sync.Mutex
	cooloff map[string]time.Time // replica base -> no traffic until

	perReplica map[string]*replicaMetrics
	sampler    *obs.TraceSampler

	mRequests     *obs.Counter
	mFailovers    *obs.Counter
	mCooloffs     *obs.Counter
	mExhausted    *obs.Counter
	mNoReplicas   *obs.Counter
	mTraceSampled *obs.Counter
	gRingSize     *obs.Gauge
	hProxy        *obs.Histogram
	hStageRoute   *obs.Histogram
	hStagePick    *obs.Histogram
	hStageAttempt *obs.Histogram
	hStageProxy   *obs.Histogram
	hStageRelay   *obs.Histogram
}

// ErrNoReplicas is returned by New when the config names no replicas.
var ErrNoReplicas = errors.New("cluster: no replicas configured")

// New builds a router over cfg.Replicas. The prober is not started; call
// Start (tests drive ProbeOnce instead).
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, ErrNoReplicas
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.ProxyTimeout <= 0 {
		cfg.ProxyTimeout = 5 * time.Second
	}
	if cfg.MaxCooloff <= 0 {
		cfg.MaxCooloff = 5 * time.Second
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.ProxyTimeout}
	}
	rt := &Router{
		cfg:           cfg,
		ring:          NewRing(cfg.VNodes),
		client:        client,
		reg:           reg,
		cooloff:       make(map[string]time.Time),
		perReplica:    make(map[string]*replicaMetrics, len(cfg.Replicas)),
		sampler:       cfg.Sampler,
		mRequests:     reg.Counter("cluster.requests"),
		mFailovers:    reg.Counter("cluster.failovers"),
		mCooloffs:     reg.Counter("cluster.retry_after.cooloffs"),
		mExhausted:    reg.Counter("cluster.exhausted"),
		mNoReplicas:   reg.Counter("cluster.no_replicas"),
		mTraceSampled: reg.Counter("cluster.trace.sampled"),
		gRingSize:     reg.Gauge("cluster.ring.size"),
		hProxy:        reg.Histogram("cluster.proxy.seconds", obs.TimeBuckets()),
		hStageRoute:   reg.Histogram(StageHistName(StageRoute), obs.TimeBuckets()),
		hStagePick:    reg.Histogram(StageHistName(StagePick), obs.TimeBuckets()),
		hStageAttempt: reg.Histogram(StageHistName(StageAttempt), obs.TimeBuckets()),
		hStageProxy:   reg.Histogram(StageHistName(StageProxy), obs.TimeBuckets()),
		hStageRelay:   reg.Histogram(StageHistName(StageRelay), obs.TimeBuckets()),
	}
	for _, b := range cfg.Replicas {
		base := normalizeBase(b)
		rt.ring.Add(base)
		rt.perReplica[base] = &replicaMetrics{
			requests: reg.Counter("cluster.replica." + sanitizeNode(base) + ".requests"),
			failures: reg.Counter("cluster.replica." + sanitizeNode(base) + ".failures"),
		}
	}
	rt.gRingSize.Set(float64(rt.ring.Len()))
	rt.prober = NewProber(rt.ring.Nodes(), ProberConfig{
		Interval:   cfg.ProbeInterval,
		EjectAfter: cfg.EjectAfter,
		Client:     cfg.Client, // nil -> shared obs scrape client
		Registry:   reg,
		OnChange:   rt.onHealthChange,
	})
	rcfg := cfg.Rollout
	rcfg.Client = client
	rt.rollout = NewRollout(rcfg)
	return rt, nil
}

// onHealthChange keeps ring membership in lockstep with probed health.
func (rt *Router) onHealthChange(base string, healthy bool) {
	if healthy {
		rt.ring.Add(base)
	} else {
		rt.ring.Remove(base)
	}
	rt.gRingSize.Set(float64(rt.ring.Len()))
}

// Start launches the health probe loop.
func (rt *Router) Start() { rt.prober.Start() }

// Drain marks the router draining: /healthz flips to "draining" so load
// balancers stop sending new traffic while in-flight requests finish.
func (rt *Router) Drain() { rt.draining.Store(true) }

// Draining reports whether Drain has been called.
func (rt *Router) Draining() bool { return rt.draining.Load() }

// Close stops the prober and any in-flight rollout wait.
func (rt *Router) Close() {
	rt.prober.Stop()
	rt.rollout.Stop()
}

// Prober exposes the router's health prober (benchmarks and tests drive
// ProbeOnce deterministically).
func (rt *Router) Prober() *Prober { return rt.prober }

// Ring exposes the routing ring (read-only use: Nodes/Len/Lookup).
func (rt *Router) Ring() *Ring { return rt.ring }

// Rollout exposes the rollout controller.
func (rt *Router) Rollout() *Rollout { return rt.rollout }

// Handler returns the router's endpoint tree: proxied /estimate and
// /feedback, the router's own /healthz and /metrics, and /admin/rollout.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/estimate", rt.handleProxy)
	mux.HandleFunc("/feedback", rt.handleProxy)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	mux.HandleFunc("/admin/rollout", rt.handleRollout)
	return mux
}

// routeKey is the slice of an estimate/feedback body the router must
// decode: just enough to compute the affinity key. Everything else passes
// through opaque.
type routeKey struct {
	X   []float64 `json:"x"`
	Tau *int      `json:"tau"`
	All bool      `json:"all"`
}

// handleProxy routes one /estimate or /feedback request to its ring node
// with bounded failover, tracing the journey as tiled stages (route → pick →
// attempt.N* → proxy → relay). The fleet trace ID — the client's if it sent
// one, minted here otherwise — is stamped on every response path, error
// paths included, and forwarded to the replicas so their stage traces join
// this one.
func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request) {
	rt.mRequests.Inc()
	tr := obs.NewTraceWith(r.Header.Get(obs.TraceHeader))
	tr.Annotate("role", "router")
	w.Header().Set(obs.TraceHeader, tr.ID)
	// The sampling decision is made up front so every forward can carry it
	// to the replica (head-based sampling): both halves of a sampled trace
	// land in their JSONL logs, joinable at any rate.
	sampled := rt.sampler.Sample()

	// attempts is the retry/failover amplification record: one entry per
	// forward (ordinal, replica, outcome, duration), kept in the trace so
	// tracescan can attribute tail latency to failovers explicitly.
	var attempts []map[string]any
	finish := func(status int) {
		rt.hStageRelay.ObserveDuration(tr.Mark(StageRelay))
		tr.Annotate("status", status)
		if len(attempts) > 0 {
			tr.Annotate("attempts", attempts)
			tr.Annotate("failovers", len(attempts)-1)
		}
		// e2e from the trace total, not a second clock read: the stage
		// histograms then sum to cluster.proxy.seconds by construction. The
		// exemplar links the latest bucket hit back to this trace.
		rt.hProxy.ObserveExemplarDuration(tr.Total(), tr.ID)
		if sampled {
			rt.mTraceSampled.Inc()
			rt.sampler.Emit(tr)
		}
	}

	body, key, err := rt.extractKey(r)
	rt.hStageRoute.ObserveDuration(tr.Mark(StageRoute))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		finish(http.StatusBadRequest)
		return
	}
	budget := 1 + rt.cfg.Retries
	candidates := rt.ring.Successors(key, budget)
	if len(candidates) == 0 {
		rt.hStagePick.ObserveDuration(tr.Mark(StagePick))
		rt.mNoReplicas.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "no healthy replicas")
		finish(http.StatusServiceUnavailable)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.ProxyTimeout)
	defer cancel()

	// First pass over candidates skips replicas inside a Retry-After
	// cooloff; if that skips everyone, the cooling candidates are retried
	// anyway rather than failing a request the fleet could serve.
	ordered := rt.orderCandidates(candidates)
	rt.hStagePick.ObserveDuration(tr.Mark(StagePick))
	var last *http.Response
	var lastBody []byte
	for i, base := range ordered {
		if i > 0 {
			rt.mFailovers.Inc()
		}
		n := i + 1
		resp, respBody, err := rt.forward(ctx, base, r, body, tr.ID, n, sampled)
		pm := rt.perReplica[base]
		if pm != nil {
			pm.requests.Inc()
		}
		if err != nil {
			if pm != nil {
				pm.failures.Inc()
			}
			d := tr.Mark(attemptStage(n))
			rt.hStageAttempt.ObserveDuration(d)
			if ctx.Err() != nil {
				attempts = append(attempts, attemptRecord(n, base, "deadline", d))
				writeError(w, http.StatusGatewayTimeout, "proxy deadline: "+ctx.Err().Error())
				finish(http.StatusGatewayTimeout)
				return
			}
			attempts = append(attempts, attemptRecord(n, base, "unreachable", d))
			continue // connect error: fail over
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			if pm != nil {
				pm.failures.Inc()
			}
			rt.noteRetryAfter(base, resp.Header.Get("Retry-After"))
			d := tr.Mark(attemptStage(n))
			rt.hStageAttempt.ObserveDuration(d)
			attempts = append(attempts, attemptRecord(n, base, "rejected_503", d))
			last, lastBody = resp, respBody
			continue // overloaded replica: fail over
		}
		d := tr.Mark(StageProxy)
		rt.hStageProxy.ObserveDuration(d)
		attempts = append(attempts, attemptRecord(n, base, "ok", d))
		relay(w, resp, respBody)
		finish(resp.StatusCode)
		return
	}
	rt.mExhausted.Inc()
	if last != nil {
		relay(w, last, lastBody) // propagate the fleet's 503 + Retry-After
		finish(last.StatusCode)
		return
	}
	writeError(w, http.StatusBadGateway, "all replicas unreachable")
	finish(http.StatusBadGateway)
}

// attemptStage names the trace stage of forward attempt n (attempt.1,
// attempt.2, …).
func attemptStage(n int) string { return StageAttempt + "." + strconv.Itoa(n) }

// attemptRecord is one entry of the trace's per-attempt annotation.
func attemptRecord(n int, base, outcome string, d time.Duration) map[string]any {
	return map[string]any{
		"n":       n,
		"replica": base,
		"outcome": outcome,
		"us":      float64(d.Nanoseconds()) / 1e3,
	}
}

// extractKey reads the request far enough to compute the routing key and
// returns the (possibly re-buffered) body for forwarding.
func (rt *Router) extractKey(r *http.Request) ([]byte, uint64, error) {
	var rk routeKey
	switch r.Method {
	case http.MethodPost:
		body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, 1<<20))
		if err != nil {
			return nil, 0, fmt.Errorf("read body: %v", err)
		}
		if err := json.Unmarshal(body, &rk); err != nil {
			return nil, 0, fmt.Errorf("bad JSON body: %v", err)
		}
		return body, keyOf(rk), nil
	case http.MethodGet:
		q := r.URL.Query()
		for _, s := range strings.Split(q.Get("x"), ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, 0, fmt.Errorf("bad x component %q", s)
			}
			rk.X = append(rk.X, v)
		}
		if ts := q.Get("tau"); ts != "" {
			tau, err := strconv.Atoi(ts)
			if err != nil {
				return nil, 0, fmt.Errorf("bad tau %q", ts)
			}
			rk.Tau = &tau
		}
		rk.All = q.Get("all") == "true" || q.Get("all") == "1"
		return nil, keyOf(rk), nil
	default:
		return nil, 0, fmt.Errorf("method %s not allowed", r.Method)
	}
}

// keyOf maps the decoded routing fields to the affinity key. Full-curve
// requests and keyless bodies (replicas own validation) use AllTaus.
func keyOf(rk routeKey) uint64 {
	tau := AllTaus
	if !rk.All && rk.Tau != nil {
		tau = *rk.Tau
	}
	return KeyHash(rk.X, tau)
}

// orderCandidates moves candidates inside a Retry-After cooloff to the back
// of the attempt order, preserving ring order within each class.
func (rt *Router) orderCandidates(candidates []string) []string {
	now := time.Now()
	rt.coolMu.Lock()
	defer rt.coolMu.Unlock()
	hot := make([]string, 0, len(candidates))
	var cooling []string
	for _, c := range candidates {
		if until, ok := rt.cooloff[c]; ok && now.Before(until) {
			cooling = append(cooling, c)
			continue
		}
		hot = append(hot, c)
	}
	return append(hot, cooling...)
}

// noteRetryAfter honors a replica's Retry-After hint: the replica drops out
// of the preferred candidate set for the hinted duration (capped at
// MaxCooloff).
func (rt *Router) noteRetryAfter(base, header string) {
	secs, err := strconv.Atoi(strings.TrimSpace(header))
	if err != nil || secs <= 0 {
		return
	}
	d := time.Duration(secs) * time.Second
	if d > rt.cfg.MaxCooloff {
		d = rt.cfg.MaxCooloff
	}
	rt.coolMu.Lock()
	rt.cooloff[base] = time.Now().Add(d)
	rt.coolMu.Unlock()
	rt.mCooloffs.Inc()
}

// forward sends attempt n of the client's request to a replica and reads
// the full response body (so failover can move on without leaking the
// connection). The fleet trace ID and the parent span (this attempt) ride
// the request headers; the replica tags its own stage trace with both, which
// is the join key tracescan assembles cross-process traces on.
func (rt *Router) forward(ctx context.Context, base string, r *http.Request, body []byte, traceID string, n int, sampled bool) (*http.Response, []byte, error) {
	target := base + r.URL.Path
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, target, rd)
	if err != nil {
		return nil, nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	req.Header.Set(obs.TraceHeader, traceID)
	req.Header.Set(obs.TraceParentHeader, traceID+"/"+attemptStage(n))
	if sampled {
		// Propagate the sampling decision so the replica emits the other
		// half of this trace even when its own counter says no.
		req.Header.Set(obs.TraceSampledHeader, "1")
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, nil, err
	}
	return resp, respBody, nil
}

// relay copies a replica response to the client: retry headers, content
// type, status, body. X-Trace-Id is deliberately NOT copied — the router
// already stamped its own (fleet) trace ID on the response, and the replica
// echoes that same ID back, so overwriting would only mask a propagation
// bug.
func relay(w http.ResponseWriter, resp *http.Response, body []byte) {
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

// handleHealthz reports the router's own state: ok|draining, ring size, and
// every replica's probed health, plus the current rollout state.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if rt.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     status,
		"role":       "router",
		"ring_size":  rt.ring.Len(),
		"vnodes":     rt.ring.VNodes(),
		"replicas":   rt.prober.Snapshot(),
		"rollout":    rt.rollout.Status(),
		"configured": len(rt.cfg.Replicas),
	})
}

// handleMetrics dumps the router's obs registry, JSON by default,
// Prometheus text on Accept: text/plain, and OpenMetrics with trace-ID
// exemplars on Accept: application/openmetrics-text — the same content
// negotiation the replicas' /metrics speaks.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	accept := r.Header.Get("Accept")
	if strings.Contains(accept, "openmetrics") {
		w.Header().Set("Content-Type", obs.OpenMetricsContentType)
		rt.reg.WriteOpenMetrics(w)
		return
	}
	if strings.Contains(accept, "text/plain") {
		w.Header().Set("Content-Type", obs.PromContentType)
		rt.reg.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	rt.reg.WriteJSON(w)
}

// rolloutRequest is the POST /admin/rollout body: the model file to roll
// out and the file to restore onto the canary if the bake verdict is a
// regression.
type rolloutRequest struct {
	Path         string `json:"path"`
	RollbackPath string `json:"rollback_path"`
}

// handleRollout starts a rollout (POST) or reports the current/last one
// (GET). A rollout already in flight answers 409.
func (rt *Router) handleRollout(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, rt.rollout.Status())
	case http.MethodPost:
		var req rolloutRequest
		if err := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad JSON body: %v", err))
			return
		}
		if req.Path == "" {
			writeError(w, http.StatusBadRequest, `"path" is required`)
			return
		}
		if err := rt.rollout.Start(req.Path, req.RollbackPath, rt.prober.Healthy); err != nil {
			code := http.StatusConflict
			if errors.Is(err, ErrNoReplicas) {
				code = http.StatusServiceUnavailable
			}
			writeError(w, code, err.Error())
			return
		}
		writeJSON(w, http.StatusAccepted, rt.rollout.Status())
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

// normalizeBase turns a replica flag value into a base URL: scheme
// defaulting to http, trailing slash stripped.
func normalizeBase(s string) string {
	s = strings.TrimSpace(s)
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	return strings.TrimSuffix(s, "/")
}

// sanitizeNode maps a replica base URL into a metric-name fragment:
// scheme stripped, every non-alphanumeric rune replaced by '_'.
func sanitizeNode(base string) string {
	s := strings.TrimPrefix(strings.TrimPrefix(base, "http://"), "https://")
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// writeJSON writes a JSON response with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeError writes the router's JSON error envelope (the same {"error": …}
// shape the replicas use).
func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
