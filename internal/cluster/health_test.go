package cluster

import (
	"context"
	"sync"
	"testing"
	"time"

	"cardnet/internal/obs"
)

// TestProberEjectAndRestore walks a replica through the health lifecycle:
// healthy -> EjectAfter consecutive failed probes -> ejected -> first
// successful probe -> restored, with OnChange firing exactly at the
// transitions.
func TestProberEjectAndRestore(t *testing.T) {
	good := newFakeReplica(t, "good")
	flaky := newFakeReplica(t, "flaky")

	var mu sync.Mutex
	var events []string
	p := NewProber([]string{good.base(), flaky.base()}, ProberConfig{
		EjectAfter: 2,
		Registry:   obs.NewRegistry(),
		OnChange: func(base string, healthy bool) {
			mu.Lock()
			if healthy {
				events = append(events, "restore:"+base)
			} else {
				events = append(events, "eject:"+base)
			}
			mu.Unlock()
		},
	})
	defer p.Stop()

	ctx := context.Background()
	p.ProbeOnce(ctx)
	if got := p.Healthy(); len(got) != 2 {
		t.Fatalf("healthy=%v, want both", got)
	}
	for _, st := range p.Snapshot() {
		if st.Status != "ok" || !st.Healthy {
			t.Fatalf("replica %s: %+v", st.Base, st)
		}
		if st.ModelVersion != 1 {
			t.Fatalf("model version %d, want 1", st.ModelVersion)
		}
	}

	flaky.healthy.Store(false)
	p.ProbeOnce(ctx) // failure 1: not yet ejected
	if got := p.Healthy(); len(got) != 2 {
		t.Fatalf("ejected after a single failure: %v", got)
	}
	p.ProbeOnce(ctx) // failure 2: ejected
	if got := p.Healthy(); len(got) != 1 || got[0] != good.base() {
		t.Fatalf("healthy=%v, want only %s", got, good.base())
	}

	flaky.healthy.Store(true)
	p.ProbeOnce(ctx) // first success restores immediately
	if got := p.Healthy(); len(got) != 2 {
		t.Fatalf("healthy=%v after recovery, want both", got)
	}

	mu.Lock()
	defer mu.Unlock()
	want := []string{"eject:" + flaky.base(), "restore:" + flaky.base()}
	if len(events) != len(want) || events[0] != want[0] || events[1] != want[1] {
		t.Fatalf("events=%v, want %v", events, want)
	}
}

// TestProberScrapesEstimateCounter checks the /metrics side of the probe:
// the replica's cumulative estimate counter lands in the snapshot.
func TestProberScrapesEstimateCounter(t *testing.T) {
	rep := newFakeReplica(t, "a")
	rep.mu.Lock()
	rep.estimates = 17
	rep.mu.Unlock()
	p := NewProber([]string{rep.base()}, ProberConfig{Registry: obs.NewRegistry()})
	defer p.Stop()
	p.ProbeOnce(context.Background())
	if got := p.Snapshot()[0].EstimateRequests; got != 17 {
		t.Fatalf("estimate_requests=%v, want 17", got)
	}
}

// TestProberStartStop exercises the periodic loop itself briefly under the
// race detector.
func TestProberStartStop(t *testing.T) {
	rep := newFakeReplica(t, "a")
	reg := obs.NewRegistry()
	p := NewProber([]string{rep.base()}, ProberConfig{Interval: 5 * time.Millisecond, Registry: reg})
	p.Start()
	deadline := time.Now().Add(2 * time.Second)
	for reg.Counter("cluster.probe.sweeps").Value() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("probe loop never swept")
		}
		time.Sleep(time.Millisecond)
	}
	p.Stop()
	p.Stop() // idempotent
}
