package cluster

import (
	"context"
	"net/http"
	"sort"
	"sync"
	"time"

	"cardnet/internal/obs"
)

// ReplicaHealth is one replica's probed state as the router sees it.
type ReplicaHealth struct {
	// Base is the replica's base URL (http://host:port).
	Base string `json:"base"`
	// Healthy reports ring membership: false once EjectAfter consecutive
	// probes failed, true again after the first success.
	Healthy bool `json:"healthy"`
	// Fails counts consecutive failed probes (0 when healthy).
	Fails int `json:"fails"`
	// LastErr is the latest probe error, "" when the last probe succeeded.
	LastErr string `json:"last_err,omitempty"`
	// Status, Drift, and SLO mirror the replica's /healthz fields.
	Status string `json:"status,omitempty"`
	Drift  string `json:"drift,omitempty"`
	SLO    string `json:"slo,omitempty"`
	// ModelVersion is the replica's serving-registry version (rollouts bump
	// it via /admin/reload).
	ModelVersion uint64 `json:"model_version"`
	// EstimateRequests is the replica's cumulative /estimate request counter
	// from its /metrics exposition.
	EstimateRequests float64 `json:"estimate_requests"`
}

// ProberConfig tunes the health prober. Zero values take the documented
// defaults.
type ProberConfig struct {
	// Interval between probe sweeps (default 2s).
	Interval time.Duration
	// EjectAfter is the consecutive-failure threshold that ejects a replica
	// (default 3).
	EjectAfter int
	// Client issues the probes; nil uses the shared obs scrape client
	// (5s timeout), keeping probe semantics identical to fleetstat's.
	Client *http.Client
	// OnChange, when set, fires on every health transition (ejection and
	// restoration). The router wires ring membership here. Called without
	// the prober's lock held.
	OnChange func(base string, healthy bool)
	// Registry receives prober metrics (nil uses obs.Default).
	Registry *obs.Registry
}

// Prober drives periodic /healthz + /metrics probes of a fixed replica set
// and tracks per-replica health with consecutive-failure ejection. Replicas
// start healthy (optimistic: the router can route before the first sweep);
// the probe loop then converges the view within EjectAfter intervals.
type Prober struct {
	cfg    ProberConfig
	bases  []string
	client *http.Client

	mu     sync.Mutex
	states map[string]*ReplicaHealth

	stop    chan struct{}
	done    chan struct{}
	once    sync.Once
	started bool

	mSweeps   *obs.Counter
	mEject    *obs.Counter
	mRestore  *obs.Counter
	gHealthy  *obs.Gauge
	gReplicas *obs.Gauge
}

// NewProber builds an unstarted prober over the replica base URLs.
func NewProber(bases []string, cfg ProberConfig) *Prober {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.EjectAfter <= 0 {
		cfg.EjectAfter = 3
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default
	}
	p := &Prober{
		cfg:       cfg,
		bases:     append([]string(nil), bases...),
		client:    cfg.Client,
		states:    make(map[string]*ReplicaHealth, len(bases)),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		mSweeps:   reg.Counter("cluster.probe.sweeps"),
		mEject:    reg.Counter("cluster.replica.ejections"),
		mRestore:  reg.Counter("cluster.replica.restores"),
		gHealthy:  reg.Gauge("cluster.replicas.healthy"),
		gReplicas: reg.Gauge("cluster.replicas.configured"),
	}
	sort.Strings(p.bases)
	for _, b := range p.bases {
		p.states[b] = &ReplicaHealth{Base: b, Healthy: true}
	}
	p.gReplicas.Set(float64(len(p.bases)))
	p.gHealthy.Set(float64(len(p.bases)))
	return p
}

// Start launches the periodic probe loop; Stop ends it. Each sweep gets at
// least probeTimeoutFloor regardless of how aggressive the interval is — a
// sub-second interval must speed up *detection*, not make a loaded replica
// look dead because it needed 50ms to answer /healthz.
func (p *Prober) Start() {
	p.mu.Lock()
	p.started = true
	p.mu.Unlock()
	timeout := p.cfg.Interval
	if timeout < probeTimeoutFloor {
		timeout = probeTimeoutFloor
	}
	go func() {
		defer close(p.done)
		t := time.NewTicker(p.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), timeout)
				p.ProbeOnce(ctx)
				cancel()
			}
		}
	}()
}

// probeTimeoutFloor is the minimum per-sweep probe deadline.
const probeTimeoutFloor = 2 * time.Second

// Stop ends the probe loop and waits for it to exit. Safe to call more than
// once, and safe on a never-started prober.
func (p *Prober) Stop() {
	p.once.Do(func() { close(p.stop) })
	p.mu.Lock()
	started := p.started
	p.mu.Unlock()
	if started {
		<-p.done
	}
}

// ProbeOnce runs one probe sweep: every replica's /healthz and /metrics are
// fetched concurrently through the shared scrape helpers, and health states
// advance (exported so tests and the router's bench can drive probing
// deterministically).
func (p *Prober) ProbeOnce(ctx context.Context) {
	p.mSweeps.Inc()
	hzURLs := make([]string, len(p.bases))
	metURLs := make([]string, len(p.bases))
	for i, b := range p.bases {
		hzURLs[i] = b + "/healthz"
		metURLs[i] = b + "/metrics"
	}
	var hz []obs.JSONSnapshot
	var met []obs.RemoteSnapshot
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); hz = obs.GatherJSON(ctx, p.client, hzURLs) }()
	go func() { defer wg.Done(); met = obs.GatherRemote(ctx, p.client, metURLs) }()
	wg.Wait()

	type change struct {
		base    string
		healthy bool
	}
	var changes []change
	p.mu.Lock()
	healthy := 0
	for i, b := range p.bases {
		st := p.states[b]
		err := hz[i].Err
		if err == nil {
			err = met[i].Err
		}
		if err != nil {
			st.LastErr = err.Error()
			st.Fails++
			if st.Healthy && st.Fails >= p.cfg.EjectAfter {
				st.Healthy = false
				p.mEject.Inc()
				changes = append(changes, change{b, false})
			}
		} else {
			st.LastErr = ""
			st.Fails = 0
			st.Status = jsonString(hz[i].Doc, "status")
			st.Drift = jsonNestedString(hz[i].Doc, "drift", "status")
			st.SLO = jsonString(hz[i].Doc, "slo")
			if mv, ok := hz[i].Doc["model_version"].(float64); ok {
				st.ModelVersion = uint64(mv)
			}
			st.EstimateRequests = met[i].Series[obs.PromName("http.estimate.requests")+"_total"]
			if !st.Healthy {
				st.Healthy = true
				p.mRestore.Inc()
				changes = append(changes, change{b, true})
			}
		}
		if st.Healthy {
			healthy++
		}
	}
	p.gHealthy.Set(float64(healthy))
	p.mu.Unlock()

	if p.cfg.OnChange != nil {
		for _, c := range changes {
			p.cfg.OnChange(c.base, c.healthy)
		}
	}
}

// Snapshot returns a copy of every replica's state, sorted by base URL.
func (p *Prober) Snapshot() []ReplicaHealth {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]ReplicaHealth, 0, len(p.bases))
	for _, b := range p.bases {
		out = append(out, *p.states[b])
	}
	return out
}

// Healthy returns the currently healthy replica base URLs, sorted.
func (p *Prober) Healthy() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for _, b := range p.bases {
		if p.states[b].Healthy {
			out = append(out, b)
		}
	}
	return out
}

// jsonString reads a string field from a decoded JSON document.
func jsonString(doc map[string]any, key string) string {
	s, _ := doc[key].(string)
	return s
}

// jsonNestedString reads doc[key][sub] from a nested healthz block (the
// uniform `"<subsystem>": {"status": ...}` shape). A flat string at key — an
// older replica mid-rolling-upgrade — is accepted as the verdict itself.
func jsonNestedString(doc map[string]any, key, sub string) string {
	switch v := doc[key].(type) {
	case map[string]any:
		s, _ := v[sub].(string)
		return s
	case string:
		return v
	default:
		return ""
	}
}
