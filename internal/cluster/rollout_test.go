package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"cardnet/internal/obs"
)

// syncBuffer is a mutex-guarded bytes.Buffer so the journal can be read
// while the rollout goroutine writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// fastRollout builds a controller with a short bake for tests.
func fastRollout(journal *obs.Sink) *Rollout {
	return NewRollout(RolloutConfig{
		Bake:     120 * time.Millisecond,
		Poll:     30 * time.Millisecond,
		Journal:  journal,
		Registry: obs.NewRegistry(),
	})
}

func healthyOf(reps ...*fakeReplica) func() []string {
	return func() []string {
		out := make([]string, len(reps))
		for i, r := range reps {
			out[i] = r.base()
		}
		return out
	}
}

// journalEvents parses the JSONL journal into its event-name sequence.
func journalEvents(t *testing.T, raw string) []string {
	t.Helper()
	var events []string
	sc := bufio.NewScanner(bytes.NewBufferString(raw))
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("journal line not JSON: %q: %v", sc.Text(), err)
		}
		ev, _ := rec["event"].(string)
		if ev == "" || rec["ts"] == nil {
			t.Fatalf("journal line missing event/ts: %q", sc.Text())
		}
		events = append(events, ev)
	}
	return events
}

// TestRolloutPromote is the happy-path E2E: canary reload, a clean bake
// verdict, then promotion of every other replica and a complete journal.
func TestRolloutPromote(t *testing.T) {
	a, b, c := newFakeReplica(t, "a"), newFakeReplica(t, "b"), newFakeReplica(t, "c")
	for _, r := range []*fakeReplica{a, b, c} {
		r.setDrift(1.20, 50, "ok")
	}
	var buf syncBuffer
	ro := fastRollout(obs.NewSink(&buf))
	if err := ro.Start("models/v2.bin", "models/v1.bin", healthyOf(a, b, c)); err != nil {
		t.Fatal(err)
	}
	if st := ro.Status(); st.State != RolloutCanary {
		t.Fatalf("state after start = %s, want canary", st.State)
	}
	ro.Wait()

	st := ro.Status()
	if st.State != RolloutOK {
		t.Fatalf("final state = %s (err %q), want ok", st.State, st.Error)
	}
	// healthyOf sorts nothing: Start sorts, so the canary is the smallest
	// base URL; the other two must have been promoted.
	canary := st.Canary
	if len(st.Promoted) != 2 {
		t.Fatalf("promoted %v, want 2 replicas", st.Promoted)
	}
	for _, r := range []*fakeReplica{a, b, c} {
		paths := r.reloadedPaths()
		if len(paths) != 1 || paths[0] != "models/v2.bin" {
			t.Fatalf("replica %s reloads = %v, want [models/v2.bin]", r.id, paths)
		}
		if r.base() == canary {
			continue
		}
		found := false
		for _, p := range st.Promoted {
			if p == r.base() {
				found = true
			}
		}
		if !found {
			t.Fatalf("replica %s missing from promoted set %v", r.id, st.Promoted)
		}
	}
	if st.CanarySamples != 50 || st.CanaryQError != 1.20 {
		t.Fatalf("bake stats = %+v", st)
	}

	events := journalEvents(t, buf.String())
	want := []string{"rollout.start", "rollout.canary", "rollout.promote", "rollout.promote", "rollout.done"}
	if len(events) != len(want) {
		t.Fatalf("journal events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("journal events = %v, want %v", events, want)
		}
	}
}

// TestRolloutRollback forces a regression: the canary's q-error EWMA bakes
// far above the fleet median, so the verdict restores the rollback model
// onto the canary and nobody else is touched.
func TestRolloutRollback(t *testing.T) {
	a, b, c := newFakeReplica(t, "a"), newFakeReplica(t, "b"), newFakeReplica(t, "c")
	var buf syncBuffer
	ro := fastRollout(obs.NewSink(&buf))
	if err := ro.Start("models/v2.bin", "models/v1.bin", healthyOf(a, b, c)); err != nil {
		t.Fatal(err)
	}
	canaryBase := ro.Status().Canary
	var canary *fakeReplica
	others := []*fakeReplica{}
	for _, r := range []*fakeReplica{a, b, c} {
		if r.base() == canaryBase {
			canary = r
		} else {
			others = append(others, r)
		}
	}
	// The canary regresses hard; the fleet is fine.
	canary.setDrift(4.0, 200, "ok")
	for _, r := range others {
		r.setDrift(1.1, 200, "ok")
	}
	ro.Wait()

	st := ro.Status()
	if st.State != RolloutRolledBack {
		t.Fatalf("final state = %s (err %q), want rolled-back", st.State, st.Error)
	}
	if len(st.Promoted) != 0 {
		t.Fatalf("promoted %v during a rollback", st.Promoted)
	}
	paths := canary.reloadedPaths()
	if len(paths) != 2 || paths[0] != "models/v2.bin" || paths[1] != "models/v1.bin" {
		t.Fatalf("canary reloads = %v, want canary then rollback", paths)
	}
	for _, r := range others {
		if got := r.reloadedPaths(); len(got) != 0 {
			t.Fatalf("non-canary %s reloaded %v during rollback", r.id, got)
		}
	}
	events := journalEvents(t, buf.String())
	want := []string{"rollout.start", "rollout.canary", "rollout.rollback", "rollout.done"}
	if len(events) != len(want) {
		t.Fatalf("journal events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("journal events = %v, want %v", events, want)
		}
	}
}

// TestRolloutDriftStatusTriggersRollback checks the second regression
// trigger: the canary's own drift monitor saying retrain-recommended rolls
// back even when the EWMA comparison alone would pass.
func TestRolloutDriftStatusTriggersRollback(t *testing.T) {
	a, b := newFakeReplica(t, "a"), newFakeReplica(t, "b")
	ro := fastRollout(nil)
	if err := ro.Start("models/v2.bin", "models/v1.bin", healthyOf(a, b)); err != nil {
		t.Fatal(err)
	}
	canaryBase := ro.Status().Canary
	for _, r := range []*fakeReplica{a, b} {
		if r.base() == canaryBase {
			r.setDrift(1.0, 50, "retrain-recommended")
		} else {
			r.setDrift(1.0, 50, "ok")
		}
	}
	ro.Wait()
	if st := ro.Status(); st.State != RolloutRolledBack {
		t.Fatalf("final state = %s, want rolled-back", st.State)
	}
}

// TestRolloutIdleFleetPromotes checks the no-evidence path: with zero
// q-error samples anywhere there is nothing to compare, so the rollout
// promotes rather than wedging.
func TestRolloutIdleFleetPromotes(t *testing.T) {
	a, b := newFakeReplica(t, "a"), newFakeReplica(t, "b")
	ro := fastRollout(nil)
	if err := ro.Start("models/v2.bin", "", healthyOf(a, b)); err != nil {
		t.Fatal(err)
	}
	ro.Wait()
	if st := ro.Status(); st.State != RolloutOK {
		t.Fatalf("final state = %s (err %q), want ok", st.State, st.Error)
	}
}

// TestRolloutConflictAndCanaryFailure checks Start's concurrency guard and
// the failed terminal state when the canary refuses the reload.
func TestRolloutConflictAndCanaryFailure(t *testing.T) {
	a, b := newFakeReplica(t, "a"), newFakeReplica(t, "b")
	ro := fastRollout(nil)
	if err := ro.Start("models/v2.bin", "", healthyOf(a, b)); err != nil {
		t.Fatal(err)
	}
	if err := ro.Start("models/v3.bin", "", healthyOf(a, b)); err != ErrRolloutActive {
		t.Fatalf("concurrent Start err = %v, want ErrRolloutActive", err)
	}
	ro.Wait()

	// A second rollout may start once the first is terminal; "reject" makes
	// the canary's /admin/reload answer 409.
	if err := ro.Start("reject", "", healthyOf(a, b)); err != nil {
		t.Fatal(err)
	}
	ro.Wait()
	if st := ro.Status(); st.State != RolloutFailed || st.Error == "" {
		t.Fatalf("state after refused canary reload = %+v, want failed", st)
	}

	if err := ro.Start("models/v4.bin", "", func() []string { return nil }); err != ErrNoReplicas {
		t.Fatalf("empty fleet err = %v, want ErrNoReplicas", err)
	}
}
