package cluster

import (
	"math"
	"net/http"
	"strings"
	"testing"

	"cardnet/internal/obs"
)

// stageSumSeconds adds up every per-stage histogram's Sum in reg.
func stageSumSeconds(reg *obs.Registry) float64 {
	var total float64
	for _, s := range []string{StageRoute, StagePick, StageAttempt, StageProxy, StageRelay} {
		total += reg.Histogram(StageHistName(s), obs.TimeBuckets()).Sum()
	}
	return total
}

// TestRouterStageHistogramsTileProxy is the tiling property: because every
// stage is marked off one trace and the e2e histogram observes that trace's
// Total (last mark − start, not a second clock read), the per-stage
// histograms must sum to cluster.proxy.seconds — on success, failover,
// bad-request, no-replica, and retry-exhausted paths alike. Only float64
// accumulation noise is tolerated.
func TestRouterStageHistogramsTileProxy(t *testing.T) {
	a, b := newFakeReplica(t, "a"), newFakeReplica(t, "b")
	reg := obs.NewRegistry()
	rt, ts := newTestRouter(t, Config{Registry: reg, Retries: 1}, a, b)

	post := func(body string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/estimate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	// Success path, spread across keys.
	for i := 0; i < 40; i++ {
		post(estimateBody(i))
	}
	// Failover path: one replica rejecting forces attempt.1 -> attempt.2.
	a.overloaded.Store(true)
	for i := 0; i < 20; i++ {
		post(estimateBody(i))
	}
	// Retry-exhausted path: both reject, the fleet 503 is relayed.
	b.overloaded.Store(true)
	for i := 0; i < 10; i++ {
		post(estimateBody(i))
	}
	b.overloaded.Store(false)
	a.overloaded.Store(false)
	// Bad-request path: only route + relay stages exist.
	for i := 0; i < 10; i++ {
		post("{broken")
	}
	// No-replica path: route + pick + relay.
	rt.ring.Remove(a.base())
	rt.ring.Remove(b.base())
	for i := 0; i < 10; i++ {
		post(estimateBody(i))
	}

	hProxy := reg.Histogram("cluster.proxy.seconds", obs.TimeBuckets())
	if hProxy.Count() != 90 {
		t.Fatalf("e2e histogram saw %d requests, want 90", hProxy.Count())
	}
	e2e := hProxy.Sum()
	stages := stageSumSeconds(reg)
	// Tolerance is float64 addition noise only: each request contributes a
	// handful of ns-resolution terms, so anything beyond ~1e-9·n is a gap in
	// the tiling, i.e. a nanosecond the stages failed to attribute.
	eps := 1e-9 * float64(hProxy.Count())
	if diff := math.Abs(e2e - stages); diff > eps {
		t.Fatalf("stage sums do not tile e2e: stages=%.9fs e2e=%.9fs diff=%.3gs (eps %.3g)", stages, e2e, diff, eps)
	}
	if e2e <= 0 {
		t.Fatal("e2e sum is zero; the property test drove no traffic")
	}

	// Failovers amplified attempts: every exhausted request burned its full
	// 2-attempt budget, plus at least one failover before the Retry-After
	// cooloff steered later keys away from the rejecting replica.
	if c := reg.Histogram(StageHistName(StageAttempt), obs.TimeBuckets()).Count(); c < 21 {
		t.Fatalf("attempt stage count %d, want >=21 (10 exhausted x2 + >=1 failover)", c)
	}
	if c := reg.Histogram(StageHistName(StageProxy), obs.TimeBuckets()).Count(); c != 60 {
		t.Fatalf("proxy stage count %d, want 60 successful relays", c)
	}
	if c := reg.Histogram(StageHistName(StageRelay), obs.TimeBuckets()).Count(); c != 90 {
		t.Fatalf("relay stage count %d, want one per request", c)
	}
}
