// Package cluster is the horizontal scale-out layer above the serving
// engine: a sharded multi-replica router that fronts N `cardnet serve`
// processes.
//
// The pieces:
//
//   - Ring: a consistent-hash ring with virtual nodes. /estimate traffic is
//     routed on KeyHash(x, τ) — the same (hash(x), τ) identity the per-replica
//     estimate cache shards on — so each replica keeps seeing the same slice
//     of the keyspace and its LRU cache stays hot. Adding or removing one of
//     N replicas moves only ≈1/N of the keys.
//
//   - Prober: periodic /healthz + /metrics probes per replica (through the
//     shared obs scrape client, the same fleet-health semantics fleetstat
//     uses). A replica failing EjectAfter consecutive probes is ejected from
//     the ring; the first succeeding probe restores it.
//
//   - Router: the HTTP front. It proxies /estimate and /feedback to the
//     key's ring node with a bounded failover budget — 503 and connect
//     errors move to the next distinct ring node, Retry-After hints put the
//     rejecting replica in a short cooloff, X-Trace-Id is forwarded both
//     ways — and serves its own /healthz, /metrics, and /admin/rollout.
//     Drain flips /healthz to "draining" so load balancers stop sending
//     before the listener shuts down.
//
//   - Rollout: rolling model rollout across the fleet. A new model is
//     canaried onto one replica via its existing /admin/reload hot swap, the
//     canary's /drift q-error window is compared against the rest of the
//     fleet for a bake period, and the model is then promoted
//     replica-by-replica or rolled back. Every decision is journaled as
//     JSONL.
//
// The router is deliberately model-agnostic: it never decodes estimates,
// only the (x, τ) routing key, so replicas stay the single source of truth
// for validation and inference.
package cluster
