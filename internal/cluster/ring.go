package cluster

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sort"
	"sync"
)

// DefaultVNodes is the default number of virtual nodes per replica. Share
// imbalance on a vnode ring shrinks as ~1/sqrt(vnodes); at 256 vnodes every
// replica's share of the keyspace stays within ±10% of uniform through
// 8-replica fleets, and membership changes move close to the theoretical
// 1/N of keys.
const DefaultVNodes = 256

// Ring is a consistent-hash ring with virtual nodes. Each member node owns
// VNodes points on a 64-bit circle; a key is served by the node owning the
// first point clockwise from the key's hash. All methods are safe for
// concurrent use; lookups take a read lock only.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	nodes  map[string]struct{}
	points []ringPoint // sorted by hash
}

// ringPoint is one virtual node: a position on the circle and its owner.
type ringPoint struct {
	hash uint64
	node string
}

// NewRing returns an empty ring with the given virtual-node count per
// member (<=0 uses DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]struct{})}
}

// VNodes reports the per-member virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Add inserts a node's virtual points into the ring. Adding a member twice
// is a no-op.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: vnodeHash(node, i), node: node})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
}

// Remove deletes a node's virtual points. Keys it owned flow to the next
// point clockwise — spread across the survivors, not dumped on one node.
// Removing a non-member is a no-op.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports ring membership.
func (r *Ring) Has(node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.nodes[node]
	return ok
}

// Len reports the number of member nodes.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Nodes returns the members in sorted order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the node owning key — the owner of the first virtual point
// clockwise from it. ok is false on an empty ring.
func (r *Ring) Lookup(key uint64) (node string, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.search(key)].node, true
}

// Successors returns up to n distinct nodes in ring order starting at the
// key's owner: the failover candidates for the key, primary first. The walk
// preserves ring order so a key's failover target is stable too.
func (r *Ring) Successors(key uint64, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	start := r.search(key)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}

// search returns the index of the first point with hash >= key, wrapping to
// 0 past the end. Callers hold at least the read lock.
func (r *Ring) search(key uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		return 0
	}
	return i
}

// vnodeHash places virtual point i of a node on the circle: FNV-64a over
// the member name and index, scattered through a splitmix64 finalizer so
// consecutive indices land far apart.
func vnodeHash(node string, i int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(i))
	h.Write(b[:])
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a cheap bijective scrambler that turns
// the structured FNV output into uniformly spread ring positions.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// KeyHash is the routing key for an encoded query: FNV-64a over the float
// bits of x and the transformed threshold τ, scattered by the same
// finalizer as the ring points. Two requests for the same (x, τ) — the
// identity the per-replica estimate cache shards on — always hash to the
// same ring position, which is what keeps each replica's cache hot. Full
// τ-sweep requests pass tau = AllTaus so the whole curve for one x pins to
// one replica.
func KeyHash(x []float64, tau int) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range x {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	binary.LittleEndian.PutUint64(b[:], uint64(int64(tau)))
	h.Write(b[:])
	return mix64(h.Sum64())
}

// AllTaus is the τ placeholder KeyHash uses for full-curve (all=true)
// requests: every τ of one x routes identically.
const AllTaus = -1
