package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
)

// fakeReplica is a minimal stand-in for a `cardnet serve` process: it
// speaks just enough of /estimate, /healthz, /metrics, /drift, and
// /admin/reload for the router, prober, and rollout controller to operate,
// and records what it saw.
type fakeReplica struct {
	id string
	ts *httptest.Server

	healthy    atomic.Bool // false: /healthz and /metrics answer 503
	overloaded atomic.Bool // true: /estimate answers 503 + Retry-After

	mu        sync.Mutex
	estimates int
	reloads   []string
	version   int
	drift     map[string]any
	traceIDs  []string
	parents   []string
}

func newFakeReplica(t *testing.T, id string) *fakeReplica {
	t.Helper()
	f := &fakeReplica{id: id, version: 1, drift: map[string]any{
		"status": "ok", "qerror_ewma": 0.0, "samples": 0.0,
	}}
	f.healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/estimate", func(w http.ResponseWriter, r *http.Request) {
		if f.overloaded.Load() {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"overloaded"}`)
			return
		}
		f.mu.Lock()
		f.estimates++
		if tid := r.Header.Get("X-Trace-Id"); tid != "" {
			f.traceIDs = append(f.traceIDs, tid)
		}
		if p := r.Header.Get("X-Trace-Parent"); p != "" {
			f.parents = append(f.parents, p)
		}
		f.mu.Unlock()
		// A rogue replica-minted trace ID: the router must NOT relay this —
		// its own fleet trace ID is the response's join key.
		w.Header().Set("X-Trace-Id", "trace-"+f.id)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"estimate":1,"replica":%q}`, f.id)
	})
	mux.HandleFunc("/feedback", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"replica":%q}`, f.id)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !f.healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		f.mu.Lock()
		v := f.version
		f.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{"status": "ok", "model_version": v})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if !f.healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		f.mu.Lock()
		n := f.estimates
		f.mu.Unlock()
		// Counters render with a _total suffix in the real Prometheus
		// exposition (obs.WritePrometheus); the fake must match or the
		// prober's series lookup silently reads zero.
		fmt.Fprintf(w, "http_estimate_requests_total %d\n", n)
	})
	mux.HandleFunc("/drift", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		doc := make(map[string]any, len(f.drift))
		for k, v := range f.drift {
			doc[k] = v
		}
		f.mu.Unlock()
		json.NewEncoder(w).Encode(doc)
	})
	mux.HandleFunc("/admin/reload", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Path string `json:"path"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Path == "" {
			w.WriteHeader(http.StatusBadRequest)
			fmt.Fprint(w, `{"error":"bad reload"}`)
			return
		}
		if req.Path == "reject" { // test hook: a reload the replica refuses
			w.WriteHeader(http.StatusConflict)
			fmt.Fprint(w, `{"error":"shape mismatch"}`)
			return
		}
		f.mu.Lock()
		f.reloads = append(f.reloads, req.Path)
		f.version++
		v := f.version
		f.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{"version": v})
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

func (f *fakeReplica) base() string { return f.ts.URL }

func (f *fakeReplica) estimateCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.estimates
}

func (f *fakeReplica) reloadedPaths() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.reloads...)
}

func (f *fakeReplica) setDrift(ewma float64, samples int, status string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.drift = map[string]any{"status": status, "qerror_ewma": ewma, "samples": float64(samples)}
}
