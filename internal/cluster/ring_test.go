package cluster

import (
	"fmt"
	"math"
	"testing"
)

// testKeys returns n well-spread deterministic keys.
func testKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = mix64(uint64(i) + 0x9e3779b97f4a7c15)
	}
	return keys
}

// TestRingDistributionUniform is the ±10% property from the issue: at >=100
// virtual nodes, every replica's share of a large key population stays
// within 10% of uniform.
func TestRingDistributionUniform(t *testing.T) {
	for _, nodes := range []int{2, 3, 4, 8} {
		r := NewRing(DefaultVNodes)
		for i := 0; i < nodes; i++ {
			r.Add(fmt.Sprintf("http://10.0.0.%d:8089", i+1))
		}
		keys := testKeys(200_000)
		counts := map[string]int{}
		for _, k := range keys {
			n, ok := r.Lookup(k)
			if !ok {
				t.Fatal("lookup on populated ring failed")
			}
			counts[n]++
		}
		want := float64(len(keys)) / float64(nodes)
		for n, c := range counts {
			dev := math.Abs(float64(c)-want) / want
			if dev > 0.10 {
				t.Errorf("nodes=%d: %s owns %d keys, want %.0f ±10%% (dev %.1f%%)", nodes, n, c, want, dev*100)
			}
		}
		if len(counts) != nodes {
			t.Errorf("nodes=%d: only %d nodes received keys", nodes, len(counts))
		}
	}
}

// TestRingMinimalMovement checks consistent hashing's defining property:
// removing one of N replicas moves ≈1/N of the keys (all of them keys the
// removed node owned — no reshuffle among survivors), and adding it back
// restores the original assignment exactly.
func TestRingMinimalMovement(t *testing.T) {
	const nodes = 5
	r := NewRing(DefaultVNodes)
	members := make([]string, nodes)
	for i := range members {
		members[i] = fmt.Sprintf("http://10.0.0.%d:8089", i+1)
		r.Add(members[i])
	}
	keys := testKeys(50_000)
	before := make([]string, len(keys))
	for i, k := range keys {
		before[i], _ = r.Lookup(k)
	}

	victim := members[2]
	r.Remove(victim)
	moved := 0
	for i, k := range keys {
		after, _ := r.Lookup(k)
		if after == before[i] {
			continue
		}
		moved++
		if before[i] != victim {
			t.Fatalf("key %d moved from surviving node %s to %s", k, before[i], after)
		}
		if after == victim {
			t.Fatalf("key %d still routed to removed node", k)
		}
	}
	frac := float64(moved) / float64(len(keys))
	want := 1.0 / nodes
	if frac < want*0.8 || frac > want*1.2 {
		t.Errorf("removal moved %.3f of keys, want ≈%.3f (±20%%)", frac, want)
	}

	// Adding the node back restores the exact original assignment: the
	// ring's vnode positions are deterministic functions of the member name.
	r.Add(victim)
	for i, k := range keys {
		after, _ := r.Lookup(k)
		if after != before[i] {
			t.Fatalf("key %d not restored after re-add: %s != %s", k, after, before[i])
		}
	}
}

// TestRingSuccessors checks the failover candidate walk: primary first
// (same as Lookup), all distinct, capped at the member count.
func TestRingSuccessors(t *testing.T) {
	r := NewRing(64)
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	for _, m := range members {
		r.Add(m)
	}
	for _, k := range testKeys(500) {
		primary, _ := r.Lookup(k)
		succ := r.Successors(k, 5)
		if len(succ) != len(members) {
			t.Fatalf("got %d successors, want %d", len(succ), len(members))
		}
		if succ[0] != primary {
			t.Fatalf("successors[0]=%s, Lookup=%s", succ[0], primary)
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("duplicate successor %s", s)
			}
			seen[s] = true
		}
	}
}

// TestRingEmptyAndSingle covers the degenerate shapes the router can see
// mid-outage.
func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(0)
	if r.VNodes() != DefaultVNodes {
		t.Fatalf("vnodes=%d, want default %d", r.VNodes(), DefaultVNodes)
	}
	if _, ok := r.Lookup(42); ok {
		t.Fatal("lookup on empty ring succeeded")
	}
	if s := r.Successors(42, 3); s != nil {
		t.Fatalf("successors on empty ring: %v", s)
	}
	r.Add("http://only:1")
	r.Add("http://only:1") // idempotent
	if r.Len() != 1 {
		t.Fatalf("len=%d after duplicate add", r.Len())
	}
	if n, _ := r.Lookup(42); n != "http://only:1" {
		t.Fatalf("lookup=%s", n)
	}
	r.Remove("http://absent:1") // no-op
	if r.Len() != 1 {
		t.Fatal("removing a non-member changed the ring")
	}
}

// TestKeyHashAffinity checks the routing key is a pure function of (x, τ)
// and actually separates different queries.
func TestKeyHashAffinity(t *testing.T) {
	x1 := []float64{1, 0, 1, 1, 0, 0, 1, 0}
	x2 := []float64{1, 0, 1, 1, 0, 0, 1, 1}
	if KeyHash(x1, 3) != KeyHash(append([]float64(nil), x1...), 3) {
		t.Fatal("same (x, τ) hashed differently")
	}
	if KeyHash(x1, 3) == KeyHash(x1, 4) {
		t.Fatal("different τ hashed identically")
	}
	if KeyHash(x1, 3) == KeyHash(x2, 3) {
		t.Fatal("different x hashed identically")
	}
	if KeyHash(x1, AllTaus) == KeyHash(x1, 0) {
		t.Fatal("all-τ key collides with τ=0")
	}
}
