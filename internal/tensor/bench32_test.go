package tensor

import (
	"math/rand"
	"testing"
)

// benchDims matches the trainbench GFLOP/s harness (M×K · (N×K)ᵀ).
const (
	benchM = 256
	benchK = 512
	benchN = 512
)

// reportGFLOPS attaches a GFLOP/s metric (2·M·N·K flops per op) so
// `make bench-kernels` can print the f64/f32/int8 table straight from the
// benchmark output.
func reportGFLOPS(b *testing.B) {
	flops := 2 * float64(benchM) * float64(benchN) * float64(benchK)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func BenchmarkKernelABT_f64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randMatrix(rng, benchM, benchK)
	w := randMatrix(rng, benchN, benchK)
	out := NewMatrix(benchM, benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulABT(a, w, out)
	}
	reportGFLOPS(b)
}

func BenchmarkKernelABT_f32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := Demote32(randMatrix(rng, benchM, benchK))
	w := Demote32(randMatrix(rng, benchN, benchK))
	out := NewMatrix32(benchM, benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulABT32(a, w, out)
	}
	reportGFLOPS(b)
}

func BenchmarkKernelABT_int8(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := QuantizeRows(Demote32(randMatrix(rng, benchM, benchK)), nil)
	w := QuantizeRows(Demote32(randMatrix(rng, benchN, benchK)), nil)
	out := NewMatrix32(benchM, benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulABTQ8(a, w, out)
	}
	reportGFLOPS(b)
}

// BenchmarkKernelInt8Quantize isolates the dynamic activation-quantization
// cost the int8 tier pays per layer on top of the matmul itself.
func BenchmarkKernelInt8Quantize(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := Demote32(randMatrix(rng, benchM, benchK))
	q := NewQuantMatrix(benchM, benchK)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QuantizeRows(a, q)
	}
}

// zeroSkipOperands builds a MatMul left operand with the given fraction of
// exact zeros scattered at random — the regime where matMulRows' zero-skip
// branch either pays (sparse training gradients) or hurts (dense inference
// activations, where it only mispredicts).
func zeroSkipOperands(zeroFrac float64) (a, bm, out *Matrix) {
	rng := rand.New(rand.NewSource(3))
	a = randMatrix(rng, benchM, benchK)
	for i := range a.Data {
		if rng.Float64() < zeroFrac {
			a.Data[i] = 0
		}
	}
	bm = randMatrix(rng, benchK, benchN)
	return a, bm, NewMatrix(benchM, benchN)
}

func BenchmarkZeroSkip(b *testing.B) {
	cases := []struct {
		name     string
		zeroFrac float64
		kernel   func(a, b, out *Matrix) *Matrix
	}{
		// Dense activations: the skip is pure branch-misprediction overhead.
		{"dense/branchy", 0, MatMul},
		{"dense/branchfree", 0, MatMulDense},
		// Sparse training-style operands: the skip elides whole inner sweeps.
		{"sparse90/branchy", 0.9, MatMul},
		{"sparse90/branchfree", 0.9, MatMulDense},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			a, bm, out := zeroSkipOperands(c.zeroFrac)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.kernel(a, bm, out)
			}
			reportGFLOPS(b)
		})
	}
}
