package tensor

// Parallel kernel variants. Each one shards output rows across the package
// worker pool in contiguous row blocks and is bit-identical to its
// sequential counterpart: every output element is accumulated by one worker
// in exactly the sequential order, so no cross-worker reduction (and no
// floating-point reassociation) ever happens. Inputs below parMinFlops fall
// through to the sequential kernel so small serving batches don't pay
// dispatch overhead.

// parMinFlops is the minimum kernel size (in multiply-add flops, counted as
// 2·m·k·n) worth parallelizing. Dispatching a row block costs on the order
// of a microsecond; a block should amortize that many times over. A var so
// the fuzz tests can force tiny inputs through the parallel path.
var parMinFlops = 1 << 18

// matFlops estimates a kernel's flop count, saturating on overflow-scale
// dimensions (matrices that large never appear here).
func matFlops(m, k, n int) int { return 2 * m * k * n }

// PMatMul is the parallel variant of MatMul (out = a·b), sharding output
// rows across the worker pool. Bit-identical to MatMul for every shape and
// worker count.
func PMatMul(a, b, out *Matrix) *Matrix {
	if Workers() <= 1 || matFlops(a.Rows, a.Cols, b.Cols) < parMinFlops {
		return MatMul(a, b, out)
	}
	if a.Cols != b.Rows {
		panic("tensor: matmul shape mismatch")
	}
	if out == nil {
		out = NewMatrix(a.Rows, b.Cols)
	} else {
		if out.Rows != a.Rows || out.Cols != b.Cols {
			panic("tensor: matmul out has wrong shape")
		}
		out.Zero()
	}
	ParallelRows(a.Rows, 1, func(lo, hi int) {
		matMulRows(a, b, out, lo, hi)
	})
	return out
}

// PMatMulABT is the parallel variant of MatMulABT (out = a·bᵀ), sharding
// rows of a across the worker pool. Each output element is a per-row Dot
// whose accumulation order does not depend on the row tiling, so results
// are bit-identical to MatMulABT (and to per-row Dot calls) at any worker
// count.
func PMatMulABT(a, b, out *Matrix) *Matrix {
	if Workers() <= 1 || matFlops(a.Rows, a.Cols, b.Rows) < parMinFlops {
		return MatMulABT(a, b, out)
	}
	if a.Cols != b.Cols {
		panic("tensor: matmulABT shape mismatch")
	}
	if out == nil {
		out = NewMatrix(a.Rows, b.Rows)
	}
	ParallelRows(a.Rows, 1, func(lo, hi int) {
		matMulABTRows(a, b, out, lo, hi)
	})
	return out
}

// MatMulATBAdd computes out += aᵀ·b where a is n×r and b is n×c (out r×c,
// must be preallocated). It is the gradient-accumulation form of MatMulATB
// used by Dense backward passes (dW += dYᵀ·X): the n-outer loop order keeps
// both inputs streaming row-contiguously, and zero entries of a skip whole
// row updates (ReLU-gated gradients are mostly zero).
func MatMulATBAdd(a, b, out *Matrix) {
	if a.Rows != b.Rows {
		panic("tensor: matmulATBAdd shape mismatch")
	}
	if out.Rows != a.Cols || out.Cols != b.Cols {
		panic("tensor: matmulATBAdd out has wrong shape")
	}
	for n := 0; n < a.Rows; n++ {
		an := a.Row(n)
		bn := b.Row(n)
		for i, av := range an {
			if av == 0 {
				continue
			}
			oi := out.Row(i)
			for j, bv := range bn {
				oi[j] += av * bv
			}
		}
	}
}

// matMulATBAddCols accumulates output rows [iLo, iHi) of out += aᵀ·b with an
// i-outer loop. For each output element (i, j) the additions happen in the
// same ascending-n order (with the same av == 0 skips) as MatMulATBAdd's
// n-outer loop, so the result is bit-identical — only the traversal order
// across elements differs, which is what makes output rows independent and
// shardable.
func matMulATBAddCols(a, b, out *Matrix, iLo, iHi int) {
	for i := iLo; i < iHi; i++ {
		oi := out.Row(i)
		for n := 0; n < a.Rows; n++ {
			av := a.Data[n*a.Cols+i]
			if av == 0 {
				continue
			}
			bn := b.Row(n)
			for j, bv := range bn {
				oi[j] += av * bv
			}
		}
	}
}

// PMatMulATBAdd is the parallel variant of MatMulATBAdd, sharding output
// rows (columns of a) across the worker pool. Bit-identical to MatMulATBAdd.
func PMatMulATBAdd(a, b, out *Matrix) {
	if a.Rows != b.Rows {
		panic("tensor: matmulATBAdd shape mismatch")
	}
	if out.Rows != a.Cols || out.Cols != b.Cols {
		panic("tensor: matmulATBAdd out has wrong shape")
	}
	if Workers() <= 1 || matFlops(a.Rows, a.Cols, b.Cols) < parMinFlops {
		MatMulATBAdd(a, b, out)
		return
	}
	ParallelRows(a.Cols, 1, func(lo, hi int) {
		matMulATBAddCols(a, b, out, lo, hi)
	})
}

// PMatMulATB is the parallel variant of MatMulATB (out = aᵀ·b), sharding
// output rows across the worker pool. Bit-identical to MatMulATB.
func PMatMulATB(a, b, out *Matrix) *Matrix {
	if Workers() <= 1 || matFlops(a.Rows, a.Cols, b.Cols) < parMinFlops {
		return MatMulATB(a, b, out)
	}
	if a.Rows != b.Rows {
		panic("tensor: matmulATB shape mismatch")
	}
	if out == nil {
		out = NewMatrix(a.Cols, b.Cols)
	} else {
		out.Zero()
	}
	ParallelRows(a.Cols, 1, func(lo, hi int) {
		matMulATBAddCols(a, b, out, lo, hi)
	})
	return out
}
