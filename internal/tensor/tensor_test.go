package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %+v", m)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d not zero: %v", i, v)
		}
	}
}

func TestFromRowsAndAccessors(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.At(1, 0) != 3 || m.At(2, 1) != 6 {
		t.Fatalf("At wrong: %v", m.Data)
	}
	m.Set(0, 1, 9)
	if m.At(0, 1) != 9 {
		t.Fatal("Set did not stick")
	}
	row := m.Row(2)
	row[0] = 42
	if m.At(2, 0) != 42 {
		t.Fatal("Row must alias storage")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMatMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	c := MatMul(a, b, nil)
	want := [][]float64{{58, 64}, {139, 154}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("c[%d][%d]=%v want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatMulVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n, r, c := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := NewMatrix(n, r)
		b := NewMatrix(n, c)
		RandNormal(rng, a.Data, 0, 1)
		RandNormal(rng, b.Data, 0, 1)

		// aᵀ·b via MatMulATB must equal explicit transpose matmul.
		at := NewMatrix(r, n)
		for i := 0; i < n; i++ {
			for j := 0; j < r; j++ {
				at.Set(j, i, a.At(i, j))
			}
		}
		want := MatMul(at, b, nil)
		got := MatMulATB(a, b, nil)
		assertClose(t, want.Data, got.Data, 1e-12)

		// a·bᵀ via MatMulABT: a is n×r, b2 is c×r.
		b2 := NewMatrix(c, r)
		RandNormal(rng, b2.Data, 0, 1)
		b2t := NewMatrix(r, c)
		for i := 0; i < c; i++ {
			for j := 0; j < r; j++ {
				b2t.Set(j, i, b2.At(i, j))
			}
		}
		want2 := MatMul(a, b2t, nil)
		got2 := MatMulABT(a, b2, nil)
		assertClose(t, want2.Data, got2.Data, 1e-12)
	}
}

func TestDotAxpyScale(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot=%v", got)
	}
	y := []float64{1, 1}
	Axpy(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy=%v", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 || y[1] != 4.5 {
		t.Fatalf("Scale=%v", y)
	}
}

func TestAddBiasColSums(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	AddBias(m, []float64{10, 20})
	if m.At(0, 0) != 11 || m.At(1, 1) != 24 {
		t.Fatalf("AddBias wrong: %v", m.Data)
	}
	sums := make([]float64, 2)
	ColSums(m, sums)
	if sums[0] != 24 || sums[1] != 46 {
		t.Fatalf("ColSums=%v", sums)
	}
}

func TestConcat(t *testing.T) {
	got := Concat([]float64{1}, nil, []float64{2, 3})
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Concat=%v", got)
	}
}

func TestGlorotUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 1000)
	GlorotUniform(rng, x, 30, 20)
	limit := math.Sqrt(6.0 / 50.0)
	for _, v := range x {
		if v < -limit || v >= limit {
			t.Fatalf("value %v outside ±%v", v, limit)
		}
	}
	// Should span a reasonable fraction of the range.
	if MaxAbs(x) < limit/2 {
		t.Fatalf("suspiciously narrow init, max=%v", MaxAbs(x))
	}
}

func TestL2NormMaxAbs(t *testing.T) {
	if got := L2Norm([]float64{3, 4}); got != 5 {
		t.Fatalf("L2Norm=%v", got)
	}
	if got := MaxAbs([]float64{-7, 2}); got != 7 {
		t.Fatalf("MaxAbs=%v", got)
	}
	if got := MaxAbs(nil); got != 0 {
		t.Fatalf("MaxAbs(nil)=%v", got)
	}
}

// Property: matmul distributes over addition — a·(b+c) = a·b + a·c.
func TestMatMulDistributiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, k, m := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a := NewMatrix(n, k)
		b := NewMatrix(k, m)
		c := NewMatrix(k, m)
		RandNormal(r, a.Data, 0, 1)
		RandNormal(r, b.Data, 0, 1)
		RandNormal(r, c.Data, 0, 1)
		bc := NewMatrix(k, m)
		for i := range bc.Data {
			bc.Data[i] = b.Data[i] + c.Data[i]
		}
		left := MatMul(a, bc, nil)
		ab := MatMul(a, b, nil)
		ac := MatMul(a, c, nil)
		for i := range left.Data {
			if math.Abs(left.Data[i]-(ab.Data[i]+ac.Data[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func assertClose(t *testing.T, want, got []float64, tol float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("length mismatch %d vs %d", len(want), len(got))
	}
	for i := range want {
		if math.Abs(want[i]-got[i]) > tol {
			t.Fatalf("element %d: want %v got %v", i, want[i], got[i])
		}
	}
}

func TestCloneAndZero(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not alias")
	}
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}

func TestMatMulReusesOutAndChecksShapes(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3}, {4}})
	out := NewMatrix(1, 1)
	out.Data[0] = 77 // must be overwritten, not accumulated into
	got := MatMul(a, b, out)
	if got != out || out.Data[0] != 11 {
		t.Fatalf("out reuse broken: %v", out.Data)
	}
	mustPanic(t, func() { MatMul(a, a, nil) })
	mustPanic(t, func() { MatMul(a, b, NewMatrix(2, 2)) })
	mustPanic(t, func() { MatMulATB(a, NewMatrix(3, 1), nil) })
	mustPanic(t, func() { MatMulABT(a, NewMatrix(1, 3), nil) })
	mustPanic(t, func() { NewMatrix(-1, 2) })
	mustPanic(t, func() { Dot([]float64{1}, []float64{1, 2}) })
	mustPanic(t, func() { Axpy(1, []float64{1}, []float64{1, 2}) })
	mustPanic(t, func() { AddBias(a, []float64{1, 2, 3}) })
	mustPanic(t, func() { ColSums(a, make([]float64, 5)) })
}

func TestMatMulATBReusesOut(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewMatrix(3, 2)
	b := NewMatrix(3, 4)
	RandNormal(rng, a.Data, 0, 1)
	RandNormal(rng, b.Data, 0, 1)
	out := NewMatrix(2, 4)
	RandNormal(rng, out.Data, 0, 1) // stale values must be cleared
	got := MatMulATB(a, b, out)
	want := MatMulATB(a, b, nil)
	assertClose(t, want.Data, got.Data, 1e-12)
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("empty FromRows: %+v", m)
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
