package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// randMatrix returns an r×c float64 matrix with N(0,1) entries.
func randMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	RandNormal(rng, m.Data, 0, 1)
	return m
}

// fuzzed shapes shared by the precision-kernel tests: skinny, square, wide,
// sub-tile and over-tile row counts (abtRowTile is 8).
var kernelShapes = []struct{ r, k, c int }{
	{1, 1, 1},
	{1, 7, 3},
	{3, 16, 5},
	{7, 33, 9},
	{8, 24, 8},
	{13, 64, 21},
	{32, 60, 17},
	{57, 128, 40},
}

func TestMatMulABT32MatchesF64(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, s := range kernelShapes {
		a64 := randMatrix(rng, s.r, s.k)
		b64 := randMatrix(rng, s.c, s.k)
		want := MatMulABT(a64, b64, nil)
		got := MatMulABT32(Demote32(a64), Demote32(b64), nil)
		if got.Rows != s.r || got.Cols != s.c {
			t.Fatalf("shape %v: got %d×%d", s, got.Rows, got.Cols)
		}
		for i := range got.Data {
			w := want.Data[i]
			g := float64(got.Data[i])
			if d := math.Abs(g - w); d > 1e-4*(1+math.Abs(w))*float64(s.k) {
				t.Fatalf("shape %v: elem %d = %g, want %g (|Δ|=%g)", s, i, g, w, d)
			}
		}
	}
}

func TestMatMulABTAdd32Accumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := Demote32(randMatrix(rng, 9, 20))
	b := Demote32(randMatrix(rng, 6, 20))
	base := MatMulABT32(a, b, nil)
	acc := NewMatrix32(9, 6)
	for i := range acc.Data {
		acc.Data[i] = float32(i)
	}
	MatMulABTAdd32(a, b, acc)
	for i := range acc.Data {
		want := float32(i) + base.Data[i]
		if acc.Data[i] != want {
			t.Fatalf("elem %d = %g, want %g", i, acc.Data[i], want)
		}
	}
}

func TestQuantizeRowsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := Demote32(randMatrix(rng, 11, 37))
	// An all-zero row must quantize to scale 0 without dividing by zero.
	zr := src.Row(4)
	for j := range zr {
		zr[j] = 0
	}
	q := QuantizeRows(src, nil)
	if q.Scale[4] != 0 {
		t.Fatalf("zero row scale = %g, want 0", q.Scale[4])
	}
	for i := 0; i < src.Rows; i++ {
		scale := float64(q.Scale[i])
		for j, v := range src.Row(i) {
			deq := float64(q.Row(i)[j]) * scale
			// Round-to-nearest symmetric quantization: error ≤ scale/2.
			if math.Abs(deq-float64(v)) > scale/2+1e-7 {
				t.Fatalf("row %d col %d: dequant %g vs %g (scale %g)", i, j, deq, v, scale)
			}
		}
	}
}

func TestMatMulABTQ8ApproximatesF32(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, s := range kernelShapes {
		a32 := Demote32(randMatrix(rng, s.r, s.k))
		b32 := Demote32(randMatrix(rng, s.c, s.k))
		want := MatMulABT32(a32, b32, nil)
		got := MatMulABTQ8(QuantizeRows(a32, nil), QuantizeRows(b32, nil), nil)
		for i := 0; i < s.r; i++ {
			for j := 0; j < s.c; j++ {
				w := float64(want.At(i, j))
				g := float64(got.At(i, j))
				// Each int8 factor carries ≤ scale/2 rounding error; the k-term
				// dot product error is bounded by k·(sa·|b|max + sb·|a|max)/2
				// plus the cross term. A loose per-shape bound suffices here;
				// the model-level accuracy gate is the real acceptance test.
				bound := float64(s.k) * 0.05
				if math.Abs(g-w) > bound {
					t.Fatalf("shape %v (%d,%d): q8 %g vs f32 %g", s, i, j, g, w)
				}
			}
		}
	}
}

func TestMatMulABTQ8AddAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := QuantizeRows(Demote32(randMatrix(rng, 10, 16)), nil)
	b := QuantizeRows(Demote32(randMatrix(rng, 5, 16)), nil)
	base := MatMulABTQ8(a, b, nil)
	acc := NewMatrix32(10, 5)
	for i := range acc.Data {
		acc.Data[i] = 2
	}
	MatMulABTQ8Add(a, b, acc)
	for i := range acc.Data {
		want := 2 + base.Data[i]
		if acc.Data[i] != want {
			t.Fatalf("elem %d = %g, want %g", i, acc.Data[i], want)
		}
	}
}

func TestMatMulDenseMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, s := range kernelShapes {
		a := randMatrix(rng, s.r, s.k)
		// Sprinkle exact zeros so the zero-skip in MatMul actually fires.
		for i := range a.Data {
			if rng.Intn(3) == 0 {
				a.Data[i] = 0
			}
		}
		b := randMatrix(rng, s.k, s.c)
		want := MatMul(a, b, nil)
		got := MatMulDense(a, b, nil)
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("shape %v: elem %d = %g, want %g", s, i, got.Data[i], want.Data[i])
			}
		}
		// Preallocated out must be overwritten, not accumulated.
		reused := NewMatrix(s.r, s.c)
		for i := range reused.Data {
			reused.Data[i] = 99
		}
		MatMulDense(a, b, reused)
		for i := range reused.Data {
			if reused.Data[i] != want.Data[i] {
				t.Fatalf("shape %v: reused elem %d = %g, want %g", s, i, reused.Data[i], want.Data[i])
			}
		}
	}
}
