package tensor

import (
	"runtime"
	"sync"
)

// The package keeps one persistent worker pool shared by every parallel
// kernel and by the data-parallel training engine in internal/core. Pool
// goroutines are spawned lazily on first parallel dispatch and then live for
// the life of the process, so steady-state dispatch costs one queue append
// and one condition-variable signal per task instead of a goroutine spawn.
//
// The pool is "help-first": a caller that dispatches N tasks runs one of
// them inline and then drains further queued tasks itself until its own
// tasks are done. Because a waiting caller always makes progress on whatever
// work is queued, nested dispatch (a pool task that itself calls RunParts,
// e.g. a training shard whose Dense layers call the parallel kernels) can
// never deadlock, even if the pool has zero free goroutines.
var pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []func()
	started int // background goroutines spawned so far
	idle    int // of those, how many are parked waiting for work
}

// maxPoolGoroutines bounds the background goroutine count; tasks beyond it
// queue and are drained by helping callers. The bound is a backstop against
// runaway SetWorkers values, far above any sensible shard count.
const maxPoolGoroutines = 64

// workerCount is the target parallel width of the kernels (not a bound on
// RunParts, whose part count the caller fixes for determinism).
var (
	workerMu    sync.Mutex
	workerCount = runtime.GOMAXPROCS(0)
)

// SetWorkers sets how many row blocks the parallel kernels split work into
// and returns the previous value. n < 1 resets to runtime.GOMAXPROCS. It
// does not resize the pool's goroutines; those grow on demand (bounded), so
// a worker count above the machine width only costs scheduling, never
// correctness.
func SetWorkers(n int) int {
	workerMu.Lock()
	defer workerMu.Unlock()
	prev := workerCount
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	workerCount = n
	return prev
}

// Workers returns the current parallel width of the kernels.
func Workers() int {
	workerMu.Lock()
	defer workerMu.Unlock()
	return workerCount
}

// ensureGoroutines (pool.mu held) grows the background pool until `need`
// tasks could run concurrently, counting currently idle workers.
func ensureGoroutines(need int) {
	target := pool.started - pool.idle + need
	if target > maxPoolGoroutines {
		target = maxPoolGoroutines
	}
	for pool.started < target {
		pool.started++
		go func() {
			pool.mu.Lock()
			for {
				for len(pool.queue) == 0 {
					pool.idle++
					pool.cond.Wait()
					pool.idle--
				}
				task := pool.queue[len(pool.queue)-1]
				pool.queue = pool.queue[:len(pool.queue)-1]
				pool.mu.Unlock()
				task()
				pool.mu.Lock()
			}
		}()
	}
}

// tryRunOne pops and runs one queued task, reporting whether it found any.
func tryRunOne() bool {
	pool.mu.Lock()
	if len(pool.queue) == 0 {
		pool.mu.Unlock()
		return false
	}
	task := pool.queue[len(pool.queue)-1]
	pool.queue = pool.queue[:len(pool.queue)-1]
	pool.mu.Unlock()
	task()
	return true
}

// RunParts executes fn(0..parts-1) concurrently on the pool and returns when
// all parts finish. The caller runs part 0 inline and then helps drain the
// queue, so RunParts is safe to call from inside a pool task. Each part index
// runs exactly once regardless of pool size, which is what lets callers tie
// deterministic sharding to a fixed part count.
func RunParts(parts int, fn func(part int)) {
	if parts <= 1 {
		if parts == 1 {
			fn(0)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(parts - 1)
	pool.mu.Lock()
	if pool.cond == nil {
		pool.cond = sync.NewCond(&pool.mu)
	}
	ensureGoroutines(parts - 1)
	for k := 1; k < parts; k++ {
		k := k
		pool.queue = append(pool.queue, func() {
			defer wg.Done()
			fn(k)
		})
	}
	pool.mu.Unlock()
	pool.cond.Broadcast()

	fn(0)
	// Help: drain whatever is queued (our tasks or anyone's — progress
	// either way) before blocking on the remainder.
	for tryRunOne() {
	}
	wg.Wait()
}

// ParallelRows splits [0, n) into up to Workers() contiguous blocks of at
// least minBlock rows each and runs fn over them concurrently. Below the
// threshold (or at one worker) it runs fn(0, n) inline, so small inputs pay
// no dispatch overhead. fn must be safe to run concurrently on disjoint
// ranges.
func ParallelRows(n, minBlock int, fn func(lo, hi int)) {
	w := Workers()
	if minBlock < 1 {
		minBlock = 1
	}
	if w > n/minBlock {
		w = n / minBlock
	}
	if w <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	bounds := ShardBounds(n, w)
	RunParts(w, func(k int) {
		fn(bounds[k], bounds[k+1])
	})
}

// ShardBounds splits [0, n) into parts contiguous near-equal blocks and
// returns the parts+1 boundaries (block k is [bounds[k], bounds[k+1])). The
// split depends only on n and parts, which is what deterministic sharding
// builds on. Blocks may be empty when n < parts.
func ShardBounds(n, parts int) []int {
	if parts < 1 {
		parts = 1
	}
	base, rem := n/parts, n%parts
	bounds := make([]int, parts+1)
	for k := 0; k < parts; k++ {
		sz := base
		if k < rem {
			sz++
		}
		bounds[k+1] = bounds[k] + sz
	}
	return bounds
}
