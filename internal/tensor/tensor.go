// Package tensor provides the dense float64 vector and matrix kernels used
// by the neural-network, boosting, and estimator packages (the Φ/Φ′ and VAE
// networks of the paper's Sections 5–7 bottom out here). It is deliberately
// small: the models in this repository only need contiguous row-major
// matrices, a handful of BLAS-1/2/3 style routines, and seeded random
// initialization. The heavy kernels (MatMul and friends) optionally fan out
// over a shared help-first worker pool sized by SetWorkers; internal/core's
// data-parallel trainer and internal/serving's batch workers share that
// pool.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Vector is a dense float64 vector.
type Vector = []float64

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %d×%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all share one length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("tensor: ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// RowSlice returns rows [lo, hi) as a matrix view aliasing the storage of m
// (rows are contiguous, so no copy is needed). Writes through the view are
// visible in m; the data-parallel trainer uses disjoint views as zero-copy
// minibatch shards.
func (m *Matrix) RowSlice(lo, hi int) *Matrix {
	if lo < 0 || hi < lo || hi > m.Rows {
		panic(fmt.Sprintf("tensor: rowslice [%d,%d) of %d rows", lo, hi, m.Rows))
	}
	return &Matrix{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero resets all elements to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MatMul computes out = a·b, allocating out when nil. a is r×k, b is k×c.
func MatMul(a, b, out *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %d×%d · %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out == nil {
		out = NewMatrix(a.Rows, b.Cols)
	} else {
		if out.Rows != a.Rows || out.Cols != b.Cols {
			panic("tensor: matmul out has wrong shape")
		}
		out.Zero()
	}
	matMulRows(a, b, out, 0, a.Rows)
	return out
}

// matMulRows runs the MatMul inner loops over output rows [lo, hi), which
// must already be zeroed. The ikj loop order keeps the inner loop contiguous
// in b and out. Row blocks are independent, so the parallel variant shards
// this helper and stays bit-identical to the sequential kernel.
//
// The zero-skip below is deliberate and training/sparse-only: MatMul's
// operands on the training path are binary feature rows and ReLU-gated
// gradients, where entire inner sweeps vanish often enough to pay for the
// test. On dense inference activations the skip almost never fires and the
// data-dependent branch defeats the predictor; dense callers use the
// branch-free MatMulDense (and the float32/int8 inference kernels, which
// never zero-skip). BenchmarkZeroSkip measures the gap both ways.
func matMulRows(a, b, out *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		ai := a.Row(i)
		oi := out.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := ai[k]
			if aik == 0 {
				continue
			}
			bk := b.Row(k)
			for j := range bk {
				oi[j] += aik * bk[j]
			}
		}
	}
}

// MatMulATB computes out = aᵀ·b where a is n×r and b is n×c (out is r×c).
func MatMulATB(a, b, out *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic("tensor: matmulATB shape mismatch")
	}
	if out == nil {
		out = NewMatrix(a.Cols, b.Cols)
	} else {
		out.Zero()
	}
	for n := 0; n < a.Rows; n++ {
		an := a.Row(n)
		bn := b.Row(n)
		for i, av := range an {
			if av == 0 {
				continue
			}
			oi := out.Row(i)
			for j, bv := range bn {
				oi[j] += av * bv
			}
		}
	}
	return out
}

// abtRowTile is the row-block size of MatMulABT: b (typically a weight
// matrix larger than L1/L2) is streamed once per block of abtRowTile rows of
// a instead of once per row, which is what makes batched inference faster
// than per-sample inference on memory-bound layers. 8 rows of a few hundred
// float64s stay resident in L1 across the whole sweep of b.
const abtRowTile = 8

// MatMulABT computes out = a·bᵀ where a is r×k and b is c×k (out is r×c).
// Each element is Dot(a.Row(i), b.Row(j)) — accumulated in the same order
// regardless of batch size — so a B-row product is bit-identical to B
// separate single-row products.
//
// Multi-row products run dot4: four dot products over a shared weight row in
// one loop. Each accumulator performs exactly the per-row Dot sequence, but
// the four addition chains are independent, so the CPU overlaps them instead
// of stalling on one chain's add latency — the batched path's throughput win
// over per-request calls. Row tiling additionally streams each weight row
// once per tile rather than once per input row.
func MatMulABT(a, b, out *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic("tensor: matmulABT shape mismatch")
	}
	if out == nil {
		out = NewMatrix(a.Rows, b.Rows)
	}
	matMulABTRows(a, b, out, 0, a.Rows)
	return out
}

// matMulABTRows runs the tiled MatMulABT loops over output rows [lo, hi).
// Each output element is a per-row Dot whose accumulation order is
// independent of the tile boundaries, so any row sharding (including the
// parallel variant's) produces bit-identical results.
func matMulABTRows(a, b, out *Matrix, lo, hi int) {
	for i0 := lo; i0 < hi; i0 += abtRowTile {
		i1 := i0 + abtRowTile
		if i1 > hi {
			i1 = hi
		}
		for j := 0; j < b.Rows; j++ {
			bj := b.Row(j)
			i := i0
			for ; i+3 < i1; i += 4 {
				s0, s1, s2, s3 := dot4(a.Row(i), a.Row(i+1), a.Row(i+2), a.Row(i+3), bj)
				out.Row(i)[j] = s0
				out.Row(i + 1)[j] = s1
				out.Row(i + 2)[j] = s2
				out.Row(i + 3)[j] = s3
			}
			for ; i < i1; i++ {
				out.Row(i)[j] = Dot(a.Row(i), bj)
			}
		}
	}
}

// dot4 returns (Dot(a0,b), Dot(a1,b), Dot(a2,b), Dot(a3,b)). Each sum uses
// the identical expression and element order as Dot, so the results are
// bit-equal to four separate Dot calls.
func dot4(a0, a1, a2, a3, b []float64) (s0, s1, s2, s3 float64) {
	if len(b) == 0 {
		return
	}
	_ = a0[len(b)-1]
	_ = a1[len(b)-1]
	_ = a2[len(b)-1]
	_ = a3[len(b)-1]
	for k, v := range b {
		s0 += a0[k] * v
		s1 += a1[k] * v
		s2 += a2[k] * v
		s3 += a3[k] * v
	}
	return
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha*x.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("tensor: axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// AddBias adds the bias vector to every row of m in place.
func AddBias(m *Matrix, bias []float64) {
	if len(bias) != m.Cols {
		panic("tensor: bias length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		for j, b := range bias {
			ri[j] += b
		}
	}
}

// ColSums accumulates per-column sums of m into out (len m.Cols).
func ColSums(m *Matrix, out []float64) {
	if len(out) != m.Cols {
		panic("tensor: colsums length mismatch")
	}
	for i := range out {
		out[i] = 0
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for j, v := range row {
			out[j] += v
		}
	}
}

// RandUniform fills x with uniform values in [lo, hi).
func RandUniform(rng *rand.Rand, x []float64, lo, hi float64) {
	for i := range x {
		x[i] = lo + rng.Float64()*(hi-lo)
	}
}

// RandNormal fills x with N(mean, std²) values.
func RandNormal(rng *rand.Rand, x []float64, mean, std float64) {
	for i := range x {
		x[i] = mean + rng.NormFloat64()*std
	}
}

// GlorotUniform fills a fanOut×fanIn weight slice with Glorot/Xavier uniform
// initialization, the standard choice for the tanh/sigmoid/ReLU stacks here.
func GlorotUniform(rng *rand.Rand, x []float64, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	RandUniform(rng, x, -limit, limit)
}

// Concat concatenates vectors into a fresh slice ([a;b;...] in paper
// notation).
func Concat(vs ...[]float64) []float64 {
	n := 0
	for _, v := range vs {
		n += len(v)
	}
	out := make([]float64, 0, n)
	for _, v := range vs {
		out = append(out, v...)
	}
	return out
}

// L2Norm returns the Euclidean norm of x.
func L2Norm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns max_i |x[i]|, or 0 for an empty slice.
func MaxAbs(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}
