package tensor

import (
	"fmt"
	"math"
)

// QuantMatrix is a row-major int8 matrix with one symmetric scale per row:
// the real value of element (i, j) is float32(Data[i*Cols+j]) * Scale[i].
// For a weight matrix stored Out×In this is exactly per-output-channel
// symmetric quantization; for an activation batch it is per-example dynamic
// quantization. Symmetric (zero-point-free) quantization keeps the matmul
// inner loop a plain int8×int8→int32 multiply-accumulate with all scaling
// hoisted out of the k-loop.
type QuantMatrix struct {
	Rows, Cols int
	Data       []int8    // len == Rows*Cols, row-major
	Scale      []float32 // len == Rows, per-row dequantization scale
}

// NewQuantMatrix returns a zeroed rows×cols int8 matrix with zero scales.
func NewQuantMatrix(rows, cols int) *QuantMatrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %d×%d", rows, cols))
	}
	return &QuantMatrix{Rows: rows, Cols: cols, Data: make([]int8, rows*cols), Scale: make([]float32, rows)}
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *QuantMatrix) Row(i int) []int8 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// QuantizeRows quantizes src into dst row by row with symmetric per-row
// scales s_i = max_j |src[i][j]| / 127, rounding to nearest. dst must match
// src's shape (allocated when nil); an all-zero row gets scale 0 and stays
// zero. The inference plan calls this once per dense layer to quantize the
// incoming activation batch (dynamic activation quantization), so it is kept
// allocation-free for a preallocated dst.
func QuantizeRows(src *Matrix32, dst *QuantMatrix) *QuantMatrix {
	if dst == nil {
		dst = NewQuantMatrix(src.Rows, src.Cols)
	} else if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("tensor: quantizerows shape mismatch")
	}
	for i := 0; i < src.Rows; i++ {
		srow := src.Row(i)
		var maxAbs float32
		for _, v := range srow {
			if v < 0 {
				v = -v
			}
			if v > maxAbs {
				maxAbs = v
			}
		}
		drow := dst.Row(i)
		if maxAbs == 0 {
			dst.Scale[i] = 0
			for j := range drow {
				drow[j] = 0
			}
			continue
		}
		scale := maxAbs / 127
		inv := 1 / scale
		dst.Scale[i] = scale
		for j, v := range srow {
			q := math.Round(float64(v * inv))
			if q > 127 {
				q = 127
			} else if q < -127 {
				q = -127
			}
			drow[j] = int8(q)
		}
	}
	return dst
}

// MatMulABTQ8 computes out = dequant(a·bᵀ) where a is r×k and b is c×k, both
// int8 with per-row scales (out is r×c float32, overwritten; allocated when
// nil). The inner loop accumulates int8×int8 products in int32 — exact for
// any k below 2³¹/127² ≈ 133k, far beyond the layer widths here — and the two
// row scales are applied once per output element. Like the other inference
// kernels it is row-tiled for cache blocking and 4-wide unrolled with
// independent accumulator chains, and carries no data-dependent branches.
func MatMulABTQ8(a, b *QuantMatrix, out *Matrix32) *Matrix32 {
	return matMulABTQ8(a, b, out, false)
}

// MatMulABTQ8Add is MatMulABTQ8 accumulating into out (out += dequant(a·bᵀ)).
func MatMulABTQ8Add(a, b *QuantMatrix, out *Matrix32) *Matrix32 {
	return matMulABTQ8(a, b, out, true)
}

func matMulABTQ8(a, b *QuantMatrix, out *Matrix32, add bool) *Matrix32 {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulABTQ8 shape mismatch %d×%d · (%d×%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out == nil {
		out = NewMatrix32(a.Rows, b.Rows)
	} else if out.Rows != a.Rows || out.Cols != b.Rows {
		panic("tensor: matmulABTQ8 out has wrong shape")
	}
	for i0 := 0; i0 < a.Rows; i0 += abtRowTile {
		i1 := i0 + abtRowTile
		if i1 > a.Rows {
			i1 = a.Rows
		}
		for j := 0; j < b.Rows; j++ {
			bj := b.Row(j)
			bs := b.Scale[j]
			i := i0
			for ; i+3 < i1; i += 4 {
				s0, s1, s2, s3 := dotq4(a.Row(i), a.Row(i+1), a.Row(i+2), a.Row(i+3), bj)
				if add {
					out.Row(i)[j] += float32(s0) * a.Scale[i] * bs
					out.Row(i + 1)[j] += float32(s1) * a.Scale[i+1] * bs
					out.Row(i + 2)[j] += float32(s2) * a.Scale[i+2] * bs
					out.Row(i + 3)[j] += float32(s3) * a.Scale[i+3] * bs
				} else {
					out.Row(i)[j] = float32(s0) * a.Scale[i] * bs
					out.Row(i + 1)[j] = float32(s1) * a.Scale[i+1] * bs
					out.Row(i + 2)[j] = float32(s2) * a.Scale[i+2] * bs
					out.Row(i + 3)[j] = float32(s3) * a.Scale[i+3] * bs
				}
			}
			for ; i < i1; i++ {
				s := DotQ8(a.Row(i), bj)
				if add {
					out.Row(i)[j] += float32(s) * a.Scale[i] * bs
				} else {
					out.Row(i)[j] = float32(s) * a.Scale[i] * bs
				}
			}
		}
	}
	return out
}

// dotq4 returns four int32 dot products of int8 rows against a shared int8
// right-hand row, with four independent accumulator chains (see dot4).
func dotq4(a0, a1, a2, a3, b []int8) (s0, s1, s2, s3 int32) {
	if len(b) == 0 {
		return
	}
	_ = a0[len(b)-1]
	_ = a1[len(b)-1]
	_ = a2[len(b)-1]
	_ = a3[len(b)-1]
	for k, v := range b {
		w := int32(v)
		s0 += int32(a0[k]) * w
		s1 += int32(a1[k]) * w
		s2 += int32(a2[k]) * w
		s3 += int32(a3[k]) * w
	}
	return
}

// DotQ8 returns the int32 inner product of two equal-length int8 vectors.
func DotQ8(a, b []int8) int32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: dotq8 length mismatch %d vs %d", len(a), len(b)))
	}
	var s int32
	for i, v := range a {
		s += int32(v) * int32(b[i])
	}
	return s
}
