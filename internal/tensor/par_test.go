package tensor

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
)

// forceParallel routes every kernel through the parallel path regardless of
// size, restoring the cutoff and worker count on cleanup.
func forceParallel(t *testing.T, workers int) {
	t.Helper()
	prevCut := parMinFlops
	parMinFlops = 0
	prevW := SetWorkers(workers)
	t.Cleanup(func() {
		parMinFlops = prevCut
		SetWorkers(prevW)
	})
}

// randMat returns a rows×cols matrix with values in [-1, 1) and a sprinkle
// of exact zeros (the kernels' skip paths must not change results).
func randMat(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		if rng.Intn(8) == 0 {
			continue // leave a zero
		}
		m.Data[i] = rng.Float64()*2 - 1
	}
	return m
}

// bitsEqual compares two matrices for exact bit equality.
func bitsEqual(t *testing.T, name string, want, got *Matrix) {
	t.Helper()
	if want.Rows != got.Rows || want.Cols != got.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, want.Rows, want.Cols, got.Rows, got.Cols)
	}
	for i := range want.Data {
		if math.Float64bits(want.Data[i]) != math.Float64bits(got.Data[i]) {
			t.Fatalf("%s: element %d differs: %v vs %v", name, i, want.Data[i], got.Data[i])
		}
	}
}

// TestParallelKernelsBitIdenticalFuzz sweeps odd shapes — fewer rows than
// workers, zero rows, sizes not divisible by the block or tile widths —
// through every parallel kernel at several worker counts and demands exact
// bit equality with the sequential kernels.
func TestParallelKernelsBitIdenticalFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := [][3]int{ // m×k · k×n style dims
		{0, 3, 4}, {1, 1, 1}, {2, 7, 5}, {3, 16, 9}, {5, 3, 2},
		{8, 8, 8}, {13, 17, 11}, {31, 5, 29}, {64, 33, 7}, {100, 10, 100},
	}
	for _, workers := range []int{2, 3, 4, 7} {
		t.Run("", func(t *testing.T) {
			forceParallel(t, workers)
			for _, sh := range shapes {
				m, k, n := sh[0], sh[1], sh[2]
				a := randMat(rng, m, k)
				b := randMat(rng, k, n)
				bitsEqual(t, "PMatMul", MatMul(a, b, nil), PMatMul(a, b, nil))

				bt := randMat(rng, n, k) // for ABT: a is m×k, b is n×k
				bitsEqual(t, "PMatMulABT", MatMulABT(a, bt, nil), PMatMulABT(a, bt, nil))

				at := randMat(rng, k, m) // for ATB: a is k×m, b is k×n
				b2 := randMat(rng, k, n)
				bitsEqual(t, "PMatMulATB", MatMulATB(at, b2, nil), PMatMulATB(at, b2, nil))

				accSeq := randMat(rng, m, n)
				accPar := accSeq.Clone()
				MatMulATBAdd(at, b2, accSeq)
				PMatMulATBAdd(at, b2, accPar)
				bitsEqual(t, "PMatMulATBAdd", accSeq, accPar)
			}
		})
	}
}

// TestParallelKernelsRandomizedShapes is the fuzz-style sweep: 200 random
// shape draws, biased toward edge cases (dims in [0, 40]).
func TestParallelKernelsRandomizedShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	forceParallel(t, 4)
	for it := 0; it < 200; it++ {
		m, k, n := rng.Intn(41), rng.Intn(41), rng.Intn(41)
		a := randMat(rng, m, k)
		b := randMat(rng, k, n)
		bitsEqual(t, "PMatMul", MatMul(a, b, nil), PMatMul(a, b, nil))
		bt := randMat(rng, n, k)
		bitsEqual(t, "PMatMulABT", MatMulABT(a, bt, nil), PMatMulABT(a, bt, nil))
		at := randMat(rng, k, m)
		bitsEqual(t, "PMatMulATB", MatMulATB(at, b, nil), PMatMulATB(at, b, nil))
	}
}

// TestParallelKernelsPreallocatedOut checks the out-reuse path: a dirty
// preallocated out must be overwritten identically by both kernels.
func TestParallelKernelsPreallocatedOut(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	forceParallel(t, 4)
	a := randMat(rng, 9, 12)
	b := randMat(rng, 12, 10)
	dirtySeq := randMat(rng, 9, 10)
	dirtyPar := dirtySeq.Clone()
	bitsEqual(t, "PMatMul out", MatMul(a, b, dirtySeq), PMatMul(a, b, dirtyPar))

	at := randMat(rng, 12, 9)
	dirtySeq2 := randMat(rng, 9, 10)
	dirtyPar2 := dirtySeq2.Clone()
	bitsEqual(t, "PMatMulATB out", MatMulATB(at, b, dirtySeq2), PMatMulATB(at, b, dirtyPar2))
}

// TestSetWorkers checks the setter contract: previous value returned, n < 1
// resets to GOMAXPROCS.
func TestSetWorkers(t *testing.T) {
	orig := Workers()
	defer SetWorkers(orig)
	if prev := SetWorkers(5); prev != orig {
		t.Fatalf("SetWorkers returned %d, want %d", prev, orig)
	}
	if Workers() != 5 {
		t.Fatalf("Workers()=%d after SetWorkers(5)", Workers())
	}
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("Workers()=%d after reset", Workers())
	}
}

// TestRunPartsRunsEachPartOnce checks the pool contract RunParts is named
// for: every part index runs exactly once, including under nesting.
func TestRunPartsRunsEachPartOnce(t *testing.T) {
	var counts [13]atomic.Int64
	RunParts(13, func(k int) {
		// Nested dispatch from inside a pool task must not deadlock.
		RunParts(3, func(int) {})
		counts[k].Add(1)
	})
	for k := range counts {
		if got := counts[k].Load(); got != 1 {
			t.Fatalf("part %d ran %d times", k, got)
		}
	}
}

// TestParallelRowsCoversRange checks the block splitter: every index covered
// exactly once for awkward n/worker combinations, and tiny n stays inline.
func TestParallelRowsCoversRange(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 64, 101} {
		var hit = make([]atomic.Int64, n)
		ParallelRows(n, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hit[i].Add(1)
			}
		})
		for i := range hit {
			if hit[i].Load() != 1 {
				t.Fatalf("n=%d: index %d hit %d times", n, i, hit[i].Load())
			}
		}
	}
}
