package tensor

import "fmt"

// Matrix32 is a dense row-major float32 matrix, the storage type of the
// compiled inference plans in internal/infer. Keeping a separate type (rather
// than parameterizing Matrix) lets the float32 kernels stay as tight as the
// float64 ones without interface or generic dispatch in the inner loops, and
// makes it impossible to feed a half-precision buffer into the training
// kernels by accident: training is float64 everywhere, inference opts into
// float32 explicitly.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols, row-major
}

// NewMatrix32 returns a zeroed rows×cols float32 matrix.
func NewMatrix32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %d×%d", rows, cols))
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix32) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix32) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix32) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Demote32 copies a float64 matrix into a freshly allocated float32 matrix,
// rounding every element to nearest. This is the weight-lowering primitive of
// the compiled inference path: it runs once per model (hot) swap, never per
// request.
func Demote32(src *Matrix) *Matrix32 {
	dst := NewMatrix32(src.Rows, src.Cols)
	for i, v := range src.Data {
		dst.Data[i] = float32(v)
	}
	return dst
}

// Demote32Vec converts a float64 vector to float32.
func Demote32Vec(src []float64) []float32 {
	dst := make([]float32, len(src))
	for i, v := range src {
		dst[i] = float32(v)
	}
	return dst
}

// MatMulABT32 computes out = a·bᵀ where a is r×k and b is c×k (out is r×c),
// overwriting out (allocated when nil). It mirrors the float64 MatMulABT
// exactly: row tiles of abtRowTile keep a block of a resident in L1 while b —
// the weight matrix, usually the larger operand — streams through once per
// tile (cache blocking), and the 4-wide dot4_32 kernel runs four independent
// accumulation chains so the CPU overlaps their add latency instead of
// stalling on one chain. Inner loops carry no data-dependent branches: the
// inference kernels never zero-skip (see matMulRows for why the training
// kernel does).
func MatMulABT32(a, b, out *Matrix32) *Matrix32 {
	return matMulABT32(a, b, out, false)
}

// MatMulABTAdd32 is MatMulABT32 accumulating into out (out += a·bᵀ) instead
// of overwriting it. The compiled CardNet-A plan uses it to sum the fused
// per-layer head products into one pre-activation matrix without a scratch
// copy per layer.
func MatMulABTAdd32(a, b, out *Matrix32) *Matrix32 {
	return matMulABT32(a, b, out, true)
}

func matMulABT32(a, b, out *Matrix32, add bool) *Matrix32 {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulABT32 shape mismatch %d×%d · (%d×%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out == nil {
		out = NewMatrix32(a.Rows, b.Rows)
	} else if out.Rows != a.Rows || out.Cols != b.Rows {
		panic("tensor: matmulABT32 out has wrong shape")
	}
	for i0 := 0; i0 < a.Rows; i0 += abtRowTile {
		i1 := i0 + abtRowTile
		if i1 > a.Rows {
			i1 = a.Rows
		}
		for j := 0; j < b.Rows; j++ {
			bj := b.Row(j)
			i := i0
			for ; i+3 < i1; i += 4 {
				s0, s1, s2, s3 := dot4_32(a.Row(i), a.Row(i+1), a.Row(i+2), a.Row(i+3), bj)
				if add {
					out.Row(i)[j] += s0
					out.Row(i + 1)[j] += s1
					out.Row(i + 2)[j] += s2
					out.Row(i + 3)[j] += s3
				} else {
					out.Row(i)[j] = s0
					out.Row(i + 1)[j] = s1
					out.Row(i + 2)[j] = s2
					out.Row(i + 3)[j] = s3
				}
			}
			for ; i < i1; i++ {
				s := Dot32(a.Row(i), bj)
				if add {
					out.Row(i)[j] += s
				} else {
					out.Row(i)[j] = s
				}
			}
		}
	}
	return out
}

// dot4_32 returns four float32 dot products against a shared right-hand row,
// with four independent accumulator chains (see dot4).
func dot4_32(a0, a1, a2, a3, b []float32) (s0, s1, s2, s3 float32) {
	if len(b) == 0 {
		return
	}
	_ = a0[len(b)-1]
	_ = a1[len(b)-1]
	_ = a2[len(b)-1]
	_ = a3[len(b)-1]
	for k, v := range b {
		s0 += a0[k] * v
		s1 += a1[k] * v
		s2 += a2[k] * v
		s3 += a3[k] * v
	}
	return
}

// Dot32 returns the float32 inner product of two equal-length vectors.
func Dot32(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: dot32 length mismatch %d vs %d", len(a), len(b)))
	}
	var s float32
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// AddBias32 adds the bias vector to every row of m in place.
func AddBias32(m *Matrix32, bias []float32) {
	if len(bias) != m.Cols {
		panic("tensor: bias32 length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		for j, b := range bias {
			ri[j] += b
		}
	}
}

// MatMulDense computes out = a·b like MatMul but with a branch-free inner
// loop: no zero-skip test on a's elements. The skip in matMulRows wins on the
// sparse operands of the training path (binary inputs, ReLU-gated gradients)
// but on dense inference activations it only adds a data-dependent branch the
// predictor cannot learn — see BenchmarkZeroSkip for the measured gap.
// Inference-side callers that multiply dense activations (the lowered f64
// reference path in internal/core) use this kernel; training keeps MatMul.
func MatMulDense(a, b, out *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmuldense shape mismatch %d×%d · %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out == nil {
		out = NewMatrix(a.Rows, b.Cols)
	} else {
		if out.Rows != a.Rows || out.Cols != b.Cols {
			panic("tensor: matmuldense out has wrong shape")
		}
		out.Zero()
	}
	for i := 0; i < a.Rows; i++ {
		ai := a.Row(i)
		oi := out.Row(i)
		k := 0
		// Four k-values per sweep: each pass over oi folds in four rows of b,
		// quartering the out-row read/modify/write traffic relative to the
		// training kernel's one-row-at-a-time sweep.
		for ; k+3 < a.Cols; k += 4 {
			a0, a1, a2, a3 := ai[k], ai[k+1], ai[k+2], ai[k+3]
			b0, b1, b2, b3 := b.Row(k), b.Row(k+1), b.Row(k+2), b.Row(k+3)
			_ = b0[len(oi)-1]
			_ = b1[len(oi)-1]
			_ = b2[len(oi)-1]
			_ = b3[len(oi)-1]
			for j := range oi {
				// Left-associated like the k-at-a-time loop, so results stay
				// bit-identical to MatMul on zero-free operands.
				s := oi[j]
				s += a0 * b0[j]
				s += a1 * b1[j]
				s += a2 * b2[j]
				s += a3 * b3[j]
				oi[j] = s
			}
		}
		for ; k < a.Cols; k++ {
			aik := ai[k]
			bk := b.Row(k)
			for j := range bk {
				oi[j] += aik * bk[j]
			}
		}
	}
	return out
}
