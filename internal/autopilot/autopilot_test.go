package autopilot

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cardnet/internal/checkpoint"
	"cardnet/internal/core"
	"cardnet/internal/obs"
	"cardnet/internal/obs/monitor"
	"cardnet/internal/serving"
)

// tinyModel returns a small untrained model matching the serve tests' shape.
func tinyModel(seed int64) *core.Model {
	cfg := core.DefaultConfig(8)
	cfg.VAEHidden = []int{16}
	cfg.VAELatent = 4
	cfg.PhiHidden = []int{16}
	cfg.ZDim = 8
	cfg.Accel = true
	cfg.Seed = seed
	return core.New(cfg, 16)
}

// truthLabeler is a synthetic ground truth: a monotone cumulative curve
// derived from the query's popcount, deterministic so train and shadow agree.
func truthLabeler(x []float64, tauTop int) ([]float64, error) {
	pop := 0.0
	for _, v := range x {
		pop += v
	}
	curve := make([]float64, tauTop+1)
	for tau := range curve {
		curve[tau] = 20 + 5*float64(tau) + 3*pop
	}
	return curve, nil
}

// binX returns a distinct 16-bit binary query per index.
func binX(i int) []float64 {
	x := make([]float64, 16)
	for b := 0; b < 16; b++ {
		if (i>>(b%10))&1 == 1 || b == i%16 {
			x[b] = 1
		}
	}
	return x
}

func newTestPilot(t *testing.T, dir string, cfg Config) (*Pilot, *serving.Engine, *monitor.Monitor) {
	t.Helper()
	m := tinyModel(3)
	eng := serving.NewEngine(serving.NewRegistry(m), serving.Config{CacheEntries: -1})
	t.Cleanup(eng.Close)
	mon := monitor.New(monitor.Config{Window: 64, BaselineN: 4, EWMAAlpha: 0.5}, obs.NewRegistry())
	cfg.Dir = dir
	p, err := New(cfg, eng, mon, truthLabeler)
	if err != nil {
		t.Fatal(err)
	}
	return p, eng, mon
}

func waitState(t *testing.T, p *Pilot, want string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if p.State() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("pilot never reached state %q (stuck at %q)", want, p.State())
}

func TestStateCodes(t *testing.T) {
	states := []string{StateIdle, StateTriggered, StateTraining, StateShadow, StateSwap, StateReject, StateCooldown}
	for i, s := range states {
		if StateCode(s) != i {
			t.Fatalf("StateCode(%s) = %d, want %d", s, StateCode(s), i)
		}
	}
	if StateCode("nope") != -1 {
		t.Fatalf("unknown state should code to -1")
	}
}

func TestSampleStoreDedupAndEvict(t *testing.T) {
	s := newSampleStore(4)
	for i := 0; i < 4; i++ {
		s.Observe(binX(i), i)
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d, want 4", s.Len())
	}
	// Duplicates refresh, not grow.
	s.Observe(binX(0), 7)
	if s.Len() != 4 {
		t.Fatalf("after dup len = %d, want 4", s.Len())
	}
	// Overflow evicts the oldest slot and keeps the index consistent.
	s.Observe(binX(100), 1)
	if s.Len() != 4 {
		t.Fatalf("after evict len = %d, want 4", s.Len())
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("after reset len = %d", s.Len())
	}
}

func TestSampleStoreBuildDeterministic(t *testing.T) {
	s := newSampleStore(64)
	for i := 0; i < 20; i++ {
		s.Observe(binX(i), i%9)
	}
	tr1, va1, err := s.Build(8, truthLabeler, 11, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	tr2, va2, err := s.Build(8, truthLabeler, 11, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if tr1.NumQueries() != tr2.NumQueries() || va1.NumQueries() != va2.NumQueries() {
		t.Fatalf("split sizes differ between identical builds")
	}
	for i := range tr1.X.Data {
		if tr1.X.Data[i] != tr2.X.Data[i] {
			t.Fatalf("train split not deterministic at %d", i)
		}
	}
	if tr1.NumQueries()+va1.NumQueries() != 20 {
		t.Fatalf("split loses rows: %d + %d != 20", tr1.NumQueries(), va1.NumQueries())
	}
	// Labels must be the ground-truth curves, monotone by construction.
	for r := 0; r < tr1.NumQueries(); r++ {
		if !core.CurveMonotone(tr1.Labels.Row(r)) {
			t.Fatalf("label row %d not monotone: %v", r, tr1.Labels.Row(r))
		}
	}
	// P sums to 1.
	sum := 0.0
	for _, p := range tr1.P {
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("P sums to %v", sum)
	}
}

// TestForcedCycleSwaps drives one full forced cycle without HTTP: trigger,
// retrain on ground truth, shadow over synthetic tap traffic, swap.
func TestForcedCycleSwaps(t *testing.T) {
	dir := t.TempDir()
	p, eng, _ := newTestPilot(t, dir, Config{
		Poll: 2 * time.Millisecond, MinSamples: 8, ShadowRate: 1.0,
		ShadowMin: 8, ShadowTimeout: 20 * time.Second, Cooldown: time.Hour,
		GateSweep: 32,
	})
	for i := 0; i < 16; i++ {
		p.Observe(binX(i), i%9)
	}
	_, v0 := eng.Registry().Current()
	p.Start()
	defer p.Close()
	p.Force()
	waitState(t, p, StateShadow, 60*time.Second)

	// Drive traffic through the engine so the tap sees batches.
	ctx := context.Background()
	deadline := time.Now().Add(60 * time.Second)
	for p.State() == StateShadow && time.Now().Before(deadline) {
		for i := 0; i < 8; i++ {
			if _, err := eng.EstimateAll(ctx, binX(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitState(t, p, StateCooldown, 60*time.Second)

	st := p.Status()
	if st.Swaps != 1 || st.Rejects != 0 {
		t.Fatalf("status after cycle: %+v (last: %+v)", st, st.LastDecision)
	}
	if st.LastDecision == nil || st.LastDecision.Event != "swap" {
		t.Fatalf("last decision: %+v", st.LastDecision)
	}
	if st.LastDecision.CandQGeoMean > st.LastDecision.LiveQGeoMean {
		t.Fatalf("swap with candidate worse than live: %+v", st.LastDecision)
	}
	if _, v := eng.Registry().Current(); v != v0+1 {
		t.Fatalf("registry version %d, want %d", v, v0+1)
	}
	// Staging is cleaned after a completed cycle.
	if _, err := os.Stat(filepath.Join(dir, "candidate.gob")); !os.IsNotExist(err) {
		t.Fatalf("candidate still staged after swap: %v", err)
	}
}

// TestInhibitedWinRejects confirms an operator inhibit converts a shadow win
// into a reject and the registry stays on the live model.
func TestInhibitedWinRejects(t *testing.T) {
	p, eng, _ := newTestPilot(t, t.TempDir(), Config{
		Poll: 2 * time.Millisecond, MinSamples: 8, ShadowRate: 1.0,
		ShadowMin: 8, ShadowTimeout: 20 * time.Second, Cooldown: time.Hour,
		GateSweep: 32,
	})
	for i := 0; i < 16; i++ {
		p.Observe(binX(i), i%9)
	}
	_, v0 := eng.Registry().Current()
	p.Start()
	defer p.Close()
	p.Force() // force fires even while inhibit only blocks autonomous triggers
	waitState(t, p, StateShadow, 60*time.Second)
	p.SetInhibited(true)

	ctx := context.Background()
	deadline := time.Now().Add(60 * time.Second)
	for p.State() == StateShadow && time.Now().Before(deadline) {
		for i := 0; i < 8; i++ {
			if _, err := eng.EstimateAll(ctx, binX(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitState(t, p, StateCooldown, 60*time.Second)

	st := p.Status()
	if st.Rejects != 1 || st.Swaps != 0 {
		t.Fatalf("inhibited cycle: %+v (last: %+v)", st, st.LastDecision)
	}
	if _, v := eng.Registry().Current(); v != v0 {
		t.Fatalf("registry swapped while inhibited (version %d)", v)
	}
}

// TestKillAndResumeMidRetrain is the mid-retrain death drill: the first pilot
// is stopped while the candidate trains (Close checkpoints the in-flight
// epoch and leaves staging intact), and a second pilot over the same staging
// directory must resume the candidate — reaching shadow without ever
// triggering — rather than starting over in idle.
func TestKillAndResumeMidRetrain(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Poll: 2 * time.Millisecond, MinSamples: 8, ShadowRate: 1.0,
		ShadowMin:     1 << 30, // never reachable: shadow holds until timeout
		ShadowTimeout: time.Hour, Cooldown: time.Hour, GateSweep: 32,
	}
	p1, _, _ := newTestPilot(t, dir, cfg)
	for i := 0; i < 32; i++ {
		p1.Observe(binX(i), i%9)
	}
	p1.Start()
	p1.Force()
	waitState(t, p1, StateTraining, 60*time.Second)
	// Wait for the first trainer checkpoint so the death is mid-retrain with
	// recoverable state on disk.
	ckDir := filepath.Join(dir, "ckpt")
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if ents, err := os.ReadDir(ckDir); err == nil && len(ents) > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	p1.Close() // the graceful stand-in for a mid-retrain death

	// The staged split must have survived for the resume to verify against.
	if _, err := os.Stat(filepath.Join(dir, "trainset.tset")); err != nil {
		t.Fatalf("train set not staged after interrupted run: %v", err)
	}

	p2, _, _ := newTestPilot(t, dir, cfg)
	p2.Start()
	defer p2.Close()
	waitState(t, p2, StateShadow, 120*time.Second)

	st := p2.Status()
	if st.Triggers != 0 {
		t.Fatalf("resumed pilot re-triggered (%d) instead of resuming", st.Triggers)
	}
	if st.Resumes == 0 {
		t.Fatalf("resumed pilot did not count a resume: %+v", st)
	}
	// The trained candidate must be staged (shadow survives another death).
	if _, err := os.Stat(filepath.Join(dir, "candidate.gob")); err != nil {
		t.Fatalf("candidate not staged during shadow: %v", err)
	}
}

// TestStartFromStagedCandidate covers the second death window: the process
// died after training finished (candidate staged) but before the shadow
// verdict — restart must go straight to shadow.
func TestStartFromStagedCandidate(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Poll: 2 * time.Millisecond, MinSamples: 8, ShadowRate: 1.0,
		ShadowMin: 1 << 30, ShadowTimeout: time.Hour, Cooldown: time.Hour,
	}
	p1, _, _ := newTestPilot(t, dir, cfg)
	// Stage a shape-compatible candidate by hand, as if training had just
	// finished when the process died.
	if err := checkpoint.SaveModel(p1.candPath(), tinyModel(9)); err != nil {
		t.Fatal(err)
	}
	p1.Start()
	defer p1.Close()
	waitState(t, p1, StateShadow, 60*time.Second)
	if st := p1.Status(); st.Triggers != 0 || st.Resumes != 1 {
		t.Fatalf("staged-candidate start: %+v", st)
	}
}
