package autopilot

import (
	"fmt"
	"os"
	"path/filepath"

	"cardnet/internal/checkpoint"
	"cardnet/internal/core"
)

// Resume phases, in pipeline order: detectStaging maps what the staging
// directory holds onto the furthest phase the previous process reached.
const (
	resumeNone     = iota // nothing staged: start idle
	resumeTraining        // train set staged (checkpoints optional): retrain
	resumeShadow          // trained candidate staged: straight to shadow
)

// Staging-directory layout. Everything the pilot needs to survive a death
// lives under Config.Dir:
//
//	<dir>/trainset.tset   — the labelled train/valid split (KindTrainSet)
//	<dir>/ckpt/           — trainer checkpoint store (KindTrainer frames)
//	<dir>/candidate.gob   — the trained candidate awaiting shadow (KindModel)
func (p *Pilot) tsetPath() string { return filepath.Join(p.cfg.Dir, "trainset.tset") }
func (p *Pilot) ckptDir() string  { return filepath.Join(p.cfg.Dir, "ckpt") }
func (p *Pilot) candPath() string { return filepath.Join(p.cfg.Dir, "candidate.gob") }

func ensureDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("autopilot: create staging dir: %w", err)
	}
	return nil
}

// detectStaging inspects the staging directory at Start and decides where the
// loop enters. A staged candidate resumes straight into shadow; a staged
// train set resumes training — from the latest usable trainer checkpoint when
// one exists, from scratch on the same staged data otherwise. Anything that
// no longer matches the live serving shape is discarded: the operator swapped
// in an incompatible model between runs, so the old cycle's work is moot.
func (p *Pilot) detectStaging() (cand *core.Model, st *core.TrainerState, train, valid *core.TrainSet, phase int) {
	live, _ := p.reg.Current()

	if c, err := checkpoint.LoadModel(p.candPath()); err == nil {
		if c.InDim == live.InDim && c.Cfg.TauMax == live.Cfg.TauMax {
			p.noteResume("trained candidate staged; resuming into shadow evaluation", nil)
			return c, nil, nil, nil, resumeShadow
		}
		p.transition(StateIdle, "staged candidate incompatible with live model; discarding", map[string]any{
			"staged_in_dim": c.InDim, "live_in_dim": live.InDim,
		})
		p.cleanStaging()
		return nil, nil, nil, nil, resumeNone
	}

	tr, va, err := checkpoint.LoadTrainSet(p.tsetPath())
	if err != nil {
		// No (or corrupt) staged split: nothing to resume. Clear leftovers so
		// stale checkpoints cannot pair with a future, different split.
		p.cleanStaging()
		return nil, nil, nil, nil, resumeNone
	}
	if tr.X.Cols != live.InDim {
		p.transition(StateIdle, "staged train set incompatible with live model; discarding", map[string]any{
			"staged_in_dim": tr.X.Cols, "live_in_dim": live.InDim,
		})
		p.cleanStaging()
		return nil, nil, nil, nil, resumeNone
	}

	// Prefer the latest usable incremental-phase checkpoint; fall back to a
	// fresh retrain on the staged data when none decodes.
	if store, serr := checkpoint.OpenStore(p.ckptDir(), p.cfg.CkptRetain); serr == nil {
		if cst, _, _, lerr := checkpoint.LoadLatest(store); lerr == nil && cst != nil && cst.Phase == core.PhaseIncremental {
			p.noteResume("trainer checkpoint staged; resuming incremental retrain", map[string]any{
				"epoch": cst.Epoch,
			})
			return nil, cst, tr, va, resumeTraining
		}
	}
	p.noteResume("train set staged without usable checkpoint; retraining from staged data", nil)
	return nil, nil, tr, va, resumeTraining
}

// noteResume journals a resume decision and counts it.
func (p *Pilot) noteResume(reason string, fields map[string]any) {
	mResumes.Inc()
	p.resumes.Add(1)
	p.transition(p.State(), reason, fields)
}

// cleanStaging removes the split, checkpoints, and candidate of the finished
// (or abandoned) cycle. Removal failures are tolerable: a stale candidate is
// re-detected at next Start and rejected or re-evaluated, never silently
// served.
func (p *Pilot) cleanStaging() {
	os.Remove(p.tsetPath())
	os.Remove(p.candPath())
	os.RemoveAll(p.ckptDir())
}
