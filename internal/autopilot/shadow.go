package autopilot

import (
	"math"
	"sync"
	"sync/atomic"

	"cardnet/internal/core"
	"cardnet/internal/metrics"
	"cardnet/internal/tensor"
)

// shadowBatch is one sampled live batch handed from the engine's batch worker
// to the shadow evaluator: the encoded inputs and the live model's full
// τ-sweep estimates, both copied off the worker's buffers.
type shadowBatch struct {
	xs   *tensor.Matrix
	live *tensor.Matrix
}

// shadowEval dual-runs a sampled fraction of live traffic through a retrained
// candidate and scores both models against ground truth. The tap side is the
// engine's hot path, so it does the minimum — counter sampling, two row
// copies, a non-blocking channel send (full channel drops the batch and
// counts it). The expensive work — the candidate's forward pass and the
// oracle labels — happens on the evaluator goroutine. The live model's
// responses are never touched: shadow evaluation observes traffic, it does
// not sit in front of it.
type shadowEval struct {
	cand  *core.Model
	label Labeler
	every uint64 // sample 1 in every batches
	min   int

	ch    chan shadowBatch
	done  chan struct{}
	ready chan struct{} // closed when min rows have been scored

	seen      atomic.Uint64
	readyOnce sync.Once
	closeOnce sync.Once
	wg        sync.WaitGroup

	mu         sync.Mutex
	rows       int
	terms      int
	liveLogSum float64 // Σ ln q over every (row, τ) cell
	candLogSum float64
}

func newShadowEval(cand *core.Model, label Labeler, rate float64, min int) *shadowEval {
	every := uint64(math.Round(1 / rate))
	if every < 1 {
		every = 1
	}
	ev := &shadowEval{
		cand:  cand,
		label: label,
		every: every,
		min:   min,
		ch:    make(chan shadowBatch, 8),
		done:  make(chan struct{}),
		ready: make(chan struct{}),
	}
	ev.wg.Add(1)
	go ev.loop()
	return ev
}

// tap is installed as the engine's ShadowTap. The matrices belong to the
// batch worker and must not be retained, so a sampled batch is copied before
// crossing the channel.
func (ev *shadowEval) tap(xs, live *tensor.Matrix) {
	if (ev.seen.Add(1)-1)%ev.every != 0 {
		return
	}
	b := shadowBatch{xs: cloneMatrix(xs), live: cloneMatrix(live)}
	select {
	case ev.ch <- b:
		mShadowBatches.Inc()
	case <-ev.done:
	default:
		mShadowDropped.Inc()
	}
}

func cloneMatrix(m *tensor.Matrix) *tensor.Matrix {
	c := tensor.NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// loop scores sampled batches until closed: the candidate's full τ-sweep
// estimates and the ground-truth curve per row, accumulated as sums of log
// q-errors so summary can report geometric means over every (row, τ) cell.
func (ev *shadowEval) loop() {
	defer ev.wg.Done()
	for {
		select {
		case <-ev.done:
			return
		case b := <-ev.ch:
			ev.score(b)
		}
	}
}

func (ev *shadowEval) score(b shadowBatch) {
	tauTop := b.live.Cols - 1
	cand := ev.cand.EstimateAllTausBatch(b.xs)
	for r := 0; r < b.xs.Rows; r++ {
		truth, err := ev.label(b.xs.Row(r), tauTop)
		if err != nil {
			continue // unlabellable row carries no evidence either way
		}
		liveRow, candRow := b.live.Row(r), cand.Row(r)
		var liveSum, candSum float64
		for tau := 0; tau <= tauTop; tau++ {
			liveSum += math.Log(metrics.QError(truth[tau], liveRow[tau]))
			candSum += math.Log(metrics.QError(truth[tau], candRow[tau]))
		}
		ev.mu.Lock()
		ev.rows++
		ev.terms += tauTop + 1
		ev.liveLogSum += liveSum
		ev.candLogSum += candSum
		rows := ev.rows
		ev.mu.Unlock()
		mShadowRows.Inc()
		if rows >= ev.min {
			ev.readyOnce.Do(func() { close(ev.ready) })
		}
	}
}

// summary reports the scored row count and the two q-error geometric means.
func (ev *shadowEval) summary() (rows int, liveGeo, candGeo float64) {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	if ev.terms == 0 {
		return ev.rows, 1, 1
	}
	n := float64(ev.terms)
	return ev.rows, math.Exp(ev.liveLogSum / n), math.Exp(ev.candLogSum / n)
}

// close stops the evaluator goroutine and waits for it.
func (ev *shadowEval) close() {
	ev.closeOnce.Do(func() { close(ev.done) })
	ev.wg.Wait()
}
