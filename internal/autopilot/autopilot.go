// Package autopilot closes the paper's incremental-learning loop (Section 8)
// into a self-healing serving deployment: it watches the online drift monitor
// for a sustained retrain-recommended signal, incrementally retrains a
// candidate model on the feedback and audit samples accumulated from live
// traffic, shadow-evaluates the candidate against ground truth on a sampled
// fraction of real requests without affecting responses, and hot-swaps the
// serving registry only when the candidate wins both the rolling q-error
// comparison and a Lemma-2 monotonicity sweep (infer.MonoSweep) — MonoM's
// observation that monotonicity must be re-verified on every retrained
// estimator, applied as a gate in front of the swap.
//
// The pilot is a state machine:
//
//	idle → triggered → training → shadow → swap | reject → cooldown → idle
//
// Every transition and every verdict is journaled as JSONL, mirrored into
// autopilot.* metrics, and exposed through Status for /healthz. Training is
// checkpointed through internal/checkpoint and the train/valid split is
// staged next to the checkpoints, so a process that dies mid-retrain resumes
// the same candidate bit-identically on restart instead of falling back to
// idle and re-triggering.
package autopilot

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cardnet/internal/checkpoint"
	"cardnet/internal/core"
	"cardnet/internal/infer"
	"cardnet/internal/obs"
	"cardnet/internal/obs/monitor"
	"cardnet/internal/serving"
)

// States of the pilot, in transition order. StateSwap and StateReject are
// momentary (the decision itself); the pilot rests in idle, training, shadow,
// or cooldown.
const (
	StateIdle      = "idle"
	StateTriggered = "triggered"
	StateTraining  = "training"
	StateShadow    = "shadow"
	StateSwap      = "swap"
	StateReject    = "reject"
	StateCooldown  = "cooldown"
)

// StateCode maps a state name onto the numeric value of the autopilot.state
// gauge (idle 0, triggered 1, training 2, shadow 3, swap 4, reject 5,
// cooldown 6; -1 for an unknown name).
func StateCode(state string) int {
	switch state {
	case StateIdle:
		return 0
	case StateTriggered:
		return 1
	case StateTraining:
		return 2
	case StateShadow:
		return 3
	case StateSwap:
		return 4
	case StateReject:
		return 5
	case StateCooldown:
		return 6
	default:
		return -1
	}
}

// Pilot metrics on the shared default registry, exposed by /metrics next to
// the serving and monitor families.
var (
	mState         = obs.Default.Gauge("autopilot.state")
	mSamples       = obs.Default.Gauge("autopilot.samples")
	mTriggers      = obs.Default.Counter("autopilot.triggers")
	mSwaps         = obs.Default.Counter("autopilot.swaps")
	mRejects       = obs.Default.Counter("autopilot.rejects")
	mResumes       = obs.Default.Counter("autopilot.resumes")
	mShadowBatches = obs.Default.Counter("autopilot.shadow.batches")
	mShadowRows    = obs.Default.Counter("autopilot.shadow.rows")
	mShadowDropped = obs.Default.Counter("autopilot.shadow.dropped")
)

// Labeler returns the exact cumulative cardinality curve for one encoded
// query at every τ in [0, tauTop] — the ground truth the candidate trains
// toward and the shadow evaluation scores against. In cardnet serve it is the
// simselect.EncodedOracle's CurveEncoded (Hamming workloads, where the
// encoding is the identity); tests substitute arbitrary truth functions.
type Labeler func(x []float64, tauTop int) ([]float64, error)

// Config tunes the pilot; zero values take the documented defaults.
type Config struct {
	// Dir is the staging directory for the candidate's train/valid split,
	// trainer checkpoints, and trained candidate model. Required: resume
	// after a mid-retrain death starts from what this directory holds.
	Dir string
	// Dwell is how long the drift monitor must report retrain-recommended
	// without interruption before the pilot triggers (default 30s).
	Dwell time.Duration
	// Poll is the idle-loop tick (default 1s).
	Poll time.Duration
	// Cooldown is the rest period after a swap or reject before the pilot
	// re-arms (default 5m). It bounds retrain churn when drift persists.
	Cooldown time.Duration
	// MinSamples is the fewest accumulated distinct queries needed to build
	// a candidate train set (default 64). A trigger with fewer samples is
	// declined and re-evaluated on the next poll.
	MinSamples int
	// MaxSamples caps the sample ring; the oldest queries are evicted
	// (default 4096).
	MaxSamples int
	// ValidFrac is the fraction of accumulated samples held out for
	// validation (default 0.2).
	ValidFrac float64
	// TrainWorkers is the data-parallel width of the candidate retrain
	// (default 1: sequential, deterministic, and minimally disruptive to the
	// serving process sharing the machine).
	TrainWorkers int
	// CkptEvery / CkptRetain tune the candidate's trainer checkpoints
	// (defaults 1 and 3, matching cardnet train).
	CkptEvery  int
	CkptRetain int
	// ShadowRate is the fraction of live batches dual-run through the
	// candidate during shadow evaluation (default 0.25). Sampling is
	// counter-based: 1 in round(1/rate) batches.
	ShadowRate float64
	// ShadowMin is how many live rows the shadow comparison needs before a
	// verdict (default 256).
	ShadowMin int
	// ShadowTimeout bounds the shadow phase; if ShadowMin rows have not
	// arrived in time the candidate is rejected for insufficient evidence
	// (default 2m).
	ShadowTimeout time.Duration
	// WinRatio is the bar the candidate must clear: its shadow q-error
	// geometric mean must be ≤ WinRatio × the live model's (default 1.0 —
	// the candidate must not be worse).
	WinRatio float64
	// GateSweep / GateSeed parameterize the Lemma-2 monotonicity sweep
	// (infer.MonoSweep) every winning candidate must pass with zero
	// violations (defaults infer.DefaultGateSweep and 0).
	GateSweep int
	GateSeed  int64
	// PublishPath, when set, receives the swapped-in candidate through the
	// atomic model writer so a process restart serves the post-swap model.
	PublishPath string
	// Journal, when set, receives one JSONL line per transition and
	// decision.
	Journal *obs.Sink
	// SLOSink, when set, mirrors swap/reject decisions into the SLO
	// transition log so one stream carries every operational state change.
	SLOSink *obs.Sink
}

func (c Config) withDefaults() Config {
	if c.Dwell <= 0 {
		c.Dwell = 30 * time.Second
	}
	if c.Poll <= 0 {
		c.Poll = time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Minute
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 64
	}
	if c.MaxSamples < c.MinSamples {
		c.MaxSamples = 4096
	}
	if c.ValidFrac <= 0 || c.ValidFrac >= 1 {
		c.ValidFrac = 0.2
	}
	if c.TrainWorkers < 1 {
		c.TrainWorkers = 1
	}
	if c.CkptEvery < 1 {
		c.CkptEvery = 1
	}
	if c.CkptRetain < 1 {
		c.CkptRetain = 3
	}
	if c.ShadowRate <= 0 || c.ShadowRate > 1 {
		c.ShadowRate = 0.25
	}
	if c.ShadowMin <= 0 {
		c.ShadowMin = 256
	}
	if c.ShadowTimeout <= 0 {
		c.ShadowTimeout = 2 * time.Minute
	}
	if c.WinRatio <= 0 {
		c.WinRatio = 1.0
	}
	if c.GateSweep <= 0 {
		c.GateSweep = infer.DefaultGateSweep
	}
	return c
}

// Decision records the outcome of one completed loop iteration — the fields
// an operator reads first when auditing why the pilot swapped or declined.
type Decision struct {
	Time            time.Time `json:"time"`
	Event           string    `json:"event"` // "swap" or "reject"
	Reason          string    `json:"reason"`
	ShadowRows      int       `json:"shadow_rows"`
	LiveQGeoMean    float64   `json:"live_q_geomean"`
	CandQGeoMean    float64   `json:"cand_q_geomean"`
	MonoViolations  int       `json:"mono_violations"`
	CandidateEpochs int       `json:"candidate_epochs"`
	ModelVersion    uint64    `json:"model_version,omitempty"` // post-swap registry version
}

// Status is the pilot's /healthz block.
type Status struct {
	State        string    `json:"state"`
	Inhibited    bool      `json:"inhibited"`
	Samples      int       `json:"samples"`
	Triggers     uint64    `json:"triggers"`
	Swaps        uint64    `json:"swaps"`
	Rejects      uint64    `json:"rejects"`
	Resumes      uint64    `json:"resumes"`
	LastDecision *Decision `json:"last_decision,omitempty"`
}

// Pilot is the drift-to-swap state machine. Build with New, start the loop
// with Start, stop with Close (which interrupts a mid-flight retrain at the
// next epoch boundary, checkpointing it for resume).
type Pilot struct {
	cfg   Config
	eng   *serving.Engine
	reg   *serving.Registry
	mon   *monitor.Monitor
	label Labeler

	store *sampleStore

	state     atomic.Value // string
	inhibited atomic.Bool
	force     atomic.Bool

	triggers atomic.Uint64
	swaps    atomic.Uint64
	rejects  atomic.Uint64
	resumes  atomic.Uint64

	// candEpochs carries the epoch count from training into the shadow
	// decision record. After a resume from a staged candidate it reads zero:
	// the count belongs to the process that trained, and the journal line it
	// emitted already holds it.
	candEpochs atomic.Int64

	mu       sync.Mutex
	last     *Decision
	activeCk *checkpoint.Checkpointer // non-nil while a retrain runs

	stopCh  chan struct{}
	doneCh  chan struct{}
	stopped atomic.Bool
	started bool
}

// New builds a pilot over a serving engine, its drift monitor, and a ground-
// truth labeler. The staging directory is created if missing. The loop does
// not run until Start.
func New(cfg Config, eng *serving.Engine, mon *monitor.Monitor, label Labeler) (*Pilot, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("autopilot: Config.Dir is required (candidate staging and resume live there)")
	}
	if eng == nil || mon == nil || label == nil {
		return nil, fmt.Errorf("autopilot: engine, monitor, and labeler are all required")
	}
	if err := ensureDir(cfg.Dir); err != nil {
		return nil, err
	}
	p := &Pilot{
		cfg:    cfg,
		eng:    eng,
		reg:    eng.Registry(),
		mon:    mon,
		label:  label,
		store:  newSampleStore(cfg.MaxSamples),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
	p.setState(StateIdle)
	return p, nil
}

// Observe feeds one live labelled query into the pilot's sample ring: every
// /feedback body and every audit replay calls it, so the candidate retrains
// on the traffic that exposed the drift. Duplicate encodings refresh their
// position instead of occupying two slots. Safe for concurrent use; x is
// copied.
func (p *Pilot) Observe(x []float64, tau int) {
	p.store.Observe(x, tau)
	mSamples.Set(float64(p.store.Len()))
}

// Samples reports how many distinct queries the ring currently holds.
func (p *Pilot) Samples() int { return p.store.Len() }

// Force arms an immediate trigger: the next poll fires regardless of the
// drift level or dwell window (the sample floor still applies). Exposed as
// POST /admin/autopilot {"action":"force"}.
func (p *Pilot) Force() { p.force.Store(true) }

// SetInhibited pauses (true) or resumes (false) autonomous action: an
// inhibited pilot neither triggers retrains nor swaps — a shadow verdict that
// would have swapped is journaled as a reject with reason "swap inhibited by
// operator". Exposed as POST /admin/autopilot {"action":"inhibit"|"resume"}.
func (p *Pilot) SetInhibited(v bool) { p.inhibited.Store(v) }

// Inhibited reports whether autonomous action is paused.
func (p *Pilot) Inhibited() bool { return p.inhibited.Load() }

// State returns the current state name.
func (p *Pilot) State() string { return p.state.Load().(string) }

// Status snapshots the pilot for /healthz.
func (p *Pilot) Status() Status {
	p.mu.Lock()
	last := p.last
	p.mu.Unlock()
	return Status{
		State:        p.State(),
		Inhibited:    p.Inhibited(),
		Samples:      p.store.Len(),
		Triggers:     p.triggers.Load(),
		Swaps:        p.swaps.Load(),
		Rejects:      p.rejects.Load(),
		Resumes:      p.resumes.Load(),
		LastDecision: last,
	}
}

// Start launches the loop. If the staging directory holds an interrupted
// run — a trained candidate awaiting shadow, or a staged train set with (or
// without) trainer checkpoints — the pilot resumes it instead of starting
// idle: a mid-retrain death costs at most the in-flight epoch, never the
// whole retrain.
func (p *Pilot) Start() {
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return
	}
	p.started = true
	p.mu.Unlock()
	go p.run()
}

// Close stops the loop and blocks until it exits. A retrain in flight is
// asked to stop at the next epoch boundary and checkpoints that epoch, so
// the staging directory stays resumable — Close during training is the
// graceful version of the death the resume path covers.
func (p *Pilot) Close() {
	if p.stopped.Swap(true) {
		<-p.doneCh
		return
	}
	close(p.stopCh)
	p.mu.Lock()
	if p.activeCk != nil {
		p.activeCk.RequestStop()
	}
	started := p.started
	p.mu.Unlock()
	if !started {
		close(p.doneCh)
		return
	}
	<-p.doneCh
}

func (p *Pilot) stopping() bool {
	select {
	case <-p.stopCh:
		return true
	default:
		return false
	}
}

// sleep waits for d or until Close, reporting whether the full wait elapsed.
func (p *Pilot) sleep(d time.Duration) bool {
	select {
	case <-time.After(d):
		return true
	case <-p.stopCh:
		return false
	}
}

func (p *Pilot) setState(s string) {
	p.state.Store(s)
	mState.Set(float64(StateCode(s)))
}

// transition moves the machine to `to` and journals the edge with the given
// reason and extra fields.
func (p *Pilot) transition(to, reason string, fields map[string]any) {
	from := p.State()
	p.setState(to)
	if p.cfg.Journal == nil {
		return
	}
	out := map[string]any{"from": from, "to": to, "reason": reason}
	for k, v := range fields {
		out[k] = v
	}
	// Journal writes are best-effort: a full disk must not stop the loop.
	_ = p.cfg.Journal.Emit("autopilot", out)
}

// recordDecision stores the loop outcome for Status, bumps the counter, and
// mirrors it into the SLO transition stream when one is wired.
func (p *Pilot) recordDecision(d *Decision) {
	d.Time = time.Now()
	p.mu.Lock()
	p.last = d
	p.mu.Unlock()
	if d.Event == "swap" {
		p.swaps.Add(1)
		mSwaps.Inc()
	} else {
		p.rejects.Add(1)
		mRejects.Inc()
	}
	if p.cfg.SLOSink != nil {
		_ = p.cfg.SLOSink.Emit("autopilot.decision", map[string]any{
			"event":         d.Event,
			"reason":        d.Reason,
			"shadow_rows":   d.ShadowRows,
			"live_q":        d.LiveQGeoMean,
			"cand_q":        d.CandQGeoMean,
			"model_version": d.ModelVersion,
		})
	}
}

// run is the state-machine loop. Each iteration drives one full cycle; a
// resumable interruption (Close mid-retrain) returns with staging intact.
func (p *Pilot) run() {
	defer close(p.doneCh)

	// A previous process may have died mid-cycle: pick up where it left off.
	cand, st, train, valid, phase := p.detectStaging()
	for !p.stopping() {
		switch phase {
		case resumeNone:
			if !p.waitTrigger() {
				return
			}
			var ok bool
			train, valid, ok = p.stageTrainSet()
			if !ok {
				// Declined (too few samples, labeler failure): re-arm.
				phase = resumeNone
				if !p.sleep(p.cfg.Poll) {
					return
				}
				continue
			}
			fallthrough
		case resumeTraining:
			var interrupted bool
			cand, interrupted = p.trainCandidate(train, valid, st)
			st = nil
			if interrupted {
				return // staging retained; next Start resumes
			}
			if cand == nil { // training declined (skipped / failed)
				p.finishCycle()
				phase = resumeNone
				continue
			}
			fallthrough
		case resumeShadow:
			if !p.shadowAndDecide(cand) {
				return // closing mid-shadow; candidate stays staged for resume
			}
			p.finishCycle()
			phase = resumeNone
		}
	}
}

// waitTrigger blocks in idle until the drift level has been
// retrain-recommended for the dwell window (or an operator forces a
// trigger), returning false when the pilot is closing. Inhibition holds the
// pilot in idle regardless of drift.
func (p *Pilot) waitTrigger() bool {
	for {
		if p.stopping() {
			return false
		}
		if forced := p.force.Swap(false); forced && !p.Inhibited() {
			p.triggers.Add(1)
			mTriggers.Inc()
			p.transition(StateTriggered, "forced by operator", map[string]any{
				"samples": p.store.Len(),
			})
			return true
		}
		if !p.Inhibited() {
			level, since := p.mon.LevelSince()
			if level >= 2 && !since.IsZero() && time.Since(since) >= p.cfg.Dwell {
				p.triggers.Add(1)
				mTriggers.Inc()
				p.transition(StateTriggered, "drift retrain-recommended sustained past dwell", map[string]any{
					"dwell_seconds": p.cfg.Dwell.Seconds(),
					"level_seconds": time.Since(since).Seconds(),
					"samples":       p.store.Len(),
				})
				return true
			}
		}
		if !p.sleep(p.cfg.Poll) {
			return false
		}
	}
}

// stageTrainSet builds the candidate's train/valid split from the sample
// ring, labels it through the ground-truth labeler, and persists it to the
// staging directory so a resumed process retrains on byte-identical data.
func (p *Pilot) stageTrainSet() (train, valid *core.TrainSet, ok bool) {
	live, _ := p.reg.Current()
	if n := p.store.Len(); n < p.cfg.MinSamples {
		p.transition(StateIdle, "trigger declined: too few samples", map[string]any{
			"samples": n, "min_samples": p.cfg.MinSamples,
		})
		return nil, nil, false
	}
	train, valid, err := p.store.Build(live.TauTop, p.label, p.cfg.GateSeed, p.cfg.ValidFrac)
	if err != nil {
		p.transition(StateIdle, "trigger declined: labeling failed", map[string]any{"error": err.Error()})
		return nil, nil, false
	}
	if err := checkpoint.SaveTrainSet(p.tsetPath(), train, valid); err != nil {
		p.transition(StateIdle, "trigger declined: staging train set failed", map[string]any{"error": err.Error()})
		return nil, nil, false
	}
	return train, valid, true
}

// trainCandidate runs (or resumes) the checkpointed incremental retrain and
// publishes the finished candidate into staging. A cooperative interruption
// (Close) returns interrupted=true with staging intact. A nil candidate with
// interrupted=false means the cycle ends without a candidate (training
// skipped or failed) — the caller cleans up and re-arms.
func (p *Pilot) trainCandidate(train, valid *core.TrainSet, st *core.TrainerState) (cand *core.Model, interrupted bool) {
	fields := map[string]any{"train_rows": train.NumQueries(), "valid_rows": valid.NumQueries()}
	var err error
	if st != nil {
		cand, err = core.RestoreTrainer(st)
		fields["resumed_epoch"] = st.Epoch
	} else {
		live, _ := p.reg.Current()
		cand, err = cloneModel(live)
		if cand != nil {
			cand.Cfg.Workers = p.cfg.TrainWorkers
		}
	}
	if err != nil {
		p.transition(StateIdle, "training declined: candidate construction failed", map[string]any{"error": err.Error()})
		return nil, false
	}
	store, err := checkpoint.OpenStore(p.ckptDir(), p.cfg.CkptRetain)
	if err != nil {
		p.transition(StateIdle, "training declined: checkpoint store unavailable", map[string]any{"error": err.Error()})
		return nil, false
	}
	ck := checkpoint.NewCheckpointer(store, p.cfg.CkptEvery)
	cand.Cfg.Hook = ck.Hook(nil)
	cand.Cfg.Stop = ck.StopRequested
	p.mu.Lock()
	p.activeCk = ck
	if p.stopped.Load() {
		ck.RequestStop()
	}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.activeCk = nil
		p.mu.Unlock()
	}()

	p.transition(StateTraining, "incremental retrain on accumulated samples", fields)
	var res core.IncrementalResult
	if st != nil {
		res, err = cand.ResumeIncrementalTrain(train, valid, st)
	} else {
		res, err = cand.IncrementalTrain(train, valid, 0), nil
	}
	if err != nil {
		p.transition(StateIdle, "training failed", map[string]any{"error": err.Error()})
		return nil, false
	}
	if res.Interrupted {
		p.transition(StateTraining, "retrain interrupted; staging retained for resume", map[string]any{
			"epochs": res.Epochs,
		})
		return nil, true
	}
	if res.Skipped {
		p.transition(StateReject, "training skipped: validation error had not degraded", nil)
		p.recordDecision(&Decision{Event: "reject", Reason: "incremental trainer skipped: no degradation on candidate data"})
		return nil, false
	}
	if err := checkpoint.SaveModel(p.candPath(), cand); err != nil {
		p.transition(StateIdle, "training completed but candidate staging failed", map[string]any{"error": err.Error()})
		return nil, false
	}
	p.candEpochs.Store(int64(res.Epochs))
	p.transition(StateShadow, "candidate trained; shadow evaluation begins", map[string]any{
		"epochs": res.Epochs, "valid_msle": res.ValidMSLE,
	})
	return cand, false
}

// shadowAndDecide dual-runs sampled live traffic through the candidate,
// scores both models against ground truth, runs the monotonicity sweep, and
// either hot-swaps the registry or rejects the candidate. It reports false
// when the pilot closed before a verdict was reached — the candidate then
// stays staged so a restart resumes straight into shadow.
func (p *Pilot) shadowAndDecide(cand *core.Model) bool {
	p.setState(StateShadow)
	ev := newShadowEval(cand, p.label, p.cfg.ShadowRate, p.cfg.ShadowMin)
	p.eng.SetShadowTap(ev.tap)
	defer func() {
		p.eng.SetShadowTap(nil)
		ev.close()
	}()

	select {
	case <-ev.ready:
	case <-time.After(p.cfg.ShadowTimeout):
	case <-p.stopCh:
		return false
	}
	rows, liveG, candG := ev.summary()

	d := &Decision{
		Event:           "reject",
		ShadowRows:      rows,
		LiveQGeoMean:    liveG,
		CandQGeoMean:    candG,
		CandidateEpochs: int(p.candEpochs.Load()),
	}
	switch {
	case rows < p.cfg.ShadowMin:
		d.Reason = fmt.Sprintf("insufficient shadow traffic: %d of %d rows before timeout", rows, p.cfg.ShadowMin)
	case candG > liveG*p.cfg.WinRatio:
		d.Reason = fmt.Sprintf("candidate q-error geomean %.4f exceeds live %.4f × win ratio %.2f", candG, liveG, p.cfg.WinRatio)
	default:
		d.MonoViolations = infer.MonoSweep(cand, p.cfg.GateSweep, p.cfg.GateSeed)
		if d.MonoViolations > 0 {
			d.Reason = fmt.Sprintf("%d of %d monotonicity sweep curves violate Lemma 2", d.MonoViolations, p.cfg.GateSweep)
		} else if p.Inhibited() {
			d.Reason = "swap inhibited by operator"
		} else {
			version, err := p.reg.Swap(cand)
			if err != nil {
				d.Reason = fmt.Sprintf("registry refused swap: %v", err)
			} else {
				d.Event = "swap"
				d.Reason = fmt.Sprintf("candidate q-error geomean %.4f ≤ live %.4f, 0 monotonicity violations", candG, liveG)
				d.ModelVersion = version
				if p.cfg.PublishPath != "" {
					if err := checkpoint.SaveModel(p.cfg.PublishPath, cand); err != nil {
						// The swap already happened; publication failure only
						// affects the next restart. Journal it.
						p.transition(StateSwap, "publish after swap failed", map[string]any{"error": err.Error()})
					}
				}
			}
		}
	}
	if d.Event == "swap" {
		p.transition(StateSwap, d.Reason, map[string]any{
			"model_version": d.ModelVersion, "shadow_rows": rows,
			"live_q": liveG, "cand_q": candG,
		})
	} else {
		p.transition(StateReject, d.Reason, map[string]any{
			"shadow_rows": rows, "live_q": liveG, "cand_q": candG,
			"mono_violations": d.MonoViolations,
		})
	}
	p.recordDecision(d)
	return true
}

// finishCycle clears staging, rests for the cooldown, and re-arms. The
// sample ring is reset too: post-decision traffic should describe the
// post-decision model.
func (p *Pilot) finishCycle() {
	p.cleanStaging()
	p.store.Reset()
	mSamples.Set(0)
	p.candEpochs.Store(0)
	p.transition(StateCooldown, "cycle complete", map[string]any{
		"cooldown_seconds": p.cfg.Cooldown.Seconds(),
	})
	if p.sleep(p.cfg.Cooldown) {
		p.transition(StateIdle, "cooldown elapsed; re-armed", nil)
	}
}

// cloneModel deep-copies a model through its gob round trip, detaching the
// candidate's weights from the live serving model.
func cloneModel(m *core.Model) (*core.Model, error) {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return nil, fmt.Errorf("autopilot: snapshot live model: %w", err)
	}
	c, err := core.Load(&buf)
	if err != nil {
		return nil, fmt.Errorf("autopilot: rebuild candidate: %w", err)
	}
	return c, nil
}
