package autopilot

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sync"

	"cardnet/internal/core"
	"cardnet/internal/tensor"
)

// sampleStore is a deduplicating ring of labelled live queries — the raw
// material of a candidate retrain. /feedback bodies and audit replays feed
// it; when the pilot triggers, Build turns the ring into a ground-truth-
// labelled train/valid split. Duplicate encodings keep one slot (their τ and
// recency refresh), so the ring measures distinct query coverage rather than
// raw traffic volume.
type sampleStore struct {
	mu   sync.Mutex
	cap  int
	xs   [][]float64
	taus []int
	// index maps the FNV-64a of a row's float bits to its slot, for O(1)
	// dedup; slots evicted from the ring leave the index with them.
	index map[uint64]int
	head  int // next eviction / insertion slot once full
}

func newSampleStore(capacity int) *sampleStore {
	return &sampleStore{cap: capacity, index: make(map[uint64]int)}
}

func hashRow(x []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range x {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Observe records one labelled query; x is copied.
func (s *sampleStore) Observe(x []float64, tau int) {
	if len(x) == 0 {
		return
	}
	key := hashRow(x)
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, ok := s.index[key]; ok {
		s.taus[i] = tau
		return
	}
	if len(s.xs) < s.cap {
		s.index[key] = len(s.xs)
		s.xs = append(s.xs, append([]float64(nil), x...))
		s.taus = append(s.taus, tau)
		return
	}
	// Ring is full: the slot at head is the oldest; evict it.
	old := hashRow(s.xs[s.head])
	delete(s.index, old)
	s.index[key] = s.head
	s.xs[s.head] = append([]float64(nil), x...)
	s.taus[s.head] = tau
	s.head = (s.head + 1) % s.cap
}

// Len reports how many distinct queries the ring holds.
func (s *sampleStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.xs)
}

// Reset empties the ring (after a decision: post-decision traffic should
// describe the post-decision model).
func (s *sampleStore) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.xs, s.taus = nil, nil
	s.index = make(map[uint64]int)
	s.head = 0
}

// Build labels every accumulated query with its full ground-truth cumulative
// curve over τ ∈ [0, tauTop], derives the empirical τ distribution P from
// the observed thresholds, and splits the rows into train and valid sets with
// a seeded shuffle — deterministic for a given ring and seed, so the split a
// resumed process rebuilds from the staged file hashes identically to the one
// this call produced.
func (s *sampleStore) Build(tauTop int, label Labeler, seed int64, validFrac float64) (train, valid *core.TrainSet, err error) {
	s.mu.Lock()
	xs := make([][]float64, len(s.xs))
	copy(xs, s.xs)
	taus := append([]int(nil), s.taus...)
	s.mu.Unlock()

	n := len(xs)
	if n < 2 {
		return nil, nil, fmt.Errorf("autopilot: %d samples cannot form a train/valid split", n)
	}
	labels := tensor.NewMatrix(n, tauTop+1)
	x := tensor.NewMatrix(n, len(xs[0]))
	for i, row := range xs {
		if len(row) != x.Cols {
			return nil, nil, fmt.Errorf("autopilot: sample %d has %d features, expected %d", i, len(row), x.Cols)
		}
		curve, lerr := label(row, tauTop)
		if lerr != nil {
			return nil, nil, fmt.Errorf("autopilot: label sample %d: %w", i, lerr)
		}
		if len(curve) != tauTop+1 {
			return nil, nil, fmt.Errorf("autopilot: labeler returned %d values, expected %d", len(curve), tauTop+1)
		}
		copy(x.Row(i), row)
		copy(labels.Row(i), curve)
	}

	// Empirical P(τ) from the thresholds live traffic actually asked for —
	// Section 6.2's P(τ) estimated from the drifted workload itself. Uniform
	// fallback if every τ fell out of range.
	p := make([]float64, tauTop+1)
	total := 0
	for _, tau := range taus {
		if tau < 0 {
			tau = 0
		}
		if tau > tauTop {
			tau = tauTop
		}
		p[tau]++
		total++
	}
	if total == 0 {
		for i := range p {
			p[i] = 1 / float64(len(p))
		}
	} else {
		for i := range p {
			p[i] /= float64(total)
		}
	}

	perm := rand.New(rand.NewSource(seed)).Perm(n)
	nValid := int(float64(n) * validFrac)
	if nValid < 1 {
		nValid = 1
	}
	if nValid >= n {
		nValid = n - 1
	}
	full := &core.TrainSet{X: x, Labels: labels, TauTop: tauTop, P: p}
	return full.Subset(perm[nValid:]), full.Subset(perm[:nValid]), nil
}
