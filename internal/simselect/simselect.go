// Package simselect implements exact similarity-selection algorithms for the
// four distance functions. They serve two roles from the paper: generating
// noise-free training labels (Section 6.1) and acting as the SimSelect
// baseline whose running time estimation must beat (Table 6).
//
// Each index exposes Count (the cardinality) and Select (the matching record
// ids). Filters follow the standard exact pipelines: bit-parallel popcount
// scans for Hamming, length + q-gram count filters with banded verification
// for edit distance, size + prefix filters over an inverted index for
// Jaccard, and a vantage-point metric tree for Euclidean range search. The
// paper's conjunctive case study uses a cover tree [34]; the VP-tree used
// here is an exact metric-tree substitute with the same triangle-inequality
// pruning (see DESIGN.md).
package simselect

// Counter estimates or computes the cardinality of a similarity selection.
// Exact indexes and learned estimators both satisfy it, so the benchmark
// harness can treat them uniformly.
type Counter[R any] interface {
	Count(q R, theta float64) int
}
