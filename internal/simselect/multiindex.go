package simselect

import (
	"sort"

	"cardnet/internal/dist"
)

// HammingMultiIndex answers Hamming selections with the pigeonhole
// multi-index principle (the family of algorithms behind the paper's
// SimSelect reference [64]): the dimensions are split into m parts; any
// record within distance θ ≤ θmax must match the query exactly on at least
// one part whenever m > θ. Candidates come from per-part exact-match hash
// tables and are verified with the full distance. For small thresholds this
// is much faster than a scan; Count falls back to the scan automatically
// when the pigeonhole condition cannot hold.
type HammingMultiIndex struct {
	Records  []dist.BitVector
	Parts    int
	bounds   []int
	tables   []map[uint64][]int
	fallback *HammingIndex
}

// NewHammingMultiIndex builds the index with enough parts to support
// thresholds up to maxTheta (m = maxTheta+1 parts, each matched exactly).
func NewHammingMultiIndex(records []dist.BitVector, maxTheta int) *HammingMultiIndex {
	ix := &HammingMultiIndex{Records: records, fallback: NewHammingIndex(records)}
	if len(records) == 0 {
		return ix
	}
	dim := records[0].Len
	m := maxTheta + 1
	if m > dim {
		m = dim
	}
	if m < 1 {
		m = 1
	}
	ix.Parts = m
	for p := 0; p <= m; p++ {
		ix.bounds = append(ix.bounds, p*dim/m)
	}
	ix.tables = make([]map[uint64][]int, m)
	for p := 0; p < m; p++ {
		ix.tables[p] = map[uint64][]int{}
		for id, r := range records {
			pat := ix.partPattern(r, p)
			ix.tables[p][pat] = append(ix.tables[p][pat], id)
		}
	}
	return ix
}

// partPattern packs part p's bits into a 64-bit signature. Parts wider than
// 64 bits fold positions modulo 64 with OR; equal parts still fold to equal
// signatures, so the exact-match filter stays a necessary condition and
// verification keeps the result exact.
func (ix *HammingMultiIndex) partPattern(r dist.BitVector, p int) uint64 {
	var pat uint64
	lo, hi := ix.bounds[p], ix.bounds[p+1]
	for i := lo; i < hi; i++ {
		if r.Bit(i) {
			pat |= 1 << ((i - lo) % 64)
		}
	}
	return pat
}

// Count returns |{y : H(q,y) ≤ θ}|.
func (ix *HammingMultiIndex) Count(q dist.BitVector, theta float64) int {
	return len(ix.Select(q, theta))
}

// Select returns the matching record ids in ascending order.
func (ix *HammingMultiIndex) Select(q dist.BitVector, theta float64) []int {
	k := int(theta)
	if ix.Parts == 0 {
		return nil
	}
	if k >= ix.Parts {
		// Pigeonhole needs more parts than the threshold; fall back.
		return ix.fallback.Select(q, theta)
	}
	seen := map[int]bool{}
	var out []int
	for p := 0; p <= k; p++ { // k+1 parts suffice: one must match exactly
		for _, id := range ix.tables[p][ix.partPattern(q, p)] {
			if seen[id] {
				continue
			}
			seen[id] = true
			if dist.Hamming(q, ix.Records[id]) <= k {
				out = append(out, id)
			}
		}
	}
	sort.Ints(out)
	return out
}
