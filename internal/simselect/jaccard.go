package simselect

import (
	"sort"

	"cardnet/internal/dist"
)

// JaccardIndex answers Jaccard-distance selections with the standard exact
// pipeline: records are size-filtered (J(x,y) ≥ s implies
// s·|x| ≤ |y| ≤ |x|/s), candidates are generated from an inverted index over
// the prefix of each record in a global frequency order (prefix filter), and
// survivors are verified by a sorted-merge overlap count.
type JaccardIndex struct {
	Records []dist.IntSet
	// ordered[i] holds record i's tokens re-ranked by ascending global
	// frequency (rarest first), the order the prefix filter needs.
	ordered [][]uint32
	// inverted maps rank → record ids whose prefix contains that rank.
	inverted map[uint32][]int
	rank     map[uint32]uint32
	bySize   map[int][]int
}

// NewJaccardIndex builds the prefix-filter index. minSim is the smallest
// similarity the index will be asked about, i.e. 1 − θmax; shorter prefixes
// are valid for larger similarities, so indexing at minSim is sufficient for
// all θ ≤ θmax.
func NewJaccardIndex(records []dist.IntSet, thetaMax float64) *JaccardIndex {
	ix := &JaccardIndex{
		Records:  records,
		ordered:  make([][]uint32, len(records)),
		inverted: map[uint32][]int{},
		rank:     map[uint32]uint32{},
		bySize:   map[int][]int{},
	}
	minSim := 1 - thetaMax
	if minSim < 0 {
		minSim = 0
	}

	freq := map[uint32]int{}
	for _, r := range records {
		for _, tok := range r {
			freq[tok]++
		}
	}
	tokens := make([]uint32, 0, len(freq))
	for tok := range freq {
		tokens = append(tokens, tok)
	}
	sort.Slice(tokens, func(i, j int) bool {
		if freq[tokens[i]] != freq[tokens[j]] {
			return freq[tokens[i]] < freq[tokens[j]]
		}
		return tokens[i] < tokens[j]
	})
	for i, tok := range tokens {
		ix.rank[tok] = uint32(i)
	}

	for id, r := range records {
		ord := make([]uint32, len(r))
		for i, tok := range r {
			ord[i] = ix.rank[tok]
		}
		sort.Slice(ord, func(i, j int) bool { return ord[i] < ord[j] })
		ix.ordered[id] = ord
		ix.bySize[len(r)] = append(ix.bySize[len(r)], id)
		for _, rk := range ord[:prefixLen(len(ord), minSim)] {
			ix.inverted[rk] = append(ix.inverted[rk], id)
		}
	}
	return ix
}

// prefixLen returns the prefix-filter length for a set of size n at
// similarity s: n − ⌈s·n⌉ + 1 (clamped to [0, n]).
func prefixLen(n int, s float64) int {
	if n == 0 {
		return 0
	}
	p := n - int(ceil(s*float64(n))) + 1
	if p < 0 {
		p = 0
	}
	if p > n {
		p = n
	}
	return p
}

func ceil(v float64) float64 {
	i := float64(int(v))
	if v > i {
		return i + 1
	}
	return i
}

// Count returns |{y : J(q,y) ≤ θ}| (Jaccard distance).
func (ix *JaccardIndex) Count(q dist.IntSet, theta float64) int {
	return len(ix.Select(q, theta))
}

// Select returns matching record ids.
func (ix *JaccardIndex) Select(q dist.IntSet, theta float64) []int {
	sim := 1 - theta
	qord := make([]uint32, len(q))
	for i, tok := range q {
		if rk, ok := ix.rank[tok]; ok {
			qord[i] = rk
		} else {
			qord[i] = ^uint32(0) // unseen token: most frequent rank, never indexed
		}
	}
	sort.Slice(qord, func(i, j int) bool { return qord[i] < qord[j] })

	seen := map[int]bool{}
	for _, rk := range qord[:prefixLen(len(qord), sim)] {
		for _, id := range ix.inverted[rk] {
			seen[id] = true
		}
	}
	var out []int
	for id := range seen {
		y := ix.Records[id]
		if !sizeOK(len(q), len(y), sim) {
			continue
		}
		if dist.Jaccard(q, y) <= theta+1e-12 {
			out = append(out, id)
		}
	}
	// Empty query edge case: J(∅,∅)=0 matches other empty sets, which have
	// no prefix; handle via the size index.
	if len(q) == 0 {
		out = out[:0]
		for _, id := range ix.bySize[0] {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

func sizeOK(nq, ny int, sim float64) bool {
	if sim <= 0 {
		return true
	}
	lo := sim * float64(nq)
	hi := float64(nq) / sim
	return float64(ny) >= lo-1e-12 && float64(ny) <= hi+1e-12
}

// CountAtEach returns cumulative cardinalities over a grid of thresholds
// (ascending). One candidate generation pass at the largest threshold is
// verified once per candidate, then histogrammed onto the grid.
func (ix *JaccardIndex) CountAtEach(q dist.IntSet, grid []float64) []int {
	out := make([]int, len(grid))
	if len(grid) == 0 {
		return out
	}
	maxTheta := grid[len(grid)-1]
	ids := ix.Select(q, maxTheta)
	for _, id := range ids {
		d := dist.Jaccard(q, ix.Records[id])
		// First grid point with grid[i] ≥ d.
		pos := sort.SearchFloat64s(grid, d-1e-12)
		for pos < len(grid) && grid[pos] < d-1e-12 {
			pos++
		}
		if pos < len(grid) {
			out[pos]++
		}
	}
	for i := 1; i < len(out); i++ {
		out[i] += out[i-1]
	}
	return out
}
