package simselect

import (
	"fmt"

	"cardnet/internal/dist"
)

// EncodedOracle answers exact counts in the transformed Hamming space the
// CardNet regressor g is trained toward: |{h(y) : H(h(x), h(y)) ≤ τ}| over
// the encoded dataset. For Hamming workloads the encoding is the identity
// (Section 4.1), so this equals the original-space cardinality; the serve
// mode's audit sampler uses it to replay live /estimate requests against
// ground truth and feed the drift monitor without labelled feedback.
type EncodedOracle struct {
	ix  *HammingIndex
	dim int
}

// NewEncodedOracle converts encoded binary rows (values 0/1, all of equal
// length) into bit vectors and wraps them in a popcount-scan index.
func NewEncodedOracle(rows [][]float64) (*EncodedOracle, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("simselect: empty encoded dataset")
	}
	dim := len(rows[0])
	recs := make([]dist.BitVector, len(rows))
	for i, row := range rows {
		if len(row) != dim {
			return nil, fmt.Errorf("simselect: encoded row %d has %d bits, want %d", i, len(row), dim)
		}
		v, err := EncodeBits(row)
		if err != nil {
			return nil, fmt.Errorf("simselect: row %d: %w", i, err)
		}
		recs[i] = v
	}
	return &EncodedOracle{ix: NewHammingIndex(recs), dim: dim}, nil
}

// NewEncodedOracleBits wraps already-materialized bit vectors (a Hamming
// dataset is its own encoding).
func NewEncodedOracleBits(recs []dist.BitVector) (*EncodedOracle, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("simselect: empty encoded dataset")
	}
	return &EncodedOracle{ix: NewHammingIndex(recs), dim: recs[0].Len}, nil
}

// Dim returns the encoded dimensionality the oracle expects.
func (o *EncodedOracle) Dim() int { return o.dim }

// Len returns the number of indexed records.
func (o *EncodedOracle) Len() int { return len(o.ix.Records) }

// CountEncoded returns the exact cardinality at transformed threshold τ for
// an encoded query vector. Negative τ selects nothing by convention
// (matching core's EstimateEncoded clamp).
func (o *EncodedOracle) CountEncoded(x []float64, tau int) (int, error) {
	if tau < 0 {
		return 0, nil
	}
	if len(x) != o.dim {
		return 0, fmt.Errorf("simselect: query has %d bits, oracle indexes %d", len(x), o.dim)
	}
	q, err := EncodeBits(x)
	if err != nil {
		return 0, err
	}
	return o.ix.Count(q, float64(tau)), nil
}

// CurveEncoded returns the exact cumulative cardinality curve at every
// transformed threshold τ ∈ [0, tauTop] in one index scan — the ground-truth
// labels the serve-mode autopilot retrains and shadow-scores against
// (CountEncoded called tauTop+1 times would rescan the dataset per τ).
func (o *EncodedOracle) CurveEncoded(x []float64, tauTop int) ([]float64, error) {
	if tauTop < 0 {
		return nil, fmt.Errorf("simselect: negative tauTop %d", tauTop)
	}
	if len(x) != o.dim {
		return nil, fmt.Errorf("simselect: query has %d bits, oracle indexes %d", len(x), o.dim)
	}
	q, err := EncodeBits(x)
	if err != nil {
		return nil, err
	}
	cum := o.ix.CountAtEach(q, tauTop)
	curve := make([]float64, tauTop+1)
	for i, c := range cum {
		curve[i] = float64(c)
	}
	return curve, nil
}

// EncodeBits packs a strictly-binary float row into a BitVector.
func EncodeBits(row []float64) (dist.BitVector, error) {
	v := dist.NewBitVector(len(row))
	for i, b := range row {
		switch b {
		case 0:
		case 1:
			v.SetBit(i, true)
		default:
			return dist.BitVector{}, fmt.Errorf("component %d = %v, want binary 0/1", i, b)
		}
	}
	return v, nil
}
