package simselect

import "cardnet/internal/dist"

// HammingIndex answers Hamming-distance selections with a bit-parallel
// popcount scan. At the dataset scales in this repository a scan with
// word-level XOR/popcount is both exact and fast; the GPH-style partitioned
// index for the optimizer case study lives in internal/optimizer.
type HammingIndex struct {
	Records []dist.BitVector
}

// NewHammingIndex wraps the record slice (not copied).
func NewHammingIndex(records []dist.BitVector) *HammingIndex {
	return &HammingIndex{Records: records}
}

// Count returns |{y : H(q,y) ≤ θ}|.
func (ix *HammingIndex) Count(q dist.BitVector, theta float64) int {
	k := int(theta)
	n := 0
	for _, r := range ix.Records {
		if hammingWithin(q, r, k) {
			n++
		}
	}
	return n
}

// Select returns the ids of matching records.
func (ix *HammingIndex) Select(q dist.BitVector, theta float64) []int {
	k := int(theta)
	var out []int
	for i, r := range ix.Records {
		if hammingWithin(q, r, k) {
			out = append(out, i)
		}
	}
	return out
}

// CountAtEach returns, for one query, the cumulative cardinality at every
// integer threshold 0..maxTheta in a single scan. Label generation for the
// threshold grid uses this to avoid maxTheta+1 passes.
func (ix *HammingIndex) CountAtEach(q dist.BitVector, maxTheta int) []int {
	hist := make([]int, maxTheta+1)
	for _, r := range ix.Records {
		if d := dist.Hamming(q, r); d <= maxTheta {
			hist[d]++
		}
	}
	for i := 1; i <= maxTheta; i++ {
		hist[i] += hist[i-1]
	}
	return hist
}

// hammingWithin short-circuits the popcount scan once the budget is blown.
func hammingWithin(a, b dist.BitVector, k int) bool {
	d := 0
	for i, w := range a.Bits {
		d += onesCount(w ^ b.Bits[i])
		if d > k {
			return false
		}
	}
	return true
}

// onesCount is split out so hammingWithin stays inlinable.
func onesCount(w uint64) int {
	w -= (w >> 1) & 0x5555555555555555
	w = (w & 0x3333333333333333) + ((w >> 2) & 0x3333333333333333)
	w = (w + (w >> 4)) & 0x0f0f0f0f0f0f0f0f
	return int((w * 0x0101010101010101) >> 56)
}
