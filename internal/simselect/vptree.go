package simselect

import (
	"math/rand"
	"sort"

	"cardnet/internal/dist"
)

// EuclideanIndex answers Euclidean range selections exactly with a
// vantage-point tree: each node stores a pivot and the median distance of
// its subtree to that pivot; range search prunes subtrees with the triangle
// inequality. It stands in for the paper's cover tree [34] — both are exact
// metric trees with the same pruning rule (see DESIGN.md substitutions).
type EuclideanIndex struct {
	Records [][]float64
	root    *vpNode
}

type vpNode struct {
	id      int
	radius  float64 // median distance to pivot
	inside  *vpNode // points with d ≤ radius
	outside *vpNode
	leaf    []int // small subtrees stay flat
}

const vpLeafSize = 16

// NewEuclideanIndex builds the tree with a deterministic pivot choice.
func NewEuclideanIndex(records [][]float64) *EuclideanIndex {
	ix := &EuclideanIndex{Records: records}
	ids := make([]int, len(records))
	for i := range ids {
		ids[i] = i
	}
	rng := rand.New(rand.NewSource(42))
	ix.root = ix.build(ids, rng)
	return ix
}

func (ix *EuclideanIndex) build(ids []int, rng *rand.Rand) *vpNode {
	if len(ids) == 0 {
		return nil
	}
	if len(ids) <= vpLeafSize {
		leaf := make([]int, len(ids))
		copy(leaf, ids)
		return &vpNode{id: -1, leaf: leaf}
	}
	// Random pivot: swap it to the front.
	p := rng.Intn(len(ids))
	ids[0], ids[p] = ids[p], ids[0]
	pivot := ids[0]
	rest := ids[1:]

	dists := make([]float64, len(rest))
	for i, id := range rest {
		dists[i] = dist.Euclidean(ix.Records[pivot], ix.Records[id])
	}
	order := make([]int, len(rest))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return dists[order[a]] < dists[order[b]] })
	mid := len(order) / 2
	radius := dists[order[mid]]

	insideIDs := make([]int, 0, mid+1)
	outsideIDs := make([]int, 0, len(order)-mid)
	for _, oi := range order {
		if dists[oi] <= radius {
			insideIDs = append(insideIDs, rest[oi])
		} else {
			outsideIDs = append(outsideIDs, rest[oi])
		}
	}
	return &vpNode{
		id:      pivot,
		radius:  radius,
		inside:  ix.build(insideIDs, rng),
		outside: ix.build(outsideIDs, rng),
	}
}

// Count returns |{y : ‖q−y‖ ≤ θ}|.
func (ix *EuclideanIndex) Count(q []float64, theta float64) int {
	n := 0
	ix.walk(ix.root, q, theta, func(int) { n++ })
	return n
}

// Select returns matching record ids in ascending order.
func (ix *EuclideanIndex) Select(q []float64, theta float64) []int {
	var out []int
	ix.walk(ix.root, q, theta, func(id int) { out = append(out, id) })
	sort.Ints(out)
	return out
}

func (ix *EuclideanIndex) walk(n *vpNode, q []float64, r float64, emit func(int)) {
	if n == nil {
		return
	}
	if n.leaf != nil {
		for _, id := range n.leaf {
			if dist.Euclidean(q, ix.Records[id]) <= r {
				emit(id)
			}
		}
		return
	}
	d := dist.Euclidean(q, ix.Records[n.id])
	if d <= r {
		emit(n.id)
	}
	if d-r <= n.radius {
		ix.walk(n.inside, q, r, emit)
	}
	if d+r > n.radius {
		ix.walk(n.outside, q, r, emit)
	}
}

// CountAtEach returns cumulative cardinalities for an ascending threshold
// grid, histogramming one range pass at the largest threshold.
func (ix *EuclideanIndex) CountAtEach(q []float64, grid []float64) []int {
	out := make([]int, len(grid))
	if len(grid) == 0 {
		return out
	}
	maxTheta := grid[len(grid)-1]
	ix.walk(ix.root, q, maxTheta, func(id int) {
		d := dist.Euclidean(q, ix.Records[id])
		pos := sort.SearchFloat64s(grid, d-1e-12)
		for pos < len(grid) && grid[pos] < d-1e-12 {
			pos++
		}
		if pos < len(grid) {
			out[pos]++
		}
	})
	for i := 1; i < len(out); i++ {
		out[i] += out[i-1]
	}
	return out
}
