package simselect

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"cardnet/internal/dist"
)

func randBits(r *rand.Rand, n, dim int) []dist.BitVector {
	out := make([]dist.BitVector, n)
	for i := range out {
		v := dist.NewBitVector(dim)
		for j := 0; j < dim; j++ {
			if r.Intn(2) == 1 {
				v.SetBit(j, true)
			}
		}
		out[i] = v
	}
	return out
}

func TestHammingIndexMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		recs := randBits(r, 50, 24)
		ix := NewHammingIndex(recs)
		q := randBits(r, 1, 24)[0]
		for k := 0; k <= 24; k += 4 {
			want := 0
			for _, rec := range recs {
				if dist.Hamming(q, rec) <= k {
					want++
				}
			}
			if ix.Count(q, float64(k)) != want {
				return false
			}
			if len(ix.Select(q, float64(k))) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHammingCountAtEachCumulative(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	recs := randBits(r, 80, 32)
	ix := NewHammingIndex(recs)
	q := randBits(r, 1, 32)[0]
	cum := ix.CountAtEach(q, 16)
	for k := 0; k <= 16; k++ {
		if cum[k] != ix.Count(q, float64(k)) {
			t.Fatalf("cum[%d]=%d want %d", k, cum[k], ix.Count(q, float64(k)))
		}
		if k > 0 && cum[k] < cum[k-1] {
			t.Fatal("cumulative counts must be nondecreasing")
		}
	}
}

func randStrings(r *rand.Rand, n, maxLen int) []string {
	out := make([]string, n)
	for i := range out {
		l := 1 + r.Intn(maxLen)
		b := make([]byte, l)
		for j := range b {
			b[j] = byte('a' + r.Intn(3))
		}
		out[i] = string(b)
	}
	return out
}

func TestEditIndexMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		recs := randStrings(r, 60, 10)
		ix := NewEditIndex(recs)
		q := randStrings(r, 1, 10)[0]
		for k := 0; k <= 5; k++ {
			want := 0
			for _, rec := range recs {
				if dist.Edit(q, rec) <= k {
					want++
				}
			}
			if got := ix.Count(q, float64(k)); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEditCountAtEachCumulative(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	recs := randStrings(r, 60, 12)
	ix := NewEditIndex(recs)
	q := recs[0]
	cum := ix.CountAtEach(q, 6)
	for k := 0; k <= 6; k++ {
		if cum[k] != ix.Count(q, float64(k)) {
			t.Fatalf("cum[%d]=%d want %d", k, cum[k], ix.Count(q, float64(k)))
		}
	}
	if cum[0] < 1 {
		t.Fatal("query is in the dataset; distance-0 count must be ≥ 1")
	}
}

func randSets(r *rand.Rand, n, universe, maxLen int) []dist.IntSet {
	out := make([]dist.IntSet, n)
	for i := range out {
		l := 1 + r.Intn(maxLen)
		toks := make([]uint32, l)
		for j := range toks {
			toks[j] = uint32(r.Intn(universe))
		}
		out[i] = dist.NewIntSet(toks)
	}
	return out
}

func TestJaccardIndexMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		recs := randSets(r, 60, 20, 8)
		ix := NewJaccardIndex(recs, 0.6)
		q := randSets(r, 1, 20, 8)[0]
		for _, theta := range []float64{0, 0.2, 0.4, 0.6} {
			want := 0
			for _, rec := range recs {
				if dist.Jaccard(q, rec) <= theta+1e-12 {
					want++
				}
			}
			if got := ix.Count(q, theta); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestJaccardSelectSortedAndVerified(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	recs := randSets(r, 100, 30, 10)
	ix := NewJaccardIndex(recs, 0.5)
	q := recs[7]
	ids := ix.Select(q, 0.3)
	if !sort.IntsAreSorted(ids) {
		t.Fatal("Select ids must be sorted")
	}
	for _, id := range ids {
		if dist.Jaccard(q, recs[id]) > 0.3+1e-9 {
			t.Fatalf("false positive id %d", id)
		}
	}
}

func TestJaccardCountAtEachCumulative(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	recs := randSets(r, 80, 25, 8)
	ix := NewJaccardIndex(recs, 0.5)
	q := recs[0]
	grid := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	cum := ix.CountAtEach(q, grid)
	for i, theta := range grid {
		if cum[i] != ix.Count(q, theta) {
			t.Fatalf("cum[%v]=%d want %d", theta, cum[i], ix.Count(q, theta))
		}
	}
}

func randVecs(r *rand.Rand, n, dim int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			v[j] = r.NormFloat64()
		}
		out[i] = v
	}
	return out
}

func TestEuclideanIndexMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		recs := randVecs(r, 120, 6)
		ix := NewEuclideanIndex(recs)
		q := randVecs(r, 1, 6)[0]
		for _, theta := range []float64{0.5, 1.5, 3, 10} {
			want := 0
			for _, rec := range recs {
				if dist.Euclidean(q, rec) <= theta {
					want++
				}
			}
			if got := ix.Count(q, theta); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEuclideanSelectExact(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	recs := randVecs(r, 200, 4)
	ix := NewEuclideanIndex(recs)
	q := recs[3]
	ids := ix.Select(q, 1.0)
	if !sort.IntsAreSorted(ids) {
		t.Fatal("ids must be sorted")
	}
	found := false
	for _, id := range ids {
		if id == 3 {
			found = true
		}
		if dist.Euclidean(q, recs[id]) > 1.0 {
			t.Fatal("false positive")
		}
	}
	if !found {
		t.Fatal("query itself must match at distance 0")
	}
}

func TestEuclideanCountAtEachCumulative(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	recs := randVecs(r, 150, 5)
	ix := NewEuclideanIndex(recs)
	q := recs[0]
	grid := []float64{0.2, 0.6, 1.0, 1.8, 3.0}
	cum := ix.CountAtEach(q, grid)
	for i, theta := range grid {
		if cum[i] != ix.Count(q, theta) {
			t.Fatalf("cum[%v]=%d want %d", theta, cum[i], ix.Count(q, theta))
		}
	}
}

func TestEuclideanIndexEmptyAndTiny(t *testing.T) {
	ix := NewEuclideanIndex(nil)
	if ix.Count([]float64{}, 1) != 0 {
		t.Fatal("empty index must count 0")
	}
	one := NewEuclideanIndex([][]float64{{1, 2}})
	if one.Count([]float64{1, 2}, 0) != 1 {
		t.Fatal("single-record index broken")
	}
}

func TestHammingMultiIndexMatchesScan(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		recs := randBits(r, 80, 64)
		scan := NewHammingIndex(recs)
		multi := NewHammingMultiIndex(recs, 12)
		q := randBits(r, 1, 64)[0]
		for k := 0; k <= 20; k += 3 { // includes k > maxTheta fallback path
			if multi.Count(q, float64(k)) != scan.Count(q, float64(k)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHammingMultiIndexSelectSorted(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	recs := randBits(r, 120, 64)
	multi := NewHammingMultiIndex(recs, 10)
	ids := multi.Select(recs[4], 8)
	if !sort.IntsAreSorted(ids) {
		t.Fatal("ids must be sorted")
	}
	found := false
	for _, id := range ids {
		if id == 4 {
			found = true
		}
		if dist.Hamming(recs[4], recs[id]) > 8 {
			t.Fatal("false positive")
		}
	}
	if !found {
		t.Fatal("query record itself must match")
	}
}

func TestHammingMultiIndexWideParts(t *testing.T) {
	// dim 256 with maxTheta 2 → parts of ~85 bits exercise the fold path.
	r := rand.New(rand.NewSource(10))
	recs := randBits(r, 60, 256)
	scan := NewHammingIndex(recs)
	multi := NewHammingMultiIndex(recs, 2)
	for k := 0; k <= 2; k++ {
		if multi.Count(recs[0], float64(k)) != scan.Count(recs[0], float64(k)) {
			t.Fatalf("fold path wrong at k=%d", k)
		}
	}
}

func TestHammingMultiIndexEmpty(t *testing.T) {
	ix := NewHammingMultiIndex(nil, 4)
	if ix.Count(dist.NewBitVector(8), 2) != 0 {
		t.Fatal("empty index must count 0")
	}
}
