package simselect

import "cardnet/internal/dist"

// EditIndex answers edit-distance selections with the classic exact
// pipeline: a length filter (|len(x)−len(y)| ≤ θ), a q-gram count filter
// (strings within edit distance θ share at least max(len)−1−(θ−1)·q common
// q-grams), and banded dynamic-programming verification.
type EditIndex struct {
	Records  []string
	Q        int // q-gram length
	byLength map[int][]int
	grams    [][]uint64 // sorted q-gram hashes per record
}

// NewEditIndex builds the index with 2-grams.
func NewEditIndex(records []string) *EditIndex {
	ix := &EditIndex{Records: records, Q: 2, byLength: map[int][]int{}}
	ix.grams = make([][]uint64, len(records))
	for i, s := range records {
		ix.byLength[len(s)] = append(ix.byLength[len(s)], i)
		ix.grams[i] = qgrams(s, ix.Q)
	}
	return ix
}

// qgrams returns the sorted multiset of q-gram hashes of s.
func qgrams(s string, q int) []uint64 {
	if len(s) < q {
		if len(s) == 0 {
			return nil
		}
		return []uint64{hashGram(s)}
	}
	out := make([]uint64, 0, len(s)-q+1)
	for i := 0; i+q <= len(s); i++ {
		out = append(out, hashGram(s[i:i+q]))
	}
	sortU64(out)
	return out
}

func hashGram(g string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(g); i++ {
		h ^= uint64(g[i])
		h *= 1099511628211
	}
	return h
}

func sortU64(a []uint64) {
	// Insertion sort: gram lists are short (≤ string length).
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// commonGrams counts the multiset intersection of two sorted gram lists.
func commonGrams(a, b []uint64) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// Count returns |{y : edit(q,y) ≤ θ}|.
func (ix *EditIndex) Count(q string, theta float64) int {
	return len(ix.Select(q, theta))
}

// Select returns matching record ids.
func (ix *EditIndex) Select(q string, theta float64) []int {
	k := int(theta)
	qg := qgrams(q, ix.Q)
	var out []int
	for l := len(q) - k; l <= len(q)+k; l++ {
		for _, id := range ix.byLength[l] {
			if !ix.gramFilterPass(qg, len(q), id, k) {
				continue
			}
			if _, ok := dist.EditWithin(q, ix.Records[id], k); ok {
				out = append(out, id)
			}
		}
	}
	return out
}

// gramFilterPass applies the count filter: need ≥ maxLen−1−(k−1)·q common
// q-grams (when that bound is positive).
func (ix *EditIndex) gramFilterPass(qg []uint64, qlen, id, k int) bool {
	maxLen := qlen
	if l := len(ix.Records[id]); l > maxLen {
		maxLen = l
	}
	// One edit destroys at most q grams, and the longer string has
	// maxLen−q+1 grams, so matches share ≥ maxLen−q+1−k·q grams.
	need := maxLen - ix.Q + 1 - k*ix.Q
	if need <= 0 {
		return true
	}
	return commonGrams(qg, ix.grams[id]) >= need
}

// CountAtEach returns cumulative cardinalities for thresholds 0..maxTheta.
// It verifies each length-feasible record once at the largest threshold and
// histograms the exact distances.
func (ix *EditIndex) CountAtEach(q string, maxTheta int) []int {
	hist := make([]int, maxTheta+1)
	qg := qgrams(q, ix.Q)
	for l := len(q) - maxTheta; l <= len(q)+maxTheta; l++ {
		for _, id := range ix.byLength[l] {
			if !ix.gramFilterPass(qg, len(q), id, maxTheta) {
				continue
			}
			if d, ok := dist.EditWithin(q, ix.Records[id], maxTheta); ok {
				hist[d]++
			}
		}
	}
	for i := 1; i <= maxTheta; i++ {
		hist[i] += hist[i-1]
	}
	return hist
}
