package core

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"cardnet/internal/tensor"
)

// randomBinaryBatch builds a B×dim matrix of random {0,1} rows.
func randomBinaryBatch(seed int64, b, dim int) *tensor.Matrix {
	rng := rand.New(rand.NewSource(seed))
	xs := tensor.NewMatrix(b, dim)
	for i := range xs.Data {
		xs.Data[i] = float64(rng.Intn(2))
	}
	return xs
}

// The batched paths must be bit-identical to the per-sample paths — the
// serving engine relies on this to coalesce requests without changing
// answers.
func TestBatchedEstimatesBitIdentical(t *testing.T) {
	for _, accel := range []bool{false, true} {
		m := New(tinyConfig(7, accel), 20)
		const b = 13
		xs := randomBinaryBatch(11, b, m.InDim)

		all := m.EstimateAllTausBatch(xs)
		if all.Rows != b || all.Cols != m.Cfg.TauMax+1 {
			t.Fatalf("accel=%v: batch all-taus shape %d×%d", accel, all.Rows, all.Cols)
		}
		taus := make([]int, b)
		for e := 0; e < b; e++ {
			taus[e] = e % (m.Cfg.TauMax + 3) // exercises clamping too
		}
		single := m.EstimateEncodedBatch(xs, taus)

		for e := 0; e < b; e++ {
			want := m.EstimateAllTaus(xs.Row(e))
			for i, v := range want {
				if all.At(e, i) != v {
					t.Fatalf("accel=%v: row %d τ=%d batched %v != per-sample %v", accel, e, i, all.At(e, i), v)
				}
			}
			if w := m.EstimateEncoded(xs.Row(e), taus[e]); single[e] != w {
				t.Fatalf("accel=%v: row %d tau=%d batched %v != per-sample %v", accel, e, taus[e], single[e], w)
			}
		}
	}
}

func TestBatchedEstimateNegativeTauIsZero(t *testing.T) {
	m := New(tinyConfig(5, true), 16)
	xs := randomBinaryBatch(3, 2, m.InDim)
	got := m.EstimateEncodedBatch(xs, []int{-1, 2})
	if got[0] != 0 {
		t.Fatalf("negative tau: got %v, want 0", got[0])
	}
	if want := m.EstimateEncoded(xs.Row(1), 2); got[1] != want {
		t.Fatalf("row 1: got %v, want %v", got[1], want)
	}
}

func TestBatchedEstimateShapePanics(t *testing.T) {
	m := New(tinyConfig(4, false), 8)
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	assertPanics("wrong dim", func() { m.EstimateAllTausBatch(tensor.NewMatrix(2, 5)) })
	assertPanics("tau count", func() { m.EstimateEncodedBatch(tensor.NewMatrix(2, 8), []int{1}) })
}

// Concurrent inference on one shared model must be race-free and return the
// same values as serial inference. Run with -race (make ci does) to lock in
// the guarantee that the inference forward pass writes no shared state.
func TestEstimateConcurrentMatchesSerial(t *testing.T) {
	for _, accel := range []bool{false, true} {
		m := New(tinyConfig(6, accel), 24)
		const nq = 64
		xs := randomBinaryBatch(29, nq, m.InDim)

		wantAll := make([][]float64, nq)
		wantOne := make([]float64, nq)
		for e := 0; e < nq; e++ {
			wantAll[e] = m.EstimateAllTaus(xs.Row(e))
			wantOne[e] = m.EstimateEncoded(xs.Row(e), e%(m.Cfg.TauMax+1))
		}

		workers := runtime.GOMAXPROCS(0) * 2
		if workers < 4 {
			workers = 4
		}
		var wg sync.WaitGroup
		errs := make(chan string, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for rep := 0; rep < 20; rep++ {
					e := (w*31 + rep*7) % nq
					if got := m.EstimateEncoded(xs.Row(e), e%(m.Cfg.TauMax+1)); got != wantOne[e] {
						errs <- "EstimateEncoded diverged under concurrency"
						return
					}
					got := m.EstimateAllTaus(xs.Row(e))
					for i, v := range wantAll[e] {
						if got[i] != v {
							errs <- "EstimateAllTaus diverged under concurrency"
							return
						}
					}
					if rep%5 == 0 {
						sub := tensor.NewMatrix(4, m.InDim)
						taus := make([]int, 4)
						for r := 0; r < 4; r++ {
							copy(sub.Row(r), xs.Row((e+r)%nq))
							taus[r] = (e + r) % (m.Cfg.TauMax + 1)
						}
						batch := m.EstimateEncodedBatch(sub, taus)
						for r := 0; r < 4; r++ {
							// The single-τ estimate is the prefix sum at τ, so it
							// must match the precomputed all-τ row exactly.
							if batch[r] != wantAll[(e+r)%nq][taus[r]] {
								errs <- "EstimateEncodedBatch diverged under concurrency"
								return
							}
						}
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		for msg := range errs {
			t.Fatalf("accel=%v: %s", accel, msg)
		}
	}
}
