package core

import "time"

// TrainEvent describes one completed training epoch. Events are delivered
// synchronously from the training loop; hooks must not mutate the slices
// they receive (they are copies, but shared with no one else only until the
// hook returns if the hook retains them — copy again to retain).
type TrainEvent struct {
	Phase     string        // "train" or "incremental"
	Epoch     int           // 1-based epoch number within the phase
	TrainLoss float64       // mean batch loss of the epoch (0 for incremental)
	HasValid  bool          // validation ran this epoch
	ValidMSLE float64       // validation MSLE (when HasValid)
	BestMSLE  float64       // best validation MSLE so far (when HasValid)
	Omega     []float64     // per-distance ω weights entering the next epoch
	LR        float64       // optimizer learning rate
	EpochTime time.Duration // wall time of the epoch, including validation
	Improved  bool          // this epoch set a new best validation MSLE
	EarlyStop bool          // the patience budget ran out after this epoch

	// Snapshot captures the complete resumable trainer state at this epoch
	// boundary — weights, Adam moments, ω, RNG position, counters — as a
	// deep copy the caller may retain (internal/checkpoint persists it).
	// Calling it costs a full parameter copy, so hooks should only invoke it
	// when they actually intend to checkpoint. Valid only during the hook
	// call; the closure reads live trainer state and must not be retained
	// past the hook's return (the *returned* TrainerState is a copy and safe
	// to keep).
	Snapshot func() *TrainerState `json:"-"`
}

// TrainHook receives per-epoch TrainEvents from Train and IncrementalTrain.
// It is a func type so a Config carrying one still gob-serializes (gob
// ignores func fields, like unexported ones); Save/Load round-trips drop the
// hook.
type TrainHook func(TrainEvent)

// Config collects the model and training hyperparameters. Defaults are
// scaled down from Section 9.1.3 so CPU training finishes in seconds; the
// architecture is identical.
type Config struct {
	TauMax int // number of decoders − 1 (τmax)

	// Representation network Γ: a VAE whose latent is concatenated to x.
	VAEHidden []int
	VAELatent int
	VAEEpochs int

	// Shared encoder network Φ (or fused Φ′ for CardNet-A).
	PhiHidden []int
	EmbDim    int // distance-embedding dimensionality (paper: 5)
	ZDim      int // final embedding dimensionality (paper: 60)

	// Training.
	Epochs      int
	Batch       int // queries per batch
	LR          float64
	Lambda      float64 // λ, weight of the VAE loss (Eq. 2; paper: 0.1)
	LambdaDelta float64 // λΔ, weight of the per-distance loss (Eq. 3; paper: 0.1)
	ClipNorm    float64
	Patience    int // early-stop after this many non-improving validations (0 = off)

	// Accel selects the CardNet-A fused encoder Φ′ (Section 7).
	Accel bool

	// Workers is the data-parallel width of Train, IncrementalTrain, and the
	// VAE pretraining: each minibatch is split into Workers shards whose
	// forward/backward passes run concurrently on the shared worker pool,
	// with gradients reduced in shard order. ≤ 1 (including the zero value)
	// is the sequential trainer, bit-identical to the pre-parallel
	// implementation. A fixed Workers > 1 run is reproducible — per-shard
	// VAE noise streams are seeded deterministically and the reduction order
	// is fixed — but different worker counts are different (equally valid)
	// training runs, because sharding regroups floating-point sums and
	// reassigns noise draws.
	Workers int

	Seed int64

	// Hook, when set, observes every training epoch (telemetry only — it
	// cannot alter the run). Not serialized by Save.
	Hook TrainHook

	// Stop, when set, is polled after every epoch (after the Hook fires);
	// returning true ends the run at that epoch boundary with
	// Interrupted=true in the result. It is the cooperative half of graceful
	// SIGTERM handling: the checkpoint hook flushes state for the same
	// epoch, so an interrupted run resumes bit-identically. Like Hook it is
	// a func field and not serialized.
	Stop func() bool
}

// DefaultConfig returns the scaled-down default hyperparameters for a model
// with tauMax+1 decoders.
func DefaultConfig(tauMax int) Config {
	return Config{
		TauMax:      tauMax,
		VAEHidden:   []int{64, 32},
		VAELatent:   16,
		VAEEpochs:   20,
		PhiHidden:   []int{64, 64},
		EmbDim:      5,
		ZDim:        24,
		Epochs:      40,
		Batch:       32,
		LR:          1e-3,
		Lambda:      0.1,
		LambdaDelta: 0.1,
		ClipNorm:    5,
		Patience:    12,
		Seed:        1,
	}
}

// PaperConfig returns hyperparameters matching Section 9.1.3 (VAE hidden
// 256/128/128, Φ hidden 512/512/256/256, embedding dim 5, z dim 60). It is
// provided for completeness; training it on CPU takes hours, as in the
// paper's Table 10.
func PaperConfig(tauMax, vaeLatent int) Config {
	c := DefaultConfig(tauMax)
	c.VAEHidden = []int{256, 128, 128}
	c.VAELatent = vaeLatent
	c.VAEEpochs = 100
	c.PhiHidden = []int{512, 512, 256, 256}
	c.ZDim = 60
	c.Epochs = 800
	return c
}
