package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cardnet/internal/dataset"
	"cardnet/internal/dist"
	"cardnet/internal/feature"
	"cardnet/internal/nn"
	"cardnet/internal/obs"
	"cardnet/internal/simselect"
	"cardnet/internal/tensor"
)

// tinyConfig keeps unit-test training fast.
func tinyConfig(tauMax int, accel bool) Config {
	cfg := DefaultConfig(tauMax)
	cfg.VAEHidden = []int{16}
	cfg.VAELatent = 6
	cfg.VAEEpochs = 3
	cfg.PhiHidden = []int{24, 16}
	cfg.ZDim = 12
	cfg.Epochs = 8
	cfg.Batch = 16
	cfg.Accel = accel
	return cfg
}

// hammingFixture builds a small Hamming workload with exact labels.
func hammingFixture(t *testing.T, n int) (*TrainSet, *TrainSet, *feature.HammingExtractor, []dist.BitVector) {
	t.Helper()
	recs := dataset.BinaryCodes(n, 32, 4, 0.08, 5)
	ext := feature.NewHammingExtractor(32, 12, 12)
	ix := simselect.NewHammingIndex(recs)
	grid := dataset.ThresholdGrid(12, 12)
	counts := func(q dist.BitVector, g []float64) []int {
		cum := ix.CountAtEach(q, 12)
		out := make([]int, len(g))
		for i, theta := range g {
			out[i] = cum[int(theta)]
		}
		return out
	}
	queries := recs[:n/2]
	train, err := BuildTrainSet[dist.BitVector](ext, queries[:len(queries)*4/5], grid, counts)
	if err != nil {
		t.Fatal(err)
	}
	valid, err := BuildTrainSet[dist.BitVector](ext, queries[len(queries)*4/5:], grid, counts)
	if err != nil {
		t.Fatal(err)
	}
	return train, valid, ext, recs
}

func TestBuildTrainSetShapeAndMonotoneLabels(t *testing.T) {
	train, _, ext, _ := hammingFixture(t, 200)
	if train.X.Cols != ext.Dim() {
		t.Fatalf("X cols=%d", train.X.Cols)
	}
	if train.TauTop != 12 {
		t.Fatalf("TauTop=%d", train.TauTop)
	}
	var psum float64
	for _, p := range train.P {
		psum += p
	}
	if math.Abs(psum-1) > 1e-9 {
		t.Fatalf("P sums to %v", psum)
	}
	for r := 0; r < train.NumQueries(); r++ {
		row := train.Labels.Row(r)
		for i := 1; i < len(row); i++ {
			if row[i] < row[i-1] {
				t.Fatalf("labels not monotone at row %d", r)
			}
		}
		// Query is in the dataset: distance-0 count ≥ 1.
		if row[0] < 1 {
			t.Fatalf("row %d: self-count %v", r, row[0])
		}
	}
}

func TestBuildTrainSetErrors(t *testing.T) {
	ext := feature.NewHammingExtractor(8, 4, 4)
	if _, err := BuildTrainSet[dist.BitVector](ext, nil, nil, nil); err == nil {
		t.Fatal("empty grid must error")
	}
	if _, err := BuildTrainSet[dist.BitVector](ext, nil, []float64{1, 0}, nil); err == nil {
		t.Fatal("descending grid must error")
	}
	bad := func(q dist.BitVector, g []float64) []int { return []int{1} }
	_, err := BuildTrainSet[dist.BitVector](ext, []dist.BitVector{dist.NewBitVector(8)},
		[]float64{0, 1}, bad)
	if err == nil {
		t.Fatal("wrong counts length must error")
	}
}

func TestPerDistanceLabels(t *testing.T) {
	ts := &TrainSet{Labels: tensor.FromRows([][]float64{{1, 4, 4, 9}}), TauTop: 3}
	got := ts.PerDistanceLabels(0)
	want := []float64{1, 3, 0, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PerDistanceLabels=%v", got)
		}
	}
}

func TestSubset(t *testing.T) {
	train, _, _, _ := hammingFixture(t, 100)
	s := train.Subset([]int{0, 2})
	if s.NumQueries() != 2 || s.TauTop != train.TauTop {
		t.Fatalf("subset wrong: %d queries", s.NumQueries())
	}
	for j := 0; j < s.X.Cols; j++ {
		if s.X.At(1, j) != train.X.At(2, j) {
			t.Fatal("subset row mismatch")
		}
	}
}

func TestEstimateMonotonicityProperty(t *testing.T) {
	for _, accel := range []bool{false, true} {
		m := New(tinyConfig(10, accel), 24)
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			x := make([]float64, 24)
			for i := range x {
				if r.Intn(2) == 1 {
					x[i] = 1
				}
			}
			prev := -1.0
			for tau := 0; tau <= 10; tau++ {
				v := m.EstimateEncoded(x, tau)
				if v < prev-1e-9 || v < 0 || math.IsNaN(v) {
					return false
				}
				prev = v
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatalf("accel=%v: %v", accel, err)
		}
	}
}

func TestEstimateDeterministic(t *testing.T) {
	m := New(tinyConfig(6, false), 16)
	x := make([]float64, 16)
	x[3], x[9] = 1, 1
	a := m.EstimateEncoded(x, 4)
	b := m.EstimateEncoded(x, 4)
	if a != b {
		t.Fatal("inference must be deterministic")
	}
}

func TestEstimateAllTausMatchesEstimateEncoded(t *testing.T) {
	m := New(tinyConfig(8, true), 16)
	x := make([]float64, 16)
	x[0], x[5], x[11] = 1, 1, 1
	all := m.EstimateAllTaus(x)
	for tau := 0; tau <= 8; tau++ {
		if math.Abs(all[tau]-m.EstimateEncoded(x, tau)) > 1e-9 {
			t.Fatalf("mismatch at τ=%d: %v vs %v", tau, all[tau], m.EstimateEncoded(x, tau))
		}
	}
}

func TestEstimateClampsTau(t *testing.T) {
	m := New(tinyConfig(4, false), 8)
	x := make([]float64, 8)
	if m.EstimateEncoded(x, -3) != 0 {
		t.Fatal("negative τ must estimate 0")
	}
	if m.EstimateEncoded(x, 99) != m.EstimateEncoded(x, 4) {
		t.Fatal("τ above TauMax must clamp")
	}
}

func TestEstimateWrongDimPanics(t *testing.T) {
	m := New(tinyConfig(4, false), 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.EstimateEncoded(make([]float64, 5), 1)
}

// Gradient check of the full model (standard and accelerated) against
// numerical differentiation of the batch loss.
func TestModelGradCheck(t *testing.T) {
	for _, accel := range []bool{false, true} {
		cfg := tinyConfig(3, accel)
		cfg.VAEHidden = []int{8}
		cfg.VAELatent = 4
		cfg.PhiHidden = []int{10, 8}
		cfg.ZDim = 6
		m := New(cfg, 10)

		rng := rand.New(rand.NewSource(3))
		x := tensor.NewMatrix(4, 10)
		for i := range x.Data {
			if rng.Float64() < 0.5 {
				x.Data[i] = 1
			}
		}
		labels := tensor.NewMatrix(4, 4)
		for i := range labels.Data {
			labels.Data[i] = float64(rng.Intn(50))
		}
		// Make labels cumulative.
		for e := 0; e < 4; e++ {
			row := labels.Row(e)
			for i := 1; i < len(row); i++ {
				row[i] += row[i-1]
			}
		}
		p := []float64{0.25, 0.25, 0.25, 0.25}
		omega := []float64{0.25, 0.25, 0.25, 0.25}

		mkRng := func() *rand.Rand { return rand.New(rand.NewSource(55)) }
		lossFn := func() float64 {
			f := m.forward(x, true, mkRng())
			var loss float64
			top := 3
			nTotal := x.Rows * (top + 1)
			for e := 0; e < x.Rows; e++ {
				lrow := labels.Row(e)
				var cum, prev float64
				for tau := 0; tau <= top; tau++ {
					cum += f.c.At(e, tau)
					w := p[tau] * float64(top+1)
					d := logErr(cum, lrow[tau])
					loss += w * d * d / float64(nTotal)
					ci := lrow[tau] - prev
					prev = lrow[tau]
					d2 := logErr(f.c.At(e, tau), ci)
					loss += m.Cfg.LambdaDelta * omega[tau] * d2 * d2 / float64(x.Rows)
				}
			}
			recon, kl := m.vae.Loss(f.vaeOut, x)
			return loss + m.Cfg.Lambda*(recon+kl)
		}

		// Analytic gradients via trainBatch's internals: replicate its dc
		// computation by calling forward+backward directly.
		nn.NewAdam(m.Params(), 0).ZeroGrad()
		f := m.forward(x, true, mkRng())
		dc := tensor.NewMatrix(4, 4)
		top := 3
		nTotal := x.Rows * (top + 1)
		for e := 0; e < x.Rows; e++ {
			lrow := labels.Row(e)
			var cum, prev float64
			cums := make([]float64, top+1)
			for i := 0; i <= top; i++ {
				cum += f.c.At(e, i)
				cums[i] = cum
			}
			for tau := 0; tau <= top; tau++ {
				w := p[tau] * float64(top+1)
				g := w * msleGrad(cums[tau], lrow[tau], nTotal)
				for i := 0; i <= tau; i++ {
					dc.Data[e*4+i] += g
				}
				ci := lrow[tau] - prev
				prev = lrow[tau]
				dc.Data[e*4+tau] += m.Cfg.LambdaDelta * omega[tau] * msleGrad(f.c.At(e, tau), ci, x.Rows)
			}
		}
		m.backward(f, dc, m.Cfg.Lambda)

		params := m.Params()
		checked := 0
		for _, pm := range params {
			idxs := []int{0, len(pm.Value) / 2}
			for _, i := range idxs {
				orig := pm.Value[i]
				const h = 1e-5
				pm.Value[i] = orig + h
				up := lossFn()
				pm.Value[i] = orig - h
				down := lossFn()
				pm.Value[i] = orig
				num := (up - down) / (2 * h)
				if math.Abs(num-pm.Grad[i]) > 2e-3*(1+math.Abs(num)) {
					t.Fatalf("accel=%v param %s[%d]: analytic %v numeric %v", accel, pm.Name, i, pm.Grad[i], num)
				}
				checked++
			}
		}
		if checked == 0 {
			t.Fatal("no parameters checked")
		}
	}
}

func TestTrainingReducesValidationError(t *testing.T) {
	train, valid, _, _ := hammingFixture(t, 300)
	for _, accel := range []bool{false, true} {
		cfg := tinyConfig(12, accel)
		cfg.Epochs = 15
		m := New(cfg, train.X.Cols)
		before, _ := m.validate(valid, train.TauTop)
		res := m.Train(train, valid)
		after, _ := m.validate(valid, train.TauTop)
		if !(after < before) {
			t.Fatalf("accel=%v: validation MSLE did not improve: %v -> %v", accel, before, after)
		}
		if res.Epochs == 0 || math.IsInf(res.BestValidMSLE, 1) {
			t.Fatalf("accel=%v: bad result %+v", accel, res)
		}
	}
}

func TestTrainedModelStillMonotonic(t *testing.T) {
	train, valid, _, recs := hammingFixture(t, 250)
	cfg := tinyConfig(12, true)
	cfg.Epochs = 10
	m := New(cfg, train.X.Cols)
	m.Train(train, valid)
	for qi := 0; qi < 20; qi++ {
		x := recs[qi].Floats()
		prev := -1.0
		for tau := 0; tau <= 12; tau++ {
			v := m.EstimateEncoded(x, tau)
			if v < prev-1e-9 {
				t.Fatalf("trained model not monotone at query %d τ=%d", qi, tau)
			}
			prev = v
		}
	}
}

func TestTrainWithoutValidation(t *testing.T) {
	train, _, _, _ := hammingFixture(t, 120)
	cfg := tinyConfig(12, false)
	cfg.Epochs = 3
	m := New(cfg, train.X.Cols)
	res := m.Train(train, nil)
	if res.Epochs != 3 {
		t.Fatalf("epochs=%d", res.Epochs)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	train, valid, _, recs := hammingFixture(t, 150)
	cfg := tinyConfig(12, true)
	cfg.Epochs = 4
	m := New(cfg, train.X.Cols)
	m.Train(train, valid)

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 10; qi++ {
		x := recs[qi].Floats()
		for tau := 0; tau <= 12; tau += 3 {
			if m.EstimateEncoded(x, tau) != m2.EstimateEncoded(x, tau) {
				t.Fatal("loaded model estimates differ")
			}
		}
	}
	if m2.TauTop != m.TauTop {
		t.Fatal("TauTop not preserved")
	}
}

func TestIncrementalTrainSkipsWhenErrorStable(t *testing.T) {
	train, valid, _, _ := hammingFixture(t, 150)
	cfg := tinyConfig(12, false)
	cfg.Epochs = 6
	m := New(cfg, train.X.Cols)
	res := m.Train(train, valid)
	inc := m.IncrementalTrain(train, valid, res.BestValidMSLE)
	if !inc.Skipped {
		t.Fatalf("unchanged data should skip retraining: %+v", inc)
	}
}

func TestIncrementalTrainImprovesAfterUpdate(t *testing.T) {
	// Train on one label distribution, then shift all labels upward (as if
	// many similar records were inserted) and verify incremental learning
	// reduces the degraded validation error.
	train, valid, _, _ := hammingFixture(t, 200)
	cfg := tinyConfig(12, false)
	cfg.Epochs = 10
	m := New(cfg, train.X.Cols)
	res := m.Train(train, valid)

	scale := func(ts *TrainSet) *TrainSet {
		out := &TrainSet{X: ts.X, Labels: ts.Labels.Clone(), TauTop: ts.TauTop, P: ts.P}
		for i := range out.Labels.Data {
			out.Labels.Data[i] = out.Labels.Data[i]*3 + 5
		}
		return out
	}
	newTrain, newValid := scale(train), scale(valid)

	top := train.TauTop
	degraded, _ := m.validate(newValid, top)
	inc := m.IncrementalTrain(newTrain, newValid, res.BestValidMSLE)
	if inc.Skipped {
		t.Fatal("shifted labels must trigger retraining")
	}
	if !(inc.ValidMSLE < degraded) {
		t.Fatalf("incremental learning did not improve: %v -> %v", degraded, inc.ValidMSLE)
	}
}

func TestEstimatorEndToEndMonotoneInTheta(t *testing.T) {
	train, valid, ext, recs := hammingFixture(t, 200)
	cfg := tinyConfig(12, true)
	cfg.Epochs = 6
	m := New(cfg, train.X.Cols)
	m.Train(train, valid)
	est := NewEstimator[dist.BitVector](ext, m)
	q := recs[0]
	prev := -1.0
	for theta := 0.0; theta <= 12; theta++ {
		v := est.Estimate(q, theta)
		if v < prev-1e-9 {
			t.Fatalf("estimate not monotone in θ at %v", theta)
		}
		prev = v
	}
	if est.Count(q, 5) < 0 {
		t.Fatal("Count must be non-negative")
	}
}

func TestModelSizeBytesPositiveAndAccelLarger(t *testing.T) {
	std := New(tinyConfig(10, false), 32)
	acc := New(tinyConfig(10, true), 32)
	if std.SizeBytes() <= 0 || acc.SizeBytes() <= 0 {
		t.Fatal("sizes must be positive")
	}
}

func TestPaperConfig(t *testing.T) {
	c := PaperConfig(24, 64)
	if c.TauMax != 24 || c.VAELatent != 64 || len(c.PhiHidden) != 4 {
		t.Fatalf("PaperConfig=%+v", c)
	}
}

func TestNoVAEAblationVariant(t *testing.T) {
	train, valid, _, _ := hammingFixture(t, 200)
	cfg := tinyConfig(12, false)
	cfg.VAELatent = 0 // VAE replaced by direct concatenation (Table 7 ablation)
	cfg.Lambda = 0
	cfg.Epochs = 8
	m := New(cfg, train.X.Cols)
	before, _ := m.validate(valid, train.TauTop)
	m.Train(train, valid)
	after, _ := m.validate(valid, train.TauTop)
	if !(after < before) {
		t.Fatalf("no-VAE variant failed to learn: %v -> %v", before, after)
	}
	// Still monotone and deterministic.
	x := train.X.Row(0)
	prev := -1.0
	for tau := 0; tau <= 12; tau++ {
		v := m.EstimateEncoded(x, tau)
		if v < prev-1e-9 {
			t.Fatal("no-VAE variant must stay monotone")
		}
		prev = v
	}
}

func TestComplexityMatchesLiveParams(t *testing.T) {
	for _, accel := range []bool{false, true} {
		m := New(tinyConfig(10, accel), 24)
		c := m.Complexity()
		if c.Total != nn.NumParams(m.Params()) {
			t.Fatalf("accel=%v: complexity total %d != live params %d",
				accel, c.Total, nn.NumParams(m.Params()))
		}
		if c.Decoders != 11*12+11 { // (τmax+1)·ZDim + (τmax+1)
			t.Fatalf("decoder params=%d", c.Decoders)
		}
		if c.VAE == 0 || c.Encoder == 0 {
			t.Fatalf("zero component in %+v", c)
		}
	}
	// No-VAE variant reports zero VAE params.
	cfg := tinyConfig(4, false)
	cfg.VAELatent = 0
	m := New(cfg, 8)
	if c := m.Complexity(); c.VAE != 0 || c.Total != nn.NumParams(m.Params()) {
		t.Fatalf("no-VAE complexity wrong: %+v", c)
	}
}

func TestInferenceMultiplier(t *testing.T) {
	std := New(tinyConfig(9, false), 8)
	acc := New(tinyConfig(9, true), 8)
	if std.InferenceMultiplier() != 10 {
		t.Fatalf("std multiplier=%d", std.InferenceMultiplier())
	}
	if acc.InferenceMultiplier() != 1 {
		t.Fatalf("accel multiplier=%d", acc.InferenceMultiplier())
	}
}

// TestTrainDeterministicWithHook is the obs regression guard: two models
// built from the same seed must train bit-identically — including when one
// of them carries a TrainHook and live obs instrumentation — so telemetry
// can be trusted not to perturb results. Serialized bytes are compared,
// which covers every parameter bit, and the hook's view of validation MSLE
// must match the returned result.
func TestTrainDeterministicWithHook(t *testing.T) {
	train, valid, _, _ := hammingFixture(t, 200)
	for _, accel := range []bool{false, true} {
		cfg := tinyConfig(12, accel)
		cfg.Epochs = 6
		cfg.Seed = 42

		var events []TrainEvent
		cfgHooked := cfg
		cfgHooked.Hook = func(ev TrainEvent) { events = append(events, ev) }

		a := New(cfgHooked, train.X.Cols)
		b := New(cfg, train.X.Cols)
		resA := a.Train(train, valid)
		resB := b.Train(train, valid)

		if a.SizeBytes() != b.SizeBytes() {
			t.Fatalf("accel=%v: SizeBytes %d vs %d", accel, a.SizeBytes(), b.SizeBytes())
		}
		if resA.BestValidMSLE != resB.BestValidMSLE {
			t.Fatalf("accel=%v: valid MSLE %v vs %v", accel, resA.BestValidMSLE, resB.BestValidMSLE)
		}
		var bufA, bufB bytes.Buffer
		if err := a.Save(&bufA); err != nil {
			t.Fatal(err)
		}
		if err := b.Save(&bufB); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
			t.Fatalf("accel=%v: hooked and hookless training diverged (serialized bytes differ)", accel)
		}

		if len(events) != resA.Epochs {
			t.Fatalf("accel=%v: %d events for %d epochs", accel, len(events), resA.Epochs)
		}
		lastEv := events[len(events)-1]
		if !lastEv.HasValid || lastEv.BestMSLE != resA.BestValidMSLE {
			t.Fatalf("accel=%v: last event %+v does not match result %+v", accel, lastEv, resA)
		}
		for i, ev := range events {
			if ev.Phase != "train" || ev.Epoch != i+1 {
				t.Fatalf("event %d: %+v", i, ev)
			}
			if len(ev.Omega) != train.TauTop+1 {
				t.Fatalf("event %d: omega len=%d", i, len(ev.Omega))
			}
			if ev.EpochTime <= 0 {
				t.Fatalf("event %d: non-positive epoch time", i)
			}
		}
	}
}

// TestIncrementalTrainEmitsEvents checks the hook contract of the
// Section 8 update path.
func TestIncrementalTrainEmitsEvents(t *testing.T) {
	train, valid, _, _ := hammingFixture(t, 150)
	cfg := tinyConfig(12, false)
	cfg.Epochs = 4
	m := New(cfg, train.X.Cols)
	m.Train(train, valid)

	shift := func(ts *TrainSet) *TrainSet {
		out := ts.Subset(seqInts(ts.NumQueries()))
		for i := range out.Labels.Data {
			out.Labels.Data[i] = out.Labels.Data[i]*3 + 10
		}
		return out
	}
	var events []TrainEvent
	m.Cfg.Hook = func(ev TrainEvent) { events = append(events, ev) }
	res := m.IncrementalTrain(shift(train), shift(valid), 1e-9)
	if res.Skipped {
		t.Fatalf("shifted labels should retrain: %+v", res)
	}
	if len(events) != res.Epochs {
		t.Fatalf("%d events for %d epochs", len(events), res.Epochs)
	}
	for i, ev := range events {
		if ev.Phase != "incremental" || ev.Epoch != i+1 || !ev.HasValid {
			t.Fatalf("event %d: %+v", i, ev)
		}
	}
	if last := events[len(events)-1]; last.ValidMSLE != res.ValidMSLE {
		t.Fatalf("last event MSLE %v != result %v", last.ValidMSLE, res.ValidMSLE)
	}
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// TestEstimateRecordsObsMetrics verifies the estimate-path instrumentation:
// latency histogram counts, τ-distribution observations, and the sampled
// monotonicity spot-check all advance on obs.Default.
func TestEstimateRecordsObsMetrics(t *testing.T) {
	train, _, _, recs := hammingFixture(t, 100)
	cfg := tinyConfig(12, true)
	m := New(cfg, train.X.Cols)

	lat0 := estLatency.Count()
	calls0 := estCalls.Value()
	tau0 := estTauDist.Count()
	checks0 := monoChecks.Value()
	viol0 := monoViolate.Value()

	const n = 2 * monoSampleEvery
	for i := 0; i < n; i++ {
		m.EstimateEncoded(recs[i%len(recs)].Floats(), i%13)
	}
	if got := estCalls.Value() - calls0; got != n {
		t.Fatalf("estimate calls recorded=%d", got)
	}
	if got := estLatency.Count() - lat0; got != n {
		t.Fatalf("latency observations=%d", got)
	}
	if got := estTauDist.Count() - tau0; got != n {
		t.Fatalf("tau observations=%d", got)
	}
	if monoChecks.Value() == checks0 {
		t.Fatal("monotonicity spot-check never sampled")
	}
	if monoViolate.Value() != viol0 {
		t.Fatal("healthy model reported monotonicity violations")
	}

	// Disabled instrumentation must record nothing and not change results.
	want := m.EstimateEncoded(recs[0].Floats(), 5)
	obs.SetEnabled(false)
	got := m.EstimateEncoded(recs[0].Floats(), 5)
	callsOff := estCalls.Value()
	obs.SetEnabled(true)
	if got != want {
		t.Fatalf("estimate changed with obs off: %v vs %v", got, want)
	}
	if m.EstimateEncoded(recs[0].Floats(), 5); estCalls.Value() != callsOff+1 {
		t.Fatal("counter did not pause while disabled")
	}
}
