package core

import (
	"fmt"

	"cardnet/internal/feature"
	"cardnet/internal/tensor"
)

// TrainSet holds a prepared regression workload: one row per query record,
// its encoded binary features, and the cumulative cardinality label at every
// transformed threshold τ ∈ [0, tauTop]. P is the empirical distribution of
// τ induced by the uniform threshold grid (Section 6.2 approximates the
// probability P(τ) with the empirical frequency of hthr over the validation
// thresholds).
type TrainSet struct {
	X      *tensor.Matrix // queries × inDim binary features
	Labels *tensor.Matrix // queries × (TauTop+1) cumulative cardinalities
	TauTop int
	P      []float64 // P(τ), length TauTop+1, sums to 1
}

// NumQueries returns the number of query rows.
func (t *TrainSet) NumQueries() int { return t.X.Rows }

// Subset returns a train set restricted to the given query rows (used by the
// training-size experiment, Figure 7).
func (t *TrainSet) Subset(rows []int) *TrainSet {
	s := &TrainSet{
		X:      tensor.NewMatrix(len(rows), t.X.Cols),
		Labels: tensor.NewMatrix(len(rows), t.Labels.Cols),
		TauTop: t.TauTop,
		P:      t.P,
	}
	for i, r := range rows {
		copy(s.X.Row(i), t.X.Row(r))
		copy(s.Labels.Row(i), t.Labels.Row(r))
	}
	return s
}

// BuildTrainSet prepares a TrainSet from queries of any record type. grid is
// the uniform threshold set S of Section 6.1 (ascending, covering
// [0, θmax]); counts(q, grid) must return the exact cumulative cardinality
// of q at each grid threshold (from internal/simselect's CountAtEach
// helpers). The label for τ is the count at the largest grid threshold
// mapping to at most τ, so labels are nondecreasing in τ by construction.
func BuildTrainSet[R any](ext feature.Extractor[R], queries []R, grid []float64, counts func(q R, grid []float64) []int) (*TrainSet, error) {
	if len(grid) == 0 {
		return nil, fmt.Errorf("core: empty threshold grid")
	}
	for i := 1; i < len(grid); i++ {
		if grid[i] < grid[i-1] {
			return nil, fmt.Errorf("core: threshold grid must be ascending")
		}
	}
	tauTop := ext.Threshold(grid[len(grid)-1])
	ts := &TrainSet{
		X:      tensor.NewMatrix(len(queries), ext.Dim()),
		Labels: tensor.NewMatrix(len(queries), tauTop+1),
		TauTop: tauTop,
		P:      make([]float64, tauTop+1),
	}

	// Empirical P(τ) from the grid (every query sees the same grid).
	taus := make([]int, len(grid))
	for gi, theta := range grid {
		taus[gi] = ext.Threshold(theta)
		if taus[gi] > tauTop {
			taus[gi] = tauTop
		}
		ts.P[taus[gi]] += 1 / float64(len(grid))
	}

	for qi, q := range queries {
		copy(ts.X.Row(qi), ext.Encode(q))
		cum := counts(q, grid)
		if len(cum) != len(grid) {
			return nil, fmt.Errorf("core: counts returned %d values for %d grid points", len(cum), len(grid))
		}
		row := ts.Labels.Row(qi)
		// Carry the largest grid count mapping to ≤ τ forward across τ
		// values the grid never hits.
		last := 0.0
		gi := 0
		for tau := 0; tau <= tauTop; tau++ {
			for gi < len(grid) && taus[gi] <= tau {
				last = float64(cum[gi])
				gi++
			}
			row[tau] = last
		}
	}
	return ts, nil
}

// PerDistanceLabels returns the per-distance increments c_i = c(τ=i) −
// c(τ=i−1) for one query row — the targets of the per-distance loss term in
// Equation 3.
func (t *TrainSet) PerDistanceLabels(row int) []float64 {
	cum := t.Labels.Row(row)
	out := make([]float64, len(cum))
	prev := 0.0
	for i, c := range cum {
		out[i] = c - prev
		prev = c
	}
	return out
}
