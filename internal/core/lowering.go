// Plan lowering: the model-side half of the compiled inference fast path.
//
// Lower flattens a trained CardNet / CardNet-A into an immutable, purely
// numeric LoweredModel — deep-copied weight matrices, biases folded, and the
// CardNet-A head projections algebraically fused with both the
// embedding-region scatter and the per-distance decoders. internal/infer
// consumes a LoweredModel to build precision-tiered (f32/int8) plans; the f64
// evaluator here is the fusion reference those tiers are gated against,
// isolating fusion error (reassociation only, ~1e-12) from precision error.
//
// The CardNet-A fusion: the stock forward computes, per hidden layer j with
// region width w and region column offset col,
//
//	zj = h_j·Whead_jᵀ + bhead_j                   (B × τcount·w)
//	z[e·τcount+i][col+u] = zj[e][i·w+u]           (scatter copy loops)
//	pre[e][i] = Σ_col decW[i][col]·z[e,i][col] + decB[i]
//
// Substituting the scatter into the decoder dot product and exchanging sums:
//
//	pre[e][i] = Σ_j Σ_k h_j[e][k] · F_j[i][k] + β[i]
//	F_j[i][k] = Σ_u decW[i][col_j+u] · Whead_j[i·w+u][k]
//	β[i]      = decB[i] + Σ_j Σ_u decW[i][col_j+u] · bhead_j[i·w+u]
//
// F_j is a τcount×h_j matrix: one fused product per layer replaces a
// τcount·w-wide head product, a w-row scatter per example, and the decoder
// dots — cutting head flops by the region width (≈15× at paper scale) and
// eliminating the copy loops entirely.
//
// The standard (non-accel) encoder gets the analogous constant folding: the
// first Φ layer's weight splits into an x′ part and an embedding part, and
// since row (e, i) always carries the same embedding eᵢ, the embedding half
// collapses into a per-distance bias matrix PB[i] = eᵢ·W1eᵀ + b1 computed
// once at lowering time; the per-example half u = x′·W1xᵀ is computed once
// per example instead of once per (example, τ).
package core

import (
	"fmt"

	"cardnet/internal/nn"
	"cardnet/internal/tensor"
)

// LoweredDense is one dense layer of a lowered model: out = act(x·W + b)
// with the weights stored pre-transposed (In×Out) so the f64 reference
// evaluator runs the branch-free MatMulDense kernel in a·b form. Consumers
// building other layouts (internal/infer's ABT-form f32/int8 plans)
// re-transpose at compile time; both are one-off copies.
type LoweredDense struct {
	In, Out int
	WT      *tensor.Matrix // In×Out, WT[k][o] = W[o][k]
	B       []float64      // len Out
	Act     nn.ActKind
}

// LoweredModel is the immutable inference spec extracted by Model.Lower: all
// weights deep-copied, biases folded, heads fused. It has no back-references
// into the model, so continued training or a hot swap never mutates a plan
// already serving.
type LoweredModel struct {
	InDim    int
	XpDim    int // InDim + VAE latent width
	TauCount int
	ZDim     int

	// VAE mean path (empty when the model is VAE-ablated): the encoder ELU
	// stack followed by the Identity μ head, producing the deterministic
	// latent that inference concatenates to x.
	VAE []LoweredDense

	// Accel selects which of the two encoder specs below is populated.
	Accel bool

	// CardNet-A: ReLU trunk layers; HeadsT[j] is the fused head F_j stored
	// h_j×τcount (transposed for the a·b reference kernel); HeadBias is β.
	Trunk    []LoweredDense
	HeadsT   []*tensor.Matrix
	HeadBias []float64

	// Standard CardNet: WXT is the x′ half of the first Φ layer (xpDim×h1,
	// pre-transposed), PerDist the folded per-distance bias matrix
	// (τcount×h1), Rest the remaining ReLU layers, and DecW/DecB the
	// per-distance decoders (DecW is τcount×ZDim).
	WXT     *tensor.Matrix
	PerDist *tensor.Matrix
	Rest    []LoweredDense
	DecW    *tensor.Matrix
	DecB    []float64
}

// lowerDense deep-copies a Dense layer into transposed LoweredDense form.
func lowerDense(d *nn.Dense, act nn.ActKind) LoweredDense {
	wt := tensor.NewMatrix(d.In, d.Out)
	for o := 0; o < d.Out; o++ {
		for k := 0; k < d.In; k++ {
			wt.Set(k, o, d.W.Value[o*d.In+k])
		}
	}
	return LoweredDense{In: d.In, Out: d.Out, WT: wt, B: append([]float64(nil), d.B.Value...), Act: act}
}

// lowerSequential extracts the Dense layers of a Dense/Activation chain,
// attaching each activation to the Dense it follows.
func lowerSequential(s *nn.Sequential) []LoweredDense {
	var out []LoweredDense
	for _, l := range s.Layers {
		switch v := l.(type) {
		case *nn.Dense:
			out = append(out, lowerDense(v, nn.Identity))
		case *nn.Activation:
			if len(out) == 0 {
				panic("core: lowering: activation before first dense layer")
			}
			out[len(out)-1].Act = v.Kind
		default:
			panic(fmt.Sprintf("core: lowering: unsupported layer %T", l))
		}
	}
	return out
}

// Lower flattens the model into an immutable LoweredModel (see the package
// comment for the fusion algebra). It runs once per model load or hot swap —
// never on the request path — and touches only frozen weight values, so it is
// safe to call concurrently with serving.
func (m *Model) Lower() *LoweredModel {
	t := m.tauCount()
	lm := &LoweredModel{
		InDim:    m.InDim,
		XpDim:    m.InDim + m.Cfg.VAELatent,
		TauCount: t,
		ZDim:     m.Cfg.ZDim,
		Accel:    m.Cfg.Accel,
	}
	if m.vae != nil {
		lm.VAE = lowerSequential(m.vae.Encoder)
		lm.VAE = append(lm.VAE, lowerDense(m.vae.MuHead, nn.Identity))
	}

	if m.Cfg.Accel {
		lm.HeadBias = append([]float64(nil), m.decB.Value...)
		col := 0
		for j, layer := range m.accel.layers {
			lm.Trunk = append(lm.Trunk, lowerDense(layer, nn.ReLU))
			w := m.accel.regions[j]
			head := m.accel.heads[j] // h_j → τcount·w
			hj := head.In
			ft := tensor.NewMatrix(hj, t) // F_jᵀ: ft[k][i] = Σ_u decW[i][col+u]·Whead[(i·w+u)][k]
			for i := 0; i < t; i++ {
				dw := m.decW.Value[i*m.Cfg.ZDim : (i+1)*m.Cfg.ZDim]
				for u := 0; u < w; u++ {
					d := dw[col+u]
					lm.HeadBias[i] += d * head.B.Value[i*w+u]
					if d == 0 {
						continue
					}
					hrow := head.W.Value[(i*w+u)*hj : (i*w+u+1)*hj]
					for k, hv := range hrow {
						ft.Data[k*t+i] += d * hv
					}
				}
			}
			lm.HeadsT = append(lm.HeadsT, ft)
			col += w
		}
		return lm
	}

	// Standard encoder: split the first Φ layer, fold the embeddings.
	first, ok := m.phi.Layers[0].(*nn.Dense)
	if !ok {
		panic("core: lowering: Φ does not start with a dense layer")
	}
	firstAct := nn.Identity
	for _, l := range m.phi.Layers[1:] {
		if a, isAct := l.(*nn.Activation); isAct {
			firstAct = a.Kind
		}
		break
	}
	h1 := first.Out
	lm.WXT = tensor.NewMatrix(lm.XpDim, h1)
	for o := 0; o < h1; o++ {
		row := first.W.Value[o*first.In : (o+1)*first.In]
		for k := 0; k < lm.XpDim; k++ {
			lm.WXT.Set(k, o, row[k])
		}
	}
	lm.PerDist = tensor.NewMatrix(t, h1)
	for i := 0; i < t; i++ {
		emb := m.embedding(i)
		pd := lm.PerDist.Row(i)
		for o := 0; o < h1; o++ {
			row := first.W.Value[o*first.In : (o+1)*first.In]
			s := first.B.Value[o]
			for u, ev := range emb {
				s += ev * row[lm.XpDim+u]
			}
			pd[o] = s
		}
	}
	// PerDist carries the activation of the first layer implicitly: the
	// evaluator applies firstAct after adding u + PerDist.
	rest := lowerSequential(nn.NewSequential(m.phi.Layers...))
	rest[0].Act = firstAct // recorded for completeness; evaluator applies it inline
	lm.Rest = rest[1:]
	lm.DecW = &tensor.Matrix{Rows: t, Cols: m.Cfg.ZDim, Data: append([]float64(nil), m.decW.Value...)}
	lm.DecB = append([]float64(nil), m.decB.Value...)
	return lm
}

// applyAct applies an activation kind element-wise in place, matching
// nn.Activation.Apply exactly.
func applyAct(kind nn.ActKind, data []float64) {
	if kind == nn.Identity {
		return
	}
	a := nn.Activation{Kind: kind}
	for i, v := range data {
		data[i] = a.Apply(v)
	}
}

// forwardDense runs x through a lowered dense chain with the branch-free
// dense kernel, allocating per call (this path is a test/gate reference, not
// the serving hot path — internal/infer's tiered plans own that).
func forwardDense(layers []LoweredDense, x *tensor.Matrix) *tensor.Matrix {
	for i := range layers {
		d := &layers[i]
		y := tensor.MatMulDense(x, d.WT, nil)
		tensor.AddBias(y, d.B)
		applyAct(d.Act, y.Data)
		x = y
	}
	return x
}

// latent computes the deterministic VAE mean latent, nil when VAE-ablated.
func (lm *LoweredModel) latent(xs *tensor.Matrix) *tensor.Matrix {
	if len(lm.VAE) == 0 {
		return nil
	}
	return forwardDense(lm.VAE, xs)
}

// xprime concatenates the raw input with the VAE latent ([x; μ(x)]).
func (lm *LoweredModel) xprime(xs *tensor.Matrix) *tensor.Matrix {
	mu := lm.latent(xs)
	if mu == nil {
		return xs
	}
	xp := tensor.NewMatrix(xs.Rows, lm.XpDim)
	for e := 0; e < xs.Rows; e++ {
		copy(xp.Row(e)[:lm.InDim], xs.Row(e))
		copy(xp.Row(e)[lm.InDim:], mu.Row(e))
	}
	return xp
}

// EstimateAllTausBatch is the fused f64 reference evaluator: xs is B×InDim
// and the result is B×τcount prefix-sum estimates, the same contract as
// Model.EstimateAllTausBatch. Per-distance outputs are ReLU-clamped before
// the f64 prefix sum, so every row satisfies CurveMonotone by construction.
// Results match the un-fused model to float64 reassociation error (~1e-12
// relative); they are not bit-identical, which is why the serving f64 tier
// keeps the legacy path and this evaluator serves as the fusion-correctness
// reference for the precision tiers.
func (lm *LoweredModel) EstimateAllTausBatch(xs *tensor.Matrix) *tensor.Matrix {
	if xs.Cols != lm.InDim {
		panic(fmt.Sprintf("core: feature dim %d, lowered model expects %d", xs.Cols, lm.InDim))
	}
	b := xs.Rows
	t := lm.TauCount
	xp := lm.xprime(xs)
	pre := tensor.NewMatrix(b, t)

	if lm.Accel {
		h := xp
		for j := range lm.Trunk {
			d := &lm.Trunk[j]
			y := tensor.MatMulDense(h, d.WT, nil)
			tensor.AddBias(y, d.B)
			applyAct(d.Act, y.Data)
			h = y
			fj := tensor.MatMulDense(h, lm.HeadsT[j], nil)
			for i, v := range fj.Data {
				pre.Data[i] += v
			}
		}
		tensor.AddBias(pre, lm.HeadBias)
	} else {
		u := tensor.MatMulDense(xp, lm.WXT, nil) // B × h1
		h1 := lm.WXT.Cols
		z := tensor.NewMatrix(b*t, h1)
		for e := 0; e < b; e++ {
			ue := u.Row(e)
			for i := 0; i < t; i++ {
				row := z.Row(e*t + i)
				pd := lm.PerDist.Row(i)
				for o := range row {
					row[o] = ue[o] + pd[o]
				}
			}
		}
		// First Φ layer activation is ReLU for every config built by New.
		applyAct(nn.ReLU, z.Data)
		for i := range lm.Rest {
			d := &lm.Rest[i]
			y := tensor.MatMulDense(z, d.WT, nil)
			tensor.AddBias(y, d.B)
			applyAct(d.Act, y.Data)
			z = y
		}
		for e := 0; e < b; e++ {
			prow := pre.Row(e)
			for i := 0; i < t; i++ {
				prow[i] = tensor.Dot(lm.DecW.Row(i), z.Row(e*t+i)) + lm.DecB[i]
			}
		}
	}

	out := tensor.NewMatrix(b, t)
	for e := 0; e < b; e++ {
		prow := pre.Row(e)
		orow := out.Row(e)
		var sum float64
		for i := 0; i < t; i++ {
			v := prow[i]
			if v < 0 {
				v = 0
			}
			sum += v
			orow[i] = sum
		}
	}
	return out
}
