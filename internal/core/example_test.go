package core_test

import (
	"fmt"

	"cardnet/internal/core"
	"cardnet/internal/dataset"
	"cardnet/internal/dist"
	"cardnet/internal/feature"
	"cardnet/internal/simselect"
)

// Example shows the full train-then-estimate loop on Hamming codes. It is
// compile-checked documentation; examples/quickstart runs the same flow.
func Example() {
	records := dataset.BinaryCodes(500, 32, 4, 0.08, 1)
	index := simselect.NewHammingIndex(records)
	ext := feature.NewHammingExtractor(32, 12, 12)

	grid := dataset.ThresholdGrid(12, 12)
	counts := func(q dist.BitVector, g []float64) []int {
		cum := index.CountAtEach(q, 12)
		out := make([]int, len(g))
		for i, theta := range g {
			out[i] = cum[int(theta)]
		}
		return out
	}
	train, _ := core.BuildTrainSet[dist.BitVector](ext, records[:80], grid, counts)
	valid, _ := core.BuildTrainSet[dist.BitVector](ext, records[80:100], grid, counts)

	cfg := core.DefaultConfig(12)
	cfg.Accel = true // CardNet-A fused encoder
	cfg.Epochs = 2   // documentation-sized training
	model := core.New(cfg, ext.Dim())
	model.Train(train, valid)

	est := core.NewEstimator[dist.BitVector](ext, model)
	a := est.Estimate(records[0], 4)
	b := est.Estimate(records[0], 8)
	fmt.Println(b >= a) // monotone in θ by construction
	// Output: true
}
