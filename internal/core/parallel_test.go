package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"cardnet/internal/nn"
	"cardnet/internal/tensor"
)

// saveBytes serializes a model for bit-level comparison.
func saveBytes(t *testing.T, m *Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTrainWorkersOneMatchesDefault pins the sequential contract: Workers=1
// and the zero value run the identical code path, so their trained models are
// bit-equal.
func TestTrainWorkersOneMatchesDefault(t *testing.T) {
	train, valid, _, _ := hammingFixture(t, 160)
	cfg := tinyConfig(12, false)
	cfg.Epochs = 3
	cfg.Seed = 7

	cfgOne := cfg
	cfgOne.Workers = 1

	a := New(cfg, train.X.Cols)
	b := New(cfgOne, train.X.Cols)
	a.Train(train, valid)
	b.Train(train, valid)
	// Save bytes include the Config (whose Workers fields differ by
	// construction), so compare the learned parameters bit-for-bit instead.
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].Value {
			if math.Float64bits(pa[i].Value[j]) != math.Float64bits(pb[i].Value[j]) {
				t.Fatalf("param %s[%d]: Workers=0 %v vs Workers=1 %v",
					pa[i].Name, j, pa[i].Value[j], pb[i].Value[j])
			}
		}
	}
}

// TestTrainWorkersReproducible checks that a fixed Workers>1 run is a pure
// function of the seed: shard noise streams are seeded in shard order and
// gradients reduce in shard order, so goroutine scheduling must not leak into
// the trained bits. Running it under -race also stress-tests the shard
// engine's memory safety (see the race-train make target).
func TestTrainWorkersReproducible(t *testing.T) {
	train, valid, _, _ := hammingFixture(t, 160)
	for _, accel := range []bool{false, true} {
		cfg := tinyConfig(12, accel)
		cfg.Epochs = 3
		cfg.Seed = 11
		cfg.Workers = 3

		a := New(cfg, train.X.Cols)
		b := New(cfg, train.X.Cols)
		resA := a.Train(train, valid)
		resB := b.Train(train, valid)
		if resA.BestValidMSLE != resB.BestValidMSLE {
			t.Fatalf("accel=%v: valid MSLE %v vs %v", accel, resA.BestValidMSLE, resB.BestValidMSLE)
		}
		if !bytes.Equal(saveBytes(t, a), saveBytes(t, b)) {
			t.Fatalf("accel=%v: two Workers=3 runs diverged", accel)
		}
	}
}

// TestTrainBatchParallelCloseToSequential compares one optimizer step at
// Workers=4 against Workers=1 on a VAE-ablated model (no noise, so the only
// difference is floating-point reassociation across shard boundaries). The
// parallel gradients must match the sequential ones to near machine
// precision.
func TestTrainBatchParallelCloseToSequential(t *testing.T) {
	train, _, _, _ := hammingFixture(t, 160)
	cfg := tinyConfig(12, false)
	cfg.VAELatent = 0 // deterministic forward: no reparameterization noise
	cfg.Seed = 3

	cfgPar := cfg
	cfgPar.Workers = 4

	seq := New(cfg, train.X.Cols)
	par := New(cfgPar, train.X.Cols)

	top := train.TauTop
	if top > cfg.TauMax {
		top = cfg.TauMax
	}
	omega := make([]float64, cfg.TauMax+1)
	for i := 0; i <= top; i++ {
		omega[i] = 1 / float64(top+1)
	}
	b := 32
	xb := train.X.RowSlice(0, b)
	lb := train.Labels.RowSlice(0, b)

	lossSeq := seq.trainBatch(xb, lb, train.P, omega, top, nn.NewAdam(seq.Params(), cfg.LR), rand.New(rand.NewSource(1)))
	lossPar := par.trainBatch(xb, lb, train.P, omega, top, nn.NewAdam(par.Params(), cfg.LR), rand.New(rand.NewSource(1)))

	if math.Abs(lossSeq-lossPar) > 1e-9*(1+math.Abs(lossSeq)) {
		t.Fatalf("loss diverged: seq=%v par=%v", lossSeq, lossPar)
	}
	ps, pp := seq.Params(), par.Params()
	for i := range ps {
		for j := range ps[i].Value {
			a, b := ps[i].Value[j], pp[i].Value[j]
			if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
				t.Fatalf("param %s[%d]: seq=%v par=%v", ps[i].Name, j, a, b)
			}
		}
	}
}

// TestBatchEstimatorsShardedBitIdentical forces the batch estimators onto the
// parallel row-sharded path and checks every output element against the
// per-sample estimators: inference is row-independent, so sharding must not
// change a single bit.
func TestBatchEstimatorsShardedBitIdentical(t *testing.T) {
	train, _, _, _ := hammingFixture(t, 200)
	cfg := tinyConfig(12, false)
	m := New(cfg, train.X.Cols)

	prev := tensor.SetWorkers(4)
	defer tensor.SetWorkers(prev)

	n := 64 // 4 shards of 16 rows: wide enough to clear estMinShardRows
	xs := train.X.RowSlice(0, n)
	all := m.EstimateAllTausBatch(xs)
	taus := make([]int, n)
	for e := 0; e < n; e++ {
		taus[e] = e%(cfg.TauMax+3) - 1 // includes negative and above-TauMax
	}
	byTau := m.EstimateEncodedBatch(xs, taus)

	for e := 0; e < n; e++ {
		want := m.EstimateAllTaus(xs.Row(e))
		for i, v := range all.Row(e) {
			if math.Float64bits(v) != math.Float64bits(want[i]) {
				t.Fatalf("row %d tau %d: batch %v, per-sample %v", e, i, v, want[i])
			}
		}
		wantOne := m.EstimateEncoded(xs.Row(e), taus[e])
		if math.Float64bits(byTau[e]) != math.Float64bits(wantOne) {
			t.Fatalf("row %d tau %d: batch %v, per-sample %v", e, taus[e], byTau[e], wantOne)
		}
	}
}

// TestUpdateOmegaFallsBackToUniform covers the dynamic-training weight
// update: mass moves to regressing distances, and an epoch where nothing
// regressed restores uniform weights instead of zeroing ω.
func TestUpdateOmegaFallsBackToUniform(t *testing.T) {
	top := 3
	omega := make([]float64, 6)
	deltas := make([]float64, 6)

	// Distances 1 and 3 regressed: ω concentrates there, proportional.
	prev := []float64{1, 1, 1, 1, 0, 0}
	cur := []float64{0.5, 2, 1, 4, 0, 0}
	updateOmega(omega, deltas, cur, prev, top)
	want := []float64{0, 0.25, 0, 0.75}
	for i, w := range want {
		if math.Abs(omega[i]-w) > 1e-12 {
			t.Fatalf("omega[%d]=%v, want %v", i, omega[i], w)
		}
	}
	if omega[4] != 0 || omega[5] != 0 {
		t.Fatalf("omega above top mutated: %v", omega)
	}

	// Nothing regressed: uniform fallback, not all-zero.
	improved := []float64{0.5, 0.5, 0.5, 0.5, 0, 0}
	updateOmega(omega, deltas, improved, prev, top)
	var sum float64
	for i := 0; i <= top; i++ {
		if math.Abs(omega[i]-1/float64(top+1)) > 1e-12 {
			t.Fatalf("omega[%d]=%v, want uniform %v", i, omega[i], 1/float64(top+1))
		}
		sum += omega[i]
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("omega sums to %v", sum)
	}
}

// TestIncrementalTrainWorkersReproducible covers the update path (Section 8)
// at Workers>1: two identically-seeded incremental runs from identical
// starting weights must agree bit-for-bit.
func TestIncrementalTrainWorkersReproducible(t *testing.T) {
	train, valid, _, _ := hammingFixture(t, 160)
	cfg := tinyConfig(12, false)
	cfg.Epochs = 2
	cfg.Seed = 5
	cfg.Workers = 2

	base := New(cfg, train.X.Cols)
	base.Train(train, valid)
	var buf bytes.Buffer
	if err := base.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// Perturb labels so IncrementalTrain does not skip.
	for i := range train.Labels.Data {
		train.Labels.Data[i] *= 3
	}
	for i := range valid.Labels.Data {
		valid.Labels.Data[i] *= 3
	}

	run := func() []byte {
		m, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		m.Cfg.Epochs = 1 // cap the stabilization loop for test speed
		m.IncrementalTrain(train, valid, 1e-12)
		return saveBytes(t, m)
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("two Workers=2 incremental runs diverged")
	}
}
