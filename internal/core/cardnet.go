package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"cardnet/internal/nn"
	"cardnet/internal/obs"
	"cardnet/internal/tensor"
)

// Estimation- and training-path metrics, registered on obs.Default so the
// bench harness and `cardnet serve` /metrics expose them without extra
// plumbing.
var (
	estLatency    = obs.Default.Histogram("core.estimate.seconds", obs.TimeBuckets())
	estAllLatency = obs.Default.Histogram("core.estimate_all.seconds", obs.TimeBuckets())
	estTauDist    = obs.Default.Histogram("core.estimate.tau", obs.LinearBuckets(0, 1, 32))
	estCalls      = obs.Default.Counter("core.estimate.calls")
	estAllCalls   = obs.Default.Counter("core.estimate_all.calls")
	monoChecks    = obs.Default.Counter("core.estimate.mono.checks")
	monoViolate   = obs.Default.Counter("core.estimate.mono.violations")
	estSeq        atomic.Uint64

	trainEpochTime = obs.Default.Histogram("core.train.epoch_seconds", obs.TimeBuckets())
	trainEpochs    = obs.Default.Counter("core.train.epochs")
	trainValidMSLE = obs.Default.Gauge("core.train.valid_msle")

	estBatchLatency = obs.Default.Histogram("core.estimate_batch.seconds", obs.TimeBuckets())
	estBatchCalls   = obs.Default.Counter("core.estimate_batch.calls")
	estBatchRows    = obs.Default.Counter("core.estimate_batch.rows")
)

// inferCtxs pools inference contexts across estimate calls. An inference
// forward writes no training caches or gradients into its context — only
// Ctx.Scratch buffers — so a pooled context makes the fused-encoder
// transients (z, per-layer activations, head outputs) reusable across calls:
// steady-state serving forwards on the CardNet-A path allocate nothing on
// that path. Safe because every scratch buffer is fully overwritten per
// forward and nothing read from a returned fwd (the freshly allocated c/pre
// matrices) aliases the context.
var inferCtxs = sync.Pool{New: func() any { return nn.NewCtx() }}

// monoSampleEvery sets the monotonicity spot-check rate on the estimate
// path: one in every monoSampleEvery instrumented calls re-validates the
// Lemma 2 invariant on the decoder outputs.
const monoSampleEvery = 64

// Model is a trained (or trainable) CardNet / CardNet-A regressor over
// binary feature vectors of a fixed dimensionality.
type Model struct {
	Cfg    Config
	InDim  int
	TauTop int // largest τ seen in training; Estimate clamps to it

	vae   *nn.VAE
	emb   *nn.Param      // E, (TauMax+1)·EmbDim, column i = distance embedding eᵢ
	phi   *nn.Sequential // standard shared encoder
	accel *accelEncoder  // fused encoder for CardNet-A
	decW  *nn.Param      // (TauMax+1)·ZDim decoder weights
	decB  *nn.Param      // TauMax+1 decoder biases
}

// New constructs an untrained model for inDim-bit feature vectors.
func New(cfg Config, inDim int) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{Cfg: cfg, InDim: inDim, TauTop: cfg.TauMax}
	if cfg.VAELatent > 0 {
		m.vae = nn.NewVAE(rng, inDim, cfg.VAEHidden, cfg.VAELatent)
	}
	tauCount := cfg.TauMax + 1
	m.emb = &nn.Param{Name: "E",
		Value: make([]float64, tauCount*cfg.EmbDim),
		Grad:  make([]float64, tauCount*cfg.EmbDim)}
	tensor.RandNormal(rng, m.emb.Value, 0, 1) // E initialized from N(0,1), Section 5.2.2

	xpDim := inDim + cfg.VAELatent
	if cfg.Accel {
		m.accel = newAccelEncoder(rng, xpDim, cfg.PhiHidden, cfg.ZDim, tauCount)
	} else {
		dims := append([]int{xpDim + cfg.EmbDim}, cfg.PhiHidden...)
		dims = append(dims, cfg.ZDim)
		m.phi = nn.NewMLP(rng, dims, nn.ReLU, nn.ReLU)
	}
	m.decW = &nn.Param{Name: "decW",
		Value: make([]float64, tauCount*cfg.ZDim),
		Grad:  make([]float64, tauCount*cfg.ZDim)}
	tensor.GlorotUniform(rng, m.decW.Value, cfg.ZDim, 1)
	m.decB = &nn.Param{Name: "decB",
		Value: make([]float64, tauCount),
		Grad:  make([]float64, tauCount)}
	return m
}

// Params returns every learnable parameter of the model.
func (m *Model) Params() []*nn.Param {
	var ps []*nn.Param
	if m.vae != nil {
		ps = m.vae.Params()
	}
	ps = append(ps, m.emb)
	if m.Cfg.Accel {
		ps = append(ps, m.accel.Params()...)
	} else {
		ps = append(ps, m.phi.Params()...)
	}
	return append(ps, m.decW, m.decB)
}

// SizeBytes reports the serialized parameter size (paper Table 9).
func (m *Model) SizeBytes() int { return nn.ParamBytes(m.Params()) }

// tauCount is the number of decoders.
func (m *Model) tauCount() int { return m.Cfg.TauMax + 1 }

// embedding returns distance embedding eᵢ.
func (m *Model) embedding(i int) []float64 {
	return m.emb.Value[i*m.Cfg.EmbDim : (i+1)*m.Cfg.EmbDim]
}

// fwd carries the tensors of one forward pass over a batch of queries.
type fwd struct {
	x      *tensor.Matrix // B × InDim inputs
	vaeOut *nn.VAEOutput  // nil in deterministic mode
	xp     *tensor.Matrix // B × (InDim+Latent) concatenated x′
	z      *tensor.Matrix // B·tauCount × ZDim embeddings
	pre    *tensor.Matrix // B × tauCount decoder pre-activations
	c      *tensor.Matrix // B × tauCount per-distance predictions ĉᵢ
}

// forward runs the encoder and decoders. train selects the stochastic VAE
// path (reparameterized latent); inference uses the deterministic mean
// latent so the model satisfies Lemma 2's determinism requirement.
func (m *Model) forward(x *tensor.Matrix, train bool, rng *rand.Rand) *fwd {
	return m.forwardCtx(nil, x, train, rng)
}

// inferForward is the inference forward through a pooled context, so repeat
// calls reuse the fused-encoder scratch buffers instead of reallocating them.
// The context is returned to the pool before the fwd is consumed, which is
// safe because callers only read the freshly allocated c/pre matrices — f.z
// may alias pooled scratch and must not be read after this returns. Results
// are bit-identical to forward(x, false, nil): contexts only change where
// transients live, never the arithmetic or its order.
func (m *Model) inferForward(x *tensor.Matrix) *fwd {
	ctx := inferCtxs.Get().(*nn.Ctx)
	f := m.forwardCtx(ctx, x, false, nil)
	inferCtxs.Put(ctx)
	return f
}

// forwardCtx is forward with training-mode activation caches kept in ctx
// (nil ctx = legacy layer-struct caches). Training shards running
// concurrently over one model must each bring their own ctx and rng;
// inference (train=false) writes no state either way.
func (m *Model) forwardCtx(ctx *nn.Ctx, x *tensor.Matrix, train bool, rng *rand.Rand) *fwd {
	f := &fwd{x: x}
	b := x.Rows
	if m.vae == nil {
		// VAE-ablated variant: x′ is the raw binary vector.
		f.xp = x
	} else {
		var latent *tensor.Matrix
		if train {
			f.vaeOut = m.vae.ForwardTrainCtx(ctx, x, rng)
			latent = f.vaeOut.Z
		} else {
			latent = m.vae.Mean(x)
		}
		f.xp = tensor.NewMatrix(b, m.InDim+m.Cfg.VAELatent)
		for e := 0; e < b; e++ {
			copy(f.xp.Row(e)[:m.InDim], x.Row(e))
			copy(f.xp.Row(e)[m.InDim:], latent.Row(e))
		}
	}

	t := m.tauCount()
	if m.Cfg.Accel {
		f.z = m.accel.ForwardCtx(ctx, f.xp, train)
	} else {
		in := tensor.NewMatrix(b*t, f.xp.Cols+m.Cfg.EmbDim)
		for e := 0; e < b; e++ {
			for i := 0; i < t; i++ {
				row := in.Row(e*t + i)
				copy(row[:f.xp.Cols], f.xp.Row(e))
				copy(row[f.xp.Cols:], m.embedding(i))
			}
		}
		f.z = m.phi.ForwardCtx(ctx, in, train)
	}

	// Decoders: ĉᵢ = ReLU(wᵢᵀ·zᵢ + bᵢ).
	f.pre = tensor.NewMatrix(b, t)
	f.c = tensor.NewMatrix(b, t)
	for e := 0; e < b; e++ {
		for i := 0; i < t; i++ {
			w := m.decW.Value[i*m.Cfg.ZDim : (i+1)*m.Cfg.ZDim]
			v := tensor.Dot(w, f.z.Row(e*t+i)) + m.decB.Value[i]
			f.pre.Set(e, i, v)
			if v > 0 {
				f.c.Set(e, i, v)
			}
		}
	}
	return f
}

// backward pushes dL/dĉ (B × tauCount) through decoders, encoder, and VAE,
// accumulating parameter gradients. vaeScale is λ (Eq. 2); zero skips the
// VAE's own loss but still propagates the regression gradient through it.
func (m *Model) backward(f *fwd, dc *tensor.Matrix, vaeScale float64) {
	m.backwardCtx(nil, f, dc, vaeScale, f.x.Rows)
}

// backwardCtx is backward through a per-shard context (nil ctx = legacy
// direct Param.Grad accumulation). normRows pins the VAE loss normalization
// to the global minibatch size when f covers only a shard of it.
func (m *Model) backwardCtx(ctx *nn.Ctx, f *fwd, dc *tensor.Matrix, vaeScale float64, normRows int) {
	b := f.x.Rows
	t := m.tauCount()
	decWGrad := ctx.GradOf(m.decW)
	decBGrad := ctx.GradOf(m.decB)
	dz := tensor.NewMatrix(b*t, m.Cfg.ZDim)
	for e := 0; e < b; e++ {
		for i := 0; i < t; i++ {
			g := dc.At(e, i)
			if g == 0 || f.pre.At(e, i) <= 0 {
				continue // ReLU gate
			}
			w := m.decW.Value[i*m.Cfg.ZDim : (i+1)*m.Cfg.ZDim]
			gw := decWGrad[i*m.Cfg.ZDim : (i+1)*m.Cfg.ZDim]
			zrow := f.z.Row(e*t + i)
			tensor.Axpy(g, zrow, gw)
			decBGrad[i] += g
			tensor.Axpy(g, w, dz.Row(e*t+i))
		}
	}

	var dxp *tensor.Matrix
	if m.Cfg.Accel {
		dxp = m.accel.BackwardCtx(ctx, dz)
	} else {
		din := m.phi.BackwardCtx(ctx, dz) // B·t × (xp+emb)
		dxp = tensor.NewMatrix(b, f.xp.Cols)
		embGrad := ctx.GradOf(m.emb)
		for e := 0; e < b; e++ {
			for i := 0; i < t; i++ {
				row := din.Row(e*t + i)
				tensor.Axpy(1, row[:f.xp.Cols], dxp.Row(e))
				ge := embGrad[i*m.Cfg.EmbDim : (i+1)*m.Cfg.EmbDim]
				tensor.Axpy(1, row[f.xp.Cols:], ge)
			}
		}
	}

	if m.vae == nil {
		return
	}
	// Split x′ gradient: the raw-x part is input data; the latent part
	// flows back into the VAE together with λ·L_vae.
	dzvae := tensor.NewMatrix(b, m.Cfg.VAELatent)
	for e := 0; e < b; e++ {
		copy(dzvae.Row(e), dxp.Row(e)[m.InDim:])
	}
	m.vae.BackwardCtx(ctx, f.vaeOut, f.x, vaeScale, dzvae, normRows)
}

// EstimateEncoded returns the deterministic cardinality estimate for an
// already-encoded binary feature vector and transformed threshold τ. The
// result is monotonically non-decreasing in τ.
func (m *Model) EstimateEncoded(x []float64, tau int) float64 {
	if len(x) != m.InDim {
		panic(fmt.Sprintf("core: feature dim %d, model expects %d", len(x), m.InDim))
	}
	if tau < 0 {
		return 0
	}
	if tau > m.Cfg.TauMax {
		tau = m.Cfg.TauMax
	}
	traced := obs.Enabled()
	var tm obs.Timer
	if traced {
		tm = obs.StartTimer(estLatency)
	}
	xm := &tensor.Matrix{Rows: 1, Cols: len(x), Data: x}
	f := m.inferForward(xm)
	var sum float64
	for i := 0; i <= tau; i++ {
		sum += f.c.At(0, i)
	}
	if traced {
		tm.Stop()
		estCalls.Inc()
		estTauDist.Observe(float64(tau))
		if estSeq.Add(1)%monoSampleEvery == 0 {
			spotCheckMonotone(f.c.Row(0))
		}
	}
	return sum
}

// spotCheckMonotone re-validates the invariant behind Lemma 2 on one set of
// per-distance decoder outputs: every ĉᵢ must be finite and non-negative,
// otherwise the prefix-sum estimate could decrease in τ. A violation means
// numerical corruption (NaN/Inf weights), not a modeling choice, so it is
// counted as an operational alert signal.
func spotCheckMonotone(ci []float64) {
	monoChecks.Inc()
	for _, v := range ci {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			monoViolate.Inc()
			return
		}
	}
}

// CurveMonotone reports whether a served τ-sweep estimate curve upholds the
// Lemma 2 contract: every value finite and non-negative, and the sequence
// non-decreasing in τ. Prefix sums of the (ReLU-bounded) decoder outputs
// satisfy this by construction, so a false return means numerical corruption
// (NaN/Inf weights) — the signal the serving-layer drift monitor counts as a
// monotonicity violation. The comparison is exact: adding a non-negative
// float64 term never decreases a sum, so no epsilon is needed.
func CurveMonotone(curve []float64) bool {
	prev := math.Inf(-1)
	for _, v := range curve {
		if v < prev || v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
		prev = v
	}
	return true
}

// EstimateAllTaus returns the estimate at every τ in [0, TauMax] for one
// encoded query with a single forward pass (the prefix sums of ĉᵢ).
func (m *Model) EstimateAllTaus(x []float64) []float64 {
	traced := obs.Enabled()
	var tm obs.Timer
	if traced {
		tm = obs.StartTimer(estAllLatency)
	}
	xm := &tensor.Matrix{Rows: 1, Cols: len(x), Data: x}
	f := m.inferForward(xm)
	out := make([]float64, m.tauCount())
	var sum float64
	for i := range out {
		sum += f.c.At(0, i)
		out[i] = sum
	}
	if traced {
		tm.Stop()
		estAllCalls.Inc()
		if estSeq.Add(1)%monoSampleEvery == 0 {
			spotCheckMonotone(f.c.Row(0))
		}
	}
	return out
}

// estMinShardRows gates the parallel sharding of the batch estimators: a
// batch only fans out across the worker pool when every shard keeps at least
// this many rows, so small serving batches never pay dispatch overhead.
const estMinShardRows = 16

// EstimateAllTausBatch runs one forward pass over a whole batch: xs is
// B×InDim (one encoded query per row) and the result is B×(TauMax+1), row e
// holding the prefix-sum estimates of query e at every τ. Stacking rows
// through the shared Φ/Φ′ matmuls amortizes weight-matrix memory traffic, so
// this is the serving hot path; wide batches additionally shard their rows
// across the tensor worker pool. Because the inference forward treats every
// row independently, every output element stays bit-identical to the
// corresponding per-sample EstimateAllTaus / EstimateEncoded result at any
// worker count. Safe for concurrent callers (the inference forward writes no
// shared state).
func (m *Model) EstimateAllTausBatch(xs *tensor.Matrix) *tensor.Matrix {
	if xs.Cols != m.InDim {
		panic(fmt.Sprintf("core: feature dim %d, model expects %d", xs.Cols, m.InDim))
	}
	traced := obs.Enabled()
	var tm obs.Timer
	if traced {
		tm = obs.StartTimer(estBatchLatency)
	}
	t := m.tauCount()
	out := tensor.NewMatrix(xs.Rows, t)
	var c0 []float64 // decoder outputs of row 0, for the monotonicity spot check
	tensor.ParallelRows(xs.Rows, estMinShardRows, func(lo, hi int) {
		f := m.inferForward(xs.RowSlice(lo, hi))
		for e := lo; e < hi; e++ {
			crow := f.c.Row(e - lo)
			row := out.Row(e)
			var sum float64
			for i := 0; i < t; i++ {
				sum += crow[i]
				row[i] = sum
			}
		}
		if lo == 0 {
			c0 = f.c.Row(0)
		}
	})
	if traced {
		tm.Stop()
		estBatchCalls.Inc()
		estBatchRows.Add(uint64(xs.Rows))
		if estSeq.Add(1)%monoSampleEvery == 0 && c0 != nil {
			spotCheckMonotone(c0)
		}
	}
	return out
}

// EstimateEncodedBatch estimates a batch of (query, τ) pairs in one forward
// pass: xs is B×InDim and taus[e] is query e's transformed threshold
// (negative τ yields 0, τ above TauMax clamps, matching EstimateEncoded).
// Results are bit-identical to calling EstimateEncoded per row.
func (m *Model) EstimateEncodedBatch(xs *tensor.Matrix, taus []int) []float64 {
	if len(taus) != xs.Rows {
		panic(fmt.Sprintf("core: %d taus for %d rows", len(taus), xs.Rows))
	}
	if xs.Cols != m.InDim {
		panic(fmt.Sprintf("core: feature dim %d, model expects %d", xs.Cols, m.InDim))
	}
	traced := obs.Enabled()
	var tm obs.Timer
	if traced {
		tm = obs.StartTimer(estBatchLatency)
	}
	out := make([]float64, xs.Rows)
	var c0 []float64
	tensor.ParallelRows(xs.Rows, estMinShardRows, func(lo, hi int) {
		f := m.inferForward(xs.RowSlice(lo, hi))
		for e := lo; e < hi; e++ {
			tau := taus[e]
			if tau < 0 {
				continue
			}
			if tau > m.Cfg.TauMax {
				tau = m.Cfg.TauMax
			}
			var sum float64
			for i := 0; i <= tau; i++ {
				sum += f.c.At(e-lo, i)
			}
			out[e] = sum
		}
		if lo == 0 {
			c0 = f.c.Row(0)
		}
	})
	if traced {
		tm.Stop()
		estBatchCalls.Inc()
		estBatchRows.Add(uint64(xs.Rows))
		if estSeq.Add(1)%monoSampleEvery == 0 && c0 != nil {
			spotCheckMonotone(c0)
		}
	}
	return out
}

// TrainResult reports what happened during Train.
type TrainResult struct {
	Epochs         int
	BestValidMSLE  float64
	FinalTrainLoss float64
	Interrupted    bool // Config.Stop requested an early exit; the run is resumable from its last checkpoint
}

// Train fits the model: the VAE is pretrained unsupervised for
// cfg.VAEEpochs, then the full model trains jointly on the MSLE loss with
// the dynamically re-weighted per-distance term (Section 6.2). valid may be
// nil (no early stopping or ω updates then). Labels beyond train.TauTop are
// never formed; the model's decoders above it stay at their initialization
// and contribute ReLU(b)=0 after training pushes biases down, so estimates
// remain monotone regardless.
func (m *Model) Train(train, valid *TrainSet) TrainResult {
	res, err := m.runTrain(train, valid, nil)
	if err != nil {
		// Unreachable for fresh runs: errors only arise restoring a state.
		panic("core: " + err.Error())
	}
	return res
}

// runTrain is the Train loop, optionally continuing from a checkpointed
// state: with st == nil it is the fresh run (VAE pretraining, uniform ω,
// epoch 0); with a state it restores weights, Adam moments, ω, early-stop
// counters, and the RNG stream position, then continues at the next epoch —
// bit-identically to a run that was never interrupted, because every
// stochastic draw bottoms out in the counted source.
func (m *Model) runTrain(train, valid *TrainSet, st *TrainerState) (TrainResult, error) {
	cfg := m.Cfg
	src := newCountingSource(cfg.Seed + 1)
	rng := rand.New(src)
	dataHash := hashTrainData(train, valid)

	if st == nil {
		m.TauTop = train.TauTop
		if m.vae != nil {
			m.vae.PretrainWorkers(train.X, cfg.VAEEpochs, cfg.Batch, cfg.LR, rng, m.workers())
		}
	}

	params := m.Params()
	opt := nn.NewAdam(params, cfg.LR)

	t := m.tauCount()
	top := train.TauTop
	if top > cfg.TauMax {
		top = cfg.TauMax
	}

	// Dynamic per-distance weights ω, uniform at start (Σω = 1).
	omega := make([]float64, t)
	for i := 0; i <= top; i++ {
		omega[i] = 1 / float64(top+1)
	}
	prevValidPerDist := make([]float64, t)
	deltas := make([]float64, t)
	havePrev := false

	res := TrainResult{BestValidMSLE: math.Inf(1)}
	var best *nn.Snapshot
	badStreak := 0
	startEpoch := 0

	if st != nil {
		if err := st.Params.Restore(params); err != nil {
			return res, fmt.Errorf("core: restore weights: %w", err)
		}
		if err := opt.SetState(st.Opt); err != nil {
			return res, fmt.Errorf("core: restore optimizer: %w", err)
		}
		m.TauTop = st.TauTop
		src.Skip(st.RNGDraws) // replay the stream to the interruption point
		copy(omega, st.Omega)
		copy(prevValidPerDist, st.PrevPerDist)
		havePrev = st.HavePrev
		best = st.Best
		res.BestValidMSLE = st.BestValidMSLE
		res.FinalTrainLoss = st.FinalTrainLoss
		res.Epochs = st.Epoch
		badStreak = st.BadStreak
		startEpoch = st.Epoch
	}

	perm := make([]int, train.NumQueries())
	// Minibatch scratch, reused across every step of every epoch (a RowSlice
	// view trims the final short batch).
	xb := tensor.NewMatrix(cfg.Batch, train.X.Cols)
	lb := tensor.NewMatrix(cfg.Batch, train.Labels.Cols)

	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		epochStart := time.Now()
		// The epoch's visit order is a pure function of the RNG stream
		// position (identity reshuffled, not a cumulative shuffle), so a
		// resumed run reproduces it exactly from the skipped-ahead stream.
		for e := range perm {
			perm[e] = e
		}
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		var epochLoss float64
		var batches int
		for start := 0; start < len(perm); start += cfg.Batch {
			end := start + cfg.Batch
			if end > len(perm) {
				end = len(perm)
			}
			rows := perm[start:end]
			xv := xb.RowSlice(0, len(rows))
			lv := lb.RowSlice(0, len(rows))
			for i, r := range rows {
				copy(xv.Row(i), train.X.Row(r))
				copy(lv.Row(i), train.Labels.Row(r))
			}
			loss := m.trainBatch(xv, lv, train.P, omega, top, opt, rng)
			epochLoss += loss
			batches++
		}
		if batches > 0 {
			res.FinalTrainLoss = epochLoss / float64(batches)
		}
		res.Epochs = epoch + 1

		ev := TrainEvent{Phase: PhaseTrain, Epoch: epoch + 1,
			TrainLoss: res.FinalTrainLoss, LR: cfg.LR}
		if valid != nil {
			vl, perDist := m.validate(valid, top)
			// Dynamic training: shift ω toward distances whose validation loss
			// is trending up (Section 6.2).
			if havePrev {
				updateOmega(omega, deltas, perDist, prevValidPerDist, top)
			}
			copy(prevValidPerDist, perDist)
			havePrev = true

			if vl < res.BestValidMSLE-1e-9 {
				res.BestValidMSLE = vl
				best = nn.TakeSnapshot(params)
				badStreak = 0
				ev.Improved = true
			} else {
				badStreak++
				ev.EarlyStop = cfg.Patience > 0 && badStreak >= cfg.Patience
			}
			ev.HasValid = true
			ev.ValidMSLE = vl
			ev.BestMSLE = res.BestValidMSLE
			ev.Omega = append([]float64(nil), omega[:top+1]...)
		}
		ev.Snapshot = func() *TrainerState {
			return &TrainerState{
				Phase:          PhaseTrain,
				Cfg:            cfg,
				InDim:          m.InDim,
				TauTop:         m.TauTop,
				DataHash:       dataHash,
				Epoch:          res.Epochs,
				RNGDraws:       src.Draws(),
				Params:         nn.TakeSnapshot(params),
				Opt:            opt.State(),
				Omega:          append([]float64(nil), omega...),
				PrevPerDist:    append([]float64(nil), prevValidPerDist...),
				HavePrev:       havePrev,
				Best:           best,
				BestValidMSLE:  res.BestValidMSLE,
				BadStreak:      badStreak,
				FinalTrainLoss: res.FinalTrainLoss,
			}
		}
		emitEpoch(cfg, ev, epochStart)
		if ev.EarlyStop {
			break
		}
		if cfg.Stop != nil && cfg.Stop() {
			res.Interrupted = true
			break
		}
	}
	if !res.Interrupted && best != nil {
		if err := best.Restore(params); err != nil {
			panic("core: snapshot restore failed: " + err.Error())
		}
	}
	return res, nil
}

// updateOmega recomputes the dynamic per-distance weights ω from the change
// in per-distance validation loss (Section 6.2): all weight mass moves to the
// distances whose loss regressed since the previous epoch, proportional to
// how much. When no distance regressed, ω falls back to uniform over
// [0, top] — an all-zero ω would silently disable the Eq. 3 term for the
// rest of the run. deltas is caller-provided scratch of the same length as
// omega; entries above top are left untouched.
func updateOmega(omega, deltas, perDist, prevPerDist []float64, top int) {
	var sumPos float64
	for i := 0; i <= top; i++ {
		deltas[i] = 0
		d := perDist[i] - prevPerDist[i]
		if d > 0 {
			deltas[i] = d
			sumPos += d
		}
	}
	for i := 0; i <= top; i++ {
		if sumPos > 0 {
			omega[i] = deltas[i] / sumPos
		} else {
			omega[i] = 1 / float64(top+1)
		}
	}
}

// emitEpoch finishes a TrainEvent (wall time), records the shared obs
// metrics, and delivers the event to the config's hook. It is telemetry
// only: nothing here feeds back into training state.
func emitEpoch(cfg Config, ev TrainEvent, start time.Time) {
	ev.EpochTime = time.Since(start)
	if obs.Enabled() {
		trainEpochs.Inc()
		trainEpochTime.ObserveDuration(ev.EpochTime)
		if ev.HasValid {
			trainValidMSLE.Set(ev.ValidMSLE)
		}
	}
	if cfg.Hook != nil {
		cfg.Hook(ev)
	}
}

// workers returns the normalized data-parallel width of the trainer:
// cfg.Workers, with everything below one (including the zero value) mapped to
// the sequential path.
func (m *Model) workers() int {
	if m.Cfg.Workers < 1 {
		return 1
	}
	return m.Cfg.Workers
}

// batchLossGrad computes the regression loss of one forward pass and
// accumulates dL/dĉ into dc (rows aligned with f's rows). The batch is
// trained on every τ ∈ [0, top] simultaneously: since ĉ(x,τ) = Σ_{i≤τ} ĉᵢ,
// the gradient of Σ_τ P(τ)·MSLE(ĉ(τ), c(τ)) w.r.t. ĉᵢ is the tail sum over
// τ ≥ i, to which the per-distance term λΔ·ωᵢ·MSLE(ĉᵢ, cᵢ) is added
// (Equations 2–3). Loss terms are normalized by the global batch size normB —
// a shard of a larger minibatch passes the full batch's size so shard partial
// losses and gradients sum to exactly the whole-batch quantities.
func (m *Model) batchLossGrad(f *fwd, labels *tensor.Matrix, p, omega []float64, top, normB int, dc *tensor.Matrix) float64 {
	b := f.x.Rows
	t := m.tauCount()
	var loss float64
	nTotal := normB * (top + 1)
	for e := 0; e < b; e++ {
		lrow := labels.Row(e)
		// Prefix sums of per-distance predictions.
		var cum float64
		cums := make([]float64, top+1)
		for i := 0; i <= top; i++ {
			cum += f.c.At(e, i)
			cums[i] = cum
		}
		// Total-cardinality MSLE, weighted by P(τ) (Eq. 2 expectation).
		var prev float64
		for tau := 0; tau <= top; tau++ {
			w := p[tau] * float64(top+1) // normalize so uniform P has weight 1
			d := logErr(cums[tau], lrow[tau])
			loss += w * d * d / float64(nTotal)
			g := w * msleGrad(cums[tau], lrow[tau], nTotal)
			// dĉ(τ)/dĉᵢ = 1 for all i ≤ τ.
			for i := 0; i <= tau; i++ {
				dc.Data[e*t+i] += g
			}
			// Per-distance term (Eq. 3).
			ci := lrow[tau] - prev
			prev = lrow[tau]
			if m.Cfg.LambdaDelta > 0 && omega[tau] > 0 {
				d := logErr(f.c.At(e, tau), ci)
				loss += m.Cfg.LambdaDelta * omega[tau] * d * d / float64(normB)
				dc.Data[e*t+tau] += m.Cfg.LambdaDelta * omega[tau] * msleGrad(f.c.At(e, tau), ci, normB)
			}
		}
	}
	return loss
}

// trainBatch runs one optimizer step on a batch and returns its loss. With
// cfg.Workers ≤ 1 it is the sequential single-goroutine step, bit-identical
// to the pre-parallel implementation. With more workers the batch rows are
// split into contiguous shards that run forward/backward concurrently over
// shared weights, each shard carrying its own nn.Ctx (activation caches and
// gradient buffers) and its own noise stream seeded from the parent rng in
// shard order; shard gradients are then reduced into Param.Grad in shard
// order, so a fixed worker count reproduces exactly while different counts
// are different (equally valid) runs.
func (m *Model) trainBatch(x, labels *tensor.Matrix, p, omega []float64, top int, opt nn.Optimizer, rng *rand.Rand) float64 {
	b := x.Rows
	t := m.tauCount()
	w := m.workers()
	if w > b {
		w = b
	}
	if w <= 1 {
		f := m.forward(x, true, rng)
		dc := tensor.NewMatrix(b, t)
		loss := m.batchLossGrad(f, labels, p, omega, top, b, dc)
		// VAE loss contribution (for reporting; its gradient is added in
		// backward via vaeScale=λ).
		if m.Cfg.Lambda > 0 && m.vae != nil {
			recon, kl := m.vae.Loss(f.vaeOut, x)
			loss += m.Cfg.Lambda * (recon + kl)
		}
		m.backward(f, dc, m.Cfg.Lambda)
		if m.Cfg.ClipNorm > 0 {
			nn.ClipGradNorm(m.Params(), m.Cfg.ClipNorm)
		}
		opt.Step()
		return loss
	}

	// One seed per shard, drawn in shard order: the epoch's VAE noise is a
	// pure function of (cfg.Seed, worker count), never of scheduling.
	seeds := make([]int64, w)
	for k := range seeds {
		seeds[k] = rng.Int63()
	}
	bounds := tensor.ShardBounds(b, w)
	ctxs := make([]*nn.Ctx, w)
	losses := make([]float64, w)
	vaeSums := make([]float64, w)
	tensor.RunParts(w, func(k int) {
		lo, hi := bounds[k], bounds[k+1]
		if lo == hi {
			return
		}
		ctx := nn.NewCtx()
		ctxs[k] = ctx
		srng := rand.New(rand.NewSource(seeds[k]))
		xs := x.RowSlice(lo, hi)
		ls := labels.RowSlice(lo, hi)
		f := m.forwardCtx(ctx, xs, true, srng)
		dc := tensor.NewMatrix(hi-lo, t)
		losses[k] = m.batchLossGrad(f, ls, p, omega, top, b, dc)
		if m.Cfg.Lambda > 0 && m.vae != nil {
			bce, kl := m.vae.LossSums(f.vaeOut, xs)
			vaeSums[k] = bce + kl
		}
		m.backwardCtx(ctx, f, dc, m.Cfg.Lambda, b)
	})
	// Ordered reduction: shard k's gradients land before shard k+1's.
	params := m.Params()
	for _, ctx := range ctxs {
		if ctx != nil {
			ctx.AddGradsInto(params)
		}
	}
	var loss, vaeSum float64
	for k := 0; k < w; k++ {
		loss += losses[k]
		vaeSum += vaeSums[k]
	}
	if m.Cfg.Lambda > 0 && m.vae != nil {
		// Loss returns (BCE sum + KL sum)/rows; recombine shard sums the
		// same way over the global batch.
		loss += m.Cfg.Lambda * vaeSum / float64(b)
	}
	if m.Cfg.ClipNorm > 0 {
		nn.ClipGradNorm(params, m.Cfg.ClipNorm)
	}
	opt.Step()
	return loss
}

// validate returns the validation MSLE over all (query, τ) pairs weighted by
// P(τ), plus the per-distance MSLE vector ℓᵢ used by dynamic training. With
// cfg.Workers > 1 the queries are split into contiguous shards evaluated
// concurrently (inference writes no shared state) whose accumulators are
// reduced in shard order.
func (m *Model) validate(valid *TrainSet, top int) (float64, []float64) {
	t := m.tauCount()
	nq := valid.NumQueries()
	w := m.workers()
	if w > nq {
		w = nq
	}
	if w <= 1 {
		perDistSum := make([]float64, t)
		perDistN := make([]int, t)
		total, n := m.validateRange(valid, top, 0, nq, perDistSum, perDistN)
		return finishValidate(total, n, perDistSum, perDistN)
	}
	bounds := tensor.ShardBounds(nq, w)
	sums := make([][]float64, w)
	counts := make([][]int, w)
	totals := make([]float64, w)
	ns := make([]int, w)
	tensor.RunParts(w, func(k int) {
		lo, hi := bounds[k], bounds[k+1]
		if lo == hi {
			return
		}
		sums[k] = make([]float64, t)
		counts[k] = make([]int, t)
		totals[k], ns[k] = m.validateRange(valid, top, lo, hi, sums[k], counts[k])
	})
	perDistSum := make([]float64, t)
	perDistN := make([]int, t)
	var total float64
	var n int
	for k := 0; k < w; k++ {
		if sums[k] == nil {
			continue
		}
		total += totals[k]
		n += ns[k]
		for i := 0; i < t; i++ {
			perDistSum[i] += sums[k][i]
			perDistN[i] += counts[k][i]
		}
	}
	return finishValidate(total, n, perDistSum, perDistN)
}

// validateRange accumulates validation statistics over queries [lo, hi) into
// the given per-distance buffers, returning the weighted squared-error total
// and pair count of the range.
func (m *Model) validateRange(valid *TrainSet, top, lo, hi int, perDistSum []float64, perDistN []int) (total float64, n int) {
	for e := lo; e < hi; e++ {
		ests := m.EstimateAllTaus(valid.X.Row(e))
		lrow := valid.Labels.Row(e)
		var prevL, prevE float64
		for tau := 0; tau <= top && tau < len(lrow); tau++ {
			d := logErr(ests[tau], lrow[tau])
			total += valid.P[tau] * float64(top+1) * d * d
			n++
			ci := lrow[tau] - prevL
			ei := ests[tau] - prevE
			prevL, prevE = lrow[tau], ests[tau]
			pd := logErr(ei, ci)
			perDistSum[tau] += pd * pd
			perDistN[tau]++
		}
	}
	return total, n
}

// finishValidate converts accumulated sums into the (MSLE, per-distance ℓᵢ)
// pair validate returns.
func finishValidate(total float64, n int, perDistSum []float64, perDistN []int) (float64, []float64) {
	for i := range perDistSum {
		if perDistN[i] > 0 {
			perDistSum[i] /= float64(perDistN[i])
		}
	}
	if n == 0 {
		return 0, perDistSum
	}
	return total / float64(n), perDistSum
}

// IncrementalResult reports an incremental-learning run (Section 8).
type IncrementalResult struct {
	Epochs      int
	ValidMSLE   float64
	Skipped     bool // validation error had not degraded, no training needed
	Interrupted bool // Config.Stop requested an early exit; the run is resumable from its last checkpoint
}

// IncrementalTrain implements the update procedure of Section 8: it checks
// the model's error on the relabeled validation set; if it has not degraded
// beyond prevValidMSLE it returns immediately, otherwise it continues
// training from the current weights on the relabeled training data until the
// validation error is stable for three consecutive epochs. The original
// queries are kept; only labels change.
func (m *Model) IncrementalTrain(train, valid *TrainSet, prevValidMSLE float64) IncrementalResult {
	res, err := m.runIncremental(train, valid, prevValidMSLE, nil)
	if err != nil {
		// Unreachable for fresh runs: errors only arise restoring a state.
		panic("core: " + err.Error())
	}
	return res
}

// runIncremental is the IncrementalTrain loop, optionally continuing from a
// checkpointed state (st != nil skips the degradation check — the original
// run already decided to train — and restores counters, moments, and the RNG
// stream position, continuing bit-identically).
func (m *Model) runIncremental(train, valid *TrainSet, prevValidMSLE float64, st *TrainerState) (IncrementalResult, error) {
	cfg := m.Cfg
	top := train.TauTop
	if top > cfg.TauMax {
		top = cfg.TauMax
	}
	dataHash := hashTrainData(train, valid)

	var res IncrementalResult
	stable := 0
	var last float64
	startEpoch := 0
	if st == nil {
		cur, _ := m.validate(valid, top)
		if cur <= prevValidMSLE*1.02+1e-12 {
			return IncrementalResult{ValidMSLE: cur, Skipped: true}, nil
		}
		res = IncrementalResult{ValidMSLE: cur}
		last = cur
	}

	src := newCountingSource(cfg.Seed + 77)
	rng := rand.New(src)
	params := m.Params()
	opt := nn.NewAdam(params, cfg.LR)

	if st != nil {
		if err := st.Params.Restore(params); err != nil {
			return res, fmt.Errorf("core: restore weights: %w", err)
		}
		if err := opt.SetState(st.Opt); err != nil {
			return res, fmt.Errorf("core: restore optimizer: %w", err)
		}
		src.Skip(st.RNGDraws)
		stable = st.Stable
		last = st.LastValid
		res.ValidMSLE = st.ValidMSLE
		res.Epochs = st.Epoch
		startEpoch = st.Epoch
	}

	omega := make([]float64, m.tauCount())
	for i := 0; i <= top; i++ {
		omega[i] = 1 / float64(top+1)
	}
	perm := make([]int, train.NumQueries())
	xb := tensor.NewMatrix(cfg.Batch, train.X.Cols)
	lb := tensor.NewMatrix(cfg.Batch, train.Labels.Cols)

	for epoch := startEpoch; epoch < 4*cfg.Epochs && stable < 3; epoch++ {
		epochStart := time.Now()
		// Identity reshuffled each epoch (see runTrain): the visit order is a
		// pure function of the RNG stream position, so resume reproduces it.
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		var epochLoss float64
		var batches int
		for start := 0; start < len(perm); start += cfg.Batch {
			end := start + cfg.Batch
			if end > len(perm) {
				end = len(perm)
			}
			rows := perm[start:end]
			xv := xb.RowSlice(0, len(rows))
			lv := lb.RowSlice(0, len(rows))
			for i, r := range rows {
				copy(xv.Row(i), train.X.Row(r))
				copy(lv.Row(i), train.Labels.Row(r))
			}
			epochLoss += m.trainBatch(xv, lv, train.P, omega, top, opt, rng)
			batches++
		}
		res.Epochs = epoch + 1
		vl, _ := m.validate(valid, top)
		if math.Abs(vl-last) < 1e-2*(1+last) {
			stable++
		} else {
			stable = 0
		}
		last = vl
		res.ValidMSLE = vl

		ev := TrainEvent{Phase: PhaseIncremental, Epoch: epoch + 1, LR: cfg.LR,
			HasValid: true, ValidMSLE: vl, BestMSLE: vl,
			Omega:     append([]float64(nil), omega[:top+1]...),
			EarlyStop: stable >= 3}
		if batches > 0 {
			ev.TrainLoss = epochLoss / float64(batches)
		}
		ev.Snapshot = func() *TrainerState {
			return &TrainerState{
				Phase:     PhaseIncremental,
				Cfg:       cfg,
				InDim:     m.InDim,
				TauTop:    m.TauTop,
				DataHash:  dataHash,
				Epoch:     res.Epochs,
				RNGDraws:  src.Draws(),
				Params:    nn.TakeSnapshot(params),
				Opt:       opt.State(),
				Omega:     append([]float64(nil), omega...),
				Stable:    stable,
				LastValid: last,
				ValidMSLE: res.ValidMSLE,
			}
		}
		emitEpoch(cfg, ev, epochStart)
		if stable < 3 && cfg.Stop != nil && cfg.Stop() {
			res.Interrupted = true
			break
		}
	}
	return res, nil
}

// logErr is log(1+max(p,0)) − log(1+max(y,0)).
func logErr(p, y float64) float64 {
	if p < 0 {
		p = 0
	}
	if y < 0 {
		y = 0
	}
	return math.Log1p(p) - math.Log1p(y)
}

// msleGrad is the derivative of logErr² w.r.t. p, divided by n.
func msleGrad(p, y float64, n int) float64 {
	pc := p
	if pc < 0 {
		pc = 0
	}
	return 2 * logErr(p, y) / (1 + pc) / float64(n)
}

// modelState is the gob wire format.
type modelState struct {
	Cfg    Config
	InDim  int
	TauTop int
	Snap   *nn.Snapshot
}

// Save serializes the model (config + parameters) with gob.
func (m *Model) Save(w io.Writer) error {
	st := modelState{Cfg: m.Cfg, InDim: m.InDim, TauTop: m.TauTop, Snap: nn.TakeSnapshot(m.Params())}
	return gob.NewEncoder(w).Encode(&st)
}

// Load reconstructs a model saved with Save.
func Load(r io.Reader) (*Model, error) {
	var st modelState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, err
	}
	m := New(st.Cfg, st.InDim)
	m.TauTop = st.TauTop
	if err := st.Snap.Restore(m.Params()); err != nil {
		return nil, err
	}
	return m, nil
}
