package core

import "cardnet/internal/nn"

// Complexity is the per-component parameter count of a model, reproducing
// the analysis at the end of paper Section 7: the standard model costs
// |FNN([x′;eᵢ], z)| + |FNN(x,x)| + (τmax+1)|eᵢ| + (τmax+1)|z| + τmax+1,
// while the accelerated model replaces the first two terms with |AFNN(x′,Z)|
// (the fused Φ′, whose last layer fans out to all τmax+1 embeddings).
type Complexity struct {
	VAE                int // representation network Γ's generative model
	DistanceEmbeddings int // E: (τmax+1)·|eᵢ| (zero for CardNet-A, fused into Φ′)
	Encoder            int // Φ or Φ′
	Decoders           int // (τmax+1)·(|z|+1)
	Total              int
}

// Complexity returns the component parameter counts. The sum always equals
// the live parameter count, which the tests assert.
func (m *Model) Complexity() Complexity {
	var c Complexity
	if m.vae != nil {
		c.VAE = nn.NumParams(m.vae.Params())
	}
	if m.Cfg.Accel {
		c.Encoder = nn.NumParams(m.accel.Params())
		// E exists in both variants (it seeds initialization paths), but the
		// accelerated forward pass does not read it; count it under
		// embeddings for an honest total.
		c.DistanceEmbeddings = len(m.emb.Value)
	} else {
		c.Encoder = nn.NumParams(m.phi.Params())
		c.DistanceEmbeddings = len(m.emb.Value)
	}
	c.Decoders = len(m.decW.Value) + len(m.decB.Value)
	c.Total = c.VAE + c.DistanceEmbeddings + c.Encoder + c.Decoders
	return c
}

// InferenceMultiplier reports how many encoder passes one estimate costs:
// τmax+1 Φ passes for the standard model (this implementation evaluates
// every decoder so EstimateAllTaus is one call; the paper's bound is τ+1)
// versus a single fused Φ′ pass for CardNet-A — the O((τ+1)|Φ|) → O(|Φ′|)
// reduction of Section 7.
func (m *Model) InferenceMultiplier() int {
	if m.Cfg.Accel {
		return 1
	}
	return m.Cfg.TauMax + 1
}
