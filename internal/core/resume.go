package core

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"reflect"

	"cardnet/internal/nn"
	"cardnet/internal/tensor"
)

// init pins gob's process-global type-id assignment for the two wire types
// this package serializes. gob numbers types in first-use order across the
// whole process, so without this a model saved after a checkpoint decode (the
// resume path) would carry different — though equivalent — type ids than one
// saved by a fresh run, and byte-level comparison of published models would
// fail. Warming an encoder here, in a fixed order, makes Save output a pure
// function of the model in every process.
func init() {
	enc := gob.NewEncoder(io.Discard)
	_ = enc.Encode(modelState{Snap: &nn.Snapshot{}})
	_ = enc.Encode(TrainerState{Params: &nn.Snapshot{}, Opt: &nn.AdamState{}})
}

// Phase names used by TrainerState and TrainEvent.
const (
	PhaseTrain       = "train"
	PhaseIncremental = "incremental"
)

// TrainerState is the complete resumable state of a training run at an epoch
// boundary: model weights, Adam moment vectors, the dynamic ω weights of
// Section 6.2, the RNG stream position, epoch counters, and the
// best-validation snapshot. It is captured through TrainEvent.Snapshot,
// gob-serializes (Config's func fields are dropped, as gob always does), and
// feeds ResumeTrain / ResumeIncrementalTrain, which continue the run
// bit-identically to one that was never interrupted.
type TrainerState struct {
	Phase    string // PhaseTrain or PhaseIncremental
	Cfg      Config // config of the run (Hook/Stop not serialized)
	InDim    int
	TauTop   int
	DataHash uint64 // hash of the train/valid sets, to catch dataset drift on resume

	Epoch    int    // completed epochs in this phase
	RNGDraws uint64 // values consumed from the phase's RNG stream

	Params *nn.Snapshot  // current model weights
	Opt    *nn.AdamState // Adam moments and step counter

	Omega       []float64 // dynamic per-distance weights ω entering the next epoch
	PrevPerDist []float64 // previous epoch's per-distance validation losses
	HavePrev    bool

	Best           *nn.Snapshot // best-validation weights so far (nil before the first validation)
	BestValidMSLE  float64
	BadStreak      int // consecutive non-improving validations (early-stop counter)
	FinalTrainLoss float64

	// Incremental-phase counters (Section 8's stability stop rule).
	Stable    int
	LastValid float64
	ValidMSLE float64
}

// RestoreTrainer rebuilds the model a TrainerState was captured from: the
// architecture comes from the checkpointed config and the weights from the
// checkpointed snapshot. The caller may attach a fresh Hook/Stop to the
// returned model's Cfg (they are not serialized) before resuming.
func RestoreTrainer(st *TrainerState) (*Model, error) {
	if st == nil {
		return nil, fmt.Errorf("core: nil trainer state")
	}
	m := New(st.Cfg, st.InDim)
	m.TauTop = st.TauTop
	if err := st.Params.Restore(m.Params()); err != nil {
		return nil, fmt.Errorf("core: checkpoint does not match its own config (corrupt state?): %w", err)
	}
	return m, nil
}

// ResumeTrain continues a Train run from a checkpointed state. The model
// must have been built by RestoreTrainer from the same state (or be
// configured identically), and train/valid must be the datasets of the
// original run — both are verified. The resumed run is bit-identical to an
// uninterrupted one at the same seed and worker count.
func (m *Model) ResumeTrain(train, valid *TrainSet, st *TrainerState) (TrainResult, error) {
	if err := m.verifyResume(st, PhaseTrain, train, valid); err != nil {
		return TrainResult{}, err
	}
	return m.runTrain(train, valid, st)
}

// ResumeIncrementalTrain continues an IncrementalTrain run from a
// checkpointed state, under the same contract as ResumeTrain.
func (m *Model) ResumeIncrementalTrain(train, valid *TrainSet, st *TrainerState) (IncrementalResult, error) {
	if err := m.verifyResume(st, PhaseIncremental, train, valid); err != nil {
		return IncrementalResult{}, err
	}
	return m.runIncremental(train, valid, 0, st)
}

// verifyResume checks that a checkpoint is resumable on this model: right
// phase, identical config (shape and training hyperparameters, including
// Workers — a different worker count would be a different, non-bit-identical
// run), matching input dimensionality, and the same training data.
func (m *Model) verifyResume(st *TrainerState, phase string, train, valid *TrainSet) error {
	if st == nil {
		return fmt.Errorf("core: nil trainer state")
	}
	if st.Phase != phase {
		return fmt.Errorf("core: checkpoint is from phase %q, resuming %q", st.Phase, phase)
	}
	if st.Params == nil || st.Opt == nil {
		return fmt.Errorf("core: trainer state is missing weights or optimizer moments")
	}
	if st.InDim != m.InDim {
		return fmt.Errorf("core: checkpoint in_dim %d, model %d", st.InDim, m.InDim)
	}
	if err := configsCompatible(m.Cfg, st.Cfg); err != nil {
		return err
	}
	if h := hashTrainData(train, valid); h != st.DataHash {
		return fmt.Errorf("core: training data hash %#x differs from the checkpoint's %#x — resume needs the dataset (and split) of the original run", h, st.DataHash)
	}
	return nil
}

// configsCompatible reports whether two configs describe the same training
// run. Hook and Stop are runtime attachments, not run identity, so they are
// ignored; everything else — architecture, hyperparameters, seed, worker
// count — must match exactly for a resume to be bit-identical.
func configsCompatible(a, b Config) error {
	a.Hook, b.Hook = nil, nil
	a.Stop, b.Stop = nil, nil
	if !reflect.DeepEqual(a, b) {
		return fmt.Errorf("core: config differs from the checkpoint's (got %+v, checkpoint %+v)", a, b)
	}
	return nil
}

// hashTrainData fingerprints the train and valid sets (dimensions, features,
// labels, and threshold distribution) so a resume against different data —
// which would silently train a different model — fails loudly instead. FNV
// over the raw float bits; computed once per run.
func hashTrainData(train, valid *TrainSet) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeFloats := func(vs []float64) {
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	writeSet := func(ts *TrainSet) {
		if ts == nil {
			writeInt(-1)
			return
		}
		writeInt(ts.TauTop)
		writeMatrix(writeInt, writeFloats, ts.X)
		writeMatrix(writeInt, writeFloats, ts.Labels)
		writeInt(len(ts.P))
		writeFloats(ts.P)
	}
	writeSet(train)
	writeSet(valid)
	return h.Sum64()
}

// writeMatrix feeds a matrix's shape and contents to the data hash.
func writeMatrix(writeInt func(int), writeFloats func([]float64), m *tensor.Matrix) {
	if m == nil {
		writeInt(-1)
		return
	}
	writeInt(m.Rows)
	writeInt(m.Cols)
	for r := 0; r < m.Rows; r++ {
		writeFloats(m.Row(r))
	}
}
