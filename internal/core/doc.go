// Package core implements the paper's primary contribution: the CardNet
// regression model (Sections 3, 5–8). Given a binary feature vector x and a
// transformed threshold τ (produced by internal/feature), the model predicts
// the selection cardinality as the sum of τ+1 per-distance decoders
// (Equation 1), which makes the estimate monotonically non-decreasing in τ
// by construction (Lemma 2):
//
//	ĉ(x, τ) = Σ_{i=0..τ} g_i(x),   g_i(x) = ReLU(wᵢᵀ·Ψ(x, i) + bᵢ) ≥ 0.
//
// The encoder Ψ concatenates the raw binary vector with a VAE latent code
// (representation network Γ), appends a learned embedding of distance i, and
// maps the result through a shared feedforward network Φ (Section 5.2). The
// accelerated variant CardNet-A replaces Φ and the per-distance pairing with
// a fused network Φ′ that emits all τmax+1 embeddings in one pass
// (Section 7). Training minimizes MSLE with the per-distance dynamically
// re-weighted term of Equation 3, plus λ·L_vae (Equation 2); updates are
// handled by incremental learning from the current weights (Section 8).
//
// Training is resumable: every epoch boundary can be captured as a
// TrainerState (weights, Adam moments, dynamic ω, RNG stream position,
// early-stop counters, best-validation snapshot) through the
// TrainEvent.Snapshot hook, and ResumeTrain / ResumeIncrementalTrain
// continue an interrupted run bit-identically to one that never stopped.
// internal/checkpoint persists these states durably; Config.Stop provides
// the cooperative interruption point that makes SIGTERM graceful.
package core
