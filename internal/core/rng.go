package core

import "math/rand"

// countingSource wraps the math/rand source behind every training RNG and
// counts how many values have been drawn from it. The count is the RNG half
// of a training checkpoint: math/rand exposes no way to serialize a source's
// internal state, but the stock source advances by exactly one internal step
// per Int63 or Uint64 call, so (seed, draw count) identifies a stream
// position exactly — a fresh source skipped forward by the count continues
// the stream bit-identically. Everything stochastic in training (epoch
// shuffles, VAE reparameterization noise, per-shard seed draws) bottoms out
// in this source, so no other RNG state exists.
//
// The one-step-per-call property is locked in by TestCountingSourceSkip:
// rand's rngSource implements Int63 as a masked Uint64, so a Skip performed
// with Uint64 calls replays a mixed Int63/Uint64 history exactly.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

// newCountingSource seeds a counting source with the stock math/rand source.
func newCountingSource(seed int64) *countingSource {
	// rand.NewSource's concrete type has implemented Source64 since Go 1.8;
	// the assertion guards the invariant rather than a realistic failure.
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 draws one value, counting it.
func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

// Uint64 draws one value, counting it.
func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

// Seed reseeds the underlying source and resets the draw count.
func (c *countingSource) Seed(s int64) {
	c.src.Seed(s)
	c.draws = 0
}

// Draws reports how many values have been drawn since seeding.
func (c *countingSource) Draws() uint64 { return c.draws }

// Skip advances the stream by n draws without exposing the values, placing
// the source exactly where a checkpointed run left it.
func (c *countingSource) Skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.src.Uint64()
	}
	c.draws += n
}
