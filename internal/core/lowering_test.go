package core

import (
	"math"
	"math/rand"
	"testing"

	"cardnet/internal/nn"
	"cardnet/internal/tensor"
)

// lowerTestConfigs sweeps both encoder families, VAE on/off, uneven region
// splits (ZDim not divisible by the layer count), and different depths.
func lowerTestConfigs() []Config {
	accel := DefaultConfig(6)
	accel.Accel = true
	accel.PhiHidden = []int{24, 16, 8}
	accel.ZDim = 10 // 3 regions of 4/3/3: exercises the remainder path
	accel.VAEHidden = []int{20, 12}
	accel.VAELatent = 6

	accelNoVAE := accel
	accelNoVAE.VAELatent = 0
	accelNoVAE.Seed = 2

	std := DefaultConfig(5)
	std.PhiHidden = []int{18, 12}
	std.ZDim = 7
	std.VAEHidden = []int{16}
	std.VAELatent = 4
	std.Seed = 3

	stdNoVAE := std
	stdNoVAE.VAELatent = 0
	stdNoVAE.Seed = 4

	return []Config{accel, accelNoVAE, std, stdNoVAE}
}

// randomBinary returns a rows×cols matrix of random 0/1 features.
func randomBinary(rng *rand.Rand, rows, cols int) *tensor.Matrix {
	xs := tensor.NewMatrix(rows, cols)
	for i := range xs.Data {
		if rng.Intn(2) == 1 {
			xs.Data[i] = 1
		}
	}
	return xs
}

// TestLoweredModelMatchesLegacy checks the fusion algebra: the lowered f64
// evaluator must reproduce the un-fused forward to float64 reassociation
// error on both encoder families.
func TestLoweredModelMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for ci, cfg := range lowerTestConfigs() {
		m := New(cfg, 12)
		lm := m.Lower()
		xs := randomBinary(rng, 9, 12)
		want := m.EstimateAllTausBatch(xs)
		got := lm.EstimateAllTausBatch(xs)
		if got.Rows != want.Rows || got.Cols != want.Cols {
			t.Fatalf("cfg %d: shape %d×%d, want %d×%d", ci, got.Rows, got.Cols, want.Rows, want.Cols)
		}
		for i := range got.Data {
			w, g := want.Data[i], got.Data[i]
			if math.Abs(g-w) > 1e-9*(1+math.Abs(w)) {
				t.Fatalf("cfg %d (accel=%v): elem %d = %.15g, want %.15g", ci, cfg.Accel, i, g, w)
			}
		}
		for e := 0; e < got.Rows; e++ {
			if !CurveMonotone(got.Row(e)) {
				t.Fatalf("cfg %d: lowered curve %d not monotone", ci, e)
			}
		}
	}
}

// TestLoweredModelImmutable checks that lowering deep-copies: mutating the
// source model must not change an already-lowered plan's outputs.
func TestLoweredModelImmutable(t *testing.T) {
	cfg := lowerTestConfigs()[0]
	m := New(cfg, 12)
	lm := m.Lower()
	rng := rand.New(rand.NewSource(7))
	xs := randomBinary(rng, 3, 12)
	before := lm.EstimateAllTausBatch(xs)
	for _, p := range m.Params() {
		for i := range p.Value {
			p.Value[i] += 0.5
		}
	}
	after := lm.EstimateAllTausBatch(xs)
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			t.Fatalf("lowered output changed after model mutation: elem %d %g -> %g", i, before.Data[i], after.Data[i])
		}
	}
}

// TestAccelScratchBitIdentical checks that the scratch-buffer forward (reused
// context) produces bit-identical embeddings to the legacy allocating path,
// call after call.
func TestAccelScratchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := newAccelEncoder(rng, 10, []int{14, 9}, 8, 5)
	ctx := nn.NewCtx()
	for iter := 0; iter < 3; iter++ {
		xp := tensor.NewMatrix(4, 10)
		tensor.RandNormal(rng, xp.Data, 0, 1)
		want := a.ForwardCtx(nil, xp, false)
		got := a.ForwardCtx(ctx, xp, false)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("iter %d: elem %d = %g, want %g", iter, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestAccelForwardAllocFree pins the satellite guarantee: once a context's
// scratch buffers are warm, the fused-encoder inference forward performs zero
// allocations.
func TestAccelForwardAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := newAccelEncoder(rng, 10, []int{14, 9}, 8, 5)
	xp := tensor.NewMatrix(4, 10)
	tensor.RandNormal(rng, xp.Data, 0, 1)
	ctx := nn.NewCtx()
	a.ForwardCtx(ctx, xp, false) // warm the scratch buffers
	allocs := testing.AllocsPerRun(20, func() {
		a.ForwardCtx(ctx, xp, false)
	})
	if allocs != 0 {
		t.Fatalf("accel inference forward allocates %v objects per call, want 0", allocs)
	}
}

// TestAccelBackwardScratch checks gradient accumulation is unchanged by the
// scratch-backed dzj buffers: same dz twice through fresh contexts must give
// identical gradients to the legacy nil-context path.
func TestAccelBackwardScratch(t *testing.T) {
	build := func() *accelEncoder {
		return newAccelEncoder(rand.New(rand.NewSource(9)), 6, []int{8, 5}, 6, 4)
	}
	rng := rand.New(rand.NewSource(10))
	xp := tensor.NewMatrix(3, 6)
	tensor.RandNormal(rng, xp.Data, 0, 1)
	dz := tensor.NewMatrix(3*4, 6)
	tensor.RandNormal(rng, dz.Data, 0, 1)

	grads := func(useCtx bool) []float64 {
		a := build()
		var c *nn.Ctx
		if useCtx {
			c = nn.NewCtx()
		}
		a.ForwardCtx(c, xp, true)
		a.BackwardCtx(c, dz)
		var out []float64
		for _, p := range a.Params() {
			g := c.GradOf(p)
			out = append(out, g...)
		}
		return out
	}
	legacy := grads(false)
	ctxed := grads(true)
	if len(legacy) != len(ctxed) {
		t.Fatalf("gradient length mismatch %d vs %d", len(legacy), len(ctxed))
	}
	for i := range legacy {
		if legacy[i] != ctxed[i] {
			t.Fatalf("gradient %d = %g, want %g", i, ctxed[i], legacy[i])
		}
	}
}
