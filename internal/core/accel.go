package core

import (
	"math/rand"

	"cardnet/internal/nn"
	"cardnet/internal/obs"
	"cardnet/internal/tensor"
)

// accelForwards counts fused Φ′ passes; compared against
// core.estimate.calls it shows the batch amplification the accelerated
// encoder saves over the τ+1-pass standard encoder.
var accelForwards = obs.Default.Counter("core.accel.forwards")

// accelEncoder is the fused network Φ′ of Section 7 (CardNet-A). It is an
// FNN of n hidden layers f_1..f_n where hidden layer f_j, in addition to
// feeding f_{j+1}, emits region j of ALL τmax+1 embeddings through a head
// projection: Z_j = [z⁰[r_{j-1},r_j) : … : z^{τmax}[r_{j-1},r_j)]. The
// concatenated regions form the embedding matrix Z, replacing the τ+1
// separate Φ passes of the standard encoder and cutting inference cost from
// O((τ+1)·|Φ|) to O(|Φ′|).
type accelEncoder struct {
	layers   []*nn.Dense
	acts     []*nn.Activation
	heads    []*nn.Dense // h_j → tauCount·region_j
	regions  []int       // region widths, sum = zDim
	tauCount int
	zDim     int
}

// newAccelEncoder splits zDim into len(hidden) near-equal regions.
func newAccelEncoder(rng *rand.Rand, inDim int, hidden []int, zDim, tauCount int) *accelEncoder {
	a := &accelEncoder{tauCount: tauCount, zDim: zDim}
	n := len(hidden)
	base, rem := zDim/n, zDim%n
	prev := inDim
	for j, h := range hidden {
		a.layers = append(a.layers, nn.NewDense(rng, prev, h))
		a.acts = append(a.acts, nn.NewActivation(nn.ReLU))
		w := base
		if j < rem {
			w++
		}
		a.regions = append(a.regions, w)
		a.heads = append(a.heads, nn.NewDense(rng, h, tauCount*w))
		prev = h
	}
	return a
}

// Params returns all learnable parameters of Φ′.
func (a *accelEncoder) Params() []*nn.Param {
	var ps []*nn.Param
	for j := range a.layers {
		ps = append(ps, a.layers[j].Params()...)
		ps = append(ps, a.heads[j].Params()...)
	}
	return ps
}

// Forward maps xp (B × inDim) to Z (B·tauCount × zDim), laid out with row
// e·tauCount + i holding example e's embedding of distance i — the same
// layout the standard encoder produces, so the decoders are shared.
func (a *accelEncoder) Forward(xp *tensor.Matrix, train bool) *tensor.Matrix {
	return a.ForwardCtx(nil, xp, train)
}

// ForwardCtx is Forward through a per-shard context (nil = legacy layer
// caches), letting concurrent training shards share one Φ′ instance.
//
// All transients — the scatter target z, each hidden activation, each head
// output zj — come from Ctx.Scratch, so a caller that reuses a context (the
// pooled inference contexts in this package) runs the whole pass without
// allocating; a nil context degrades to per-call allocation as before. Every
// scratch buffer is fully overwritten before it is read: z's regions cover
// all zDim columns, and the dense products write every output element.
func (a *accelEncoder) ForwardCtx(c *nn.Ctx, xp *tensor.Matrix, train bool) *tensor.Matrix {
	accelForwards.Inc()
	b := xp.Rows
	z := c.Scratch(a, "z", b*a.tauCount, a.zDim)
	h := xp
	col := 0
	for j := range a.layers {
		var zj *tensor.Matrix // B × tauCount·w
		if train {
			h = a.acts[j].ForwardCtx(c, a.layers[j].ForwardCtx(c, h, true), true)
			zj = a.heads[j].ForwardCtx(c, h, true)
		} else {
			// Inference: dense product into scratch, ReLU applied in place
			// (bit-identical to the activation layer, which only clamps
			// negatives), head product into scratch.
			h = a.layers[j].ForwardInto(h, c.Scratch(a.layers[j], "h", b, a.layers[j].Out))
			for i, v := range h.Data {
				if v < 0 {
					h.Data[i] = 0
				}
			}
			zj = a.heads[j].ForwardInto(h, c.Scratch(a.heads[j], "zj", b, a.heads[j].Out))
		}
		w := a.regions[j]
		for e := 0; e < b; e++ {
			src := zj.Row(e)
			for i := 0; i < a.tauCount; i++ {
				copy(z.Row(e*a.tauCount + i)[col:col+w], src[i*w:(i+1)*w])
			}
		}
		col += w
	}
	return z
}

// Backward consumes dZ in the Forward layout and returns dXp (B × inDim).
// Each head's gradient is combined with the gradient arriving from the next
// hidden layer, which is what lets every hidden layer learn directly from
// the final embeddings (the property Section 7 credits for Φ′'s accuracy).
func (a *accelEncoder) Backward(dz *tensor.Matrix) *tensor.Matrix {
	return a.BackwardCtx(nil, dz)
}

// BackwardCtx is Backward through a per-shard context.
func (a *accelEncoder) BackwardCtx(c *nn.Ctx, dz *tensor.Matrix) *tensor.Matrix {
	b := dz.Rows / a.tauCount
	// dH from the layer above (nil for the last layer).
	var dhNext *tensor.Matrix
	col := a.zDim
	for j := len(a.layers) - 1; j >= 0; j-- {
		w := a.regions[j]
		col -= w
		// Scratch-backed and fully overwritten by the gather loop below.
		dzj := c.Scratch(a.heads[j], "dzj", b, a.tauCount*w)
		for e := 0; e < b; e++ {
			dst := dzj.Row(e)
			for i := 0; i < a.tauCount; i++ {
				copy(dst[i*w:(i+1)*w], dz.Row(e*a.tauCount + i)[col:col+w])
			}
		}
		dh := a.heads[j].BackwardCtx(c, dzj)
		if dhNext != nil {
			for i := range dh.Data {
				dh.Data[i] += dhNext.Data[i]
			}
		}
		dhNext = a.layers[j].BackwardCtx(c, a.acts[j].BackwardCtx(c, dh))
	}
	return dhNext
}
