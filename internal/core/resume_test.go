package core

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"

	"cardnet/internal/tensor"
)

// gobRoundTrip pushes a TrainerState through gob, as the checkpoint file
// layer does, so the tests exercise exactly what a resume-after-restart sees.
func gobRoundTrip(t *testing.T, st *TrainerState) *TrainerState {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatalf("encode trainer state: %v", err)
	}
	var out TrainerState
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("decode trainer state: %v", err)
	}
	return &out
}

// TestCountingSourceSkip locks in the property resume depends on: the stock
// math/rand source advances one internal step per Int63 or Uint64 call, so a
// source skipped forward by the observed draw count continues any mixed call
// history bit-identically.
func TestCountingSourceSkip(t *testing.T) {
	src := newCountingSource(42)
	rng := rand.New(src)
	// Mixed draw types, as training uses them: shuffles (Int63n), normals
	// (rejection sampling), floats, and raw Int63 shard seeds.
	perm := rand.Perm(50)
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	for i := 0; i < 100; i++ {
		rng.NormFloat64()
		rng.Float64()
		rng.Int63()
	}
	n := src.Draws()

	resumed := newCountingSource(42)
	resumed.Skip(n)
	r2 := rand.New(resumed)
	r1 := rng
	for i := 0; i < 200; i++ {
		if a, b := r1.Int63(), r2.Int63(); a != b {
			t.Fatalf("draw %d after skip: %d != %d", i, a, b)
		}
		if a, b := r1.NormFloat64(), r2.NormFloat64(); a != b {
			t.Fatalf("normal draw %d after skip: %v != %v", i, a, b)
		}
	}
}

// runInterrupted trains from scratch but stops at stopEpoch, returning the
// state captured at that boundary (gob round-tripped, as a checkpoint file
// would be).
func runInterrupted(t *testing.T, cfg Config, train, valid *TrainSet, stopEpoch int) *TrainerState {
	t.Helper()
	var st *TrainerState
	stop := false
	cfg.Hook = func(ev TrainEvent) {
		if ev.Epoch == stopEpoch {
			if ev.Snapshot == nil {
				t.Fatal("TrainEvent.Snapshot not set")
			}
			st = ev.Snapshot()
			stop = true
		}
	}
	cfg.Stop = func() bool { return stop }
	m := New(cfg, train.X.Cols)
	res := m.Train(train, valid)
	if !res.Interrupted {
		t.Fatalf("run was not interrupted (epochs=%d, want stop at %d)", res.Epochs, stopEpoch)
	}
	if res.Epochs != stopEpoch {
		t.Fatalf("interrupted at epoch %d, want %d", res.Epochs, stopEpoch)
	}
	// The interrupted model must equal the checkpoint exactly: no
	// best-restore is applied on interruption.
	if !bytes.Equal(saveBytes(t, m), func() []byte {
		m2, err := RestoreTrainer(st)
		if err != nil {
			t.Fatal(err)
		}
		return saveBytes(t, m2)
	}()) {
		t.Fatal("interrupted model differs from its own checkpoint")
	}
	return gobRoundTrip(t, st)
}

// TestResumeTrainBitIdentical is the kill-and-resume determinism contract: a
// training run interrupted at an arbitrary epoch and resumed from its
// checkpoint produces a bit-identical final model and result to an
// uninterrupted run with the same seed and worker count.
func TestResumeTrainBitIdentical(t *testing.T) {
	for _, workers := range []int{1, 2} {
		for _, stopEpoch := range []int{1, 3, 5} {
			train, valid, _, _ := hammingFixture(t, 120)
			cfg := tinyConfig(train.TauTop, true)
			cfg.Epochs = 6
			cfg.Seed = 11
			cfg.Workers = workers
			tensor.SetWorkers(workers)

			ref := New(cfg, train.X.Cols)
			refRes := ref.Train(train, valid)
			refBytes := saveBytes(t, ref)

			st := runInterrupted(t, cfg, train, valid, stopEpoch)
			m2, err := RestoreTrainer(st)
			if err != nil {
				t.Fatal(err)
			}
			res2, err := m2.ResumeTrain(train, valid, st)
			if err != nil {
				t.Fatal(err)
			}

			if !bytes.Equal(refBytes, saveBytes(t, m2)) {
				t.Fatalf("workers=%d stop=%d: resumed model differs from uninterrupted run", workers, stopEpoch)
			}
			if res2.Epochs != refRes.Epochs || res2.BestValidMSLE != refRes.BestValidMSLE ||
				res2.FinalTrainLoss != refRes.FinalTrainLoss {
				t.Fatalf("workers=%d stop=%d: resumed result %+v != reference %+v", workers, stopEpoch, res2, refRes)
			}
		}
	}
}

// TestResumeTrainNoVAE covers the VAE-ablated variant (no pretraining phase,
// different RNG consumption pattern).
func TestResumeTrainNoVAE(t *testing.T) {
	train, valid, _, _ := hammingFixture(t, 100)
	cfg := tinyConfig(train.TauTop, false)
	cfg.VAELatent = 0
	cfg.Epochs = 5
	cfg.Seed = 5
	tensor.SetWorkers(1)

	ref := New(cfg, train.X.Cols)
	ref.Train(train, valid)

	st := runInterrupted(t, cfg, train, valid, 2)
	m2, err := RestoreTrainer(st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.ResumeTrain(train, valid, st); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveBytes(t, ref), saveBytes(t, m2)) {
		t.Fatal("resumed no-VAE model differs from uninterrupted run")
	}
}

// TestResumeIncrementalBitIdentical is the same contract for the Section 8
// update procedure.
func TestResumeIncrementalBitIdentical(t *testing.T) {
	train, valid, _, _ := hammingFixture(t, 120)
	cfg := tinyConfig(train.TauTop, true)
	cfg.Epochs = 4
	cfg.Seed = 9
	tensor.SetWorkers(1)

	base := New(cfg, train.X.Cols)
	base.Train(train, valid)
	baseBytes := saveBytes(t, base)

	// Perturb labels so IncrementalTrain actually trains.
	train2 := &TrainSet{X: train.X, Labels: train.Labels.Clone(), TauTop: train.TauTop, P: train.P}
	for r := 0; r < train2.Labels.Rows; r++ {
		row := train2.Labels.Row(r)
		for i := range row {
			row[i] = row[i]*1.6 + 2
		}
	}
	valid2 := &TrainSet{X: valid.X, Labels: valid.Labels.Clone(), TauTop: valid.TauTop, P: valid.P}
	for r := 0; r < valid2.Labels.Rows; r++ {
		row := valid2.Labels.Row(r)
		for i := range row {
			row[i] = row[i]*1.6 + 2
		}
	}

	restore := func() *Model {
		m, err := Load(bytes.NewReader(baseBytes))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	ref := restore()
	refRes := ref.IncrementalTrain(train2, valid2, 0)
	if ref.Cfg.Hook != nil || refRes.Skipped {
		t.Fatalf("unexpected reference run: %+v", refRes)
	}
	if refRes.Epochs < 3 {
		t.Skipf("reference incremental run too short (%d epochs) to interrupt", refRes.Epochs)
	}
	refBytes := saveBytes(t, ref)

	var st *TrainerState
	stop := false
	m1 := restore()
	m1.Cfg.Hook = func(ev TrainEvent) {
		if ev.Epoch == 2 {
			st = ev.Snapshot()
			stop = true
		}
	}
	m1.Cfg.Stop = func() bool { return stop }
	res1 := m1.IncrementalTrain(train2, valid2, 0)
	if !res1.Interrupted || st == nil {
		t.Fatalf("incremental run not interrupted: %+v", res1)
	}
	st = gobRoundTrip(t, st)

	m2, err := RestoreTrainer(st)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := m2.ResumeIncrementalTrain(train2, valid2, st)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refBytes, saveBytes(t, m2)) {
		t.Fatal("resumed incremental model differs from uninterrupted run")
	}
	if res2.Epochs != refRes.Epochs || res2.ValidMSLE != refRes.ValidMSLE {
		t.Fatalf("resumed incremental result %+v != reference %+v", res2, refRes)
	}
}

// TestResumeRejectsMismatches locks in the config/data verification: resume
// must refuse a different config, phase, or dataset with a clear error.
func TestResumeRejectsMismatches(t *testing.T) {
	train, valid, _, _ := hammingFixture(t, 100)
	cfg := tinyConfig(train.TauTop, true)
	cfg.Epochs = 4
	cfg.Seed = 3
	tensor.SetWorkers(1)
	st := runInterrupted(t, cfg, train, valid, 2)

	// Wrong phase.
	m, err := RestoreTrainer(st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ResumeIncrementalTrain(train, valid, st); err == nil {
		t.Fatal("resume accepted a train-phase checkpoint for incremental")
	}

	// Wrong config (different worker count would not be bit-identical).
	m2, err := RestoreTrainer(st)
	if err != nil {
		t.Fatal(err)
	}
	m2.Cfg.Workers = 7
	if _, err := m2.ResumeTrain(train, valid, st); err == nil {
		t.Fatal("resume accepted a mismatched config")
	}

	// Wrong dataset.
	otherTrain, otherValid, _, _ := hammingFixture(t, 90)
	m3, err := RestoreTrainer(st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m3.ResumeTrain(otherTrain, otherValid, st); err == nil {
		t.Fatal("resume accepted different training data")
	}

	// Truncated state.
	empty := *st
	empty.Opt = nil
	if _, err := m3.ResumeTrain(train, valid, &empty); err == nil {
		t.Fatal("resume accepted a state with no optimizer moments")
	}
}
