package core

import (
	"cardnet/internal/feature"
	"cardnet/internal/obs"
)

// encodeLatency times the feature-extraction half of the composed estimate
// ĉ = g∘h, so serving dashboards can split end-to-end latency between h
// (encode) and g (core.estimate.seconds).
var encodeLatency = obs.Default.Histogram("core.encode.seconds", obs.TimeBuckets())

// Estimator binds a trained Model to a feature extractor, yielding the
// end-to-end ĉ = g∘h(x, θ) of Section 3.1 for records of type R. Because
// both h_thr and the model's prefix-sum estimate are monotone, the composed
// estimate is monotonically non-decreasing in θ (Lemma 1).
type Estimator[R any] struct {
	Ext   feature.Extractor[R]
	Model *Model
}

// NewEstimator pairs an extractor and a model.
func NewEstimator[R any](ext feature.Extractor[R], m *Model) *Estimator[R] {
	return &Estimator[R]{Ext: ext, Model: m}
}

// Estimate returns the estimated cardinality of the selection (q, θ).
func (e *Estimator[R]) Estimate(q R, theta float64) float64 {
	traced := obs.Enabled()
	var tm obs.Timer
	if traced {
		tm = obs.StartTimer(encodeLatency)
	}
	x := e.Ext.Encode(q)
	tau := e.Ext.Threshold(theta)
	if traced {
		tm.Stop()
	}
	return e.Model.EstimateEncoded(x, tau)
}

// Count adapts Estimate to the simselect.Counter interface (rounding to the
// nearest count).
func (e *Estimator[R]) Count(q R, theta float64) int {
	v := e.Estimate(q, theta)
	if v < 0 {
		return 0
	}
	return int(v + 0.5)
}
