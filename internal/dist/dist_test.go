package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitVectorBasics(t *testing.T) {
	b := NewBitVector(70)
	if b.Len != 70 || len(b.Bits) != 2 {
		t.Fatalf("shape: %+v", b)
	}
	b.SetBit(0, true)
	b.SetBit(69, true)
	if !b.Bit(0) || !b.Bit(69) || b.Bit(1) {
		t.Fatal("bit get/set broken")
	}
	if b.OnesCount() != 2 {
		t.Fatalf("OnesCount=%d", b.OnesCount())
	}
	b.SetBit(0, false)
	if b.Bit(0) || b.OnesCount() != 1 {
		t.Fatal("clear broken")
	}
	c := b.Clone()
	c.SetBit(1, true)
	if b.Bit(1) {
		t.Fatal("Clone must not alias")
	}
	f := b.Floats()
	if len(f) != 70 || f[69] != 1 || f[0] != 0 {
		t.Fatal("Floats wrong")
	}
}

func TestBitVectorOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBitVector(8).SetBit(8, true)
}

func TestHammingKnown(t *testing.T) {
	a := NewBitVector(128)
	b := NewBitVector(128)
	a.SetBit(0, true)
	a.SetBit(127, true)
	b.SetBit(127, true)
	b.SetBit(64, true)
	if got := Hamming(a, b); got != 2 {
		t.Fatalf("Hamming=%d", got)
	}
	if got := Hamming(a, a); got != 0 {
		t.Fatalf("self distance=%d", got)
	}
}

func TestHammingSlice(t *testing.T) {
	a := NewBitVector(16)
	b := NewBitVector(16)
	a.SetBit(3, true)
	a.SetBit(10, true)
	if got := HammingSlice(a, b, 0, 8); got != 1 {
		t.Fatalf("slice [0,8)=%d", got)
	}
	if got := HammingSlice(a, b, 8, 16); got != 1 {
		t.Fatalf("slice [8,16)=%d", got)
	}
	if got := HammingSlice(a, b, 0, 16); got != Hamming(a, b) {
		t.Fatal("full slice must equal Hamming")
	}
}

func TestEditKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "xy", 2},
		{"kitten", "sitting", 3},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"abc", "acb", 2},
		{"sunday", "saturday", 3},
	}
	for _, c := range cases {
		if got := Edit(c.a, c.b); got != c.want {
			t.Fatalf("Edit(%q,%q)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}

func randString(r *rand.Rand, maxLen int) string {
	n := r.Intn(maxLen + 1)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + r.Intn(4))
	}
	return string(b)
}

// Property: EditWithin agrees with the full DP for every k.
func TestEditWithinMatchesFullDP(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randString(r, 12)
		b := randString(r, 12)
		d := Edit(a, b)
		for k := 0; k <= 14; k++ {
			got, ok := EditWithin(a, b, k)
			if ok != (d <= k) {
				return false
			}
			if ok && got != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEditWithinNegativeK(t *testing.T) {
	if _, ok := EditWithin("a", "a", -1); ok {
		t.Fatal("negative k must fail")
	}
}

func TestNewIntSetSortsAndDedupes(t *testing.T) {
	s := NewIntSet([]uint32{5, 1, 5, 3, 1})
	if len(s) != 3 || s[0] != 1 || s[1] != 3 || s[2] != 5 {
		t.Fatalf("IntSet=%v", s)
	}
}

func TestOverlapAndJaccard(t *testing.T) {
	a := NewIntSet([]uint32{1, 2, 3, 4})
	b := NewIntSet([]uint32{3, 4, 5, 6})
	if got := Overlap(a, b); got != 2 {
		t.Fatalf("Overlap=%d", got)
	}
	// J distance = 1 − 2/6.
	if got := Jaccard(a, b); math.Abs(got-(1-2.0/6)) > 1e-12 {
		t.Fatalf("Jaccard=%v", got)
	}
	if got := Jaccard(a, a); got != 0 {
		t.Fatalf("self Jaccard=%v", got)
	}
	if got := Jaccard(NewIntSet(nil), NewIntSet(nil)); got != 0 {
		t.Fatalf("empty Jaccard=%v", got)
	}
	if got := Jaccard(a, NewIntSet(nil)); got != 1 {
		t.Fatalf("disjoint-with-empty Jaccard=%v", got)
	}
}

func TestEuclideanKnown(t *testing.T) {
	if got := Euclidean([]float64{0, 0}, []float64{3, 4}); got != 5 {
		t.Fatalf("Euclidean=%v", got)
	}
}

func TestNormalize(t *testing.T) {
	v := []float64{3, 4}
	Normalize(v)
	if math.Abs(v[0]-0.6) > 1e-12 || math.Abs(v[1]-0.8) > 1e-12 {
		t.Fatalf("Normalize=%v", v)
	}
	z := []float64{0, 0}
	Normalize(z)
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("zero vector must stay zero")
	}
}

// Property: all four distances satisfy identity and symmetry; Hamming, edit
// and Euclidean satisfy the triangle inequality on random triples.
func TestMetricProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Hamming.
		mk := func() BitVector {
			v := NewBitVector(32)
			for i := 0; i < 32; i++ {
				if r.Intn(2) == 1 {
					v.SetBit(i, true)
				}
			}
			return v
		}
		a, b, c := mk(), mk(), mk()
		if Hamming(a, b) != Hamming(b, a) || Hamming(a, a) != 0 {
			return false
		}
		if Hamming(a, c) > Hamming(a, b)+Hamming(b, c) {
			return false
		}
		// Edit.
		sa, sb, sc := randString(r, 8), randString(r, 8), randString(r, 8)
		if Edit(sa, sb) != Edit(sb, sa) || Edit(sa, sa) != 0 {
			return false
		}
		if Edit(sa, sc) > Edit(sa, sb)+Edit(sb, sc) {
			return false
		}
		// Jaccard symmetry.
		ja := NewIntSet([]uint32{uint32(r.Intn(8)), uint32(r.Intn(8))})
		jb := NewIntSet([]uint32{uint32(r.Intn(8)), uint32(r.Intn(8))})
		if math.Abs(Jaccard(ja, jb)-Jaccard(jb, ja)) > 1e-15 {
			return false
		}
		// Euclidean triangle.
		mkv := func() []float64 {
			v := make([]float64, 4)
			for i := range v {
				v[i] = r.NormFloat64()
			}
			return v
		}
		ea, eb, ec := mkv(), mkv(), mkv()
		return Euclidean(ea, ec) <= Euclidean(ea, eb)+Euclidean(eb, ec)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
