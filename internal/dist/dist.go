// Package dist defines the record types and distance functions the paper
// evaluates on (Section 2.1): Hamming distance over binary vectors, edit
// distance over strings, Jaccard distance over sets, and Euclidean distance
// over real vectors.
package dist

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// BitVector is a fixed-length binary vector packed into 64-bit words.
type BitVector struct {
	Bits []uint64
	Len  int
}

// NewBitVector returns an all-zero vector of n bits.
func NewBitVector(n int) BitVector {
	return BitVector{Bits: make([]uint64, (n+63)/64), Len: n}
}

// SetBit sets bit i to v.
func (b BitVector) SetBit(i int, v bool) {
	if i < 0 || i >= b.Len {
		panic(fmt.Sprintf("dist: bit %d out of range [0,%d)", i, b.Len))
	}
	if v {
		b.Bits[i/64] |= 1 << (i % 64)
	} else {
		b.Bits[i/64] &^= 1 << (i % 64)
	}
}

// Bit reports bit i.
func (b BitVector) Bit(i int) bool {
	return b.Bits[i/64]&(1<<(i%64)) != 0
}

// Clone returns a deep copy.
func (b BitVector) Clone() BitVector {
	c := BitVector{Bits: make([]uint64, len(b.Bits)), Len: b.Len}
	copy(c.Bits, b.Bits)
	return c
}

// Floats expands the vector into a float64 slice of 0/1 values, the input
// format of the neural models.
func (b BitVector) Floats() []float64 {
	out := make([]float64, b.Len)
	for i := 0; i < b.Len; i++ {
		if b.Bit(i) {
			out[i] = 1
		}
	}
	return out
}

// OnesCount returns the popcount of the vector.
func (b BitVector) OnesCount() int {
	n := 0
	for _, w := range b.Bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// Hamming returns the Hamming distance between two equal-length vectors.
func Hamming(a, b BitVector) int {
	if a.Len != b.Len {
		panic(fmt.Sprintf("dist: hamming length mismatch %d vs %d", a.Len, b.Len))
	}
	d := 0
	for i, w := range a.Bits {
		d += bits.OnesCount64(w ^ b.Bits[i])
	}
	return d
}

// HammingSlice returns the Hamming distance over a word range, used by the
// GPH-style partitioned query processor.
func HammingSlice(a, b BitVector, fromBit, toBit int) int {
	d := 0
	for i := fromBit; i < toBit; i++ {
		if a.Bit(i) != b.Bit(i) {
			d++
		}
	}
	return d
}

// Edit returns the Levenshtein edit distance between two strings, using the
// classic two-row dynamic program.
func Edit(a, b string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// EditWithin reports whether Edit(a, b) ≤ k, using Ukkonen's banded dynamic
// program that only fills a 2k+1 diagonal band; it returns the distance when
// within the threshold. This is the verification step of the exact
// similarity-selection algorithm for edit distance.
func EditWithin(a, b string, k int) (int, bool) {
	if k < 0 {
		return 0, false
	}
	la, lb := len(a), len(b)
	if abs(la-lb) > k {
		return 0, false
	}
	if la == 0 {
		return lb, lb <= k
	}
	if lb == 0 {
		return la, la <= k
	}
	const inf = math.MaxInt32 / 2
	width := 2*k + 1
	prev := make([]int, width)
	cur := make([]int, width)
	// prev[c] holds D[i-1][i-1+c-k]; initialize row 0: D[0][j] = j.
	for c := 0; c < width; c++ {
		j := c - k
		if j >= 0 && j <= lb {
			prev[c] = j
		} else {
			prev[c] = inf
		}
	}
	for i := 1; i <= la; i++ {
		for c := 0; c < width; c++ {
			j := i + c - k
			if j < 0 || j > lb {
				cur[c] = inf
				continue
			}
			if j == 0 {
				cur[c] = i
				continue
			}
			del := inf
			if c+1 < width {
				del = prev[c+1] + 1 // D[i-1][j]
			}
			ins := inf
			if c-1 >= 0 {
				ins = cur[c-1] + 1 // D[i][j-1]
			}
			sub := prev[c] // D[i-1][j-1]
			if a[i-1] != b[j-1] {
				sub++
			}
			cur[c] = min3(del, ins, sub)
		}
		// Early exit: if every band cell exceeds k, no path can recover.
		allOver := true
		for _, v := range cur {
			if v <= k {
				allOver = false
				break
			}
		}
		if allOver {
			return 0, false
		}
		prev, cur = cur, prev
	}
	d := prev[lb-la+k]
	return d, d <= k
}

// IntSet is a sorted, duplicate-free set of token ids.
type IntSet []uint32

// NewIntSet sorts and dedupes tokens into an IntSet.
func NewIntSet(tokens []uint32) IntSet {
	s := make([]uint32, len(tokens))
	copy(s, tokens)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:0]
	var prev uint32
	for i, v := range s {
		if i == 0 || v != prev {
			out = append(out, v)
		}
		prev = v
	}
	return IntSet(out)
}

// Overlap returns |a ∩ b| by merging the sorted sets.
func Overlap(a, b IntSet) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// Jaccard returns the Jaccard distance 1 − |a∩b|/|a∪b| (Section 4.3).
func Jaccard(a, b IntSet) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	ov := Overlap(a, b)
	return 1 - float64(ov)/float64(len(a)+len(b)-ov)
}

// Euclidean returns the L2 distance between two equal-length real vectors.
func Euclidean(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("dist: euclidean length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Normalize scales v to unit L2 norm in place (used by the GloVe-style
// datasets, which the paper normalizes). Zero vectors are left unchanged.
func Normalize(v []float64) {
	var s float64
	for _, x := range v {
		s += x * x
	}
	if s == 0 {
		return
	}
	inv := 1 / math.Sqrt(s)
	for i := range v {
		v[i] *= inv
	}
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
