package obs

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// promFixture builds a registry with every metric kind, including names that
// need sanitizing and values that need careful formatting.
func promFixture() *Registry {
	r := NewRegistry()
	r.Counter("serving.requests").Add(42)
	r.Counter("http.errors") // zero-valued counters still expose
	r.Gauge("serving.queue.depth").Set(3.5)
	r.Gauge("weird-name.1ü").Set(-1.25)
	h := r.Histogram("latency.seconds", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.05, 7} {
		h.Observe(v)
	}
	r.Histogram("empty.seconds", []float64{1, 2})
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	SetEnabled(true)
	var buf bytes.Buffer
	if err := promFixture().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prom.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("prometheus output drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestWritePrometheusRoundTrip(t *testing.T) {
	SetEnabled(true)
	var buf bytes.Buffer
	if err := promFixture().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	series, err := ParsePrometheus(&buf)
	if err != nil {
		t.Fatalf("self-emitted exposition failed to parse: %v", err)
	}
	want := map[string]float64{
		"serving_requests_total":             42,
		"http_errors_total":                  0,
		"serving_queue_depth":                3.5,
		"weird_name_1_":                      -1.25,
		`latency_seconds_bucket{le="0.001"}`: 1,
		`latency_seconds_bucket{le="0.01"}`:  3,
		`latency_seconds_bucket{le="0.1"}`:   4,
		`latency_seconds_bucket{le="+Inf"}`:  5,
		"latency_seconds_count":              5,
		`empty_seconds_bucket{le="+Inf"}`:    0,
		"empty_seconds_count":                0,
		"empty_seconds_sum":                  0,
	}
	for k, v := range want {
		got, ok := series[k]
		if !ok {
			t.Errorf("series %q missing from exposition", k)
			continue
		}
		if got != v {
			t.Errorf("series %q = %v, want %v", k, got, v)
		}
	}
	sum := series["latency_seconds_sum"]
	if math.Abs(sum-(0.0005+0.002+0.002+0.05+7)) > 1e-12 {
		t.Errorf("histogram sum %v", sum)
	}

	// Cumulative-bucket invariant: counts never decrease toward +Inf.
	if series[`latency_seconds_bucket{le="0.001"}`] > series[`latency_seconds_bucket{le="0.01"}`] ||
		series[`latency_seconds_bucket{le="0.1"}`] > series[`latency_seconds_bucket{le="+Inf"}`] {
		t.Error("bucket counts not cumulative")
	}
	if series[`latency_seconds_bucket{le="+Inf"}`] != series["latency_seconds_count"] {
		t.Error("+Inf bucket != count")
	}
}

func TestPromNameAndEscaping(t *testing.T) {
	cases := map[string]string{
		"serving.queue.depth": "serving_queue_depth",
		"already_valid:name":  "already_valid:name",
		"1starts.with.digit":  "_1starts_with_digit",
		"weird-name.1ü":       "weird_name_1_",
		"":                    "_",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := escapeHelp("a\\b\nc"); got != `a\\b\nc` {
		t.Errorf("escapeHelp = %q", got)
	}
	if got := escapeLabel("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Errorf("escapeLabel = %q", got)
	}
}

func TestParsePrometheusEscapedLabelsRoundTrip(t *testing.T) {
	r := NewRegistry()
	hairy := "a\\b \"c\"\nd"
	r.SetInfo("cardnet.build.info",
		Label{Name: "version", Value: hairy},
		Label{Name: "sha", Value: "deadbeef"})
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	series, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("escaped labels failed to re-parse: %v\n%s", err, buf.Bytes())
	}
	want := FormatSeries("cardnet_build_info", []Label{
		{Name: "sha", Value: "deadbeef"}, {Name: "version", Value: hairy}})
	if series[want] != 1 {
		t.Fatalf("info series %q missing or != 1 in %v", want, series)
	}
	// The decoded label value must be byte-identical to the original.
	_, labels, err := splitSeriesID(want)
	if err != nil {
		t.Fatal(err)
	}
	got := ""
	for _, l := range labels {
		if l.Name == "version" {
			got = l.Value
		}
	}
	if got != hairy {
		t.Fatalf("label value round trip: %q != %q", got, hairy)
	}
}

func TestParsePrometheusExtremeBucketBounds(t *testing.T) {
	r := NewRegistry()
	SetEnabled(true)
	h := r.Histogram("wide.seconds", []float64{1e-9, 1e300, math.Inf(1)})
	h.Observe(0.5)
	h.Observe(math.MaxFloat64)
	series, err := r.SeriesSnapshot()
	if err != nil {
		t.Fatalf("extreme bounds failed to round trip: %v", err)
	}
	// The explicit +Inf bound must fold into the synthetic one, not
	// duplicate it.
	if got := series[`wide_seconds_bucket{le="+Inf"}`]; got != 2 {
		t.Fatalf("+Inf bucket = %v, want 2 (series: %v)", got, series)
	}
	if got := series[`wide_seconds_bucket{le="1e+300"}`]; got != 1 {
		t.Fatalf("1e+300 bucket = %v, want 1 (series: %v)", got, series)
	}
}

func TestParsePrometheusMalformedLabelPositions(t *testing.T) {
	cases := map[string]string{
		`m{le="0.1} 1`:               "unterminated label value",
		`m{le=0.1} 1`:                `expected '"'`,
		`m{le="a\q"} 1`:              "unknown escape",
		`m{=\"x\"} 1`:                "invalid label name",
		`m{a="1"b="2"} 1`:            "expected ',' or '}'",
		`m{a="1",} 1x`:               "bad value",
		`m{a="1"} 1 notatime`:        "not a timestamp",
		`m{a="1"`:                    "expected ',' or '}'",
		`m{`:                         "unterminated label set",
		"m{a=\"1\"} 1\nm{a=\"1\"} 2": "duplicate series",
	}
	for in, wantMsg := range cases {
		_, err := ParsePrometheus(strings.NewReader(in))
		if err == nil {
			t.Errorf("ParsePrometheus accepted %q", in)
			continue
		}
		if !strings.Contains(err.Error(), wantMsg) {
			t.Errorf("ParsePrometheus(%q) error %q, want mention of %q", in, err, wantMsg)
		}
		if !strings.Contains(err.Error(), "line ") || !strings.Contains(err.Error(), "col ") {
			t.Errorf("ParsePrometheus(%q) error %q carries no position", in, err)
		}
	}
	// Timestamps are tolerated; escapes decode; label order canonicalizes.
	series, err := ParsePrometheus(strings.NewReader(
		"m{b=\"2\",a=\"1\"} 4 1712345678\nesc{v=\"a\\\\b\\nc\\\"d\"} 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if series[`m{a="1",b="2"}`] != 4 {
		t.Fatalf("canonical label order: %v", series)
	}
	if series[`esc{v="a\\b\nc\"d"}`] != 1 {
		t.Fatalf("escape canonicalization: %v", series)
	}
}

func TestParsePrometheusRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_value_here\n",
		"name 1 2 trailing\nname\n",
		"bad name{ 1\n",
		"9leading_digit 1\n",
		"dup 1\ndup 2\n",
		"name{le=\"unterminated 1\n",
	} {
		if _, err := ParsePrometheus(strings.NewReader(bad)); err == nil {
			t.Errorf("ParsePrometheus accepted %q", bad)
		}
	}
	// Valid corner cases parse.
	ok := "# HELP x y\n# TYPE x counter\nx_total 5\ng NaN\nh_bucket{le=\"+Inf\"} 0\n"
	series, err := ParsePrometheus(strings.NewReader(ok))
	if err != nil {
		t.Fatal(err)
	}
	if series["x_total"] != 5 || !math.IsNaN(series["g"]) {
		t.Fatalf("parsed %v", series)
	}
}
