package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceStagesTileTotal(t *testing.T) {
	tr := NewTrace()
	if len(tr.ID) != 16 {
		t.Fatalf("trace id %q, want 16 hex chars", tr.ID)
	}
	tr.Mark("admission")
	time.Sleep(2 * time.Millisecond)
	tr.Mark("queue.wait")
	tr.Mark("forward")

	stages := tr.Stages()
	if len(stages) != 3 {
		t.Fatalf("stages = %+v", stages)
	}
	var sum float64
	for _, s := range stages {
		if s.Us < 0 {
			t.Fatalf("negative stage duration: %+v", s)
		}
		sum += s.Us
	}
	total := float64(tr.Total().Nanoseconds()) / 1e3
	if diff := sum - total; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("stage sum %.3fus != total %.3fus", sum, total)
	}
}

func TestTraceMarkAtClampsBackwards(t *testing.T) {
	tr := NewTrace()
	tr.Mark("a")
	// An end before the previous mark (abandoned-request race) must clamp.
	if d := tr.MarkAt("b", tr.Start.Add(-time.Second)); d != 0 {
		t.Fatalf("backwards MarkAt returned %v, want 0", d)
	}
	if tr.Total() < 0 {
		t.Fatalf("negative total %v", tr.Total())
	}
}

func TestTraceIDsUnique(t *testing.T) {
	const n = 4096
	seen := make(map[string]bool, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids := make([]string, 0, n/8)
			for i := 0; i < n/8; i++ {
				ids = append(ids, NewTrace().ID)
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range ids {
				if seen[id] {
					t.Errorf("duplicate trace id %s", id)
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
}

func TestTraceFieldsAndSampler(t *testing.T) {
	var buf bytes.Buffer
	sink := NewSink(&buf)
	s := NewTraceSampler(0.5, sink) // every 2nd
	if s.Every() != 2 {
		t.Fatalf("every = %d, want 2", s.Every())
	}
	emitted := 0
	for i := 0; i < 10; i++ {
		tr := NewTrace()
		tr.Mark("forward")
		tr.Annotate("batch_size", 4)
		tr.Annotate("flush", "deadline")
		if s.Sample() {
			if err := s.Emit(tr); err != nil {
				t.Fatal(err)
			}
			emitted++
		}
	}
	if emitted != 5 {
		t.Fatalf("emitted %d traces at rate 0.5 over 10, want 5", emitted)
	}
	// Emission is asynchronous; Close drains the queue into the sink.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Dropped() != 0 {
		t.Fatalf("dropped %d traces with an idle queue", s.Dropped())
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		var rec struct {
			Event   string       `json:"event"`
			TraceID string       `json:"trace_id"`
			TotalUs float64      `json:"total_us"`
			Stages  []TraceStage `json:"stages"`
			Batch   int          `json:"batch_size"`
			Flush   string       `json:"flush"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		if rec.Event != "trace" || len(rec.TraceID) != 16 || len(rec.Stages) != 1 ||
			rec.Stages[0].Name != "forward" || rec.Batch != 4 || rec.Flush != "deadline" {
			t.Fatalf("trace event: %+v", rec)
		}
	}
	if lines != 5 {
		t.Fatalf("%d JSONL lines, want 5", lines)
	}

	// Disabled samplers are nil-safe no-ops.
	var off *TraceSampler
	if off.Sample() || off.Emit(NewTrace()) != nil || off.Every() != 0 ||
		off.Close() != nil || off.Dropped() != 0 {
		t.Fatal("nil sampler must be inert")
	}
	if NewTraceSampler(0, sink) != nil || NewTraceSampler(1.5, sink) != nil || NewTraceSampler(0.5, nil) != nil {
		t.Fatal("invalid sampler configs must return nil")
	}
}

// The abandoned-request race: the HTTP goroutine gives up (marks "write")
// while a worker is still marking engine stages. Must be race-free (run
// under -race) and never produce negative durations.
func TestTraceConcurrentMarks(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if g%2 == 0 {
					tr.Mark("worker")
				} else {
					tr.Annotate("k", g)
					tr.MarkAt("write", time.Now())
				}
			}
		}(g)
	}
	wg.Wait()
	for _, s := range tr.Stages() {
		if s.Us < 0 {
			t.Fatalf("negative duration %+v", s)
		}
	}
	if !strings.Contains("worker write", tr.Stages()[0].Name) {
		t.Fatalf("unexpected stage %q", tr.Stages()[0].Name)
	}
}
