package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// JSONSnapshot is one peer's fetched JSON status document (a /healthz or
// /drift body): the instance label identifying the peer, the decoded
// top-level object, and the fetch or decode error if the peer was
// unreachable or answered garbage (Doc is nil in that case).
type JSONSnapshot struct {
	Instance string
	Doc      map[string]any
	Err      error
}

// GatherJSON fetches each URL concurrently and decodes a single top-level
// JSON object per target, returning one JSONSnapshot per URL in input order.
// It is the status-endpoint sibling of GatherRemote and shares its scrape
// client: a nil client uses the same 5s-timeout default, so fleet health
// semantics (timeouts, per-peer error isolation) cannot diverge between the
// fleetstat table, the cluster health prober, and the rollout controller.
// Errors are reported per snapshot, never returned.
func GatherJSON(ctx context.Context, client *http.Client, urls []string) []JSONSnapshot {
	if client == nil {
		client = federateClient
	}
	snaps := make([]JSONSnapshot, len(urls))
	var wg sync.WaitGroup
	wg.Add(len(urls))
	for i, target := range urls {
		go func(i int, target string) {
			defer wg.Done()
			snaps[i] = JSONSnapshot{Instance: instanceLabel(target)}
			snaps[i].Doc, snaps[i].Err = FetchJSON(ctx, client, target)
		}(i, target)
	}
	wg.Wait()
	return snaps
}

// FetchJSON GETs one URL and decodes its body as a JSON object. A nil client
// uses the shared 5s-timeout scrape client. Non-200 statuses, oversized
// bodies (>1 MiB), and malformed JSON are errors.
func FetchJSON(ctx context.Context, client *http.Client, target string) (map[string]any, error) {
	if client == nil {
		client = federateClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Drain a little so the connection can be reused, then report.
		io.CopyN(io.Discard, resp.Body, 4096)
		return nil, fmt.Errorf("obs: fetch %s: status %d", target, resp.StatusCode)
	}
	var doc map[string]any
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&doc); err != nil {
		return nil, fmt.Errorf("obs: fetch %s: %w", target, err)
	}
	return doc, nil
}
