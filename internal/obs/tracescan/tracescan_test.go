package tracescan

import (
	"strings"
	"testing"
)

// jl assembles a JSONL document from lines.
func jl(lines ...string) string { return strings.Join(lines, "\n") + "\n" }

func load(t *testing.T, doc, file string) []Event {
	t.Helper()
	evs, err := Load(strings.NewReader(doc), file)
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

// Router event: 10us route + 5us pick + 100us proxy + 2us relay = 117us e2e.
const routerOK = `{"event":"trace","trace_id":"t1","role":"router","total_us":117,"status":200,` +
	`"attempts":[{"n":1,"replica":"http://a","outcome":"ok","us":100}],` +
	`"stages":[{"stage":"route","us":10},{"stage":"pick","us":5},{"stage":"proxy","us":100},{"stage":"relay","us":2}]}`

// Matched replica span: 90us of replica work under attempt.1 -> 10us network.
const replicaOK = `{"event":"trace","trace_id":"t1","role":"replica","parent":"t1/attempt.1","total_us":90,` +
	`"stages":[{"stage":"admission","us":1},{"stage":"queue.wait","us":9},{"stage":"forward","us":75},{"stage":"write","us":5}]}`

func TestLoadSkipsForeignEvents(t *testing.T) {
	doc := jl(
		`{"event":"rollout.start","path":"m.bin"}`,
		``,
		routerOK,
		`{"event":"slo.transition","objective":"x"}`,
		replicaOK,
	)
	evs := load(t, doc, "mixed.jsonl")
	if len(evs) != 2 {
		t.Fatalf("want 2 trace events, got %d", len(evs))
	}
	if evs[0].Role != "router" || evs[1].Role != "replica" {
		t.Fatalf("roles = %s,%s", evs[0].Role, evs[1].Role)
	}
	if evs[0].File != "mixed.jsonl" {
		t.Fatalf("file provenance lost: %q", evs[0].File)
	}
	if _, err := Load(strings.NewReader("{broken\n"), "bad.jsonl"); err == nil {
		t.Fatal("malformed JSONL must error, not shrink the report")
	}
}

func TestLoadInfersRoleFromAttempts(t *testing.T) {
	doc := jl(
		`{"event":"trace","trace_id":"x","total_us":5,"attempts":[{"n":1,"replica":"r","outcome":"ok","us":4}],"stages":[{"stage":"proxy","us":5}]}`,
		`{"event":"trace","trace_id":"x","total_us":4,"stages":[{"stage":"forward","us":4}]}`,
	)
	evs := load(t, doc, "old.jsonl")
	if evs[0].Role != "router" || evs[1].Role != "replica" {
		t.Fatalf("inferred roles = %s,%s", evs[0].Role, evs[1].Role)
	}
}

func TestAssembleJoinsAndTiles(t *testing.T) {
	evs := load(t, jl(routerOK, replicaOK), "f.jsonl")
	traces, orphans := Assemble(evs, 50)
	if len(traces) != 1 || orphans != 0 {
		t.Fatalf("traces=%d orphans=%d", len(traces), orphans)
	}
	tr := traces[0]
	if !tr.TilingOK || tr.TilingErrUs > 0.01 {
		t.Fatalf("tiling: ok=%v err=%v", tr.TilingOK, tr.TilingErrUs)
	}
	if tr.TotalUs != 117 || tr.ProxyUs != 100 || tr.ReplicaUs != 90 || tr.NetworkUs != 10 {
		t.Fatalf("decomposition: %+v", tr)
	}
	if tr.Attempts != 1 || tr.Failovers != 0 || tr.Status != 200 {
		t.Fatalf("metadata: %+v", tr)
	}
}

func TestAssembleFlagsBrokenTiling(t *testing.T) {
	// Stage sum 80 != total 117: the invariant broke upstream.
	bad := `{"event":"trace","trace_id":"t2","role":"router","total_us":117,` +
		`"stages":[{"stage":"route","us":10},{"stage":"proxy","us":70}]}`
	traces, _ := Assemble(load(t, jl(bad), "f"), 50)
	if traces[0].TilingOK {
		t.Fatal("stage sum 37us short of total must flag the trace")
	}
	if traces[0].TilingErrUs != 37 {
		t.Fatalf("tiling err = %v, want 37", traces[0].TilingErrUs)
	}
}

func TestAssembleFlagsClockSkew(t *testing.T) {
	// Replica claims 160us inside a 100us proxy window: 60us of skew.
	skewed := strings.Replace(replicaOK, `"total_us":90`, `"total_us":160`, 1)
	traces, _ := Assemble(load(t, jl(routerOK, skewed), "f"), 50)
	tr := traces[0]
	if tr.TilingOK || tr.SkewUs != 60 {
		t.Fatalf("skew 60us over a 50us tolerance must flag: ok=%v skew=%v", tr.TilingOK, tr.SkewUs)
	}
	// The same overshoot inside a generous tolerance passes.
	traces, _ = Assemble(load(t, jl(routerOK, skewed), "f"), 100)
	if !traces[0].TilingOK {
		t.Fatal("skew within tolerance must pass")
	}
}

func TestAssembleCountsOrphans(t *testing.T) {
	orphan := strings.Replace(replicaOK, `"trace_id":"t1"`, `"trace_id":"zz"`, 1)
	traces, orphans := Assemble(load(t, jl(routerOK, orphan), "f"), 50)
	if len(traces) != 1 || orphans != 1 {
		t.Fatalf("traces=%d orphans=%d", len(traces), orphans)
	}
}

func TestAssembleMatchesReplicaByParent(t *testing.T) {
	// Failover: attempt.1 rejected (replica A sampled its rejection, short
	// span), attempt.2 ok on replica B. The parent match must pick B even
	// though A's event arrives first.
	router := `{"event":"trace","trace_id":"t3","role":"router","total_us":210,"status":200,"failovers":1,` +
		`"attempts":[{"n":1,"replica":"http://a","outcome":"rejected_503","us":40},{"n":2,"replica":"http://b","outcome":"ok","us":160}],` +
		`"stages":[{"stage":"route","us":5},{"stage":"pick","us":3},{"stage":"attempt.1","us":40},{"stage":"proxy","us":160},{"stage":"relay","us":2}]}`
	repA := `{"event":"trace","trace_id":"t3","role":"replica","parent":"t3/attempt.1","total_us":35,"stages":[{"stage":"admission","us":35}]}`
	repB := `{"event":"trace","trace_id":"t3","role":"replica","parent":"t3/attempt.2","total_us":150,"stages":[{"stage":"forward","us":150}]}`
	traces, _ := Assemble(load(t, jl(router, repA, repB), "f"), 50)
	tr := traces[0]
	if tr.ReplicaUs != 150 || tr.NetworkUs != 10 {
		t.Fatalf("parent match failed: replica=%v network=%v", tr.ReplicaUs, tr.NetworkUs)
	}
	if tr.Failovers != 1 || tr.Attempts != 2 {
		t.Fatalf("amplification lost: %+v", tr)
	}
	if !tr.TilingOK {
		t.Fatalf("tiled failover trace flagged: err=%v skew=%v", tr.TilingErrUs, tr.SkewUs)
	}
}

func TestBuildReport(t *testing.T) {
	router2 := `{"event":"trace","trace_id":"t4","role":"router","total_us":500,"status":200,"failovers":1,` +
		`"attempts":[{"n":1,"replica":"http://a","outcome":"unreachable","us":100},{"n":2,"replica":"http://b","outcome":"ok","us":380}],` +
		`"stages":[{"stage":"route","us":8},{"stage":"pick","us":4},{"stage":"attempt.1","us":100},{"stage":"proxy","us":380},{"stage":"relay","us":8}]}`
	rep2 := `{"event":"trace","trace_id":"t4","role":"replica","parent":"t4/attempt.2","total_us":360,` +
		`"stages":[{"stage":"forward","us":360}]}`
	evs := load(t, jl(routerOK, replicaOK, router2, rep2), "f.jsonl")
	rep := BuildReport(evs, 50, 1)

	if rep.Traces != 2 || rep.Joined != 2 || rep.Orphans != 0 || rep.TilingViolations != 0 {
		t.Fatalf("summary: %+v", rep)
	}
	// attempt.1 normalizes into one "attempt" series.
	var sawAttempt bool
	for _, s := range rep.RouterStages {
		if s.Name == "attempt" && s.Count == 1 {
			sawAttempt = true
		}
		if strings.Contains(s.Name, "attempt.") {
			t.Fatalf("unnormalized stage %q", s.Name)
		}
	}
	if !sawAttempt {
		t.Fatalf("attempt series missing: %+v", rep.RouterStages)
	}
	if rep.Amplification.MaxAttempts != 2 || rep.Amplification.FailoverRate != 0.5 {
		t.Fatalf("amplification: %+v", rep.Amplification)
	}
	if rep.Amplification.ByOutcome["ok"] != 2 || rep.Amplification.ByOutcome["unreachable"] != 1 {
		t.Fatalf("outcomes: %+v", rep.Amplification.ByOutcome)
	}
	if len(rep.Slow) != 1 || rep.Slow[0].TraceID != "t4" || rep.Slow[0].TotalUs != 500 {
		t.Fatalf("slow table: %+v", rep.Slow)
	}
	// t4's biggest cross-process cost is the replica's 360us forward.
	if rep.Slow[0].TopStage != "forward" {
		t.Fatalf("top stage = %q, want forward", rep.Slow[0].TopStage)
	}

	var sb strings.Builder
	rep.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"2 traces", "amplification", "slowest 1 traces", "forward", "network"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text report missing %q:\n%s", want, out)
		}
	}
}
