// Package tracescan assembles sampled JSONL trace logs from a cardnet fleet
// — the router's and every replica's — into end-to-end cross-process traces,
// and reports where the time went.
//
// The join key is the fleet trace ID: the router mints (or adopts) one per
// request, stamps it on X-Trace-Id, and forwards it with an attempt-span
// parent (X-Trace-Parent: <id>/attempt.N); each replica opens its own stage
// trace under that ID. One assembled trace therefore holds one router event
// (stages route → pick → attempt.N* → proxy → relay, tiled to its e2e by
// construction) and the replica events that served its attempts (stages
// admission → … → write, tiled to the replica-observed total). The gap
// between the router's proxy stage and the matched replica's total is the
// network/stack time between the two processes.
//
// Assembly also verifies the tiling invariant survived serialization: a
// router event's stages must sum to its total, and a replica must not
// observe more time than the router attributed to proxying it (beyond a
// configurable clock-skew tolerance).
package tracescan

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Stage is one tiled pipeline stage of a trace event.
type Stage struct {
	Name string  `json:"stage"`
	Us   float64 `json:"us"`
}

// Attempt is one router forward attempt (the retry/failover amplification
// record).
type Attempt struct {
	N       int     `json:"n"`
	Replica string  `json:"replica"`
	Outcome string  `json:"outcome"` // ok | rejected_503 | unreachable | deadline
	Us      float64 `json:"us"`
}

// Event is one JSONL trace line as emitted by obs.TraceSampler: one process's
// view of one request.
type Event struct {
	TS        string    `json:"ts"`
	Event     string    `json:"event"`
	TraceID   string    `json:"trace_id"`
	Role      string    `json:"role"` // router | replica
	Parent    string    `json:"parent,omitempty"`
	TotalUs   float64   `json:"total_us"`
	Status    int       `json:"status,omitempty"`
	Failovers int       `json:"failovers,omitempty"`
	Stages    []Stage   `json:"stages"`
	Attempts  []Attempt `json:"attempts,omitempty"`
	File      string    `json:"file,omitempty"` // provenance, set by Load
}

// StageSum returns the sum of the event's stage durations (µs).
func (e *Event) StageSum() float64 {
	var s float64
	for _, st := range e.Stages {
		s += st.Us
	}
	return s
}

// Load reads trace events from one JSONL stream, skipping non-trace events
// (rollout journal lines, SLO transitions, and blank lines share sinks in
// some deployments). Malformed JSON is an error: a corrupt trace log should
// fail loudly, not silently shrink the report.
func Load(r io.Reader, file string) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var out []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("tracescan: %s:%d: %w", file, lineNo, err)
		}
		if ev.Event != "trace" || ev.TraceID == "" {
			continue
		}
		if ev.Role == "" { // pre-propagation logs: routers carry attempts
			if len(ev.Attempts) > 0 {
				ev.Role = "router"
			} else {
				ev.Role = "replica"
			}
		}
		ev.File = file
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tracescan: %s: %w", file, err)
	}
	return out, nil
}

// LoadFiles loads and concatenates trace events from the given paths.
func LoadFiles(paths []string) ([]Event, error) {
	var all []Event
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, fmt.Errorf("tracescan: %w", err)
		}
		evs, err := Load(f, p)
		f.Close()
		if err != nil {
			return nil, err
		}
		all = append(all, evs...)
	}
	return all, nil
}

// Trace is one assembled end-to-end request: the router's view plus the
// replica views joined on the fleet trace ID.
type Trace struct {
	ID       string   `json:"trace_id"`
	Router   *Event   `json:"router,omitempty"`
	Replicas []*Event `json:"replicas,omitempty"`

	TotalUs   float64 `json:"total_us"` // router-observed e2e
	ProxyUs   float64 `json:"proxy_us"` // router's successful-attempt stage
	ReplicaUs float64 `json:"replica_us,omitempty"`
	NetworkUs float64 `json:"network_us,omitempty"` // ProxyUs − matched replica total
	Attempts  int     `json:"attempts"`
	Failovers int     `json:"failovers"`
	Status    int     `json:"status"`

	// TilingErrUs is |Σ router stages − router total|: zero by construction,
	// nonzero only if serialization or a code change broke the invariant.
	TilingErrUs float64 `json:"tiling_err_us"`
	// SkewUs is how far the matched replica overshot the router's proxy
	// window (max(0, −NetworkUs)); beyond the tolerance it's a violation.
	SkewUs   float64 `json:"skew_us"`
	TilingOK bool    `json:"tiling_ok"`
}

// tilingEpsUs bounds float accumulation noise when re-summing stages that
// tiled exactly in nanoseconds before JSON marshaling.
const tilingEpsUs = 0.5

// Assemble joins events into traces. skewUs is the clock-skew tolerance: a
// replica may appear up to this much slower than the router's proxy stage
// before the trace is flagged. Returned traces all have a router event;
// orphans counts replica events whose trace ID no router event claimed.
func Assemble(events []Event, skewUs float64) (traces []*Trace, orphans int) {
	byID := make(map[string]*Trace)
	var order []string
	for i := range events {
		ev := &events[i]
		tr := byID[ev.TraceID]
		if tr == nil {
			tr = &Trace{ID: ev.TraceID}
			byID[ev.TraceID] = tr
			order = append(order, ev.TraceID)
		}
		if ev.Role == "router" {
			tr.Router = ev
		} else {
			tr.Replicas = append(tr.Replicas, ev)
		}
	}
	for _, id := range order {
		tr := byID[id]
		if tr.Router == nil {
			orphans += len(tr.Replicas)
			continue
		}
		rt := tr.Router
		tr.TotalUs = rt.TotalUs
		tr.Status = rt.Status
		tr.Failovers = rt.Failovers
		tr.Attempts = len(rt.Attempts) // zero on paths that never forwarded
		for _, st := range rt.Stages {
			if st.Name == "proxy" {
				tr.ProxyUs = st.Us
			}
		}
		tr.TilingErrUs = abs(rt.StageSum() - rt.TotalUs)
		tr.TilingOK = tr.TilingErrUs <= tilingEpsUs
		if rep := tr.matchReplica(); rep != nil {
			tr.ReplicaUs = rep.TotalUs
			tr.NetworkUs = tr.ProxyUs - rep.TotalUs
			if tr.NetworkUs < 0 {
				tr.SkewUs = -tr.NetworkUs
				if tr.SkewUs > skewUs {
					tr.TilingOK = false
				}
			}
		}
		traces = append(traces, tr)
	}
	sort.Slice(traces, func(i, j int) bool { return traces[i].ID < traces[j].ID })
	return traces, orphans
}

// matchReplica picks the replica event that served the successful attempt:
// by parent span when the replica recorded one, else the replica with the
// largest observed total (the one that did the work).
func (tr *Trace) matchReplica() *Event {
	okParent := ""
	for _, a := range tr.Router.Attempts {
		if a.Outcome == "ok" {
			okParent = tr.ID + "/attempt." + itoa(a.N)
		}
	}
	var best *Event
	for _, rep := range tr.Replicas {
		if okParent != "" && rep.Parent == okParent {
			return rep
		}
		if best == nil || rep.TotalUs > best.TotalUs {
			best = rep
		}
	}
	if okParent != "" && best == nil {
		return nil
	}
	return best
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
