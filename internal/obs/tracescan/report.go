package tracescan

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// StageStats is the fleet-wide latency attribution of one stage across all
// events that recorded it (µs). Share is the stage's mean fraction of its
// own trace's end-to-end time — the critical-path weight.
type StageStats struct {
	Name  string  `json:"stage"`
	Count int     `json:"count"`
	P50   float64 `json:"p50_us"`
	P95   float64 `json:"p95_us"`
	P99   float64 `json:"p99_us"`
	Max   float64 `json:"max_us"`
	Share float64 `json:"share"`
}

// Amplification summarizes retry/failover fan-out: how many forward
// attempts a request cost, and why the extra ones happened.
type Amplification struct {
	MeanAttempts float64        `json:"mean_attempts"`
	MaxAttempts  int            `json:"max_attempts"`
	FailoverRate float64        `json:"failover_rate"` // traces with ≥1 failover
	ByOutcome    map[string]int `json:"by_outcome"`
}

// SlowTrace is one row of the top-N slow-trace table.
type SlowTrace struct {
	TraceID    string  `json:"trace_id"`
	TotalUs    float64 `json:"total_us"`
	Status     int     `json:"status"`
	Attempts   int     `json:"attempts"`
	TopStage   string  `json:"top_stage"`
	TopStageUs float64 `json:"top_stage_us"`
	File       string  `json:"file"`
}

// Report is the machine-readable output of one tracescan run.
type Report struct {
	Files            []string `json:"files"`
	Events           int      `json:"events"`
	Traces           int      `json:"traces"` // assembled (router event present)
	Joined           int      `json:"joined"` // traces with ≥1 replica event
	Orphans          int      `json:"orphans"`
	TilingViolations int      `json:"tiling_violations"`
	MaxTilingErrUs   float64  `json:"max_tiling_err_us"`
	MaxSkewUs        float64  `json:"max_skew_us"`

	RouterStages  []StageStats  `json:"router_stages"`
	ReplicaStages []StageStats  `json:"replica_stages"`
	Network       StageStats    `json:"network"`
	Amplification Amplification `json:"amplification"`
	Slow          []SlowTrace   `json:"slow_traces"`
}

// normalizeStage folds numbered attempt spans into one series so a request
// with three failovers doesn't mint three stage names.
func normalizeStage(name string) string {
	if s, _, ok := strings.Cut(name, "."); ok && s == "attempt" {
		return "attempt"
	}
	return name
}

// BuildReport assembles events (with the given skew tolerance, µs) and
// computes fleet attribution, amplification, and the top-N slow traces.
func BuildReport(events []Event, skewUs float64, topN int) *Report {
	traces, orphans := Assemble(events, skewUs)
	rep := &Report{Events: len(events), Traces: len(traces), Orphans: orphans}

	seenFiles := map[string]bool{}
	for _, ev := range events {
		if ev.File != "" && !seenFiles[ev.File] {
			seenFiles[ev.File] = true
			rep.Files = append(rep.Files, ev.File)
		}
	}
	sort.Strings(rep.Files)

	type acc struct {
		vals   []float64
		shares []float64
	}
	routerAcc := map[string]*acc{}
	replicaAcc := map[string]*acc{}
	var netAcc acc
	var attempts []float64
	byOutcome := map[string]int{}
	failovers := 0

	collect := func(m map[string]*acc, ev *Event) {
		for _, st := range ev.Stages {
			name := normalizeStage(st.Name)
			a := m[name]
			if a == nil {
				a = &acc{}
				m[name] = a
			}
			a.vals = append(a.vals, st.Us)
			if ev.TotalUs > 0 {
				a.shares = append(a.shares, st.Us/ev.TotalUs)
			}
		}
	}

	for _, tr := range traces {
		collect(routerAcc, tr.Router)
		for _, rp := range tr.Replicas {
			collect(replicaAcc, rp)
		}
		if len(tr.Replicas) > 0 {
			rep.Joined++
			netAcc.vals = append(netAcc.vals, tr.NetworkUs)
			if tr.TotalUs > 0 {
				netAcc.shares = append(netAcc.shares, tr.NetworkUs/tr.TotalUs)
			}
		}
		if !tr.TilingOK {
			rep.TilingViolations++
		}
		if tr.TilingErrUs > rep.MaxTilingErrUs {
			rep.MaxTilingErrUs = tr.TilingErrUs
		}
		if tr.SkewUs > rep.MaxSkewUs {
			rep.MaxSkewUs = tr.SkewUs
		}
		if tr.Attempts > 0 {
			attempts = append(attempts, float64(tr.Attempts))
			if tr.Attempts > rep.Amplification.MaxAttempts {
				rep.Amplification.MaxAttempts = tr.Attempts
			}
		}
		if tr.Failovers > 0 {
			failovers++
		}
		for _, a := range tr.Router.Attempts {
			byOutcome[a.Outcome]++
		}
	}

	stats := func(name string, a *acc) StageStats {
		s := StageStats{Name: name, Count: len(a.vals)}
		if len(a.vals) == 0 {
			return s
		}
		vs := append([]float64(nil), a.vals...)
		sort.Float64s(vs)
		s.P50, s.P95, s.P99 = quantile(vs, 0.50), quantile(vs, 0.95), quantile(vs, 0.99)
		s.Max = vs[len(vs)-1]
		for _, sh := range a.shares {
			s.Share += sh
		}
		if len(a.shares) > 0 {
			s.Share /= float64(len(a.shares))
		}
		return s
	}
	flatten := func(m map[string]*acc) []StageStats {
		out := make([]StageStats, 0, len(m))
		for name, a := range m {
			out = append(out, stats(name, a))
		}
		// Critical-path order: biggest mean share of e2e first.
		sort.Slice(out, func(i, j int) bool {
			if out[i].Share != out[j].Share {
				return out[i].Share > out[j].Share
			}
			return out[i].Name < out[j].Name
		})
		return out
	}
	rep.RouterStages = flatten(routerAcc)
	rep.ReplicaStages = flatten(replicaAcc)
	rep.Network = stats("network", &netAcc)

	for _, a := range attempts {
		rep.Amplification.MeanAttempts += a
	}
	if len(attempts) > 0 {
		rep.Amplification.MeanAttempts /= float64(len(attempts))
	}
	if len(traces) > 0 {
		rep.Amplification.FailoverRate = float64(failovers) / float64(len(traces))
	}
	rep.Amplification.ByOutcome = byOutcome

	slow := append([]*Trace(nil), traces...)
	sort.Slice(slow, func(i, j int) bool { return slow[i].TotalUs > slow[j].TotalUs })
	if topN > 0 && len(slow) > topN {
		slow = slow[:topN]
	}
	for _, tr := range slow {
		row := SlowTrace{
			TraceID:  tr.ID,
			TotalUs:  tr.TotalUs,
			Status:   tr.Status,
			Attempts: tr.Attempts,
			File:     tr.Router.File,
		}
		// The top stage spans both processes: compare router stages (with the
		// proxy stage replaced by network time) against replica stages.
		consider := func(name string, us float64) {
			if us > row.TopStageUs {
				row.TopStage, row.TopStageUs = name, us
			}
		}
		for _, st := range tr.Router.Stages {
			name, us := normalizeStage(st.Name), st.Us
			if name == "proxy" && len(tr.Replicas) > 0 {
				name, us = "network", tr.NetworkUs
			}
			consider(name, us)
		}
		for _, rp := range tr.Replicas {
			for _, st := range rp.Stages {
				consider(normalizeStage(st.Name), st.Us)
			}
		}
		rep.Slow = append(rep.Slow, row)
	}
	return rep
}

// quantile reads quantile q from sorted vs (nearest-rank).
func quantile(vs []float64, q float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	i := int(q*float64(len(vs)) + 0.5)
	if i < 1 {
		i = 1
	}
	if i > len(vs) {
		i = len(vs)
	}
	return vs[i-1]
}

// WriteText renders the report for humans: assembly summary, per-process
// critical-path tables, amplification, and the slow-trace table.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "tracescan: %d events from %d file(s) -> %d traces (%d joined cross-process, %d orphan replica spans)\n",
		r.Events, len(r.Files), r.Traces, r.Joined, r.Orphans)
	fmt.Fprintf(w, "tiling: %d violation(s), max stage-sum error %.3fus, max clock skew %.3fus\n",
		r.TilingViolations, r.MaxTilingErrUs, r.MaxSkewUs)

	writeStages := func(title string, stages []StageStats) {
		if len(stages) == 0 {
			return
		}
		fmt.Fprintf(w, "\n%s (critical-path order)\n", title)
		fmt.Fprintf(w, "  %-12s %8s %12s %12s %12s %12s %7s\n", "stage", "count", "p50(us)", "p95(us)", "p99(us)", "max(us)", "share")
		for _, s := range stages {
			fmt.Fprintf(w, "  %-12s %8d %12.1f %12.1f %12.1f %12.1f %6.1f%%\n",
				s.Name, s.Count, s.P50, s.P95, s.P99, s.Max, 100*s.Share)
		}
	}
	writeStages("router stages", r.RouterStages)
	writeStages("replica stages", r.ReplicaStages)
	if r.Network.Count > 0 {
		fmt.Fprintf(w, "\nnetwork (router proxy - replica total): p50 %.1fus p95 %.1fus p99 %.1fus share %.1f%%\n",
			r.Network.P50, r.Network.P95, r.Network.P99, 100*r.Network.Share)
	}

	a := r.Amplification
	fmt.Fprintf(w, "\namplification: mean %.2f attempts/request, max %d, failover rate %.1f%%\n",
		a.MeanAttempts, a.MaxAttempts, 100*a.FailoverRate)
	if len(a.ByOutcome) > 0 {
		keys := make([]string, 0, len(a.ByOutcome))
		for k := range a.ByOutcome {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprint(w, "  outcomes:")
		for _, k := range keys {
			fmt.Fprintf(w, " %s=%d", k, a.ByOutcome[k])
		}
		fmt.Fprintln(w)
	}

	if len(r.Slow) > 0 {
		fmt.Fprintf(w, "\nslowest %d traces\n", len(r.Slow))
		fmt.Fprintf(w, "  %-16s %12s %6s %8s %-12s %12s\n", "trace", "total(us)", "status", "attempts", "top stage", "(us)")
		for _, s := range r.Slow {
			fmt.Fprintf(w, "  %-16s %12.1f %6d %8d %-12s %12.1f\n",
				s.TraceID, s.TotalUs, s.Status, s.Attempts, s.TopStage, s.TopStageUs)
		}
	}
}
