package obs

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// newPeer serves a registry's Prometheus exposition like `cardnet serve`
// /metrics does.
func newPeer(t *testing.T, r *Registry) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		r.WritePrometheus(w)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestGatherRemoteAndWriteFederated(t *testing.T) {
	SetEnabled(true)
	r1 := NewRegistry()
	r1.Counter("serving.requests").Add(10)
	r1.Histogram("serving.e2e.seconds", []float64{0.01, 0.1}).Observe(0.05)
	r1.SetInfo("cardnet.build.info", Label{Name: "version", Value: "v1"})
	r2 := NewRegistry()
	r2.Counter("serving.requests").Add(99)
	r2.Gauge("runtime.goroutines").Set(12)

	p1, p2 := newPeer(t, r1), newPeer(t, r2)
	urls := []string{p1.URL + "/metrics", p2.URL + "/metrics", "http://127.0.0.1:1/metrics"}
	snaps := GatherRemote(context.Background(), nil, urls)
	if len(snaps) != 3 {
		t.Fatalf("got %d snapshots", len(snaps))
	}
	if snaps[0].Err != nil || snaps[1].Err != nil {
		t.Fatalf("live peers errored: %v / %v", snaps[0].Err, snaps[1].Err)
	}
	if snaps[2].Err == nil {
		t.Fatal("dead peer scraped without error")
	}

	var buf bytes.Buffer
	if err := WriteFederated(&buf, snaps); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	// Acceptance criterion: federation output re-parses cleanly.
	series, err := ParsePrometheus(strings.NewReader(out))
	if err != nil {
		t.Fatalf("federated output failed to re-parse: %v\n%s", err, out)
	}

	inst1, inst2 := snaps[0].Instance, snaps[1].Instance
	if inst1 == inst2 {
		t.Fatalf("instances collide: %q", inst1)
	}
	if got := series[`serving_requests_total{instance="`+inst1+`"}`]; got != 10 {
		t.Fatalf("peer1 counter = %v in %v", got, series)
	}
	if got := series[`serving_requests_total{instance="`+inst2+`"}`]; got != 99 {
		t.Fatalf("peer2 counter = %v", got)
	}
	// Multi-label series keep their labels plus the instance.
	if got := series[FormatSeries("serving_e2e_seconds_bucket",
		[]Label{{Name: "le", Value: "0.1"}, {Name: "instance", Value: inst1}})]; got != 1 {
		t.Fatalf("bucket series lost labels: %v", series)
	}
	if got := series[FormatSeries("cardnet_build_info",
		[]Label{{Name: "version", Value: "v1"}, {Name: "instance", Value: inst1}})]; got != 1 {
		t.Fatalf("info series not federated: %v", series)
	}
	// Per-peer liveness.
	for i, want := range []float64{1, 1, 0} {
		id := FormatSeries("federate_up", []Label{{Name: "instance", Value: snaps[i].Instance}})
		if got := series[id]; got != want {
			t.Fatalf("%s = %v, want %v", id, got, want)
		}
	}
}

func TestWriteFederatedRenamesNestedInstance(t *testing.T) {
	snap := RemoteSnapshot{
		Instance: "router:9000",
		Series: map[string]float64{
			FormatSeries("qps", []Label{{Name: "instance", Value: "inner:8089"}}): 7,
		},
	}
	var buf bytes.Buffer
	if err := WriteFederated(&buf, []RemoteSnapshot{snap}); err != nil {
		t.Fatal(err)
	}
	series, err := ParsePrometheus(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	want := FormatSeries("qps", []Label{
		{Name: "exported_instance", Value: "inner:8089"},
		{Name: "instance", Value: "router:9000"}})
	if series[want] != 7 {
		t.Fatalf("nested instance not renamed: %v", series)
	}
}

func TestSeriesSnapshotMatchesWriter(t *testing.T) {
	series, err := promFixture().SeriesSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if series["serving_requests_total"] != 42 || series["serving_queue_depth"] != 3.5 {
		t.Fatalf("snapshot drifted: %v", series)
	}
}
