package profcap

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"cardnet/internal/obs"
)

func fastCapturer(t *testing.T, reg *obs.Registry, retain int) *Capturer {
	t.Helper()
	c, err := New(Config{
		Dir:         t.TempDir(),
		Retain:      retain,
		Cooldown:    time.Nanosecond,
		CPUDuration: 10 * time.Millisecond,
		Registry:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func listProfiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names
}

func TestCaptureWritesReadablePair(t *testing.T) {
	obs.SetEnabled(true)
	reg := obs.NewRegistry()
	c := fastCapturer(t, reg, 4)
	c.Trigger("page")
	c.Wait()

	names := listProfiles(t, c.cfg.Dir)
	if len(names) != 2 {
		t.Fatalf("capture produced %v, want one cpu+heap pair", names)
	}
	var sawCPU, sawHeap bool
	for _, name := range names {
		if !strings.HasPrefix(name, "profile-") || !strings.Contains(name, "-page.") {
			t.Fatalf("unexpected profile name %q", name)
		}
		raw, err := os.ReadFile(filepath.Join(c.cfg.Dir, name))
		if err != nil {
			t.Fatal(err)
		}
		// pprof output is gzip: no checkpoint frame may wrap it.
		if len(raw) < 2 || !bytes.Equal(raw[:2], []byte{0x1f, 0x8b}) {
			t.Fatalf("%s does not start with gzip magic: % x", name, raw[:min(4, len(raw))])
		}
		switch {
		case strings.HasSuffix(name, ".cpu.pprof"):
			sawCPU = true
		case strings.HasSuffix(name, ".heap.pprof"):
			sawHeap = true
		}
	}
	if !sawCPU || !sawHeap {
		t.Fatalf("pair incomplete: %v", names)
	}
	if got := reg.Counter("profcap.captures").Value(); got != 1 {
		t.Fatalf("captures = %d", got)
	}
	if got := reg.Counter("profcap.errors").Value(); got != 0 {
		t.Fatalf("errors = %d", got)
	}
}

func TestRetentionPrunesOldestPairs(t *testing.T) {
	obs.SetEnabled(true)
	reg := obs.NewRegistry()
	c := fastCapturer(t, reg, 2)
	for i := 0; i < 5; i++ {
		c.Trigger("p99")
		c.Wait()
	}
	names := listProfiles(t, c.cfg.Dir)
	if len(names) != 4 {
		t.Fatalf("retention kept %d files (%v), want 2 pairs", len(names), names)
	}
	// Lexical order is chronological: the survivors are the newest stamps.
	if got := reg.Counter("profcap.captures").Value(); got != 5 {
		t.Fatalf("captures = %d", got)
	}
}

func TestCooldownDropsTriggers(t *testing.T) {
	obs.SetEnabled(true)
	reg := obs.NewRegistry()
	c, err := New(Config{
		Dir:         t.TempDir(),
		Cooldown:    time.Hour,
		CPUDuration: 10 * time.Millisecond,
		Registry:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	c.now = func() time.Time { return clock }

	c.Trigger("page")
	c.Wait()
	c.Trigger("page") // inside cooldown: dropped
	c.Wait()
	if got := reg.Counter("profcap.skipped").Value(); got != 1 {
		t.Fatalf("skipped = %d, want 1", got)
	}
	if got := reg.Counter("profcap.captures").Value(); got != 1 {
		t.Fatalf("captures = %d, want 1", got)
	}

	clock = clock.Add(2 * time.Hour) // cooldown elapsed
	c.Trigger("page")
	c.Wait()
	if got := reg.Counter("profcap.captures").Value(); got != 2 {
		t.Fatalf("captures after cooldown = %d, want 2", got)
	}
}

func TestTriggerNonBlockingWhileBusy(t *testing.T) {
	obs.SetEnabled(true)
	reg := obs.NewRegistry()
	c, err := New(Config{
		Dir:         t.TempDir(),
		Cooldown:    time.Nanosecond,
		CPUDuration: 200 * time.Millisecond,
		Registry:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Trigger("page")
	// While the 200ms CPU profile runs, triggers must return immediately
	// and count as skipped.
	start := time.Now()
	c.Trigger("page")
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("Trigger blocked for %v", elapsed)
	}
	c.Wait()
	if got := reg.Counter("profcap.captures").Value(); got != 1 {
		t.Fatalf("captures = %d", got)
	}
	if got := reg.Counter("profcap.skipped").Value(); got == 0 {
		t.Fatal("busy trigger was not counted as skipped")
	}
}

func TestNewRequiresDir(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty Dir")
	}
}
