// Package profcap captures CPU and heap pprof profiles automatically when
// the SLO layer says the service is in trouble — a burn-rate trip or a
// windowed-p99 breach — so the evidence of *why* latency regressed is on
// disk before anyone is paged, not reconstructed afterwards.
//
// Triggers are non-blocking and heavily damped: at most one capture runs at
// a time, a cooldown separates consecutive captures, and only the newest
// Retain profile pairs are kept. Each capture produces a pair
//
//	profile-<stamp>-<reason>.cpu.pprof
//	profile-<stamp>-<reason>.heap.pprof
//
// where stamp is a UTC nanosecond timestamp (lexical order is chronological)
// and reason names the trigger (e.g. "page", "p99"). Files are written with
// the same temp + fsync + rename discipline as internal/checkpoint — but as
// raw bytes, without the checkpoint CRC frame, so `go tool pprof` reads them
// directly.
package profcap

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"cardnet/internal/obs"
)

// Config tunes a Capturer. Zero values take the documented defaults.
type Config struct {
	// Dir is the directory profiles are written to (required; created if
	// missing).
	Dir string
	// Retain is how many profile pairs to keep; older pairs are pruned
	// after each capture (default 4).
	Retain int
	// Cooldown is the minimum time between captures; triggers inside it are
	// counted and dropped (default 1m).
	Cooldown time.Duration
	// CPUDuration is how long the CPU profile samples for (default 2s).
	CPUDuration time.Duration
	// Registry receives the capture/skip/error counters (default
	// obs.Default).
	Registry *obs.Registry
	// Sink, when set, receives one "profcap.capture" event per completed
	// capture.
	Sink *obs.Sink
}

// Capturer writes triggered profile pairs into its directory. Build with
// New; fire with Trigger; Wait blocks until any in-flight capture finishes
// (tests and shutdown paths).
type Capturer struct {
	cfg Config

	mu   sync.Mutex
	busy bool
	last time.Time
	now  func() time.Time // injectable clock for cooldown tests

	wg sync.WaitGroup

	cCaptures *obs.Counter
	cSkipped  *obs.Counter
	cErrors   *obs.Counter
}

// New builds a Capturer, creating cfg.Dir if needed.
func New(cfg Config) (*Capturer, error) {
	if cfg.Dir == "" {
		return nil, errors.New("profcap: Dir is required")
	}
	if cfg.Retain <= 0 {
		cfg.Retain = 4
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = time.Minute
	}
	if cfg.CPUDuration <= 0 {
		cfg.CPUDuration = 2 * time.Second
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("profcap: create dir: %w", err)
	}
	return &Capturer{
		cfg:       cfg,
		now:       time.Now,
		cCaptures: cfg.Registry.Counter("profcap.captures"),
		cSkipped:  cfg.Registry.Counter("profcap.skipped"),
		cErrors:   cfg.Registry.Counter("profcap.errors"),
	}, nil
}

// Trigger requests a capture attributed to reason. It never blocks: if a
// capture is already running or the cooldown has not elapsed, the trigger is
// counted as skipped and dropped. The capture itself runs on its own
// goroutine (a CPU profile takes CPUDuration to collect).
func (c *Capturer) Trigger(reason string) {
	c.mu.Lock()
	now := c.now()
	if c.busy || (!c.last.IsZero() && now.Sub(c.last) < c.cfg.Cooldown) {
		c.mu.Unlock()
		c.cSkipped.Inc()
		return
	}
	c.busy = true
	c.last = now
	c.mu.Unlock()

	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer func() {
			c.mu.Lock()
			c.busy = false
			c.mu.Unlock()
		}()
		c.capture(reason, now)
	}()
}

// Wait blocks until any in-flight capture has finished writing.
func (c *Capturer) Wait() { c.wg.Wait() }

// capture collects one CPU+heap pair and prunes old pairs.
func (c *Capturer) capture(reason string, at time.Time) {
	stamp := at.UTC().Format("20060102T150405.000000000")
	base := fmt.Sprintf("profile-%s-%s", stamp, sanitizeReason(reason))

	// CPU first: StartCPUProfile is exclusive process-wide, so a conflict
	// (another profiler active) degrades to a heap-only capture.
	var cpu bytes.Buffer
	cpuOK := true
	if err := pprof.StartCPUProfile(&cpu); err != nil {
		c.cErrors.Inc()
		cpuOK = false
	} else {
		time.Sleep(c.cfg.CPUDuration)
		pprof.StopCPUProfile()
	}

	// Heap after a forced GC so the profile reflects live objects, not
	// garbage awaiting collection.
	var heap bytes.Buffer
	runtime.GC()
	heapOK := true
	if err := pprof.WriteHeapProfile(&heap); err != nil {
		c.cErrors.Inc()
		heapOK = false
	}

	wrote := false
	if cpuOK {
		if err := writeFileAtomic(filepath.Join(c.cfg.Dir, base+".cpu.pprof"), cpu.Bytes()); err != nil {
			c.cErrors.Inc()
		} else {
			wrote = true
		}
	}
	if heapOK {
		if err := writeFileAtomic(filepath.Join(c.cfg.Dir, base+".heap.pprof"), heap.Bytes()); err != nil {
			c.cErrors.Inc()
		} else {
			wrote = true
		}
	}
	if wrote {
		c.cCaptures.Inc()
		if c.cfg.Sink != nil {
			c.cfg.Sink.Emit("profcap.capture", map[string]any{
				"reason": reason,
				"base":   base,
				"dir":    c.cfg.Dir,
			})
		}
	}
	c.prune()
}

// sanitizeReason maps a trigger reason to a filename-safe token.
func sanitizeReason(reason string) string {
	if reason == "" {
		return "manual"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '.':
			return r
		default:
			return '-'
		}
	}, reason)
}

// prune removes all but the newest Retain capture stamps (a stamp's CPU and
// heap files count as one pair and are removed together).
func (c *Capturer) prune() {
	entries, err := os.ReadDir(c.cfg.Dir)
	if err != nil {
		c.cErrors.Inc()
		return
	}
	// Group by base name (everything before the .cpu/.heap suffix); the
	// nanosecond stamp makes lexical order chronological.
	groups := map[string][]string{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "profile-") {
			continue
		}
		base := strings.TrimSuffix(strings.TrimSuffix(name, ".cpu.pprof"), ".heap.pprof")
		if base == name { // some other file shape: leave it alone
			continue
		}
		groups[base] = append(groups[base], name)
	}
	bases := make([]string, 0, len(groups))
	for b := range groups {
		bases = append(bases, b)
	}
	sort.Strings(bases)
	if len(bases) <= c.cfg.Retain {
		return
	}
	for _, b := range bases[:len(bases)-c.cfg.Retain] {
		for _, name := range groups[b] {
			if err := os.Remove(filepath.Join(c.cfg.Dir, name)); err != nil {
				c.cErrors.Inc()
			}
		}
	}
}

// writeFileAtomic writes payload durably: temp file in the same directory
// (dot-prefixed so scans skip crash orphans), fsync, rename over path, fsync
// the directory. Unlike checkpoint.WriteFileAtomic this frames nothing —
// pprof output must land byte-identical for `go tool pprof`.
func writeFileAtomic(path string, payload []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return fmt.Errorf("profcap: create temp file: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(payload); err != nil {
		return fail(fmt.Errorf("profcap: write: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("profcap: fsync: %w", err))
	}
	if err := tmp.Close(); err != nil {
		return fail(fmt.Errorf("profcap: close: %w", err))
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("profcap: rename into place: %w", err)
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("profcap: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		return fmt.Errorf("profcap: fsync dir: %w", err)
	}
	return nil
}
