// Package runtimeobs publishes Go runtime health into an obs.Registry on a
// fixed cadence, so the existing /metrics exposition (JSON and Prometheus)
// picks up heap pressure, GC pauses, goroutine counts, and process uptime
// with zero new wire code. The sampler costs one runtime.ReadMemStats per
// interval (a stop-the-world on the order of tens of microseconds), which at
// the default 10s cadence is far below the serving layer's noise floor —
// `cardnet -mode obsbench` measures it.
//
// Metric names (registry form → Prometheus form):
//
//	runtime.goroutines            runtime_goroutines
//	runtime.gomaxprocs            runtime_gomaxprocs
//	runtime.heap.alloc.bytes      runtime_heap_alloc_bytes
//	runtime.heap.sys.bytes        runtime_heap_sys_bytes
//	runtime.heap.inuse.bytes      runtime_heap_inuse_bytes
//	runtime.heap.objects          runtime_heap_objects
//	runtime.stack.inuse.bytes     runtime_stack_inuse_bytes
//	runtime.next_gc.bytes         runtime_next_gc_bytes
//	runtime.gc.count              runtime_gc_count_total (counter)
//	runtime.gc.pause.seconds      runtime_gc_pause_seconds (histogram)
//	runtime.gc.cpu.fraction       runtime_gc_cpu_fraction
//	process.uptime.seconds        process_uptime_seconds
//	process.start_time.seconds    process_start_time_seconds
package runtimeobs

import (
	"runtime"
	"sync"
	"time"

	"cardnet/internal/obs"
)

// processStart approximates process start time (package init happens within
// milliseconds of exec for this binary). process_start_time_seconds and
// uptime both derive from it.
var processStart = time.Now()

// StartTime returns the instant this process started (as observed at package
// init), the same value behind process_start_time_seconds.
func StartTime() time.Time { return processStart }

// Config tunes a Sampler. Zero values take the documented defaults.
type Config struct {
	// Interval is the sampling period (default 10s).
	Interval time.Duration
	// Registry receives the metrics (default obs.Default).
	Registry *obs.Registry
}

// Sampler periodically snapshots runtime.MemStats and goroutine counts into
// its registry. Start it with Start, stop it with Stop; it is started and
// stopped with the serve engine.
type Sampler struct {
	reg      *obs.Registry
	interval time.Duration

	mu        sync.Mutex
	lastNumGC uint32

	gGoroutines *obs.Gauge
	gMaxProcs   *obs.Gauge
	gHeapAlloc  *obs.Gauge
	gHeapSys    *obs.Gauge
	gHeapInuse  *obs.Gauge
	gHeapObj    *obs.Gauge
	gStackInuse *obs.Gauge
	gNextGC     *obs.Gauge
	gGCFrac     *obs.Gauge
	gUptime     *obs.Gauge
	cGCCount    *obs.Counter
	hGCPause    *obs.Histogram
	cSamples    *obs.Counter

	stop chan struct{}
	done chan struct{}
}

// Start builds a sampler, takes one sample immediately (so /metrics is
// populated before the first tick), and begins the periodic loop.
func Start(cfg Config) *Sampler {
	s := New(cfg)
	s.Sample()
	go s.loop()
	return s
}

// New builds a sampler without starting its loop — tests and benchmarks call
// Sample directly for deterministic cadence.
func New(cfg Config) *Sampler {
	if cfg.Registry == nil {
		cfg.Registry = obs.Default
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Second
	}
	reg := cfg.Registry
	s := &Sampler{
		reg:         reg,
		interval:    cfg.Interval,
		gGoroutines: reg.Gauge("runtime.goroutines"),
		gMaxProcs:   reg.Gauge("runtime.gomaxprocs"),
		gHeapAlloc:  reg.Gauge("runtime.heap.alloc.bytes"),
		gHeapSys:    reg.Gauge("runtime.heap.sys.bytes"),
		gHeapInuse:  reg.Gauge("runtime.heap.inuse.bytes"),
		gHeapObj:    reg.Gauge("runtime.heap.objects"),
		gStackInuse: reg.Gauge("runtime.stack.inuse.bytes"),
		gNextGC:     reg.Gauge("runtime.next_gc.bytes"),
		gGCFrac:     reg.Gauge("runtime.gc.cpu.fraction"),
		gUptime:     reg.Gauge("process.uptime.seconds"),
		cGCCount:    reg.Counter("runtime.gc.count"),
		hGCPause:    reg.Histogram("runtime.gc.pause.seconds", obs.ExpBuckets(1e-6, 4, 12)),
		cSamples:    reg.Counter("runtime.samples"),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	reg.Gauge("process.start_time.seconds").Set(float64(processStart.UnixNano()) / 1e9)
	return s
}

func (s *Sampler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.Sample()
		case <-s.stop:
			return
		}
	}
}

// Stop halts the periodic loop and waits for it to exit. Safe to call once;
// a sampler built with New (never started) must not be stopped.
func (s *Sampler) Stop() {
	close(s.stop)
	<-s.done
}

// Sample takes one snapshot now. GC pauses are read from the MemStats
// circular pause buffer: every GC cycle completed since the previous sample
// contributes one observation (capped at the buffer's 256 entries).
func (s *Sampler) Sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	s.gGoroutines.Set(float64(runtime.NumGoroutine()))
	s.gMaxProcs.Set(float64(runtime.GOMAXPROCS(0)))
	s.gHeapAlloc.Set(float64(ms.HeapAlloc))
	s.gHeapSys.Set(float64(ms.HeapSys))
	s.gHeapInuse.Set(float64(ms.HeapInuse))
	s.gHeapObj.Set(float64(ms.HeapObjects))
	s.gStackInuse.Set(float64(ms.StackInuse))
	s.gNextGC.Set(float64(ms.NextGC))
	s.gGCFrac.Set(ms.GCCPUFraction)
	s.gUptime.Set(time.Since(processStart).Seconds())
	s.cSamples.Inc()

	s.mu.Lock()
	defer s.mu.Unlock()
	newGCs := ms.NumGC - s.lastNumGC
	if newGCs > uint32(len(ms.PauseNs)) {
		newGCs = uint32(len(ms.PauseNs))
	}
	for i := uint32(0); i < newGCs; i++ {
		// PauseNs is circular, indexed by (cycle-1) mod len.
		pause := ms.PauseNs[(ms.NumGC-i-1+uint32(len(ms.PauseNs)))%uint32(len(ms.PauseNs))]
		s.hGCPause.Observe(float64(pause) / 1e9)
	}
	if newGCs > 0 {
		s.cGCCount.Add(uint64(newGCs))
	}
	s.lastNumGC = ms.NumGC
}
