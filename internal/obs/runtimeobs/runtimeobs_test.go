package runtimeobs

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"cardnet/internal/obs"
)

func TestSamplerPublishesRuntimeMetrics(t *testing.T) {
	obs.SetEnabled(true)
	reg := obs.NewRegistry()
	s := New(Config{Registry: reg})
	// Force a GC so the pause histogram and GC counter have something to see.
	runtime.GC()
	runtime.GC()
	s.Sample()

	if v := reg.Gauge("runtime.goroutines").Value(); v < 1 {
		t.Fatalf("goroutines = %v", v)
	}
	if v := reg.Gauge("runtime.gomaxprocs").Value(); v < 1 {
		t.Fatalf("gomaxprocs = %v", v)
	}
	if v := reg.Gauge("runtime.heap.alloc.bytes").Value(); v <= 0 {
		t.Fatalf("heap alloc = %v", v)
	}
	if v := reg.Gauge("process.start_time.seconds").Value(); v <= 0 {
		t.Fatalf("start time = %v", v)
	}
	if got, now := reg.Gauge("process.start_time.seconds").Value(), float64(time.Now().Unix()); got > now+1 {
		t.Fatalf("start time %v is in the future (now %v)", got, now)
	}
	if c := reg.Counter("runtime.gc.count").Value(); c < 2 {
		t.Fatalf("gc count = %d after two forced GCs", c)
	}
	if n := reg.Histogram("runtime.gc.pause.seconds", nil).Count(); n < 2 {
		t.Fatalf("gc pause observations = %d", n)
	}
	if c := reg.Counter("runtime.samples").Value(); c != 1 {
		t.Fatalf("samples = %d", c)
	}

	// Second sample observes only the delta of GC cycles.
	before := reg.Histogram("runtime.gc.pause.seconds", nil).Count()
	s.Sample()
	after := reg.Histogram("runtime.gc.pause.seconds", nil).Count()
	if after != before {
		t.Fatalf("pause observations changed without a GC: %d -> %d", before, after)
	}
	runtime.GC()
	s.Sample()
	if got := reg.Histogram("runtime.gc.pause.seconds", nil).Count(); got != after+1 {
		t.Fatalf("one GC should add one pause observation: %d -> %d", after, got)
	}
}

func TestSamplerStartStopAndExposition(t *testing.T) {
	obs.SetEnabled(true)
	reg := obs.NewRegistry()
	s := Start(Config{Interval: time.Millisecond, Registry: reg})
	deadline := time.Now().Add(2 * time.Second)
	for reg.Counter("runtime.samples").Value() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	if got := reg.Counter("runtime.samples").Value(); got < 3 {
		t.Fatalf("sampler only took %d samples in 2s at 1ms cadence", got)
	}

	// The whole runtime surface must round-trip through the Prometheus path.
	series, err := reg.SeriesSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"runtime_goroutines",
		"runtime_heap_alloc_bytes",
		"runtime_gc_count_total",
		"runtime_gc_pause_seconds_count",
		"process_start_time_seconds",
		"process_uptime_seconds",
	} {
		if _, ok := series[want]; !ok {
			keys := make([]string, 0, len(series))
			for k := range series {
				keys = append(keys, k)
			}
			t.Fatalf("series %q missing from exposition; have %s", want, strings.Join(keys, ", "))
		}
	}
}

func TestConcurrentSampleSafe(t *testing.T) {
	obs.SetEnabled(true)
	reg := obs.NewRegistry()
	s := New(Config{Registry: reg})
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			for j := 0; j < 50; j++ {
				s.Sample()
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if got := reg.Counter("runtime.samples").Value(); got != 200 {
		t.Fatalf("samples = %d, want 200", got)
	}
}
