// Package monitor watches the quality of a serving CardNet model online —
// the production counterpart of the paper's train-time evaluation. CardNet's
// two operational guarantees are monotonicity in τ (Lemmas 1–2) and
// recoverability from data change via incremental retraining (Section 8);
// this package turns both into live signals:
//
//   - a rolling window of q-errors from labelled feedback (POST /feedback)
//     and audit replays against an exact simselect oracle, summarized as
//     window quantiles plus an EWMA;
//   - a drift status (ok | warn | retrain-recommended) comparing the EWMA
//     against a baseline frozen from the first samples after each model
//     (re)load, so an operator knows when to trigger `cardnet update`;
//   - a monotonicity-violation counter over the τ-sweep curves the serving
//     engine already computes for every batch row.
//
// Everything mirrors into an obs.Registry so /metrics (JSON and Prometheus)
// exposes the same numbers as /drift.
package monitor

import (
	"sort"
	"sync"
	"time"

	"cardnet/internal/core"
	"cardnet/internal/metrics"
	"cardnet/internal/obs"
)

// Drift states, ordered by severity.
const (
	StatusOK      = "ok"
	StatusWarn    = "warn"
	StatusRetrain = "retrain-recommended"
)

// Config tunes the monitor; zero values take the documented defaults.
type Config struct {
	// Window is the rolling q-error window size (default 512).
	Window int
	// EWMAAlpha is the exponential weight of the newest q-error (default
	// 0.05: ~20-sample memory, smooth enough to ignore single outliers).
	EWMAAlpha float64
	// BaselineN is how many q-error samples after a model (re)load are
	// averaged into the drift baseline (default 32).
	BaselineN int
	// WarnFactor: EWMA ≥ WarnFactor·baseline reports "warn" (default 1.5).
	WarnFactor float64
	// RetrainFactor: EWMA ≥ RetrainFactor·baseline reports
	// "retrain-recommended" (default 2.5).
	RetrainFactor float64
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 512
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = 0.05
	}
	if c.BaselineN <= 0 {
		c.BaselineN = 32
	}
	if c.WarnFactor <= 1 {
		c.WarnFactor = 1.5
	}
	if c.RetrainFactor <= c.WarnFactor {
		c.RetrainFactor = 2.5
	}
	return c
}

// Monitor is safe for concurrent use by HTTP handlers, audit goroutines,
// and the engine's batch workers.
type Monitor struct {
	cfg Config

	mu        sync.Mutex
	win       []float64 // q-error ring buffer
	n         int       // filled entries
	idx       int       // next write position
	ewma      float64
	baseline  float64
	baseN     int  // samples folded into the pending baseline
	baseReady bool // baseline frozen

	feedback uint64
	audits   uint64

	// Level-transition tracking for the autopilot's dwell-window trigger:
	// curLevel is the most recent drift level, levelSince when it started.
	curLevel   int
	levelSince time.Time

	// Curve checks are lock-free: counted straight into the registry.
	monoChecks     *obs.Counter
	monoViolations *obs.Counter

	gEWMA     *obs.Gauge
	gBaseline *obs.Gauge
	gLevel    *obs.Gauge
	gP50      *obs.Gauge
	gP99      *obs.Gauge
	cFeedback *obs.Counter
	cAudits   *obs.Counter
	hQErr     *obs.Histogram
}

// New builds a monitor mirroring into reg (obs.Default in production).
func New(cfg Config, reg *obs.Registry) *Monitor {
	cfg = cfg.withDefaults()
	return &Monitor{
		cfg:            cfg,
		win:            make([]float64, cfg.Window),
		monoChecks:     reg.Counter("monitor.mono.checks"),
		monoViolations: reg.Counter("monitor.mono.violations"),
		gEWMA:          reg.Gauge("monitor.qerror.ewma"),
		gBaseline:      reg.Gauge("monitor.qerror.baseline"),
		gLevel:         reg.Gauge("monitor.drift.level"),
		gP50:           reg.Gauge("monitor.qerror.p50"),
		gP99:           reg.Gauge("monitor.qerror.p99"),
		cFeedback:      reg.Counter("monitor.feedback.samples"),
		cAudits:        reg.Counter("monitor.audit.samples"),
		hQErr:          reg.Histogram("monitor.qerror", obs.ExpBuckets(1, 2, 16)),
	}
}

// Source labels where a q-error sample came from.
type Source int

// Sample sources.
const (
	Feedback Source = iota // labelled actuals posted to /feedback
	Audit                  // serve-time replays against the exact oracle
)

// Record folds one labelled (actual, estimate) pair into the window and
// returns its q-error. The first Config.BaselineN samples after New or
// ResetBaseline freeze the drift baseline; until then the status stays "ok".
func (m *Monitor) Record(actual, estimate float64, src Source) float64 {
	q := metrics.QError(actual, estimate)
	m.hQErr.Observe(q)
	if src == Audit {
		m.cAudits.Inc()
	} else {
		m.cFeedback.Inc()
	}

	m.mu.Lock()
	m.win[m.idx] = q
	m.idx = (m.idx + 1) % len(m.win)
	if m.n < len(m.win) {
		m.n++
	}
	if src == Audit {
		m.audits++
	} else {
		m.feedback++
	}
	if !m.baseReady {
		// Running mean over the first BaselineN samples, then freeze.
		m.baseline += (q - m.baseline) / float64(m.baseN+1)
		m.baseN++
		m.ewma = m.baseline
		if m.baseN >= m.cfg.BaselineN {
			m.baseReady = true
		}
	} else {
		m.ewma += m.cfg.EWMAAlpha * (q - m.ewma)
	}
	ewma, base := m.ewma, m.baseline
	level := m.levelLocked()
	if level != m.curLevel || m.levelSince.IsZero() {
		m.curLevel = level
		m.levelSince = time.Now()
	}
	m.mu.Unlock()

	m.gEWMA.Set(ewma)
	m.gBaseline.Set(base)
	m.gLevel.Set(float64(level))
	return q
}

// CheckCurve validates one τ-sweep estimate curve against the Lemma 2
// contract and counts the result; it returns true when the curve is
// monotone. Wired into serving.Config.CurveCheck so every batch row the
// engine computes is checked.
func (m *Monitor) CheckCurve(curve []float64) bool {
	m.monoChecks.Inc()
	if core.CurveMonotone(curve) {
		return true
	}
	m.monoViolations.Inc()
	return false
}

// ResetBaseline discards the frozen baseline and EWMA so the next
// Config.BaselineN samples re-establish them — called on every model swap,
// because a retrained model's accuracy defines a new normal.
func (m *Monitor) ResetBaseline() {
	m.mu.Lock()
	m.baseline, m.baseN, m.baseReady = 0, 0, false
	m.ewma = 0
	m.n, m.idx = 0, 0
	m.curLevel, m.levelSince = 0, time.Now()
	m.mu.Unlock()
	m.gEWMA.Set(0)
	m.gBaseline.Set(0)
	m.gLevel.Set(0)
}

// LevelSince reports the current drift level (0 ok, 1 warn,
// 2 retrain-recommended) and when that level started. Before any sample is
// recorded the since time is zero. The autopilot uses this pair to require a
// level to be *sustained* for a dwell window before triggering a retrain,
// instead of reacting to a single noisy scrape.
func (m *Monitor) LevelSince() (int, time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.curLevel, m.levelSince
}

// levelLocked maps the EWMA-vs-baseline ratio onto 0 (ok), 1 (warn),
// 2 (retrain-recommended). Baselines are floored at 1 — a perfect model's
// q-error — so a near-perfect baseline does not page on noise.
func (m *Monitor) levelLocked() int {
	if !m.baseReady {
		return 0
	}
	base := m.baseline
	if base < 1 {
		base = 1
	}
	ratio := m.ewma / base
	switch {
	case ratio >= m.cfg.RetrainFactor:
		return 2
	case ratio >= m.cfg.WarnFactor:
		return 1
	default:
		return 0
	}
}

// Status is the /drift wire format.
type Status struct {
	Status         string  `json:"status"`  // ok | warn | retrain-recommended
	Samples        int     `json:"samples"` // q-errors currently in the window
	Feedback       uint64  `json:"feedback_samples"`
	Audits         uint64  `json:"audit_samples"`
	EWMA           float64 `json:"qerror_ewma"`
	Baseline       float64 `json:"qerror_baseline"`
	BaselineReady  bool    `json:"baseline_ready"`
	P50            float64 `json:"qerror_p50"`
	P90            float64 `json:"qerror_p90"`
	P99            float64 `json:"qerror_p99"`
	MonoChecks     uint64  `json:"mono_checks"`
	MonoViolations uint64  `json:"mono_violations"`
}

// Status summarizes the monitor. Window quantiles are exact (copy + sort of
// at most Config.Window float64s, off the hot path).
func (m *Monitor) Status() Status {
	m.mu.Lock()
	s := Status{
		Samples:       m.n,
		Feedback:      m.feedback,
		Audits:        m.audits,
		EWMA:          m.ewma,
		Baseline:      m.baseline,
		BaselineReady: m.baseReady,
	}
	win := append([]float64(nil), m.win[:min(m.n, len(m.win))]...)
	level := m.levelLocked()
	m.mu.Unlock()

	switch level {
	case 2:
		s.Status = StatusRetrain
	case 1:
		s.Status = StatusWarn
	default:
		s.Status = StatusOK
	}
	if len(win) > 0 {
		sort.Float64s(win)
		s.P50 = quantile(win, 0.50)
		s.P90 = quantile(win, 0.90)
		s.P99 = quantile(win, 0.99)
	}
	s.MonoChecks = m.monoChecks.Value()
	s.MonoViolations = m.monoViolations.Value()
	// Mirror the freshly computed quantiles so /metrics scrapes stay
	// consistent with /drift without recomputing on the scrape path.
	m.gP50.Set(s.P50)
	m.gP99.Set(s.P99)
	return s
}

// quantile picks the nearest-rank quantile from a sorted slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
