package monitor

import (
	"math"
	"sync"
	"testing"

	"cardnet/internal/obs"
)

func newTestMonitor(cfg Config) (*Monitor, *obs.Registry) {
	reg := obs.NewRegistry()
	return New(cfg, reg), reg
}

func TestMonitorBaselineAndDriftTransitions(t *testing.T) {
	m, reg := newTestMonitor(Config{BaselineN: 8, EWMAAlpha: 0.5, WarnFactor: 1.5, RetrainFactor: 2.5})

	// Healthy phase: estimates within 10% of actuals → baseline q-error ≈ 1.1.
	for i := 0; i < 8; i++ {
		m.Record(100, 110, Feedback)
	}
	st := m.Status()
	if !st.BaselineReady || st.Status != StatusOK {
		t.Fatalf("after baseline: %+v", st)
	}
	if st.Baseline < 1.05 || st.Baseline > 1.15 {
		t.Fatalf("baseline %.3f, want ~1.1", st.Baseline)
	}

	// Mild degradation: q-error ~1.8 vs baseline 1.1 → ratio ~1.6 → warn.
	for i := 0; i < 16; i++ {
		m.Record(100, 180, Feedback)
	}
	if st = m.Status(); st.Status != StatusWarn {
		t.Fatalf("after mild drift: %+v", st)
	}

	// Heavy drift: q-error 10 → ratio ≫ 2.5 → retrain-recommended.
	for i := 0; i < 16; i++ {
		m.Record(100, 1000, Feedback)
	}
	if st = m.Status(); st.Status != StatusRetrain {
		t.Fatalf("after heavy drift: %+v", st)
	}
	if st.P50 < 1 || st.P99 < st.P50 {
		t.Fatalf("quantiles out of order: %+v", st)
	}

	// Gauges mirror the drift level for /metrics scrapes.
	if reg.Gauge("monitor.drift.level").Value() != 2 {
		t.Fatalf("drift.level gauge = %v, want 2", reg.Gauge("monitor.drift.level").Value())
	}

	// A model swap re-baselines: post-swap accuracy defines the new normal.
	m.ResetBaseline()
	st = m.Status()
	if st.BaselineReady || st.Status != StatusOK || st.Samples != 0 {
		t.Fatalf("after reset: %+v", st)
	}
	for i := 0; i < 8; i++ {
		m.Record(100, 1000, Audit) // terrible but *consistent* → new baseline
	}
	if st = m.Status(); st.Status != StatusOK {
		t.Fatalf("consistent post-swap accuracy should be ok: %+v", st)
	}
	if st.Audits != 8 {
		t.Fatalf("audit samples = %d, want 8", st.Audits)
	}
}

func TestMonitorNearPerfectBaselineNoisy(t *testing.T) {
	// A near-perfect baseline (q≈1) must not page on small absolute noise:
	// the ratio floor at q=1 means EWMA must exceed WarnFactor in absolute
	// terms.
	m, _ := newTestMonitor(Config{BaselineN: 4, EWMAAlpha: 0.5})
	for i := 0; i < 4; i++ {
		m.Record(100, 100, Feedback) // q = 1
	}
	for i := 0; i < 8; i++ {
		m.Record(100, 120, Feedback) // q = 1.2 < WarnFactor 1.5
	}
	if st := m.Status(); st.Status != StatusOK {
		t.Fatalf("q=1.2 over perfect baseline should stay ok: %+v", st)
	}
	for i := 0; i < 8; i++ {
		m.Record(100, 180, Feedback) // q = 1.8 ≥ 1.5
	}
	if st := m.Status(); st.Status != StatusWarn {
		t.Fatalf("q=1.8 over perfect baseline should warn: %+v", st)
	}
}

func TestMonitorCheckCurve(t *testing.T) {
	m, reg := newTestMonitor(Config{})
	good := []float64{0, 1, 1, 2.5, 7}
	bad := [][]float64{
		{0, 2, 1},           // decreasing
		{0, 1, math.NaN()},  // NaN
		{0, 1, math.Inf(1)}, // Inf
		{-1, 0, 1},          // negative
	}
	if !m.CheckCurve(good) {
		t.Fatal("monotone curve flagged")
	}
	for _, c := range bad {
		if m.CheckCurve(c) {
			t.Fatalf("violating curve %v passed", c)
		}
	}
	if got := reg.Counter("monitor.mono.violations").Value(); got != uint64(len(bad)) {
		t.Fatalf("violations = %d, want %d", got, len(bad))
	}
	if got := reg.Counter("monitor.mono.checks").Value(); got != uint64(len(bad)+1) {
		t.Fatalf("checks = %d, want %d", got, len(bad)+1)
	}
}

func TestMonitorWindowRolls(t *testing.T) {
	m, _ := newTestMonitor(Config{Window: 16, BaselineN: 4})
	for i := 0; i < 100; i++ {
		m.Record(100, 100, Feedback)
	}
	// Window holds only the last 16; the q=1 flood must have evicted nothing
	// worse, so quantiles are exactly 1.
	for i := 0; i < 200; i++ {
		m.Record(1, 1, Feedback)
	}
	st := m.Status()
	if st.Samples != 16 {
		t.Fatalf("window samples = %d, want 16", st.Samples)
	}
	if st.P50 != 1 || st.P99 != 1 {
		t.Fatalf("quantiles %+v", st)
	}
	if st.Feedback != 300 {
		t.Fatalf("feedback total = %d, want 300", st.Feedback)
	}
}

func TestMonitorConcurrent(t *testing.T) {
	m, _ := newTestMonitor(Config{Window: 64, BaselineN: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				switch i % 3 {
				case 0:
					m.Record(float64(10+i%50), float64(12+i%40), Feedback)
				case 1:
					m.CheckCurve([]float64{0, 1, 2})
				default:
					m.Status()
				}
			}
		}(g)
	}
	wg.Wait()
	st := m.Status()
	if st.MonoViolations != 0 {
		t.Fatalf("false violations under concurrency: %+v", st)
	}
	if st.EWMA <= 0 || math.IsNaN(st.EWMA) {
		t.Fatalf("EWMA corrupted: %+v", st)
	}
}
