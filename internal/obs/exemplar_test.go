package obs

import (
	"strings"
	"testing"
)

func TestHistogramExemplarCapture(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	h.Observe(0.05) // plain observe: no exemplar
	if _, ok := h.BucketExemplar(0); ok {
		t.Fatal("plain Observe must not stamp an exemplar")
	}
	h.ObserveExemplar(0.05, "aaaa")
	h.ObserveExemplar(0.07, "bbbb") // same bucket: last writer wins
	h.ObserveExemplar(5, "cccc")
	h.ObserveExemplar(100, "dddd") // overflow bucket
	h.ObserveExemplar(0.5, "")     // empty trace id degrades to Observe

	if ex, ok := h.BucketExemplar(0); !ok || ex.TraceID != "bbbb" || ex.Value != 0.07 {
		t.Fatalf("bucket 0 exemplar = %+v, %v", ex, ok)
	}
	if _, ok := h.BucketExemplar(1); ok {
		t.Fatal("bucket 1 saw only an empty trace id; must hold no exemplar")
	}
	if ex, ok := h.BucketExemplar(3); !ok || ex.TraceID != "dddd" {
		t.Fatalf("overflow exemplar = %+v, %v", ex, ok)
	}
	if _, ok := h.BucketExemplar(-1); ok {
		t.Fatal("out-of-range index must report no exemplar")
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("ObserveExemplar must still count: n=%d", got)
	}

	// ExemplarAbove scans top-down for the slowest traced offender.
	if ex, ok := h.ExemplarAbove(0.1); !ok || ex.TraceID != "dddd" {
		t.Fatalf("ExemplarAbove(0.1) = %+v, %v; want the overflow exemplar", ex, ok)
	}
	if ex, ok := h.ExemplarAbove(50); !ok || ex.TraceID != "dddd" {
		t.Fatalf("ExemplarAbove(50) = %+v, %v", ex, ok)
	}
	if _, ok := NewHistogram([]float64{1}).ExemplarAbove(0); ok {
		t.Fatal("empty histogram must report no exemplar")
	}
}

func TestWriteOpenMetricsExemplars(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("reqs").Add(3)
	h := reg.Histogram("lat.seconds", []float64{0.1, 1})
	h.ObserveExemplar(0.05, "feedface00000001")
	h.ObserveExemplar(3, "feedface00000002")

	var om, plain strings.Builder
	if err := reg.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&plain); err != nil {
		t.Fatal(err)
	}

	// The default exposition stays exemplar-free (scrapers that negotiated
	// text/plain 0.0.4 must not see OpenMetrics syntax).
	if strings.Contains(plain.String(), "# {") || strings.Contains(plain.String(), "# EOF") {
		t.Fatalf("WritePrometheus leaked OpenMetrics syntax:\n%s", plain.String())
	}
	if !strings.Contains(om.String(), `lat_seconds_bucket{le="0.1"} 1 # {trace_id="feedface00000001"} 0.05`) {
		t.Fatalf("missing bucket exemplar:\n%s", om.String())
	}
	if !strings.Contains(om.String(), `lat_seconds_bucket{le="+Inf"} 2 # {trace_id="feedface00000002"} 3`) {
		t.Fatalf("missing overflow exemplar:\n%s", om.String())
	}
	if !strings.HasSuffix(om.String(), "# EOF\n") {
		t.Fatalf("OpenMetrics exposition must end with # EOF:\n%s", om.String())
	}

	// The exemplar-bearing exposition still parses, identically to the
	// plain one — exemplars are invisible to the sample grammar.
	fromOM, err := ParsePrometheus(strings.NewReader(om.String()))
	if err != nil {
		t.Fatalf("ParsePrometheus on OpenMetrics output: %v", err)
	}
	fromPlain, err := ParsePrometheus(strings.NewReader(plain.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(fromOM) != len(fromPlain) {
		t.Fatalf("series diverge: %d vs %d", len(fromOM), len(fromPlain))
	}
	for k, v := range fromPlain {
		if fromOM[k] != v {
			t.Fatalf("series %s: %v vs %v", k, fromOM[k], v)
		}
	}

	exs, err := ParseExemplars(strings.NewReader(om.String()))
	if err != nil {
		t.Fatal(err)
	}
	if ex := exs[`lat_seconds_bucket{le="0.1"}`]; ex.TraceID != "feedface00000001" || ex.Value != 0.05 {
		t.Fatalf("ParseExemplars bucket 0.1 = %+v (all: %v)", ex, exs)
	}
	if ex := exs[`lat_seconds_bucket{le="+Inf"}`]; ex.TraceID != "feedface00000002" {
		t.Fatalf("ParseExemplars +Inf = %+v", ex)
	}
	if len(exs) != 2 {
		t.Fatalf("want 2 exemplars, got %v", exs)
	}
}

func TestParsePrometheusToleratesExemplarLines(t *testing.T) {
	in := "h_bucket{le=\"0.1\"} 4 # {trace_id=\"abc\"} 0.09\n" +
		"h_bucket{le=\"+Inf\"} 5 # {trace_id=\"def\"} 2 1712345678\n" +
		"plain 7\n# EOF\n"
	series, err := ParsePrometheus(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if series[`h_bucket{le="0.1"}`] != 4 || series[`h_bucket{le="+Inf"}`] != 5 || series["plain"] != 7 {
		t.Fatalf("parsed %v", series)
	}
	if _, err := ParseExemplars(strings.NewReader("h_bucket{le=\"1\"} 2 # {trace_id=\"x\" 0.5\n")); err == nil {
		t.Fatal("ParseExemplars must reject an unterminated exemplar label set")
	}
}
