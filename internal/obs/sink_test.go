package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// Parallel Emit from many goroutines (the batch workers + HTTP handlers
// sharing one trace sink) must serialize into valid JSONL: every line a
// complete JSON object, no interleaved partial writes, no lost events.
func TestSinkConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	sink := NewSink(&buf)

	const goroutines = 16
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				err := sink.Emit("trace", map[string]any{
					"goroutine": g,
					"seq":       i,
					"payload":   fmt.Sprintf("g%d-i%d", g, i),
				})
				if err != nil {
					t.Errorf("emit: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	seen := make(map[string]bool, goroutines*perG)
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		var rec struct {
			Event     string `json:"event"`
			TS        string `json:"ts"`
			Goroutine int    `json:"goroutine"`
			Seq       int    `json:"seq"`
			Payload   string `json:"payload"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON (%v): %q", lines, err, sc.Text())
		}
		if rec.Event != "trace" || rec.TS == "" {
			t.Fatalf("line %d missing reserved fields: %q", lines, sc.Text())
		}
		want := fmt.Sprintf("g%d-i%d", rec.Goroutine, rec.Seq)
		if rec.Payload != want {
			t.Fatalf("line %d payload %q, want %q", lines, rec.Payload, want)
		}
		if seen[want] {
			t.Fatalf("event %s emitted twice", want)
		}
		seen[want] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != goroutines*perG {
		t.Fatalf("%d JSONL lines, want %d (events lost or split)", lines, goroutines*perG)
	}
}
