// Package obs is a zero-dependency observability layer for the CardNet
// stack: named counters, gauges, and fixed-bucket histograms collected in a
// Registry, a lightweight span/timer API, and a JSONL structured-event sink.
// Everything is safe for concurrent use and cheap enough for the estimation
// hot path (an atomic load plus a handful of atomic adds per observation).
//
// A process-wide Default registry is what the core model, the bench harness,
// and the `cardnet serve` /metrics endpoint share. Instrumentation can be
// switched off globally with SetEnabled(false), which turns every record
// call into a single atomic load — the `cardnet -mode obsbench` baseline
// measures the difference.
package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// enabled gates every metric mutation. Snapshots still work when disabled.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled switches metric collection on or off process-wide.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether metric collection is active.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a last-write-wins float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if !enabled.Load() {
		return
	}
	g.bits.Store(floatBits(v))
}

// Value returns the stored value (0 before the first Set).
func (g *Gauge) Value() float64 { return bitsFloat(g.bits.Load()) }

// Registry is a namespace of metrics. Metrics are created on first use and
// live for the registry's lifetime; lookups after creation are read-locked.
type Registry struct {
	mu     sync.RWMutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	infos  map[string][]Label
}

// Default is the process-wide registry shared by the instrumented packages.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
		infos:  make(map[string][]Label),
	}
}

// SetInfo registers (or replaces) an info series: a constant gauge with
// value 1 whose labels carry identity facts — the Prometheus build_info
// idiom. Exposed by WritePrometheus with the given label set and by Snapshot
// under "info". Unlike the other metric kinds, SetInfo is not hot-path code
// and ignores the global enable switch.
func (r *Registry) SetInfo(name string, labels ...Label) {
	r.mu.Lock()
	r.infos[name] = append([]Label(nil), labels...)
	r.mu.Unlock()
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counts[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counts[name]; ok {
		return c
	}
	c = &Counter{}
	r.counts[name] = c
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds if needed (bounds are ignored when the histogram exists).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = NewHistogram(bounds)
	r.hists[name] = h
	return h
}

// Snapshot returns a JSON-marshalable view of every metric: counter and
// gauge values plus histogram summaries (count/sum/mean, p50/p95/p99, and
// per-bucket cumulative counts), in the style of expvar.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	defer r.mu.RUnlock()
	counters := make(map[string]uint64, len(r.counts))
	for name, c := range r.counts {
		counters[name] = c.Value()
	}
	gauges := make(map[string]float64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]HistSnapshot, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h.Snapshot()
	}
	out := map[string]any{
		"counters":   counters,
		"gauges":     gauges,
		"histograms": hists,
	}
	if len(r.infos) > 0 {
		infos := make(map[string]map[string]string, len(r.infos))
		for name, ls := range r.infos {
			lm := make(map[string]string, len(ls))
			for _, l := range ls {
				lm[l.Name] = l.Value
			}
			infos[name] = lm
		}
		out["info"] = infos
	}
	return out
}

// SeriesSnapshot renders the registry through the Prometheus writer and
// parses the result straight back with ParsePrometheus, returning the flat
// canonical-series → value map. Federation merges the local instance through
// this path so the emitted exposition is provably parseable by the same
// parser that reads the peers.
func (r *Registry) SeriesSnapshot() (map[string]float64, error) {
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		return nil, err
	}
	return ParsePrometheus(&buf)
}

// WriteJSON writes the snapshot as indented JSON with sorted keys (the
// /metrics wire format).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Names returns every registered metric name, sorted (test/debug helper).
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counts)+len(r.gauges)+len(r.hists)+len(r.infos))
	for n := range r.infos {
		names = append(names, n)
	}
	for n := range r.counts {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
