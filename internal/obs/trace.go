package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Trace is one request's journey through the serving pipeline: a process-
// unique ID, a start time, and an ordered list of named stages whose
// durations tile the interval from Start to the last Mark exactly — every
// nanosecond between two marks is attributed to the later stage, so the
// per-stage histograms built from traces sum to the end-to-end latency by
// construction.
//
// A trace is handed between goroutines (HTTP handler → batch worker → HTTP
// handler); each hand-off happens-before the next mark via the engine's
// channels, and a mutex covers the one racy edge case (a caller abandoning a
// request on context expiry while a worker still holds its trace).
type Trace struct {
	ID    string
	Start time.Time

	mu     sync.Mutex
	last   time.Time
	stages []TraceStage
	attrs  map[string]any
}

// TraceStage is one completed pipeline stage.
type TraceStage struct {
	Name string  `json:"stage"`
	Us   float64 `json:"us"` // stage duration in microseconds
}

// traceSeq seeds trace IDs; the process start time makes IDs unique across
// restarts, the counter makes them unique within one.
var traceSeq atomic.Uint64

func init() { traceSeq.Store(uint64(time.Now().UnixNano())) }

// NewTrace starts a trace now with a fresh ID.
func NewTrace() *Trace {
	now := time.Now()
	return &Trace{ID: traceID(), Start: now, last: now}
}

// traceID returns a 16-hex-digit process-unique ID (a splitmix64 step over a
// time-seeded counter — cheap, collision-free within the process, and with
// no global lock on the hot path).
func traceID() string {
	z := traceSeq.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	const hex = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hex[z&0xf]
		z >>= 4
	}
	return string(b[:])
}

// Mark closes the stage running since the previous mark (or Start) and
// returns its duration.
func (t *Trace) Mark(name string) time.Duration {
	return t.MarkAt(name, time.Now())
}

// MarkAt closes the stage at an explicit end instant, so a batch worker can
// split one observed interval into queue-wait and batch-formation stages at
// the moment the batch started forming. Ends before the previous mark (the
// abandoned-request race) clamp to a zero-length stage.
func (t *Trace) MarkAt(name string, end time.Time) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := end.Sub(t.last)
	if d < 0 {
		d = 0
		end = t.last
	}
	t.last = end
	t.stages = append(t.stages, TraceStage{Name: name, Us: float64(d.Nanoseconds()) / 1e3})
	return d
}

// Annotate attaches a key/value to the trace (batch size, flush reason,
// cache hit/miss, model version, …).
func (t *Trace) Annotate(key string, v any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.attrs == nil {
		t.attrs = make(map[string]any, 4)
	}
	t.attrs[key] = v
}

// Total returns the traced interval: Start to the last mark.
func (t *Trace) Total() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.last.Sub(t.Start)
}

// Stages returns a copy of the completed stages.
func (t *Trace) Stages() []TraceStage {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceStage(nil), t.stages...)
}

// Fields renders the trace as a Sink event payload: id, total, the ordered
// stages, and every annotation (annotations are copied, so the caller may
// keep mutating the trace).
func (t *Trace) Fields() map[string]any {
	t.mu.Lock()
	defer t.mu.Unlock()
	f := map[string]any{
		"trace_id": t.ID,
		"total_us": float64(t.last.Sub(t.Start).Nanoseconds()) / 1e3,
		"stages":   append([]TraceStage(nil), t.stages...),
	}
	for k, v := range t.attrs {
		f[k] = v
	}
	return f
}

// TraceSampler emits every Nth trace to a JSONL sink: rate 0.01 means one
// trace in 100. Counter-based sampling is deterministic, cheap (one atomic
// add per request), and free of RNG locks on the hot path.
type TraceSampler struct {
	every uint64
	seq   atomic.Uint64
	sink  *Sink
}

// NewTraceSampler builds a sampler writing to sink at the given rate. A nil
// sink, or a rate outside (0, 1], yields a nil sampler (sampling off); rates
// are rounded to 1-in-round(1/rate).
func NewTraceSampler(rate float64, sink *Sink) *TraceSampler {
	if sink == nil || rate <= 0 || rate > 1 {
		return nil
	}
	every := uint64(1/rate + 0.5)
	if every < 1 {
		every = 1
	}
	return &TraceSampler{every: every, sink: sink}
}

// Sample reports whether the current request should be emitted, advancing
// the sampling sequence. Nil-safe.
func (s *TraceSampler) Sample() bool {
	if s == nil {
		return false
	}
	return s.seq.Add(1)%s.every == 0
}

// Emit writes one trace as a "trace" event. Nil-safe.
func (s *TraceSampler) Emit(t *Trace) error {
	if s == nil || t == nil {
		return nil
	}
	return s.sink.Emit("trace", t.Fields())
}

// Every returns the sampling stride (0 for a nil sampler), for reporting the
// effective rate back to the operator.
func (s *TraceSampler) Every() uint64 {
	if s == nil {
		return 0
	}
	return s.every
}
