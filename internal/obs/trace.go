package obs

import (
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Cross-process span-propagation headers. TraceHeader carries the fleet-wide
// trace ID (minted by whichever hop sees the request first — normally the
// cluster router); TraceParentHeader carries the parent span within that
// trace (the router's attempt span a replica's stage trace hangs under), so
// the two sides' sampled JSONL trace logs can be joined by `cardnet
// tracescan` into one end-to-end trace.
const (
	TraceHeader       = "X-Trace-Id"
	TraceParentHeader = "X-Trace-Parent"
	// TraceSampledHeader propagates the sampling decision: when the router
	// samples a request it sets this to "1" on the forwarded request, and
	// the replica emits its stage trace regardless of its own sampling
	// counter. Without decision propagation the two sides would sample
	// independently and their logs would almost never name the same
	// request at operational rates (two independent 1-in-100 counters
	// coincide 1 time in 10,000).
	TraceSampledHeader = "X-Trace-Sampled"
)

// Trace is one request's journey through the serving pipeline: a process-
// unique ID, a start time, and an ordered list of named stages whose
// durations tile the interval from Start to the last Mark exactly — every
// nanosecond between two marks is attributed to the later stage, so the
// per-stage histograms built from traces sum to the end-to-end latency by
// construction.
//
// A trace is handed between goroutines (HTTP handler → batch worker → HTTP
// handler); each hand-off happens-before the next mark via the engine's
// channels, and a mutex covers the one racy edge case (a caller abandoning a
// request on context expiry while a worker still holds its trace).
type Trace struct {
	ID    string
	Start time.Time

	mu     sync.Mutex
	last   time.Time
	stages []TraceStage
	attrs  map[string]any
}

// TraceStage is one completed pipeline stage.
type TraceStage struct {
	Name string  `json:"stage"`
	Us   float64 `json:"us"` // stage duration in microseconds
}

// traceSeq seeds trace IDs; the counter makes IDs unique within the process
// and the seed makes the ID stream unique across the fleet (see traceSeed).
var traceSeq atomic.Uint64

func init() { traceSeq.Store(traceSeed(time.Now().UnixNano(), os.Getpid())) }

// traceSeed derives the trace-ID counter's start point from the process
// start time and PID, both pushed through the splitmix64 finalizer. Time
// alone is not fleet-unique: two replicas launched in the same nanosecond
// (containers sharing a clock, a test forking a fleet) would walk identical
// ID streams. Mixing the PID in — and avalanching the combination — places
// each process's stream at an effectively random offset of the 2⁶⁴ counter
// cycle, so streams of distinct processes do not collide in practice.
func traceSeed(nano int64, pid int) uint64 {
	return mix64(uint64(nano)) ^ mix64(uint64(pid)+0x6a09e667f3bcc909)
}

// mix64 is the splitmix64 finalizer: a cheap invertible avalanche.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewTrace starts a trace now with a fresh ID.
func NewTrace() *Trace {
	now := time.Now()
	return &Trace{ID: traceID(), Start: now, last: now}
}

// NewTraceWith starts a trace now adopting a propagated trace ID (the
// TraceHeader value from an upstream hop); an empty id mints a fresh one, so
// edge processes and interior hops share one code path.
func NewTraceWith(id string) *Trace {
	if id == "" {
		return NewTrace()
	}
	now := time.Now()
	return &Trace{ID: id, Start: now, last: now}
}

// NewTraceID mints one fleet-unique 16-hex-digit ID without opening a trace —
// for join keys on non-request timelines (the rollout journal).
func NewTraceID() string { return traceID() }

// traceID returns a 16-hex-digit fleet-unique ID (a splitmix64 step over a
// time+PID-seeded counter — cheap, collision-free within the process, and
// with no global lock on the hot path).
func traceID() string {
	z := mix64(traceSeq.Add(0x9e3779b97f4a7c15))
	const hex = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hex[z&0xf]
		z >>= 4
	}
	return string(b[:])
}

// Mark closes the stage running since the previous mark (or Start) and
// returns its duration.
func (t *Trace) Mark(name string) time.Duration {
	return t.MarkAt(name, time.Now())
}

// MarkAt closes the stage at an explicit end instant, so a batch worker can
// split one observed interval into queue-wait and batch-formation stages at
// the moment the batch started forming. Ends before the previous mark (the
// abandoned-request race) clamp to a zero-length stage.
func (t *Trace) MarkAt(name string, end time.Time) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := end.Sub(t.last)
	if d < 0 {
		d = 0
		end = t.last
	}
	t.last = end
	t.stages = append(t.stages, TraceStage{Name: name, Us: float64(d.Nanoseconds()) / 1e3})
	return d
}

// Annotate attaches a key/value to the trace (batch size, flush reason,
// cache hit/miss, model version, …).
func (t *Trace) Annotate(key string, v any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.attrs == nil {
		t.attrs = make(map[string]any, 4)
	}
	t.attrs[key] = v
}

// Total returns the traced interval: Start to the last mark.
func (t *Trace) Total() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.last.Sub(t.Start)
}

// Stages returns a copy of the completed stages.
func (t *Trace) Stages() []TraceStage {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceStage(nil), t.stages...)
}

// Fields renders the trace as a Sink event payload: id, total, the ordered
// stages, and every annotation (annotations are copied, so the caller may
// keep mutating the trace).
func (t *Trace) Fields() map[string]any {
	t.mu.Lock()
	defer t.mu.Unlock()
	f := map[string]any{
		"trace_id": t.ID,
		"total_us": float64(t.last.Sub(t.Start).Nanoseconds()) / 1e3,
		"stages":   append([]TraceStage(nil), t.stages...),
	}
	for k, v := range t.attrs {
		f[k] = v
	}
	return f
}

// TraceSampler emits every Nth trace to a JSONL sink: rate 0.01 means one
// trace in 100. Counter-based sampling is deterministic, cheap (one atomic
// add per request), and free of RNG locks on the hot path. Emission is
// asynchronous: Emit hands the rendered trace to a background writer over a
// bounded queue, so JSON marshaling and the write syscall never sit on the
// request path. A full queue drops the trace (counted, never blocking);
// Close drains the queue, so traces emitted before Close are durable.
type TraceSampler struct {
	every   uint64
	seq     atomic.Uint64
	sink    *Sink
	queue   chan map[string]any
	quit    chan struct{}
	done    chan struct{}
	dropped atomic.Uint64
	once    sync.Once
}

// traceQueueDepth bounds the async emission queue. At typical trace sizes
// the writer drains tens of thousands of lines per second, so the queue only
// fills if the sink's backing store stalls outright.
const traceQueueDepth = 1024

// NewTraceSampler builds a sampler writing to sink at the given rate. A nil
// sink, or a rate outside (0, 1], yields a nil sampler (sampling off); rates
// are rounded to 1-in-round(1/rate). The caller keeps ownership of sink and
// must Close the sampler (draining its queue) before closing the sink.
func NewTraceSampler(rate float64, sink *Sink) *TraceSampler {
	if sink == nil || rate <= 0 || rate > 1 {
		return nil
	}
	every := uint64(1/rate + 0.5)
	if every < 1 {
		every = 1
	}
	s := &TraceSampler{
		every: every,
		sink:  sink,
		queue: make(chan map[string]any, traceQueueDepth),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go s.writer()
	return s
}

// writer is the background goroutine that owns all sink writes. On quit it
// drains whatever Emit already queued before acknowledging.
func (s *TraceSampler) writer() {
	defer close(s.done)
	for {
		select {
		case f := <-s.queue:
			s.sink.Emit("trace", f)
		case <-s.quit:
			for {
				select {
				case f := <-s.queue:
					s.sink.Emit("trace", f)
				default:
					return
				}
			}
		}
	}
}

// Sample reports whether the current request should be emitted, advancing
// the sampling sequence. Nil-safe.
func (s *TraceSampler) Sample() bool {
	if s == nil {
		return false
	}
	return s.seq.Add(1)%s.every == 0
}

// Emit queues one trace for background emission as a "trace" event. The
// hot-path cost is rendering the fields map and one channel send; if the
// queue is full the trace is dropped and counted. Nil-safe.
func (s *TraceSampler) Emit(t *Trace) error {
	if s == nil || t == nil {
		return nil
	}
	select {
	case s.queue <- t.Fields():
	default:
		s.dropped.Add(1)
	}
	return nil
}

// Dropped reports traces lost to a full emission queue. Nil-safe.
func (s *TraceSampler) Dropped() uint64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Close stops the background writer after draining every queued trace. It
// does not close the sink (the caller owns it). Idempotent and nil-safe;
// traces emitted concurrently with Close may be dropped.
func (s *TraceSampler) Close() error {
	if s == nil {
		return nil
	}
	s.once.Do(func() {
		close(s.quit)
		<-s.done
	})
	return nil
}

// Every returns the sampling stride (0 for a nil sampler), for reporting the
// effective rate back to the operator.
func (s *TraceSampler) Every() uint64 {
	if s == nil {
		return 0
	}
	return s.every
}
