package obs

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Prometheus text exposition content type served by
// /metrics when the scraper asks for it.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every metric in the registry in the Prometheus
// text exposition format (version 0.0.4), with no dependency on the
// Prometheus client library. Metric names are sanitized ('.' and any other
// invalid rune become '_'), output is sorted by metric name so the format is
// deterministic, histograms emit cumulative buckets with a trailing +Inf
// bucket plus _sum and _count series, and counters carry a _total suffix per
// the naming convention.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	type hist struct {
		name string
		h    *Histogram
	}
	counters := make(map[string]uint64, len(r.counts))
	for name, c := range r.counts {
		counters[name] = c.Value()
	}
	gauges := make(map[string]float64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	hists := make([]hist, 0, len(r.hists))
	for name, h := range r.hists {
		hists = append(hists, hist{name, h})
	}
	r.mu.RUnlock()

	bw := bufio.NewWriter(w)
	for _, name := range sortedKeys(counters) {
		pn := PromName(name) + "_total"
		writeHeader(bw, pn, "counter", "counter "+name)
		bw.WriteString(pn)
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(counters[name], 10))
		bw.WriteByte('\n')
	}
	for _, name := range sortedKeys(gauges) {
		pn := PromName(name)
		writeHeader(bw, pn, "gauge", "gauge "+name)
		bw.WriteString(pn)
		bw.WriteByte(' ')
		bw.WriteString(formatPromValue(gauges[name]))
		bw.WriteByte('\n')
	}
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
	for _, e := range hists {
		pn := PromName(e.name)
		writeHeader(bw, pn, "histogram", "histogram "+e.name)
		s := e.h.Snapshot()
		for _, b := range s.Buckets {
			bw.WriteString(pn)
			bw.WriteString(`_bucket{le="`)
			bw.WriteString(escapeLabel(formatPromValue(b.UpperBound)))
			bw.WriteString(`"} `)
			bw.WriteString(strconv.FormatUint(b.Count, 10))
			bw.WriteByte('\n')
		}
		bw.WriteString(pn)
		bw.WriteString(`_bucket{le="+Inf"} `)
		bw.WriteString(strconv.FormatUint(s.Count, 10))
		bw.WriteByte('\n')
		bw.WriteString(pn)
		bw.WriteString("_sum ")
		bw.WriteString(formatPromValue(s.Sum))
		bw.WriteByte('\n')
		bw.WriteString(pn)
		bw.WriteString("_count ")
		bw.WriteString(strconv.FormatUint(s.Count, 10))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

func writeHeader(bw *bufio.Writer, name, typ, help string) {
	bw.WriteString("# HELP ")
	bw.WriteString(name)
	bw.WriteByte(' ')
	bw.WriteString(escapeHelp(help))
	bw.WriteString("\n# TYPE ")
	bw.WriteString(name)
	bw.WriteByte(' ')
	bw.WriteString(typ)
	bw.WriteByte('\n')
}

// PromName sanitizes a registry metric name into the Prometheus metric name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*; every invalid rune maps to '_' and a
// leading digit is prefixed with '_'.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		valid := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if valid {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// formatPromValue renders a float the way Prometheus expects: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP line: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, newline, double quote.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// ParsePrometheus parses text-exposition output back into a flat map of
// series id ("name" or `name{le="…"}`) → value. It is a round-trip
// validator for tests and scrape self-checks, not a general openmetrics
// parser: it enforces the 0.0.4 line grammar this package emits (comment
// lines, one sample per line, a parseable float value, a valid metric name).
func ParsePrometheus(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		sp := strings.LastIndexByte(text, ' ')
		if sp <= 0 || sp == len(text)-1 {
			return nil, parseErr(line, "no value", text)
		}
		series, val := text[:sp], text[sp+1:]
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				return nil, parseErr(line, "unterminated label set", text)
			}
			name = series[:i]
		}
		if PromName(name) != name || name == "" {
			return nil, parseErr(line, "invalid metric name", text)
		}
		v, err := strconv.ParseFloat(strings.Replace(val, "+Inf", "Inf", 1), 64)
		if err != nil {
			return nil, parseErr(line, "bad value", text)
		}
		if _, dup := out[series]; dup {
			return nil, parseErr(line, "duplicate series", text)
		}
		out[series] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseErr(line int, msg, text string) error {
	return &promParseError{line: line, msg: msg, text: text}
}

type promParseError struct {
	line int
	msg  string
	text string
}

func (e *promParseError) Error() string {
	return "obs: prometheus parse line " + strconv.Itoa(e.line) + ": " + e.msg + ": " + e.text
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
