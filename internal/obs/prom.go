package obs

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Prometheus text exposition content type served by
// /metrics when the scraper asks for it.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// OpenMetricsContentType is served when the scraper negotiates OpenMetrics —
// the exposition that carries per-bucket exemplars.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// Label is one name="value" pair attached to a Prometheus series (an info
// metric's constant labels, a histogram bucket's le, federation's instance).
type Label struct {
	Name  string
	Value string
}

// WritePrometheus renders every metric in the registry in the Prometheus
// text exposition format (version 0.0.4), with no dependency on the
// Prometheus client library. Metric names are sanitized ('.' and any other
// invalid rune become '_'), output is sorted by metric name so the format is
// deterministic, histograms emit cumulative buckets with a trailing +Inf
// bucket plus _sum and _count series (explicit non-finite bounds are folded
// into that synthetic +Inf bucket rather than duplicating it), counters
// carry a _total suffix per the naming convention, and info series render as
// constant gauges with their label sets.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.writeExposition(w, false)
}

// WriteOpenMetrics renders the registry like WritePrometheus but appends
// OpenMetrics exemplars (`… # {trace_id="…"} value`) to histogram bucket
// lines whose bucket holds one, and terminates the exposition with `# EOF`.
// The base line grammar is unchanged, so ParsePrometheus round-trips both
// expositions.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	return r.writeExposition(w, true)
}

// writeExposition is the shared renderer behind both exposition formats.
func (r *Registry) writeExposition(w io.Writer, exemplars bool) error {
	r.mu.RLock()
	type hist struct {
		name string
		h    *Histogram
	}
	counters := make(map[string]uint64, len(r.counts))
	for name, c := range r.counts {
		counters[name] = c.Value()
	}
	gauges := make(map[string]float64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	infos := make(map[string][]Label, len(r.infos))
	for name, ls := range r.infos {
		infos[name] = ls
	}
	hists := make([]hist, 0, len(r.hists))
	for name, h := range r.hists {
		hists = append(hists, hist{name, h})
	}
	r.mu.RUnlock()

	bw := bufio.NewWriter(w)
	for _, name := range sortedKeys(counters) {
		pn := PromName(name) + "_total"
		writeHeader(bw, pn, "counter", "counter "+name)
		bw.WriteString(pn)
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(counters[name], 10))
		bw.WriteByte('\n')
	}
	for _, name := range sortedKeys(gauges) {
		pn := PromName(name)
		writeHeader(bw, pn, "gauge", "gauge "+name)
		bw.WriteString(pn)
		bw.WriteByte(' ')
		bw.WriteString(formatPromValue(gauges[name]))
		bw.WriteByte('\n')
	}
	for _, name := range sortedKeys(infos) {
		pn := PromName(name)
		writeHeader(bw, pn, "gauge", "info "+name)
		bw.WriteString(FormatSeries(pn, infos[name]))
		bw.WriteString(" 1\n")
	}
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
	for _, e := range hists {
		pn := PromName(e.name)
		writeHeader(bw, pn, "histogram", "histogram "+e.name)
		s := e.h.Snapshot()
		for bi, b := range s.Buckets {
			if math.IsInf(b.UpperBound, 0) || math.IsNaN(b.UpperBound) {
				continue // the synthetic +Inf bucket below carries the total
			}
			bw.WriteString(pn)
			bw.WriteString(`_bucket{le="`)
			bw.WriteString(escapeLabel(formatPromValue(b.UpperBound)))
			bw.WriteString(`"} `)
			bw.WriteString(strconv.FormatUint(b.Count, 10))
			if exemplars {
				writeExemplar(bw, e.h, bi)
			}
			bw.WriteByte('\n')
		}
		bw.WriteString(pn)
		bw.WriteString(`_bucket{le="+Inf"} `)
		bw.WriteString(strconv.FormatUint(s.Count, 10))
		if exemplars {
			writeExemplar(bw, e.h, len(s.Buckets))
		}
		bw.WriteByte('\n')
		bw.WriteString(pn)
		bw.WriteString("_sum ")
		bw.WriteString(formatPromValue(s.Sum))
		bw.WriteByte('\n')
		bw.WriteString(pn)
		bw.WriteString("_count ")
		bw.WriteString(strconv.FormatUint(s.Count, 10))
		bw.WriteByte('\n')
	}
	if exemplars {
		bw.WriteString("# EOF\n")
	}
	return bw.Flush()
}

// writeExemplar appends bucket bi's exemplar to the current bucket line
// (` # {trace_id="…"} value`), writing nothing when the bucket has none.
func writeExemplar(bw *bufio.Writer, h *Histogram, bi int) {
	ex, ok := h.BucketExemplar(bi)
	if !ok {
		return
	}
	bw.WriteString(` # {trace_id="`)
	bw.WriteString(escapeLabel(ex.TraceID))
	bw.WriteString(`"} `)
	bw.WriteString(formatPromValue(ex.Value))
}

func writeHeader(bw *bufio.Writer, name, typ, help string) {
	bw.WriteString("# HELP ")
	bw.WriteString(name)
	bw.WriteByte(' ')
	bw.WriteString(escapeHelp(help))
	bw.WriteString("\n# TYPE ")
	bw.WriteString(name)
	bw.WriteByte(' ')
	bw.WriteString(typ)
	bw.WriteByte('\n')
}

// PromName sanitizes a registry metric name into the Prometheus metric name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*; every invalid rune maps to '_' and a
// leading digit is prefixed with '_'.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		valid := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if valid {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// FormatSeries renders a series id from a metric name and labels in the
// canonical form this package uses as map keys: labels sorted by name, values
// escaped, no trailing comma. No labels yields the bare name. The name and
// label names are not sanitized here — callers pass already-valid ones.
func FormatSeries(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.SliceStable(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatPromValue renders a float the way Prometheus expects: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP line: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, newline, double quote.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// ParsePrometheus parses text-exposition output into a flat map of canonical
// series id ("name" or `name{a="b",le="…"}`, labels sorted by name) → value.
// It is the load-bearing half of federation as well as the round-trip
// validator for tests and scrape self-checks: label sets are fully parsed
// (escape sequences \\, \", \n decoded; anything else rejected), a trailing
// integer timestamp is tolerated, and any malformed line fails with its line
// and column position. It enforces the 0.0.4 line grammar rather than the
// full OpenMetrics spec.
func ParsePrometheus(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" || strings.HasPrefix(text, "#") {
			continue
		}
		id, v, perr := parseSampleLine(text)
		if perr != nil {
			perr.line = line
			return nil, perr
		}
		if _, dup := out[id]; dup {
			return nil, &promParseError{line: line, col: 1, msg: "duplicate series", text: text}
		}
		out[id] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseSampleLine parses one sample line "name{labels} value [timestamp]"
// into a canonical series id and value. The returned error has its column
// set; the caller fills in the line number.
func parseSampleLine(text string) (string, float64, *promParseError) {
	fail := func(col int, msg string) (string, float64, *promParseError) {
		return "", 0, &promParseError{col: col + 1, msg: msg, text: text}
	}
	i := 0
	// Metric name: [a-zA-Z_:][a-zA-Z0-9_:]*
	for i < len(text) && isNameRune(text[i], i > 0) {
		i++
	}
	if i == 0 {
		return fail(0, "invalid metric name")
	}
	name := text[:i]
	var labels []Label
	if i < len(text) && text[i] == '{' {
		var perr *promParseError
		labels, i, perr = parseLabelSet(text, i+1)
		if perr != nil {
			return "", 0, perr
		}
	}
	if i >= len(text) || (text[i] != ' ' && text[i] != '\t') {
		return fail(i, "expected space before value")
	}
	for i < len(text) && (text[i] == ' ' || text[i] == '\t') {
		i++
	}
	rest := text[i:]
	// An OpenMetrics exemplar (` # {…} value`) may trail the sample; neither
	// the value token nor a timestamp can contain '#', so strip from the
	// first one. Exposition comments never reach here (leading-# lines are
	// skipped by the caller).
	if j := strings.IndexByte(rest, '#'); j >= 0 {
		rest = strings.TrimRight(rest[:j], " \t")
	}
	valTok := rest
	if sp := strings.IndexAny(rest, " \t"); sp >= 0 {
		valTok = rest[:sp]
		// Anything after the value must be a plain integer timestamp.
		ts := strings.TrimSpace(rest[sp:])
		if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
			return fail(i+sp+1, "trailing garbage after value (not a timestamp)")
		}
	}
	if valTok == "" {
		return fail(i, "no value")
	}
	v, err := strconv.ParseFloat(valTok, 64)
	if err != nil {
		return fail(i, "bad value")
	}
	return FormatSeries(name, labels), v, nil
}

// parseLabelSet parses `k="v",…}` starting just past the opening brace and
// returns the labels and the index just past the closing brace.
func parseLabelSet(text string, i int) ([]Label, int, *promParseError) {
	fail := func(col int, msg string) ([]Label, int, *promParseError) {
		return nil, 0, &promParseError{col: col + 1, msg: msg, text: text}
	}
	var labels []Label
	for {
		if i >= len(text) {
			return fail(i, "unterminated label set")
		}
		if text[i] == '}' { // {} and trailing commas are legal
			return labels, i + 1, nil
		}
		start := i
		for i < len(text) && isLabelNameRune(text[i], i > start) {
			i++
		}
		if i == start {
			return fail(i, "invalid label name")
		}
		lname := text[start:i]
		if i >= len(text) || text[i] != '=' {
			return fail(i, "expected '=' after label name")
		}
		i++
		if i >= len(text) || text[i] != '"' {
			return fail(i, "expected '\"' to open label value")
		}
		i++
		var val strings.Builder
		for {
			if i >= len(text) {
				return fail(i, "unterminated label value")
			}
			c := text[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(text) {
					return fail(i, "dangling escape in label value")
				}
				switch text[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return fail(i, "unknown escape in label value")
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels = append(labels, Label{Name: lname, Value: val.String()})
		if i < len(text) && text[i] == ',' {
			i++
			continue
		}
		if i < len(text) && text[i] == '}' {
			return labels, i + 1, nil
		}
		return fail(i, "expected ',' or '}' after label")
	}
}

// ParseExemplars extracts the OpenMetrics exemplars from an exposition: a
// map of canonical series id (the `…_bucket{le="…"}` line the exemplar
// trails) → exemplar. Lines without exemplars are skipped; malformed
// exemplar payloads fail with position info like ParsePrometheus.
func ParseExemplars(r io.Reader) (map[string]Exemplar, error) {
	out := make(map[string]Exemplar)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" || strings.HasPrefix(text, "#") {
			continue
		}
		hash := strings.Index(text, " # {")
		if hash < 0 {
			continue
		}
		id, _, perr := parseSampleLine(text[:hash])
		if perr != nil {
			perr.line = line
			return nil, perr
		}
		labels, j, perr := parseLabelSet(text, hash+len(" # {"))
		if perr != nil {
			perr.line = line
			return nil, perr
		}
		valTok := strings.TrimSpace(text[j:])
		if sp := strings.IndexAny(valTok, " \t"); sp >= 0 {
			valTok = valTok[:sp] // ignore an optional exemplar timestamp
		}
		v, err := strconv.ParseFloat(valTok, 64)
		if err != nil {
			return nil, &promParseError{line: line, col: j + 1, msg: "bad exemplar value", text: text}
		}
		ex := Exemplar{Value: v}
		for _, l := range labels {
			if l.Name == "trace_id" {
				ex.TraceID = l.Value
			}
		}
		out[id] = ex
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func isNameRune(c byte, notFirst bool) bool {
	return c == '_' || c == ':' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
		(notFirst && c >= '0' && c <= '9')
}

func isLabelNameRune(c byte, notFirst bool) bool {
	return c == '_' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
		(notFirst && c >= '0' && c <= '9')
}

type promParseError struct {
	line int
	col  int
	msg  string
	text string
}

func (e *promParseError) Error() string {
	return "obs: prometheus parse line " + strconv.Itoa(e.line) + " col " + strconv.Itoa(e.col) + ": " + e.msg + ": " + e.text
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
