package obs

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"
)

// RemoteSnapshot is one peer's scraped metric state: an instance label
// identifying the peer, the flat canonical-series map ParsePrometheus
// produced, and the scrape or parse error if the peer was unreachable or
// emitted garbage (Series is nil in that case).
type RemoteSnapshot struct {
	Instance string
	Series   map[string]float64
	Err      error
}

// federateClient is the default scrape client: short timeout so one dead
// peer cannot stall a federation request past its own deadline.
var federateClient = &http.Client{Timeout: 5 * time.Second}

// GatherRemote scrapes each URL's Prometheus text exposition concurrently
// and returns one RemoteSnapshot per target, in input order. The instance
// label is the URL's host:port. A nil client uses a default with a 5s
// timeout; ctx bounds all scrapes together. Errors are reported per
// snapshot, never returned — a half-reachable fleet still federates.
func GatherRemote(ctx context.Context, client *http.Client, urls []string) []RemoteSnapshot {
	if client == nil {
		client = federateClient
	}
	snaps := make([]RemoteSnapshot, len(urls))
	var wg sync.WaitGroup
	wg.Add(len(urls))
	for i, target := range urls {
		go func(i int, target string) {
			defer wg.Done()
			snaps[i] = scrapeOne(ctx, client, target)
		}(i, target)
	}
	wg.Wait()
	return snaps
}

// scrapeOne fetches and parses one peer's /metrics.
func scrapeOne(ctx context.Context, client *http.Client, target string) RemoteSnapshot {
	snap := RemoteSnapshot{Instance: instanceLabel(target)}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		snap.Err = err
		return snap
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := client.Do(req)
	if err != nil {
		snap.Err = err
		return snap
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		snap.Err = fmt.Errorf("obs: scrape %s: status %d", target, resp.StatusCode)
		return snap
	}
	series, err := ParsePrometheus(resp.Body)
	if err != nil {
		snap.Err = fmt.Errorf("obs: scrape %s: %w", target, err)
		return snap
	}
	snap.Series = series
	return snap
}

// instanceLabel derives the instance label from a scrape URL: host:port when
// the URL parses, the raw string otherwise.
func instanceLabel(target string) string {
	if u, err := url.Parse(target); err == nil && u.Host != "" {
		return u.Host
	}
	return target
}

// WriteFederated merges snapshots into one Prometheus text exposition: every
// series gains an instance label naming its origin (a pre-existing instance
// label — a peer that itself federates — is renamed exported_instance, the
// Prometheus convention), and each snapshot contributes a federate_up series
// (1 scraped clean, 0 errored). Output is sorted, carries no HELP/TYPE
// headers (per-instance types are the origin's business), and re-parses
// cleanly through ParsePrometheus — the round trip a downstream federator
// depends on.
func WriteFederated(w io.Writer, snaps []RemoteSnapshot) error {
	merged := make(map[string]float64)
	for _, s := range snaps {
		up := 0.0
		if s.Err == nil {
			up = 1
			for id, v := range s.Series {
				nid, err := addInstance(id, s.Instance)
				if err != nil {
					continue // unparseable id from a hand-built snapshot: drop
				}
				merged[nid] = v
			}
		}
		merged[FormatSeries("federate_up", []Label{{Name: "instance", Value: s.Instance}})] = up
	}
	ids := sortedKeys(merged)
	for _, id := range ids {
		if _, err := fmt.Fprintf(w, "%s %s\n", id, formatPromValue(merged[id])); err != nil {
			return err
		}
	}
	return nil
}

// addInstance rewrites a canonical series id to carry instance=inst,
// renaming a pre-existing instance label to exported_instance.
func addInstance(id, inst string) (string, error) {
	name, labels, err := splitSeriesID(id)
	if err != nil {
		return "", err
	}
	for i := range labels {
		if labels[i].Name == "instance" {
			labels[i].Name = "exported_instance"
		}
	}
	labels = append(labels, Label{Name: "instance", Value: inst})
	return FormatSeries(name, labels), nil
}

// SplitSeries parses a canonical series id — the key shape produced by
// FormatSeries and by ParsePrometheus results — back into its metric name and
// label set. Consumers of federated or scraped series use it to read label
// values (le bounds, instance names) without re-tokenizing the exposition.
func SplitSeries(id string) (string, []Label, error) { return splitSeriesID(id) }

// splitSeriesID parses a canonical series id back into name and labels.
func splitSeriesID(id string) (string, []Label, error) {
	i := 0
	for i < len(id) && isNameRune(id[i], i > 0) {
		i++
	}
	if i == 0 {
		return "", nil, fmt.Errorf("obs: invalid series id %q", id)
	}
	name := id[:i]
	if i == len(id) {
		return name, nil, nil
	}
	if id[i] != '{' {
		return "", nil, fmt.Errorf("obs: invalid series id %q", id)
	}
	labels, end, perr := parseLabelSet(id, i+1)
	if perr != nil || end != len(id) {
		return "", nil, fmt.Errorf("obs: invalid series id %q", id)
	}
	return name, labels, nil
}
