package obs

import "testing"

// streamIDs reproduces traceID's generator from an explicit seed: the
// splitmix64 step over a counter starting at seed. It mirrors the production
// path exactly so the collision test exercises the real construction.
func streamIDs(seed uint64, n int) []uint64 {
	out := make([]uint64, n)
	z := seed
	for i := range out {
		z += 0x9e3779b97f4a7c15
		out[i] = mix64(z)
	}
	return out
}

// TestTraceSeedFleetUnique is the regression for the process-unique-only
// trace IDs: two replicas forked in the same nanosecond (identical clock
// reading, different PIDs) must not walk overlapping ID streams. Before the
// PID mix-in both processes seeded the counter with the bare nanosecond and
// produced byte-identical ID sequences.
func TestTraceSeedFleetUnique(t *testing.T) {
	const nano = int64(1754600000123456789)
	const n = 50000
	pids := []int{1, 2, 4242, 4243, 65535}
	seen := make(map[uint64]int, n*len(pids))
	for _, pid := range pids {
		seed := traceSeed(nano, pid)
		for _, id := range streamIDs(seed, n) {
			if prev, dup := seen[id]; dup {
				t.Fatalf("trace ID %016x collides between pid %d and pid %d (same-nanosecond start)", id, prev, pid)
			}
			seen[id] = pid
		}
	}
	// And the old failure mode stays covered: identical (nano, pid) is the
	// same process, so identical streams there are expected.
	a, b := traceSeed(nano, 77), traceSeed(nano, 77)
	if a != b {
		t.Fatalf("traceSeed not deterministic: %x vs %x", a, b)
	}
}

// TestTraceSeedSpreadsNeighbors checks adjacent seconds/PIDs land far apart:
// the finalizer must decorrelate near-identical inputs, or a fleet launched
// by one supervisor (sequential PIDs, same instant) degenerates to offset
// streams that collide after few requests.
func TestTraceSeedSpreadsNeighbors(t *testing.T) {
	base := traceSeed(1000, 100)
	for _, d := range []struct {
		nano int64
		pid  int
	}{{1001, 100}, {1000, 101}, {1001, 101}} {
		s := traceSeed(d.nano, d.pid)
		diff := s - base
		if diff > 1<<62 { // treat as signed distance
			diff = -diff
		}
		if diff < 1<<32 {
			t.Fatalf("seeds for (%d,%d) and (1000,100) only %d apart", d.nano, d.pid, diff)
		}
	}
}

func TestNewTraceWithAdoptsID(t *testing.T) {
	tr := NewTraceWith("deadbeefcafef00d")
	if tr.ID != "deadbeefcafef00d" {
		t.Fatalf("NewTraceWith ignored the propagated ID: %q", tr.ID)
	}
	tr.Mark("only")
	if got := len(tr.Stages()); got != 1 {
		t.Fatalf("adopted trace not usable: %d stages", got)
	}
	minted := NewTraceWith("")
	if minted.ID == "" || minted.ID == tr.ID {
		t.Fatalf("empty id must mint a fresh one, got %q", minted.ID)
	}
	if NewTraceID() == "" || NewTraceID() == NewTraceID() {
		t.Fatal("NewTraceID must mint distinct non-empty IDs")
	}
}
