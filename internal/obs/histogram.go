package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram counts observations into fixed buckets defined by ascending
// upper bounds, with an implicit +Inf overflow bucket. Sum and count are
// tracked exactly; quantiles are estimated by linear interpolation inside
// the bucket containing the target rank, so their resolution is the bucket
// width.
type Histogram struct {
	bounds    []float64
	counts    []atomic.Uint64 // len(bounds)+1, last is +Inf
	sum       atomic.Uint64   // float64 bits, CAS-accumulated
	n         atomic.Uint64
	exemplars []atomic.Pointer[Exemplar] // len(bounds)+1, last traced value per bucket
}

// Exemplar links one concrete observation to the trace that produced it: the
// last traced value to land in a histogram bucket keeps its trace ID, so a
// scraped latency spike resolves to a JSONL trace `cardnet tracescan` can
// explain. Captured only by ObserveExemplar — plain Observe pays nothing.
type Exemplar struct {
	TraceID string  `json:"trace_id"`
	Value   float64 `json:"value"`
}

// NewHistogram builds a histogram with the given upper bounds (sorted copies
// are taken; an empty slice yields a single +Inf bucket, i.e. count/sum/mean
// only).
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		bounds:    b,
		counts:    make([]atomic.Uint64, len(b)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(b)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, floatBits(bitsFloat(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveExemplar records one value and stamps its bucket's exemplar with
// the trace ID that produced it — one atomic pointer swap beyond Observe, so
// exemplar-linked histograms stay hot-path safe. An empty traceID degrades
// to a plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if !enabled.Load() {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v})
	}
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, floatBits(bitsFloat(old)+v)) {
			return
		}
	}
}

// ObserveExemplarDuration records a duration in seconds with an exemplar.
func (h *Histogram) ObserveExemplarDuration(d time.Duration, traceID string) {
	h.ObserveExemplar(d.Seconds(), traceID)
}

// BucketExemplar returns bucket i's exemplar (i indexes the snapshot's
// bucket order, with len(Buckets) addressing the +Inf overflow bucket); ok
// is false when nothing traced has landed there.
func (h *Histogram) BucketExemplar(i int) (Exemplar, bool) {
	if i < 0 || i >= len(h.exemplars) {
		return Exemplar{}, false
	}
	if e := h.exemplars[i].Load(); e != nil {
		return *e, true
	}
	return Exemplar{}, false
}

// ExemplarAbove returns the exemplar of the slowest populated bucket whose
// observations exceed bound — the concrete trace behind an SLO breach. The
// scan runs top-down so the worst traced offender wins.
func (h *Histogram) ExemplarAbove(bound float64) (Exemplar, bool) {
	for i := len(h.exemplars) - 1; i >= 0; i-- {
		// Bucket i holds values in (bounds[i-1], bounds[i]]; it can exceed
		// bound only when its upper edge does.
		if i < len(h.bounds) && h.bounds[i] <= bound {
			break
		}
		if e := h.exemplars[i].Load(); e != nil && e.Value > bound {
			return *e, true
		}
	}
	return Exemplar{}, false
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return bitsFloat(h.sum.Load()) }

// Bucket is one histogram bucket in a snapshot: the cumulative count of
// observations ≤ UpperBound.
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// HistSnapshot is a point-in-time histogram summary.
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Mean    float64  `json:"mean"`
	P50     float64  `json:"p50"`
	P95     float64  `json:"p95"`
	P99     float64  `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot summarizes the histogram. Concurrent Observes may land between
// the per-bucket loads; totals are recomputed from the buckets so the
// snapshot is internally consistent.
func (h *Histogram) Snapshot() HistSnapshot {
	raw := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		raw[i] = h.counts[i].Load()
		total += raw[i]
	}
	s := HistSnapshot{Count: total, Sum: h.Sum()}
	if total > 0 {
		s.Mean = s.Sum / float64(total)
	}
	s.Buckets = make([]Bucket, len(h.bounds))
	var cum uint64
	for i, b := range h.bounds {
		cum += raw[i]
		s.Buckets[i] = Bucket{UpperBound: b, Count: cum}
	}
	s.P50 = h.quantile(raw, total, 0.50)
	s.P95 = h.quantile(raw, total, 0.95)
	s.P99 = h.quantile(raw, total, 0.99)
	return s
}

// quantile interpolates quantile q from per-bucket counts. Values in the
// overflow bucket are attributed to the largest finite bound (a lower
// bound on the true quantile).
func (h *Histogram) quantile(raw []uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range raw {
		if c == 0 {
			continue
		}
		if cum+float64(c) >= rank {
			if i >= len(h.bounds) { // overflow bucket
				return h.maxBound()
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - cum) / float64(c)
			return lo + frac*(h.bounds[i]-lo)
		}
		cum += float64(c)
	}
	return h.maxBound()
}

func (h *Histogram) maxBound() float64 {
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// LinearBuckets returns n upper bounds start, start+width, …
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n upper bounds start, start·factor, start·factor², …
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// TimeBuckets are the default latency bounds in seconds: 1µs … ~8.6s in
// ×2 steps, matching the spread between a single fused-encoder estimate and
// a full training epoch.
func TimeBuckets() []float64 { return ExpBuckets(1e-6, 2, 24) }

// Timer measures one interval into a histogram (in seconds).
type Timer struct {
	h     *Histogram
	start time.Time
}

// StartTimer begins timing into h.
func StartTimer(h *Histogram) Timer { return Timer{h: h, start: time.Now()} }

// Stop records the elapsed time and returns it.
func (t Timer) Stop() time.Duration {
	d := time.Since(t.start)
	t.h.ObserveDuration(d)
	return d
}

// Span is a named timer bound to a registry: it records into the histogram
// "<name>.seconds" and counts completions in "<name>.calls".
type Span struct {
	name  string
	r     *Registry
	start time.Time
}

// StartSpan opens a span on the registry.
func (r *Registry) StartSpan(name string) Span {
	return Span{name: name, r: r, start: time.Now()}
}

// End closes the span, recording duration and call count.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	s.r.Histogram(s.name+".seconds", TimeBuckets()).ObserveDuration(d)
	s.r.Counter(s.name + ".calls").Inc()
	return d
}

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
