package slo

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"cardnet/internal/obs"
)

// epoch is the synthetic clock origin for deterministic Eval-driven tests.
var epoch = time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)

func availabilityTracker(t *testing.T, reg *obs.Registry, sink *obs.Sink, transitions *[]Transition) *Tracker {
	t.Helper()
	return New(Config{
		Registry:   reg,
		FastWindow: time.Minute,
		SlowWindow: 5 * time.Minute,
		WarnRate:   1,
		PageRate:   10,
		Sink:       sink,
		OnTransition: func(tr Transition) {
			*transitions = append(*transitions, tr)
		},
		Objectives: []Objective{{
			Name:          "availability",
			Target:        0.99,
			TotalCounter:  "http.estimate.requests",
			ErrorCounters: []string{"http.estimate.5xx"},
		}},
	})
}

func TestAvailabilityBurnRampOKWarnPageOK(t *testing.T) {
	obs.SetEnabled(true)
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	sink := obs.NewSink(&buf)
	var seen []Transition
	tr := availabilityTracker(t, reg, sink, &seen)

	total := reg.Counter("http.estimate.requests")
	errs := reg.Counter("http.estimate.5xx")

	// t0: clean traffic. First eval has no window baseline -> ok.
	total.Add(1000)
	tr.Eval(epoch)
	if got := tr.State(); got != StateOK {
		t.Fatalf("state after clean eval = %v", got)
	}

	// t0+2m: 40 errors over 1000 requests. Error rate 4% against a 1%
	// budget burns at 4x in both windows -> warn.
	total.Add(1000)
	errs.Add(40)
	tr.Eval(epoch.Add(2 * time.Minute))
	if got := tr.State(); got != StateWarn {
		t.Fatalf("state after 4x burn = %v, want warn", got)
	}

	// t0+4m: 200 errors over the next 1000. Fast window burns at 20x,
	// slow window (anchored at t0) at 12x -> page.
	total.Add(1000)
	errs.Add(200)
	tr.Eval(epoch.Add(4 * time.Minute))
	if got := tr.State(); got != StatePage {
		t.Fatalf("state after sustained burn = %v, want page", got)
	}

	// t0+20m: recovery. Both windows now only see clean traffic -> ok.
	total.Add(10000)
	tr.Eval(epoch.Add(20 * time.Minute))
	if got := tr.State(); got != StateOK {
		t.Fatalf("state after recovery = %v, want ok", got)
	}

	want := [][2]string{{"ok", "warn"}, {"warn", "page"}, {"page", "ok"}}
	if len(seen) != len(want) {
		t.Fatalf("transitions = %+v, want %d", seen, len(want))
	}
	for i, w := range want {
		if seen[i].From != w[0] || seen[i].To != w[1] {
			t.Fatalf("transition %d = %s->%s, want %s->%s", i, seen[i].From, seen[i].To, w[0], w[1])
		}
		if seen[i].Objective != "availability" {
			t.Fatalf("transition objective = %q", seen[i].Objective)
		}
	}
	if got := reg.Counter("slo.transitions").Value(); got != 3 {
		t.Fatalf("slo.transitions = %d, want 3", got)
	}

	// Every transition landed in the JSONL sink as a decodable event.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("sink lines = %d: %q", len(lines), buf.String())
	}
	for _, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("sink line %q: %v", line, err)
		}
		if ev["event"] != "slo.transition" {
			t.Fatalf("sink event = %v", ev["event"])
		}
	}
}

func TestStatusAndGauges(t *testing.T) {
	obs.SetEnabled(true)
	reg := obs.NewRegistry()
	var seen []Transition
	tr := availabilityTracker(t, reg, nil, &seen)

	total := reg.Counter("http.estimate.requests")
	errs := reg.Counter("http.estimate.5xx")
	total.Add(1000)
	tr.Eval(epoch)
	total.Add(1000)
	errs.Add(40)
	tr.Eval(epoch.Add(2 * time.Minute))

	st := tr.Status()
	if st.State != "warn" {
		t.Fatalf("status state = %q", st.State)
	}
	if st.FastWindow != "1m0s" || st.SlowWindow != "5m0s" {
		t.Fatalf("windows = %q/%q", st.FastWindow, st.SlowWindow)
	}
	if len(st.Objectives) != 1 {
		t.Fatalf("objectives = %+v", st.Objectives)
	}
	o := st.Objectives[0]
	if o.Kind != "availability" || o.Name != "availability" {
		t.Fatalf("objective = %+v", o)
	}
	if o.FastBurn < 3.9 || o.FastBurn > 4.1 {
		t.Fatalf("fast burn = %v, want ~4", o.FastBurn)
	}
	if o.FastTotal != 1000 || o.FastGood != 960 {
		t.Fatalf("fast window good/total = %v/%v", o.FastGood, o.FastTotal)
	}
	if got := reg.Gauge("slo.state").Value(); got != float64(StateWarn) {
		t.Fatalf("slo.state gauge = %v", got)
	}
	if got := reg.Gauge("slo.availability.burn_fast").Value(); got != o.FastBurn {
		t.Fatalf("burn gauge = %v, want %v", got, o.FastBurn)
	}

	// Status must serialize cleanly (the /slo wire format).
	if _, err := json.Marshal(st); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyObjectiveAndP99Trigger(t *testing.T) {
	obs.SetEnabled(true)
	reg := obs.NewRegistry()
	var p99Calls []float64
	tr := New(Config{
		Registry:     reg,
		FastWindow:   time.Minute,
		SlowWindow:   5 * time.Minute,
		P99Threshold: 0.05,
		OnP99: func(obj string, p99 float64) {
			if obj != "latency" {
				t.Errorf("p99 callback objective = %q", obj)
			}
			p99Calls = append(p99Calls, p99)
		},
		Objectives: []Objective{{
			Name:      "latency",
			Target:    0.5,
			Histogram: "serving.e2e.seconds",
			Bound:     0.1,
		}},
	})
	h := reg.Histogram("serving.e2e.seconds", obs.TimeBuckets())

	// Fast traffic: everything under the bound.
	for i := 0; i < 100; i++ {
		h.Observe(0.001)
	}
	tr.Eval(epoch)
	tr.Eval(epoch.Add(2 * time.Minute))
	if got := tr.State(); got != StateOK {
		t.Fatalf("state with fast traffic = %v", got)
	}
	if len(p99Calls) != 0 {
		t.Fatalf("p99 trigger fired on fast traffic: %v", p99Calls)
	}
	st := tr.Status().Objectives[0]
	if st.Kind != "latency" || st.Bound != 0.1 {
		t.Fatalf("objective status = %+v", st)
	}
	if st.FastP99 > 0.002 {
		t.Fatalf("fast p99 = %v for 1ms traffic", st.FastP99)
	}

	// Slow traffic: 100 requests at ~1s. The windowed p99 crosses the
	// threshold and the share under the bound collapses.
	for i := 0; i < 100; i++ {
		h.Observe(1.0)
	}
	tr.Eval(epoch.Add(4 * time.Minute))
	if got := tr.State(); got == StateOK {
		t.Fatalf("state stayed ok through latency regression")
	}
	if len(p99Calls) == 0 {
		t.Fatal("p99 trigger never fired")
	}
	if p99Calls[0] < 0.5 {
		t.Fatalf("windowed p99 = %v, want ~1s", p99Calls[0])
	}
}

// TestLatencyTransitionCarriesExemplar checks the /slo → trace workflow: a
// latency objective degrading names a concrete traced request beyond the
// bound, in the transition event, the JSONL sink line, and Status.
func TestLatencyTransitionCarriesExemplar(t *testing.T) {
	obs.SetEnabled(true)
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	var seen []Transition
	tr := New(Config{
		Registry:   reg,
		FastWindow: time.Minute,
		SlowWindow: 5 * time.Minute,
		Sink:       obs.NewSink(&buf),
		OnTransition: func(t Transition) {
			seen = append(seen, t)
		},
		Objectives: []Objective{{
			Name:      "latency",
			Target:    0.5,
			Histogram: "serving.e2e.seconds",
			Bound:     0.1,
		}},
	})
	h := reg.Histogram("serving.e2e.seconds", obs.TimeBuckets())
	for i := 0; i < 100; i++ {
		h.Observe(0.001)
	}
	tr.Eval(epoch)
	// Latency regression with traced observations: the slow requests carry
	// trace IDs, so the breach should name one.
	for i := 0; i < 100; i++ {
		h.ObserveExemplar(1.0, "feedfacecafe0042")
	}
	tr.Eval(epoch.Add(2 * time.Minute))

	if len(seen) == 0 {
		t.Fatal("latency regression produced no transition")
	}
	if seen[0].ExemplarTraceID != "feedfacecafe0042" {
		t.Fatalf("transition exemplar = %q, want the slow trace", seen[0].ExemplarTraceID)
	}
	if !strings.Contains(buf.String(), `"exemplar_trace_id":"feedfacecafe0042"`) {
		t.Fatalf("sink line missing exemplar: %s", buf.String())
	}
	st := tr.Status().Objectives[0]
	if st.State == "ok" || st.ExemplarTraceID != "feedfacecafe0042" {
		t.Fatalf("status lost the exemplar: %+v", st)
	}

	// Recovery transitions (toward ok) carry no exemplar: there is no
	// breach to explain.
	for i := 0; i < 10000; i++ {
		h.Observe(0.001)
	}
	tr.Eval(epoch.Add(4 * time.Minute))
	last := seen[len(seen)-1]
	if last.To == "ok" && last.ExemplarTraceID != "" {
		t.Fatalf("recovery transition carries an exemplar: %+v", last)
	}
}

func TestZeroTrafficStaysOK(t *testing.T) {
	obs.SetEnabled(true)
	reg := obs.NewRegistry()
	var seen []Transition
	tr := availabilityTracker(t, reg, nil, &seen)
	for i := 0; i < 10; i++ {
		tr.Eval(epoch.Add(time.Duration(i) * time.Minute))
	}
	if got := tr.State(); got != StateOK {
		t.Fatalf("state with zero traffic = %v", got)
	}
	if len(seen) != 0 {
		t.Fatalf("transitions with zero traffic: %+v", seen)
	}
}

func TestTrackerStartStop(t *testing.T) {
	obs.SetEnabled(true)
	reg := obs.NewRegistry()
	tr := New(Config{
		Registry: reg,
		Interval: time.Millisecond,
		Objectives: []Objective{{
			Name:          "availability",
			Target:        0.999,
			TotalCounter:  "http.estimate.requests",
			ErrorCounters: []string{"http.estimate.5xx"},
		}},
	})
	reg.Counter("http.estimate.requests").Add(10)
	tr.Start()
	deadline := time.Now().Add(2 * time.Second)
	for tr.Status().Objectives == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	tr.Stop()
	if tr.Status().Objectives == nil {
		t.Fatal("tracker never evaluated at 1ms cadence within 2s")
	}
	if got := tr.State(); got != StateOK {
		t.Fatalf("state = %v", got)
	}
}

func TestStateString(t *testing.T) {
	cases := map[State]string{StateOK: "ok", StateWarn: "warn", StatePage: "page", State(99): "ok"}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}
