// Package slo evaluates service-level objectives against the metrics the
// serving layer already records, using the multi-window burn-rate method:
// the rate at which the error budget is being consumed is measured over a
// fast window (default 5m, catches incidents quickly) and a slow window
// (default 1h, suppresses blips), and an alert state is raised only when
// both windows agree. States are ok → warn → page; every transition is
// counted, mirrored into gauges, optionally written to a JSONL sink, and
// delivered to a callback — `cardnet serve` wires that callback to
// triggered profile capture (internal/obs/profcap).
//
// Two objective kinds are supported, both read straight from an
// obs.Registry with no new instrumentation on the hot path:
//
//   - latency: "fraction of requests completing within Bound seconds ≥
//     Target", evaluated from a histogram's cumulative buckets (the good
//     count is the cumulative count at the smallest bucket bound ≥ Bound, so
//     the effective bound snaps to the histogram's resolution);
//   - availability: "fraction of requests not failing ≥ Target", evaluated
//     from a total counter minus error counters (5xx/503 in serving).
//
// Burn rate is (window error rate) / (1 − Target): burning at exactly 1.0
// exhausts the budget precisely at the period's end; the default thresholds
// warn at 1 and page at 10.
package slo

import (
	"sync"
	"time"

	"cardnet/internal/obs"
)

// State is an objective's alert level, ordered by severity.
type State int

// Alert states.
const (
	StateOK   State = iota // burning budget at a sustainable rate
	StateWarn              // both windows burning above Config.WarnRate
	StatePage              // both windows burning above Config.PageRate
)

// String renders the state as its wire form: ok, warn, page.
func (s State) String() string {
	switch s {
	case StatePage:
		return "page"
	case StateWarn:
		return "warn"
	default:
		return "ok"
	}
}

// Objective is one SLO. Exactly one of Histogram (latency kind) or
// TotalCounter (availability kind) must be set.
type Objective struct {
	// Name labels the objective in /slo, metrics, and events.
	Name string
	// Target is the good-event fraction promised, e.g. 0.99 (99% of
	// requests within the latency bound) or 0.999 availability.
	Target float64

	// Histogram names the latency histogram in the registry (latency kind).
	Histogram string
	// Bound is the latency objective's threshold in seconds: observations
	// at or under it are good.
	Bound float64

	// TotalCounter names the total-events counter (availability kind).
	TotalCounter string
	// ErrorCounters name the counters whose sum is the bad-event count.
	ErrorCounters []string
}

// Transition describes one state change of one objective.
type Transition struct {
	Objective string    `json:"objective"`
	From      string    `json:"from"`
	To        string    `json:"to"`
	FastBurn  float64   `json:"fast_burn"`
	SlowBurn  float64   `json:"slow_burn"`
	At        time.Time `json:"at"`
	// ExemplarTraceID is the trace behind the breach for latency objectives:
	// the histogram's exemplar above the objective's bound, i.e. a concrete
	// slow request an operator can look up in the trace log (`cardnet
	// tracescan`) instead of starting from an aggregate.
	ExemplarTraceID string `json:"exemplar_trace_id,omitempty"`
}

// Config tunes a Tracker. Zero values take the documented defaults.
type Config struct {
	// Registry holds the metrics the objectives read and receives the
	// tracker's own gauges/counters (default obs.Default).
	Registry *obs.Registry
	// Objectives are the SLOs to evaluate.
	Objectives []Objective
	// Interval is the evaluation period (default 5s).
	Interval time.Duration
	// FastWindow is the short burn-rate window (default 5m).
	FastWindow time.Duration
	// SlowWindow is the long burn-rate window (default 1h).
	SlowWindow time.Duration
	// WarnRate is the burn rate at which both windows must agree to enter
	// warn (default 1).
	WarnRate float64
	// PageRate is the burn rate at which both windows must agree to enter
	// page (default 10).
	PageRate float64
	// P99Threshold, when > 0, fires OnP99 whenever a latency objective's
	// fast-window p99 exceeds it (seconds) — the profile-capture trigger
	// independent of budget burn.
	P99Threshold float64
	// Sink, when set, receives one "slo.transition" JSONL event per state
	// change.
	Sink *obs.Sink
	// OnTransition, when set, is called (on the evaluation goroutine) for
	// every state change.
	OnTransition func(Transition)
	// OnP99, when set, is called when a latency objective's fast-window p99
	// exceeds P99Threshold.
	OnP99 func(objective string, p99 float64)
}

func (c Config) withDefaults() Config {
	if c.Registry == nil {
		c.Registry = obs.Default
	}
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	if c.FastWindow <= 0 {
		c.FastWindow = 5 * time.Minute
	}
	if c.SlowWindow < c.FastWindow {
		c.SlowWindow = time.Hour
		if c.SlowWindow < c.FastWindow {
			c.SlowWindow = c.FastWindow
		}
	}
	if c.WarnRate <= 0 {
		c.WarnRate = 1
	}
	if c.PageRate <= c.WarnRate {
		c.PageRate = 10
		if c.PageRate <= c.WarnRate {
			c.PageRate = c.WarnRate * 2
		}
	}
	return c
}

// sample is one cumulative observation of an objective's source metrics.
type sample struct {
	t       time.Time
	good    float64
	total   float64
	buckets []float64 // latency kind: per-bucket (non-cumulative) counts incl. overflow
}

// objectiveState tracks one objective's ring of samples and current state.
type objectiveState struct {
	obj    Objective
	hist   *obs.Histogram
	bounds []float64 // histogram bucket upper bounds (finite ones)
	total  *obs.Counter
	errs   []*obs.Counter

	ring []sample
	n    int // filled
	idx  int // next write

	state               State
	fastBurn, slowBurn  float64
	fastRate, slowRate  float64
	fastP99             float64
	fastGood, fastTotal float64

	gState *obs.Gauge
	gFast  *obs.Gauge
	gSlow  *obs.Gauge
}

// Tracker evaluates objectives on a fixed cadence. Build with New, start the
// loop with Start, stop with Stop; Eval is exported for deterministic tests
// and benchmarks.
type Tracker struct {
	cfg Config

	mu      sync.Mutex
	objs    []*objectiveState
	overall State

	cTransitions *obs.Counter
	gOverall     *obs.Gauge

	stop chan struct{}
	done chan struct{}
}

// New builds a tracker over cfg.Registry without starting the loop.
func New(cfg Config) *Tracker {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	t := &Tracker{
		cfg:          cfg,
		cTransitions: reg.Counter("slo.transitions"),
		gOverall:     reg.Gauge("slo.state"),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
	}
	// Ring capacity: enough samples to cover the slow window at the eval
	// cadence, plus slack for the baseline lookup; capped to bound memory.
	capacity := int(cfg.SlowWindow/cfg.Interval) + 4
	if capacity > 8192 {
		capacity = 8192
	}
	for _, o := range cfg.Objectives {
		st := &objectiveState{
			obj:    o,
			ring:   make([]sample, capacity),
			gState: reg.Gauge("slo." + o.Name + ".state"),
			gFast:  reg.Gauge("slo." + o.Name + ".burn_fast"),
			gSlow:  reg.Gauge("slo." + o.Name + ".burn_slow"),
		}
		if o.Histogram != "" {
			st.hist = reg.Histogram(o.Histogram, obs.TimeBuckets())
		} else {
			st.total = reg.Counter(o.TotalCounter)
			for _, e := range o.ErrorCounters {
				st.errs = append(st.errs, reg.Counter(e))
			}
		}
		t.objs = append(t.objs, st)
	}
	return t
}

// Start begins periodic evaluation.
func (t *Tracker) Start() {
	go t.loop()
}

// Stop halts the evaluation loop and waits for it to exit. Only valid after
// Start.
func (t *Tracker) Stop() {
	close(t.stop)
	<-t.done
}

func (t *Tracker) loop() {
	defer close(t.done)
	tick := time.NewTicker(t.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			t.Eval(time.Now())
		case <-t.stop:
			return
		}
	}
}

// Eval runs one evaluation pass at the given instant: snapshot every
// objective's cumulative counts, compute fast/slow-window burn rates, update
// states, and emit transitions. Exported so tests and benchmarks can drive
// the tracker with a synthetic clock.
func (t *Tracker) Eval(now time.Time) {
	type p99Breach struct {
		obj string
		p99 float64
	}
	var transitions []Transition
	var p99Breaches []p99Breach

	t.mu.Lock()
	overall := StateOK
	for _, st := range t.objs {
		cur := t.observe(st, now)
		st.push(cur)

		fast := st.window(now, t.cfg.FastWindow, cur)
		slow := st.window(now, t.cfg.SlowWindow, cur)
		budget := 1 - st.obj.Target
		if budget <= 0 {
			budget = 1e-9
		}
		st.fastRate, st.slowRate = fast.errRate, slow.errRate
		st.fastBurn, st.slowBurn = fast.errRate/budget, slow.errRate/budget
		st.fastGood, st.fastTotal = fast.good, fast.total
		st.fastP99 = fast.p99

		next := StateOK
		switch {
		case st.fastBurn >= t.cfg.PageRate && st.slowBurn >= t.cfg.PageRate:
			next = StatePage
		case st.fastBurn >= t.cfg.WarnRate && st.slowBurn >= t.cfg.WarnRate:
			next = StateWarn
		}
		if next != st.state {
			tr := Transition{
				Objective: st.obj.Name,
				From:      st.state.String(),
				To:        next.String(),
				FastBurn:  st.fastBurn,
				SlowBurn:  st.slowBurn,
				At:        now,
			}
			// A worsening latency objective names its culprit: the slowest
			// traced observation beyond the bound.
			if st.hist != nil && next > st.state {
				if ex, ok := st.hist.ExemplarAbove(st.obj.Bound); ok {
					tr.ExemplarTraceID = ex.TraceID
				}
			}
			transitions = append(transitions, tr)
			st.state = next
		}
		if st.obj.Histogram != "" && t.cfg.P99Threshold > 0 && fast.p99 > t.cfg.P99Threshold {
			p99Breaches = append(p99Breaches, p99Breach{obj: st.obj.Name, p99: fast.p99})
		}
		if st.state > overall {
			overall = st.state
		}
		st.gState.Set(float64(st.state))
		st.gFast.Set(st.fastBurn)
		st.gSlow.Set(st.slowBurn)
	}
	t.overall = overall
	t.gOverall.Set(float64(overall))
	t.mu.Unlock()

	// Deliver events outside the lock: callbacks may call Status.
	for _, tr := range transitions {
		t.cTransitions.Inc()
		if t.cfg.Sink != nil {
			fields := map[string]any{
				"objective": tr.Objective,
				"from":      tr.From,
				"to":        tr.To,
				"fast_burn": tr.FastBurn,
				"slow_burn": tr.SlowBurn,
			}
			if tr.ExemplarTraceID != "" {
				fields["exemplar_trace_id"] = tr.ExemplarTraceID
			}
			t.cfg.Sink.Emit("slo.transition", fields)
		}
		if t.cfg.OnTransition != nil {
			t.cfg.OnTransition(tr)
		}
	}
	if t.cfg.OnP99 != nil {
		for _, b := range p99Breaches {
			t.cfg.OnP99(b.obj, b.p99)
		}
	}
}

// observe reads one objective's current cumulative counts.
func (t *Tracker) observe(st *objectiveState, now time.Time) sample {
	s := sample{t: now}
	if st.hist != nil {
		snap := st.hist.Snapshot()
		if st.bounds == nil {
			for _, b := range snap.Buckets {
				st.bounds = append(st.bounds, b.UpperBound)
			}
		}
		// De-cumulate into per-bucket counts, overflow last.
		s.buckets = make([]float64, len(snap.Buckets)+1)
		prev := uint64(0)
		goodIdx := goodBucketIndex(st.bounds, st.obj.Bound)
		for i, b := range snap.Buckets {
			s.buckets[i] = float64(b.Count - prev)
			prev = b.Count
			if i == goodIdx {
				s.good = float64(b.Count)
			}
		}
		s.buckets[len(snap.Buckets)] = float64(snap.Count - prev)
		s.total = float64(snap.Count)
		if goodIdx < 0 { // bound above every bucket: everything counts as good
			s.good = s.total
		}
		return s
	}
	s.total = float64(st.total.Value())
	bad := 0.0
	for _, e := range st.errs {
		bad += float64(e.Value())
	}
	s.good = s.total - bad
	if s.good < 0 {
		s.good = 0
	}
	return s
}

// goodBucketIndex returns the index of the smallest bucket bound ≥ bound
// (the bucket whose cumulative count is the good count), or -1 when the
// bound exceeds every bucket.
func goodBucketIndex(bounds []float64, bound float64) int {
	for i, b := range bounds {
		if b >= bound {
			return i
		}
	}
	return -1
}

func (st *objectiveState) push(s sample) {
	st.ring[st.idx] = s
	st.idx = (st.idx + 1) % len(st.ring)
	if st.n < len(st.ring) {
		st.n++
	}
}

// windowStats is one window's delta view.
type windowStats struct {
	good, total float64
	errRate     float64
	p99         float64
}

// window computes the delta between the current sample and the newest
// sample at least `window` old. A process younger than the window uses its
// oldest sample — standard practice so fresh replicas still alert, at the
// cost of slightly optimistic slow windows early on.
func (st *objectiveState) window(now time.Time, window time.Duration, cur sample) windowStats {
	base := st.baseline(now.Add(-window))
	w := windowStats{
		good:  cur.good - base.good,
		total: cur.total - base.total,
	}
	if w.total > 0 {
		w.errRate = (w.total - w.good) / w.total
		if w.errRate < 0 {
			w.errRate = 0
		}
	}
	if cur.buckets != nil && base.buckets != nil && len(base.buckets) == len(cur.buckets) {
		delta := make([]float64, len(cur.buckets))
		for i := range delta {
			delta[i] = cur.buckets[i] - base.buckets[i]
		}
		w.p99 = BucketQuantile(st.bounds, delta, 0.99)
	} else if cur.buckets != nil {
		w.p99 = BucketQuantile(st.bounds, cur.buckets, 0.99)
	}
	return w
}

// baseline returns the newest ring sample with t ≤ cutoff, or the oldest
// sample available (zero sample when the ring is empty).
func (st *objectiveState) baseline(cutoff time.Time) sample {
	var best sample
	found := false
	oldest := sample{}
	oldestSet := false
	for i := 0; i < st.n; i++ {
		s := st.ring[(st.idx-1-i+len(st.ring))%len(st.ring)] // newest → oldest
		if !oldestSet || s.t.Before(oldest.t) {
			oldest, oldestSet = s, true
		}
		if !s.t.After(cutoff) {
			best, found = s, true
			break // newest-first scan: first hit is the newest old-enough one
		}
	}
	if found {
		return best
	}
	if oldestSet {
		return oldest
	}
	return sample{}
}

// BucketQuantile interpolates quantile q from per-bucket (non-cumulative)
// counts over the given finite bucket bounds, with the overflow bucket's
// count last (len(counts) == len(bounds)+1), mirroring obs.Histogram
// quantile semantics: linear interpolation within the landing bucket, and
// the largest finite bound as a lower bound when the quantile lands in the
// overflow bucket. Exported for consumers computing windowed quantiles from
// scraped bucket deltas (cardnet fleetstat).
func BucketQuantile(bounds []float64, counts []float64, q float64) float64 {
	total := 0.0
	for _, c := range counts {
		total += c
	}
	if total <= 0 {
		return 0
	}
	rank := q * total
	cum := 0.0
	for i, c := range counts {
		if c <= 0 {
			continue
		}
		if cum+c >= rank {
			if i >= len(bounds) { // overflow
				break
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			return lo + (rank-cum)/c*(bounds[i]-lo)
		}
		cum += c
	}
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1]
}

// ObjectiveStatus is one objective's slice of the /slo wire format.
type ObjectiveStatus struct {
	Name          string  `json:"name"`
	Kind          string  `json:"kind"` // latency | availability
	Target        float64 `json:"target"`
	Bound         float64 `json:"bound_seconds,omitempty"`
	State         string  `json:"state"`
	FastBurn      float64 `json:"fast_burn"`
	SlowBurn      float64 `json:"slow_burn"`
	FastErrorRate float64 `json:"fast_error_rate"`
	SlowErrorRate float64 `json:"slow_error_rate"`
	FastP99       float64 `json:"fast_p99_seconds,omitempty"`
	FastGood      float64 `json:"fast_window_good"`
	FastTotal     float64 `json:"fast_window_total"`
	// ExemplarTraceID, for a latency objective in warn/page, is a concrete
	// trace slower than the bound — the /slo → trace log entry point.
	ExemplarTraceID string `json:"exemplar_trace_id,omitempty"`
}

// Status is the /slo wire format.
type Status struct {
	State       string            `json:"state"`
	FastWindow  string            `json:"fast_window"`
	SlowWindow  string            `json:"slow_window"`
	WarnRate    float64           `json:"warn_burn_rate"`
	PageRate    float64           `json:"page_burn_rate"`
	Transitions uint64            `json:"transitions"`
	Objectives  []ObjectiveStatus `json:"objectives"`
}

// State returns the overall state (the worst objective's).
func (t *Tracker) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.overall
}

// Status summarizes the tracker as of its last Eval.
func (t *Tracker) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Status{
		State:      t.overall.String(),
		FastWindow: t.cfg.FastWindow.String(),
		SlowWindow: t.cfg.SlowWindow.String(),
		WarnRate:   t.cfg.WarnRate,
		PageRate:   t.cfg.PageRate,
	}
	s.Transitions = t.cTransitions.Value()
	for _, st := range t.objs {
		os := ObjectiveStatus{
			Name:          st.obj.Name,
			Kind:          "availability",
			Target:        st.obj.Target,
			State:         st.state.String(),
			FastBurn:      st.fastBurn,
			SlowBurn:      st.slowBurn,
			FastErrorRate: st.fastRate,
			SlowErrorRate: st.slowRate,
			FastGood:      st.fastGood,
			FastTotal:     st.fastTotal,
		}
		if st.obj.Histogram != "" {
			os.Kind = "latency"
			os.Bound = st.obj.Bound
			os.FastP99 = st.fastP99
			if st.state > StateOK {
				if ex, ok := st.hist.ExemplarAbove(st.obj.Bound); ok {
					os.ExemplarTraceID = ex.TraceID
				}
			}
		}
		s.Objectives = append(s.Objectives, os)
	}
	return s
}
