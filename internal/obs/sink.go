package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Sink writes structured events as JSON Lines: one object per line with a
// timestamp, an event name, and the caller's fields. Writes are serialized,
// so one Sink can be shared by concurrent emitters (training hooks, HTTP
// handlers).
type Sink struct {
	mu     sync.Mutex
	w      io.Writer
	closer io.Closer
	now    func() time.Time
}

// NewSink wraps a writer. The caller keeps ownership of w.
func NewSink(w io.Writer) *Sink { return &Sink{w: w, now: time.Now} }

// NewFileSink creates (truncating) a JSONL file sink; Close flushes and
// closes the file.
func NewFileSink(path string) (*Sink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &Sink{w: f, closer: f, now: time.Now}, nil
}

// Emit writes one event line. Field values must be JSON-marshalable; the
// reserved keys "ts" and "event" are set by the sink.
func (s *Sink) Emit(event string, fields map[string]any) error {
	rec := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		rec[k] = v
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rec["ts"] = s.now().UTC().Format(time.RFC3339Nano)
	rec["event"] = event
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("obs: marshal event %q: %w", event, err)
	}
	line = append(line, '\n')
	_, err = s.w.Write(line)
	return err
}

// EmitSnapshot writes the registry's full metric snapshot as one event.
func (s *Sink) EmitSnapshot(event string, r *Registry) error {
	return s.Emit(event, map[string]any{"metrics": r.Snapshot()})
}

// Close closes the underlying file if the sink owns one.
func (s *Sink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closer == nil {
		return nil
	}
	err := s.closer.Close()
	s.closer = nil
	return err
}
