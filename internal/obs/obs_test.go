package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter=%d, want %d", got, workers*per)
	}
	// Same name returns the same counter.
	if r.Counter("hits") != c {
		t.Fatal("Counter not idempotent by name")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("queue_depth")
	if g.Value() != 0 {
		t.Fatalf("zero gauge=%v", g.Value())
	}
	g.Set(-2.5)
	if g.Value() != -2.5 {
		t.Fatalf("gauge=%v", g.Value())
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// Boundary values land in the bucket whose upper bound equals them.
	for _, v := range []float64{0.5, 1.0} {
		h.Observe(v)
	}
	h.Observe(1.5)
	h.Observe(4.0)
	h.Observe(100) // overflow

	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count=%d", s.Count)
	}
	wantCum := []uint64{2, 3, 4} // cumulative ≤1, ≤2, ≤4
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket le=%v count=%d, want %d", b.UpperBound, b.Count, wantCum[i])
		}
	}
	if math.Abs(s.Sum-107.0) > 1e-9 {
		t.Fatalf("sum=%v", s.Sum)
	}
	if math.Abs(s.Mean-107.0/5) > 1e-9 {
		t.Fatalf("mean=%v", s.Mean)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(LinearBuckets(10, 10, 10)) // 10,20,…,100
	for v := 1; v <= 100; v++ {
		h.Observe(float64(v))
	}
	s := h.Snapshot()
	// Uniform fill: p50 ≈ 50, p95 ≈ 95, p99 ≈ 99 (bucket-interpolated).
	if math.Abs(s.P50-50) > 10 {
		t.Fatalf("p50=%v", s.P50)
	}
	if math.Abs(s.P95-95) > 10 {
		t.Fatalf("p95=%v", s.P95)
	}
	if math.Abs(s.P99-99) > 10 {
		t.Fatalf("p99=%v", s.P99)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Fatalf("quantiles not ordered: %v %v %v", s.P50, s.P95, s.P99)
	}
}

func TestHistogramQuantileOverflowAndEmpty(t *testing.T) {
	h := NewHistogram([]float64{1})
	if s := h.Snapshot(); s.P99 != 0 || s.Count != 0 {
		t.Fatalf("empty snapshot: %+v", s)
	}
	h.Observe(50) // everything in overflow → quantile clamps to max bound
	if s := h.Snapshot(); s.P50 != 1 {
		t.Fatalf("overflow p50=%v", s.P50)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(TimeBuckets())
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w*per+i) * 1e-6)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count=%d", h.Count())
	}
	// Exact expected sum: Σ i·1e-6 for i in [0, workers·per).
	n := float64(workers * per)
	want := 1e-6 * n * (n - 1) / 2
	if math.Abs(h.Sum()-want) > 1e-6 {
		t.Fatalf("sum=%v want %v", h.Sum(), want)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(0, 2, 4)
	for i, want := range []float64{0, 2, 4, 6} {
		if lin[i] != want {
			t.Fatalf("linear=%v", lin)
		}
	}
	exp := ExpBuckets(1, 10, 3)
	for i, want := range []float64{1, 10, 100} {
		if exp[i] != want {
			t.Fatalf("exp=%v", exp)
		}
	}
	tb := TimeBuckets()
	if tb[0] != 1e-6 || tb[len(tb)-1] < 5 {
		t.Fatalf("time buckets out of range: first=%v last=%v", tb[0], tb[len(tb)-1])
	}
}

func TestSpanAndTimer(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("work")
	time.Sleep(time.Millisecond)
	if d := sp.End(); d < time.Millisecond {
		t.Fatalf("span too short: %v", d)
	}
	if r.Counter("work.calls").Value() != 1 {
		t.Fatal("span did not count")
	}
	h := r.Histogram("work.seconds", nil)
	if h.Count() != 1 || h.Sum() < 0.001 {
		t.Fatalf("span histogram count=%d sum=%v", h.Count(), h.Sum())
	}
	tm := StartTimer(h)
	tm.Stop()
	if h.Count() != 2 {
		t.Fatal("timer did not observe")
	}
}

func TestSetEnabled(t *testing.T) {
	r := NewRegistry()
	SetEnabled(false)
	defer SetEnabled(true)
	r.Counter("off").Inc()
	r.Gauge("off.g").Set(3)
	h := r.Histogram("off.h", []float64{1})
	h.Observe(0.5)
	if r.Counter("off").Value() != 0 || r.Gauge("off.g").Value() != 0 || h.Count() != 0 {
		t.Fatal("disabled metrics still recorded")
	}
	SetEnabled(true)
	r.Counter("off").Inc()
	if r.Counter("off").Value() != 1 {
		t.Fatal("re-enabled counter did not record")
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs").Add(3)
	r.Gauge("load").Set(0.5)
	r.Histogram("lat", []float64{1, 2}).Observe(1.5)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters   map[string]uint64       `json:"counters"`
		Gauges     map[string]float64      `json:"gauges"`
		Histograms map[string]HistSnapshot `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot not valid JSON: %v\n%s", err, buf.String())
	}
	if snap.Counters["reqs"] != 3 || snap.Gauges["load"] != 0.5 {
		t.Fatalf("snapshot values: %+v", snap)
	}
	hs := snap.Histograms["lat"]
	if hs.Count != 1 || len(hs.Buckets) != 2 || hs.Buckets[1].Count != 1 {
		t.Fatalf("histogram snapshot: %+v", hs)
	}
	names := r.Names()
	if len(names) != 3 || names[0] != "lat" {
		t.Fatalf("names=%v", names)
	}
}

func TestSinkJSONLShape(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf)
	s.now = func() time.Time { return time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC) }
	if err := s.Emit("epoch", map[string]any{"epoch": 1, "loss": 0.25}); err != nil {
		t.Fatal(err)
	}
	if err := s.Emit("epoch", map[string]any{"epoch": 2, "loss": 0.125}); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		lines++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		if rec["event"] != "epoch" {
			t.Fatalf("event=%v", rec["event"])
		}
		ts, _ := rec["ts"].(string)
		if !strings.HasPrefix(ts, "2026-08-06T12:00:00") {
			t.Fatalf("ts=%q", ts)
		}
		if rec["epoch"].(float64) != float64(lines) {
			t.Fatalf("epoch=%v on line %d", rec["epoch"], lines)
		}
	}
	if lines != 2 {
		t.Fatalf("lines=%d", lines)
	}
}

func TestSinkConcurrent(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := s.Emit("e", map[string]any{"i": i}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		lines++
		if !json.Valid(sc.Bytes()) {
			t.Fatalf("interleaved write on line %d: %s", lines, sc.Text())
		}
	}
	if lines != 400 {
		t.Fatalf("lines=%d", lines)
	}
}

func TestFileSink(t *testing.T) {
	path := t.TempDir() + "/events.jsonl"
	s, err := NewFileSink(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EmitSnapshot("snap", NewRegistry()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // second close is a no-op
		t.Fatal(err)
	}
}
