package serving

import (
	"context"
	"math"
	"testing"
	"time"

	"cardnet/internal/core"
	"cardnet/internal/infer"
)

// precisionTestModel is testModel without the VAE, so the first trunk layer
// is the only 16×24 weight — the gate-fallback test clips it by parameter
// identity.
func precisionTestModel(seed int64) *core.Model {
	cfg := core.DefaultConfig(8)
	cfg.VAELatent = 0
	cfg.PhiHidden = []int{16, 16}
	cfg.ZDim = 8
	cfg.Accel = true
	cfg.Seed = seed
	return core.New(cfg, 24)
}

// TestEnginePrecisionF32 checks the compiled f32 tier end to end: the gate
// passes, the plan serves, and estimates track the exact model within float32
// tolerance.
func TestEnginePrecisionF32(t *testing.T) {
	m := testModel(1)
	e := NewEngine(NewRegistry(m), Config{
		MaxBatch:     4,
		MaxWait:      time.Millisecond,
		Precision:    infer.PrecisionF32,
		CacheEntries: -1,
	})
	defer e.Close()

	gate := e.Precision()
	if !gate.Pass || gate.Tier != infer.PrecisionF32 {
		t.Fatalf("f32 gate should pass on a healthy model: %+v", gate)
	}
	for i := 0; i < 8; i++ {
		x := binVec(int64(i), m.InDim)
		all, err := e.EstimateAll(context.Background(), x)
		if err != nil {
			t.Fatal(err)
		}
		want := m.EstimateAllTaus(x)
		for j := range want {
			if math.Abs(all[j]-want[j]) > 1e-3*(1+math.Abs(want[j])) {
				t.Fatalf("query %d τ=%d: f32 engine %v, f64 model %v", i, j, all[j], want[j])
			}
		}
		for j := 1; j < len(all); j++ {
			if all[j] < all[j-1] {
				t.Fatalf("query %d: served curve not monotone at τ=%d", i, j)
			}
		}
	}
}

// TestEngineGateFallback is the acceptance property: when the int8 gate
// fails (model deliberately clipped so per-channel quantization collapses the
// first trunk layer), the engine must keep serving — bit-identical to the
// exact f64 path — and report the fallback.
func TestEngineGateFallback(t *testing.T) {
	m := precisionTestModel(3)
	clipped := false
	for _, p := range m.Params() {
		if p.Name == "W" && len(p.Value) == 16*24 {
			for o := 0; o < 16; o++ {
				p.Value[o*24] = -1e6
			}
			clipped = true
			break
		}
	}
	if !clipped {
		t.Fatal("first trunk layer weight not found")
	}

	e := NewEngine(NewRegistry(m), Config{
		MaxBatch:     4,
		MaxWait:      time.Millisecond,
		Precision:    infer.PrecisionInt8,
		CacheEntries: -1,
	})
	defer e.Close()

	gate := e.Precision()
	if gate.Pass || gate.Tier != infer.PrecisionF64 || gate.Requested != infer.PrecisionInt8 {
		t.Fatalf("int8 gate should fail and fall back to f64: %+v", gate)
	}
	if gate.Reason == "" {
		t.Fatal("fallback must carry a reason")
	}
	for i := 0; i < 5; i++ {
		x := binVec(int64(i), m.InDim)
		all, err := e.EstimateAll(context.Background(), x)
		if err != nil {
			t.Fatal(err)
		}
		want := m.EstimateAllTaus(x)
		for j := range want {
			if all[j] != want[j] {
				t.Fatalf("fallback must serve the exact path: query %d τ=%d engine %v != model %v", i, j, all[j], want[j])
			}
		}
	}
}

// TestEngineSwapRelowers checks that a hot swap re-lowers the plan: after
// Swap the engine serves the new model's estimates through a fresh compiled
// plan, not the old plan or the old model.
func TestEngineSwapRelowers(t *testing.T) {
	m1, m2 := testModel(1), testModel(2)
	reg := NewRegistry(m1)
	e := NewEngine(reg, Config{
		MaxBatch:  4,
		MaxWait:   time.Millisecond,
		Precision: infer.PrecisionF32,
	})
	defer e.Close()

	x := binVec(99, m1.InDim)
	before, err := e.EstimateAll(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Swap(m2); err != nil {
		t.Fatal(err)
	}
	gate := e.Precision()
	if !gate.Pass || gate.Tier != infer.PrecisionF32 {
		t.Fatalf("gate should pass after swap: %+v", gate)
	}
	after, err := e.EstimateAll(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	want := m2.EstimateAllTaus(x)
	for j := range want {
		if math.Abs(after[j]-want[j]) > 1e-3*(1+math.Abs(want[j])) {
			t.Fatalf("τ=%d: post-swap engine %v, new model %v", j, after[j], want[j])
		}
	}
	same := true
	for j := range before {
		if before[j] != after[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("estimates unchanged after swap: old plan still serving")
	}
}
