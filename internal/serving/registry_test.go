package serving

import (
	"errors"
	"testing"

	"cardnet/internal/core"
)

func TestRegistrySwapValidatesShapes(t *testing.T) {
	base := testModel(1)
	reg := NewRegistry(base)

	if _, v := reg.Current(); v != 1 {
		t.Fatalf("initial version %d", v)
	}

	// Wrong input dimensionality.
	cfg := base.Cfg
	wrongDim := core.New(cfg, base.InDim+8)
	if _, err := reg.Swap(wrongDim); !errors.Is(err, ErrBadInput) {
		t.Fatalf("wrong InDim accepted: err=%v", err)
	}

	// Wrong τ range.
	cfg2 := core.DefaultConfig(base.Cfg.TauMax + 3)
	cfg2.VAEHidden = []int{16}
	cfg2.VAELatent = 4
	cfg2.PhiHidden = []int{16, 16}
	cfg2.ZDim = 8
	cfg2.Accel = true
	wrongTau := core.New(cfg2, base.InDim)
	if _, err := reg.Swap(wrongTau); !errors.Is(err, ErrBadInput) {
		t.Fatalf("wrong TauMax accepted: err=%v", err)
	}

	if _, err := reg.Swap(nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("nil model accepted: err=%v", err)
	}

	// Rejected swaps must not advance the version or change the model.
	if m, v := reg.Current(); v != 1 || m != base {
		t.Fatalf("registry changed by rejected swaps: v=%d", v)
	}

	// A compatible model (different weights, same shape) swaps fine.
	next := testModel(2)
	v, err := reg.Swap(next)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("swap version %d, want 2", v)
	}
	if m, _ := reg.Current(); m != next {
		t.Fatal("Current did not return the swapped model")
	}
}

func TestRegistryOnSwapFiresPerSuccessfulSwap(t *testing.T) {
	reg := NewRegistry(testModel(1))
	var fired int
	reg.OnSwap(func() { fired++ })

	if _, err := reg.Swap(nil); err == nil {
		t.Fatal("nil swap accepted")
	}
	if fired != 0 {
		t.Fatal("OnSwap fired for a rejected swap")
	}
	if _, err := reg.Swap(testModel(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Swap(testModel(3)); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("OnSwap fired %d times, want 2", fired)
	}
}
