// Package serving is the production inference engine around a trained
// core.Model: it turns the paper's cheap CardNet-A forward pass (Section 7)
// into a component a query optimizer can actually sit on top of under heavy
// concurrent traffic, and wires the incremental-learning story (Section 8)
// into a hot-swappable model registry.
//
// Four cooperating parts:
//
//   - Micro-batching: concurrent estimate requests are queued and coalesced
//     into a single B×d forward pass through the shared Φ/Φ′ networks
//     (core.EstimateAllTausBatch), flushed when the batch reaches
//     Config.MaxBatch or the oldest request has waited Config.MaxWait.
//     Batched results are bit-identical to the per-sample paths.
//   - Admission control: a bounded queue with per-request context deadlines.
//     When the queue is full, Estimate fails fast with ErrOverloaded (the
//     HTTP layer maps it to 503) instead of piling up goroutines.
//   - Estimate cache: a sharded LRU keyed on (hash(x), τ), invalidated on
//     model swap via a generation counter so results computed against a
//     replaced model can never be served afterwards.
//   - Model registry: a versioned atomic pointer to the live model. Swap
//     validates shape compatibility (InDim, TauMax) and replaces the model
//     without failing in-flight requests — batches already formed finish on
//     the model they started with.
//   - Precision tiers: Config.Precision selects f64 (exact legacy forward),
//     f32, or int8. Compiled tiers run the fused internal/infer plan,
//     re-lowered on every swap, and serve only after the accuracy-delta gate
//     passes (q-error p99 delta within bound, zero Lemma-2 monotonicity
//     violations); a failed gate falls back to f64.
//
// Everything is instrumented on obs.Default under the "serving." prefix.
package serving

import (
	"errors"

	"cardnet/internal/obs"
)

// Typed failures the HTTP layer maps to status codes.
var (
	// ErrOverloaded means the admission queue was full; the client should
	// back off and retry (HTTP 503).
	ErrOverloaded = errors.New("serving: overloaded, queue full")
	// ErrClosed means the engine has shut down (HTTP 503 during drain).
	ErrClosed = errors.New("serving: engine closed")
	// ErrBadInput wraps request-validation failures (HTTP 400).
	ErrBadInput = errors.New("serving: bad input")
)

// Pipeline stage names, in request order. They name both the trace stages
// (obs.Trace.Mark) and the per-stage latency histograms
// ("serving.stage.<name>.seconds"), so a trace in the JSONL log lines up
// 1:1 with the /metrics histograms. Admission and write happen in the HTTP
// layer; the engine marks cache, queue.wait, batch.form, and forward.
const (
	StageAdmission = "admission"  // parse + validate, before entering the engine
	StageCache     = "cache"      // estimate-cache lookup
	StageQueueWait = "queue.wait" // enqueue until a worker starts forming the batch
	StageBatchForm = "batch.form" // batch formation until flush (size/deadline/shutdown)
	StageForward   = "forward"    // shared stacked forward pass
	StageWrite     = "write"      // result delivery + HTTP response encoding
)

// StageHistName maps a stage name to its obs histogram name.
func StageHistName(stage string) string { return "serving.stage." + stage + ".seconds" }

// E2EHistogram is the end-to-end request latency histogram the HTTP layer
// records and the SLO tracker evaluates; the per-stage histograms above tile
// it exactly.
const E2EHistogram = "serving.e2e.seconds"

// Batch flush reasons, annotated on traces and counted under
// "serving.batch.flush_<reason>".
const (
	FlushSize     = "size"     // batch reached Config.MaxBatch
	FlushDeadline = "deadline" // oldest request waited Config.MaxWait
	FlushShutdown = "shutdown" // Close drained the queue mid-batch
)

// Engine and registry metrics, on the shared default registry so
// `cardnet serve` /metrics exposes them without extra plumbing.
var (
	mQueueDepth    = obs.Default.Gauge("serving.queue.depth")
	mRequests      = obs.Default.Counter("serving.requests")
	mOverloaded    = obs.Default.Counter("serving.overloaded")
	mExpired       = obs.Default.Counter("serving.expired")
	mBatchSize     = obs.Default.Histogram("serving.batch.size", obs.LinearBuckets(1, 1, 64))
	mFlushSize     = obs.Default.Counter("serving.batch.flush_size")
	mFlushDeadline = obs.Default.Counter("serving.batch.flush_deadline")
	mFlushShutdown = obs.Default.Counter("serving.batch.flush_shutdown")
	mCacheHits     = obs.Default.Counter("serving.cache.hits")
	mCacheMisses   = obs.Default.Counter("serving.cache.misses")
	mCacheEvicts   = obs.Default.Counter("serving.cache.evictions")
	mCacheSize     = obs.Default.Gauge("serving.cache.size")
	mSwaps         = obs.Default.Counter("serving.registry.swaps")
	mVersion       = obs.Default.Gauge("serving.registry.version")

	mPrecisionActive = obs.Default.Gauge("serving.precision.active_bits")
	mGateFailures    = obs.Default.Counter("serving.precision.gate_failures")

	mStageCache   = obs.Default.Histogram(StageHistName(StageCache), obs.TimeBuckets())
	mStageQueue   = obs.Default.Histogram(StageHistName(StageQueueWait), obs.TimeBuckets())
	mStageForm    = obs.Default.Histogram(StageHistName(StageBatchForm), obs.TimeBuckets())
	mStageForward = obs.Default.Histogram(StageHistName(StageForward), obs.TimeBuckets())
)
